#!/usr/bin/env python3
"""Summarize a prediction-lifecycle trace exported as JSONL.

Usage:
    tools/trace_summary.py trace.jsonl [--template ID]

The input is what TraceLog::WriteJsonl produces (one event object per
line; see src/obs/trace_log.h). Prints per-type event counts, skip
reasons, and the top templates by lifecycle activity — enough to answer
"why didn't this query get predicted?" without reading the raw log.
With --template, also dumps that template's full event timeline.
"""
import argparse
import collections
import json
import sys


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("path", help="JSONL trace file (TraceLog::WriteJsonl)")
    ap.add_argument("--template", type=int, default=None,
                    help="dump the full timeline of one template id")
    ap.add_argument("--top", type=int, default=10,
                    help="number of templates to list (default 10)")
    args = ap.parse_args()

    events = []
    skipped_lines = 0
    with open(args.path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                skipped_lines += 1
    if skipped_lines:
        print(f"warning: skipped {skipped_lines} unparsable lines",
              file=sys.stderr)
    if not events:
        print("no events")
        return

    by_type = collections.Counter(e["type"] for e in events)
    skip_reasons = collections.Counter(
        e["reason"] for e in events if e["type"] == "prediction_skipped")
    by_template = collections.Counter(
        e["template"] for e in events if e.get("template"))

    span_us = events[-1]["t_us"] - events[0]["t_us"]
    print(f"{len(events)} events over {span_us / 1e6:.1f} s simulated")
    print("\nevents by type:")
    for t, n in by_type.most_common():
        print(f"  {t:24s} {n}")
    if skip_reasons:
        print("\nskip reasons:")
        for r, n in skip_reasons.most_common():
            print(f"  {r:24s} {n}")
    print(f"\ntop {args.top} templates by activity:")
    for tid, n in by_template.most_common(args.top):
        issued = sum(1 for e in events
                     if e["template"] == tid
                     and e["type"] == "prediction_issued")
        hits = sum(1 for e in events
                   if e["template"] == tid and e["type"] == "prediction_hit")
        print(f"  {tid:20d} {n:6d} events  issued={issued} hits={hits}")

    if args.template is not None:
        print(f"\ntimeline for template {args.template}:")
        for e in events:
            if e["template"] != args.template:
                continue
            reason = f" reason={e['reason']}" if e["reason"] != "none" else ""
            print(f"  t={e['t_us'] / 1e6:10.3f}s seq={e['seq']:8d} "
                  f"client={e['client']:3d} {e['type']}{reason} "
                  f"aux={e['aux']}")


if __name__ == "__main__":
    main()
