// snapshot_inspect: dump an Apollo learned-state snapshot (DESIGN.md §11).
//
//   snapshot_inspect [--json] <snapshot-file>
//
// Prints the header, per-section framing (type, size, CRC verdict) and a
// decoded summary of each known section. Damaged sections are reported,
// not fatal — the tool sees exactly what the loader's partial recovery
// would. Exit status: 0 if the header parsed, 1 otherwise.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "persist/snapshot.h"
#include "persist/state_codec.h"

namespace {

using namespace apollo;  // tool-only brevity

void PrintJsonEscaped(const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      std::printf("\\%c", c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::printf("\\u%04x", c);
    } else {
      std::putchar(c);
    }
  }
}

void SummarizeSectionText(const persist::SnapshotSection& sec) {
  switch (sec.type) {
    case persist::kSectionTemplates: {
      auto st = persist::DecodeTemplates(sec.payload);
      if (!st.ok()) {
        std::printf("    <decode failed: %s>\n", st.status().message().c_str());
        return;
      }
      std::printf("    %zu templates\n", st->templates.size());
      for (const auto& t : st->templates) {
        std::printf("    - id=%016" PRIx64 " execs=%" PRIu64 " obs=%" PRIu64
                    " mean_us=%.1f %s\n      %s\n",
                    t.id, t.executions, t.observations, t.mean_exec_us,
                    t.read_only ? "ro" : "rw", t.template_text.c_str());
      }
      break;
    }
    case persist::kSectionParamMapper: {
      auto st = persist::DecodeParamMapper(sec.payload);
      if (!st.ok()) {
        std::printf("    <decode failed: %s>\n", st.status().message().c_str());
        return;
      }
      std::printf("    verification_period=%d, %zu pairs\n",
                  st->verification_period, st->pairs.size());
      for (const auto& p : st->pairs) {
        std::printf("    - %016" PRIx64 " -> %016" PRIx64
                    " obs=%d conf=%d inval=%d sup=%u viol=%u\n",
                    p.src, p.dst, p.observations, p.confirmed ? 1 : 0,
                    p.invalidated ? 1 : 0, p.supports, p.violations);
      }
      break;
    }
    case persist::kSectionDependencyGraph: {
      auto st = persist::DecodeDependencyGraph(sec.payload);
      if (!st.ok()) {
        std::printf("    <decode failed: %s>\n", st.status().message().c_str());
        return;
      }
      std::printf("    %zu fdqs\n", st->fdqs.size());
      for (const auto& f : st->fdqs) {
        std::printf("    - fdq=%016" PRIx64 " sources=%zu%s%s\n", f.id,
                    f.sources.size(), f.is_adq ? " adq" : "",
                    f.invalid ? " INVALID" : "");
      }
      break;
    }
    case persist::kSectionSessions: {
      auto st = persist::DecodeSessions(sec.payload);
      if (!st.ok()) {
        std::printf("    <decode failed: %s>\n", st.status().message().c_str());
        return;
      }
      std::printf("    %zu sessions\n", st->sessions.size());
      for (const auto& s : st->sessions) {
        std::printf("    - client=%d graphs=%zu satisfied=%zu\n", s.id,
                    s.graphs.size(), s.satisfied.size());
        for (const auto& g : s.graphs) {
          uint64_t edges = 0;
          for (const auto& v : g.vertices) edges += v.edges.size();
          std::printf("      dt=%" PRId64 "us vertices=%zu edges=%" PRIu64
                      "\n",
                      static_cast<int64_t>(g.delta_t), g.vertices.size(),
                      edges);
          for (const auto& v : g.vertices) {
            std::printf("        v=%016" PRIx64 " wv=%" PRIu64 ":", v.id,
                        v.count);
            for (const auto& [to, we] : v.edges) {
              std::printf(" ->%016" PRIx64 "(we=%" PRIu64 ")", to, we);
            }
            std::printf("\n");
          }
        }
      }
      break;
    }
    default:
      std::printf("    <unknown section type>\n");
  }
}

void SummarizeSectionJson(const persist::SnapshotSection& sec) {
  switch (sec.type) {
    case persist::kSectionTemplates: {
      auto st = persist::DecodeTemplates(sec.payload);
      if (!st.ok()) break;
      std::printf(",\"templates\":[");
      bool first = true;
      for (const auto& t : st->templates) {
        std::printf("%s{\"id\":\"%016" PRIx64 "\",\"executions\":%" PRIu64
                    ",\"observations\":%" PRIu64 ",\"mean_exec_us\":%.3f,"
                    "\"read_only\":%s,\"text\":\"",
                    first ? "" : ",", t.id, t.executions, t.observations,
                    t.mean_exec_us, t.read_only ? "true" : "false");
        PrintJsonEscaped(t.template_text);
        std::printf("\"}");
        first = false;
      }
      std::printf("]");
      break;
    }
    case persist::kSectionParamMapper: {
      auto st = persist::DecodeParamMapper(sec.payload);
      if (!st.ok()) break;
      std::printf(",\"verification_period\":%d,\"pairs\":[",
                  st->verification_period);
      bool first = true;
      for (const auto& p : st->pairs) {
        std::printf("%s{\"src\":\"%016" PRIx64 "\",\"dst\":\"%016" PRIx64
                    "\",\"observations\":%d,\"confirmed\":%s,"
                    "\"invalidated\":%s,\"supports\":%u,\"violations\":%u}",
                    first ? "" : ",", p.src, p.dst, p.observations,
                    p.confirmed ? "true" : "false",
                    p.invalidated ? "true" : "false", p.supports,
                    p.violations);
        first = false;
      }
      std::printf("]");
      break;
    }
    case persist::kSectionDependencyGraph: {
      auto st = persist::DecodeDependencyGraph(sec.payload);
      if (!st.ok()) break;
      std::printf(",\"fdqs\":[");
      bool first = true;
      for (const auto& f : st->fdqs) {
        std::printf("%s{\"id\":\"%016" PRIx64 "\",\"sources\":%zu,"
                    "\"is_adq\":%s,\"invalid\":%s}",
                    first ? "" : ",", f.id, f.sources.size(),
                    f.is_adq ? "true" : "false", f.invalid ? "true" : "false");
        first = false;
      }
      std::printf("]");
      break;
    }
    case persist::kSectionSessions: {
      auto st = persist::DecodeSessions(sec.payload);
      if (!st.ok()) break;
      std::printf(",\"sessions\":[");
      bool first = true;
      for (const auto& s : st->sessions) {
        std::printf("%s{\"client\":%d,\"graphs\":[", first ? "" : ",", s.id);
        bool gfirst = true;
        for (const auto& g : s.graphs) {
          uint64_t edges = 0, wv = 0;
          for (const auto& v : g.vertices) {
            edges += v.edges.size();
            wv += v.count;
          }
          std::printf("%s{\"delta_t_us\":%" PRId64 ",\"vertices\":%zu,"
                      "\"edges\":%" PRIu64 ",\"total_wv\":%" PRIu64 "}",
                      gfirst ? "" : ",", static_cast<int64_t>(g.delta_t),
                      g.vertices.size(), edges, wv);
          gfirst = false;
        }
        std::printf("],\"satisfied\":%zu}", s.satisfied.size());
        first = false;
      }
      std::printf("]");
      break;
    }
    default:
      break;
  }
}

int Run(const std::string& path, bool json) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  auto snap = persist::ParseSnapshot(bytes);
  if (!snap.ok()) {
    std::fprintf(stderr, "error: %s\n", snap.status().message().c_str());
    return 1;
  }

  if (json) {
    std::printf("{\"file\":\"");
    PrintJsonEscaped(path);
    std::printf("\",\"bytes\":%zu,\"format_version\":%u,"
                "\"created_at_us\":%" PRIu64 ",\"declared_sections\":%u,"
                "\"truncated\":%s,\"sections\":[",
                bytes.size(), snap->format_version, snap->created_at_us,
                snap->section_count, snap->truncated ? "true" : "false");
    bool first = true;
    for (const auto& sec : snap->sections) {
      std::printf("%s{\"type\":%u,\"name\":\"%s\",\"payload_bytes\":%zu,"
                  "\"crc_ok\":%s,\"crc_stored\":\"%08x\","
                  "\"crc_computed\":\"%08x\"",
                  first ? "" : ",", sec.type, persist::SectionName(sec.type),
                  sec.payload.size(), sec.crc_ok ? "true" : "false",
                  sec.crc_stored, sec.crc_computed);
      if (sec.crc_ok) SummarizeSectionJson(sec);
      std::printf("}");
      first = false;
    }
    std::printf("]}\n");
    return 0;
  }

  std::printf("snapshot   : %s (%zu bytes)\n", path.c_str(), bytes.size());
  std::printf("format     : v%u, created_at_us=%" PRIu64 "\n",
              snap->format_version, snap->created_at_us);
  std::printf("sections   : %zu present, %u declared%s\n",
              snap->sections.size(), snap->section_count,
              snap->truncated ? "  [TRUNCATED]" : "");
  for (const auto& sec : snap->sections) {
    std::printf("  [%-16s] type=%u payload=%zu bytes crc=%s",
                persist::SectionName(sec.type), sec.type, sec.payload.size(),
                sec.crc_ok ? "ok" : "BAD");
    if (!sec.crc_ok) {
      std::printf(" (stored=%08x computed=%08x)", sec.crc_stored,
                  sec.crc_computed);
    }
    std::printf("\n");
    if (sec.crc_ok) SummarizeSectionText(sec);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: %s [--json] <snapshot-file>\n", argv[0]);
      return 1;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: %s [--json] <snapshot-file>\n", argv[0]);
    return 1;
  }
  return Run(path, json);
}
