#!/usr/bin/env python3
"""Splices bench_output.txt sections into EXPERIMENTS.md placeholders."""
import re
import sys

MAPPING = {
    "FIG5A": "fig5a_tpcw_scalability",
    "FIG5B": "fig5b_tpcw_tail",
    "FIG5C": "fig5c_learning_over_time",
    "FIG6": "fig6_tpcc_scalability",
    "FIG7": "fig7_workload_shift",
    "FIG8A": "fig8a_geo_local",
    "FIG8B": "fig8b_geo_moderate",
    "FIG8C": "fig8c_multi_instance",
    "OVERHEAD": "overhead_stats",
    "SENS_DT_TAU": "sens_dt_tau",
    "SENS_ALPHA": "sens_alpha",
    "ABLATION": "ablation_features",
    "SKEW": "ablation_skew",
    "MICRO": "micro_core",
}


def main() -> int:
    bench_path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    md_path = sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md"

    with open(bench_path) as f:
        out = f.read()

    sections = {}
    current = None
    for line in out.splitlines():
        m = re.match(r"^### .*/(\w+)$", line)
        if m:
            current = m.group(1)
            sections[current] = []
            continue
        if line.startswith("WARNING") or line == "SWEEP_DONE":
            continue
        if current:
            sections[current].append(line)

    with open(md_path) as f:
        md = f.read()

    for tag, binary in MAPPING.items():
        body = "\n".join(sections.get(binary, ["(not captured)"])).strip()
        md = md.replace("<<<%s>>>" % tag, body)

    with open(md_path, "w") as f:
        f.write(md)
    missing = re.findall(r"<<<(\w+)>>>", md)
    if missing:
        print("unfilled placeholders:", missing)
        return 1
    print("EXPERIMENTS.md filled")
    return 0


if __name__ == "__main__":
    sys.exit(main())
