#!/usr/bin/env bash
# Full verification: build + ctest, plain and sanitized.
#
#   tools/check.sh            # both passes
#   tools/check.sh --plain    # plain RelWithDebInfo build + ctest only
#   tools/check.sh --asan     # ASan/UBSan build + ctest only
#
# The sanitized pass builds into build-asan/ with
# -DAPOLLO_SANITIZE=address,undefined so the retry/timeout/breaker code
# (shared_ptr callback chains racing simulated timers) runs under ASan and
# UBSan on every check.
set -euo pipefail

cd "$(dirname "$0")/.."

run_pass() {
  local dir="$1"; shift
  echo "=== configure+build: ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@" >/dev/null
  cmake --build "${dir}" -j"$(nproc)"
  echo "=== ctest: ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j"$(nproc)"
}

mode="${1:-all}"

case "${mode}" in
  --plain|plain)
    run_pass build
    ;;
  --asan|asan)
    run_pass build-asan -DAPOLLO_SANITIZE=address,undefined
    ;;
  all)
    run_pass build
    run_pass build-asan -DAPOLLO_SANITIZE=address,undefined
    ;;
  *)
    echo "usage: $0 [--plain|--asan]" >&2
    exit 2
    ;;
esac

echo "All checks passed."
