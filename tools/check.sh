#!/usr/bin/env bash
# Full verification: build + ctest, plain and sanitized.
#
#   tools/check.sh            # plain + ASan/UBSan passes
#   tools/check.sh --plain    # plain RelWithDebInfo build + ctest only
#   tools/check.sh --asan     # ASan/UBSan build + ctest only
#   tools/check.sh --thread   # TSan build; runs the concurrency + rt suites
#   tools/check.sh --stress   # long overload/fault-injection soak (plain
#                             # build; APOLLO_SOAK_MS bounds wall clock)
#
# The sanitized pass builds into build-asan/ with
# -DAPOLLO_SANITIZE=address,undefined so the retry/timeout/breaker code
# (shared_ptr callback chains racing simulated timers) runs under ASan and
# UBSan on every check. The thread pass builds into build-tsan/ with
# -DAPOLLO_SANITIZE=thread and runs the suites that exercise real threads
# (the threaded runtime, the locked core structures, the database): TSan
# and ASan cannot share a build, so this is its own mode rather than part
# of `all`.
set -euo pipefail

cd "$(dirname "$0")/.."

run_pass() {
  local dir="$1"; shift
  echo "=== configure+build: ${dir} ($*) ==="
  cmake -B "${dir}" -S . "$@" >/dev/null
  cmake --build "${dir}" -j"$(nproc)"
  echo "=== ctest: ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j"$(nproc)"
}

mode="${1:-all}"

case "${mode}" in
  --plain|plain)
    run_pass build
    ;;
  --asan|asan)
    run_pass build-asan -DAPOLLO_SANITIZE=address,undefined
    ;;
  --thread|thread|--tsan|tsan)
    dir=build-tsan
    echo "=== configure+build: ${dir} (TSan) ==="
    cmake -B "${dir}" -S . -DAPOLLO_SANITIZE=thread >/dev/null
    cmake --build "${dir}" -j"$(nproc)" \
      --target concurrency_test rt_test overload_test tinylfu_test
    echo "=== ctest: ${dir} (concurrency + rt + overload suites) ==="
    ctest --test-dir "${dir}" --output-on-failure -j"$(nproc)" \
      -R 'Concurrent|Contention|MpmcQueue|Future|ThreadPool|Inflight|Brownout|FairQueue|Overload|TinyLfu|CountMin'
    ;;
  --stress|stress)
    # Extended soak of the overload/brownout/fault-injection path: the
    # 8-session read-your-writes soak with a longer wall-clock budget
    # (default 15 s; override with APOLLO_SOAK_MS).
    dir=build
    echo "=== configure+build: ${dir} (stress) ==="
    cmake -B "${dir}" -S . >/dev/null
    cmake --build "${dir}" -j"$(nproc)" --target overload_test
    echo "=== soak: OverloadSoakTest (APOLLO_SOAK_MS=${APOLLO_SOAK_MS:-15000}) ==="
    APOLLO_SOAK_MS="${APOLLO_SOAK_MS:-15000}" \
      ctest --test-dir "${dir}" --output-on-failure -R 'OverloadSoakTest' \
        --timeout 300
    ;;
  all)
    run_pass build
    run_pass build-asan -DAPOLLO_SANITIZE=address,undefined
    ;;
  *)
    echo "usage: $0 [--plain|--asan|--thread|--stress]" >&2
    exit 2
    ;;
esac

echo "All checks passed."
