// Section 4.7 sensitivity: the ADQ reload cost threshold alpha.
//
// Paper finding: alpha below ~5% of the mean query response time changes
// little; raising it further degrades mean response time by >10% because
// valuable ADQs stop being reloaded. alpha = 0 (reload everything) is the
// default.
#include "bench_common.h"

int main() {
  using namespace apollo;
  bench::PrintHeader(
      "Section 4.7: sensitivity to the ADQ reload threshold alpha (TPC-W, "
      "30 clients)");
  // alpha is in probability x milliseconds of mean runtime (Section 3.4.2).
  for (double alpha : {0.0, 0.01, 1.0, 10.0}) {
    workload::TpcwWorkload tpcw;
    auto cfg = bench::BaseConfig(workload::SystemType::kApollo,
                                 /*clients=*/30, /*seed=*/42);
    cfg.duration = util::Minutes(8);
    cfg.apollo.alpha = alpha;
    auto r = workload::RunExperiment(tpcw, cfg);
    std::printf("alpha=%7.3f  mean=%7.2f ms  adq-reloads=%6llu  "
                "hit-rate=%5.1f%%\n",
                alpha, r.MeanMs(),
                static_cast<unsigned long long>(r.mw.adq_reloads),
                100.0 * r.cache_stats.HitRate());
    std::fflush(stdout);
    bench::PrintRunObservability(r);
  }
  return 0;
}
