// Overload staircase & brownout recovery bench for the concurrent runtime
// (DESIGN.md Section 12).
//
// 16 session threads drive a correlated read workload (ITEM row x then
// DETAIL row x, ~10% UPDATEs) against rt::ConcurrentApollo with overload
// control enabled, through an offered-load staircase: 1x -> 2x -> 5x ->
// 10x -> 1x. Arrivals are open-loop per stage (a thread that falls behind
// its schedule issues back-to-back until it catches up), every query
// carries a 100 ms deadline stamped at submission, and the brownout
// controller is left to manage the spike.
//
// The bench asserts the graceful-brownout contract:
//   1. Zero hard client errors in every stage; rejects appear only while
//      the controller is at the reject level.
//   2. Completed-query p99 in every stage stays within BOUND x the 1x
//      baseline p99 (shedding + bounded staleness buy latency, not
//      correctness).
//   3. Transitions in the trace are one-step and every de-escalation
//      honors the hysteresis dwell (no flapping); the staircase's
//      per-stage peak level is monotone non-decreasing while load rises.
//   4. Recovery: after the spike the controller returns to (near) normal
//      and the final 1x stage's hit rate lands within 5 points of the
//      first 1x stage's.
//
// Results (per-stage offered/completed/errors/rejected/deadline_missed/
// p50/p99/hit_rate/max_level, the transition list, and the pass booleans)
// go to stdout and BENCH_overload.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "obs/observability.h"
#include "rt/concurrent_apollo.h"
#include "rt/overload.h"
#include "util/rng.h"

namespace apollo {
namespace {

constexpr int kSessions = 16;
constexpr int kItems = 200;
constexpr double kBaseQps = 800.0;  // 1x offered load, queries/sec total
constexpr double kP99Bound = 2.0;   // per-stage p99 vs 1x baseline
constexpr double kHitRateBand = 0.05;

struct Stage {
  const char* label;
  double multiplier;
  int duration_ms;
};

constexpr Stage kStages[] = {
    {"1x", 1.0, 3000}, {"2x", 2.0, 3000},      {"5x", 5.0, 3000},
    {"10x", 10.0, 3000}, {"recovery_1x", 1.0, 3000},
};
constexpr int kNumStages = static_cast<int>(sizeof(kStages) /
                                            sizeof(kStages[0]));
constexpr int kSettleMs = 500;  // excluded from each stage's statistics

enum class Outcome { kOk, kRejected, kDeadline, kError };

struct Sample {
  int stage;
  Outcome outcome;
  int64_t latency_us;
  bool in_window;  // past the stage's settle period
  bool hit;        // rt-level cache hit (ok outcomes only)
};

struct StageStats {
  uint64_t offered = 0;
  uint64_t completed = 0;
  uint64_t errors = 0;
  uint64_t rejected = 0;
  uint64_t deadline_missed = 0;
  uint64_t hits = 0;
  int64_t p50_us = 0;
  int64_t p99_us = 0;
  double hit_rate = 0.0;
  int max_level = 0;
};

int64_t PercentileOf(std::vector<int64_t>& v, double pct) {
  if (v.empty()) return 0;
  size_t k = static_cast<size_t>(pct / 100.0 *
                                 static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<long>(k), v.end());
  return v[k];
}

void SetupDb(db::Database* db) {
  db::Schema item("ITEM", {{"I_ID", common::ValueType::kInt},
                           {"I_STOCK", common::ValueType::kInt}});
  item.AddIndex("PRIMARY", {"I_ID"});
  if (!db->CreateTable(std::move(item)).ok()) std::abort();
  db::Schema detail("DETAIL", {{"D_ID", common::ValueType::kInt},
                               {"D_DATA", common::ValueType::kInt}});
  detail.AddIndex("PRIMARY", {"D_ID"});
  if (!db->CreateTable(std::move(detail)).ok()) std::abort();
  for (int i = 0; i < kItems; ++i) {
    if (!db->GetTable("ITEM")
             ->Insert({common::Value::Int(i), common::Value::Int(100)})
             .ok()) {
      std::abort();
    }
    if (!db->GetTable("DETAIL")
             ->Insert({common::Value::Int(i), common::Value::Int(7 * i)})
             .ok()) {
      std::abort();
    }
  }
}

Outcome Classify(const util::Result<common::ResultSetPtr>& r) {
  if (r.ok()) return Outcome::kOk;
  switch (r.status().code()) {
    case util::StatusCode::kUnavailable:
      return Outcome::kRejected;  // brownout L4 backpressure
    case util::StatusCode::kDeadlineExceeded:
      return Outcome::kDeadline;  // budget-aware cancellation
    default:
      return Outcome::kError;
  }
}

}  // namespace
}  // namespace apollo

int main(int argc, char** argv) {
  using namespace apollo;
  using Clock = std::chrono::steady_clock;

  const char* json_path = argc > 1 ? argv[1] : "BENCH_overload.json";

  db::Database db;
  SetupDb(&db);

  obs::Observability obs(/*trace_capacity=*/1u << 19);

  rt::ConcurrentApolloConfig cfg;
  cfg.gateway.rtt = std::chrono::microseconds(5000);
  cfg.pool.num_threads = 8;
  cfg.pool.queue_capacity = 512;
  cfg.cache_bytes = 8u << 20;
  cfg.overload.enabled = true;
  cfg.overload.default_deadline = std::chrono::microseconds(100'000);
  // Sojourn thresholds sized for a small shared box: relief must be a
  // level the scheduler can actually deliver at 1x (sub-ms dequeue on a
  // loaded single core is not), or recovery stalls in the neither-calm-
  // nor-pressed band and the node never climbs back down.
  cfg.overload.target_sojourn = std::chrono::microseconds(5000);
  cfg.overload.relief_sojourn = std::chrono::microseconds(2000);
  cfg.overload.interval = std::chrono::microseconds(20'000);
  cfg.overload.deescalate_dwell = std::chrono::microseconds(400'000);
  cfg.overload.stale_bound = std::chrono::milliseconds(2000);
  rt::ConcurrentApollo apollo_rt(&db, cfg, &obs);

  obs.trace.set_enabled(true);
  obs.trace.set_clock([&apollo_rt] { return apollo_rt.NowUs(); });

  // Stage boundaries in microseconds since bench start.
  std::vector<int64_t> stage_start_us(kNumStages + 1, 0);
  for (int s = 0; s < kNumStages; ++s) {
    stage_start_us[s + 1] =
        stage_start_us[s] + int64_t{kStages[s].duration_ms} * 1000;
  }
  const int64_t total_us = stage_start_us[kNumStages];

  const auto t0 = Clock::now();
  auto now_us = [&t0] {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - t0)
        .count();
  };
  auto stage_of = [&stage_start_us](int64_t us) {
    int s = 0;
    while (s + 1 < kNumStages && us >= stage_start_us[s + 1]) ++s;
    return s;
  };

  obs::Counter* rt_hits = obs.metrics.RegisterCounter("rt.cache_hits");

  std::vector<std::vector<Sample>> all_samples(kSessions);
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int w = 0; w < kSessions; ++w) {
    threads.emplace_back([&, w] {
      util::Rng rng(1000 + static_cast<uint64_t>(w));
      std::vector<Sample>& samples = all_samples[w];
      samples.reserve(1 << 16);
      // Open-loop arrivals: next_due advances by the stage's per-thread
      // interarrival; a thread behind schedule issues immediately.
      int64_t next_due = 0;
      int prev_stage = 0;
      while (true) {
        int64_t now = now_us();
        if (now >= total_us) break;
        const int stage = stage_of(now);
        if (stage != prev_stage) {
          prev_stage = stage;
          next_due = std::max(next_due, stage_start_us[stage]);
        }
        if (now < next_due) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(next_due - now));
          continue;
        }
        // One interaction: read ITEM x then DETAIL x (correlated pair the
        // learner can discover), or an UPDATE 10% of the time.
        const double per_thread_qps =
            kBaseQps * kStages[stage].multiplier / kSessions;
        // Interactions average ~1.9 queries; schedule by queries.
        next_due += static_cast<int64_t>(1.9e6 / per_thread_qps);

        const int x = static_cast<int>(rng.UniformInt(0, kItems - 1));
        const bool write = rng.Bernoulli(0.1);
        const uint64_t hits_before = rt_hits->Value();
        std::vector<std::string> sqls;
        if (write) {
          sqls.push_back("UPDATE ITEM SET I_STOCK = I_STOCK + 1 WHERE "
                         "I_ID = " +
                         std::to_string(x));
        } else {
          sqls.push_back("SELECT I_STOCK FROM ITEM WHERE I_ID = " +
                         std::to_string(x));
          sqls.push_back("SELECT D_DATA FROM DETAIL WHERE D_ID = " +
                         std::to_string(x));
        }
        for (const std::string& sql : sqls) {
          const int64_t q_start = now_us();
          const int q_stage = stage_of(q_start);
          auto q0 = Clock::now();
          auto result = apollo_rt.Execute(w, sql);
          Sample s;
          s.stage = q_stage;
          s.outcome = Classify(result);
          s.latency_us =
              std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - q0)
                  .count();
          s.in_window =
              q_start - stage_start_us[q_stage] >= int64_t{kSettleMs} * 1000;
          s.hit = s.outcome == Outcome::kOk &&
                  rt_hits->Value() > hits_before;
          samples.push_back(s);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // ---- Fold per-stage statistics ----
  StageStats stats[kNumStages];
  std::vector<int64_t> lat[kNumStages];
  for (const auto& vec : all_samples) {
    for (const Sample& s : vec) {
      StageStats& st = stats[s.stage];
      ++st.offered;
      if (!s.in_window) continue;
      switch (s.outcome) {
        case Outcome::kOk:
          ++st.completed;
          if (s.hit) ++st.hits;
          lat[s.stage].push_back(s.latency_us);
          break;
        case Outcome::kRejected:
          ++st.rejected;
          break;
        case Outcome::kDeadline:
          ++st.deadline_missed;
          break;
        case Outcome::kError:
          ++st.errors;
          break;
      }
    }
  }
  for (int s = 0; s < kNumStages; ++s) {
    stats[s].p50_us = PercentileOf(lat[s], 50);
    stats[s].p99_us = PercentileOf(lat[s], 99);
    stats[s].hit_rate =
        stats[s].completed > 0
            ? static_cast<double>(stats[s].hits) /
                  static_cast<double>(stats[s].completed)
            : 0.0;
  }

  // ---- Reconstruct the level trajectory from the trace ----
  struct Transition {
    int64_t time_us;
    int from;
    int to;
  };
  std::vector<Transition> transitions;
  for (const obs::TraceEvent& e : obs.trace.Events()) {
    if (e.type != obs::TraceEventType::kBrownoutLevel) continue;
    transitions.push_back({static_cast<int64_t>(e.time),
                           static_cast<int>(e.template_id),
                           static_cast<int>(e.aux)});
  }
  {
    int level = 0;
    size_t next = 0;
    for (int s = 0; s < kNumStages; ++s) {
      int max_level = level;
      while (next < transitions.size() &&
             transitions[next].time_us < stage_start_us[s + 1]) {
        level = transitions[next].to;
        max_level = std::max(max_level, level);
        ++next;
      }
      stats[s].max_level = max_level;
    }
  }

  // ---- Contract checks ----
  bool pass_errors = true;
  for (int s = 0; s < kNumStages; ++s) {
    if (stats[s].errors > 0) pass_errors = false;
    // Rejects only appear when the controller actually reached L4.
    if (stats[s].rejected > 0 &&
        stats[s].max_level <
            static_cast<int>(rt::BrownoutLevel::kReject)) {
      pass_errors = false;
    }
  }

  const int64_t base_p99 = stats[0].p99_us;
  bool pass_p99 = base_p99 > 0;
  for (int s = 0; s < kNumStages; ++s) {
    if (stats[s].p99_us >
        static_cast<int64_t>(kP99Bound * static_cast<double>(base_p99))) {
      pass_p99 = false;
    }
  }

  bool pass_transitions = true;
  const int64_t dwell_us = cfg.overload.deescalate_dwell.count();
  for (size_t i = 0; i < transitions.size(); ++i) {
    const Transition& t = transitions[i];
    if (std::abs(t.to - t.from) != 1) pass_transitions = false;  // one-step
    // Hysteresis honored: every de-escalation sits a full dwell after the
    // previous transition — the trace-level definition of "no flapping".
    if (i > 0 && t.to < t.from &&
        t.time_us - transitions[i - 1].time_us < dwell_us) {
      pass_transitions = false;
    }
  }
  // The staircase's peak level rises with offered load...
  for (int s = 1; s < 4; ++s) {
    if (stats[s].max_level < stats[s - 1].max_level - 1) {
      pass_transitions = false;
    }
  }
  // ...and the 10x stage must actually push the controller into brownout.
  if (stats[3].max_level <
      static_cast<int>(rt::BrownoutLevel::kShedLowUtility)) {
    pass_transitions = false;
  }

  // Recovery: the controller came back down and the cache is warm again.
  const int final_level = static_cast<int>(apollo_rt.brownout()->level());
  bool pass_recovery =
      final_level <= static_cast<int>(rt::BrownoutLevel::kShedLowUtility) &&
      stats[kNumStages - 1].hit_rate >= stats[0].hit_rate - kHitRateBand;

  const bool pass =
      pass_errors && pass_p99 && pass_transitions && pass_recovery;

  // ---- Report ----
  std::string json = "{\"bench\":\"overload_recovery\",\"stages\":[";
  for (int s = 0; s < kNumStages; ++s) {
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "%s{\"stage\":\"%s\",\"offered\":%llu,\"completed\":%llu,"
        "\"errors\":%llu,\"rejected\":%llu,\"deadline_missed\":%llu,"
        "\"p50_us\":%lld,\"p99_us\":%lld,\"hit_rate\":%.3f,"
        "\"max_level\":%d}",
        s > 0 ? "," : "", kStages[s].label,
        static_cast<unsigned long long>(stats[s].offered),
        static_cast<unsigned long long>(stats[s].completed),
        static_cast<unsigned long long>(stats[s].errors),
        static_cast<unsigned long long>(stats[s].rejected),
        static_cast<unsigned long long>(stats[s].deadline_missed),
        static_cast<long long>(stats[s].p50_us),
        static_cast<long long>(stats[s].p99_us), stats[s].hit_rate,
        stats[s].max_level);
    json += line;
    std::printf("%s\n", line + (s > 0 ? 1 : 0));
  }
  json += "],\"transitions\":[";
  for (size_t i = 0; i < transitions.size(); ++i) {
    char t[96];
    std::snprintf(t, sizeof(t), "%s{\"t_us\":%lld,\"from\":%d,\"to\":%d}",
                  i > 0 ? "," : "",
                  static_cast<long long>(transitions[i].time_us),
                  transitions[i].from, transitions[i].to);
    json += t;
  }
  char tail[256];
  std::snprintf(tail, sizeof(tail),
                "],\"pass_errors\":%s,\"pass_p99\":%s,"
                "\"pass_transitions\":%s,\"pass_recovery\":%s,"
                "\"pass\":%s}\n",
                pass_errors ? "true" : "false", pass_p99 ? "true" : "false",
                pass_transitions ? "true" : "false",
                pass_recovery ? "true" : "false", pass ? "true" : "false");
  json += tail;
  std::printf("transitions=%zu pass_errors=%d pass_p99=%d "
              "pass_transitions=%d pass_recovery=%d pass=%d\n",
              transitions.size(), pass_errors ? 1 : 0, pass_p99 ? 1 : 0,
              pass_transitions ? 1 : 0, pass_recovery ? 1 : 0, pass ? 1 : 0);

  std::ofstream out(json_path);
  out << json;

  apollo_rt.Shutdown();
  return pass ? 0 : 1;
}
