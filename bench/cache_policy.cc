// Cache-policy sweep (DESIGN.md Section 13): hit rate and client p99 of
// the three KvCache eviction policies — legacy LRU, W-TinyLFU, and
// W-TinyLFU with Apollo's cost-aware score — at 5% / 1% / 0.5%
// cache-to-DB byte ratios under the TPC-W Zipf(0.8) item skew.
//
// The interesting regime is the small cache: under Zipf skew a plain LRU
// is polluted by one-off reads and speculative prefetches, while
// frequency admission keeps the hot set resident. The gate (written into
// BENCH_cache.json as "pass") asserts the tentpole claim: at the 1%
// ratio, TinyLFU+cost beats LRU by >= 5 hit-rate points with client p99
// no worse.
//
// Each cell warms the cache for half the measured duration before the
// measurement window opens, so the comparison reads steady-state
// eviction behaviour rather than the shared cold-start ramp.
//
//   bench/cache_policy [minutes] [clients] [json_path]
//
// Defaults: 8 simulated minutes (plus 4 warm), 200 clients,
// BENCH_cache.json.
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

struct Cell {
  double ratio = 0.0;
  apollo::cache::CachePolicy policy = apollo::cache::CachePolicy::kLru;
  double hit_rate = 0.0;   // fraction over the measurement window
  double p99_ms = 0.0;     // client response-time p99
  double mean_ms = 0.0;
  unsigned long long evictions = 0;
  unsigned long long admission_rejected = 0;
  unsigned long long sketch_resets = 0;
  size_t cache_capacity = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace apollo;
  const double minutes = argc > 1 ? std::atof(argv[1]) : 8.0;
  const int clients = argc > 2 ? std::atoi(argv[2]) : 200;
  const char* json_path = argc > 3 ? argv[3] : "BENCH_cache.json";

  bench::PrintHeader("Cache policy sweep: TPC-W Zipf(0.8), LRU vs "
                     "W-TinyLFU vs W-TinyLFU+cost");
  std::printf("%-8s %-13s %10s %9s %9s %10s %10s\n", "ratio", "policy",
              "hit-rate", "p99(ms)", "mean(ms)", "evictions", "adm-rej");

  const std::vector<double> ratios = {0.05, 0.01, 0.005};
  const std::vector<cache::CachePolicy> policies = {
      cache::CachePolicy::kLru, cache::CachePolicy::kTinyLfu,
      cache::CachePolicy::kTinyLfuCost};

  std::vector<Cell> cells;
  for (double ratio : ratios) {
    for (cache::CachePolicy policy : policies) {
      workload::TpcwWorkload tpcw;  // item_zipf_theta defaults to 0.8
      auto cfg = bench::BaseConfig(workload::SystemType::kApollo, clients,
                                   /*seed=*/42);
      cfg.duration = util::Minutes(minutes);
      cfg.warmup = util::Minutes(minutes / 2.0);
      cfg.cache_ratio = ratio;
      cfg.apollo.cache_policy = policy;
      // Half-and-half window/main split: the window absorbs the burst
      // reuse this workload has plenty of, the frequency-guarded main
      // holds the Zipf body (see DESIGN.md Section 13 on sizing).
      cfg.apollo.cache_window_fraction = 0.5;
      auto r = workload::RunExperiment(tpcw, cfg);

      Cell c;
      c.ratio = ratio;
      c.policy = policy;
      c.hit_rate = r.cache_stats.HitRate();
      c.p99_ms = r.PercentileMs(99);
      c.mean_ms = r.MeanMs();
      c.evictions = r.cache_stats.evictions;
      c.admission_rejected = r.cache_stats.admission_rejected;
      c.sketch_resets = r.cache_stats.sketch_resets;
      c.cache_capacity = r.cache_capacity;
      cells.push_back(c);

      std::printf("%-8.3f %-13s %9.1f%% %9.1f %9.1f %10llu %10llu\n",
                  ratio, cache::CachePolicyName(policy),
                  100.0 * c.hit_rate, c.p99_ms, c.mean_ms, c.evictions,
                  c.admission_rejected);
      std::fflush(stdout);
    }
  }

  // Gate at the 1% ratio: cost-aware TinyLFU must beat LRU by >= 5
  // hit-rate points without giving back tail latency.
  const Cell* lru1 = nullptr;
  const Cell* cost1 = nullptr;
  for (const Cell& c : cells) {
    if (c.ratio != 0.01) continue;
    if (c.policy == cache::CachePolicy::kLru) lru1 = &c;
    if (c.policy == cache::CachePolicy::kTinyLfuCost) cost1 = &c;
  }
  double gain_points = 0.0;
  bool pass = false;
  if (lru1 != nullptr && cost1 != nullptr) {
    gain_points = 100.0 * (cost1->hit_rate - lru1->hit_rate);
    pass = gain_points >= 5.0 && cost1->p99_ms <= lru1->p99_ms + 0.01;
  }
  std::printf("\n1%% ratio: tinylfu_cost vs lru = %+.1f hit-rate points, "
              "p99 %.1f ms vs %.1f ms => %s\n",
              gain_points, cost1 != nullptr ? cost1->p99_ms : 0.0,
              lru1 != nullptr ? lru1->p99_ms : 0.0,
              pass ? "PASS" : "FAIL");

  std::ofstream out(json_path);
  out << "{\"bench\":\"cache_policy\",\"workload\":\"tpcw\","
      << "\"zipf_theta\":0.8,\"clients\":" << clients
      << ",\"minutes\":" << minutes << ",\"cells\":[";
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    if (i != 0) out << ",";
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "{\"ratio\":%.3f,\"policy\":\"%s\",\"hit_rate\":%.4f,"
        "\"p99_ms\":%.2f,\"mean_ms\":%.2f,\"evictions\":%llu,"
        "\"admission_rejected\":%llu,\"sketch_resets\":%llu,"
        "\"cache_bytes\":%zu}",
        c.ratio, cache::CachePolicyName(c.policy), c.hit_rate, c.p99_ms,
        c.mean_ms, c.evictions, c.admission_rejected, c.sketch_resets,
        c.cache_capacity);
    out << buf;
  }
  char tail[160];
  std::snprintf(tail, sizeof(tail),
                "],\"gain_points_at_1pct\":%.2f,\"pass\":%s}\n",
                gain_points, pass ? "true" : "false");
  out << tail;
  out.close();
  std::printf("wrote %s\n", json_path);
  return pass ? 0 : 1;
}
