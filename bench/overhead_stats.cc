// Section 4.2.1 overheads: FDQ discovery/construction time relative to
// response time, extra predictive queries sent to the database, and the
// memory footprint of Apollo's learning state relative to the database.
//
// Paper numbers: FDQ discovery < 1% and construction < 2% of response
// time; ~25% additional queries to the remote database; learning state
// ~1.5% of database memory.
#include "bench_common.h"

int main() {
  using namespace apollo;
  bench::PrintHeader("Section 4.2.1: Apollo overhead statistics (TPC-W, 50 "
                     "clients)");
  workload::TpcwWorkload tpcw;
  auto cfg =
      bench::BaseConfig(workload::SystemType::kApollo, /*clients=*/50, 42);
  auto r = workload::RunExperiment(tpcw, cfg);

  const double mean_rt_us = r.metrics->histogram().Mean();
  const double find_us = r.mw.find_fdq_calls
                             ? r.mw.find_fdq_wall_us / r.mw.find_fdq_calls
                             : 0.0;
  const double construct_us =
      r.mw.construct_fdq_calls
          ? r.mw.construct_fdq_wall_us / r.mw.construct_fdq_calls
          : 0.0;
  const uint64_t client_db = r.remote.queries - r.remote.predictive_queries;

  std::printf("mean response time                 : %9.2f ms\n",
              mean_rt_us / 1000.0);
  std::printf("FDQ discovery (wall)               : %9.2f us/call = %.3f%% "
              "of response time\n",
              find_us, 100.0 * find_us / mean_rt_us);
  std::printf("FDQ construction (wall)            : %9.2f us/call = %.3f%% "
              "of response time\n",
              construct_us, 100.0 * construct_us / mean_rt_us);
  std::printf("remote DB queries (client/predict) : %llu / %llu = +%.1f%% "
              "extra load\n",
              static_cast<unsigned long long>(client_db),
              static_cast<unsigned long long>(r.remote.predictive_queries),
              client_db ? 100.0 * static_cast<double>(
                                      r.remote.predictive_queries) /
                              static_cast<double>(client_db)
                        : 0.0);
  std::printf("learning state                     : %.2f MiB = %.2f%% of "
              "database (%.1f MiB)\n",
              static_cast<double>(r.learning_bytes) / (1 << 20),
              100.0 * static_cast<double>(r.learning_bytes) /
                  static_cast<double>(r.db_bytes),
              static_cast<double>(r.db_bytes) / (1 << 20));
  std::printf("FDQs discovered / invalidated      : %llu / %llu\n",
              static_cast<unsigned long long>(r.mw.fdqs_discovered),
              static_cast<unsigned long long>(r.mw.fdqs_invalidated));
  std::printf("ADQ reloads                        : %llu\n",
              static_cast<unsigned long long>(r.mw.adq_reloads));
  std::printf("pub-sub coalesced client waits     : %llu\n",
              static_cast<unsigned long long>(r.mw.coalesced_waits));
  bench::PrintRunObservability(r);
  bench::PrintFullObservability(r);
  return 0;
}
