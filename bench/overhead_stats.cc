// Section 4.2.1 overheads: FDQ discovery/construction time relative to
// response time, extra predictive queries sent to the database, and the
// memory footprint of Apollo's learning state relative to the database.
//
// Paper numbers: FDQ discovery < 1% and construction < 2% of response
// time; ~25% additional queries to the remote database; learning state
// ~1.5% of database memory.
#include <chrono>
#include <fstream>

#include "bench_common.h"
#include "sql/template_cache.h"

namespace {

/// Measures the admission path (DESIGN.md Section 10) and writes
/// BENCH_admission.json: steady-state template-cache admission (lex fast
/// path) vs. the full parse+print route, ns/query, plus the in-run
/// admission histograms. Written silently — stdout stays byte-comparable
/// across runs.
void WriteAdmissionBench(const apollo::workload::RunResult& r,
                         const char* path) {
  using namespace apollo;
  using Clock = std::chrono::steady_clock;
  const std::vector<std::string> corpus = {
      "SELECT C_ID FROM CUSTOMER WHERE C_UNAME = 'USER5' AND C_PASSWD = "
      "'PWD5'",
      "SELECT OL_I_ID, I_TITLE FROM ORDER_LINE, ITEM WHERE OL_I_ID = I_ID "
      "AND OL_O_ID = 17",
      "SELECT I_ID, I_TITLE FROM ITEM WHERE I_ID = 42",
      "SELECT D_W_ID, D_ID, D_NEXT_O_ID FROM DISTRICT WHERE D_W_ID = 1 AND "
      "D_ID = 3",
      "UPDATE ITEM SET I_STOCK = 55 WHERE I_ID = 42",
      "INSERT INTO ORDER_LINE (OL_O_ID, OL_I_ID, OL_QTY) VALUES (9, 42, 2)",
  };

  sql::TemplateCache cache;
  for (const auto& q : corpus) (void)cache.Admit(q);

  uint64_t checksum = 0;
  constexpr int kFastIters = 50000;
  auto t0 = Clock::now();
  for (int i = 0; i < kFastIters; ++i) {
    for (const auto& q : corpus) {
      auto adm = cache.Admit(q);
      if (adm.ok()) checksum += adm->fingerprint();
    }
  }
  double fast_ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count()) /
      (static_cast<double>(kFastIters) * corpus.size());

  constexpr int kFullIters = 5000;
  t0 = Clock::now();
  for (int i = 0; i < kFullIters; ++i) {
    for (const auto& q : corpus) {
      auto info = sql::Templatize(q);
      if (info.ok()) checksum += info->fingerprint;
    }
  }
  double full_ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count()) /
      (static_cast<double>(kFullIters) * corpus.size());

  std::string run = "{\"admit_fast\":";
  bench::detail::AppendLatencyJson(r, "admit_fast_wall_us", &run);
  run += ",\"admit_full\":";
  bench::detail::AppendLatencyJson(r, "admit_full_wall_us", &run);
  run += "}";

  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"bench\":\"admission\",\"steady_state_ns_per_query\":%.1f,"
      "\"full_parse_ns_per_query\":%.1f,\"speedup\":%.2f,"
      "\"fast_hits\":%llu,\"fallbacks\":%llu,\"checksum\":%llu,"
      "\"run\":%s}\n",
      fast_ns, full_ns, fast_ns > 0 ? full_ns / fast_ns : 0.0,
      static_cast<unsigned long long>(cache.fast_hits()),
      static_cast<unsigned long long>(cache.fallbacks()),
      static_cast<unsigned long long>(checksum), run.c_str());
  std::ofstream out(path);
  out << buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace apollo;
  bench::PrintHeader("Section 4.2.1: Apollo overhead statistics (TPC-W, 50 "
                     "clients)");
  workload::TpcwWorkload tpcw;
  auto cfg =
      bench::BaseConfig(workload::SystemType::kApollo, /*clients=*/50, 42);
  auto r = workload::RunExperiment(tpcw, cfg);

  const double mean_rt_us = r.metrics->histogram().Mean();
  const double find_us = r.mw.find_fdq_calls
                             ? r.mw.find_fdq_wall_us / r.mw.find_fdq_calls
                             : 0.0;
  const double construct_us =
      r.mw.construct_fdq_calls
          ? r.mw.construct_fdq_wall_us / r.mw.construct_fdq_calls
          : 0.0;
  const uint64_t client_db = r.remote.queries - r.remote.predictive_queries;

  std::printf("mean response time                 : %9.2f ms\n",
              mean_rt_us / 1000.0);
  std::printf("FDQ discovery (wall)               : %9.2f us/call = %.3f%% "
              "of response time\n",
              find_us, 100.0 * find_us / mean_rt_us);
  std::printf("FDQ construction (wall)            : %9.2f us/call = %.3f%% "
              "of response time\n",
              construct_us, 100.0 * construct_us / mean_rt_us);
  std::printf("remote DB queries (client/predict) : %llu / %llu = +%.1f%% "
              "extra load\n",
              static_cast<unsigned long long>(client_db),
              static_cast<unsigned long long>(r.remote.predictive_queries),
              client_db ? 100.0 * static_cast<double>(
                                      r.remote.predictive_queries) /
                              static_cast<double>(client_db)
                        : 0.0);
  std::printf("learning state                     : %.2f MiB = %.2f%% of "
              "database (%.1f MiB)\n",
              static_cast<double>(r.learning_bytes) / (1 << 20),
              100.0 * static_cast<double>(r.learning_bytes) /
                  static_cast<double>(r.db_bytes),
              static_cast<double>(r.db_bytes) / (1 << 20));
  std::printf("FDQs discovered / invalidated      : %llu / %llu\n",
              static_cast<unsigned long long>(r.mw.fdqs_discovered),
              static_cast<unsigned long long>(r.mw.fdqs_invalidated));
  std::printf("ADQ reloads                        : %llu\n",
              static_cast<unsigned long long>(r.mw.adq_reloads));
  std::printf("pub-sub coalesced client waits     : %llu\n",
              static_cast<unsigned long long>(r.mw.coalesced_waits));
  bench::PrintRunObservability(r);
  bench::PrintFullObservability(r);
  // args: [admission_json_path]. Run from the repo root to land the file
  // there (see README "Admission microbench").
  WriteAdmissionBench(r, argc > 1 ? argv[1] : "BENCH_admission.json");
  return 0;
}
