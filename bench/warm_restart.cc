// Warm restart: time-to-90%-of-steady-state hit rate, cold vs. warm
// (DESIGN.md Section 11).
//
// The workload is correlation-dominated: each interaction walks one of
// `--chains` distinct three-step query chains (A -> B -> C, parameters
// propagated through result values, fresh key per interaction drawn from
// a keyspace far larger than the cache). Residency-based hits are
// therefore rare; nearly every cache hit is a *predictive prefetch* that
// exists only because the middleware has confirmed that chain's
// transition edges and param mappings. That is the regime the paper's
// geo-distributed applications live in, and the one where learned state
// is expensive to rebuild: each chain must be observed
// verification-period times before its predictions fire, so a cold
// instance relearns for minutes.
//
// Scenario "cold": blank learning state, online relearn; windowed samples
// record when the hit rate first reaches 90% of its own steady state
// (mean over the run's last quarter). The learned state is then
// checkpointed.
//
// Scenario "warm": identical testbed and seeds, fresh *empty* cache —
// only learning state crosses the restart, cached result sets are
// deliberately not trusted — but Restore() runs before the first query.
// Predictions fire from each client's first interaction, so the hit rate
// should cross the same threshold in <= 20% of the cold relearn time,
// with zero client-visible errors in either run.
//
// Hits are counted as cache hits plus coalesced waits (a read served by
// subscribing to an in-flight prefetch avoided the WAN round trip just
// the same). Emits BENCH_warm_restart.json plus the snapshot itself for
// the CI artifact; phase lengths are overridable so the CI smoke job can
// run a short version.
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/apollo_middleware.h"
#include "persist/snapshot.h"
#include "workload/client_driver.h"

namespace {

using namespace apollo;

struct Opts {
  int clients = 20;
  int chains = 60;         // distinct A->B->C template chains
  int keys = 200;          // rows per chain table
  double cold_minutes = 10.0;  // cold run: relearn + steady-state tail
  double warm_minutes = 4.0;   // warm run only needs to show the ramp
  double window_s = 15.0;      // hit-rate sampling window
  uint64_t seed = 42;
  std::string snapshot_path = "warm_restart.snapshot";
  std::string json_path = "BENCH_warm_restart.json";
};

/// One emulated client: think, then walk a random chain, propagating the
/// key through the three steps with a short app-side pause between them
/// (the render-then-query gap that prefetches exploit).
class ChainClient : public workload::WorkloadClient {
 public:
  ChainClient(int chains, int keys) : chains_(chains), keys_(keys) {}

  void RunInteraction(workload::ClientContext& ctx,
                      std::function<void()> done) override {
    const int t = static_cast<int>(ctx.rng().UniformInt(0, chains_ - 1));
    const int k = static_cast<int>(ctx.rng().UniformInt(1, keys_));
    const std::string ts = std::to_string(t);
    auto step3 = [&ctx, ts, k, done]() {
      ctx.Query("SELECT C_V FROM WR_C" + ts + " WHERE C_ID = " +
                    std::to_string(200000 + k),
                [done](common::ResultSetPtr) { done(); });
    };
    auto step2 = [&ctx, ts, k, step3]() {
      ctx.Query("SELECT B_ID, B_C_ID FROM WR_B" + ts + " WHERE B_ID = " +
                    std::to_string(100000 + k),
                [&ctx, step3](common::ResultSetPtr) {
                  ctx.loop()->After(util::Millis(200), step3);
                });
    };
    ctx.Query("SELECT A_ID, A_B_ID FROM WR_A" + ts + " WHERE A_ID = " +
                  std::to_string(k),
              [&ctx, step2](common::ResultSetPtr) {
                ctx.loop()->After(util::Millis(200), step2);
              });
  }

  double MeanThinkSeconds() const override { return 2.0; }

 private:
  int chains_;
  int keys_;
};

void SetupChainDb(db::Database* db, int chains, int keys) {
  using common::ValueType;
  for (int t = 0; t < chains; ++t) {
    const std::string ts = std::to_string(t);
    {
      db::Schema s("WR_A" + ts,
                   {{"A_ID", ValueType::kInt}, {"A_B_ID", ValueType::kInt}});
      s.AddIndex("PRIMARY", {"A_ID"});
      (void)db->CreateTable(std::move(s));
    }
    {
      db::Schema s("WR_B" + ts,
                   {{"B_ID", ValueType::kInt}, {"B_C_ID", ValueType::kInt}});
      s.AddIndex("PRIMARY", {"B_ID"});
      (void)db->CreateTable(std::move(s));
    }
    {
      db::Schema s("WR_C" + ts,
                   {{"C_ID", ValueType::kInt}, {"C_V", ValueType::kInt}});
      s.AddIndex("PRIMARY", {"C_ID"});
      (void)db->CreateTable(std::move(s));
    }
    for (int k = 1; k <= keys; ++k) {
      (void)db->GetTable("WR_A" + ts)
          ->Insert({common::Value::Int(k), common::Value::Int(100000 + k)});
      (void)db->GetTable("WR_B" + ts)
          ->Insert({common::Value::Int(100000 + k),
                    common::Value::Int(200000 + k)});
      (void)db->GetTable("WR_C" + ts)
          ->Insert({common::Value::Int(200000 + k),
                    common::Value::Int(7 * k)});
    }
  }
}

struct ScenarioOut {
  std::vector<double> window_end_s;
  std::vector<double> window_hit_rate;
  uint64_t client_errors = 0;
  uint64_t queries = 0;
  uint64_t predictions = 0;
  persist::RestoreStats restore;  // warm scenario only
};

/// First window end at which the hit rate reaches `threshold`; -1 if the
/// run never gets there.
double TimeToThreshold(const ScenarioOut& s, double threshold) {
  for (size_t i = 0; i < s.window_hit_rate.size(); ++i) {
    if (s.window_hit_rate[i] >= threshold) return s.window_end_s[i];
  }
  return -1.0;
}

/// Mean hit rate over the last quarter of the run's windows.
double SteadyHitRate(const ScenarioOut& s) {
  if (s.window_hit_rate.empty()) return 0.0;
  size_t tail = std::max<size_t>(1, s.window_hit_rate.size() / 4);
  double sum = 0.0;
  for (size_t i = s.window_hit_rate.size() - tail;
       i < s.window_hit_rate.size(); ++i) {
    sum += s.window_hit_rate[i];
  }
  return sum / static_cast<double>(tail);
}

/// Builds a fresh testbed (database, WAN, cache, middleware, clients) and
/// runs one scenario. Cold and warm runs differ only in `warm` (Restore
/// before the first query) and in length; all seeds match, so the client
/// population and think-time schedules are identical.
ScenarioOut RunScenario(const Opts& o, bool warm, double minutes) {
  db::Database db;
  SetupChainDb(&db, o.chains, o.keys);

  sim::EventLoop loop;
  auto obs = std::make_shared<obs::Observability>(8192);
  obs->trace.set_clock([&loop]() { return loop.now(); });
  obs->trace.set_enabled(true);

  net::RemoteDbConfig rcfg = bench::WanRemote();
  rcfg.seed = o.seed * 7919 + 13;
  net::RemoteDatabase remote(&loop, &db, rcfg, obs.get());

  // Cache far smaller than the keyspace: residency hits stay marginal, so
  // the hit rate tracks predictive prefetches — the component of steady
  // state that learned state actually buys.
  cache::KvCache cache(db.ApproximateDataBytes() / 50, /*num_shards=*/8,
                       obs.get(), "cache0.");
  core::ApolloConfig acfg = bench::PaperApolloConfig();
  // Paper-regime relearn cost: each of the `chains` template pairs needs
  // this many consistent observations before its predictions fire.
  acfg.verification_period = 10;
  acfg.seed = o.seed * 131;
  core::ApolloMiddleware mw(&loop, &remote, &cache, acfg, obs.get(), "mw0.");

  ScenarioOut out;
  if (warm) {
    auto st = mw.Restore(o.snapshot_path, &out.restore);
    if (!st.ok()) {
      std::fprintf(stderr, "restore failed: %s\n", st.message().c_str());
      std::exit(1);
    }
  }

  const util::SimTime start = loop.now();
  const util::SimTime end =
      start + static_cast<util::SimDuration>(minutes * 60.0 * 1e6);
  std::vector<std::unique_ptr<workload::ClientDriver>> drivers;
  for (int i = 0; i < o.clients; ++i) {
    auto d = std::make_unique<workload::ClientDriver>(
        &loop, &mw, /*id=*/i,
        std::make_unique<ChainClient>(o.chains, o.keys),
        o.seed * 733 + static_cast<uint64_t>(i));
    d->Start(end);
    drivers.push_back(std::move(d));
  }

  // Windowed hit-rate sampler over the middleware's client-read counters.
  struct Prev {
    uint64_t hits = 0, misses = 0;
  };
  auto prev = std::make_shared<Prev>();
  const auto window = static_cast<util::SimDuration>(o.window_s * 1e6);
  for (util::SimTime t = start + window; t <= end; t += window) {
    loop.At(t, [&, prev, t]() {
      const core::MiddlewareStats& s = mw.stats();
      const uint64_t hits = s.cache_hits + s.coalesced_waits;
      uint64_t dh = hits - prev->hits;
      uint64_t dm = s.cache_misses - prev->misses;
      prev->hits = hits;
      prev->misses = s.cache_misses;
      out.window_end_s.push_back(util::ToSeconds(t - start));
      out.window_hit_rate.push_back(
          dh + dm > 0 ? static_cast<double>(dh) /
                            static_cast<double>(dh + dm)
                      : 0.0);
    });
  }

  // Drain in-flight interactions, then leave > max delta-t past the last
  // query so the cold run's checkpoint can fold every closed transition
  // window it observed.
  loop.RunUntil(end + util::Seconds(30));

  for (const auto& d : drivers) out.client_errors += d->context().errors();
  out.queries = mw.stats().queries;
  out.predictions = mw.stats().predictions_issued;

  if (!warm) {
    auto st = mw.Checkpoint(o.snapshot_path);
    if (!st.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n", st.message().c_str());
      std::exit(1);
    }
  }
  return out;
}

void PrintScenario(const char* name, const ScenarioOut& s) {
  std::printf("%s: %llu queries, %llu predictions, %llu client-visible "
              "errors\n",
              name, static_cast<unsigned long long>(s.queries),
              static_cast<unsigned long long>(s.predictions),
              static_cast<unsigned long long>(s.client_errors));
  for (size_t i = 0; i < s.window_end_s.size(); ++i) {
    std::printf("  [%6.0fs] hit-rate %5.1f%%\n", s.window_end_s[i],
                100.0 * s.window_hit_rate[i]);
  }
  std::fflush(stdout);
}

bool ParseDouble(const char* arg, const char* flag, double* out) {
  size_t n = std::strlen(flag);
  if (std::strncmp(arg, flag, n) != 0 || arg[n] != '=') return false;
  *out = std::atof(arg + n + 1);
  return true;
}

bool ParseString(const char* arg, const char* flag, std::string* out) {
  size_t n = std::strlen(flag);
  if (std::strncmp(arg, flag, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Opts o;
  for (int i = 1; i < argc; ++i) {
    double v;
    if (ParseDouble(argv[i], "--cold-minutes", &o.cold_minutes) ||
        ParseDouble(argv[i], "--warm-minutes", &o.warm_minutes) ||
        ParseDouble(argv[i], "--window-s", &o.window_s) ||
        ParseString(argv[i], "--snapshot", &o.snapshot_path) ||
        ParseString(argv[i], "--json", &o.json_path)) {
      continue;
    }
    if (ParseDouble(argv[i], "--clients", &v)) {
      o.clients = static_cast<int>(v);
      continue;
    }
    if (ParseDouble(argv[i], "--chains", &v)) {
      o.chains = static_cast<int>(v);
      continue;
    }
    if (ParseDouble(argv[i], "--keys", &v)) {
      o.keys = static_cast<int>(v);
      continue;
    }
    if (ParseDouble(argv[i], "--seed", &v)) {
      o.seed = static_cast<uint64_t>(v);
      continue;
    }
    std::fprintf(stderr,
                 "usage: warm_restart [--cold-minutes=M] [--warm-minutes=M] "
                 "[--window-s=S] [--clients=N] [--chains=T] [--keys=K] "
                 "[--seed=S] [--snapshot=PATH] [--json=PATH]\n");
    return 2;
  }

  bench::PrintHeader(
      "Warm restart: time to 90% of steady-state hit rate, cold vs. warm "
      "(correlated-chain workload)");

  ScenarioOut cold = RunScenario(o, /*warm=*/false, o.cold_minutes);
  PrintScenario("cold", cold);
  ScenarioOut warm = RunScenario(o, /*warm=*/true, o.warm_minutes);
  PrintScenario("warm", warm);

  const double steady = SteadyHitRate(cold);
  const double threshold = 0.9 * steady;
  const double cold_t90 = TimeToThreshold(cold, threshold);
  const double warm_t90 = TimeToThreshold(warm, threshold);
  const double ratio =
      (cold_t90 > 0 && warm_t90 > 0) ? warm_t90 / cold_t90 : -1.0;

  std::printf(
      "\nsteady-state hit rate %.1f%% (cold-run tail); 90%% threshold "
      "%.1f%%\n",
      100.0 * steady, 100.0 * threshold);
  std::printf("cold time-to-90%%: %.0f s\n", cold_t90);
  std::printf("warm time-to-90%%: %.0f s  (restored %llu templates, %llu "
              "pairs, %llu sessions from %llu-byte snapshot)\n",
              warm_t90,
              static_cast<unsigned long long>(warm.restore.templates),
              static_cast<unsigned long long>(warm.restore.pairs),
              static_cast<unsigned long long>(warm.restore.sessions),
              static_cast<unsigned long long>(warm.restore.snapshot_bytes));
  std::printf("warm/cold ratio: %.3f  (target <= 0.20)\n", ratio);
  std::printf("client-visible errors: cold=%llu warm=%llu\n",
              static_cast<unsigned long long>(cold.client_errors),
              static_cast<unsigned long long>(warm.client_errors));
  const bool pass = ratio > 0 && ratio <= 0.20 && warm.client_errors == 0;
  std::printf("warm_restart_ok=%s\n", pass ? "yes" : "NO");

  std::ofstream json(o.json_path);
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"bench\":\"warm_restart\",\"clients\":%d,\"chains\":%d,"
      "\"keys\":%d,\"cold_minutes\":%.2f,\"warm_minutes\":%.2f,"
      "\"window_s\":%.1f,\"steady_hit_rate\":%.4f,"
      "\"cold_time_to_90_s\":%.1f,\"warm_time_to_90_s\":%.1f,"
      "\"warm_cold_ratio\":%.4f,\"cold_client_errors\":%llu,"
      "\"warm_client_errors\":%llu,\"snapshot_bytes\":%llu,"
      "\"restored_templates\":%llu,\"restored_pairs\":%llu,"
      "\"restored_sessions\":%llu,\"pass\":%s}\n",
      o.clients, o.chains, o.keys, o.cold_minutes, o.warm_minutes,
      o.window_s, steady, cold_t90, warm_t90, ratio,
      static_cast<unsigned long long>(cold.client_errors),
      static_cast<unsigned long long>(warm.client_errors),
      static_cast<unsigned long long>(warm.restore.snapshot_bytes),
      static_cast<unsigned long long>(warm.restore.templates),
      static_cast<unsigned long long>(warm.restore.pairs),
      static_cast<unsigned long long>(warm.restore.sessions),
      pass ? "true" : "false");
  json << buf;
  json.close();
  std::printf("wrote %s and %s\n", o.json_path.c_str(),
              o.snapshot_path.c_str());
  return 0;
}
