// Figure 5(a): TPC-W client scalability — average query response time for
// Apollo vs. Memcached vs. Fido at 20..50 clients.
//
// Paper shape: Apollo lowest (up to ~33% below Memcached, ~25% below Fido);
// Fido slightly below Memcached; all three decline as clients increase
// (shared-cache effect).
#include "bench_common.h"

int main() {
  using namespace apollo;
  bench::PrintHeader("Figure 5(a): TPC-W client scalability (10 sim-min runs)");
  for (workload::SystemType system : bench::AllSystems()) {
    for (int clients : {20, 30, 40, 50}) {
      workload::TpcwWorkload tpcw;
      auto cfg = bench::BaseConfig(system, clients, /*seed=*/42);
      auto result = workload::RunExperiment(tpcw, cfg);
      bench::PrintScalabilityRow(result);
      bench::PrintRunObservability(result);
    }
  }
  return 0;
}
