// Section 4.7 sensitivity: the delta-t x tau interplay on TPC-W.
//
// Paper findings: delta-t and tau are correlated — small delta-t needs
// small tau to catch relationships; large delta-t with small tau admits
// spurious relationships that the mapping verification period filters out.
// The defaults (15 s, 0.01) were empirically best.
#include "bench_common.h"

int main() {
  using namespace apollo;
  bench::PrintHeader("Section 4.7: sensitivity to delta-t and tau (TPC-W, "
                     "30 clients)");
  for (double dt_s : {2.0, 15.0, 30.0}) {
    for (double tau : {0.001, 0.01, 0.5}) {
      workload::TpcwWorkload tpcw;
      auto cfg = bench::BaseConfig(workload::SystemType::kApollo,
                                   /*clients=*/30, /*seed=*/42);
      cfg.duration = util::Minutes(6);
      cfg.apollo.delta_ts = {util::Seconds(1), util::Seconds(dt_s / 3),
                             util::Seconds(dt_s)};
      cfg.apollo.tau = tau;
      auto r = workload::RunExperiment(tpcw, cfg);
      std::printf("dt=%5.1fs tau=%5.3f  mean=%7.2f ms  hit-rate=%5.1f%%  "
                  "fdqs=%4llu  predictions=%llu\n",
                  dt_s, tau, r.MeanMs(), 100.0 * r.cache_stats.HitRate(),
                  static_cast<unsigned long long>(r.mw.fdqs_discovered),
                  static_cast<unsigned long long>(r.mw.predictions_issued));
      std::fflush(stdout);
      bench::PrintRunObservability(r);
    }
  }
  return 0;
}
