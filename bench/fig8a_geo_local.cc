// Figure 8(a): TPC-W with the database local to the edge node (a few ms
// of network latency), 20..50 clients.
//
// Paper shape: Apollo's relative advantage is largest here (up to ~50%
// lower response time) — with cheap round trips, the remaining cache
// misses and expensive queries dominate the mean, and Apollo removes
// exactly those.
#include "bench_common.h"

int main() {
  using namespace apollo;
  bench::PrintHeader("Figure 8(a): TPC-W, database in the local region");
  for (workload::SystemType system : bench::AllSystems()) {
    for (int clients : {20, 50}) {
      workload::TpcwWorkload tpcw;
      auto cfg = bench::BaseConfig(system, clients, /*seed=*/42);
      cfg.remote = bench::LocalRemote();
      auto result = workload::RunExperiment(tpcw, cfg);
      bench::PrintScalabilityRow(result);
      bench::PrintRunObservability(result);
    }
  }
  return 0;
}
