// Shared helpers for the figure-reproduction benchmark harnesses.
//
// Each bench binary regenerates one figure of the paper, printing the same
// series the paper plots. Absolute values come from the simulator's latency
// model; the comparisons (who wins, by what factor, where lines cross) are
// the reproduction targets — see EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "workload/driver.h"
#include "workload/tpcc.h"
#include "workload/tpcw.h"

namespace apollo::bench {

/// The paper's geo-distributed deployment: US-East edge, US-West database
/// (~70 ms RTT).
inline net::RemoteDbConfig WanRemote() {
  net::RemoteDbConfig cfg;
  cfg.rtt = sim::LatencyModel::LogNormal(util::Millis(70), 0.05);
  return cfg;
}

/// Figure 8(a): database in the same region as the edge (a few ms).
inline net::RemoteDbConfig LocalRemote() {
  net::RemoteDbConfig cfg;
  cfg.rtt = sim::LatencyModel::LogNormal(util::Millis(3), 0.10);
  return cfg;
}

/// Figure 8(b): database one region over (~20 ms).
inline net::RemoteDbConfig ModerateRemote() {
  net::RemoteDbConfig cfg;
  cfg.rtt = sim::LatencyModel::LogNormal(util::Millis(20), 0.08);
  return cfg;
}

/// Paper defaults (Section 4.7): delta_t = 15 s, tau = 0.01, alpha = 0.
inline core::ApolloConfig PaperApolloConfig() {
  core::ApolloConfig cfg;
  cfg.delta_ts = {util::Seconds(1), util::Seconds(5), util::Seconds(15)};
  cfg.tau = 0.01;
  cfg.alpha = 0.0;
  return cfg;
}

/// The three experimental configurations of Section 4.1. Memcached gets a
/// 20-minute cache warm-up; Fido is trained offline on 2x-length traces;
/// Apollo starts cold.
inline workload::RunConfig BaseConfig(workload::SystemType system,
                                      int clients, uint64_t seed) {
  workload::RunConfig cfg;
  cfg.system = system;
  cfg.num_clients = clients;
  // The paper measures 20-minute intervals; the sweep defaults to 10
  // simulated minutes (shapes are stable well before that — see
  // fig5c_learning_over_time, which runs the full 20) to keep the whole
  // suite's wall time reasonable on one core.
  cfg.duration = util::Minutes(10);
  cfg.remote = WanRemote();
  cfg.apollo = PaperApolloConfig();
  cfg.seed = seed;
  if (system == workload::SystemType::kMemcached) {
    cfg.warmup = cfg.duration;  // warmed cache, as in the paper
  }
  cfg.fido_training_factor = 1.5;
  return cfg;
}

inline const std::vector<workload::SystemType>& AllSystems() {
  static const std::vector<workload::SystemType> kSystems = {
      workload::SystemType::kApollo, workload::SystemType::kMemcached,
      workload::SystemType::kFido};
  return kSystems;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintScalabilityRow(const workload::RunResult& r) {
  std::printf(
      "%-10s clients=%3d  mean=%7.2f ms  p95=%8.2f ms  queries=%7llu  "
      "hit-rate=%5.1f%%  predictions=%llu\n",
      r.system_name.c_str(), r.num_clients, r.MeanMs(),
      r.PercentileMs(95), static_cast<unsigned long long>(r.mw.queries),
      100.0 * r.cache_stats.HitRate(),
      static_cast<unsigned long long>(r.mw.predictions_issued));
  std::fflush(stdout);
}

}  // namespace apollo::bench
