// Shared helpers for the figure-reproduction benchmark harnesses.
//
// Each bench binary regenerates one figure of the paper, printing the same
// series the paper plots. Absolute values come from the simulator's latency
// model; the comparisons (who wins, by what factor, where lines cross) are
// the reproduction targets — see EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "workload/driver.h"
#include "workload/tpcc.h"
#include "workload/tpcw.h"

namespace apollo::bench {

/// The paper's geo-distributed deployment: US-East edge, US-West database
/// (~70 ms RTT).
inline net::RemoteDbConfig WanRemote() {
  net::RemoteDbConfig cfg;
  cfg.rtt = sim::LatencyModel::LogNormal(util::Millis(70), 0.05);
  return cfg;
}

/// Figure 8(a): database in the same region as the edge (a few ms).
inline net::RemoteDbConfig LocalRemote() {
  net::RemoteDbConfig cfg;
  cfg.rtt = sim::LatencyModel::LogNormal(util::Millis(3), 0.10);
  return cfg;
}

/// Figure 8(b): database one region over (~20 ms).
inline net::RemoteDbConfig ModerateRemote() {
  net::RemoteDbConfig cfg;
  cfg.rtt = sim::LatencyModel::LogNormal(util::Millis(20), 0.08);
  return cfg;
}

/// Paper defaults (Section 4.7): delta_t = 15 s, tau = 0.01, alpha = 0.
inline core::ApolloConfig PaperApolloConfig() {
  core::ApolloConfig cfg;
  cfg.delta_ts = {util::Seconds(1), util::Seconds(5), util::Seconds(15)};
  cfg.tau = 0.01;
  cfg.alpha = 0.0;
  return cfg;
}

/// The three experimental configurations of Section 4.1. Memcached gets a
/// 20-minute cache warm-up; Fido is trained offline on 2x-length traces;
/// Apollo starts cold.
inline workload::RunConfig BaseConfig(workload::SystemType system,
                                      int clients, uint64_t seed) {
  workload::RunConfig cfg;
  cfg.system = system;
  cfg.num_clients = clients;
  // The paper measures 20-minute intervals; the sweep defaults to 10
  // simulated minutes (shapes are stable well before that — see
  // fig5c_learning_over_time, which runs the full 20) to keep the whole
  // suite's wall time reasonable on one core.
  cfg.duration = util::Minutes(10);
  cfg.remote = WanRemote();
  cfg.apollo = PaperApolloConfig();
  cfg.seed = seed;
  if (system == workload::SystemType::kMemcached) {
    cfg.warmup = cfg.duration;  // warmed cache, as in the paper
  }
  cfg.fido_training_factor = 1.5;
  // Tracing is on for every harness run: the lifecycle ring plus the
  // registry counters must fit inside the <2% overhead budget (ISSUE/
  // DESIGN.md Section 8), so the benches exercise the instrumented path.
  cfg.enable_trace = true;
  return cfg;
}

inline const std::vector<workload::SystemType>& AllSystems() {
  static const std::vector<workload::SystemType> kSystems = {
      workload::SystemType::kApollo, workload::SystemType::kMemcached,
      workload::SystemType::kFido};
  return kSystems;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintScalabilityRow(const workload::RunResult& r) {
  std::printf(
      "%-10s clients=%3d  mean=%7.2f ms  p95=%8.2f ms  queries=%7llu  "
      "hit-rate=%5.1f%%  predictions=%llu\n",
      r.system_name.c_str(), r.num_clients, r.MeanMs(),
      r.PercentileMs(95), static_cast<unsigned long long>(r.mw.queries),
      100.0 * r.cache_stats.HitRate(),
      static_cast<unsigned long long>(r.mw.predictions_issued));
  std::fflush(stdout);
}

namespace detail {
/// Sums count/sum over the per-instance latency histograms whose names end
/// in `suffix` ("mw<k>.latency.<suffix>"), and appends a compact JSON
/// object {"count":N,"mean_us":M} to `out`.
inline void AppendLatencyJson(const workload::RunResult& r,
                              const char* suffix, std::string* out) {
  double sum_us = 0.0;
  uint64_t count = 0;
  for (int k = 0;; ++k) {
    const obs::HistogramMetric* h = r.obs->metrics.FindHistogram(
        "mw" + std::to_string(k) + ".latency." + suffix);
    if (h == nullptr) break;
    sum_us += h->Sum();
    count += h->Count();
  }
  char buf[96];
  std::snprintf(buf, sizeof(buf), "{\"count\":%llu,\"mean_us\":%.2f}",
                static_cast<unsigned long long>(count),
                count ? sum_us / static_cast<double>(count) : 0.0);
  out->append(buf);
}
}  // namespace detail

/// One-line JSON summary of the run's per-query latency breakdown and
/// trace-ring activity (DESIGN.md Section 8). The first line contains only
/// simulated quantities and is bit-stable across identical runs; the wall
/// (real-time) learn/predict stages go on a separate line tagged "(wall)"
/// so determinism checks can exclude it.
inline void PrintRunObservability(const workload::RunResult& r) {
  if (!r.obs) return;
  std::string line = "obs: {\"cache\":";
  detail::AppendLatencyJson(r, "cache_us", &line);
  line += ",\"wan\":";
  detail::AppendLatencyJson(r, "wan_us", &line);
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                ",\"trace\":{\"recorded\":%llu,\"dropped\":%llu}}",
                static_cast<unsigned long long>(r.obs->trace.total_recorded()),
                static_cast<unsigned long long>(r.obs->trace.dropped()));
  line += buf;
  std::printf("%s\n", line.c_str());

  std::string wall = "obs (wall): {\"learn\":";
  detail::AppendLatencyJson(r, "learn_wall_us", &wall);
  wall += ",\"predict_decide\":";
  detail::AppendLatencyJson(r, "predict_decide_wall_us", &wall);
  wall += "}";
  std::printf("%s\n", wall.c_str());
  std::fflush(stdout);
}

/// Full registry dump for single-run benches: every deterministic
/// instrument in registration order, then the wall instruments on a
/// "(wall)"-tagged line.
inline void PrintFullObservability(const workload::RunResult& r) {
  if (!r.obs) return;
  std::printf("obs registry: %s\n",
              r.obs->metrics.ToJson(obs::ExportFilter::kDeterministic)
                  .c_str());
  std::printf("obs registry (wall): %s\n",
              r.obs->metrics.ToJson(obs::ExportFilter::kWallOnly).c_str());
  std::fflush(stdout);
}

}  // namespace apollo::bench
