// Figure 5(c): learning over time — mean TPC-W response time in 4-minute
// buckets across a 20-minute run, 50 clients.
//
// Paper shape: Apollo trends downward (~30% better by the end than its
// first four minutes) as it learns correlations online; Memcached and Fido
// oscillate around a flat level.
#include "bench_common.h"

int main() {
  using namespace apollo;
  bench::PrintHeader(
      "Figure 5(c): TPC-W response time over time (4-min buckets, 50 "
      "clients)");
  for (workload::SystemType system : bench::AllSystems()) {
    workload::TpcwWorkload tpcw;
    auto cfg = bench::BaseConfig(system, /*clients=*/50, /*seed=*/42);
    cfg.duration = util::Minutes(20);
    cfg.bucket_width = util::Minutes(4);
    auto result = workload::RunExperiment(tpcw, cfg);
    std::printf("%-10s", result.system_name.c_str());
    for (const auto& point : result.metrics->Timeline()) {
      std::printf("  [%4.0f-%4.0fmin] %7.2f ms", point.minute,
                  point.minute + 4, point.mean_ms);
    }
    std::printf("\n");
    std::fflush(stdout);
    bench::PrintRunObservability(result);
  }
  return 0;
}
