// Ablation: warehouse access skew on TPC-C (paper Section 4.3's remark).
//
// With uniform warehouse choice, few queries are already cached when their
// prediction fires, so Apollo predictively executes more; under Zipf skew,
// popular instances are already cached (both systems hit more often) and
// Apollo issues fewer predictive executions — narrowing but not erasing
// its advantage.
#include "bench_common.h"

int main() {
  using namespace apollo;
  bench::PrintHeader("Ablation: TPC-C warehouse skew (100 clients)");
  for (double theta : {0.0, 0.99}) {
    for (workload::SystemType system :
         {workload::SystemType::kApollo, workload::SystemType::kMemcached}) {
      workload::TpccConfig ccfg;
      ccfg.warehouse_zipf_theta = theta;
      workload::TpccWorkload tpcc(ccfg);
      auto cfg = bench::BaseConfig(system, /*clients=*/100, /*seed=*/42);
      cfg.duration = util::Minutes(8);
      auto r = workload::RunExperiment(tpcc, cfg);
      std::printf("theta=%4.2f %-10s mean=%7.2f ms  hit-rate=%5.1f%%  "
                  "predictions=%7llu  skipped-cached=%llu\n",
                  theta, r.system_name.c_str(), r.MeanMs(),
                  100.0 * r.cache_stats.HitRate(),
                  static_cast<unsigned long long>(r.mw.predictions_issued),
                  static_cast<unsigned long long>(
                      r.mw.predictions_skipped_cached));
      std::fflush(stdout);
      bench::PrintRunObservability(r);
    }
  }
  return 0;
}
