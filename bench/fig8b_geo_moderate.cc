// Figure 8(b): TPC-W with the database one region away (~20 ms), 20..50
// clients.
//
// Paper shape: Apollo up to ~40% below the baselines; ordering
// Apollo < Fido <= Memcached preserved at moderate latency.
#include "bench_common.h"

int main() {
  using namespace apollo;
  bench::PrintHeader("Figure 8(b): TPC-W, database in a nearby region");
  for (workload::SystemType system : bench::AllSystems()) {
    for (int clients : {20, 50}) {
      workload::TpcwWorkload tpcw;
      auto cfg = bench::BaseConfig(system, clients, /*seed=*/42);
      cfg.remote = bench::ModerateRemote();
      auto result = workload::RunExperiment(tpcw, cfg);
      bench::PrintScalabilityRow(result);
      bench::PrintRunObservability(result);
    }
  }
  return 0;
}
