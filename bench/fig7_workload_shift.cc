// Figure 7: adapting to changing workloads — clients run TPC-C for the
// first half of the measurement window, then switch to TPC-W. Mean
// response time is reported in 2-minute buckets.
//
// Paper shape: Apollo's response time drops as it learns TPC-C; a brief
// penalty at the switch (no predictions, cold TPC-W cache entries); then
// Apollo re-learns online and returns to its usual TPC-W level, while
// Fido (trained on TPC-C) and Memcached stay flat.
#include "bench_common.h"

int main() {
  using namespace apollo;
  bench::PrintHeader(
      "Figure 7: TPC-C -> TPC-W workload shift (switch at minute 6)");
  for (workload::SystemType system : bench::AllSystems()) {
    workload::TpccConfig tpcc_cfg;
    workload::TpccWorkload tpcc(tpcc_cfg);
    workload::TpcwConfig tpcw_cfg;
    tpcw_cfg.table_prefix = "TPCW_";  // co-deployed schemas
    workload::TpcwWorkload tpcw(tpcw_cfg);

    auto cfg = bench::BaseConfig(system, /*clients=*/50, /*seed=*/42);
    cfg.duration = util::Minutes(12);
    cfg.switch_to = &tpcw;
    cfg.switch_at = util::Minutes(6);
    cfg.bucket_width = util::Minutes(2);
    auto result = workload::RunExperiment(tpcc, cfg);
    std::printf("%-10s", result.system_name.c_str());
    for (const auto& point : result.metrics->Timeline()) {
      std::printf("  [%2.0fm]%7.1f", point.minute, point.mean_ms);
    }
    std::printf("  (ms; switch after the 6m mark)\n");
    std::fflush(stdout);
    bench::PrintRunObservability(result);
  }
  return 0;
}
