// Figure 6: TPC-C scalability — average response time at 50..200 clients
// under the modified read-heavy mix (5% Payment / 47.5% Order Status /
// 47.5% Stock Level), uniform warehouse choice.
//
// Paper shape: Apollo significantly below both baselines across the whole
// range; Fido ~= Memcached (instance-level prediction cannot generalize
// over the rarely-repeating parameters of a large database).
#include "bench_common.h"

int main() {
  using namespace apollo;
  bench::PrintHeader("Figure 6: TPC-C client scalability (10 sim-min runs)");
  for (workload::SystemType system : bench::AllSystems()) {
    for (int clients : {50, 100, 200}) {
      workload::TpccWorkload tpcc;
      auto cfg = bench::BaseConfig(system, clients, /*seed=*/42);
      auto result = workload::RunExperiment(tpcc, cfg);
      bench::PrintScalabilityRow(result);
      bench::PrintRunObservability(result);
    }
  }
  return 0;
}
