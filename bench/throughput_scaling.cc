// Throughput scaling of the concurrent runtime (src/rt/): TPC-W
// queries/sec and tail latency vs. worker count.
//
// The figure-reproduction harnesses run the middleware on the
// deterministic simulator; this bench runs the same pipeline on real
// threads through rt::ConcurrentApollo. Each worker is one closed-loop
// TPC-W emulated browser (think time elided — we measure middleware
// capacity, not the spec's residence-time mix) driving interactions
// back-to-back for a fixed wall-clock window. The remote database round
// trip is a real sleep, so throughput scales by overlapping WAN waits
// across workers — the deployment property the runtime exists for.
//
// Output: one JSON line per worker count with qps and client-latency
// percentiles, then the full MetricsRegistry export (per-worker pool
// queue-wait and learn-lock-wait histograms included) for the largest
// run. See README "Throughput scaling bench".
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "rt/concurrent_apollo.h"
#include "sim/event_loop.h"
#include "workload/tpcw.h"
#include "workload/workload.h"

namespace apollo {
namespace {

/// Synchronous middleware shim: routes ClientContext::Query into
/// ConcurrentApollo::Execute on the calling worker thread and fires the
/// callback inline, so the unmodified TPC-W WorkloadClient state machines
/// drive the threaded runtime.
class RuntimeShim : public core::Middleware {
 public:
  RuntimeShim(rt::ConcurrentApollo* runtime, obs::HistogramMetric* latency_us,
              std::atomic<uint64_t>* completed)
      : runtime_(runtime), latency_us_(latency_us), completed_(completed) {}

  void SubmitQuery(core::ClientId client, const std::string& sql,
                   QueryCallback callback) override {
    auto t0 = std::chrono::steady_clock::now();
    auto result = runtime_->Execute(client, sql);
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    latency_us_->Record(us);
    completed_->fetch_add(1, std::memory_order_relaxed);
    callback(std::move(result));
  }

  const core::MiddlewareStats& stats() const override { return stats_; }
  std::string name() const override { return "rt-shim"; }

 private:
  rt::ConcurrentApollo* runtime_;
  obs::HistogramMetric* latency_us_;
  std::atomic<uint64_t>* completed_;
  core::MiddlewareStats stats_;
};

struct Point {
  int workers = 0;
  double seconds = 0;
  uint64_t queries = 0;
  double qps = 0;
  int64_t p50_us = 0;
  int64_t p99_us = 0;
  uint64_t admit_fast = 0;      // lex fast-path admissions
  uint64_t admit_fallback = 0;  // full-parse admissions
};

Point RunScale(int workers, std::chrono::milliseconds window,
               std::chrono::microseconds rtt, bool print_metrics) {
  db::Database db;
  workload::TpcwWorkload workload;
  auto status = workload.Setup(&db);
  if (!status.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", status.message().c_str());
    std::exit(1);
  }

  rt::ConcurrentApolloConfig cfg;
  cfg.gateway.rtt = rtt;
  cfg.pool.num_threads = std::max(4, 2 * workers);
  cfg.pool.queue_capacity = 256;
  cfg.cache_bytes = db.ApproximateDataBytes() / 20;  // the 5% rule
  rt::ConcurrentApollo apollo(&db, cfg);
  auto* latency_us =
      apollo.observability().metrics.RegisterHistogram("bench.query_wall_us");
  std::atomic<uint64_t> completed{0};
  RuntimeShim shim(&apollo, latency_us, &completed);

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  auto t0 = std::chrono::steady_clock::now();
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      // Each worker owns one emulated browser; the loop/rng/context are
      // thread-local, everything behind the shim is shared.
      sim::EventLoop loop;
      util::Rng rng(1000 + static_cast<uint64_t>(w));
      auto client = workload.MakeClient(w, /*seed=*/7 * w + 1);
      workload::ClientContext ctx(&loop, &shim, w, &rng);
      while (!stop.load(std::memory_order_relaxed)) {
        bool finished = false;
        client->RunInteraction(ctx, [&finished] { finished = true; });
        if (!finished) {
          std::fprintf(stderr, "interaction did not complete inline\n");
          std::exit(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(window);
  stop.store(true);
  for (auto& t : threads) t.join();
  double seconds = std::chrono::duration_cast<std::chrono::duration<double>>(
                       std::chrono::steady_clock::now() - t0)
                       .count();

  Point p;
  p.workers = workers;
  p.seconds = seconds;
  p.queries = completed.load();
  p.qps = static_cast<double>(p.queries) / seconds;
  p.p50_us = latency_us->Percentile(50);
  p.p99_us = latency_us->Percentile(99);
  p.admit_fast = apollo.template_cache().fast_hits();
  p.admit_fallback = apollo.template_cache().fallbacks();

  if (print_metrics) {
    std::printf("%s\n",
                apollo.observability()
                    .metrics.ToJson(obs::ExportFilter::kAll)
                    .c_str());
  }
  apollo.Shutdown();
  return p;
}

}  // namespace
}  // namespace apollo

int main(int argc, char** argv) {
  // args: [window_ms] [rtt_us]. Default RTT is the paper's US-East ->
  // US-West WAN (~70 ms); shorter round trips shrink the overlap window
  // and with it the scaling headroom on few cores.
  std::chrono::milliseconds window(argc > 1 ? std::atoi(argv[1]) : 4000);
  std::chrono::microseconds rtt(argc > 2 ? std::atol(argv[2]) : 70000);

  std::vector<int> counts = {1, 2, 4, 8};
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 0 &&
      std::find(counts.begin(), counts.end(), hw) == counts.end()) {
    counts.push_back(hw);
    std::sort(counts.begin(), counts.end());
  }

  std::printf("# throughput_scaling: TPC-W closed-loop, rtt=%ldus, "
              "window=%ldms\n",
              static_cast<long>(rtt.count()),
              static_cast<long>(window.count()));
  double qps1 = 0;
  std::string json = "[";
  for (size_t i = 0; i < counts.size(); ++i) {
    bool last = i + 1 == counts.size();
    apollo::Point p = apollo::RunScale(counts[i], window, rtt, last);
    if (p.workers == 1) qps1 = p.qps;
    char line[320];
    std::snprintf(
        line, sizeof(line),
        "{\"bench\":\"throughput_scaling\",\"workers\":%d,"
        "\"seconds\":%.2f,\"queries\":%llu,\"qps\":%.1f,"
        "\"p50_us\":%lld,\"p99_us\":%lld,\"speedup_vs_1\":%.2f,"
        "\"admit_fast\":%llu,\"admit_fallback\":%llu}",
        p.workers, p.seconds, static_cast<unsigned long long>(p.queries),
        p.qps, static_cast<long long>(p.p50_us),
        static_cast<long long>(p.p99_us), qps1 > 0 ? p.qps / qps1 : 1.0,
        static_cast<unsigned long long>(p.admit_fast),
        static_cast<unsigned long long>(p.admit_fallback));
    std::printf("%s\n", line);
    std::fflush(stdout);
    if (i > 0) json += ",";
    json += line;
  }
  json += "]\n";
  // args: [window_ms] [rtt_us] [json_path]. Run from the repo root to land
  // the file there (see README "Throughput scaling bench").
  std::ofstream out(argc > 3 ? argv[3] : "BENCH_throughput.json");
  out << json;
  return 0;
}
