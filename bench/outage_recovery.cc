// Outage recovery: hit rate and tail latency through an injected WAN
// outage-and-recovery window (chaos hardening, DESIGN.md "Fault model").
//
// A TPC-W/Apollo run faces 2% transient attempt errors plus mild latency
// jitter for the whole run, and a full 60-second outage starting at minute
// 8. Expected shape: during the outage the circuit breaker opens,
// predictive load is shed, client queries burn their retry budgets (some
// errors are client-visible — the link is genuinely down); after the
// window closes the breaker re-closes and the hit rate recovers to within
// a few percent of its pre-outage steady state within ~a minute.
#include "bench_common.h"

int main() {
  using namespace apollo;

  const util::SimTime outage_start = util::Minutes(8);
  const util::SimTime outage_end = outage_start + util::Seconds(60);

  bench::PrintHeader(
      "Outage recovery: TPC-W/Apollo through a 60 s WAN outage at minute 8 "
      "(2% transient errors throughout; 30 s samples)");

  workload::TpcwWorkload tpcw;
  auto cfg = bench::BaseConfig(workload::SystemType::kApollo,
                               /*clients=*/20, /*seed=*/42);
  cfg.duration = util::Minutes(16);
  cfg.bucket_width = util::Seconds(30);
  cfg.bucket_percentiles = true;
  cfg.sample_interval = util::Seconds(30);

  cfg.remote.faults.transient_error_rate = 0.02;
  cfg.remote.faults.latency_jitter = 0.05;
  cfg.remote.faults.outages = {{outage_start, outage_end}};
  cfg.remote.query_timeout = util::Seconds(1);
  cfg.remote.max_retries = 3;
  cfg.remote.breaker_failure_threshold = 8;
  cfg.remote.breaker_cooldown = util::Seconds(2);

  auto result = workload::RunExperiment(tpcw, cfg);

  // Join the latency timeline (30 s buckets) with the sampled counters by
  // bucket end-minute.
  std::printf(
      "%8s %8s %10s %9s %9s %8s %8s %8s %7s %7s\n", "minute", "queries",
      "hit-rate", "mean-ms", "p99-ms", "retries", "timeout", "shed",
      "brk-op", "c-errs");
  std::vector<workload::RunMetrics::TimelinePoint> timeline =
      result.metrics->Timeline();
  for (const auto& s : result.samples) {
    const workload::RunMetrics::TimelinePoint* tp = nullptr;
    for (const auto& p : timeline) {
      double end_minute = p.minute + 0.5;  // 30 s buckets
      if (end_minute > s.minute_end - 1e-9 &&
          end_minute < s.minute_end + 1e-9) {
        tp = &p;
        break;
      }
    }
    const char* marker =
        (s.minute_end > util::ToSeconds(outage_start) / 60.0 &&
         s.minute_end <=
             util::ToSeconds(outage_end) / 60.0 + 0.5)
            ? "  <- outage"
            : "";
    std::printf(
        "%8.1f %8llu %9.1f%% %9.2f %9.2f %8llu %8llu %8llu %7llu %7llu%s\n",
        s.minute_end, static_cast<unsigned long long>(s.queries),
        100.0 * s.hit_rate, tp ? tp->mean_ms : 0.0, tp ? tp->p99_ms : 0.0,
        static_cast<unsigned long long>(s.retries),
        static_cast<unsigned long long>(s.timeouts),
        static_cast<unsigned long long>(s.shed_predictions +
                                        s.shed_adq_reloads),
        static_cast<unsigned long long>(s.breaker_opens),
        static_cast<unsigned long long>(s.client_errors), marker);
  }

  // Steady-state comparison: mean hit rate before the outage vs. after a
  // one-minute recovery grace period.
  double pre_sum = 0, post_sum = 0;
  int pre_n = 0, post_n = 0;
  const double outage_start_min = util::ToSeconds(outage_start) / 60.0;
  const double recovered_min = util::ToSeconds(outage_end) / 60.0 + 1.0;
  for (const auto& s : result.samples) {
    if (s.minute_end <= outage_start_min && s.minute_end > 2.0) {
      // skip the first 2 min of cold-start learning
      pre_sum += s.hit_rate;
      ++pre_n;
    } else if (s.minute_end > recovered_min) {
      post_sum += s.hit_rate;
      ++post_n;
    }
  }
  const double pre = pre_n > 0 ? pre_sum / pre_n : 0.0;
  const double post = post_n > 0 ? post_sum / post_n : 0.0;
  std::printf(
      "\nsteady-state hit rate: pre-outage %.1f%%  post-recovery %.1f%%  "
      "(delta %+.1f pp)\n",
      100.0 * pre, 100.0 * post, 100.0 * (post - pre));
  std::printf(
      "totals: retries=%llu timeouts=%llu breaker_opens=%llu "
      "shed_predictions=%llu shed_adq_reloads=%llu "
      "subscriber_fallbacks=%llu client_visible_errors=%llu\n",
      static_cast<unsigned long long>(result.remote.retries),
      static_cast<unsigned long long>(result.remote.timeouts),
      static_cast<unsigned long long>(result.remote.breaker_opens),
      static_cast<unsigned long long>(result.mw.shed_predictions),
      static_cast<unsigned long long>(result.mw.shed_adq_reloads),
      static_cast<unsigned long long>(result.mw.subscriber_fallbacks),
      static_cast<unsigned long long>(result.client_visible_errors));
  std::printf("recovered_within_5pct=%s\n",
              post >= pre - 0.05 ? "yes" : "NO");
  bench::PrintRunObservability(result);
  return 0;
}
