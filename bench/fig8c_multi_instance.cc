// Figure 8(c): horizontal scaling — 1 vs 2 vs 3 Apollo instances on weak
// (m4.xlarge-like, 4 vCPU) machines, 20..100 clients, each instance with a
// dedicated cache and a disjoint client partition.
//
// Paper shape: the 1-instance configuration saturates and its response
// time climbs steeply with client load; 2 instances hold out longer; 3
// instances stay flat. At low client counts the fewer-instance configs can
// be slightly better (more shared training data per engine).
#include "bench_common.h"

int main() {
  using namespace apollo;
  bench::PrintHeader(
      "Figure 8(c): multiple Apollo instances (weak 4-core machines)");
  for (int instances : {1, 2, 3}) {
    for (int clients : {20, 60, 100}) {
      workload::TpcwWorkload tpcw;
      auto cfg = bench::BaseConfig(workload::SystemType::kApollo, clients,
                                   /*seed=*/42);
      cfg.num_instances = instances;
      // Weak m4.xlarge-class instance, modelled as one effective engine
      // worker with ~20 ms of middleware CPU per query (request handling,
      // session bookkeeping, learning): one instance approaches
      // saturation near 100 clients (~40 queries+predictions/s), which is
      // the knee the paper's Figure 8(c) shows; two and three instances
      // split the load and stay flat.
      cfg.apollo.engine_servers = 1;
      cfg.apollo.engine_overhead_per_query = util::Millis(20);
      cfg.apollo.engine_overhead_per_prediction = util::Millis(15);
      auto result = workload::RunExperiment(tpcw, cfg);
      std::printf("%d instance(s) clients=%3d  mean=%7.2f ms  p95=%8.2f ms\n",
                  instances, clients, result.MeanMs(),
                  result.PercentileMs(95));
      std::fflush(stdout);
      bench::PrintRunObservability(result);
    }
  }
  return 0;
}
