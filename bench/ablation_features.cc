// Ablation: the design choices DESIGN.md calls out, each toggled off
// individually against the full system (TPC-W, 40 clients).
//   - pipelining (Section 2.4)
//   - freshness model (Section 3.4.1)
//   - informed ADQ reload (Section 3.4.2)
//   - publish-subscribe dedup (Section 3.3)
#include "bench_common.h"

int main() {
  using namespace apollo;
  bench::PrintHeader("Ablation: Apollo feature toggles (TPC-W, 40 clients)");

  struct Variant {
    const char* name;
    void (*apply)(core::ApolloConfig&);
  };
  const Variant variants[] = {
      {"full", [](core::ApolloConfig&) {}},
      {"-pipelining",
       [](core::ApolloConfig& c) { c.enable_pipelining = false; }},
      {"-freshness",
       [](core::ApolloConfig& c) { c.enable_freshness_check = false; }},
      {"-adq-reload",
       [](core::ApolloConfig& c) { c.enable_adq_reload = false; }},
      {"-pubsub",
       [](core::ApolloConfig& c) { c.enable_pubsub_dedup = false; }},
      {"-prediction (=memcached)",
       [](core::ApolloConfig& c) { c.enable_prediction = false; }},
  };
  for (const auto& v : variants) {
    workload::TpcwWorkload tpcw;
    auto cfg = bench::BaseConfig(workload::SystemType::kApollo,
                                 /*clients=*/40, /*seed=*/42);
    cfg.duration = util::Minutes(10);
    v.apply(cfg.apollo);
    auto r = workload::RunExperiment(tpcw, cfg);
    std::printf("%-26s mean=%7.2f ms  p97=%8.2f ms  hit-rate=%5.1f%%  "
                "predictions=%llu\n",
                v.name, r.MeanMs(), r.PercentileMs(97),
                100.0 * r.cache_stats.HitRate(),
                static_cast<unsigned long long>(r.mw.predictions_issued));
    std::fflush(stdout);
    bench::PrintRunObservability(r);
  }
  return 0;
}
