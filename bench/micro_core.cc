// Microbenchmarks for the hot paths of the Apollo engine: query
// templatization (every client query), cache probes, transition-graph
// updates and FDQ-readiness lookups, and database point reads. These bound
// the middleware overhead the paper reports as negligible (Section 4.2.1).
#include <benchmark/benchmark.h>

#include "cache/kv_cache.h"
#include "core/dependency_graph.h"
#include "core/query_stream.h"
#include "core/transition_graph.h"
#include "db/database.h"
#include "obs/observability.h"
#include "rt/mpmc_queue.h"
#include "sql/fast_path.h"
#include "sql/parser.h"
#include "sql/template.h"
#include "sql/template_cache.h"

namespace {

using namespace apollo;

const char* kQuery =
    "SELECT C_ID, C_UNAME, C_FNAME FROM CUSTOMER WHERE C_UNAME = 'user42' "
    "AND C_PASSWD = 'pwd42'";

void BM_Parse(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = sql::Parse(kQuery);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_Parse);

void BM_Templatize(benchmark::State& state) {
  for (auto _ : state) {
    auto info = sql::Templatize(kQuery);
    benchmark::DoNotOptimize(info);
  }
}
BENCHMARK(BM_Templatize);

void BM_Instantiate(benchmark::State& state) {
  auto info = sql::Templatize(kQuery);
  for (auto _ : state) {
    auto sql = sql::Instantiate(info->template_text, info->params);
    benchmark::DoNotOptimize(sql);
  }
}
BENCHMARK(BM_Instantiate);

// --- Admission path (DESIGN.md Section 10) ---
// BM_Templatize above is the full parse+print route every query used to
// pay; these measure what replaced it.

void BM_LexTemplatize(benchmark::State& state) {
  // The raw literal-stripping scanner, no cache interaction.
  sql::LexTemplateResult lex;
  for (auto _ : state) {
    bool ok = sql::LexTemplatize(kQuery, &lex);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(lex);
  }
}
BENCHMARK(BM_LexTemplatize);

void BM_AdmitSteadyState(benchmark::State& state) {
  // Repeat-query admission through the template cache: lex fast path,
  // zero AST allocation. Rotating literals keep the canonical text (and
  // the lex key's parameter slots) changing like real traffic.
  sql::TemplateCache cache;
  std::vector<std::string> queries;
  for (int i = 0; i < 64; ++i) {
    queries.push_back(
        "SELECT C_ID, C_UNAME, C_FNAME FROM CUSTOMER WHERE C_UNAME = 'user" +
        std::to_string(i) + "' AND C_PASSWD = 'pwd" + std::to_string(i) +
        "'");
    (void)cache.Admit(queries.back());  // seed: first sight full-parses
  }
  size_t i = 0;
  for (auto _ : state) {
    auto adm = cache.Admit(queries[i++ % queries.size()]);
    benchmark::DoNotOptimize(adm);
  }
  if (cache.fast_hits() == 0) {
    state.SkipWithError("fast path never hit");
  }
}
BENCHMARK(BM_AdmitSteadyState);

void BM_AdmitFallback(benchmark::State& state) {
  // Admission when the lex key misses: full parse + intern lookup. A query
  // already holding a '?' placeholder can never map its lex key (params
  // counts differ), so every admission takes the fallback route.
  sql::TemplateCache cache;
  const std::string query =
      "SELECT C_ID, C_UNAME, C_FNAME FROM CUSTOMER WHERE C_UNAME = ? "
      "AND C_PASSWD = 'pwd42'";
  (void)cache.Admit(query);
  for (auto _ : state) {
    auto adm = cache.Admit(query);
    benchmark::DoNotOptimize(adm);
  }
  if (cache.fast_hits() != 0) {
    state.SkipWithError("expected fallback admissions only");
  }
}
BENCHMARK(BM_AdmitFallback);

void BM_ExecutePreparedPointRead(benchmark::State& state) {
  // Prepared point read: statement from the template cache, params bound
  // at execution — the no-reparse analogue of BM_DbPointRead.
  db::Database db;
  db::Schema s("T", {{"ID", common::ValueType::kInt},
                     {"V", common::ValueType::kString}});
  s.AddIndex("PRIMARY", {"ID"});
  (void)db.CreateTable(std::move(s));
  db::Table* t = db.GetTable("T");
  for (int i = 0; i < 100000; ++i) {
    (void)t->Insert({common::Value::Int(i), common::Value::Str("v")});
  }
  sql::TemplateCache cache;
  auto seed = cache.Admit("SELECT V FROM T WHERE ID = 1");
  if (!seed.ok() || !seed->preparable()) {
    state.SkipWithError("seed admission not preparable");
    return;
  }
  sql::CachedTemplatePtr tpl = seed->tpl;
  std::vector<common::Value> params = {common::Value::Int(0)};
  int i = 0;
  for (auto _ : state) {
    params[0] = common::Value::Int(i++ % 100000);
    auto rs = db.ExecutePrepared(*tpl->statement, params);
    benchmark::DoNotOptimize(rs);
  }
}
BENCHMARK(BM_ExecutePreparedPointRead);

void BM_CacheGetHit(benchmark::State& state) {
  cache::KvCache cache(1 << 24);
  auto rs = std::make_shared<common::ResultSet>(
      std::vector<std::string>{"V"});
  rs->AddRow({common::Value::Int(1)});
  cache::VersionVector stamp;
  stamp.Set("T", 1);
  for (int i = 0; i < 1024; ++i) {
    cache.Put("key" + std::to_string(i), rs, stamp);
  }
  cache::VersionVector client;
  std::vector<std::string> tables = {"T"};
  int i = 0;
  for (auto _ : state) {
    auto hit = cache.GetCompatible("key" + std::to_string(i++ % 1024),
                                   client, tables);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_CacheGetHit);

void BM_CachePut(benchmark::State& state) {
  cache::KvCache cache(1 << 22);
  auto rs = std::make_shared<common::ResultSet>(
      std::vector<std::string>{"V"});
  rs->AddRow({common::Value::Int(1)});
  cache::VersionVector stamp;
  stamp.Set("T", 1);
  int i = 0;
  for (auto _ : state) {
    cache.Put("key" + std::to_string(i++ % 4096), rs, stamp);
  }
}
BENCHMARK(BM_CachePut);

void BM_StreamProcess(benchmark::State& state) {
  // Append + process one entry against three delta-t graphs, steady state.
  core::QueryStream stream(
      {util::Seconds(1), util::Seconds(5), util::Seconds(15)}, 1024);
  util::SimTime t = 0;
  for (auto _ : state) {
    stream.Append(static_cast<uint64_t>(t % 17), t);
    stream.Process(t);
    t += util::Millis(200);
  }
}
BENCHMARK(BM_StreamProcess);

void BM_DependentsLookup(benchmark::State& state) {
  core::DependencyGraph g;
  for (uint64_t i = 0; i < 256; ++i) {
    g.Add(1000 + i, {{i % 16, 0}});
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.DependentsOf(i++ % 16));
  }
}
BENCHMARK(BM_DependentsLookup);

void BM_DbPointRead(benchmark::State& state) {
  db::Database db;
  db::Schema s("T", {{"ID", common::ValueType::kInt},
                     {"V", common::ValueType::kString}});
  s.AddIndex("PRIMARY", {"ID"});
  (void)db.CreateTable(std::move(s));
  db::Table* t = db.GetTable("T");
  for (int i = 0; i < 100000; ++i) {
    (void)t->Insert({common::Value::Int(i), common::Value::Str("v")});
  }
  int i = 0;
  for (auto _ : state) {
    auto rs = db.Execute("SELECT V FROM T WHERE ID = " +
                         std::to_string(i++ % 100000));
    benchmark::DoNotOptimize(rs);
  }
}
BENCHMARK(BM_DbPointRead);

void BM_ObsCounterInc(benchmark::State& state) {
  // Every client query bumps a handful of these; the budget is "free".
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.RegisterCounter("bench.counter", 8);
  size_t shard = 0;
  for (auto _ : state) {
    c->Inc(1, shard++);
  }
  benchmark::DoNotOptimize(c->Value());
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsTraceRecordDisabled(benchmark::State& state) {
  // The default configuration: Record() must be a single branch.
  obs::TraceLog trace(4096);
  for (auto _ : state) {
    trace.Record(obs::TraceEventType::kPredictionIssued, 1, 42);
  }
  benchmark::DoNotOptimize(trace.total_recorded());
}
BENCHMARK(BM_ObsTraceRecordDisabled);

void BM_ObsTraceRecordEnabled(benchmark::State& state) {
  obs::TraceLog trace(4096);
  trace.set_enabled(true);
  for (auto _ : state) {
    trace.Record(obs::TraceEventType::kPredictionIssued, 1, 42);
  }
  benchmark::DoNotOptimize(trace.total_recorded());
}
BENCHMARK(BM_ObsTraceRecordEnabled);

void BM_MpmcQueuePushPop(benchmark::State& state) {
  // Each thread pushes before popping, so the queue can never starve a
  // popper; throughput measures the mutex+condvar handoff cost that
  // bounds the runtime's task dispatch rate.
  static rt::MpmcQueue<int> queue(4096);
  int v = 0;
  for (auto _ : state) {
    queue.Push(1);
    queue.Pop(&v);
  }
  benchmark::DoNotOptimize(v);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpmcQueuePushPop)->Threads(1)->Threads(8);

void TransitionGraphUpdateLoop(core::TransitionGraph& graph,
                               benchmark::State& state) {
  // 64 hot templates shared by all writers: with one stripe every update
  // serializes; with the default stripes they fan out 8 ways.
  uint64_t i = static_cast<uint64_t>(state.thread_index()) * 7;
  for (auto _ : state) {
    graph.AddVertexObservation(i % 64);
    graph.AddEdgeObservation(i % 64, (i + 1) % 64);
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}

void BM_GraphUpdateSingleLock(benchmark::State& state) {
  static core::TransitionGraph graph(util::Seconds(1), /*num_stripes=*/1);
  TransitionGraphUpdateLoop(graph, state);
}
BENCHMARK(BM_GraphUpdateSingleLock)->Threads(8);

void BM_GraphUpdateStriped(benchmark::State& state) {
  static core::TransitionGraph graph(util::Seconds(1));  // default stripes
  TransitionGraphUpdateLoop(graph, state);
}
BENCHMARK(BM_GraphUpdateStriped)->Threads(8);

void BM_DbAggregateScan(benchmark::State& state) {
  db::Database db;
  db::Schema s("T", {{"ID", common::ValueType::kInt},
                     {"G", common::ValueType::kInt},
                     {"V", common::ValueType::kInt}});
  s.AddIndex("PRIMARY", {"ID"});
  (void)db.CreateTable(std::move(s));
  db::Table* t = db.GetTable("T");
  for (int i = 0; i < 10000; ++i) {
    (void)t->Insert({common::Value::Int(i), common::Value::Int(i % 50),
                     common::Value::Int(i % 7)});
  }
  for (auto _ : state) {
    auto rs = db.Execute(
        "SELECT G, SUM(V) AS S FROM T GROUP BY G ORDER BY S DESC LIMIT 10");
    benchmark::DoNotOptimize(rs);
  }
}
BENCHMARK(BM_DbAggregateScan);

}  // namespace
