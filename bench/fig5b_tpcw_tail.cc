// Figure 5(b): TPC-W tail latencies at 50 clients — response-time
// percentiles 94..99 for Apollo vs. Memcached vs. Fido.
//
// Paper shape: Apollo well below the baselines at every percentile,
// ~1.8x reduction at p97; Fido roughly tracks Memcached.
#include "bench_common.h"

int main() {
  using namespace apollo;
  bench::PrintHeader("Figure 5(b): TPC-W tail latencies, 50 clients");
  std::printf("%-10s", "system");
  for (int p : {94, 95, 96, 97, 98, 99}) std::printf("      p%2d", p);
  std::printf("\n");
  for (workload::SystemType system : bench::AllSystems()) {
    workload::TpcwWorkload tpcw;
    auto cfg = bench::BaseConfig(system, /*clients=*/50, /*seed=*/42);
    auto result = workload::RunExperiment(tpcw, cfg);
    std::printf("%-10s", result.system_name.c_str());
    for (int p : {94, 95, 96, 97, 98, 99}) {
      std::printf(" %8.1f", result.PercentileMs(p));
    }
    std::printf("  (ms)\n");
    std::fflush(stdout);
    bench::PrintRunObservability(result);
  }
  return 0;
}
