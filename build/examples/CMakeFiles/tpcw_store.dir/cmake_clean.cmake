file(REMOVE_RECURSE
  "CMakeFiles/tpcw_store.dir/tpcw_store.cpp.o"
  "CMakeFiles/tpcw_store.dir/tpcw_store.cpp.o.d"
  "tpcw_store"
  "tpcw_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcw_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
