# Empty compiler generated dependencies file for tpcw_store.
# This may be replaced when dependencies are built.
