# Empty dependencies file for geo_deployment.
# This may be replaced when dependencies are built.
