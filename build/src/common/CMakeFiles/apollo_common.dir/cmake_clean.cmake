file(REMOVE_RECURSE
  "CMakeFiles/apollo_common.dir/result_set.cc.o"
  "CMakeFiles/apollo_common.dir/result_set.cc.o.d"
  "CMakeFiles/apollo_common.dir/value.cc.o"
  "CMakeFiles/apollo_common.dir/value.cc.o.d"
  "libapollo_common.a"
  "libapollo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
