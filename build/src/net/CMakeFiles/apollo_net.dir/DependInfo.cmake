
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/remote_database.cc" "src/net/CMakeFiles/apollo_net.dir/remote_database.cc.o" "gcc" "src/net/CMakeFiles/apollo_net.dir/remote_database.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/apollo_db.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/apollo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/apollo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/apollo_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/apollo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
