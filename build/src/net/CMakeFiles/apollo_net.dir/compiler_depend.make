# Empty compiler generated dependencies file for apollo_net.
# This may be replaced when dependencies are built.
