file(REMOVE_RECURSE
  "libapollo_net.a"
)
