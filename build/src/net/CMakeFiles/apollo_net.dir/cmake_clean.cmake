file(REMOVE_RECURSE
  "CMakeFiles/apollo_net.dir/remote_database.cc.o"
  "CMakeFiles/apollo_net.dir/remote_database.cc.o.d"
  "libapollo_net.a"
  "libapollo_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
