file(REMOVE_RECURSE
  "libapollo_sql.a"
)
