# Empty compiler generated dependencies file for apollo_sql.
# This may be replaced when dependencies are built.
