file(REMOVE_RECURSE
  "CMakeFiles/apollo_sql.dir/ast.cc.o"
  "CMakeFiles/apollo_sql.dir/ast.cc.o.d"
  "CMakeFiles/apollo_sql.dir/parser.cc.o"
  "CMakeFiles/apollo_sql.dir/parser.cc.o.d"
  "CMakeFiles/apollo_sql.dir/printer.cc.o"
  "CMakeFiles/apollo_sql.dir/printer.cc.o.d"
  "CMakeFiles/apollo_sql.dir/template.cc.o"
  "CMakeFiles/apollo_sql.dir/template.cc.o.d"
  "CMakeFiles/apollo_sql.dir/token.cc.o"
  "CMakeFiles/apollo_sql.dir/token.cc.o.d"
  "libapollo_sql.a"
  "libapollo_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
