file(REMOVE_RECURSE
  "CMakeFiles/apollo_core.dir/apollo_middleware.cc.o"
  "CMakeFiles/apollo_core.dir/apollo_middleware.cc.o.d"
  "CMakeFiles/apollo_core.dir/caching_middleware.cc.o"
  "CMakeFiles/apollo_core.dir/caching_middleware.cc.o.d"
  "CMakeFiles/apollo_core.dir/dependency_graph.cc.o"
  "CMakeFiles/apollo_core.dir/dependency_graph.cc.o.d"
  "CMakeFiles/apollo_core.dir/inflight_registry.cc.o"
  "CMakeFiles/apollo_core.dir/inflight_registry.cc.o.d"
  "CMakeFiles/apollo_core.dir/param_mapper.cc.o"
  "CMakeFiles/apollo_core.dir/param_mapper.cc.o.d"
  "CMakeFiles/apollo_core.dir/query_stream.cc.o"
  "CMakeFiles/apollo_core.dir/query_stream.cc.o.d"
  "CMakeFiles/apollo_core.dir/template_registry.cc.o"
  "CMakeFiles/apollo_core.dir/template_registry.cc.o.d"
  "CMakeFiles/apollo_core.dir/transition_graph.cc.o"
  "CMakeFiles/apollo_core.dir/transition_graph.cc.o.d"
  "libapollo_core.a"
  "libapollo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
