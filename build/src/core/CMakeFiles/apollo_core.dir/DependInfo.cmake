
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/apollo_middleware.cc" "src/core/CMakeFiles/apollo_core.dir/apollo_middleware.cc.o" "gcc" "src/core/CMakeFiles/apollo_core.dir/apollo_middleware.cc.o.d"
  "/root/repo/src/core/caching_middleware.cc" "src/core/CMakeFiles/apollo_core.dir/caching_middleware.cc.o" "gcc" "src/core/CMakeFiles/apollo_core.dir/caching_middleware.cc.o.d"
  "/root/repo/src/core/dependency_graph.cc" "src/core/CMakeFiles/apollo_core.dir/dependency_graph.cc.o" "gcc" "src/core/CMakeFiles/apollo_core.dir/dependency_graph.cc.o.d"
  "/root/repo/src/core/inflight_registry.cc" "src/core/CMakeFiles/apollo_core.dir/inflight_registry.cc.o" "gcc" "src/core/CMakeFiles/apollo_core.dir/inflight_registry.cc.o.d"
  "/root/repo/src/core/param_mapper.cc" "src/core/CMakeFiles/apollo_core.dir/param_mapper.cc.o" "gcc" "src/core/CMakeFiles/apollo_core.dir/param_mapper.cc.o.d"
  "/root/repo/src/core/query_stream.cc" "src/core/CMakeFiles/apollo_core.dir/query_stream.cc.o" "gcc" "src/core/CMakeFiles/apollo_core.dir/query_stream.cc.o.d"
  "/root/repo/src/core/template_registry.cc" "src/core/CMakeFiles/apollo_core.dir/template_registry.cc.o" "gcc" "src/core/CMakeFiles/apollo_core.dir/template_registry.cc.o.d"
  "/root/repo/src/core/transition_graph.cc" "src/core/CMakeFiles/apollo_core.dir/transition_graph.cc.o" "gcc" "src/core/CMakeFiles/apollo_core.dir/transition_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/apollo_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/apollo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/apollo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/apollo_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/apollo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/apollo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/apollo_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
