# Empty dependencies file for apollo_core.
# This may be replaced when dependencies are built.
