# Empty compiler generated dependencies file for apollo_util.
# This may be replaced when dependencies are built.
