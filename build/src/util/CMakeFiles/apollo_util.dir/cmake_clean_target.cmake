file(REMOVE_RECURSE
  "libapollo_util.a"
)
