file(REMOVE_RECURSE
  "CMakeFiles/apollo_util.dir/histogram.cc.o"
  "CMakeFiles/apollo_util.dir/histogram.cc.o.d"
  "CMakeFiles/apollo_util.dir/rng.cc.o"
  "CMakeFiles/apollo_util.dir/rng.cc.o.d"
  "CMakeFiles/apollo_util.dir/sim_time.cc.o"
  "CMakeFiles/apollo_util.dir/sim_time.cc.o.d"
  "CMakeFiles/apollo_util.dir/status.cc.o"
  "CMakeFiles/apollo_util.dir/status.cc.o.d"
  "CMakeFiles/apollo_util.dir/string_util.cc.o"
  "CMakeFiles/apollo_util.dir/string_util.cc.o.d"
  "libapollo_util.a"
  "libapollo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
