file(REMOVE_RECURSE
  "libapollo_cache.a"
)
