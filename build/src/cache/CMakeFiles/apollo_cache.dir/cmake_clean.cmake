file(REMOVE_RECURSE
  "CMakeFiles/apollo_cache.dir/kv_cache.cc.o"
  "CMakeFiles/apollo_cache.dir/kv_cache.cc.o.d"
  "CMakeFiles/apollo_cache.dir/version_vector.cc.o"
  "CMakeFiles/apollo_cache.dir/version_vector.cc.o.d"
  "libapollo_cache.a"
  "libapollo_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
