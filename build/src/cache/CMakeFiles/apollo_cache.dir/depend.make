# Empty dependencies file for apollo_cache.
# This may be replaced when dependencies are built.
