# Empty dependencies file for apollo_fido.
# This may be replaced when dependencies are built.
