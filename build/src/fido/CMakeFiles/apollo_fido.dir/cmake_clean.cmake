file(REMOVE_RECURSE
  "CMakeFiles/apollo_fido.dir/fido_middleware.cc.o"
  "CMakeFiles/apollo_fido.dir/fido_middleware.cc.o.d"
  "libapollo_fido.a"
  "libapollo_fido.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_fido.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
