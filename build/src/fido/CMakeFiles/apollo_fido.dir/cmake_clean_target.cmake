file(REMOVE_RECURSE
  "libapollo_fido.a"
)
