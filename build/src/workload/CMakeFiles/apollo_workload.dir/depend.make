# Empty dependencies file for apollo_workload.
# This may be replaced when dependencies are built.
