file(REMOVE_RECURSE
  "CMakeFiles/apollo_workload.dir/client_driver.cc.o"
  "CMakeFiles/apollo_workload.dir/client_driver.cc.o.d"
  "CMakeFiles/apollo_workload.dir/driver.cc.o"
  "CMakeFiles/apollo_workload.dir/driver.cc.o.d"
  "CMakeFiles/apollo_workload.dir/metrics.cc.o"
  "CMakeFiles/apollo_workload.dir/metrics.cc.o.d"
  "CMakeFiles/apollo_workload.dir/tpcc.cc.o"
  "CMakeFiles/apollo_workload.dir/tpcc.cc.o.d"
  "CMakeFiles/apollo_workload.dir/tpcw.cc.o"
  "CMakeFiles/apollo_workload.dir/tpcw.cc.o.d"
  "CMakeFiles/apollo_workload.dir/trace.cc.o"
  "CMakeFiles/apollo_workload.dir/trace.cc.o.d"
  "libapollo_workload.a"
  "libapollo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
