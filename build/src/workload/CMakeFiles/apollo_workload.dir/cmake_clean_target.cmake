file(REMOVE_RECURSE
  "libapollo_workload.a"
)
