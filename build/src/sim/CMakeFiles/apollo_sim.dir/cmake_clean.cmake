file(REMOVE_RECURSE
  "CMakeFiles/apollo_sim.dir/event_loop.cc.o"
  "CMakeFiles/apollo_sim.dir/event_loop.cc.o.d"
  "CMakeFiles/apollo_sim.dir/service_station.cc.o"
  "CMakeFiles/apollo_sim.dir/service_station.cc.o.d"
  "libapollo_sim.a"
  "libapollo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
