# Empty dependencies file for apollo_sim.
# This may be replaced when dependencies are built.
