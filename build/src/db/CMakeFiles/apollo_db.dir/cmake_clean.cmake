file(REMOVE_RECURSE
  "CMakeFiles/apollo_db.dir/catalog.cc.o"
  "CMakeFiles/apollo_db.dir/catalog.cc.o.d"
  "CMakeFiles/apollo_db.dir/database.cc.o"
  "CMakeFiles/apollo_db.dir/database.cc.o.d"
  "CMakeFiles/apollo_db.dir/executor.cc.o"
  "CMakeFiles/apollo_db.dir/executor.cc.o.d"
  "CMakeFiles/apollo_db.dir/schema.cc.o"
  "CMakeFiles/apollo_db.dir/schema.cc.o.d"
  "CMakeFiles/apollo_db.dir/table.cc.o"
  "CMakeFiles/apollo_db.dir/table.cc.o.d"
  "libapollo_db.a"
  "libapollo_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apollo_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
