# Empty compiler generated dependencies file for apollo_db.
# This may be replaced when dependencies are built.
