file(REMOVE_RECURSE
  "libapollo_db.a"
)
