# Empty compiler generated dependencies file for sens_dt_tau.
# This may be replaced when dependencies are built.
