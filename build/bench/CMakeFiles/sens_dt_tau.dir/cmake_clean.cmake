file(REMOVE_RECURSE
  "CMakeFiles/sens_dt_tau.dir/sens_dt_tau.cc.o"
  "CMakeFiles/sens_dt_tau.dir/sens_dt_tau.cc.o.d"
  "sens_dt_tau"
  "sens_dt_tau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_dt_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
