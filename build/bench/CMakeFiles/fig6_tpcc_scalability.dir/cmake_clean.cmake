file(REMOVE_RECURSE
  "CMakeFiles/fig6_tpcc_scalability.dir/fig6_tpcc_scalability.cc.o"
  "CMakeFiles/fig6_tpcc_scalability.dir/fig6_tpcc_scalability.cc.o.d"
  "fig6_tpcc_scalability"
  "fig6_tpcc_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_tpcc_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
