# Empty dependencies file for fig6_tpcc_scalability.
# This may be replaced when dependencies are built.
