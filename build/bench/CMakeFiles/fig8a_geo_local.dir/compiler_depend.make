# Empty compiler generated dependencies file for fig8a_geo_local.
# This may be replaced when dependencies are built.
