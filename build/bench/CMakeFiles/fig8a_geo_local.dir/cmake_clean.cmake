file(REMOVE_RECURSE
  "CMakeFiles/fig8a_geo_local.dir/fig8a_geo_local.cc.o"
  "CMakeFiles/fig8a_geo_local.dir/fig8a_geo_local.cc.o.d"
  "fig8a_geo_local"
  "fig8a_geo_local.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_geo_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
