# Empty dependencies file for fig8b_geo_moderate.
# This may be replaced when dependencies are built.
