file(REMOVE_RECURSE
  "CMakeFiles/fig8b_geo_moderate.dir/fig8b_geo_moderate.cc.o"
  "CMakeFiles/fig8b_geo_moderate.dir/fig8b_geo_moderate.cc.o.d"
  "fig8b_geo_moderate"
  "fig8b_geo_moderate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_geo_moderate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
