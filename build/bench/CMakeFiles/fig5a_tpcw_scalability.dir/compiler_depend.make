# Empty compiler generated dependencies file for fig5a_tpcw_scalability.
# This may be replaced when dependencies are built.
