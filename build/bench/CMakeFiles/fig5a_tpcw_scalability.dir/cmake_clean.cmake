file(REMOVE_RECURSE
  "CMakeFiles/fig5a_tpcw_scalability.dir/fig5a_tpcw_scalability.cc.o"
  "CMakeFiles/fig5a_tpcw_scalability.dir/fig5a_tpcw_scalability.cc.o.d"
  "fig5a_tpcw_scalability"
  "fig5a_tpcw_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_tpcw_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
