# Empty dependencies file for sens_alpha.
# This may be replaced when dependencies are built.
