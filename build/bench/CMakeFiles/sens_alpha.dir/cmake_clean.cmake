file(REMOVE_RECURSE
  "CMakeFiles/sens_alpha.dir/sens_alpha.cc.o"
  "CMakeFiles/sens_alpha.dir/sens_alpha.cc.o.d"
  "sens_alpha"
  "sens_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
