
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_skew.cc" "bench/CMakeFiles/ablation_skew.dir/ablation_skew.cc.o" "gcc" "bench/CMakeFiles/ablation_skew.dir/ablation_skew.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/apollo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/fido/CMakeFiles/apollo_fido.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/apollo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/apollo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/apollo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/apollo_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/apollo_db.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/apollo_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/apollo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/apollo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
