file(REMOVE_RECURSE
  "CMakeFiles/fig5c_learning_over_time.dir/fig5c_learning_over_time.cc.o"
  "CMakeFiles/fig5c_learning_over_time.dir/fig5c_learning_over_time.cc.o.d"
  "fig5c_learning_over_time"
  "fig5c_learning_over_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_learning_over_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
