# Empty dependencies file for fig5c_learning_over_time.
# This may be replaced when dependencies are built.
