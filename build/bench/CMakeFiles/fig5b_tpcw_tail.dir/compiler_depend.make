# Empty compiler generated dependencies file for fig5b_tpcw_tail.
# This may be replaced when dependencies are built.
