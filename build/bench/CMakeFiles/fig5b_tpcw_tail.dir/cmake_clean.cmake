file(REMOVE_RECURSE
  "CMakeFiles/fig5b_tpcw_tail.dir/fig5b_tpcw_tail.cc.o"
  "CMakeFiles/fig5b_tpcw_tail.dir/fig5b_tpcw_tail.cc.o.d"
  "fig5b_tpcw_tail"
  "fig5b_tpcw_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_tpcw_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
