# Empty compiler generated dependencies file for fig7_workload_shift.
# This may be replaced when dependencies are built.
