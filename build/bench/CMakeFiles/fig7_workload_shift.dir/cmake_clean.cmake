file(REMOVE_RECURSE
  "CMakeFiles/fig7_workload_shift.dir/fig7_workload_shift.cc.o"
  "CMakeFiles/fig7_workload_shift.dir/fig7_workload_shift.cc.o.d"
  "fig7_workload_shift"
  "fig7_workload_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_workload_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
