# Empty dependencies file for fig8c_multi_instance.
# This may be replaced when dependencies are built.
