file(REMOVE_RECURSE
  "CMakeFiles/fig8c_multi_instance.dir/fig8c_multi_instance.cc.o"
  "CMakeFiles/fig8c_multi_instance.dir/fig8c_multi_instance.cc.o.d"
  "fig8c_multi_instance"
  "fig8c_multi_instance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8c_multi_instance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
