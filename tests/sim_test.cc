#include <gtest/gtest.h>

#include "net/remote_database.h"
#include "sim/event_loop.h"
#include "sim/latency_model.h"
#include "sim/service_station.h"

namespace apollo::sim {
namespace {

TEST(EventLoopTest, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.After(util::Millis(30), [&]() { order.push_back(3); });
  loop.After(util::Millis(10), [&]() { order.push_back(1); });
  loop.After(util::Millis(20), [&]() { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), util::Millis(30));
}

TEST(EventLoopTest, FifoAtEqualTimes) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.At(util::Millis(5), [&, i]() { order.push_back(i); });
  }
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, TasksCanScheduleTasks) {
  EventLoop loop;
  int fired = 0;
  loop.After(util::Millis(1), [&]() {
    ++fired;
    loop.After(util::Millis(1), [&]() { ++fired; });
  });
  loop.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.now(), util::Millis(2));
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.After(util::Millis(10), [&]() { ++fired; });
  loop.After(util::Millis(100), [&]() { ++fired; });
  loop.RunUntil(util::Millis(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), util::Millis(50));
  loop.RunUntil(util::Millis(200));
  EXPECT_EQ(fired, 2);
}

TEST(EventLoopTest, PastTimesClampToNow) {
  EventLoop loop;
  loop.After(util::Millis(10), [&]() {
    loop.At(0, [&]() { EXPECT_EQ(loop.now(), util::Millis(10)); });
  });
  loop.Run();
}

TEST(LatencyModelTest, ConstantIsExact) {
  util::Rng rng(1);
  auto m = LatencyModel::Constant(util::Millis(70));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(m.Sample(rng), util::Millis(70));
}

TEST(LatencyModelTest, UniformWithinBounds) {
  util::Rng rng(1);
  auto m = LatencyModel::Uniform(util::Millis(10), util::Millis(20));
  for (int i = 0; i < 1000; ++i) {
    auto v = m.Sample(rng);
    EXPECT_GE(v, util::Millis(10));
    EXPECT_LE(v, util::Millis(20));
  }
}

TEST(LatencyModelTest, LogNormalCentersOnMedian) {
  util::Rng rng(1);
  auto m = LatencyModel::LogNormal(util::Millis(70), 0.1);
  int below = 0;
  for (int i = 0; i < 2000; ++i) {
    if (m.Sample(rng) < util::Millis(70)) ++below;
  }
  EXPECT_NEAR(below, 1000, 120);
}

TEST(ServiceStationTest, ParallelServersNoQueueing) {
  EventLoop loop;
  ServiceStation station(&loop, 4);
  std::vector<util::SimTime> done;
  for (int i = 0; i < 4; ++i) {
    station.Submit(util::Millis(10), [&]() { done.push_back(loop.now()); });
  }
  loop.Run();
  for (auto t : done) EXPECT_EQ(t, util::Millis(10));
  EXPECT_EQ(station.stats().total_wait, 0);
}

TEST(ServiceStationTest, QueuesBeyondCapacity) {
  EventLoop loop;
  ServiceStation station(&loop, 1);
  std::vector<util::SimTime> done;
  for (int i = 0; i < 3; ++i) {
    station.Submit(util::Millis(10), [&]() { done.push_back(loop.now()); });
  }
  loop.Run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], util::Millis(10));
  EXPECT_EQ(done[1], util::Millis(20));
  EXPECT_EQ(done[2], util::Millis(30));
  EXPECT_EQ(station.stats().total_wait, util::Millis(30));  // 0 + 10 + 20
  EXPECT_EQ(station.stats().max_queue_depth, 2u);
}

class RemoteDatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::Schema s("T", {{"ID", common::ValueType::kInt},
                       {"V", common::ValueType::kString}});
    s.AddIndex("PRIMARY", {"ID"});
    ASSERT_TRUE(db_.CreateTable(std::move(s)).ok());
    ASSERT_TRUE(db_.Execute("INSERT INTO T (ID, V) VALUES (1, 'a')").ok());
  }
  db::Database db_;
  EventLoop loop_;
};

TEST_F(RemoteDatabaseTest, ChargesRoundTrip) {
  net::RemoteDbConfig cfg;
  cfg.rtt = LatencyModel::Constant(util::Millis(70));
  cfg.exec_base = util::Micros(100);
  cfg.exec_per_row = 0;
  net::RemoteDatabase remote(&loop_, &db_, cfg);

  util::SimTime completed = -1;
  remote.Execute("SELECT V FROM T WHERE ID = 1",
                 [&](util::Result<common::ResultSetPtr> rs, auto versions) {
                   ASSERT_TRUE(rs.ok());
                   EXPECT_EQ((*rs)->At(0, 0).AsString(), "a");
                   EXPECT_EQ(versions.at("T"), db_.TableVersion("T"));
                   completed = loop_.now();
                 });
  loop_.Run();
  EXPECT_EQ(completed, util::Millis(70) + util::Micros(100));
}

TEST_F(RemoteDatabaseTest, WriteBumpsVersionInCallback) {
  net::RemoteDbConfig cfg;
  cfg.rtt = LatencyModel::Constant(util::Millis(10));
  net::RemoteDatabase remote(&loop_, &db_, cfg);
  uint64_t v0 = db_.TableVersion("T");
  remote.Execute("UPDATE T SET V = 'b' WHERE ID = 1",
                 [&](util::Result<common::ResultSetPtr> rs, auto versions) {
                   ASSERT_TRUE(rs.ok());
                   EXPECT_EQ(versions.at("T"), v0 + 1);
                 });
  loop_.Run();
  EXPECT_EQ(db_.TableVersion("T"), v0 + 1);
}

TEST_F(RemoteDatabaseTest, ErrorsPropagate) {
  net::RemoteDbConfig cfg;
  net::RemoteDatabase remote(&loop_, &db_, cfg);
  bool saw_error = false;
  remote.Execute("SELECT broken FROM",
                 [&](util::Result<common::ResultSetPtr> rs, auto) {
                   saw_error = !rs.ok();
                 });
  loop_.Run();
  EXPECT_TRUE(saw_error);
  EXPECT_EQ(remote.stats().errors, 1u);
}

TEST_F(RemoteDatabaseTest, PredictiveTaggedInStats) {
  net::RemoteDbConfig cfg;
  net::RemoteDatabase remote(&loop_, &db_, cfg);
  remote.Execute("SELECT V FROM T WHERE ID = 1", [](auto, auto) {},
                 /*predictive=*/true);
  remote.Execute("SELECT V FROM T WHERE ID = 1", [](auto, auto) {});
  loop_.Run();
  EXPECT_EQ(remote.stats().queries, 2u);
  EXPECT_EQ(remote.stats().predictive_queries, 1u);
}

TEST_F(RemoteDatabaseTest, ServiceTimeScalesWithRowsExamined) {
  // Load more rows so a scan costs more than an index probe.
  for (int i = 2; i <= 1000; ++i) {
    ASSERT_TRUE(db_.Execute("INSERT INTO T (ID, V) VALUES (" +
                            std::to_string(i) + ", 'x')")
                    .ok());
  }
  net::RemoteDbConfig cfg;
  cfg.rtt = LatencyModel::Constant(0);
  cfg.exec_base = 0;
  cfg.exec_per_row = util::Micros(10);
  net::RemoteDatabase remote(&loop_, &db_, cfg);

  util::SimTime t_probe = -1;
  util::SimTime t_scan = -1;
  remote.Execute("SELECT V FROM T WHERE ID = 5",
                 [&](auto, auto) { t_probe = loop_.now(); });
  loop_.Run();
  util::SimTime base = loop_.now();
  remote.Execute("SELECT COUNT(*) AS N FROM T WHERE V = 'x'",
                 [&](auto, auto) { t_scan = loop_.now() - base; });
  loop_.Run();
  EXPECT_LT(t_probe, t_scan);
  EXPECT_EQ(t_probe, util::Micros(10));        // one row examined
  EXPECT_EQ(t_scan, util::Micros(10) * 1000);  // full scan
}

}  // namespace
}  // namespace apollo::sim
