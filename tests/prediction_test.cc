// Focused tests of prediction mechanics: the freshness model (3.4.1),
// pipeline depth limits (2.4), row fan-out, and source staleness.
#include <gtest/gtest.h>

#include "core/apollo_middleware.h"

namespace apollo::core {
namespace {

class PredictionTest : public ::testing::Test {
 protected:
  PredictionTest() : cache_(1 << 22) {}

  void SetUp() override {
    using common::Value;
    using common::ValueType;
    {
      db::Schema s("A", {{"A_ID", ValueType::kInt},
                         {"A_B_ID", ValueType::kInt}});
      s.AddIndex("PRIMARY", {"A_ID"});
      ASSERT_TRUE(db_.CreateTable(std::move(s)).ok());
    }
    {
      db::Schema s("B", {{"B_ID", ValueType::kInt},
                         {"B_C_ID", ValueType::kInt}});
      s.AddIndex("PRIMARY", {"B_ID"});
      ASSERT_TRUE(db_.CreateTable(std::move(s)).ok());
    }
    {
      db::Schema s("C", {{"C_ID", ValueType::kInt},
                         {"C_V", ValueType::kInt}});
      s.AddIndex("PRIMARY", {"C_ID"});
      ASSERT_TRUE(db_.CreateTable(std::move(s)).ok());
    }
    {
      db::Schema s("MULTI", {{"M_KEY", ValueType::kInt},
                             {"M_VAL", ValueType::kInt}});
      s.AddIndex("KEY", {"M_KEY"});
      ASSERT_TRUE(db_.CreateTable(std::move(s)).ok());
    }
    for (int i = 1; i <= 40; ++i) {
      ASSERT_TRUE(db_.GetTable("A")
                      ->Insert({common::Value::Int(i),
                                common::Value::Int(100 + i)})
                      .ok());
      ASSERT_TRUE(db_.GetTable("B")
                      ->Insert({common::Value::Int(100 + i),
                                common::Value::Int(200 + i)})
                      .ok());
      ASSERT_TRUE(db_.GetTable("C")
                      ->Insert({common::Value::Int(200 + i),
                                common::Value::Int(7 * i)})
                      .ok());
      // MULTI: each key maps to several rows (fan-out source).
      for (int r = 0; r < 3; ++r) {
        ASSERT_TRUE(db_.GetTable("MULTI")
                        ->Insert({common::Value::Int(i),
                                  common::Value::Int(1000 * i + r)})
                        .ok());
      }
    }
  }

  std::unique_ptr<net::RemoteDatabase> MakeRemote() {
    net::RemoteDbConfig cfg;
    cfg.rtt = sim::LatencyModel::Constant(util::Millis(50));
    return std::make_unique<net::RemoteDatabase>(&loop_, &db_, cfg);
  }

  ApolloConfig FastConfig() {
    ApolloConfig cfg;
    cfg.verification_period = 2;
    return cfg;
  }

  util::SimDuration RunQuery(Middleware& mw, const std::string& sql) {
    util::SimTime t0 = loop_.now();
    util::SimTime t_done = -1;
    mw.SubmitQuery(0, sql, [&](auto) { t_done = loop_.now(); });
    loop_.Run();
    EXPECT_GE(t_done, 0);
    return t_done - t0;
  }

  void Settle() { loop_.RunUntil(loop_.now() + util::Seconds(2)); }

  db::Database db_;
  sim::EventLoop loop_;
  cache::KvCache cache_;
};

// A -> B -> C chain: after learning, an execution of the A-query pipelines
// predictions through B into C.
TEST_F(PredictionTest, PipelineChainsThroughIntermediateResults) {
  auto remote = MakeRemote();
  ApolloMiddleware mw(&loop_, remote.get(), &cache_, FastConfig());
  auto round = [&](int i) {
    std::string s = std::to_string(i);
    RunQuery(mw, "SELECT A_ID, A_B_ID FROM A WHERE A_ID = " + s);
    RunQuery(mw, "SELECT B_ID, B_C_ID FROM B WHERE B_ID = " +
                     std::to_string(100 + i));
    RunQuery(mw, "SELECT C_V FROM C WHERE C_ID = " +
                     std::to_string(200 + i));
    Settle();
  };
  for (int i = 1; i <= 4; ++i) round(i);

  // Fresh round: submit only the A query; the B and C predictions should
  // land in the cache via pipelining without any client request.
  RunQuery(mw, "SELECT A_ID, A_B_ID FROM A WHERE A_ID = 10");
  Settle();
  auto tb = RunQuery(mw, "SELECT B_ID, B_C_ID FROM B WHERE B_ID = 110");
  auto tc = RunQuery(mw, "SELECT C_V FROM C WHERE C_ID = 210");
  EXPECT_LT(tb, util::Millis(5));
  EXPECT_LT(tc, util::Millis(5));
}

TEST_F(PredictionTest, PipeliningDisabledStopsAtFirstHop) {
  auto remote = MakeRemote();
  ApolloConfig cfg = FastConfig();
  cfg.enable_pipelining = false;
  ApolloMiddleware mw(&loop_, remote.get(), &cache_, cfg);
  auto round = [&](int i) {
    std::string s = std::to_string(i);
    RunQuery(mw, "SELECT A_ID, A_B_ID FROM A WHERE A_ID = " + s);
    RunQuery(mw, "SELECT B_ID, B_C_ID FROM B WHERE B_ID = " +
                     std::to_string(100 + i));
    RunQuery(mw, "SELECT C_V FROM C WHERE C_ID = " +
                     std::to_string(200 + i));
    Settle();
  };
  for (int i = 1; i <= 4; ++i) round(i);
  RunQuery(mw, "SELECT A_ID, A_B_ID FROM A WHERE A_ID = 11");
  Settle();
  // First hop (B) predicted from the client query itself, but the chained
  // C prediction (which requires feeding the predicted B result forward)
  // must not have happened yet: C's entry is absent before any client B
  // query for this round.
  EXPECT_FALSE(mw.result_cache()->GetAny(
      "SELECT C_V FROM C WHERE C_ID = 211").has_value());
  auto tb = RunQuery(mw, "SELECT B_ID, B_C_ID FROM B WHERE B_ID = 111");
  EXPECT_LT(tb, util::Millis(5));
}

TEST_F(PredictionTest, FanOutPredictsMultipleRows) {
  auto remote = MakeRemote();
  ApolloConfig cfg = FastConfig();
  cfg.max_fanout_rows = 3;
  ApolloMiddleware mw(&loop_, remote.get(), &cache_, cfg);
  // MULTI(key) returns 3 rows; the dependent query takes M_VAL as input.
  auto round = [&](int i, int row) {
    RunQuery(mw, "SELECT M_KEY, M_VAL FROM MULTI WHERE M_KEY = " +
                     std::to_string(i));
    // The client then queries one of the values (varying row) -> the
    // mapping to the M_VAL column is confirmed.
    RunQuery(mw, "SELECT C_ID FROM C WHERE C_V = " +
                     std::to_string(1000 * i + row) + " + 0");
    Settle();
  };
  // Use a simpler dependent: value-based lookup on MULTI itself.
  auto round2 = [&](int i, int row) {
    RunQuery(mw, "SELECT M_KEY, M_VAL FROM MULTI WHERE M_KEY = " +
                     std::to_string(i));
    RunQuery(mw, "SELECT M_KEY FROM MULTI WHERE M_VAL = " +
                     std::to_string(1000 * i + row));
    Settle();
  };
  (void)round;
  round2(1, 0);
  round2(2, 1);
  round2(3, 0);
  auto before = mw.stats().predictions_issued;
  RunQuery(mw, "SELECT M_KEY, M_VAL FROM MULTI WHERE M_KEY = 9");
  Settle();
  // All three rows of the source fan out into predictions.
  EXPECT_EQ(mw.stats().predictions_issued - before, 3u);
  for (int r = 0; r < 3; ++r) {
    auto t = RunQuery(mw, "SELECT M_KEY FROM MULTI WHERE M_VAL = " +
                              std::to_string(9000 + r));
    EXPECT_LT(t, util::Millis(5)) << "row " << r;
  }
}

TEST_F(PredictionTest, FreshnessModelVetoesLikelyInvalidatedPredictions) {
  auto remote = MakeRemote();
  ApolloConfig cfg = FastConfig();
  cfg.delta_ts = {util::Seconds(5), util::Seconds(15)};
  ApolloMiddleware mw(&loop_, remote.get(), &cache_, cfg);
  // Pattern: read A -> read B -> write B, repeatedly and quickly. The
  // transition graph learns that a B-write reliably follows an A-read, so
  // predicting the B-read is wasted work and gets vetoed.
  auto round = [&](int i) {
    std::string s = std::to_string(i);
    RunQuery(mw, "SELECT A_ID, A_B_ID FROM A WHERE A_ID = " + s);
    RunQuery(mw, "SELECT B_ID, B_C_ID FROM B WHERE B_ID = " +
                     std::to_string(100 + i));
    RunQuery(mw, "UPDATE B SET B_C_ID = B_C_ID + 1 WHERE B_ID = " +
                     std::to_string(100 + i));
    Settle();
  };
  for (int i = 1; i <= 10; ++i) round(i);
  EXPECT_GT(mw.stats().predictions_skipped_fresh, 0u);

  // The same pattern with the freshness check off predicts every time.
  sim::EventLoop loop2;
  // (fresh stack to avoid cross-contamination)
  cache::KvCache cache2(1 << 22);
  net::RemoteDbConfig rcfg;
  rcfg.rtt = sim::LatencyModel::Constant(util::Millis(50));
  net::RemoteDatabase remote2(&loop2, &db_, rcfg);
  ApolloConfig cfg2 = cfg;
  cfg2.enable_freshness_check = false;
  ApolloMiddleware mw2(&loop2, &remote2, &cache2, cfg2);
  auto run2 = [&](const std::string& sql) {
    mw2.SubmitQuery(0, sql, [](auto) {});
    loop2.Run();
  };
  for (int i = 1; i <= 10; ++i) {
    std::string s = std::to_string(i);
    run2("SELECT A_ID, A_B_ID FROM A WHERE A_ID = " + s);
    run2("SELECT B_ID, B_C_ID FROM B WHERE B_ID = " +
         std::to_string(100 + i));
    run2("UPDATE B SET B_C_ID = B_C_ID + 1 WHERE B_ID = " +
         std::to_string(100 + i));
    loop2.RunUntil(loop2.now() + util::Seconds(2));
  }
  EXPECT_EQ(mw2.stats().predictions_skipped_fresh, 0u);
  EXPECT_GT(mw2.stats().predictions_issued, mw.stats().predictions_issued);
}

TEST_F(PredictionTest, PipelineDepthLimitStopsChains) {
  auto remote = MakeRemote();
  ApolloConfig cfg = FastConfig();
  cfg.max_pipeline_depth = 0;  // the triggering hop only
  ApolloMiddleware mw(&loop_, remote.get(), &cache_, cfg);
  auto round = [&](int i) {
    std::string s = std::to_string(i);
    RunQuery(mw, "SELECT A_ID, A_B_ID FROM A WHERE A_ID = " + s);
    RunQuery(mw, "SELECT B_ID, B_C_ID FROM B WHERE B_ID = " +
                     std::to_string(100 + i));
    RunQuery(mw, "SELECT C_V FROM C WHERE C_ID = " +
                     std::to_string(200 + i));
    Settle();
  };
  for (int i = 1; i <= 4; ++i) round(i);
  RunQuery(mw, "SELECT A_ID, A_B_ID FROM A WHERE A_ID = 12");
  Settle();
  // Depth 0 allows the B prediction (triggered directly by a client
  // query) but not the chained C prediction (depth 1).
  EXPECT_TRUE(mw.result_cache()->GetAny(
      "SELECT B_ID, B_C_ID FROM B WHERE B_ID = 112").has_value());
  EXPECT_FALSE(mw.result_cache()->GetAny(
      "SELECT C_V FROM C WHERE C_ID = 212").has_value());
}

// Exposes protected session state so tests can inspect Algorithm 4's
// satisfied-dependency bookkeeping.
class ExposedApolloMiddleware : public ApolloMiddleware {
 public:
  using ApolloMiddleware::ApolloMiddleware;

  const ClientSession* session(ClientId id) const {
    auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second.get();
  }
};

// Regression: when a mapping disproof removes an FDQ, any half-filled
// satisfied-dependency set for it must be dropped from every session.
// Before the fix the stale set survived, leaking state keyed by a dead
// FDQ id (and priming a bogus instant trigger on rediscovery).
TEST_F(PredictionTest, DisproofClearsSatisfiedDependencySets) {
  auto remote = MakeRemote();
  ExposedApolloMiddleware mw(&loop_, remote.get(), &cache_, FastConfig());
  // Learn a two-dependency FDQ: the combined C query's first parameter
  // (200+i) comes from B.B_C_ID and its second (7*i) from the plain C
  // query's C_V column.
  auto round = [&](int i) {
    RunQuery(mw, "SELECT B_ID, B_C_ID FROM B WHERE B_ID = " +
                     std::to_string(100 + i));
    RunQuery(mw, "SELECT C_V FROM C WHERE C_ID = " +
                     std::to_string(200 + i));
    RunQuery(mw, "SELECT C_ID FROM C WHERE C_ID = " +
                     std::to_string(200 + i) +
                     " AND C_V = " + std::to_string(7 * i));
    Settle();
  };
  for (int i = 1; i <= 4; ++i) round(i);

  // A lone B execution satisfies one of the two dependencies: the set
  // persists, waiting for the plain C query.
  RunQuery(mw, "SELECT B_ID, B_C_ID FROM B WHERE B_ID = 110");
  Settle();
  const ClientSession* session = mw.session(0);
  ASSERT_NE(session, nullptr);
  // The combined-C FDQ is the only one whose set can persist half-filled
  // (single-dependency FDQs fire and reset immediately): find its id.
  uint64_t fdq_id = 0;
  for (const auto& [id, sat] : session->satisfied) {
    if (!sat.empty()) {
      fdq_id = id;
      break;
    }
  }
  ASSERT_NE(fdq_id, 0u);

  // Now disprove the B -> combined-C mapping: fresh B results followed by
  // combined-C executions whose first parameter never matches.
  for (int j = 11; j <= 25 && mw.stats().fdqs_invalidated == 0; ++j) {
    RunQuery(mw, "SELECT B_ID, B_C_ID FROM B WHERE B_ID = " +
                     std::to_string(100 + j));
    RunQuery(mw, "SELECT C_ID FROM C WHERE C_ID = 999 AND C_V = 999");
    Settle();
  }
  ASSERT_GT(mw.stats().fdqs_invalidated, 0u);
  // The removed FDQ's satisfied set is gone — not merely emptied, and not
  // re-created by the B execution earlier in the disproof round.
  EXPECT_EQ(session->satisfied.count(fdq_id), 0u);
}

}  // namespace
}  // namespace apollo::core
