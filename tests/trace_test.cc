// Tests for trace capture, (de)serialization, and replay.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/caching_middleware.h"
#include "workload/trace.h"

namespace apollo::workload {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : cache_(1 << 20) {}

  void SetUp() override {
    db::Schema s("T", {{"ID", common::ValueType::kInt},
                       {"V", common::ValueType::kString}});
    s.AddIndex("PRIMARY", {"ID"});
    ASSERT_TRUE(db_.CreateTable(std::move(s)).ok());
    for (int i = 1; i <= 20; ++i) {
      ASSERT_TRUE(db_.GetTable("T")
                      ->Insert({common::Value::Int(i),
                                common::Value::Str("v" + std::to_string(i))})
                      .ok());
    }
    net::RemoteDbConfig cfg;
    cfg.rtt = sim::LatencyModel::Constant(util::Millis(10));
    remote_ = std::make_unique<net::RemoteDatabase>(&loop_, &db_, cfg);
    inner_ = std::make_unique<core::CachingMiddleware>(
        &loop_, remote_.get(), &cache_, core::ApolloConfig());
  }

  db::Database db_;
  sim::EventLoop loop_;
  cache::KvCache cache_;
  std::unique_ptr<net::RemoteDatabase> remote_;
  std::unique_ptr<core::CachingMiddleware> inner_;
};

TEST_F(TraceTest, RecorderCapturesSubmissions) {
  TraceRecorder recorder(&loop_, inner_.get());
  loop_.After(util::Millis(5), [&]() {
    recorder.SubmitQuery(1, "SELECT V FROM T WHERE ID = 3", [](auto) {});
  });
  loop_.After(util::Millis(25), [&]() {
    recorder.SubmitQuery(2, "SELECT V FROM T WHERE ID = 4", [](auto) {});
  });
  loop_.Run();
  ASSERT_EQ(recorder.trace().size(), 2u);
  EXPECT_EQ(recorder.trace()[0].client, 1);
  EXPECT_EQ(recorder.trace()[0].time, util::Millis(5));
  EXPECT_EQ(recorder.trace()[1].sql, "SELECT V FROM T WHERE ID = 4");
}

TEST_F(TraceTest, SaveLoadRoundTrip) {
  Trace trace = {
      {0, 0, "SELECT V FROM T WHERE ID = 1"},
      {1, util::Millis(7), "SELECT V FROM T WHERE S = 'a b\tc'"},
      {0, util::Seconds(2), "UPDATE T SET V = 'x' WHERE ID = 2"},
  };
  // Tabs are not produced by our dialect printer; use a tab-free variant.
  trace[1].sql = "SELECT V FROM T WHERE V = 'a b c'";
  const std::string path = ::testing::TempDir() + "/trace_test.txt";
  ASSERT_TRUE(SaveTrace(trace, path).ok());
  auto loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ((*loaded)[i].client, trace[i].client);
    EXPECT_EQ((*loaded)[i].time, trace[i].time);
    EXPECT_EQ((*loaded)[i].sql, trace[i].sql);
  }
  std::remove(path.c_str());
}

TEST_F(TraceTest, LoadRejectsMalformedLines) {
  const std::string path = ::testing::TempDir() + "/bad_trace.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "not a trace line\n");
  std::fclose(f);
  EXPECT_FALSE(LoadTrace(path).ok());
  std::remove(path.c_str());
}

TEST_F(TraceTest, ReplayPreservesRelativeTiming) {
  Trace trace = {
      {0, util::Seconds(100), "SELECT V FROM T WHERE ID = 1"},
      {0, util::Seconds(100) + util::Millis(500),
       "SELECT V FROM T WHERE ID = 2"},
  };
  RunMetrics metrics(0, util::Minutes(1));
  size_t n = ReplayTrace(&loop_, inner_.get(), trace, &metrics,
                         /*start=*/util::Millis(50));
  EXPECT_EQ(n, 2u);
  loop_.Run();
  EXPECT_EQ(metrics.count(), 2u);
  // Both queries were misses over a 10 ms RTT.
  EXPECT_GE(metrics.histogram().Min(), util::Millis(10));
}

TEST_F(TraceTest, PerClientSequencesGroupAndOrder) {
  Trace trace = {
      {1, 0, "q1"}, {2, 1, "q2"}, {1, 2, "q3"}, {2, 3, "q4"}, {1, 4, "q5"},
  };
  auto seqs = PerClientSequences(trace);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0], (std::vector<std::string>{"q1", "q3", "q5"}));
  EXPECT_EQ(seqs[1], (std::vector<std::string>{"q2", "q4"}));
}

TEST_F(TraceTest, RecorderFeedsFidoTraining) {
  TraceRecorder recorder(&loop_, inner_.get());
  for (int round = 0; round < 3; ++round) {
    loop_.After(util::Seconds(round), [&, round]() {
      recorder.SubmitQuery(0, "SELECT V FROM T WHERE ID = 1", [](auto) {});
    });
    loop_.After(util::Seconds(round) + util::Millis(100), [&]() {
      recorder.SubmitQuery(0, "SELECT V FROM T WHERE ID = 2", [](auto) {});
    });
  }
  loop_.Run();
  auto seqs = PerClientSequences(recorder.trace());
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0].size(), 6u);
}

}  // namespace
}  // namespace apollo::workload
