#include <gtest/gtest.h>

#include "db/database.h"

namespace apollo::db {
namespace {

using common::Value;
using common::ValueType;

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema users("USERS", {{"ID", ValueType::kInt},
                           {"NAME", ValueType::kString},
                           {"AGE", ValueType::kInt},
                           {"BALANCE", ValueType::kDouble}});
    users.AddIndex("PRIMARY", {"ID"});
    users.AddIndex("NAME_IDX", {"NAME"});
    ASSERT_TRUE(db_.CreateTable(std::move(users)).ok());

    Schema orders("ORDERS", {{"O_ID", ValueType::kInt},
                             {"USER_ID", ValueType::kInt},
                             {"AMOUNT", ValueType::kDouble}});
    orders.AddIndex("PRIMARY", {"O_ID"});
    orders.AddIndex("USER_IDX", {"USER_ID"});
    ASSERT_TRUE(db_.CreateTable(std::move(orders)).ok());

    Exec("INSERT INTO USERS (ID, NAME, AGE, BALANCE) VALUES "
         "(1, 'alice', 30, 10.5), (2, 'bob', 25, 20.0), "
         "(3, 'carol', 35, 5.25), (4, 'dave', 25, 0.0)");
    Exec("INSERT INTO ORDERS (O_ID, USER_ID, AMOUNT) VALUES "
         "(100, 1, 9.99), (101, 1, 19.99), (102, 2, 5.00), (103, 3, 7.50)");
  }

  common::ResultSetPtr Exec(const std::string& sql) {
    auto rs = db_.Execute(sql);
    EXPECT_TRUE(rs.ok()) << sql << " -> " << rs.status().ToString();
    return rs.ok() ? *rs : nullptr;
  }

  Database db_;
};

TEST_F(DatabaseTest, PointLookupViaIndex) {
  auto rs = Exec("SELECT NAME FROM USERS WHERE ID = 2");
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->At(0, 0).AsString(), "bob");
  // Index probe examines only the matching row.
  EXPECT_EQ(rs->rows_examined(), 1u);
}

TEST_F(DatabaseTest, FullScanFilter) {
  auto rs = Exec("SELECT NAME FROM USERS WHERE AGE = 25 ORDER BY NAME");
  ASSERT_EQ(rs->num_rows(), 2u);
  EXPECT_EQ(rs->At(0, 0).AsString(), "bob");
  EXPECT_EQ(rs->At(1, 0).AsString(), "dave");
  EXPECT_EQ(rs->rows_examined(), 4u);  // no index on AGE
}

TEST_F(DatabaseTest, Projection) {
  auto rs = Exec("SELECT ID, BALANCE FROM USERS WHERE NAME = 'alice'");
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->columns()[0], "ID");
  EXPECT_EQ(rs->columns()[1], "BALANCE");
  EXPECT_DOUBLE_EQ(rs->At(0, 1).ToDouble(), 10.5);
}

TEST_F(DatabaseTest, StarExpansion) {
  auto rs = Exec("SELECT * FROM USERS WHERE ID = 1");
  ASSERT_EQ(rs->num_columns(), 4u);
  EXPECT_EQ(rs->columns()[1], "NAME");
}

TEST_F(DatabaseTest, ArithmeticInSelectList) {
  auto rs = Exec("SELECT AGE, AGE - 20 AS A20 FROM USERS WHERE ID = 1");
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->At(0, 1).AsInt(), 10);
  EXPECT_EQ(rs->columns()[1], "A20");
}

TEST_F(DatabaseTest, ComparisonOperators) {
  EXPECT_EQ(Exec("SELECT ID FROM USERS WHERE AGE > 25")->num_rows(), 2u);
  EXPECT_EQ(Exec("SELECT ID FROM USERS WHERE AGE >= 25")->num_rows(), 4u);
  EXPECT_EQ(Exec("SELECT ID FROM USERS WHERE AGE < 30")->num_rows(), 2u);
  EXPECT_EQ(Exec("SELECT ID FROM USERS WHERE AGE <> 25")->num_rows(), 2u);
  EXPECT_EQ(
      Exec("SELECT ID FROM USERS WHERE AGE BETWEEN 25 AND 30")->num_rows(),
      3u);
  EXPECT_EQ(Exec("SELECT ID FROM USERS WHERE ID IN (1, 3)")->num_rows(),
            2u);
  EXPECT_EQ(Exec("SELECT ID FROM USERS WHERE NAME LIKE 'c%'")->num_rows(),
            1u);
  EXPECT_EQ(
      Exec("SELECT ID FROM USERS WHERE NAME NOT LIKE 'c%'")->num_rows(),
      3u);
}

TEST_F(DatabaseTest, OrAndNot) {
  EXPECT_EQ(
      Exec("SELECT ID FROM USERS WHERE AGE = 30 OR AGE = 35")->num_rows(),
      2u);
  EXPECT_EQ(Exec("SELECT ID FROM USERS WHERE NOT (AGE = 25)")->num_rows(),
            2u);
}

TEST_F(DatabaseTest, Aggregates) {
  auto rs = Exec(
      "SELECT COUNT(*) AS N, MIN(AGE) AS MN, MAX(AGE) AS MX, SUM(AGE) AS "
      "S, AVG(AGE) AS A FROM USERS");
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->At(0, 0).AsInt(), 4);
  EXPECT_EQ(rs->At(0, 1).AsInt(), 25);
  EXPECT_EQ(rs->At(0, 2).AsInt(), 35);
  EXPECT_EQ(rs->At(0, 3).AsInt(), 115);
  EXPECT_DOUBLE_EQ(rs->At(0, 4).ToDouble(), 115.0 / 4);
}

TEST_F(DatabaseTest, AggregateOnEmptyInput) {
  auto rs = Exec("SELECT COUNT(*) AS N, MAX(AGE) AS M FROM USERS WHERE "
                 "AGE > 100");
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->At(0, 0).AsInt(), 0);
  EXPECT_TRUE(rs->At(0, 1).is_null());
}

TEST_F(DatabaseTest, GroupBy) {
  auto rs = Exec(
      "SELECT AGE, COUNT(*) AS N FROM USERS GROUP BY AGE ORDER BY AGE");
  ASSERT_EQ(rs->num_rows(), 3u);
  EXPECT_EQ(rs->At(0, 0).AsInt(), 25);
  EXPECT_EQ(rs->At(0, 1).AsInt(), 2);
}

TEST_F(DatabaseTest, GroupByOrderByAggregateAlias) {
  auto rs = Exec(
      "SELECT USER_ID, SUM(AMOUNT) AS TOTAL FROM ORDERS GROUP BY USER_ID "
      "ORDER BY TOTAL DESC LIMIT 2");
  ASSERT_EQ(rs->num_rows(), 2u);
  EXPECT_EQ(rs->At(0, 0).AsInt(), 1);  // alice: 29.98
}

TEST_F(DatabaseTest, ExpressionsOverAggregates) {
  // The bestseller-window pattern: arithmetic over an aggregate result.
  auto rs = Exec("SELECT MAX(AGE) AS MX, MAX(AGE) - 10 AS MX10 FROM USERS");
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->At(0, 0).AsInt(), 35);
  EXPECT_EQ(rs->At(0, 1).AsInt(), 25);

  auto ratio = Exec("SELECT SUM(AGE) / COUNT(*) AS MEAN_AGE FROM USERS");
  EXPECT_DOUBLE_EQ(ratio->At(0, 0).ToDouble(), 115.0 / 4);
}

TEST_F(DatabaseTest, ExpressionsOverAggregatesWithGroupBy) {
  auto rs = Exec(
      "SELECT USER_ID, SUM(AMOUNT) + 1 AS T1 FROM ORDERS GROUP BY USER_ID "
      "ORDER BY USER_ID");
  ASSERT_EQ(rs->num_rows(), 3u);
  EXPECT_NEAR(rs->At(0, 1).ToDouble(), 30.98, 1e-9);
}

TEST_F(DatabaseTest, CountDistinct) {
  auto rs = Exec("SELECT COUNT(DISTINCT AGE) AS N FROM USERS");
  EXPECT_EQ(rs->At(0, 0).AsInt(), 3);
}

TEST_F(DatabaseTest, SelectDistinct) {
  auto rs = Exec("SELECT DISTINCT AGE FROM USERS");
  EXPECT_EQ(rs->num_rows(), 3u);
}

TEST_F(DatabaseTest, CommaJoin) {
  auto rs = Exec(
      "SELECT NAME, AMOUNT FROM USERS, ORDERS WHERE USER_ID = ID AND "
      "ID = 1 ORDER BY AMOUNT");
  ASSERT_EQ(rs->num_rows(), 2u);
  EXPECT_EQ(rs->At(0, 0).AsString(), "alice");
  EXPECT_DOUBLE_EQ(rs->At(0, 1).ToDouble(), 9.99);
}

TEST_F(DatabaseTest, ExplicitJoin) {
  auto rs = Exec(
      "SELECT NAME, O_ID FROM USERS JOIN ORDERS ON USER_ID = ID WHERE "
      "NAME = 'bob'");
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->At(0, 1).AsInt(), 102);
}

TEST_F(DatabaseTest, JoinWithAliases) {
  auto rs = Exec(
      "SELECT U.NAME, O.AMOUNT FROM USERS U, ORDERS O WHERE O.USER_ID = "
      "U.ID AND U.ID = 3");
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_DOUBLE_EQ(rs->At(0, 1).ToDouble(), 7.5);
}

TEST_F(DatabaseTest, JoinAggregate) {
  auto rs = Exec(
      "SELECT NAME, SUM(AMOUNT) AS TOTAL FROM USERS, ORDERS WHERE USER_ID "
      "= ID GROUP BY NAME ORDER BY TOTAL DESC");
  ASSERT_EQ(rs->num_rows(), 3u);
  EXPECT_EQ(rs->At(0, 0).AsString(), "alice");
}

TEST_F(DatabaseTest, OrderByMultipleKeys) {
  auto rs = Exec("SELECT NAME FROM USERS ORDER BY AGE, NAME DESC");
  ASSERT_EQ(rs->num_rows(), 4u);
  EXPECT_EQ(rs->At(0, 0).AsString(), "dave");  // age 25, name desc
  EXPECT_EQ(rs->At(1, 0).AsString(), "bob");
}

TEST_F(DatabaseTest, Limit) {
  EXPECT_EQ(Exec("SELECT ID FROM USERS LIMIT 2")->num_rows(), 2u);
  EXPECT_EQ(Exec("SELECT ID FROM USERS LIMIT 0")->num_rows(), 0u);
}

TEST_F(DatabaseTest, UpdateWithArithmetic) {
  auto rs = Exec("UPDATE USERS SET BALANCE = BALANCE + 5.0 WHERE ID = 1");
  EXPECT_EQ(rs->affected_rows(), 1u);
  auto check = Exec("SELECT BALANCE FROM USERS WHERE ID = 1");
  EXPECT_DOUBLE_EQ(check->At(0, 0).ToDouble(), 15.5);
}

TEST_F(DatabaseTest, UpdateMaintainsIndex) {
  Exec("UPDATE USERS SET NAME = 'zed' WHERE ID = 1");
  EXPECT_EQ(Exec("SELECT ID FROM USERS WHERE NAME = 'zed'")->num_rows(),
            1u);
  EXPECT_EQ(Exec("SELECT ID FROM USERS WHERE NAME = 'alice'")->num_rows(),
            0u);
}

TEST_F(DatabaseTest, DeleteRemovesRows) {
  auto rs = Exec("DELETE FROM ORDERS WHERE USER_ID = 1");
  EXPECT_EQ(rs->affected_rows(), 2u);
  EXPECT_EQ(Exec("SELECT O_ID FROM ORDERS")->num_rows(), 2u);
  // Index no longer finds deleted rows.
  EXPECT_EQ(Exec("SELECT O_ID FROM ORDERS WHERE USER_ID = 1")->num_rows(),
            0u);
}

TEST_F(DatabaseTest, InsertThenVisible) {
  Exec("INSERT INTO USERS (ID, NAME, AGE, BALANCE) VALUES (9, 'eve', 40, "
       "1.0)");
  EXPECT_EQ(Exec("SELECT NAME FROM USERS WHERE ID = 9")->At(0, 0).AsString(),
            "eve");
}

TEST_F(DatabaseTest, VersionsBumpOnWritesOnly) {
  uint64_t v0 = db_.TableVersion("USERS");
  uint64_t orders_v0 = db_.TableVersion("ORDERS");
  Exec("SELECT * FROM USERS");
  EXPECT_EQ(db_.TableVersion("USERS"), v0);
  Exec("UPDATE USERS SET AGE = 31 WHERE ID = 1");
  EXPECT_EQ(db_.TableVersion("USERS"), v0 + 1);
  Exec("INSERT INTO USERS (ID, NAME, AGE, BALANCE) VALUES (10, 'f', 1, "
       "0.0)");
  EXPECT_EQ(db_.TableVersion("USERS"), v0 + 2);
  Exec("DELETE FROM USERS WHERE ID = 10");
  EXPECT_EQ(db_.TableVersion("USERS"), v0 + 3);
  // Other tables unaffected.
  EXPECT_EQ(db_.TableVersion("ORDERS"), orders_v0);
}

TEST_F(DatabaseTest, ErrorsSurface) {
  EXPECT_FALSE(db_.Execute("SELECT X FROM NOPE").ok());
  EXPECT_FALSE(db_.Execute("SELECT NOPE_COL FROM USERS").ok());
  EXPECT_FALSE(db_.Execute("INSERT INTO USERS (ID) VALUES (1, 2)").ok());
  EXPECT_FALSE(db_.Execute("UPDATE USERS SET NOPE = 1").ok());
}

TEST_F(DatabaseTest, DuplicateTableRejected) {
  Schema s("USERS", {{"X", ValueType::kInt}});
  EXPECT_FALSE(db_.CreateTable(std::move(s)).ok());
}

TEST_F(DatabaseTest, NullHandling) {
  Exec("INSERT INTO USERS (ID, NAME, AGE, BALANCE) VALUES (11, 'n', NULL, "
       "NULL)");
  // NULL never matches comparisons.
  EXPECT_EQ(Exec("SELECT ID FROM USERS WHERE AGE = NULL")->num_rows(), 0u);
  auto rs = Exec("SELECT ID FROM USERS WHERE AGE IS NULL");
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->At(0, 0).AsInt(), 11);
  EXPECT_EQ(Exec("SELECT ID FROM USERS WHERE AGE IS NOT NULL")->num_rows(),
            4u);
  // Aggregates skip NULLs.
  EXPECT_EQ(Exec("SELECT COUNT(AGE) AS N FROM USERS")->At(0, 0).AsInt(), 4);
}

TEST_F(DatabaseTest, MultiColumnIndex) {
  Schema s("COMP", {{"A", ValueType::kInt},
                    {"B", ValueType::kInt},
                    {"V", ValueType::kString}});
  s.AddIndex("PRIMARY", {"A", "B"});
  ASSERT_TRUE(db_.CreateTable(std::move(s)).ok());
  for (int a = 1; a <= 10; ++a) {
    for (int b = 1; b <= 10; ++b) {
      Exec("INSERT INTO COMP (A, B, V) VALUES (" + std::to_string(a) + ", " +
           std::to_string(b) + ", 'v')");
    }
  }
  auto rs = Exec("SELECT V FROM COMP WHERE A = 3 AND B = 7");
  ASSERT_EQ(rs->num_rows(), 1u);
  EXPECT_EQ(rs->rows_examined(), 1u);  // composite index probe
}

TEST_F(DatabaseTest, RowsExaminedGrowsWithScans) {
  auto indexed = Exec("SELECT * FROM USERS WHERE ID = 1");
  auto scanned = Exec("SELECT * FROM USERS WHERE AGE = 30");
  EXPECT_LT(indexed->rows_examined(), scanned->rows_examined());
}

TEST_F(DatabaseTest, StatsAccumulate) {
  auto s0 = db_.stats();
  Exec("SELECT * FROM USERS");
  Exec("UPDATE USERS SET AGE = 1 WHERE ID = 2");
  auto s1 = db_.stats();
  EXPECT_EQ(s1.reads, s0.reads + 1);
  EXPECT_EQ(s1.writes, s0.writes + 1);
}

}  // namespace
}  // namespace apollo::db
