// Tests for the W-TinyLFU eviction path (DESIGN.md Section 13): the
// Count-Min-Sketch estimator properties, admission behaviour at the
// KvCache level, and the Apollo cost-aware score.
#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/count_min_sketch.h"
#include "cache/kv_cache.h"
#include "cache/tinylfu_policy.h"
#include "cache/version_vector.h"

namespace apollo::cache {
namespace {

common::ResultSetPtr MakeResult(int64_t v) {
  auto rs =
      std::make_shared<common::ResultSet>(std::vector<std::string>{"V"});
  rs->AddRow({common::Value::Int(v)});
  return rs;
}

VersionVector VV(std::initializer_list<std::pair<std::string, uint64_t>> xs) {
  VersionVector vv;
  for (const auto& [t, v] : xs) vv.Set(t, v);
  return vv;
}

size_t EntryBytes(const std::string& key) {
  KvCache probe(1 << 20, 1);
  probe.Put(key, MakeResult(1), VV({{"T", 1}}));
  return probe.stats().bytes_used;
}

TEST(CountMinSketchTest, NeverUndercountsBelowSaturation) {
  CountMinSketch sketch(1024, 4);
  std::mt19937_64 rng(7);
  std::unordered_map<uint64_t, uint32_t> truth;
  // A skewed stream: a few hot keys plus a long random tail.
  std::vector<uint64_t> keys;
  for (int i = 0; i < 64; ++i) keys.push_back(rng());
  for (int i = 0; i < 20000; ++i) {
    uint64_t k = (i % 3 == 0) ? keys[i % 8] : keys[rng() % keys.size()];
    sketch.Add(k);
    ++truth[k];
  }
  for (const auto& [k, count] : truth) {
    uint32_t capped = count > 255 ? 255 : count;
    EXPECT_GE(sketch.Estimate(k), capped) << "undercount for key " << k;
  }
}

TEST(CountMinSketchTest, HalvingPreservesRelativeOrder) {
  CountMinSketch sketch(4096, 4);
  const uint64_t hot = 0x1234567890abcdefull;
  const uint64_t warm = 0xfedcba0987654321ull;
  const uint64_t cold = 0x0f1e2d3c4b5a6978ull;
  for (int i = 0; i < 200; ++i) sketch.Add(hot);
  for (int i = 0; i < 40; ++i) sketch.Add(warm);
  for (int i = 0; i < 2; ++i) sketch.Add(cold);
  ASSERT_GT(sketch.Estimate(hot), sketch.Estimate(warm));
  ASSERT_GT(sketch.Estimate(warm), sketch.Estimate(cold));
  sketch.Halve();
  // Aging decays magnitudes but never reorders survivors.
  EXPECT_GT(sketch.Estimate(hot), sketch.Estimate(warm));
  EXPECT_GT(sketch.Estimate(warm), sketch.Estimate(cold));
  EXPECT_LE(sketch.Estimate(hot), 128u);
}

TEST(CountMinSketchTest, GeometryClamps) {
  CountMinSketch tiny(1, 0);
  EXPECT_EQ(tiny.width(), 16u);
  EXPECT_EQ(tiny.depth(), 1u);
  CountMinSketch wide(5000, 99);
  EXPECT_EQ(wide.width(), 8192u);  // rounded up to a power of two
  EXPECT_EQ(wide.depth(), 8u);
}

TEST(TinyLfuPolicyTest, CostAwareScoreWeighsCostAndConfidence) {
  KvCacheOptions opt;
  opt.policy = CachePolicy::kTinyLfuCost;
  opt.default_miss_cost_us = 1000.0;
  TinyLfuPolicy policy(opt, /*shard_capacity=*/1 << 16);
  const uint64_t k = 42;
  policy.RecordAccess(k);
  policy.RecordAccess(k);
  const double demand = policy.Score(k, false, 70000.0, 1.0);
  const double cheap = policy.Score(k, false, 700.0, 1.0);
  EXPECT_GT(demand, cheap) << "a WAN-expensive entry must outscore a "
                              "cheap one at equal frequency";
  const double sure = policy.Score(k, true, 70000.0, 0.9);
  const double longshot = policy.Score(k, true, 70000.0, 0.05);
  EXPECT_GT(sure, longshot);
  // Unknown cost falls back to the configured default, not zero.
  EXPECT_GT(policy.Score(k, false, 0.0, 1.0), 0.0);
}

// Scan resistance: a one-pass flood of cold keys must not displace the
// frequently-read hot set from a TinyLFU cache (it would from an LRU).
TEST(TinyLfuCacheTest, HotSetSurvivesColdScan) {
  const size_t e = EntryBytes("hot0");
  KvCacheOptions opt;
  opt.policy = CachePolicy::kTinyLfu;
  // Main segment holds exactly the 4-entry hot set, so every cold
  // candidate must beat a hot incumbent to get in (it can't).
  KvCache cache(4 * e + e / 2, 1, nullptr, "cache.", opt);
  for (int i = 0; i < 4; ++i) {
    cache.Put("hot" + std::to_string(i), MakeResult(i), VV({{"T", 1}}));
  }
  // Make them demonstrably hot.
  for (int round = 0; round < 16; ++round) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(cache.GetCompatible("hot" + std::to_string(i),
                                      VersionVector(), {"T"}));
    }
  }
  // One-off scan, 3x the cache size.
  for (int i = 0; i < 24; ++i) {
    char key[12];
    std::snprintf(key, sizeof(key), "cold%03d", i);
    cache.Put(key, MakeResult(i), VV({{"T", 1}}));
  }
  int hot_alive = 0;
  for (int i = 0; i < 4; ++i) {
    if (cache.ContainsCompatible("hot" + std::to_string(i), VersionVector(),
                                 {"T"})) {
      ++hot_alive;
    }
  }
  EXPECT_EQ(hot_alive, 4);
  auto s = cache.stats();
  EXPECT_GT(s.admission_rejected, 0u);
  EXPECT_LE(s.bytes_used, cache.capacity_bytes());
}

TEST(TinyLfuCacheTest, SketchResetsCountAging) {
  KvCacheOptions opt;
  opt.policy = CachePolicy::kTinyLfu;
  opt.sketch_reset_adds = 64;
  KvCache cache(1 << 16, 1, nullptr, "cache.", opt);
  cache.Put("k", MakeResult(1), VV({{"T", 1}}));
  for (int i = 0; i < 200; ++i) {
    cache.GetCompatible("k", VersionVector(), {"T"});
  }
  EXPECT_GE(cache.stats().sketch_resets, 3u);
}

// The Apollo extension: a high-confidence predicted entry whose miss
// cost is a full WAN round trip outlives cold demand one-offs, even
// though the prediction itself was never read.
TEST(TinyLfuCacheTest, CostAwareKeepsValuablePrediction) {
  const size_t e = EntryBytes("pred");
  KvCacheOptions opt;
  opt.policy = CachePolicy::kTinyLfuCost;
  opt.default_miss_cost_us = 100.0;
  KvCache cache(6 * e, 1, nullptr, "cache.", opt);
  // Anchor a hot demand entry so the main segment has an incumbent.
  cache.Put("base", MakeResult(0), VV({{"T", 1}}));
  for (int i = 0; i < 8; ++i) {
    cache.GetCompatible("base", VersionVector(), {"T"});
  }
  KvCache::PutAttrs attrs;
  attrs.predicted = true;
  attrs.template_id = 5;
  attrs.miss_cost_us = 70000.0;  // a WAN round trip
  attrs.probability = 0.9;
  cache.Put("pred", MakeResult(1), VV({{"T", 1}}), attrs);
  for (int i = 0; i < 40; ++i) {
    char key[12];
    std::snprintf(key, sizeof(key), "cold%03d", i);
    cache.Put(key, MakeResult(i), VV({{"T", 1}}));
  }
  EXPECT_TRUE(
      cache.ContainsCompatible("pred", VersionVector(), {"T"}))
      << "high-cost high-confidence prediction displaced by cold scan";
  EXPECT_TRUE(
      cache.ContainsCompatible("base", VersionVector(), {"T"}));
}

// Under the default LRU policy the TinyLFU instruments stay zero and the
// two-segment machinery is inert (everything lives in the window list).
TEST(TinyLfuCacheTest, LruDefaultKeepsTinyLfuCountersZero) {
  const size_t e = EntryBytes("k00");
  KvCache cache(4 * e, 2);
  EXPECT_EQ(cache.policy(), CachePolicy::kLru);
  for (int i = 0; i < 64; ++i) {
    char key[8];
    std::snprintf(key, sizeof(key), "k%02d", i);
    cache.Put(key, MakeResult(i), VV({{"T", 1}}));
    cache.GetCompatible(key, VersionVector(), {"T"});
  }
  auto s = cache.stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_EQ(s.admission_rejected, 0u);
  EXPECT_EQ(s.sketch_resets, 0u);
  EXPECT_EQ(s.evictions_window, 0u);
  EXPECT_EQ(s.evictions_main, 0u);
}

}  // namespace
}  // namespace apollo::cache
