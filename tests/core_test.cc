#include <gtest/gtest.h>

#include <algorithm>

#include "core/dependency_graph.h"
#include "core/inflight_registry.h"
#include "core/param_mapper.h"
#include "core/query_stream.h"
#include "core/template_registry.h"
#include "core/transition_graph.h"
#include "sql/template.h"

namespace apollo::core {
namespace {

using util::Seconds;

// ---- TransitionGraph ----

TEST(TransitionGraphTest, ProbabilityIsEdgeOverVertex) {
  TransitionGraph g(Seconds(15));
  g.AddVertexObservation(1);
  g.AddVertexObservation(1);
  g.AddEdgeObservation(1, 2);
  EXPECT_DOUBLE_EQ(g.TransitionProbability(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(g.TransitionProbability(1, 3), 0.0);
  EXPECT_DOUBLE_EQ(g.TransitionProbability(9, 2), 0.0);
}

TEST(TransitionGraphTest, SuccessorsFilterByThreshold) {
  TransitionGraph g(Seconds(15));
  for (int i = 0; i < 100; ++i) g.AddVertexObservation(1);
  for (int i = 0; i < 60; ++i) g.AddEdgeObservation(1, 2);
  g.AddEdgeObservation(1, 3);  // 1%
  auto succ = g.Successors(1, 0.05);
  ASSERT_EQ(succ.size(), 1u);
  EXPECT_EQ(succ[0].first, 2u);
  EXPECT_NEAR(succ[0].second, 0.6, 1e-9);
  EXPECT_EQ(g.Successors(1, 0.005).size(), 2u);
}

TEST(TransitionGraphTest, SuccessorsIncludeExactThreshold) {
  // The paper's "related at tau" is P >= tau; a successor sitting exactly
  // at the threshold must be admitted (regression: the old strict > lost
  // boundary relationships, inconsistent with the freshness model's
  // boundary handling).
  TransitionGraph g(Seconds(15));
  for (int i = 0; i < 100; ++i) g.AddVertexObservation(1);
  for (int i = 0; i < 5; ++i) g.AddEdgeObservation(1, 2);  // exactly 5%
  auto succ = g.Successors(1, 0.05);
  ASSERT_EQ(succ.size(), 1u);
  EXPECT_EQ(succ[0].first, 2u);
}

TEST(TransitionGraphTest, ProbabilityMass) {
  TransitionGraph g(Seconds(1));
  g.AddVertexObservation(1);
  g.AddVertexObservation(1);
  g.AddEdgeObservation(1, 2);
  g.AddEdgeObservation(1, 3);
  double mass =
      g.SuccessorProbabilityMass(1, [](uint64_t t) { return t != 3; });
  EXPECT_DOUBLE_EQ(mass, 0.5);
}

// ---- QueryStream / Algorithm 1 ----

TEST(QueryStreamTest, WindowsCloseAfterDeltaT) {
  QueryStream stream({Seconds(10)}, 128);
  stream.Append(1, Seconds(0));
  stream.Append(2, Seconds(5));
  stream.Append(3, Seconds(30));

  // At t=5 nothing has closed yet.
  stream.Process(Seconds(5));
  EXPECT_EQ(stream.primary().VertexCount(1), 0u);

  // At t=11 the window of entry 1 has closed: edge 1->2 (within 10 s).
  stream.Process(Seconds(11));
  EXPECT_EQ(stream.primary().VertexCount(1), 1u);
  EXPECT_EQ(stream.primary().EdgeCount(1, 2), 1u);
  EXPECT_EQ(stream.primary().EdgeCount(1, 3), 0u);

  stream.Process(Seconds(50));
  EXPECT_EQ(stream.primary().VertexCount(2), 1u);
  EXPECT_EQ(stream.primary().EdgeCount(2, 3), 0u);  // 25 s apart
  EXPECT_EQ(stream.primary().VertexCount(3), 1u);
}

TEST(QueryStreamTest, MultipleGraphsDifferentWindows) {
  QueryStream stream({Seconds(1), Seconds(10)}, 128);
  stream.Append(1, Seconds(0));
  stream.Append(2, Seconds(5));
  stream.Process(Seconds(60));
  // Small window misses the 5 s gap; big window catches it.
  EXPECT_EQ(stream.graph(0).EdgeCount(1, 2), 0u);
  EXPECT_EQ(stream.graph(1).EdgeCount(1, 2), 1u);
}

TEST(QueryStreamTest, GraphCoveringPicksSmallestSufficient) {
  QueryStream stream({Seconds(1), Seconds(5), Seconds(15)}, 128);
  EXPECT_EQ(stream.GraphCovering(util::Millis(500)).delta_t(), Seconds(1));
  EXPECT_EQ(stream.GraphCovering(Seconds(2)).delta_t(), Seconds(5));
  EXPECT_EQ(stream.GraphCovering(Seconds(60)).delta_t(), Seconds(15));
}

TEST(QueryStreamTest, EntriesWithinWindow) {
  QueryStream stream({Seconds(10)}, 128);
  stream.Append(1, Seconds(0));
  stream.Append(2, Seconds(8));
  stream.Append(3, Seconds(9));
  auto recent = stream.EntriesWithin(Seconds(9), Seconds(5));
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].qt, 2u);
  EXPECT_EQ(recent[1].qt, 3u);
}

TEST(QueryStreamTest, RepeatedPatternYieldsHighProbability) {
  QueryStream stream({Seconds(15)}, 2048);
  util::SimTime t = 0;
  for (int i = 0; i < 50; ++i) {
    stream.Append(100, t);
    stream.Append(200, t + Seconds(1));
    t += Seconds(60);
  }
  stream.Process(t + Seconds(60));
  EXPECT_GT(stream.primary().TransitionProbability(100, 200), 0.9);
  // Reverse direction was never observed within the window.
  EXPECT_DOUBLE_EQ(stream.primary().TransitionProbability(200, 100), 0.0);
}

TEST(QueryStreamTest, TrimKeepsMemoryBounded) {
  QueryStream stream({Seconds(1)}, 64);
  for (int i = 0; i < 10000; ++i) {
    stream.Append(static_cast<uint64_t>(i % 7), Seconds(i));
    if (i % 100 == 0) stream.Process(Seconds(i));
  }
  stream.Process(Seconds(10001));
  EXPECT_LE(stream.size(), 128u);
}

// ---- ParamMapper (Section 2.3) ----

common::ResultSet MakeRs(const std::vector<std::string>& cols,
                         const std::vector<common::Row>& rows) {
  common::ResultSet rs(cols);
  for (const auto& r : rows) rs.AddRow(r);
  return rs;
}

TEST(ParamMapperTest, ConfirmsAfterVerificationPeriod) {
  ParamMapper mapper(/*verification_period=*/3);
  auto rs = MakeRs({"C_ID"}, {{common::Value::Int(7)}});
  std::vector<common::Value> params = {common::Value::Int(7)};

  mapper.ObservePair(1, rs, 2, params);
  EXPECT_FALSE(mapper.PairConfirmed(1, 2));  // only 1 observation
  mapper.ObservePair(1, rs, 2, params);
  EXPECT_FALSE(mapper.PairConfirmed(1, 2));
  mapper.ObservePair(1, rs, 2, params);
  EXPECT_TRUE(mapper.PairConfirmed(1, 2));

  auto sources = mapper.GetSources(2, 1);
  ASSERT_TRUE(sources.complete);
  ASSERT_EQ(sources.per_param[0].size(), 1u);
  EXPECT_EQ(sources.per_param[0][0].src, 1u);
  EXPECT_EQ(sources.per_param[0][0].col, 0);
}

TEST(ParamMapperTest, IntersectionNarrowsColumns) {
  ParamMapper mapper(2);
  // First observation: param 5 appears in both columns.
  auto rs1 = MakeRs({"A", "B"},
                    {{common::Value::Int(5), common::Value::Int(5)}});
  mapper.ObservePair(1, rs1, 2, {common::Value::Int(5)});
  // Second observation: only column B matches.
  auto rs2 = MakeRs({"A", "B"},
                    {{common::Value::Int(9), common::Value::Int(6)}});
  mapper.ObservePair(1, rs2, 2, {common::Value::Int(6)});
  auto sources = mapper.GetSources(2, 1);
  ASSERT_TRUE(sources.complete);
  EXPECT_EQ(sources.per_param[0][0].col, 1);
}

TEST(ParamMapperTest, CoincidenceDiesOut) {
  ParamMapper mapper(2);
  auto rs1 = MakeRs({"A"}, {{common::Value::Int(5)}});
  mapper.ObservePair(1, rs1, 2, {common::Value::Int(5)});
  auto rs2 = MakeRs({"A"}, {{common::Value::Int(5)}});
  mapper.ObservePair(1, rs2, 2, {common::Value::Int(99)});  // no match
  EXPECT_FALSE(mapper.PairConfirmed(1, 2));
  EXPECT_FALSE(mapper.GetSources(2, 1).complete);
}

TEST(ParamMapperTest, PersistentDisproofInvalidates) {
  ParamMapper mapper(2);
  auto rs = MakeRs({"A"}, {{common::Value::Int(5)}});
  mapper.ObservePair(1, rs, 2, {common::Value::Int(5)});
  EXPECT_FALSE(
      mapper.ObservePair(1, rs, 2, {common::Value::Int(5)}));  // confirmed
  EXPECT_TRUE(mapper.PairConfirmed(1, 2));
  // A single contradicting observation is tolerated (it may be a stale
  // cross-transaction attribution)...
  EXPECT_FALSE(mapper.ObservePair(1, rs, 2, {common::Value::Int(42)}));
  EXPECT_TRUE(mapper.PairConfirmed(1, 2));
  // ...but persistent contradiction disproves the mapping.
  bool disproven = false;
  for (uint32_t i = 0; i < ParamMapper::kMinViolations; ++i) {
    disproven |= mapper.ObservePair(1, rs, 2, {common::Value::Int(42)});
  }
  EXPECT_TRUE(disproven);
  EXPECT_FALSE(mapper.PairConfirmed(1, 2));
}

TEST(ParamMapperTest, OccasionalMismatchesToleratedWhenSupportDominates) {
  ParamMapper mapper(2);
  auto rs = MakeRs({"A"}, {{common::Value::Int(5)}});
  mapper.ObservePair(1, rs, 2, {common::Value::Int(5)});
  mapper.ObservePair(1, rs, 2, {common::Value::Int(5)});
  ASSERT_TRUE(mapper.PairConfirmed(1, 2));
  // Mix of supports and occasional violations: stays confirmed as long as
  // supports dominate.
  for (int round = 0; round < 20; ++round) {
    for (int s = 0; s < 3; ++s) {
      EXPECT_FALSE(mapper.ObservePair(1, rs, 2, {common::Value::Int(5)}));
    }
    EXPECT_FALSE(mapper.ObservePair(1, rs, 2, {common::Value::Int(42)}));
  }
  EXPECT_TRUE(mapper.PairConfirmed(1, 2));
}

TEST(ParamMapperTest, EmptiedVerificationWindowRestarts) {
  ParamMapper mapper(3);
  auto rs5 = MakeRs({"A"}, {{common::Value::Int(5)}});
  auto rs6 = MakeRs({"A"}, {{common::Value::Int(6)}});
  // First window dies on a mismatch...
  mapper.ObservePair(1, rs5, 2, {common::Value::Int(5)});
  mapper.ObservePair(1, rs5, 2, {common::Value::Int(99)});
  EXPECT_FALSE(mapper.PairConfirmed(1, 2));
  // ...but a clean run afterwards still confirms the mapping.
  mapper.ObservePair(1, rs5, 2, {common::Value::Int(5)});
  mapper.ObservePair(1, rs6, 2, {common::Value::Int(6)});
  mapper.ObservePair(1, rs5, 2, {common::Value::Int(5)});
  EXPECT_TRUE(mapper.PairConfirmed(1, 2));
}

TEST(ParamMapperTest, MatchesAnyRowOfColumn) {
  ParamMapper mapper(1);
  auto rs = MakeRs({"X"}, {{common::Value::Int(1)},
                           {common::Value::Int(2)},
                           {common::Value::Int(3)}});
  mapper.ObservePair(1, rs, 2, {common::Value::Int(3)});
  EXPECT_TRUE(mapper.PairConfirmed(1, 2));
}

TEST(ParamMapperTest, EmptyResultSetsSkipped) {
  ParamMapper mapper(1);
  common::ResultSet empty(std::vector<std::string>{"X"});
  mapper.ObservePair(1, empty, 2, {common::Value::Int(1)});
  EXPECT_FALSE(mapper.PairConfirmed(1, 2));
}

TEST(ParamMapperTest, MultipleParamsMultipleSources) {
  ParamMapper mapper(1);
  auto rs1 = MakeRs({"W"}, {{common::Value::Int(10)}});
  auto rs2 = MakeRs({"O"}, {{common::Value::Int(20)}});
  mapper.ObservePair(1, rs1, 3,
                     {common::Value::Int(10), common::Value::Int(20)});
  mapper.ObservePair(2, rs2, 3,
                     {common::Value::Int(10), common::Value::Int(20)});
  // Param 0 from template 1, param 1 from template 2... but template 1's
  // result didn't contain 20 and template 2's didn't contain 10.
  auto sources = mapper.GetSources(3, 2);
  ASSERT_TRUE(sources.complete);
  EXPECT_EQ(sources.per_param[0][0].src, 1u);
  EXPECT_EQ(sources.per_param[1][0].src, 2u);
}

// ---- DependencyGraph (FDQ/ADQ) ----

TEST(DependencyGraphTest, AddAndLookup) {
  DependencyGraph g;
  EXPECT_FALSE(g.Contains(10));
  Fdq* f = g.Add(10, {{5, 0}, {5, 1}});
  EXPECT_TRUE(g.Contains(10));
  EXPECT_EQ(f->deps, (std::vector<uint64_t>{5}));
  ASSERT_EQ(g.DependentsOf(5).size(), 1u);
  EXPECT_EQ(g.DependentsOf(5)[0]->id, 10u);
  EXPECT_TRUE(g.DependentsOf(999).empty());
}

TEST(DependencyGraphTest, ZeroParamIsAdq) {
  DependencyGraph g;
  Fdq* f = g.Add(1, {});
  EXPECT_TRUE(f->is_adq);
}

TEST(DependencyGraphTest, AdqPropagatesThroughHierarchy) {
  DependencyGraph g;
  // 2 depends on 1 before 1 is known: not ADQ yet.
  Fdq* f2 = g.Add(2, {{1, 0}});
  EXPECT_FALSE(f2->is_adq);
  // Registering 1 as a parameterless ADQ upgrades 2 (paper Section 3.1).
  g.Add(1, {});
  EXPECT_TRUE(f2->is_adq);
  // And a deeper dependent becomes ADQ immediately.
  Fdq* f3 = g.Add(3, {{2, 0}});
  EXPECT_TRUE(f3->is_adq);
}

TEST(DependencyGraphTest, NonAdqDependencyBlocksAdq) {
  DependencyGraph g;
  Fdq* f = g.Add(2, {{1, 0}});  // template 1 is a plain dependency query
  g.Add(3, {{2, 0}, {7, 0}});   // 7 unknown
  EXPECT_FALSE(f->is_adq);
  EXPECT_FALSE(g.Get(3)->is_adq);
}

TEST(DependencyGraphTest, CycleIsNotAdq) {
  DependencyGraph g;
  g.Add(1, {{2, 0}});
  g.Add(2, {{1, 0}});
  EXPECT_FALSE(g.Get(1)->is_adq);
  EXPECT_FALSE(g.Get(2)->is_adq);
}

TEST(DependencyGraphTest, InvalidateDisables) {
  DependencyGraph g;
  g.Add(1, {});
  EXPECT_EQ(g.Adqs().size(), 1u);
  g.Invalidate(1);
  EXPECT_TRUE(g.Get(1)->invalid);
  EXPECT_TRUE(g.Adqs().empty());
}

TEST(DependencyGraphTest, RemoveRevokesAdqTagsTransitively) {
  // 1 (parameterless ADQ) <- 2 <- 3 <- 4: removing 1 must untag the whole
  // chain, not just the direct dependent (regression: informed reload kept
  // executing hierarchies whose root was invalidated).
  DependencyGraph g;
  g.Add(1, {});
  g.Add(2, {{1, 0}});
  g.Add(3, {{2, 0}});
  g.Add(4, {{3, 0}});
  ASSERT_TRUE(g.Get(4)->is_adq);
  std::vector<uint64_t> revoked;
  g.Remove(1, &revoked);
  EXPECT_FALSE(g.Get(2)->is_adq);
  EXPECT_FALSE(g.Get(3)->is_adq);
  EXPECT_FALSE(g.Get(4)->is_adq);
  // The removed root was itself an ADQ, so all four ids are reported.
  std::sort(revoked.begin(), revoked.end());
  EXPECT_EQ(revoked, (std::vector<uint64_t>{1, 2, 3, 4}));
  EXPECT_TRUE(g.Adqs().empty());
}

TEST(DependencyGraphTest, InvalidateRevokesAdqTagsTransitively) {
  DependencyGraph g;
  g.Add(1, {});
  g.Add(2, {{1, 0}});
  g.Add(3, {{2, 0}});
  std::vector<uint64_t> revoked;
  g.Invalidate(2, &revoked);
  EXPECT_TRUE(g.Get(1)->is_adq);   // the root is untouched
  EXPECT_FALSE(g.Get(2)->is_adq);
  EXPECT_FALSE(g.Get(3)->is_adq);
  std::sort(revoked.begin(), revoked.end());
  EXPECT_EQ(revoked, (std::vector<uint64_t>{2, 3}));
}

TEST(DependencyGraphTest, AddReportsUpgradedDependents) {
  DependencyGraph g;
  g.Add(2, {{1, 0}});
  g.Add(3, {{2, 0}});
  std::vector<uint64_t> upgraded;
  Fdq* root = g.Add(1, {}, &upgraded);
  EXPECT_TRUE(root->is_adq);
  std::sort(upgraded.begin(), upgraded.end());
  // The root reports the *other* nodes its addition completed.
  EXPECT_EQ(upgraded, (std::vector<uint64_t>{2, 3}));
}

// ---- InflightRegistry (Section 3.3) ----

TEST(InflightRegistryTest, FirstIsLeader) {
  InflightRegistry reg;
  int fired = 0;
  EXPECT_TRUE(reg.BeginOrSubscribe("k", [&](auto&, auto&) { ++fired; }));
  EXPECT_FALSE(reg.BeginOrSubscribe("k", [&](auto&, auto&) { ++fired; }));
  EXPECT_FALSE(reg.BeginOrSubscribe("k", [&](auto&, auto&) { ++fired; }));
  EXPECT_EQ(reg.coalesced(), 2u);
  EXPECT_TRUE(reg.InFlight("k"));

  auto rs = std::make_shared<common::ResultSet>();
  cache::VersionVector vv;
  reg.Complete("k", util::Result<common::ResultSetPtr>(rs), vv);
  // Only the two subscribers fire (the leader handles its own callback).
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(reg.InFlight("k"));
  // Key reusable afterwards.
  EXPECT_TRUE(reg.BeginOrSubscribe("k", [&](auto&, auto&) {}));
}

TEST(InflightRegistryTest, CompleteUnknownKeyIsNoop) {
  InflightRegistry reg;
  cache::VersionVector vv;
  reg.Complete("nope", util::Status::Internal("x"), vv);  // no crash
}

TEST(InflightRegistryTest, ReentrantSubscribeDuringComplete) {
  InflightRegistry reg;
  int outer = 0;
  bool leader_again = false;
  EXPECT_TRUE(reg.BeginOrSubscribe("k", [](auto&, auto&) {}));
  reg.BeginOrSubscribe("k", [&](auto&, auto&) {
    ++outer;
    // Re-submitting the same key during completion must become leader.
    leader_again = reg.BeginOrSubscribe("k", [](auto&, auto&) {});
  });
  auto rs = std::make_shared<common::ResultSet>();
  reg.Complete("k", util::Result<common::ResultSetPtr>(rs),
               cache::VersionVector());
  EXPECT_EQ(outer, 1);
  EXPECT_TRUE(leader_again);
}

// ---- TemplateRegistry ----

TEST(TemplateRegistryTest, InternDeduplicates) {
  TemplateRegistry reg;
  auto info1 = sql::Templatize("SELECT A FROM T WHERE X = 1");
  auto info2 = sql::Templatize("SELECT A FROM T WHERE X = 2");
  ASSERT_TRUE(info1.ok());
  TemplateMeta* m1 = reg.Intern(*info1);
  TemplateMeta* m2 = reg.Intern(*info2);
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(m1->num_placeholders, 1);
  EXPECT_TRUE(m1->read_only);
}

TEST(TemplateRegistryTest, ExecutionStatsCumulativeMean) {
  TemplateRegistry reg;
  auto info = sql::Templatize("SELECT A FROM T");
  TemplateMeta* m = reg.Intern(*info);
  m->RecordExecution(util::Millis(10));
  m->RecordExecution(util::Millis(20));
  EXPECT_DOUBLE_EQ(m->mean_exec_us, 15000.0);
  EXPECT_EQ(m->executions, 2u);
}

TEST(TemplateRegistryTest, ObservationCounting) {
  TemplateRegistry reg;
  auto a = sql::Templatize("SELECT A FROM T");
  auto b = sql::Templatize("SELECT B FROM T");
  TemplateMeta* ma = reg.Intern(*a);
  TemplateMeta* mb = reg.Intern(*b);
  reg.BumpObservations(ma);
  reg.BumpObservations(ma);
  reg.BumpObservations(mb);
  EXPECT_EQ(ma->observations, 2u);
  EXPECT_EQ(reg.total_observations(), 3u);
}

}  // namespace
}  // namespace apollo::core
