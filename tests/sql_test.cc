#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/printer.h"
#include "sql/template.h"
#include "sql/token.h"

namespace apollo::sql {
namespace {

TEST(TokenizerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, b FROM t WHERE x = 1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->front().text, "SELECT");
  EXPECT_EQ(tokens->back().type, TokenType::kEnd);
}

TEST(TokenizerTest, StringEscapes) {
  auto tokens = Tokenize("SELECT 'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].type, TokenType::kString);
  EXPECT_EQ((*tokens)[1].text, "it's");
}

TEST(TokenizerTest, UnterminatedString) {
  auto tokens = Tokenize("SELECT 'oops");
  EXPECT_FALSE(tokens.ok());
}

TEST(TokenizerTest, NumbersAndOperators) {
  auto tokens = Tokenize("1 2.5 <= >= <> != = < >");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[1].type, TokenType::kFloat);
  EXPECT_EQ((*tokens)[2].text, "<=");
  // != normalizes to <>
  EXPECT_EQ((*tokens)[5].text, "<>");
}

TEST(TokenizerTest, Placeholders) {
  auto tokens = Tokenize("WHERE a = ? AND b = @C_ID");
  ASSERT_TRUE(tokens.ok());
  int count = 0;
  for (const auto& t : *tokens) {
    if (t.type == TokenType::kPlaceholder) ++count;
  }
  EXPECT_EQ(count, 2);
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = Parse("SELECT C_ID FROM CUSTOMER WHERE C_UNAME = 'Bob'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->kind, StatementKind::kSelect);
  EXPECT_TRUE((*stmt)->IsReadOnly());
  auto tables = (*stmt)->TablesRead();
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0], "CUSTOMER");
}

TEST(ParserTest, SelectRoundTrips) {
  const char* queries[] = {
      "SELECT C_ID FROM CUSTOMER WHERE C_UNAME = 'Bob' AND C_PASSWD = 'x'",
      "SELECT MAX(O_ID) AS O_ID FROM ORDERS WHERE O_C_ID = 5",
      "SELECT * FROM ITEM WHERE I_ID IN (1, 2, 3)",
      "SELECT A, B FROM T WHERE X BETWEEN 1 AND 5 ORDER BY A DESC LIMIT 3",
      "SELECT COUNT(*) AS N FROM ITEM",
      "SELECT I_ID, SUM(OL_QTY) AS Q FROM ITEM, ORDER_LINE WHERE OL_I_ID = "
      "I_ID GROUP BY I_ID ORDER BY Q DESC LIMIT 50",
      "SELECT DISTINCT OL_W_ID, OL_I_ID FROM ORDER_LINE WHERE OL_O_ID >= 10 "
      "AND OL_O_ID < 30",
      "SELECT A FROM T WHERE S LIKE 'ab%'",
      "SELECT A FROM T WHERE B IS NOT NULL",
      "SELECT A FROM T JOIN U ON T.X = U.Y WHERE T.Z = 1",
  };
  for (const char* q : queries) {
    auto stmt = Parse(q);
    ASSERT_TRUE(stmt.ok()) << q << " -> " << stmt.status().ToString();
    std::string printed = PrintStatement(**stmt);
    auto reparsed = Parse(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_EQ(PrintStatement(**reparsed), printed) << q;
  }
}

TEST(ParserTest, WriteStatements) {
  auto ins = Parse("INSERT INTO T (A, B) VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ((*ins)->kind, StatementKind::kInsert);
  EXPECT_EQ((*ins)->insert->rows.size(), 2u);
  EXPECT_EQ((*ins)->TablesWritten()[0], "T");

  auto upd = Parse("UPDATE T SET A = A + 1, B = 'z' WHERE C = 3");
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ((*upd)->kind, StatementKind::kUpdate);
  EXPECT_EQ((*upd)->update->assignments.size(), 2u);

  auto del = Parse("DELETE FROM T WHERE A = 1");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ((*del)->kind, StatementKind::kDelete);
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(Parse("SELEC x FROM t").ok());
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(Parse("INSERT INTO t VALUES (1,)").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t LIMIT x").ok());
  EXPECT_FALSE(Parse("").ok());
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = Parse("SELECT A FROM T WHERE X = 1 OR Y = 2 AND Z = 3");
  ASSERT_TRUE(stmt.ok());
  // AND binds tighter than OR: top node is OR.
  const Expr& w = *(*stmt)->select->where;
  EXPECT_EQ(w.kind, ExprKind::kBinary);
  EXPECT_EQ(w.op, BinOp::kOr);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto stmt = Parse("SELECT 2 + 3 * 4 AS V FROM T");
  ASSERT_TRUE(stmt.ok());
  const Expr& e = *(*stmt)->select->items[0].expr;
  ASSERT_EQ(e.kind, ExprKind::kBinary);
  EXPECT_EQ(e.op, BinOp::kAdd);  // * grouped under +
}

TEST(ParserTest, NegativeNumbersFold) {
  auto stmt = Parse("SELECT A FROM T WHERE X = -5");
  ASSERT_TRUE(stmt.ok());
  const Expr& rhs = *(*stmt)->select->where->children[1];
  ASSERT_EQ(rhs.kind, ExprKind::kLiteral);
  EXPECT_EQ(rhs.literal.AsInt(), -5);
}

TEST(ParserTest, JoinTables) {
  auto stmt = Parse(
      "SELECT A FROM T1, T2 JOIN T3 ON T3.X = T1.Y WHERE T1.A = T2.B");
  ASSERT_TRUE(stmt.ok());
  auto tables = (*stmt)->TablesRead();
  EXPECT_EQ(tables.size(), 3u);
}

TEST(TemplateTest, ConstantsStripped) {
  auto t1 = Templatize(
      "SELECT C_ID FROM CUSTOMER WHERE C_UNAME = 'Bob' AND C_PASSWD = 'p'");
  auto t2 = Templatize(
      "SELECT C_ID FROM CUSTOMER WHERE C_UNAME = 'Alice' AND C_PASSWD = "
      "'q'");
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  // Same template (paper Section 2.1).
  EXPECT_EQ(t1->fingerprint, t2->fingerprint);
  EXPECT_EQ(t1->template_text, t2->template_text);
  EXPECT_NE(t1->canonical_text, t2->canonical_text);
  ASSERT_EQ(t1->params.size(), 2u);
  EXPECT_EQ(t1->params[0].AsString(), "Bob");
  EXPECT_EQ(t2->params[1].AsString(), "q");
}

TEST(TemplateTest, WhitespaceAndCaseInsensitive) {
  auto t1 = Templatize("select   a from T where x=3");
  auto t2 = Templatize("SELECT A FROM t WHERE X = 99");
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t1->fingerprint, t2->fingerprint);
}

TEST(TemplateTest, DifferentShapesDiffer) {
  auto t1 = Templatize("SELECT A FROM T WHERE X = 1");
  auto t2 = Templatize("SELECT A FROM T WHERE Y = 1");
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_NE(t1->fingerprint, t2->fingerprint);
}

TEST(TemplateTest, ReadWriteClassification) {
  auto r = Templatize("SELECT A FROM T");
  auto w = Templatize("UPDATE T SET A = 1 WHERE B = 2");
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(r->read_only);
  EXPECT_FALSE(w->read_only);
  EXPECT_EQ(w->tables_written[0], "T");
}

TEST(TemplateTest, InstantiateRoundTrip) {
  auto info = Templatize("SELECT A FROM T WHERE X = 42 AND S = 'hi'");
  ASSERT_TRUE(info.ok());
  auto sql = Instantiate(info->template_text, info->params);
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(*sql, info->canonical_text);
}

TEST(TemplateTest, InstantiateArityChecked) {
  auto info = Templatize("SELECT A FROM T WHERE X = 1 AND Y = 2");
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(
      Instantiate(info->template_text, {common::Value::Int(1)}).ok());
  EXPECT_FALSE(Instantiate(info->template_text,
                           {common::Value::Int(1), common::Value::Int(2),
                            common::Value::Int(3)})
                   .ok());
}

TEST(TemplateTest, StringParamsQuoted) {
  auto info = Templatize("SELECT A FROM T WHERE S = 'x'");
  ASSERT_TRUE(info.ok());
  auto sql = Instantiate(info->template_text,
                         {common::Value::Str("it's")});
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("'it''s'"), std::string::npos);
}

TEST(TemplateTest, ParamsInPrintOrder) {
  auto info = Templatize("SELECT A FROM T WHERE X = 7 AND Y = 'b' LIMIT 5");
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->params.size(), 2u);
  EXPECT_EQ(info->params[0].AsInt(), 7);
  EXPECT_EQ(info->params[1].AsString(), "b");
  // LIMIT count is structural, not a parameter.
  EXPECT_NE(info->template_text.find("LIMIT 5"), std::string::npos);
}

TEST(TemplateTest, StatementCloneIsDeep) {
  auto stmt = Parse(
      "SELECT I_ID, SUM(OL_QTY) AS Q FROM ITEM, ORDER_LINE WHERE OL_I_ID = "
      "I_ID AND OL_O_ID > 7 GROUP BY I_ID ORDER BY Q DESC LIMIT 50");
  ASSERT_TRUE(stmt.ok());
  auto clone = (*stmt)->Clone();
  EXPECT_EQ(PrintStatement(**stmt), PrintStatement(*clone));
}

}  // namespace
}  // namespace apollo::sql
