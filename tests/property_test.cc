// Property-based tests: randomized sweeps (parameterized by seed) checking
// invariants of the SQL layer, the executor, the cache, and the learning
// structures against reference models.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>

#include "cache/kv_cache.h"
#include "core/transition_graph.h"
#include "db/database.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "sql/template.h"
#include "util/rng.h"

namespace apollo {
namespace {

class SeededTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  util::Rng rng_{GetParam()};
};

// ---- SQL printer/parser fixpoint on randomized queries ----

class SqlRoundTripTest : public SeededTest {
 protected:
  common::Value RandomLiteral() {
    switch (rng_.UniformInt(0, 3)) {
      case 0:
        return common::Value::Int(rng_.UniformInt(-1000, 1000));
      case 1:
        return common::Value::Double(rng_.UniformInt(-500, 500) / 7.0);
      case 2: {
        std::string s = "s";
        int len = static_cast<int>(rng_.UniformInt(0, 6));
        for (int i = 0; i < len; ++i) {
          s += static_cast<char>('a' + rng_.UniformInt(0, 25));
        }
        if (rng_.Bernoulli(0.2)) s += "'";  // embedded quote
        return common::Value::Str(s);
      }
      default:
        return common::Value::Null();
    }
  }

  std::string RandomSelect() {
    std::string sql = "SELECT ";
    int items = static_cast<int>(rng_.UniformInt(1, 3));
    for (int i = 0; i < items; ++i) {
      if (i > 0) sql += ", ";
      sql += "C" + std::to_string(rng_.UniformInt(0, 5));
    }
    sql += " FROM T";
    if (rng_.Bernoulli(0.8)) {
      sql += " WHERE ";
      int conjs = static_cast<int>(rng_.UniformInt(1, 3));
      for (int i = 0; i < conjs; ++i) {
        if (i > 0) sql += " AND ";
        static const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
        sql += "C" + std::to_string(rng_.UniformInt(0, 5)) + " " +
               ops[rng_.UniformInt(0, 5)] + " " +
               RandomLiteral().ToSqlLiteral();
      }
    }
    if (rng_.Bernoulli(0.3)) {
      sql += " ORDER BY C" + std::to_string(rng_.UniformInt(0, 5));
      if (rng_.Bernoulli(0.5)) sql += " DESC";
    }
    if (rng_.Bernoulli(0.3)) {
      sql += " LIMIT " + std::to_string(rng_.UniformInt(0, 100));
    }
    return sql;
  }
};

TEST_P(SqlRoundTripTest, PrintParseFixpoint) {
  for (int i = 0; i < 200; ++i) {
    std::string sql = RandomSelect();
    auto stmt = sql::Parse(sql);
    ASSERT_TRUE(stmt.ok()) << sql;
    std::string printed = sql::PrintStatement(**stmt);
    auto reparsed = sql::Parse(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_EQ(sql::PrintStatement(**reparsed), printed) << sql;
  }
}

TEST_P(SqlRoundTripTest, TemplatizeInstantiateIdentity) {
  for (int i = 0; i < 200; ++i) {
    std::string sql = RandomSelect();
    auto info = sql::Templatize(sql);
    ASSERT_TRUE(info.ok()) << sql;
    auto rebuilt = sql::Instantiate(info->template_text, info->params);
    ASSERT_TRUE(rebuilt.ok()) << info->template_text;
    EXPECT_EQ(*rebuilt, info->canonical_text) << sql;
    // Same template regardless of the literal values used.
    auto info2 = sql::Templatize(*rebuilt);
    ASSERT_TRUE(info2.ok());
    EXPECT_EQ(info2->fingerprint, info->fingerprint);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---- Executor vs. brute-force reference on random data/filters ----

class ExecutorPropertyTest : public SeededTest {};

TEST_P(ExecutorPropertyTest, FilterMatchesBruteForce) {
  db::Database db;
  db::Schema s("T", {{"A", common::ValueType::kInt},
                     {"B", common::ValueType::kInt},
                     {"C", common::ValueType::kString}});
  s.AddIndex("PRIMARY", {"A"});
  s.AddIndex("B_IDX", {"B"});
  ASSERT_TRUE(db.CreateTable(std::move(s)).ok());
  db::Table* t = db.GetTable("T");

  struct RefRow {
    int64_t a;
    int64_t b;
    std::string c;
  };
  std::vector<RefRow> ref;
  for (int i = 0; i < 300; ++i) {
    RefRow r{i, rng_.UniformInt(0, 20),
             "g" + std::to_string(rng_.UniformInt(0, 5))};
    ref.push_back(r);
    ASSERT_TRUE(t->Insert({common::Value::Int(r.a), common::Value::Int(r.b),
                           common::Value::Str(r.c)})
                    .ok());
  }

  for (int trial = 0; trial < 100; ++trial) {
    int64_t b = rng_.UniformInt(0, 20);
    int64_t a_lo = rng_.UniformInt(0, 300);
    std::string g = "g" + std::to_string(rng_.UniformInt(0, 5));
    std::string sql = "SELECT A FROM T WHERE B = " + std::to_string(b) +
                      " AND A >= " + std::to_string(a_lo) + " AND C = '" +
                      g + "'";
    auto rs = db.Execute(sql);
    ASSERT_TRUE(rs.ok()) << sql;
    std::set<int64_t> got;
    for (const auto& row : (*rs)->rows()) got.insert(row[0].AsInt());
    std::set<int64_t> want;
    for (const auto& r : ref) {
      if (r.b == b && r.a >= a_lo && r.c == g) want.insert(r.a);
    }
    EXPECT_EQ(got, want) << sql;
  }
}

TEST_P(ExecutorPropertyTest, AggregatesMatchBruteForce) {
  db::Database db;
  db::Schema s("T", {{"G", common::ValueType::kInt},
                     {"V", common::ValueType::kInt}});
  ASSERT_TRUE(db.CreateTable(std::move(s)).ok());
  db::Table* t = db.GetTable("T");
  std::map<int64_t, std::vector<int64_t>> ref;
  for (int i = 0; i < 400; ++i) {
    int64_t g = rng_.UniformInt(0, 9);
    int64_t v = rng_.UniformInt(-50, 50);
    ref[g].push_back(v);
    ASSERT_TRUE(
        t->Insert({common::Value::Int(g), common::Value::Int(v)}).ok());
  }
  auto rs = db.Execute(
      "SELECT G, COUNT(*) AS N, SUM(V) AS S, MIN(V) AS MN, MAX(V) AS MX "
      "FROM T GROUP BY G ORDER BY G");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ((*rs)->num_rows(), ref.size());
  size_t i = 0;
  for (const auto& [g, vals] : ref) {
    EXPECT_EQ((*rs)->At(i, 0).AsInt(), g);
    EXPECT_EQ((*rs)->At(i, 1).AsInt(),
              static_cast<int64_t>(vals.size()));
    int64_t sum = 0;
    int64_t mn = vals[0];
    int64_t mx = vals[0];
    for (int64_t v : vals) {
      sum += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    EXPECT_EQ((*rs)->At(i, 2).AsInt(), sum);
    EXPECT_EQ((*rs)->At(i, 3).AsInt(), mn);
    EXPECT_EQ((*rs)->At(i, 4).AsInt(), mx);
    ++i;
  }
}

TEST_P(ExecutorPropertyTest, UpdatesAndDeletesKeepIndexesConsistent) {
  db::Database db;
  db::Schema s("T", {{"ID", common::ValueType::kInt},
                     {"K", common::ValueType::kInt}});
  s.AddIndex("PRIMARY", {"ID"});
  s.AddIndex("K_IDX", {"K"});
  ASSERT_TRUE(db.CreateTable(std::move(s)).ok());
  std::map<int64_t, int64_t> ref;  // id -> k
  for (int i = 0; i < 200; ++i) {
    ref[i] = rng_.UniformInt(0, 10);
    ASSERT_TRUE(db.GetTable("T")
                    ->Insert({common::Value::Int(i),
                              common::Value::Int(ref[i])})
                    .ok());
  }
  for (int op = 0; op < 300; ++op) {
    int64_t id = rng_.UniformInt(0, 199);
    if (rng_.Bernoulli(0.3) && ref.count(id)) {
      ASSERT_TRUE(
          db.Execute("DELETE FROM T WHERE ID = " + std::to_string(id)).ok());
      ref.erase(id);
    } else if (ref.count(id)) {
      int64_t nk = rng_.UniformInt(0, 10);
      ASSERT_TRUE(db.Execute("UPDATE T SET K = " + std::to_string(nk) +
                             " WHERE ID = " + std::to_string(id))
                      .ok());
      ref[id] = nk;
    }
    if (op % 50 == 0) {
      // Full consistency check via the K index.
      for (int64_t k = 0; k <= 10; ++k) {
        auto rs = db.Execute("SELECT ID FROM T WHERE K = " +
                             std::to_string(k));
        ASSERT_TRUE(rs.ok());
        std::set<int64_t> got;
        for (const auto& row : (*rs)->rows()) got.insert(row[0].AsInt());
        std::set<int64_t> want;
        for (const auto& [id2, k2] : ref) {
          if (k2 == k) want.insert(id2);
        }
        EXPECT_EQ(got, want) << "k=" << k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorPropertyTest,
                         ::testing::Values(11, 22, 33));

// ---- Cache vs. reference LRU model ----

class CachePropertyTest : public SeededTest {};

TEST_P(CachePropertyTest, LruModelEquivalence) {
  // Single shard so the model's global LRU order applies exactly.
  cache::KvCache cache(8192, /*num_shards=*/1);

  struct ModelEntry {
    std::string key;
    size_t bytes;
  };
  std::list<ModelEntry> model;  // front = most recent
  auto model_bytes = [&]() {
    size_t total = 0;
    for (const auto& e : model) total += e.bytes;
    return total;
  };

  auto rs = std::make_shared<common::ResultSet>(
      std::vector<std::string>{"V"});
  rs->AddRow({common::Value::Int(7)});
  cache::VersionVector stamp;
  stamp.Set("T", 1);
  const size_t entry_bytes = [&] {
    // Mirror KvCache's accounting: key + payload + 64.
    return std::string("k00").size() + rs->ByteSize() + 64;
  }();

  cache::VersionVector client;
  std::vector<std::string> tables = {"T"};
  for (int op = 0; op < 2000; ++op) {
    std::string key =
        "k" + std::to_string(rng_.UniformInt(0, 30));
    key.resize(3, '0');
    if (rng_.Bernoulli(0.5)) {
      cache.Put(key, rs, stamp);
      model.remove_if(
          [&](const ModelEntry& e) { return e.key == key; });
      model.push_front({key, entry_bytes});
      while (model_bytes() > 8192) model.pop_back();
    } else {
      bool hit = cache.GetCompatible(key, client, tables).has_value();
      auto it = std::find_if(model.begin(), model.end(),
                             [&](const ModelEntry& e) {
                               return e.key == key;
                             });
      bool model_hit = it != model.end();
      ASSERT_EQ(hit, model_hit) << "op " << op << " key " << key;
      if (model_hit) model.splice(model.begin(), model, it);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CachePropertyTest,
                         ::testing::Values(7, 8, 9));

// ---- Transition graph invariants under random streams ----

class GraphPropertyTest : public SeededTest {};

TEST_P(GraphPropertyTest, ProbabilitiesFormSubstochasticRows) {
  core::TransitionGraph g(util::Seconds(10));
  // Random vertex/edge observations with the invariant that each vertex
  // observation admits at most 3 edge observations (as Algorithm 1 would
  // produce for windows holding <= 3 successors).
  for (int i = 0; i < 500; ++i) {
    uint64_t from = rng_.UniformInt(0, 9);
    g.AddVertexObservation(from);
    int succ = static_cast<int>(rng_.UniformInt(0, 3));
    for (int j = 0; j < succ; ++j) {
      g.AddEdgeObservation(from,
                           static_cast<uint64_t>(rng_.UniformInt(0, 9)));
    }
  }
  for (uint64_t v = 0; v < 10; ++v) {
    double mass = g.SuccessorProbabilityMass(v, [](uint64_t) {
      return true;
    });
    EXPECT_GE(mass, 0.0);
    EXPECT_LE(mass, 3.0 + 1e-9);
    // Successors at threshold 0 carry exactly the positive-probability
    // edges, each <= mass.
    for (const auto& [to, p] : g.Successors(v, 0.0)) {
      EXPECT_GT(p, 0.0);
      EXPECT_LE(p, mass + 1e-9);
      EXPECT_DOUBLE_EQ(p, g.TransitionProbability(v, to));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphPropertyTest,
                         ::testing::Values(41, 42));

}  // namespace
}  // namespace apollo
