// Tests for the observability layer (DESIGN.md Section 8): the metrics
// registry (counter aggregation, export filters), the prediction-lifecycle
// trace ring (ordering, skip-reason attribution, JSONL round-trip), and
// their integration with the full middleware/cache stack.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>

#include "core/apollo_middleware.h"
#include "obs/observability.h"

namespace apollo {
namespace {

using obs::SkipReason;
using obs::TraceEvent;
using obs::TraceEventType;

// ---- MetricsRegistry ----

TEST(MetricsRegistryTest, CounterAggregatesAcrossShards) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.RegisterCounter("x.counter", /*num_shards=*/4);
  EXPECT_EQ(c->num_shards(), 4u);
  for (size_t shard = 0; shard < 4; ++shard) {
    c->Inc(10 + shard, shard);
  }
  c->Inc();  // default shard 0, delta 1
  EXPECT_EQ(c->Value(), 10u + 11u + 12u + 13u + 1u);
}

TEST(MetricsRegistryTest, CounterAggregatesUnderConcurrency) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.RegisterCounter("x.counter", /*num_shards=*/8);
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c, t]() {
      for (int i = 0; i < kIncrements; ++i) {
        c->Inc(1, static_cast<size_t>(t));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotent) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.RegisterCounter("same.name");
  obs::Counter* b = registry.RegisterCounter("same.name");
  EXPECT_EQ(a, b);
  a->Inc(5);
  EXPECT_EQ(b->Value(), 5u);
  EXPECT_EQ(registry.FindCounter("same.name"), a);
  EXPECT_EQ(registry.FindCounter("never.registered"), nullptr);
}

TEST(MetricsRegistryTest, DeterministicExportExcludesWallInstruments) {
  obs::MetricsRegistry registry;
  registry.RegisterCounter("sim.queries")->Inc(3);
  registry.RegisterGauge("learn.wall_us")->Add(123.456);
  registry.RegisterHistogram("latency.cache_us")->Record(1000);
  registry.RegisterHistogram("latency.learn_wall_us")->Record(77);

  auto det = registry.Snapshot(obs::ExportFilter::kDeterministic);
  for (const auto& s : det) {
    EXPECT_EQ(s.name.find("wall"), std::string::npos) << s.name;
  }
  auto wall = registry.Snapshot(obs::ExportFilter::kWallOnly);
  ASSERT_FALSE(wall.empty());
  for (const auto& s : wall) {
    EXPECT_NE(s.name.find("wall"), std::string::npos) << s.name;
  }

  std::string json = registry.ToJson(obs::ExportFilter::kDeterministic);
  EXPECT_NE(json.find("\"sim.queries\":3"), std::string::npos) << json;
  EXPECT_EQ(json.find("wall"), std::string::npos) << json;
  // Histograms expand into count/mean/percentile samples.
  EXPECT_NE(json.find("\"latency.cache_us.count\":1"), std::string::npos)
      << json;
}

TEST(MetricsRegistryTest, HistogramSumIsExact) {
  obs::MetricsRegistry registry;
  obs::HistogramMetric* h = registry.RegisterHistogram("h");
  h->Record(1);
  h->Record(2);
  h->Record(4);
  EXPECT_DOUBLE_EQ(h->Sum(), 7.0);
  EXPECT_EQ(h->Count(), 3u);
  EXPECT_DOUBLE_EQ(h->Mean(), 7.0 / 3.0);
}

// ---- TraceLog ----

TEST(TraceLogTest, DisabledRecordIsNoop) {
  obs::TraceLog trace(16);
  trace.Record(TraceEventType::kPredictionIssued, 1, 42);
  EXPECT_EQ(trace.total_recorded(), 0u);
  EXPECT_TRUE(trace.Events().empty());
}

TEST(TraceLogTest, RingWrapsDroppingOldest) {
  obs::TraceLog trace(4);
  trace.set_enabled(true);
  for (uint64_t i = 0; i < 10; ++i) {
    trace.Record(TraceEventType::kPredictionIssued, 0, /*template_id=*/i);
  }
  EXPECT_EQ(trace.total_recorded(), 10u);
  EXPECT_EQ(trace.dropped(), 6u);
  auto events = trace.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first, and only the newest four survive.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 6u + i);
    EXPECT_EQ(events[i].template_id, 6u + i);
  }
}

TEST(TraceLogTest, JsonlRoundTripPreservesAllFields) {
  obs::TraceLog trace(16);
  trace.set_enabled(true);
  util::SimTime now = 0;
  trace.set_clock([&now]() { return now; });
  now = 1500;
  trace.Record(TraceEventType::kTemplateDiscovered, 3, 0xdeadbeefULL);
  now = 2500;
  trace.Record(TraceEventType::kPredictionSkipped, -1, 7,
               SkipReason::kFreshness, /*aux=*/99);
  now = 3500;
  trace.Record(TraceEventType::kPredictionHit, 2, 7, SkipReason::kNone, 4);

  auto parsed = obs::TraceLog::ParseJsonl(trace.ToJsonl());
  auto original = trace.Events();
  ASSERT_EQ(parsed.size(), original.size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].seq, original[i].seq);
    EXPECT_EQ(parsed[i].time, original[i].time);
    EXPECT_EQ(parsed[i].type, original[i].type);
    EXPECT_EQ(parsed[i].client, original[i].client);
    EXPECT_EQ(parsed[i].template_id, original[i].template_id);
    EXPECT_EQ(parsed[i].reason, original[i].reason);
    EXPECT_EQ(parsed[i].aux, original[i].aux);
  }
}

TEST(TraceLogTest, ParseSkipsMalformedLines) {
  std::string text =
      "{\"seq\":0,\"t_us\":10,\"type\":\"prediction_issued\",\"client\":1,"
      "\"template\":5,\"reason\":\"none\",\"aux\":0}\n"
      "this is not json\n"
      "{\"seq\":1,\"t_us\":20,\"type\":\"no_such_type\",\"client\":1,"
      "\"template\":5,\"reason\":\"none\",\"aux\":0}\n";
  auto parsed = obs::TraceLog::ParseJsonl(text);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].type, TraceEventType::kPredictionIssued);
}

// ---- Integration with the middleware stack ----

class ObsIntegrationTest : public ::testing::Test {
 protected:
  ObsIntegrationTest() : obs_(1 << 15) {
    obs_.trace.set_clock([this]() { return loop_.now(); });
    obs_.trace.set_enabled(true);
  }

  void SetUp() override {
    using common::ValueType;
    {
      db::Schema s("A", {{"A_ID", ValueType::kInt},
                         {"A_B_ID", ValueType::kInt}});
      s.AddIndex("PRIMARY", {"A_ID"});
      ASSERT_TRUE(db_.CreateTable(std::move(s)).ok());
    }
    {
      db::Schema s("B", {{"B_ID", ValueType::kInt},
                         {"B_C_ID", ValueType::kInt}});
      s.AddIndex("PRIMARY", {"B_ID"});
      ASSERT_TRUE(db_.CreateTable(std::move(s)).ok());
    }
    for (int i = 1; i <= 40; ++i) {
      ASSERT_TRUE(db_.GetTable("A")
                      ->Insert({common::Value::Int(i),
                                common::Value::Int(100 + i)})
                      .ok());
      ASSERT_TRUE(db_.GetTable("B")
                      ->Insert({common::Value::Int(100 + i),
                                common::Value::Int(200 + i)})
                      .ok());
    }
  }

  std::unique_ptr<net::RemoteDatabase> MakeRemote() {
    net::RemoteDbConfig cfg;
    cfg.rtt = sim::LatencyModel::Constant(util::Millis(50));
    return std::make_unique<net::RemoteDatabase>(&loop_, &db_, cfg, &obs_);
  }

  core::ApolloConfig FastConfig() {
    core::ApolloConfig cfg;
    cfg.verification_period = 2;
    return cfg;
  }

  void RunQuery(core::Middleware& mw, const std::string& sql) {
    bool done = false;
    mw.SubmitQuery(0, sql, [&](auto) { done = true; });
    loop_.Run();
    EXPECT_TRUE(done);
  }

  void Settle() { loop_.RunUntil(loop_.now() + util::Seconds(2)); }

  /// First seq of `type` for `template_id`, or -1 if absent.
  static int64_t FirstSeq(const std::vector<TraceEvent>& events,
                          TraceEventType type, uint64_t template_id) {
    for (const auto& e : events) {
      if (e.type == type && e.template_id == template_id) {
        return static_cast<int64_t>(e.seq);
      }
    }
    return -1;
  }

  db::Database db_;
  sim::EventLoop loop_;
  obs::Observability obs_;
};

// The full lifecycle of a successful prediction appears in the trace in
// causal order: template discovered -> FDQ tagged -> prediction issued ->
// result cached -> client read served by the predicted entry.
TEST_F(ObsIntegrationTest, LifecycleChainIsOrdered) {
  auto remote = MakeRemote();
  cache::KvCache cache(1 << 22, 8, &obs_);
  core::ApolloMiddleware mw(&loop_, remote.get(), &cache, FastConfig(),
                            &obs_);
  auto round = [&](int i) {
    RunQuery(mw, "SELECT A_ID, A_B_ID FROM A WHERE A_ID = " +
                     std::to_string(i));
    RunQuery(mw, "SELECT B_ID, B_C_ID FROM B WHERE B_ID = " +
                     std::to_string(100 + i));
    Settle();
  };
  for (int i = 1; i <= 4; ++i) round(i);
  // Fresh round: the A query alone triggers the B prediction; the client's
  // B query is then served by the predicted entry.
  RunQuery(mw, "SELECT A_ID, A_B_ID FROM A WHERE A_ID = 10");
  Settle();
  RunQuery(mw, "SELECT B_ID, B_C_ID FROM B WHERE B_ID = 110");

  auto events = obs_.trace.Events();
  EXPECT_EQ(obs_.trace.dropped(), 0u);
  ASSERT_FALSE(events.empty());

  // Find the predicted template (the one that served a hit) and verify the
  // whole chain exists in order.
  std::set<uint64_t> hit_templates;
  for (const auto& e : events) {
    if (e.type == TraceEventType::kPredictionHit && e.template_id != 0) {
      hit_templates.insert(e.template_id);
    }
  }
  ASSERT_FALSE(hit_templates.empty());
  bool found_chain = false;
  for (uint64_t t : hit_templates) {
    int64_t discovered =
        FirstSeq(events, TraceEventType::kTemplateDiscovered, t);
    int64_t tagged = FirstSeq(events, TraceEventType::kFdqTagged, t);
    int64_t issued = FirstSeq(events, TraceEventType::kPredictionIssued, t);
    int64_t cached = FirstSeq(events, TraceEventType::kPredictionCached, t);
    int64_t hit = FirstSeq(events, TraceEventType::kPredictionHit, t);
    if (discovered < 0 || tagged < 0 || issued < 0 || cached < 0 || hit < 0) {
      continue;
    }
    EXPECT_LT(discovered, tagged);
    EXPECT_LT(tagged, issued);
    EXPECT_LT(issued, cached);
    EXPECT_LT(cached, hit);
    found_chain = true;
  }
  EXPECT_TRUE(found_chain);

  // Timestamps are simulated and nondecreasing with seq.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
    EXPECT_GE(events[i].time, events[i - 1].time);
  }
}

// Freshness vetoes are attributed to SkipReason::kFreshness, one event per
// skipped prediction (matching the legacy counter).
TEST_F(ObsIntegrationTest, SkipReasonsAttributed) {
  auto remote = MakeRemote();
  cache::KvCache cache(1 << 22, 8, &obs_);
  core::ApolloConfig cfg = FastConfig();
  cfg.delta_ts = {util::Seconds(5), util::Seconds(15)};
  core::ApolloMiddleware mw(&loop_, remote.get(), &cache, cfg, &obs_);
  // read A -> read B -> write B quickly: the transition graph learns that
  // a B-write follows the trigger, so predicting the B-read is vetoed.
  for (int i = 1; i <= 10; ++i) {
    std::string s = std::to_string(i);
    RunQuery(mw, "SELECT A_ID, A_B_ID FROM A WHERE A_ID = " + s);
    RunQuery(mw, "SELECT B_ID, B_C_ID FROM B WHERE B_ID = " +
                     std::to_string(100 + i));
    RunQuery(mw, "UPDATE B SET B_C_ID = B_C_ID + 1 WHERE B_ID = " +
                     std::to_string(100 + i));
    Settle();
  }
  ASSERT_GT(mw.stats().predictions_skipped_fresh, 0u);

  uint64_t fresh_events = 0;
  for (const auto& e : obs_.trace.Events()) {
    if (e.type == TraceEventType::kPredictionSkipped) {
      EXPECT_NE(e.reason, SkipReason::kNone);
      if (e.reason == SkipReason::kFreshness) ++fresh_events;
    }
  }
  EXPECT_EQ(fresh_events, mw.stats().predictions_skipped_fresh);
}

// The legacy stats structs are views over the registry: both report the
// same numbers, and the registry instruments are discoverable by name.
TEST_F(ObsIntegrationTest, StatsViewsMatchRegistry) {
  auto remote = MakeRemote();
  cache::KvCache cache(1 << 22, 8, &obs_);
  core::ApolloMiddleware mw(&loop_, remote.get(), &cache, FastConfig(),
                            &obs_);
  for (int i = 1; i <= 5; ++i) {
    RunQuery(mw, "SELECT A_ID, A_B_ID FROM A WHERE A_ID = " +
                     std::to_string(i));
    RunQuery(mw, "SELECT A_ID, A_B_ID FROM A WHERE A_ID = " +
                     std::to_string(i));  // same query again: a cache hit
    Settle();
  }
  const auto& ms = mw.stats();
  EXPECT_GT(ms.queries, 0u);
  EXPECT_EQ(ms.queries, obs_.metrics.FindCounter("mw.queries")->Value());
  EXPECT_EQ(ms.cache_hits,
            obs_.metrics.FindCounter("mw.cache_hits")->Value());
  const auto cs = cache.stats();
  EXPECT_GT(cs.hits, 0u);
  EXPECT_EQ(cs.hits, obs_.metrics.FindCounter("cache.hits")->Value());
  EXPECT_EQ(cs.puts, obs_.metrics.FindCounter("cache.puts")->Value());
  const auto& rs = remote->stats();
  EXPECT_EQ(rs.queries,
            obs_.metrics.FindCounter("remote.queries")->Value());
  // Latency breakdown histograms recorded per client read.
  EXPECT_GT(obs_.metrics.FindHistogram("mw.latency.cache_us")->Count(), 0u);
  EXPECT_GT(obs_.metrics.FindHistogram("mw.latency.wan_us")->Count(), 0u);
}

// A live run's trace survives the JSONL round trip intact.
TEST_F(ObsIntegrationTest, LiveTraceJsonlRoundTrip) {
  auto remote = MakeRemote();
  cache::KvCache cache(1 << 22, 8, &obs_);
  core::ApolloMiddleware mw(&loop_, remote.get(), &cache, FastConfig(),
                            &obs_);
  for (int i = 1; i <= 3; ++i) {
    RunQuery(mw, "SELECT A_ID, A_B_ID FROM A WHERE A_ID = " +
                     std::to_string(i));
    RunQuery(mw, "SELECT B_ID, B_C_ID FROM B WHERE B_ID = " +
                     std::to_string(100 + i));
    Settle();
  }
  auto original = obs_.trace.Events();
  ASSERT_FALSE(original.empty());
  auto parsed = obs::TraceLog::ParseJsonl(obs_.trace.ToJsonl());
  ASSERT_EQ(parsed.size(), original.size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].seq, original[i].seq);
    EXPECT_EQ(parsed[i].time, original[i].time);
    EXPECT_EQ(parsed[i].type, original[i].type);
    EXPECT_EQ(parsed[i].client, original[i].client);
    EXPECT_EQ(parsed[i].template_id, original[i].template_id);
    EXPECT_EQ(parsed[i].reason, original[i].reason);
    EXPECT_EQ(parsed[i].aux, original[i].aux);
  }
}

// Components without an injected bundle create a private one: stats flow
// through counters regardless, and tracing stays off.
TEST_F(ObsIntegrationTest, PrivateBundleFallback) {
  auto remote = MakeRemote();
  cache::KvCache cache(1 << 22);  // no obs given
  core::ApolloMiddleware mw(&loop_, remote.get(), &cache, FastConfig());
  RunQuery(mw, "SELECT A_ID, A_B_ID FROM A WHERE A_ID = 1");
  EXPECT_EQ(mw.stats().queries, 1u);
  EXPECT_FALSE(mw.observability().trace.enabled());
  EXPECT_EQ(mw.observability().metrics.FindCounter("mw.queries")->Value(),
            1u);
}

}  // namespace
}  // namespace apollo
