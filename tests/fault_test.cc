// Tests of the chaos-hardened remote path: FaultInjector determinism,
// backoff bounds, circuit-breaker transitions, retry/timeout behavior of
// RemoteDatabase, error propagation through the InflightRegistry, and the
// end-to-end shed-predictions-first degradation policy.
#include <gtest/gtest.h>

#include <vector>

#include "cache/kv_cache.h"
#include "core/caching_middleware.h"
#include "core/inflight_registry.h"
#include "db/database.h"
#include "net/circuit_breaker.h"
#include "net/remote_database.h"
#include "sim/event_loop.h"
#include "sim/fault_injector.h"
#include "util/backoff.h"
#include "workload/driver.h"
#include "workload/tpcw.h"

namespace apollo {
namespace {

// ---------------------------------------------------------------- injector

TEST(FaultInjectorTest, SeededDeterminism) {
  sim::FaultSchedule s;
  s.transient_error_rate = 0.3;
  s.latency_spike_rate = 0.2;
  s.latency_spike_multiplier = 5.0;
  s.latency_jitter = 0.1;
  sim::FaultInjector a(s, 99);
  sim::FaultInjector b(s, 99);
  bool any_transient = false;
  bool any_spike = false;
  for (int i = 0; i < 500; ++i) {
    auto da = a.OnAttempt(i);
    auto db = b.OnAttempt(i);
    EXPECT_EQ(da.transient_error, db.transient_error);
    EXPECT_DOUBLE_EQ(da.latency_multiplier, db.latency_multiplier);
    any_transient |= da.transient_error;
    any_spike |= da.latency_multiplier > 2.0;
  }
  EXPECT_TRUE(any_transient);
  EXPECT_TRUE(any_spike);
  EXPECT_EQ(a.stats().attempts_evaluated, 500u);
  EXPECT_GT(a.stats().transient_errors, 0u);
  EXPECT_GT(a.stats().latency_spikes, 0u);
}

TEST(FaultInjectorTest, EmptyScheduleInjectsNothing) {
  sim::FaultInjector inj({}, 7);
  EXPECT_FALSE(inj.enabled());
  for (int i = 0; i < 100; ++i) {
    auto d = inj.OnAttempt(i);
    EXPECT_FALSE(d.transient_error);
    EXPECT_DOUBLE_EQ(d.latency_multiplier, 1.0);
  }
  EXPECT_EQ(inj.stats().attempts_evaluated, 0u);
  EXPECT_FALSE(inj.InOutage(0));
}

TEST(FaultInjectorTest, OutageWindowBoundaries) {
  sim::FaultSchedule s;
  s.outages = {{util::Seconds(10), util::Seconds(20)},
               {util::Seconds(40), util::Seconds(41)}};
  sim::FaultInjector inj(s, 1);
  EXPECT_FALSE(inj.InOutage(util::Seconds(10) - 1));
  EXPECT_TRUE(inj.InOutage(util::Seconds(10)));
  EXPECT_TRUE(inj.InOutage(util::Seconds(15)));
  EXPECT_FALSE(inj.InOutage(util::Seconds(20)));  // [start, end)
  EXPECT_TRUE(inj.InOutage(util::Seconds(40)));
  EXPECT_FALSE(inj.InOutage(util::Seconds(50)));
}

// ----------------------------------------------------------------- backoff

TEST(BackoffTest, BaseSequenceGrowsGeometricallyAndCaps) {
  util::BackoffPolicy p;
  p.initial = util::Millis(10);
  p.multiplier = 2.0;
  p.cap = util::Millis(100);
  EXPECT_EQ(p.BaseDelay(0), util::Millis(10));
  EXPECT_EQ(p.BaseDelay(1), util::Millis(20));
  EXPECT_EQ(p.BaseDelay(2), util::Millis(40));
  EXPECT_EQ(p.BaseDelay(3), util::Millis(80));
  EXPECT_EQ(p.BaseDelay(4), util::Millis(100));  // capped
  EXPECT_EQ(p.BaseDelay(20), util::Millis(100));
}

TEST(BackoffTest, JitteredDelayStaysWithinBounds) {
  util::BackoffPolicy p;
  p.initial = util::Millis(10);
  p.multiplier = 2.0;
  p.cap = util::Seconds(1);
  p.jitter = 0.25;
  util::Rng rng(123);
  for (int attempt = 0; attempt < 8; ++attempt) {
    util::SimDuration base = p.BaseDelay(attempt);
    auto lo = static_cast<util::SimDuration>(0.75 * base);
    auto hi = static_cast<util::SimDuration>(1.25 * base);
    bool varied = false;
    util::SimDuration first = -1;
    for (int i = 0; i < 200; ++i) {
      util::SimDuration d = p.Delay(attempt, rng);
      EXPECT_GE(d, lo);
      EXPECT_LE(d, hi);
      if (first < 0) first = d;
      varied |= d != first;
    }
    EXPECT_TRUE(varied) << "jitter should vary the delay";
  }
}

TEST(BackoffTest, ZeroJitterIsDeterministic) {
  util::BackoffPolicy p;
  p.jitter = 0.0;
  util::Rng rng(5);
  EXPECT_EQ(p.Delay(0, rng), p.BaseDelay(0));
  EXPECT_EQ(p.Delay(3, rng), p.BaseDelay(3));
}

// ----------------------------------------------------------------- breaker

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures) {
  net::CircuitBreaker br({/*failure_threshold=*/3, util::Seconds(1)});
  EXPECT_TRUE(br.AllowOptional(0));
  EXPECT_FALSE(br.OnFailure(10));
  EXPECT_FALSE(br.OnFailure(20));
  EXPECT_TRUE(br.AllowOptional(25));  // still closed below threshold
  EXPECT_TRUE(br.OnFailure(30));      // third: opens
  EXPECT_EQ(br.state(), net::CircuitBreaker::State::kOpen);
  EXPECT_EQ(br.opens(), 1u);
  EXPECT_FALSE(br.AllowOptional(40));  // open, cooldown running
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveCount) {
  net::CircuitBreaker br({3, util::Seconds(1)});
  br.OnFailure(0);
  br.OnFailure(1);
  br.OnSuccess();
  EXPECT_FALSE(br.OnFailure(2));
  EXPECT_FALSE(br.OnFailure(3));
  EXPECT_EQ(br.state(), net::CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenProbeLifecycle) {
  net::CircuitBreaker br({2, /*cooldown=*/util::Millis(100)});
  br.OnFailure(0);
  br.OnFailure(1);  // opens at t=1, cooldown until t=100'001
  EXPECT_FALSE(br.AllowOptional(util::Millis(50)));
  // Cooldown elapsed: half-open, exactly one probe admitted.
  EXPECT_TRUE(br.AllowOptional(util::Millis(200)));
  EXPECT_EQ(br.state(), net::CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(br.AllowOptional(util::Millis(200)));  // probe outstanding

  // Probe fails: re-open for another cooldown.
  EXPECT_TRUE(br.OnFailure(util::Millis(250)));
  EXPECT_EQ(br.state(), net::CircuitBreaker::State::kOpen);
  EXPECT_EQ(br.opens(), 2u);
  EXPECT_FALSE(br.AllowOptional(util::Millis(300)));

  // Next probe succeeds: closed.
  EXPECT_TRUE(br.AllowOptional(util::Millis(400)));
  br.OnSuccess();
  EXPECT_EQ(br.state(), net::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(br.AllowOptional(util::Millis(401)));
}

TEST(CircuitBreakerTest, FailuresWhileOpenExtendCooldown) {
  net::CircuitBreaker br({2, util::Millis(100)});
  br.OnFailure(0);
  br.OnFailure(1);  // open until ~101ms
  // A client failure at 90ms pushes the half-open point to 190ms.
  EXPECT_FALSE(br.OnFailure(util::Millis(90)));
  EXPECT_FALSE(br.AllowOptional(util::Millis(150)));
  EXPECT_TRUE(br.AllowOptional(util::Millis(200)));
}

// First simulated time at which the breaker admits a half-open probe
// after opening at t=0 (probed at 1ms granularity).
util::SimTime FirstProbeTime(net::CircuitBreakerConfig cfg) {
  net::CircuitBreaker br(cfg);
  for (int i = 0; i < cfg.failure_threshold; ++i) br.OnFailure(0);
  util::SimTime t = 0;
  while (!br.AllowOptional(t)) t += util::Millis(1);
  return t;
}

TEST(CircuitBreakerTest, ZeroJitterKeepsExactLegacyCooldown) {
  net::CircuitBreaker br({2, util::Millis(100)});
  br.OnFailure(0);
  br.OnFailure(0);  // opens at t=0, cooldown until exactly 100ms
  EXPECT_FALSE(br.AllowOptional(util::Millis(100) - 1));
  EXPECT_TRUE(br.AllowOptional(util::Millis(100)));
}

TEST(CircuitBreakerTest, JitteredProbeStaysWithinConfiguredBound) {
  net::CircuitBreakerConfig cfg;
  cfg.failure_threshold = 2;
  cfg.cooldown = util::Millis(100);
  cfg.probe_jitter = 0.5;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    cfg.jitter_seed = seed;
    const util::SimTime probe = FirstProbeTime(cfg);
    EXPECT_GE(probe, util::Millis(100)) << "seed " << seed;
    EXPECT_LE(probe, util::Millis(150) + util::Millis(1)) << "seed " << seed;
  }
}

TEST(CircuitBreakerTest, JitterDesynchronizesProbesAcrossSeeds) {
  net::CircuitBreakerConfig cfg;
  cfg.failure_threshold = 2;
  cfg.cooldown = util::Seconds(10);  // wide range: collisions unlikely
  cfg.probe_jitter = 1.0;

  bool any_differ = false;
  cfg.jitter_seed = 1;
  const util::SimTime first = FirstProbeTime(cfg);
  for (uint64_t seed = 2; seed <= 6 && !any_differ; ++seed) {
    cfg.jitter_seed = seed;
    any_differ = FirstProbeTime(cfg) != first;
  }
  EXPECT_TRUE(any_differ) << "all seeds produced identical probe times";

  // Same seed: deterministic.
  cfg.jitter_seed = 3;
  EXPECT_EQ(FirstProbeTime(cfg), FirstProbeTime(cfg));
}

// ------------------------------------------------------ inflight registry

TEST(InflightRegistryTest, FailedLeaderDeliversErrorToAllSubscribers) {
  core::InflightRegistry reg;
  ASSERT_TRUE(reg.BeginOrSubscribe("k", nullptr));  // leader
  std::vector<util::Status> seen;
  for (int i = 0; i < 2; ++i) {
    ASSERT_FALSE(reg.BeginOrSubscribe(
        "k", [&seen](const util::Result<common::ResultSetPtr>& r,
                     const cache::VersionVector&) {
          ASSERT_FALSE(r.ok());
          seen.push_back(r.status());
        }));
  }
  EXPECT_TRUE(reg.InFlight("k"));
  util::Result<common::ResultSetPtr> failure(
      util::Status::Unavailable("link down"));
  reg.Complete("k", failure, {});
  ASSERT_EQ(seen.size(), 2u);
  for (const auto& st : seen) {
    EXPECT_EQ(st.code(), util::StatusCode::kUnavailable);
  }
  // The key is cleared: a new leader can begin immediately.
  EXPECT_FALSE(reg.InFlight("k"));
  EXPECT_TRUE(reg.BeginOrSubscribe("k", nullptr));
}

// ------------------------------------------------- remote database retries

class FaultyRemoteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::Schema s("T", {{"ID", common::ValueType::kInt},
                       {"V", common::ValueType::kString}});
    s.AddIndex("PRIMARY", {"ID"});
    ASSERT_TRUE(db_.CreateTable(std::move(s)).ok());
    ASSERT_TRUE(db_.Execute("INSERT INTO T (ID, V) VALUES (1, 'a')").ok());
  }
  net::RemoteDbConfig BaseCfg() {
    net::RemoteDbConfig cfg;
    cfg.rtt = sim::LatencyModel::Constant(util::Millis(10));
    cfg.backoff.jitter = 0.0;
    cfg.backoff.initial = util::Millis(100);
    return cfg;
  }
  db::Database db_;
  sim::EventLoop loop_;
};

TEST_F(FaultyRemoteTest, RetryBudgetExhaustionYieldsClientError) {
  auto cfg = BaseCfg();
  cfg.faults.transient_error_rate = 1.0;  // every attempt fails
  cfg.max_retries = 2;
  net::RemoteDatabase remote(&loop_, &db_, cfg);
  util::Status final_status;
  remote.Execute("SELECT V FROM T WHERE ID = 1",
                 [&](util::Result<common::ResultSetPtr> rs, auto) {
                   ASSERT_FALSE(rs.ok());
                   final_status = rs.status();
                 });
  loop_.Run();
  EXPECT_EQ(final_status.code(), util::StatusCode::kUnavailable);
  EXPECT_EQ(remote.stats().queries, 1u);
  EXPECT_EQ(remote.stats().attempts, 3u);  // 1 try + 2 retries
  EXPECT_EQ(remote.stats().retries, 2u);
  EXPECT_EQ(remote.stats().errors, 1u);
  EXPECT_EQ(remote.stats().client_errors, 1u);
  EXPECT_EQ(remote.stats().predictive_errors, 0u);
}

TEST_F(FaultyRemoteTest, RetriesAbsorbOutageOnceWindowCloses) {
  auto cfg = BaseCfg();
  cfg.faults.outages = {{0, util::Millis(200)}};
  cfg.max_retries = 3;
  net::RemoteDatabase remote(&loop_, &db_, cfg);
  bool ok = false;
  util::SimTime completed = -1;
  remote.Execute("SELECT V FROM T WHERE ID = 1",
                 [&](util::Result<common::ResultSetPtr> rs, auto) {
                   ok = rs.ok();
                   completed = loop_.now();
                 });
  loop_.Run();
  // Attempt 1 fails at 10 ms, retry at 110 ms fails at 120 ms, retry at
  // 320 ms arrives after the window and succeeds.
  EXPECT_TRUE(ok);
  EXPECT_GT(completed, util::Millis(200));
  EXPECT_EQ(remote.stats().retries, 2u);
  EXPECT_EQ(remote.stats().errors, 0u);
  EXPECT_EQ(remote.stats().client_errors, 0u);
  EXPECT_EQ(remote.fault_injector().stats().outage_rejections, 2u);
}

TEST_F(FaultyRemoteTest, PredictiveFailuresAccountedSeparately) {
  auto cfg = BaseCfg();
  cfg.faults.transient_error_rate = 1.0;
  cfg.max_retries = 2;
  cfg.predictive_max_retries = 0;  // predictions are not retried
  net::RemoteDatabase remote(&loop_, &db_, cfg);
  int failures = 0;
  remote.Execute("SELECT V FROM T WHERE ID = 1",
                 [&](util::Result<common::ResultSetPtr> rs, auto) {
                   if (!rs.ok()) ++failures;
                 },
                 /*predictive=*/true);
  loop_.Run();
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(remote.stats().attempts, 1u);  // no retry budget
  EXPECT_EQ(remote.stats().predictive_errors, 1u);
  EXPECT_EQ(remote.stats().client_errors, 0u);
}

TEST_F(FaultyRemoteTest, TimeoutAbandonsSlowAttempt) {
  auto cfg = BaseCfg();
  cfg.rtt = sim::LatencyModel::Constant(util::Millis(100));
  cfg.query_timeout = util::Millis(50);
  cfg.max_retries = 0;
  net::RemoteDatabase remote(&loop_, &db_, cfg);
  util::Status final_status;
  util::SimTime completed = -1;
  remote.Execute("SELECT V FROM T WHERE ID = 1",
                 [&](util::Result<common::ResultSetPtr> rs, auto) {
                   ASSERT_FALSE(rs.ok());
                   final_status = rs.status();
                   completed = loop_.now();
                 });
  loop_.Run();
  EXPECT_EQ(final_status.code(), util::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(completed, util::Millis(50));  // fails at the timeout, not rtt
  EXPECT_EQ(remote.stats().timeouts, 1u);
  // The abandoned attempt's real response still lands and is discarded.
  EXPECT_EQ(remote.stats().late_responses, 1u);
  EXPECT_EQ(remote.stats().client_errors, 1u);
}

TEST_F(FaultyRemoteTest, BreakerOpensUnderOutageAndRecloses) {
  auto cfg = BaseCfg();
  cfg.faults.outages = {{0, util::Seconds(1)}};
  cfg.max_retries = 0;
  cfg.breaker_failure_threshold = 3;
  cfg.breaker_cooldown = util::Millis(100);
  net::RemoteDatabase remote(&loop_, &db_, cfg);
  for (int i = 0; i < 3; ++i) {
    remote.Execute("SELECT V FROM T WHERE ID = 1", [](auto, auto) {});
  }
  loop_.RunUntil(util::Millis(50));
  EXPECT_EQ(remote.breaker().state(), net::CircuitBreaker::State::kOpen);
  EXPECT_EQ(remote.stats().breaker_opens, 1u);
  EXPECT_TRUE(remote.Degraded());
  EXPECT_FALSE(remote.AllowPredictive());

  // After the outage a client query succeeds and recloses the breaker.
  bool ok = false;
  loop_.At(util::Seconds(2), [&]() {
    remote.Execute("SELECT V FROM T WHERE ID = 1",
                   [&](util::Result<common::ResultSetPtr> rs, auto) {
                     ok = rs.ok();
                   });
  });
  loop_.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(remote.breaker().state(), net::CircuitBreaker::State::kClosed);
  EXPECT_FALSE(remote.Degraded());
  EXPECT_TRUE(remote.AllowPredictive());
}

TEST_F(FaultyRemoteTest, TimeoutSpikeDegradesWithoutBreaker) {
  auto cfg = BaseCfg();
  cfg.rtt = sim::LatencyModel::Constant(util::Millis(200));
  cfg.query_timeout = util::Millis(50);
  cfg.max_retries = 0;
  cfg.timeout_spike_threshold = 2;
  cfg.timeout_spike_window = util::Seconds(10);
  cfg.breaker_failure_threshold = 100;  // breaker stays out of the way
  net::RemoteDatabase remote(&loop_, &db_, cfg);
  remote.Execute("SELECT V FROM T WHERE ID = 1", [](auto, auto) {});
  remote.Execute("SELECT V FROM T WHERE ID = 1", [](auto, auto) {});
  loop_.RunUntil(util::Millis(60));
  EXPECT_EQ(remote.stats().timeouts, 2u);
  EXPECT_EQ(remote.breaker().state(), net::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(remote.Degraded());
  EXPECT_FALSE(remote.AllowPredictive());
  // Outside the spike window the path is healthy again.
  loop_.At(util::Seconds(30), [&]() {
    EXPECT_FALSE(remote.Degraded());
    EXPECT_TRUE(remote.AllowPredictive());
  });
  loop_.Run();
}

// ------------------------------------------------ subscriber fallback

// A client read that subscribed to an in-flight leader must not inherit the
// leader's transport failure: it falls back to its own remote attempt with
// the full client retry budget ("client queries keep retry budget").
TEST(SubscriberFallbackTest, SubscriberRetriesAfterLeaderTransportFailure) {
  db::Database db;
  db::Schema s("T", {{"ID", common::ValueType::kInt},
                     {"V", common::ValueType::kString}});
  s.AddIndex("PRIMARY", {"ID"});
  ASSERT_TRUE(db.CreateTable(std::move(s)).ok());
  ASSERT_TRUE(db.Execute("INSERT INTO T (ID, V) VALUES (1, 'a')").ok());

  sim::EventLoop loop;
  net::RemoteDbConfig rcfg;
  rcfg.rtt = sim::LatencyModel::Constant(util::Millis(10));
  rcfg.max_retries = 0;  // the leader's one attempt dies in the outage
  // Covers the leader's attempt (arrives ~5.5 ms in) but not the
  // subscriber's fallback attempt (~15.5 ms in).
  rcfg.faults.outages = {{0, util::Millis(8)}};
  net::RemoteDatabase remote(&loop, &db, rcfg);
  cache::KvCache cache(1 << 20);
  core::CachingMiddleware mw(&loop, &remote, &cache, core::ApolloConfig());

  const std::string q = "SELECT V FROM T WHERE ID = 1";
  util::Status leader_status;
  bool subscriber_ok = false;
  mw.SubmitQuery(0, q, [&](util::Result<common::ResultSetPtr> rs) {
    leader_status = rs.ok() ? util::Status::OK() : rs.status();
  });
  loop.After(util::Millis(1), [&]() {
    mw.SubmitQuery(1, q, [&](util::Result<common::ResultSetPtr> rs) {
      subscriber_ok = rs.ok();
    });
  });
  loop.Run();

  EXPECT_EQ(leader_status.code(), util::StatusCode::kUnavailable);
  EXPECT_TRUE(subscriber_ok) << "subscriber must recover via fallback";
  EXPECT_EQ(mw.stats().coalesced_waits, 1u);
  EXPECT_EQ(mw.stats().subscriber_fallbacks, 1u);
  EXPECT_EQ(remote.stats().queries, 2u);  // leader + private fallback
  EXPECT_EQ(remote.stats().client_errors, 1u);
}

// ------------------------------------------------------------- end to end

workload::TpcwConfig SmallTpcw() {
  workload::TpcwConfig cfg;
  cfg.num_items = 500;
  cfg.num_customers = 400;
  cfg.num_authors = 100;
  cfg.num_orders = 360;
  return cfg;
}

TEST(FaultEndToEndTest, TransientErrorsFullyAbsorbedByRetries) {
  workload::TpcwWorkload tpcw(SmallTpcw());
  workload::RunConfig cfg;
  cfg.system = workload::SystemType::kApollo;
  cfg.num_clients = 5;
  cfg.duration = util::Minutes(2);
  cfg.seed = 11;
  cfg.remote.faults.transient_error_rate = 0.10;
  cfg.remote.query_timeout = util::Seconds(1);
  cfg.remote.max_retries = 4;
  auto result = workload::RunExperiment(tpcw, cfg);
  EXPECT_GT(result.mw.queries, 100u);
  EXPECT_GT(result.remote.retries, 0u) << "faults should force retries";
  EXPECT_EQ(result.client_visible_errors, 0u)
      << "a 10% transient-error rate must be absorbed by the retry budget";
}

TEST(FaultEndToEndTest, OutageShedsPredictiveLoadAndRecovers) {
  workload::TpcwWorkload tpcw(SmallTpcw());
  workload::RunConfig cfg;
  cfg.system = workload::SystemType::kApollo;
  cfg.num_clients = 20;
  cfg.duration = util::Minutes(4);
  cfg.seed = 11;
  cfg.sample_interval = util::Seconds(30);
  // Give Apollo 2.5 minutes to learn FDQs (so predictions are actually being
  // issued) before a 60 s outage.  The long cooldown keeps the breaker open
  // for the whole outage instead of converting predictive calls into
  // half-open probes every couple of seconds.
  cfg.remote.faults.outages = {{util::Seconds(150), util::Seconds(210)}};
  cfg.remote.query_timeout = util::Seconds(1);
  cfg.remote.breaker_failure_threshold = 4;
  cfg.remote.breaker_cooldown = util::Seconds(10);
  auto result = workload::RunExperiment(tpcw, cfg);
  EXPECT_GE(result.remote.breaker_opens, 1u);
  EXPECT_GT(result.mw.shed_predictions + result.mw.shed_adq_reloads, 0u)
      << "predictive load must be shed while the breaker is open";
  ASSERT_EQ(result.samples.size(), 8u);
  // The final interval (well after recovery) serves clients again with a
  // healthy hit rate and no client-visible errors.
  const auto& last = result.samples.back();
  EXPECT_GT(last.queries, 0u);
  EXPECT_EQ(last.client_errors, 0u);
  EXPECT_GT(last.hit_rate, 0.0);
}

TEST(FaultEndToEndTest, FaultFreeRunsMatchWithAndWithoutHardening) {
  // The retry/breaker machinery must be invisible when no faults are
  // injected: identical seeds give identical response-time histograms.
  workload::TpcwWorkload tpcw(SmallTpcw());
  workload::RunConfig cfg;
  cfg.system = workload::SystemType::kApollo;
  cfg.num_clients = 5;
  cfg.duration = util::Minutes(1);
  cfg.seed = 3;
  auto a = workload::RunExperiment(tpcw, cfg);
  workload::TpcwWorkload tpcw2(SmallTpcw());
  cfg.remote.max_retries = 9;  // different budget, but never exercised
  cfg.remote.breaker_failure_threshold = 2;
  auto b = workload::RunExperiment(tpcw2, cfg);
  EXPECT_EQ(a.metrics->count(), b.metrics->count());
  EXPECT_DOUBLE_EQ(a.MeanMs(), b.MeanMs());
  EXPECT_EQ(a.remote.retries, 0u);
  EXPECT_EQ(b.remote.retries, 0u);
  EXPECT_EQ(a.client_visible_errors, 0u);
}

}  // namespace
}  // namespace apollo
