// Multi-threaded stress tests. The benchmark driver runs single-threaded
// on the deterministic event loop, but the core data structures are
// mutex-protected because the real system is concurrent middleware; these
// tests exercise them under contention (run under TSan to verify).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/kv_cache.h"
#include "cache/version_vector.h"
#include "core/dependency_graph.h"
#include "core/inflight_registry.h"
#include "core/param_mapper.h"
#include "core/template_registry.h"
#include "core/transition_graph.h"
#include "db/database.h"
#include "sql/template.h"

namespace apollo {
namespace {

class ConcurrentDatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::Schema s("T", {{"ID", common::ValueType::kInt},
                       {"K", common::ValueType::kInt},
                       {"V", common::ValueType::kInt}});
    s.AddIndex("PRIMARY", {"ID"});
    s.AddIndex("K_IDX", {"K"});
    ASSERT_TRUE(db_.CreateTable(std::move(s)).ok());
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(db_.GetTable("T")
                      ->Insert({common::Value::Int(i),
                                common::Value::Int(i % 10),
                                common::Value::Int(0)})
                      .ok());
    }
  }
  db::Database db_;
};

TEST_F(ConcurrentDatabaseTest, ParallelReadsAreConsistent) {
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < 300; ++i) {
        auto rs = db_.Execute("SELECT COUNT(*) AS N FROM T WHERE K = " +
                              std::to_string((t + i) % 10));
        if (!rs.ok() || (*rs)->At(0, 0).AsInt() != 100) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ConcurrentDatabaseTest, MixedReadWriteNoTornState) {
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  // Writers increment V for their own disjoint row ranges; readers verify
  // aggregate invariants never go backwards.
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w]() {
      for (int i = 0; i < 200; ++i) {
        int id = w * 500 + (i % 500);
        auto rs = db_.Execute("UPDATE T SET V = V + 1 WHERE ID = " +
                              std::to_string(id));
        if (!rs.ok()) ++failures;
      }
    });
  }
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&]() {
      int64_t last_sum = 0;
      for (int i = 0; i < 200; ++i) {
        auto rs = db_.Execute("SELECT SUM(V) AS S FROM T");
        if (!rs.ok()) {
          ++failures;
          continue;
        }
        int64_t sum = (*rs)->At(0, 0).is_null()
                          ? 0
                          : (*rs)->At(0, 0).AsInt();
        // Writers only increment: the sum must be monotone per reader.
        if (sum < last_sum) ++failures;
        last_sum = sum;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  auto total = db_.Execute("SELECT SUM(V) AS S FROM T");
  ASSERT_TRUE(total.ok());
  EXPECT_EQ((*total)->At(0, 0).AsInt(), 400);
}

TEST_F(ConcurrentDatabaseTest, VersionsMonotoneUnderConcurrentWrites) {
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  threads.emplace_back([&]() {
    uint64_t last = 0;
    while (!stop.load()) {
      uint64_t v = db_.TableVersion("T");
      if (v < last) ++failures;
      last = v;
    }
  });
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&, w]() {
      for (int i = 0; i < 100; ++i) {
        (void)db_.Execute("UPDATE T SET V = V + 1 WHERE ID = " +
                          std::to_string(w * 10 + i % 10));
      }
    });
  }
  for (size_t i = 1; i < threads.size(); ++i) threads[i].join();
  stop.store(true);
  threads[0].join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(db_.TableVersion("T"), 400u);
}

// ---------------------------------------------------------------------------
// Core-structure contention tests: the mutexes / stripes added for the
// concurrent runtime (src/rt/) must keep every invariant under 8-thread
// load. Run under TSan (tools/check.sh thread) to verify the locking.
// ---------------------------------------------------------------------------

common::ResultSetPtr OneCellResult(int64_t v) {
  auto rs = std::make_shared<common::ResultSet>(
      std::vector<std::string>{"C0"});
  rs->AddRow({common::Value::Int(v)});
  return rs;
}

sql::TemplateInfo ReadTemplate(uint64_t fingerprint) {
  sql::TemplateInfo info;
  info.fingerprint = fingerprint;
  info.template_text = "SELECT C0 FROM T WHERE ID = ?";
  info.num_placeholders = 1;
  info.read_only = true;
  info.tables_read = {"T"};
  return info;
}

TEST(KvCacheContentionTest, PutGetEvictUnderSmallBudget) {
  // A budget far below the working set forces constant eviction while 8
  // threads mix puts and gets; every returned entry must carry the value
  // its key was stored with.
  cache::KvCache cache(/*capacity_bytes=*/16 << 10, /*num_shards=*/8);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      cache::VersionVector vv;
      for (int i = 0; i < 400; ++i) {
        int id = (t * 13 + i) % 64;
        std::string key = "k" + std::to_string(id);
        cache.Put(key, OneCellResult(id), vv);
        auto hit = cache.GetCompatible(key, vv, {"T"});
        if (hit && hit->result->At(0, 0).AsInt() != id) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes_used, cache.capacity_bytes());
}

// Same shape as PutGetEvictUnderSmallBudget but through the W-TinyLFU
// path: 8 threads hammer the window/main lists, the per-shard sketch,
// and the admission comparisons. TSan covers the locking; the value
// check covers map/list integrity across segment splices.
TEST(TinyLfuContentionTest, EightThreadsAdmissionAndEviction) {
  cache::KvCacheOptions opt;
  opt.policy = cache::CachePolicy::kTinyLfu;
  opt.sketch_reset_adds = 256;  // force frequent halvings under load
  cache::KvCache cache(/*capacity_bytes=*/16 << 10, /*num_shards=*/8,
                       nullptr, "cache.", opt);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      cache::VersionVector vv;
      for (int i = 0; i < 400; ++i) {
        int id = (t * 13 + i) % 64;
        std::string key = "k" + std::to_string(id);
        cache.Put(key, OneCellResult(id), vv);
        auto hit = cache.GetCompatible(key, vv, {"T"});
        if (hit && hit->result->At(0, 0).AsInt() != id) ++failures;
        // Re-read a fixed hot key so admission sees a stable incumbent.
        cache.GetCompatible("k1", vv, {"T"});
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.sketch_resets, 0u);
  EXPECT_LE(stats.bytes_used, cache.capacity_bytes());
}

// Cost-aware variant under contention: mixed predicted/demand puts with
// divergent costs and confidences race against reads and Clear().
TEST(TinyLfuContentionTest, CostScoringWithConcurrentClear) {
  cache::KvCacheOptions opt;
  opt.policy = cache::CachePolicy::kTinyLfuCost;
  cache::KvCache cache(/*capacity_bytes=*/16 << 10, /*num_shards=*/4,
                       nullptr, "cache.", opt);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      cache::VersionVector vv;
      for (int i = 0; i < 300; ++i) {
        int id = (t * 7 + i) % 48;
        std::string key = "q" + std::to_string(id);
        cache::KvCache::PutAttrs attrs;
        attrs.predicted = (i % 2) == 0;
        attrs.template_id = static_cast<uint64_t>(id);
        attrs.miss_cost_us = (i % 3) == 0 ? 70000.0 : 500.0;
        attrs.probability = (i % 2) == 0 ? 0.9 : 0.1;
        cache.Put(key, OneCellResult(id), vv, attrs);
        auto hit = cache.GetCompatible(key, vv, {"T"});
        if (hit && hit->result->At(0, 0).AsInt() != id) ++failures;
        if (t == 0 && i % 128 == 0) cache.Clear();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(cache.stats().bytes_used, cache.capacity_bytes());
}

TEST(TemplateRegistryContentionTest, InternRecordBumpAcrossThreads) {
  core::TemplateRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        // Half the interns collide on one shared template, half spread
        // over per-thread ids — both must return stable meta pointers.
        uint64_t fp = (i % 2 == 0) ? 1u : 100u + static_cast<uint64_t>(t);
        core::TemplateMeta* m = reg.Intern(ReadTemplate(fp));
        if (m == nullptr || m->id != fp) {
          ++failures;
          continue;
        }
        reg.BumpObservations(m);
        m->RecordExecution(1000 + i % 7);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(reg.size(), 1u + kThreads);
  EXPECT_EQ(reg.total_observations(), uint64_t{kThreads} * kIters);
  uint64_t executions = 0;
  core::TemplateMeta* shared = reg.Get(1u);
  ASSERT_NE(shared, nullptr);
  executions += shared->executions.load();
  for (int t = 0; t < kThreads; ++t) {
    core::TemplateMeta* m = reg.Get(100u + static_cast<uint64_t>(t));
    ASSERT_NE(m, nullptr);
    executions += m->executions.load();
  }
  EXPECT_EQ(executions, uint64_t{kThreads} * kIters);
  ASSERT_GT(shared->mean_exec_us.load(), 999.0);
  EXPECT_LT(shared->mean_exec_us.load(), 1007.0);
}

TEST(TransitionGraphContentionTest, EightWritersCountsExact) {
  core::TransitionGraph graph(/*delta_t=*/1000);
  constexpr int kThreads = 8;
  constexpr int kIters = 1000;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  // Concurrent readers: probabilities must stay within [0, 1] while the
  // writers fold observations in.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        double p = graph.TransitionProbability(1, 2);
        if (p < 0.0 || p > 1.0) ++failures;
        (void)graph.Successors(1, 0.0);
      }
    });
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        // Shared vertex 1 plus a per-thread vertex: contended and
        // uncontended stripes in the same run.
        graph.AddVertexObservation(1);
        graph.AddEdgeObservation(1, 2);
        graph.AddVertexObservation(10 + static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(graph.VertexCount(1), uint64_t{kThreads} * kIters);
  EXPECT_EQ(graph.EdgeCount(1, 2), uint64_t{kThreads} * kIters);
  EXPECT_DOUBLE_EQ(graph.TransitionProbability(1, 2), 1.0);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(graph.VertexCount(10 + static_cast<uint64_t>(t)),
              static_cast<uint64_t>(kIters));
  }
}

TEST(ParamMapperContentionTest, DistinctPairsConfirmIndependently) {
  core::ParamMapper mapper(/*verification_period=*/4);
  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t src = 1000 + static_cast<uint64_t>(t);
      uint64_t dst = 2000 + static_cast<uint64_t>(t);
      for (int i = 0; i < 50; ++i) {
        // dst's parameter always equals src's column 0: the mapping must
        // confirm and never disprove.
        auto rs = OneCellResult(t * 100 + i);
        if (mapper.ObservePair(src, *rs, dst,
                               {common::Value::Int(t * 100 + i)})) {
          ++failures;  // disproof of a consistent mapping
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    uint64_t src = 1000 + static_cast<uint64_t>(t);
    uint64_t dst = 2000 + static_cast<uint64_t>(t);
    EXPECT_TRUE(mapper.PairConfirmed(src, dst));
    auto sources = mapper.GetSources(dst, 1);
    ASSERT_TRUE(sources.complete);
    ASSERT_EQ(sources.per_param.size(), 1u);
    EXPECT_EQ(sources.per_param[0][0].src, src);
    EXPECT_EQ(sources.per_param[0][0].col, 0);
  }
}

TEST(DependencyGraphContentionTest, AddRemoveKeepsPointersValid) {
  core::DependencyGraph deps;
  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t id = 100 + static_cast<uint64_t>(t);
      for (int i = 0; i < 200; ++i) {
        // All FDQs depend on template 1; re-adding after Remove exercises
        // the retire-don't-free path while other threads walk the index.
        core::Fdq* f = deps.Add(id, {{/*src=*/1, /*col=*/0}});
        if (f == nullptr || f->id != id) {
          ++failures;
          continue;
        }
        for (core::Fdq* d : deps.DependentsOf(1)) {
          // Retired pointers must stay readable (never dangle).
          if (d->id < 100 || d->id >= 100 + kThreads) ++failures;
        }
        if (i % 3 == 0) deps.Remove(id);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // Each id was re-added after its last Remove (i=198 is not divisible by
  // 3 ... final state depends on order), so just check structural sanity:
  // every surviving node is valid and queryable.
  for (int t = 0; t < kThreads; ++t) {
    uint64_t id = 100 + static_cast<uint64_t>(t);
    const core::Fdq* f = deps.Get(id);
    if (f != nullptr) {
      EXPECT_EQ(f->id, id);
      ASSERT_EQ(f->deps.size(), 1u);
      EXPECT_EQ(f->deps[0], 1u);
    }
  }
}

TEST(InflightContentionTest, ExactlyOneLeaderPerRound) {
  // Satellite regression: of 8 threads racing BeginOrSubscribe on one key,
  // exactly one becomes leader and executes; when it completes, every
  // subscriber's waiter runs exactly once with the leader's result.
  core::InflightRegistry inflight;
  constexpr int kThreads = 8;
  constexpr int kRounds = 100;
  for (int round = 0; round < kRounds; ++round) {
    const std::string key = "q" + std::to_string(round);
    std::atomic<int> entered{0};
    std::atomic<int> leaders{0};
    std::atomic<int> delivered{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        bool leader = inflight.BeginOrSubscribe(
            key, [&](const util::Result<common::ResultSetPtr>& r,
                     const cache::VersionVector&) {
              if (!r.ok() || r.value()->At(0, 0).AsInt() != 7) ++failures;
              delivered.fetch_add(1);
            });
        entered.fetch_add(1);
        if (leader) {
          leaders.fetch_add(1);
          // Simulate the remote round trip outlasting all arrivals: every
          // other thread must end up subscribed, never a second leader.
          while (entered.load() < kThreads) std::this_thread::yield();
          inflight.Complete(key, OneCellResult(7), cache::VersionVector());
        }
      });
    }
    for (auto& th : threads) th.join();
    ASSERT_EQ(leaders.load(), 1) << "round " << round;
    EXPECT_EQ(delivered.load(), kThreads - 1) << "round " << round;
    EXPECT_EQ(failures.load(), 0) << "round " << round;
    EXPECT_FALSE(inflight.InFlight(key));
  }
  EXPECT_EQ(inflight.coalesced(), uint64_t{kThreads - 1} * kRounds);
}

// ---------------------------------------------------------------------------
// Bounded-learning-memory contention (DESIGN.md §11): pruning runs inside
// the stripe locks while 8 writers and concurrent readers hammer the same
// structures. TSan (tools/check.sh thread) verifies race-freedom; the
// assertions verify the cap and that high-evidence state survives.
// ---------------------------------------------------------------------------

TEST(TransitionGraphPruneContentionTest, EightWritersStayUnderCap) {
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  constexpr size_t kCap = 256;
  core::TransitionGraph graph(/*delta_t=*/1000, /*num_stripes=*/4, kCap);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        double p = graph.TransitionProbability(1, 2);
        if (p < 0.0 || p > 1.0) ++failures;
        (void)graph.Successors(1, 0.0);
        (void)graph.num_edges();
        (void)graph.pruned_edges();
      }
    });
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        // A hot edge every thread reinforces, plus a per-thread stream of
        // one-shot edges that constantly overflows the cap.
        graph.AddEdgeObservation(1, 2);
        uint64_t u = 100 + static_cast<uint64_t>(t) * kIters +
                     static_cast<uint64_t>(i);
        graph.AddEdgeObservation(u, u + 1);
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(graph.num_edges(), kCap);
  EXPECT_GT(graph.pruned_edges(), 0u);
  // The hot edge has kThreads * kIters observations: never a victim.
  EXPECT_EQ(graph.EdgeCount(1, 2), uint64_t{kThreads} * kIters);
}

TEST(ParamMapperPruneContentionTest, EightWritersStayNearCap) {
  constexpr int kThreads = 8;
  constexpr int kIters = 1500;
  constexpr size_t kCap = 256;
  core::ParamMapper mapper(/*verification_period=*/2, /*num_stripes=*/4,
                           kCap);
  // Confirm one mapping per thread before the flood so pruning has
  // confirmed pairs to protect.
  for (int t = 0; t < kThreads; ++t) {
    uint64_t src = 10 + static_cast<uint64_t>(t);
    for (int i = 0; i < 8; ++i) {
      auto rs = OneCellResult(t);
      mapper.ObservePair(src, *rs, src + 1000, {common::Value::Int(t)});
    }
    ASSERT_TRUE(mapper.PairConfirmed(src, src + 1000));
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        (void)mapper.GetSources(1010, 1);
        (void)mapper.num_pairs();
        (void)mapper.pruned_pairs();
      }
    });
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      // Keep the confirmed pair warm while flooding one-shot pairs
      // through the same stripes.
      uint64_t src = 10 + static_cast<uint64_t>(t);
      for (int i = 0; i < kIters; ++i) {
        auto rs = OneCellResult(t);
        mapper.ObservePair(src, *rs, src + 1000, {common::Value::Int(t)});
        uint64_t noise = 100000 + static_cast<uint64_t>(t) * kIters +
                         static_cast<uint64_t>(i);
        mapper.ObservePair(noise, *rs, noise + 1, {common::Value::Int(t)});
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true);
  for (auto& th : readers) th.join();
  // Pruning is per-stripe with a batch hysteresis, so allow one batch of
  // slack above the configured cap.
  EXPECT_LE(mapper.num_pairs(), kCap + kCap / 4);
  EXPECT_GT(mapper.pruned_pairs(), 0u);
  // Confirmed, continually-reinforced mappings must survive the flood.
  for (int t = 0; t < kThreads; ++t) {
    uint64_t src = 10 + static_cast<uint64_t>(t);
    EXPECT_TRUE(mapper.PairConfirmed(src, src + 1000)) << "thread " << t;
  }
}

}  // namespace
}  // namespace apollo
