// Multi-threaded stress tests. The benchmark driver runs single-threaded
// on the deterministic event loop, but the core data structures are
// mutex-protected because the real system is concurrent middleware; these
// tests exercise them under contention (run under TSan to verify).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "db/database.h"

namespace apollo {
namespace {

class ConcurrentDatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::Schema s("T", {{"ID", common::ValueType::kInt},
                       {"K", common::ValueType::kInt},
                       {"V", common::ValueType::kInt}});
    s.AddIndex("PRIMARY", {"ID"});
    s.AddIndex("K_IDX", {"K"});
    ASSERT_TRUE(db_.CreateTable(std::move(s)).ok());
    for (int i = 0; i < 1000; ++i) {
      ASSERT_TRUE(db_.GetTable("T")
                      ->Insert({common::Value::Int(i),
                                common::Value::Int(i % 10),
                                common::Value::Int(0)})
                      .ok());
    }
  }
  db::Database db_;
};

TEST_F(ConcurrentDatabaseTest, ParallelReadsAreConsistent) {
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < 300; ++i) {
        auto rs = db_.Execute("SELECT COUNT(*) AS N FROM T WHERE K = " +
                              std::to_string((t + i) % 10));
        if (!rs.ok() || (*rs)->At(0, 0).AsInt() != 100) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ConcurrentDatabaseTest, MixedReadWriteNoTornState) {
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  // Writers increment V for their own disjoint row ranges; readers verify
  // aggregate invariants never go backwards.
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w]() {
      for (int i = 0; i < 200; ++i) {
        int id = w * 500 + (i % 500);
        auto rs = db_.Execute("UPDATE T SET V = V + 1 WHERE ID = " +
                              std::to_string(id));
        if (!rs.ok()) ++failures;
      }
    });
  }
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&]() {
      int64_t last_sum = 0;
      for (int i = 0; i < 200; ++i) {
        auto rs = db_.Execute("SELECT SUM(V) AS S FROM T");
        if (!rs.ok()) {
          ++failures;
          continue;
        }
        int64_t sum = (*rs)->At(0, 0).is_null()
                          ? 0
                          : (*rs)->At(0, 0).AsInt();
        // Writers only increment: the sum must be monotone per reader.
        if (sum < last_sum) ++failures;
        last_sum = sum;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  auto total = db_.Execute("SELECT SUM(V) AS S FROM T");
  ASSERT_TRUE(total.ok());
  EXPECT_EQ((*total)->At(0, 0).AsInt(), 400);
}

TEST_F(ConcurrentDatabaseTest, VersionsMonotoneUnderConcurrentWrites) {
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  threads.emplace_back([&]() {
    uint64_t last = 0;
    while (!stop.load()) {
      uint64_t v = db_.TableVersion("T");
      if (v < last) ++failures;
      last = v;
    }
  });
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&, w]() {
      for (int i = 0; i < 100; ++i) {
        (void)db_.Execute("UPDATE T SET V = V + 1 WHERE ID = " +
                          std::to_string(w * 10 + i % 10));
      }
    });
  }
  for (size_t i = 1; i < threads.size(); ++i) threads[i].join();
  stop.store(true);
  threads[0].join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(db_.TableVersion("T"), 400u);
}

}  // namespace
}  // namespace apollo
