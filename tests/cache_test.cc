#include <gtest/gtest.h>

#include <thread>

#include "cache/kv_cache.h"
#include "cache/version_vector.h"

namespace apollo::cache {
namespace {

common::ResultSetPtr MakeResult(int64_t v) {
  auto rs = std::make_shared<common::ResultSet>(
      std::vector<std::string>{"V"});
  rs->AddRow({common::Value::Int(v)});
  return rs;
}

VersionVector VV(std::initializer_list<std::pair<std::string, uint64_t>> xs) {
  VersionVector vv;
  for (const auto& [t, v] : xs) vv.Set(t, v);
  return vv;
}

TEST(VersionVectorTest, DefaultsToZero) {
  VersionVector vv;
  EXPECT_EQ(vv.Get("T"), 0u);
}

TEST(VersionVectorTest, DominatesFor) {
  auto entry = VV({{"A", 3}, {"B", 2}});
  auto client = VV({{"A", 2}, {"B", 2}});
  EXPECT_TRUE(entry.DominatesFor(client, {"A", "B"}));
  EXPECT_FALSE(client.DominatesFor(entry, {"A", "B"}));
  // Only the queried tables matter.
  auto stale_b = VV({{"A", 5}, {"B", 0}});
  EXPECT_TRUE(stale_b.DominatesFor(client, {"A"}));
  EXPECT_FALSE(stale_b.DominatesFor(client, {"A", "B"}));
}

TEST(VersionVectorTest, Distance) {
  auto entry = VV({{"A", 5}, {"B", 2}});
  auto client = VV({{"A", 2}});
  EXPECT_EQ(entry.DistanceFrom(client, {"A", "B"}), 5u);  // 3 + 2
  EXPECT_EQ(client.DistanceFrom(entry, {"A", "B"}), 0u);
}

TEST(VersionVectorTest, MergeMaxOnlyRaises) {
  auto a = VV({{"A", 3}, {"B", 7}});
  auto b = VV({{"A", 5}, {"B", 1}});
  a.MergeMax(b, {"A", "B"});
  EXPECT_EQ(a.Get("A"), 5u);
  EXPECT_EQ(a.Get("B"), 7u);
}

TEST(KvCacheTest, PutGetRoundTrip) {
  KvCache cache(1 << 20);
  cache.Put("k1", MakeResult(42), VV({{"T", 1}}));
  auto hit = cache.GetCompatible("k1", VersionVector(), {"T"});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->result->At(0, 0).AsInt(), 42);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(KvCacheTest, MissOnUnknownKey) {
  KvCache cache(1 << 20);
  EXPECT_FALSE(cache.GetCompatible("nope", VersionVector(), {"T"}).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(KvCacheTest, SessionConsistencyRejectsStaleEntries) {
  KvCache cache(1 << 20);
  cache.Put("k", MakeResult(1), VV({{"T", 1}}));
  // Client has observed version 2 of T: the version-1 entry is unusable.
  auto client = VV({{"T", 2}});
  EXPECT_FALSE(cache.GetCompatible("k", client, {"T"}).has_value());
  // A fresher entry becomes usable.
  cache.Put("k", MakeResult(2), VV({{"T", 3}}));
  auto hit = cache.GetCompatible("k", client, {"T"});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->result->At(0, 0).AsInt(), 2);
}

TEST(KvCacheTest, PicksMinimalDistanceVersion) {
  // Paper Section 3.3: prefer the earliest usable version to minimize the
  // client's version-vector advance.
  KvCache cache(1 << 20);
  cache.Put("k", MakeResult(10), VV({{"T", 5}}));
  cache.Put("k", MakeResult(20), VV({{"T", 9}}));
  auto client = VV({{"T", 4}});
  auto hit = cache.GetCompatible("k", client, {"T"});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->result->At(0, 0).AsInt(), 10);
  EXPECT_EQ(hit->stamp.Get("T"), 5u);
}

TEST(KvCacheTest, MultipleVersionsCoexist) {
  KvCache cache(1 << 20);
  cache.Put("k", MakeResult(1), VV({{"T", 1}}));
  cache.Put("k", MakeResult(2), VV({{"T", 2}}));
  EXPECT_EQ(cache.stats().entries, 2u);
  // Identical stamp replaces instead of duplicating.
  cache.Put("k", MakeResult(3), VV({{"T", 2}}));
  EXPECT_EQ(cache.stats().entries, 2u);
  auto hit = cache.GetCompatible("k", VV({{"T", 2}}), {"T"});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->result->At(0, 0).AsInt(), 3);
}

TEST(KvCacheTest, PutDoesNotMergeDistinctStamps) {
  KvCache cache(1 << 20);
  cache.Put("k", MakeResult(1), VV({{"T", 1}}));
  // Same version where both stamps map T, but the second also pins U at 0
  // — a different consistency claim. Regression: comparing stamps through
  // Get() (missing table == version 0) falsely merged these, silently
  // replacing the first entry's result.
  cache.Put("k", MakeResult(2), VV({{"T", 1}, {"U", 0}}));
  EXPECT_EQ(cache.stats().entries, 2u);
  // Exactly equal maps still replace in place.
  cache.Put("k", MakeResult(3), VV({{"T", 1}}));
  EXPECT_EQ(cache.stats().entries, 2u);
  auto hit = cache.GetCompatible("k", VersionVector(), {"T"});
  ASSERT_TRUE(hit.has_value());
}

TEST(KvCacheTest, GetAnyPrefersMostRecentlyUsed) {
  KvCache cache(1 << 20);
  cache.Put("k", MakeResult(1), VV({{"T", 1}}));
  cache.Put("k", MakeResult(2), VV({{"T", 2}}));
  // A version-aware reader touches the newer entry, making it MRU.
  auto hit = cache.GetCompatible("k", VV({{"T", 2}}), {"T"});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->result->At(0, 0).AsInt(), 2);
  // GetAny must follow recency, not insertion order (regression: it
  // returned the oldest entry for the key).
  auto any = cache.GetAny("k");
  ASSERT_TRUE(any.has_value());
  EXPECT_EQ(any->result->At(0, 0).AsInt(), 2);
}

TEST(KvCacheTest, EvictsLruUnderByteBudget) {
  KvCache cache(4096, /*num_shards=*/1);
  for (int i = 0; i < 200; ++i) {
    cache.Put("key" + std::to_string(i), MakeResult(i), VV({{"T", 1}}));
  }
  auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes_used, 4096u);
  // Most recent keys survive; oldest evicted.
  EXPECT_TRUE(cache.ContainsCompatible("key199", VersionVector(), {"T"}));
  EXPECT_FALSE(cache.ContainsCompatible("key0", VersionVector(), {"T"}));
}

TEST(KvCacheTest, GetBumpsLru) {
  KvCache cache(4096, /*num_shards=*/1);
  cache.Put("hot", MakeResult(1), VV({{"T", 1}}));
  for (int i = 0; i < 500; ++i) {
    cache.Put("k" + std::to_string(i), MakeResult(i), VV({{"T", 1}}));
    // Keep "hot" recent.
    cache.GetCompatible("hot", VersionVector(), {"T"});
  }
  EXPECT_TRUE(cache.ContainsCompatible("hot", VersionVector(), {"T"}));
}

TEST(KvCacheTest, ContainsDoesNotTouchStats) {
  KvCache cache(1 << 20);
  cache.Put("k", MakeResult(1), VV({{"T", 1}}));
  auto before = cache.stats();
  cache.ContainsCompatible("k", VersionVector(), {"T"});
  cache.ContainsCompatible("absent", VersionVector(), {"T"});
  auto after = cache.stats();
  EXPECT_EQ(before.hits, after.hits);
  EXPECT_EQ(before.misses, after.misses);
}

TEST(KvCacheTest, ClearEmptiesCache) {
  KvCache cache(1 << 20);
  cache.Put("k", MakeResult(1), VV({{"T", 1}}));
  cache.Clear();
  EXPECT_FALSE(cache.GetAny("k").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(KvCacheTest, GetAnyIgnoresVersions) {
  KvCache cache(1 << 20);
  cache.Put("k", MakeResult(1), VV({{"T", 1}}));
  EXPECT_TRUE(cache.GetAny("k").has_value());
}

// Size of one cached entry as KvCache accounts it (key + payload +
// node overhead), measured rather than assumed so the tiny-capacity
// tests below survive accounting changes.
size_t EntryBytes(const std::string& key) {
  KvCache probe(1 << 20, 1);
  probe.Put(key, MakeResult(1), VV({{"T", 1}}));
  return probe.stats().bytes_used;
}

TEST(KvCacheSizingTest, RemainderDistributionKeepsBudgetUsable) {
  const size_t e = EntryBytes("k00");
  // capacity = 4e - 1 over 4 shards: a floor-only split gives every
  // shard e - 1 bytes — no shard could ever hold an entry. The exact
  // split hands the 3 remainder bytes out, leaving three shards at e.
  KvCache cache(4 * e - 1, 4);
  for (int i = 0; i < 32; ++i) {
    char key[8];
    std::snprintf(key, sizeof(key), "k%02d", i);
    cache.Put(key, MakeResult(i), VV({{"T", 1}}));
  }
  auto s = cache.stats();
  EXPECT_GE(s.entries, 1u);
  EXPECT_LE(s.bytes_used, cache.capacity_bytes());
}

TEST(KvCacheSizingTest, BytesUsedNeverExceedsCapacity) {
  const size_t e = EntryBytes("key000");
  KvCache cache(5 * e + 3, 8);
  for (int i = 0; i < 200; ++i) {
    char key[12];
    std::snprintf(key, sizeof(key), "key%03d", i);
    cache.Put(key, MakeResult(i), VV({{"T", 1}}));
    EXPECT_LE(cache.stats().bytes_used, cache.capacity_bytes());
  }
}

TEST(KvCacheSizingTest, OversizeEntryRejectedUpFront) {
  obs::Observability obs;
  obs.trace.set_enabled(true);
  const size_t e = EntryBytes("big");
  KvCache cache(e - 1, 1, &obs);
  cache.Put("big", MakeResult(1), VV({{"T", 1}}), /*predicted=*/true,
            /*template_id=*/7);
  auto s = cache.stats();
  EXPECT_EQ(s.oversize_rejected, 1u);
  // The entry never lived: no put, no eviction, no departure trace (the
  // old path charged a put AND an eviction plus prediction_wasted).
  EXPECT_EQ(s.puts, 0u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_TRUE(obs.trace.Events().empty());
}

TEST(KvCacheSizingTest, EvictionRemovesOnlyTheVictimVersion) {
  const size_t e = EntryBytes("k");
  // One shard, room for exactly two entries; three versions of one key.
  KvCache cache(2 * e, 1);
  cache.Put("k", MakeResult(1), VV({{"T", 1}}));
  cache.Put("k", MakeResult(2), VV({{"T", 2}}));
  cache.Put("k", MakeResult(3), VV({{"T", 3}}));  // evicts the T=1 entry
  auto s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  // The key map must still reach the surviving versions.
  auto hit = cache.GetCompatible("k", VV({{"T", 2}}), {"T"});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->result->At(0, 0).AsInt(), 2);
  // The evicted T=1 version is gone: a client at version 0 now gets the
  // earliest surviving stamp instead.
  auto any = cache.GetCompatible("k", VersionVector(), {"T"});
  ASSERT_TRUE(any.has_value());
  EXPECT_EQ(any->result->At(0, 0).AsInt(), 2);
}

TEST(KvCacheTraceTest, ClearEmitsDepartureForPredictedEntries) {
  obs::Observability obs;
  obs.trace.set_enabled(true);
  KvCache cache(1 << 20, 1, &obs);
  cache.Put("wasted", MakeResult(1), VV({{"T", 1}}), /*predicted=*/true,
            /*template_id=*/11);
  cache.Put("served", MakeResult(2), VV({{"T", 1}}), /*predicted=*/true,
            /*template_id=*/12);
  cache.Put("demand", MakeResult(3), VV({{"T", 1}}));
  ASSERT_TRUE(cache.GetCompatible("served", VersionVector(), {"T"}));
  const auto before = cache.stats();
  cache.Clear();
  // Stats-neutral: dropping entries on reset is not an eviction.
  EXPECT_EQ(cache.stats().evictions, before.evictions);
  EXPECT_EQ(cache.stats().entries, 0u);
  int wasted = 0, evicted = 0;
  for (const auto& ev : obs.trace.Events()) {
    if (ev.type == obs::TraceEventType::kPredictionWasted) {
      ++wasted;
      EXPECT_EQ(ev.template_id, 11u);
    }
    if (ev.type == obs::TraceEventType::kPredictionEvicted) {
      ++evicted;
      EXPECT_EQ(ev.template_id, 12u);
    }
  }
  // One never-hit prediction wasted, one served prediction evicted,
  // nothing for the demand entry.
  EXPECT_EQ(wasted, 1);
  EXPECT_EQ(evicted, 1);
}

TEST(KvCacheTest, ThreadSafetyUnderContention) {
  KvCache cache(1 << 18, /*num_shards=*/4);
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t]() {
      for (int i = 0; i < kOps; ++i) {
        std::string key = "k" + std::to_string((t * 31 + i) % 64);
        if (i % 3 == 0) {
          cache.Put(key, MakeResult(i), VV({{"T", 1}}));
        } else {
          cache.GetCompatible(key, VersionVector(), {"T"});
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  auto stats = cache.stats();
  EXPECT_EQ(stats.puts, static_cast<uint64_t>(kThreads) * (kOps / 3 + 1));
}

}  // namespace
}  // namespace apollo::cache
