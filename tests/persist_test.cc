// Crash-tolerant learned state (DESIGN.md §11): wire codec and CRC
// basics, snapshot framing, atomic write, round-trip byte-identity,
// restore determinism, partial recovery, and the corruption-fuzz
// guarantee that no bit flip or truncation at any byte offset can crash
// the loader.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/apollo_middleware.h"
#include "persist/crc32c.h"
#include "persist/snapshot.h"
#include "persist/state_codec.h"
#include "persist/wire.h"

namespace apollo {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "apollo_persist_" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(Crc32cTest, KnownVector) {
  // The standard CRC-32C check value.
  EXPECT_EQ(persist::Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(persist::Crc32c(""), 0u);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t crc = 0;
  for (char c : data) crc = persist::Crc32cExtend(crc, &c, 1);
  EXPECT_EQ(crc, persist::Crc32c(data));
}

TEST(WireTest, RoundTripAllTypes) {
  persist::ByteWriter w;
  w.U8(0xAB);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);
  w.I64(-42);
  w.Dbl(3.14159);
  w.Str("hello");
  const std::string bytes = w.Take();

  persist::ByteReader r(bytes);
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_EQ(r.Dbl(), 3.14159);
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_TRUE(r.Done());
}

TEST(WireTest, ReaderLatchesOnTruncation) {
  persist::ByteWriter w;
  w.U64(7);
  std::string bytes = w.Take();
  bytes.resize(5);  // cut the u64 short
  persist::ByteReader r(bytes);
  EXPECT_EQ(r.U64(), 0u);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U32(), 0u);  // latched: later reads fail too
  EXPECT_FALSE(r.Done());
}

TEST(WireTest, CanHoldRejectsHostileCounts) {
  persist::ByteReader r(std::string(16, '\0'));
  EXPECT_TRUE(r.CanHold(2, 8));
  EXPECT_FALSE(r.CanHold(3, 8));
  EXPECT_FALSE(r.CanHold(0xFFFFFFFFu, 8));
}

TEST(SnapshotFormatTest, HeaderRejectsGarbage) {
  EXPECT_FALSE(persist::ParseSnapshot("").ok());
  EXPECT_FALSE(persist::ParseSnapshot("short").ok());
  std::string bad(64, 'X');
  EXPECT_FALSE(persist::ParseSnapshot(bad).ok());

  persist::SnapshotWriter w;
  w.AddSection(persist::kSectionTemplates, "payload");
  std::string bytes = w.Serialize(123);
  bytes[9] = 99;  // format_version -> unsupported
  EXPECT_FALSE(persist::ParseSnapshot(bytes).ok());
}

TEST(SnapshotFormatTest, SerializeParseRoundTrip) {
  persist::SnapshotWriter w;
  w.AddSection(persist::kSectionTemplates, "alpha");
  w.AddSection(persist::kSectionSessions, std::string("\0\1\2", 3));
  auto snap = persist::ParseSnapshot(w.Serialize(777));
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->format_version, persist::kFormatVersion);
  EXPECT_EQ(snap->created_at_us, 777u);
  EXPECT_FALSE(snap->truncated);
  ASSERT_EQ(snap->sections.size(), 2u);
  EXPECT_EQ(snap->sections[0].type, persist::kSectionTemplates);
  EXPECT_TRUE(snap->sections[0].crc_ok);
  EXPECT_EQ(snap->sections[0].payload, "alpha");
  EXPECT_EQ(snap->sections[1].payload, std::string("\0\1\2", 3));
  EXPECT_TRUE(snap->sections[1].crc_ok);
}

TEST(SnapshotFormatTest, WriteAtomicReadBack) {
  const std::string path = TempPath("write_atomic.snap");
  std::remove(path.c_str());
  EXPECT_EQ(persist::ReadSnapshotFile(path).status().code(),
            util::StatusCode::kNotFound);

  persist::SnapshotWriter w;
  w.AddSection(persist::kSectionTemplates, "hello");
  ASSERT_TRUE(w.WriteAtomic(path, 42).ok());
  auto snap = persist::ReadSnapshotFile(path);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->created_at_us, 42u);
  ASSERT_EQ(snap->sections.size(), 1u);
  EXPECT_EQ(snap->sections[0].payload, "hello");

  // Overwrite is atomic too: the old image is fully replaced.
  persist::SnapshotWriter w2;
  w2.AddSection(persist::kSectionSessions, "bye");
  ASSERT_TRUE(w2.WriteAtomic(path, 43).ok());
  snap = persist::ReadSnapshotFile(path);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->created_at_us, 43u);
  ASSERT_EQ(snap->sections.size(), 1u);
  EXPECT_EQ(snap->sections[0].type, persist::kSectionSessions);
  std::remove(path.c_str());
}

TEST(SnapshotFormatTest, WriteAtomicFailsIntoMissingDirectory) {
  persist::SnapshotWriter w;
  w.AddSection(persist::kSectionTemplates, "x");
  EXPECT_FALSE(
      w.WriteAtomic("/nonexistent_dir_zz/sub/file.snap", 1).ok());
}

TEST(SnapshotFormatTest, SectionNames) {
  EXPECT_STREQ(persist::SectionName(persist::kSectionTemplates),
               "templates");
  EXPECT_STREQ(persist::SectionName(persist::kSectionParamMapper),
               "param_mapper");
  EXPECT_STREQ(persist::SectionName(persist::kSectionDependencyGraph),
               "dependency_graph");
  EXPECT_STREQ(persist::SectionName(persist::kSectionSessions), "sessions");
  EXPECT_STREQ(persist::SectionName(999), "unknown");
}

// ---------------------------------------------------------------------
// Middleware-level tests: a small TPC-W-like A -> B -> C chain workload
// (same shape as prediction_test.cc) drives real learning state into the
// engine, which is then checkpointed, damaged, restored, and replayed.
// ---------------------------------------------------------------------

class PersistMiddlewareTest : public ::testing::Test {
 protected:
  void SetUp() override {
    using common::ValueType;
    {
      db::Schema s("A",
                   {{"A_ID", ValueType::kInt}, {"A_B_ID", ValueType::kInt}});
      s.AddIndex("PRIMARY", {"A_ID"});
      ASSERT_TRUE(db_.CreateTable(std::move(s)).ok());
    }
    {
      db::Schema s("B",
                   {{"B_ID", ValueType::kInt}, {"B_C_ID", ValueType::kInt}});
      s.AddIndex("PRIMARY", {"B_ID"});
      ASSERT_TRUE(db_.CreateTable(std::move(s)).ok());
    }
    {
      db::Schema s("C",
                   {{"C_ID", ValueType::kInt}, {"C_V", ValueType::kInt}});
      s.AddIndex("PRIMARY", {"C_ID"});
      ASSERT_TRUE(db_.CreateTable(std::move(s)).ok());
    }
    for (int i = 1; i <= 40; ++i) {
      ASSERT_TRUE(db_.GetTable("A")
                      ->Insert({common::Value::Int(i),
                                common::Value::Int(100 + i)})
                      .ok());
      ASSERT_TRUE(db_.GetTable("B")
                      ->Insert({common::Value::Int(100 + i),
                                common::Value::Int(200 + i)})
                      .ok());
      ASSERT_TRUE(db_.GetTable("C")
                      ->Insert({common::Value::Int(200 + i),
                                common::Value::Int(7 * i)})
                      .ok());
    }
  }

  std::unique_ptr<net::RemoteDatabase> MakeRemote() {
    net::RemoteDbConfig cfg;
    cfg.rtt = sim::LatencyModel::Constant(util::Millis(50));
    return std::make_unique<net::RemoteDatabase>(&loop_, &db_, cfg);
  }

  core::ApolloConfig FastConfig() {
    core::ApolloConfig cfg;
    cfg.verification_period = 2;
    return cfg;
  }

  util::SimDuration RunQuery(core::Middleware& mw, core::ClientId client,
                             const std::string& sql) {
    util::SimTime t0 = loop_.now();
    util::SimTime t_done = -1;
    mw.SubmitQuery(client, sql, [&](auto) { t_done = loop_.now(); });
    loop_.Run();
    EXPECT_GE(t_done, 0);
    return t_done - t0;
  }

  void Settle() { loop_.RunUntil(loop_.now() + util::Seconds(2)); }

  /// Advances past the largest transition window so every observation
  /// can be folded into the graphs (Checkpoint processes closed windows,
  /// but windows still open at checkpoint time are legitimately lost —
  /// this removes that nondeterminism from state-equality assertions).
  void DrainWindows() { loop_.RunUntil(loop_.now() + util::Seconds(20)); }

  /// Drives the A -> B -> C chain for `rounds` rounds on `client`.
  void Learn(core::Middleware& mw, core::ClientId client, int rounds) {
    for (int i = 1; i <= rounds; ++i) {
      std::string s = std::to_string(i);
      RunQuery(mw, client, "SELECT A_ID, A_B_ID FROM A WHERE A_ID = " + s);
      RunQuery(mw, client, "SELECT B_ID, B_C_ID FROM B WHERE B_ID = " +
                               std::to_string(100 + i));
      RunQuery(mw, client,
               "SELECT C_V FROM C WHERE C_ID = " + std::to_string(200 + i));
      Settle();
    }
  }

  /// A learned middleware's snapshot image (via Checkpoint to a file).
  std::string LearnedSnapshotBytes(int rounds = 4) {
    auto remote = MakeRemote();
    cache::KvCache cache(1 << 22);
    core::ApolloMiddleware mw(&loop_, remote.get(), &cache, FastConfig());
    Learn(mw, 0, rounds);
    const std::string path = TempPath("learned.snap");
    EXPECT_TRUE(mw.Checkpoint(path).ok());
    std::string bytes = ReadFileOrDie(path);
    std::remove(path.c_str());
    return bytes;
  }

  db::Database db_;
  sim::EventLoop loop_;
};

TEST_F(PersistMiddlewareTest, SnapshotRestoreSnapshotIsByteIdentical) {
  auto remote = MakeRemote();
  cache::KvCache cache1(1 << 22);
  core::ApolloMiddleware mw1(&loop_, remote.get(), &cache1, FastConfig());
  Learn(mw1, 0, 4);
  // A second session so the sessions section carries more than one entry.
  Learn(mw1, 7, 2);

  const std::string p1 = TempPath("rt1.snap");
  const std::string p2 = TempPath("rt2.snap");
  ASSERT_TRUE(mw1.Checkpoint(p1).ok());

  cache::KvCache cache2(1 << 22);
  core::ApolloMiddleware mw2(&loop_, remote.get(), &cache2, FastConfig());
  persist::RestoreStats stats;
  ASSERT_TRUE(mw2.Restore(p1, &stats).ok());
  EXPECT_EQ(stats.sections_corrupt, 0u);
  EXPECT_EQ(stats.sections_unknown, 0u);
  EXPECT_EQ(stats.sections_loaded, stats.sections_total);
  EXPECT_EQ(stats.sessions, 2u);
  EXPECT_GT(stats.templates, 0u);
  ASSERT_TRUE(mw2.Checkpoint(p2).ok());

  std::string b1 = ReadFileOrDie(p1);
  std::string b2 = ReadFileOrDie(p2);
  ASSERT_GE(b1.size(), persist::kHeaderBytes);
  ASSERT_EQ(b1.size(), b2.size());
  // Everything after the header timestamp must match bit for bit.
  EXPECT_EQ(b1.substr(persist::kHeaderBytes), b2.substr(persist::kHeaderBytes));
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST_F(PersistMiddlewareTest, RestoredStateReproducesPredictionDecisions) {
  auto remote = MakeRemote();
  cache::KvCache cache1(1 << 22);
  core::ApolloMiddleware mw1(&loop_, remote.get(), &cache1, FastConfig());
  Learn(mw1, 0, 4);
  DrainWindows();
  const std::string path = TempPath("decisions.snap");
  ASSERT_TRUE(mw1.Checkpoint(path).ok());

  // Fresh engine + restored learning: submitting only the A query must
  // pipeline predictions into B and C exactly as the original would.
  cache::KvCache cache2(1 << 22);
  core::ApolloMiddleware mw2(&loop_, remote.get(), &cache2, FastConfig());
  ASSERT_TRUE(mw2.Restore(path).ok());
  RunQuery(mw2, 0, "SELECT A_ID, A_B_ID FROM A WHERE A_ID = 10");
  Settle();
  auto tb = RunQuery(mw2, 0, "SELECT B_ID, B_C_ID FROM B WHERE B_ID = 110");
  auto tc = RunQuery(mw2, 0, "SELECT C_V FROM C WHERE C_ID = 210");
  EXPECT_LT(tb, util::Millis(5));
  EXPECT_LT(tc, util::Millis(5));
  Settle();

  // Replaying the same continuation on original and restored engines
  // leaves byte-identical learning state.
  RunQuery(mw1, 0, "SELECT A_ID, A_B_ID FROM A WHERE A_ID = 10");
  Settle();
  RunQuery(mw1, 0, "SELECT B_ID, B_C_ID FROM B WHERE B_ID = 110");
  RunQuery(mw1, 0, "SELECT C_V FROM C WHERE C_ID = 210");
  Settle();
  // The two replays ran at different loop times, so without a drain each
  // engine would have a different subset of replay windows closed at
  // checkpoint time.
  DrainWindows();
  const std::string p1 = TempPath("replay1.snap");
  const std::string p2 = TempPath("replay2.snap");
  ASSERT_TRUE(mw1.Checkpoint(p1).ok());
  ASSERT_TRUE(mw2.Checkpoint(p2).ok());
  std::string b1 = ReadFileOrDie(p1);
  std::string b2 = ReadFileOrDie(p2);
  ASSERT_GE(b1.size(), persist::kHeaderBytes);
  ASSERT_EQ(b1.size(), b2.size());
  EXPECT_EQ(b1.substr(persist::kHeaderBytes), b2.substr(persist::kHeaderBytes));
  std::remove(path.c_str());
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST_F(PersistMiddlewareTest, RestoreMissingFileIsNotFound) {
  auto remote = MakeRemote();
  cache::KvCache cache(1 << 22);
  core::ApolloMiddleware mw(&loop_, remote.get(), &cache, FastConfig());
  const std::string path = TempPath("does_not_exist.snap");
  std::remove(path.c_str());
  EXPECT_EQ(mw.Restore(path).code(), util::StatusCode::kNotFound);
}

TEST_F(PersistMiddlewareTest, PartialRecoveryLoadsIntactSections) {
  std::string bytes = LearnedSnapshotBytes();
  auto parsed = persist::ParseSnapshot(bytes);
  ASSERT_TRUE(parsed.ok());
  ASSERT_GE(parsed->sections.size(), 3u);

  // Corrupt exactly the param-mapper section's payload.
  size_t offset = persist::kHeaderBytes;
  bool corrupted = false;
  for (const auto& sec : parsed->sections) {
    if (sec.type == persist::kSectionParamMapper) {
      ASSERT_GT(sec.payload.size(), 0u);
      bytes[offset + persist::kSectionHeaderBytes] ^= 0xFF;
      corrupted = true;
      break;
    }
    offset += persist::kSectionHeaderBytes + sec.payload.size();
  }
  ASSERT_TRUE(corrupted);

  const std::string path = TempPath("partial.snap");
  ASSERT_TRUE(persist::WriteFileAtomic(path, bytes).ok());
  auto remote = MakeRemote();
  cache::KvCache cache(1 << 22);
  core::ApolloMiddleware mw(&loop_, remote.get(), &cache, FastConfig());
  persist::RestoreStats stats;
  ASSERT_TRUE(mw.Restore(path, &stats).ok());
  EXPECT_EQ(stats.sections_corrupt, 1u);
  EXPECT_EQ(stats.sections_loaded, stats.sections_total - 1);
  EXPECT_GT(stats.templates, 0u);  // intact sections still applied
  EXPECT_GT(stats.sessions, 0u);
  EXPECT_EQ(stats.pairs, 0u);  // the damaged one was skipped
  std::remove(path.c_str());
}

TEST_F(PersistMiddlewareTest, UnknownSectionIsSkippedNotFatal) {
  persist::SnapshotWriter w;
  w.AddSection(persist::kSectionTemplates,
               persist::EncodeTemplates(core::TemplateRegistry::State{}));
  w.AddSection(4242, "mystery bytes from the future");
  const std::string path = TempPath("unknown.snap");
  ASSERT_TRUE(w.WriteAtomic(path, 1).ok());

  auto remote = MakeRemote();
  cache::KvCache cache(1 << 22);
  core::ApolloMiddleware mw(&loop_, remote.get(), &cache, FastConfig());
  persist::RestoreStats stats;
  ASSERT_TRUE(mw.Restore(path, &stats).ok());
  EXPECT_EQ(stats.sections_unknown, 1u);
  EXPECT_EQ(stats.sections_loaded, 1u);
  std::remove(path.c_str());
}

TEST_F(PersistMiddlewareTest, TruncatedFileRecoversLeadingSections) {
  std::string bytes = LearnedSnapshotBytes();
  auto parsed = persist::ParseSnapshot(bytes);
  ASSERT_TRUE(parsed.ok());
  ASSERT_GE(parsed->sections.size(), 2u);
  // Keep the header + first section + half of the second.
  size_t keep = persist::kHeaderBytes + persist::kSectionHeaderBytes +
                parsed->sections[0].payload.size() +
                persist::kSectionHeaderBytes / 2;
  bytes.resize(keep);

  const std::string path = TempPath("truncated.snap");
  ASSERT_TRUE(persist::WriteFileAtomic(path, bytes).ok());
  auto remote = MakeRemote();
  cache::KvCache cache(1 << 22);
  core::ApolloMiddleware mw(&loop_, remote.get(), &cache, FastConfig());
  persist::RestoreStats stats;
  ASSERT_TRUE(mw.Restore(path, &stats).ok());
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.sections_total, 1u);
  EXPECT_EQ(stats.sections_loaded, 1u);
  std::remove(path.c_str());
}

// The loader-safety guarantee: a bit flip at EVERY byte offset and a
// truncation at EVERY length must never crash the parser, the decoders,
// or the full middleware restore path (run under ASan/UBSan in CI).
TEST_F(PersistMiddlewareTest, CorruptionFuzzBitFlipsNeverCrash) {
  const std::string pristine = LearnedSnapshotBytes(3);
  ASSERT_GT(pristine.size(), persist::kHeaderBytes);

  auto remote = MakeRemote();
  cache::KvCache cache(1 << 22);
  const std::string path = TempPath("fuzz.snap");
  for (size_t i = 0; i < pristine.size(); ++i) {
    std::string mutated = pristine;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    // Parse + decode every section regardless of CRC verdict: the
    // decoders themselves must be safe on arbitrary bytes.
    auto parsed = persist::ParseSnapshot(mutated);
    if (parsed.ok()) {
      for (const auto& sec : parsed->sections) {
        (void)persist::DecodeTemplates(sec.payload);
        (void)persist::DecodeParamMapper(sec.payload);
        (void)persist::DecodeDependencyGraph(sec.payload);
        (void)persist::DecodeSessions(sec.payload);
      }
    }
    // Full restore into a fresh engine must be crash-free too. Strided
    // (plus the whole header/first-section region) to keep the suite
    // fast under sanitizers; the decoders above run at every offset.
    if (i < 64 || i % 7 == 0) {
      ASSERT_TRUE(persist::WriteFileAtomic(path, mutated).ok());
      core::ApolloMiddleware mw(&loop_, remote.get(), &cache, FastConfig());
      persist::RestoreStats stats;
      util::Status s = mw.Restore(path, &stats);
      (void)s;  // any Status is fine; crashing is not
    }
  }
  std::remove(path.c_str());
}

TEST_F(PersistMiddlewareTest, CorruptionFuzzTruncationsNeverCrash) {
  const std::string pristine = LearnedSnapshotBytes(3);
  auto remote = MakeRemote();
  cache::KvCache cache(1 << 22);
  const std::string path = TempPath("fuzz_trunc.snap");
  for (size_t len = 0; len <= pristine.size(); ++len) {
    std::string cut = pristine.substr(0, len);
    auto parsed = persist::ParseSnapshot(cut);
    if (parsed.ok()) {
      for (const auto& sec : parsed->sections) {
        (void)persist::DecodeTemplates(sec.payload);
        (void)persist::DecodeParamMapper(sec.payload);
        (void)persist::DecodeDependencyGraph(sec.payload);
        (void)persist::DecodeSessions(sec.payload);
      }
    }
    if (len < 64 || len % 7 == 0 || len == pristine.size()) {
      ASSERT_TRUE(persist::WriteFileAtomic(path, cut).ok());
      core::ApolloMiddleware mw(&loop_, remote.get(), &cache, FastConfig());
      persist::RestoreStats stats;
      util::Status s = mw.Restore(path, &stats);
      (void)s;
    }
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Bounded learning memory.
// ---------------------------------------------------------------------

TEST(BoundedLearningTest, TransitionGraphHonorsEdgeCap) {
  core::TransitionGraph g(util::Seconds(15), /*num_stripes=*/4,
                          /*max_edges=*/64);
  // One heavy edge that must survive pruning.
  for (int i = 0; i < 200; ++i) g.AddEdgeObservation(1, 2);
  // A long tail of one-shot edges to blow past the cap.
  for (uint64_t t = 10; t < 1200; ++t) g.AddEdgeObservation(t, t + 1);
  EXPECT_LE(g.num_edges(), 64u);
  EXPECT_GT(g.pruned_edges(), 0u);
  EXPECT_EQ(g.EdgeCount(1, 2), 200u);  // evidence-weighted: kept
}

TEST(BoundedLearningTest, TransitionGraphUncappedNeverPrunes) {
  core::TransitionGraph g(util::Seconds(15));
  for (uint64_t t = 0; t < 5000; ++t) g.AddEdgeObservation(t, t + 1);
  EXPECT_EQ(g.num_edges(), 5000u);
  EXPECT_EQ(g.pruned_edges(), 0u);
}

TEST(BoundedLearningTest, ParamMapperHonorsPairCap) {
  core::ParamMapper mapper(/*verification_period=*/2, /*num_stripes=*/4,
                           /*max_pairs=*/64);
  common::ResultSet rs(std::vector<std::string>{"X"});
  rs.AddRow({common::Value::Int(5)});
  // One pair observed enough to confirm, then a long tail of one-shots.
  for (int i = 0; i < 10; ++i) {
    mapper.ObservePair(1, rs, 2, {common::Value::Int(5)});
  }
  EXPECT_TRUE(mapper.PairConfirmed(1, 2));
  for (uint64_t t = 100; t < 1500; ++t) {
    mapper.ObservePair(t, rs, t + 1, {common::Value::Int(5)});
  }
  EXPECT_LE(mapper.num_pairs(), 64u);
  EXPECT_GT(mapper.pruned_pairs(), 0u);
  // The confirmed pair outranks one-shot unconfirmed pairs.
  EXPECT_TRUE(mapper.PairConfirmed(1, 2));
}

TEST(BoundedLearningTest, PrunedEdgesCountedByMetric) {
  obs::MetricsRegistry m;
  obs::Counter* c = m.RegisterCounter("learning_pruned_edges");
  core::TransitionGraph g(util::Seconds(15), /*num_stripes=*/2,
                          /*max_edges=*/16);
  g.SetPruneCounter(c);
  for (uint64_t t = 0; t < 400; ++t) g.AddEdgeObservation(t, t + 1);
  EXPECT_GT(c->Value(), 0);
  EXPECT_EQ(static_cast<uint64_t>(c->Value()), g.pruned_edges());
}

// Codec round trips on hand-built states (no middleware involved).
TEST(StateCodecTest, EncodeDecodeRoundTrips) {
  core::ParamMapper::State ms;
  ms.verification_period = 3;
  core::ParamMapper::ExportedPair p;
  p.src = 11;
  p.dst = 22;
  p.observations = 2;
  p.masks = {0b101, 0};
  p.confirmed = true;
  p.supports = 7;
  p.violations = 1;
  ms.pairs.push_back(p);
  auto md = persist::DecodeParamMapper(persist::EncodeParamMapper(ms));
  ASSERT_TRUE(md.ok());
  ASSERT_EQ(md->pairs.size(), 1u);
  EXPECT_EQ(md->pairs[0].src, 11u);
  EXPECT_EQ(md->pairs[0].masks, (std::vector<uint64_t>{0b101, 0}));
  EXPECT_EQ(persist::EncodeParamMapper(*md), persist::EncodeParamMapper(ms));

  core::DependencyGraph::State ds;
  core::DependencyGraph::ExportedFdq f;
  f.id = 9;
  f.sources = {{5, 0}, {6, 1}};
  f.is_adq = true;
  ds.fdqs.push_back(f);
  auto dd = persist::DecodeDependencyGraph(persist::EncodeDependencyGraph(ds));
  ASSERT_TRUE(dd.ok());
  EXPECT_EQ(persist::EncodeDependencyGraph(*dd),
            persist::EncodeDependencyGraph(ds));

  // Trailing garbage must be rejected (byte-identity depends on it).
  std::string padded = persist::EncodeDependencyGraph(ds) + "x";
  EXPECT_FALSE(persist::DecodeDependencyGraph(padded).ok());
}

}  // namespace
}  // namespace apollo
