// Tests for the parallel middleware runtime (src/rt/): MPMC queue,
// promise/future, thread pool backpressure, and the ConcurrentApollo
// adapter's serving path — including the single-flight contention
// regression (of N racing submitters of one query, exactly one executes
// remotely). Run under TSan via tools/check.sh thread.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "persist/snapshot.h"
#include "rt/concurrent_apollo.h"
#include "rt/db_gateway.h"
#include "rt/future.h"
#include "rt/mpmc_queue.h"
#include "rt/thread_pool.h"

namespace apollo {
namespace {

// --------------------------------------------------------------------------
// MpmcQueue
// --------------------------------------------------------------------------

TEST(MpmcQueueTest, FifoSingleThread) {
  rt::MpmcQueue<int> q(4);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_TRUE(q.TryPush(3));
  int v = 0;
  EXPECT_TRUE(q.TryPop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.TryPop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(q.TryPush(4));
  EXPECT_TRUE(q.TryPop(&v));
  EXPECT_EQ(v, 3);
  EXPECT_TRUE(q.TryPop(&v));
  EXPECT_EQ(v, 4);
  EXPECT_FALSE(q.TryPop(&v));
}

TEST(MpmcQueueTest, TryPushRejectsWhenFull) {
  rt::MpmcQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  int v = 0;
  EXPECT_TRUE(q.TryPop(&v));
  EXPECT_TRUE(q.TryPush(3));
}

TEST(MpmcQueueTest, CloseDrainsThenStops) {
  rt::MpmcQueue<int> q(4);
  ASSERT_TRUE(q.TryPush(7));
  q.Close();
  EXPECT_FALSE(q.Push(8));
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));  // queued item still delivered
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(q.Pop(&v));  // closed and drained
}

TEST(MpmcQueueTest, ConcurrentProducersConsumersDeliverEverythingOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  rt::MpmcQueue<int> q(32);
  std::atomic<int> consumed{0};
  std::atomic<int64_t> sum{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int v = 0;
      while (q.Pop(&v)) {
        sum.fetch_add(v);
        consumed.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (size_t i = kConsumers; i < threads.size(); ++i) threads[i].join();
  q.Close();
  for (int c = 0; c < kConsumers; ++c) threads[static_cast<size_t>(c)].join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  const int64_t n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// --------------------------------------------------------------------------
// Promise / Future
// --------------------------------------------------------------------------

TEST(FutureTest, SetBeforeGet) {
  rt::Promise<int> p;
  p.Set(42);
  EXPECT_TRUE(p.GetFuture().Ready());
  EXPECT_EQ(p.GetFuture().Get(), 42);
}

TEST(FutureTest, GetBlocksUntilSet) {
  rt::Promise<std::string> p;
  rt::Future<std::string> f = p.GetFuture();
  std::thread setter([&p] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    p.Set("done");
  });
  EXPECT_EQ(f.Get(), "done");
  setter.join();
}

TEST(FutureTest, SecondSetIgnored) {
  rt::Promise<int> p;
  p.Set(1);
  p.Set(2);
  EXPECT_EQ(p.GetFuture().Get(), 1);
}

TEST(FutureTest, CopyableIntoStdFunction) {
  rt::Promise<int> p;
  std::function<void()> fn = [p] { p.Set(9); };
  std::function<void()> copy = fn;
  copy();
  EXPECT_EQ(p.GetFuture().Get(), 9);
}

// --------------------------------------------------------------------------
// ThreadPool
// --------------------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesAllClientTasks) {
  rt::ThreadPool pool({/*num_threads=*/4, /*queue_capacity=*/16});
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit(rt::TaskClass::kClient, [&] { ran.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(pool.executed(), 100u);
}

TEST(ThreadPoolTest, PredictiveShedAtWatermark) {
  // One worker blocked on a gate; watermark 2 means the third queued
  // predictive task is rejected while client tasks still enqueue.
  rt::ThreadPoolConfig cfg;
  cfg.num_threads = 1;
  cfg.queue_capacity = 8;
  cfg.predictive_watermark = 2;
  rt::ThreadPool pool(cfg);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ASSERT_TRUE(pool.Submit(rt::TaskClass::kClient, [&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  }));
  // The worker may or may not have dequeued the gate task yet; fill to the
  // watermark deterministically on top of whatever is queued.
  while (pool.queue_depth() < cfg.predictive_watermark) {
    if (!pool.Submit(rt::TaskClass::kPredictive, [] {})) break;
  }
  EXPECT_FALSE(pool.Submit(rt::TaskClass::kPredictive, [] {}));
  EXPECT_GE(pool.rejected_predictive(), 1u);
  // Client tasks are never shed by the watermark.
  EXPECT_TRUE(pool.Submit(rt::TaskClass::kClient, [] {}));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Shutdown();
}

TEST(ThreadPoolTest, RecordsQueueWaitPerWorker) {
  obs::Observability obs;
  rt::ThreadPool pool({/*num_threads=*/2, /*queue_capacity=*/8}, &obs,
                      "tp.");
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(pool.Submit(rt::TaskClass::kClient, [&] { ran.fetch_add(1); }));
  }
  pool.Shutdown();
  uint64_t samples = 0;
  for (int w = 0; w < 2; ++w) {
    auto* h = obs.metrics.FindHistogram("tp.worker" + std::to_string(w) +
                                        ".queue_wait_wall_us");
    ASSERT_NE(h, nullptr);
    samples += h->Count();
  }
  EXPECT_EQ(samples, 20u);
}

// --------------------------------------------------------------------------
// ConcurrentApollo
// --------------------------------------------------------------------------

class ConcurrentApolloTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::Schema s("ITEM", {{"I_ID", common::ValueType::kInt},
                          {"I_STOCK", common::ValueType::kInt}});
    s.AddIndex("PRIMARY", {"I_ID"});
    ASSERT_TRUE(db_.CreateTable(std::move(s)).ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(db_.GetTable("ITEM")
                      ->Insert({common::Value::Int(i),
                                common::Value::Int(10 * i)})
                      .ok());
    }
  }

  rt::ConcurrentApolloConfig Config(std::chrono::microseconds rtt) {
    rt::ConcurrentApolloConfig cfg;
    cfg.pool.num_threads = 10;
    cfg.pool.queue_capacity = 64;
    cfg.gateway.rtt = rtt;
    return cfg;
  }

  db::Database db_;
};

TEST_F(ConcurrentApolloTest, ServesReadsAndWritesAcrossThreads) {
  rt::ConcurrentApollo apollo(&db_, Config(std::chrono::microseconds(200)));
  constexpr int kThreads = 8;
  constexpr int kQueriesEach = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kQueriesEach; ++i) {
        int id = (t * 7 + i) % 100;
        auto rs = apollo.Execute(
            t, "SELECT I_STOCK FROM ITEM WHERE I_ID = " + std::to_string(id));
        if (!rs.ok() || (*rs)->At(0, 0).AsInt() != 10 * id) failures.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  auto& m = apollo.observability().metrics;
  EXPECT_EQ(m.FindCounter("rt.queries")->Value(),
            static_cast<uint64_t>(kThreads * kQueriesEach));
  // Repeated ids across threads must hit the shared cache.
  EXPECT_GT(m.FindCounter("rt.cache_hits")->Value(), 0u);
  apollo.Shutdown();
}

TEST_F(ConcurrentApolloTest, ReadYourOwnWrites) {
  rt::ConcurrentApollo apollo(&db_, Config(std::chrono::microseconds(100)));
  // Client 0 seeds the cache with the old value; client 1 writes and must
  // then see its own write despite the stale cached entry.
  auto before = apollo.Execute(0, "SELECT I_STOCK FROM ITEM WHERE I_ID = 5");
  ASSERT_TRUE(before.ok());
  ASSERT_EQ((*before)->At(0, 0).AsInt(), 50);
  auto w = apollo.Execute(1, "UPDATE ITEM SET I_STOCK = 777 WHERE I_ID = 5");
  ASSERT_TRUE(w.ok());
  auto after = apollo.Execute(1, "SELECT I_STOCK FROM ITEM WHERE I_ID = 5");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)->At(0, 0).AsInt(), 777);
  apollo.Shutdown();
}

TEST_F(ConcurrentApolloTest, SingleFlightExactlyOneExecution) {
  // The single-flight regression: 8 sessions race the same uncached query
  // with a WAN round trip long enough that all arrive while the leader is
  // in flight. Exactly one remote execution must happen; everyone gets the
  // correct result.
  rt::ConcurrentApollo apollo(&db_, Config(std::chrono::milliseconds(80)));
  constexpr int kThreads = 8;
  const uint64_t reads_before = db_.stats().reads;

  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  bool go = false;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      {
        std::unique_lock<std::mutex> lock(mu);
        if (++arrived == kThreads) {
          go = true;
          cv.notify_all();
        } else {
          cv.wait(lock, [&] { return go; });
        }
      }
      auto rs =
          apollo.Execute(t, "SELECT I_STOCK FROM ITEM WHERE I_ID = 42");
      if (!rs.ok() || (*rs)->At(0, 0).AsInt() != 420) failures.fetch_add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  // One leader executed remotely; everyone else subscribed or hit the
  // cache the leader filled.
  EXPECT_EQ(db_.stats().reads - reads_before, 1u);
  auto& m = apollo.observability().metrics;
  EXPECT_EQ(m.FindCounter("rt.coalesced_waits")->Value() +
                m.FindCounter("rt.cache_hits")->Value(),
            static_cast<uint64_t>(kThreads - 1));
  apollo.Shutdown();
}

TEST_F(ConcurrentApolloTest, GatewayReadStampNeverNewerThanData) {
  // Version discipline: a read's stamp is snapshotted before execution,
  // so under concurrent writes Get(t) <= the table version at return.
  rt::DbGateway gw(&db_, {std::chrono::microseconds(0)});
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load()) {
      (void)db_.Execute("UPDATE ITEM SET I_STOCK = " +
                        std::to_string(i++ % 1000) + " WHERE I_ID = 7");
    }
  });
  for (int i = 0; i < 200; ++i) {
    auto rr = gw.ExecuteInline("SELECT I_STOCK FROM ITEM WHERE I_ID = 7",
                               /*is_write=*/false, {"ITEM"});
    ASSERT_TRUE(rr.result.ok());
    EXPECT_LE(rr.versions["ITEM"], db_.TableVersion("ITEM"));
  }
  stop.store(true);
  writer.join();
}

// --------------------------------------------------------------------------
// Crash-tolerant learned state in the runtime (DESIGN.md §11): the
// background checkpointer takes copy-then-write snapshots under the
// engine locks while 8 client threads keep executing. Run under TSan via
// tools/check.sh thread.
// --------------------------------------------------------------------------

class ConcurrentApolloPersistTest : public ConcurrentApolloTest {
 protected:
  std::string SnapshotPath(const char* name) {
    return ::testing::TempDir() + "apollo_rt_persist_" + name;
  }
};

TEST_F(ConcurrentApolloPersistTest, CheckpointerSnapshotsUnderLoad) {
  const std::string path = SnapshotPath("under_load.snap");
  std::remove(path.c_str());
  auto cfg = Config(std::chrono::microseconds(200));
  cfg.persist.path = path;
  cfg.persist.checkpoint_interval_ms = 5;
  {
    rt::ConcurrentApollo apollo(&db_, cfg);
    constexpr int kThreads = 8;
    std::atomic<int> failures{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = 0; i < 60; ++i) {
          int id = (t * 11 + i) % 100;
          auto rs = apollo.Execute(
              t,
              "SELECT I_STOCK FROM ITEM WHERE I_ID = " + std::to_string(id));
          if (!rs.ok()) failures.fetch_add(1);
        }
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(failures.load(), 0);
    // On-demand checkpoint races with the periodic one: both must be safe.
    EXPECT_TRUE(apollo.CheckpointNow().ok());
    apollo.Shutdown();
    auto& m = apollo.observability().metrics;
    EXPECT_GT(m.FindCounter("rt.persist.checkpoints")->Value(), 0);
    EXPECT_EQ(m.FindCounter("rt.persist.checkpoint_errors")->Value(), 0);
  }
  auto snap = persist::ReadSnapshotFile(path);
  ASSERT_TRUE(snap.ok());
  EXPECT_FALSE(snap->truncated);
  EXPECT_GE(snap->sections.size(), 4u);
  for (const auto& sec : snap->sections) EXPECT_TRUE(sec.crc_ok);
  std::remove(path.c_str());
}

TEST_F(ConcurrentApolloPersistTest, WarmRestartRestoresLearnedState) {
  const std::string path = SnapshotPath("warm.snap");
  std::remove(path.c_str());
  auto cfg = Config(std::chrono::microseconds(100));
  cfg.persist.path = path;  // interval 0: checkpoint only at shutdown
  size_t learned_templates = 0;
  {
    rt::ConcurrentApollo apollo(&db_, cfg);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(apollo
                      .Execute(0, "SELECT I_STOCK FROM ITEM WHERE I_ID = " +
                                      std::to_string(i))
                      .ok());
    }
    learned_templates = apollo.templates().size();
    ASSERT_GT(learned_templates, 0u);
    apollo.Shutdown();  // writes the final snapshot
  }
  {
    rt::ConcurrentApollo apollo(&db_, cfg);  // restore_on_startup default
    EXPECT_EQ(apollo.templates().size(), learned_templates);
    EXPECT_GT(apollo.templates().total_observations(), 0u);
    // The restored engine keeps serving correctly.
    auto rs = apollo.Execute(1, "SELECT I_STOCK FROM ITEM WHERE I_ID = 3");
    ASSERT_TRUE(rs.ok());
    EXPECT_EQ((*rs)->At(0, 0).AsInt(), 30);
    apollo.Shutdown();
  }
  std::remove(path.c_str());
}

TEST_F(ConcurrentApolloPersistTest, RestoreTolerantOfDamagedSnapshot) {
  const std::string path = SnapshotPath("damaged.snap");
  std::remove(path.c_str());
  auto cfg = Config(std::chrono::microseconds(100));
  cfg.persist.path = path;
  {
    rt::ConcurrentApollo apollo(&db_, cfg);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(apollo
                      .Execute(0, "SELECT I_STOCK FROM ITEM WHERE I_ID = " +
                                      std::to_string(i))
                      .ok());
    }
    apollo.Shutdown();
  }
  // Flip the first payload byte of the second section: exactly that
  // section's CRC dies, everything else stays intact.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  auto pristine = persist::ParseSnapshot(bytes);
  ASSERT_TRUE(pristine.ok());
  ASSERT_GE(pristine->sections.size(), 2u);
  size_t offset = persist::kHeaderBytes + persist::kSectionHeaderBytes +
                  pristine->sections[0].payload.size() +
                  persist::kSectionHeaderBytes;
  ASSERT_LT(offset, bytes.size());
  bytes[offset] ^= 0xFF;
  ASSERT_TRUE(persist::WriteFileAtomic(path, bytes).ok());
  {
    rt::ConcurrentApollo apollo(&db_, cfg);  // must construct, not crash
    persist::RestoreStats stats;
    // A second explicit restore reports the partial-recovery accounting.
    ASSERT_TRUE(apollo.RestoreNow(&stats).ok());
    EXPECT_EQ(stats.sections_corrupt, 1u);
    EXPECT_EQ(stats.sections_loaded, stats.sections_total - 1);
    auto rs = apollo.Execute(2, "SELECT I_STOCK FROM ITEM WHERE I_ID = 4");
    ASSERT_TRUE(rs.ok());
    EXPECT_EQ((*rs)->At(0, 0).AsInt(), 40);
    apollo.Shutdown();
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace apollo
