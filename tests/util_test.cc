#include <gtest/gtest.h>

#include <set>

#include "util/hash.h"
#include "util/histogram.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/sim_time.h"
#include "util/status.h"
#include "util/string_util.h"

namespace apollo::util {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing table FOO");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing table FOO");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fn = []() -> Status {
    APOLLO_RETURN_NOT_OK(Status::Internal("boom"));
    return Status::OK();
  };
  EXPECT_EQ(fn().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::NotFound("x");
    return 7;
  };
  auto outer = [&](bool fail) -> Status {
    int v = 0;
    APOLLO_ASSIGN_OR_RETURN(v, inner(fail));
    EXPECT_EQ(v, 7);
    return Status::OK();
  };
  EXPECT_TRUE(outer(false).ok());
  EXPECT_EQ(outer(true).code(), StatusCode::kNotFound);
}

TEST(HashTest, StableAndDistinct) {
  EXPECT_EQ(Hash64("SELECT 1"), Hash64("SELECT 1"));
  EXPECT_NE(Hash64("SELECT 1"), Hash64("SELECT 2"));
  EXPECT_NE(Hash64(""), 0u);
}

TEST(HashTest, CombineOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(5);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.5) ? 1 : 0;
  EXPECT_NEAR(heads, 5000, 300);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(7.0);
  EXPECT_NEAR(sum / n, 7.0, 0.35);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(3);
  std::vector<double> w = {0.1, 0.9};
  int ones = 0;
  for (int i = 0; i < 10000; ++i) ones += rng.Discrete(w) == 1 ? 1 : 0;
  EXPECT_GT(ones, 8500);
}

TEST(ZipfTest, SkewsTowardSmallValues) {
  Rng rng(11);
  Zipf zipf(1000, 0.99);
  int small = 0;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = zipf.Next(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 1000u);
    if (v <= 100) ++small;
  }
  EXPECT_GT(small, 5000);  // heavy head
}

TEST(HistogramTest, MeanAndPercentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_EQ(h.Percentile(50), 50);
  EXPECT_EQ(h.Percentile(97), 97);
  EXPECT_EQ(h.Percentile(100), 100);
  EXPECT_EQ(h.Min(), 1);
  EXPECT_EQ(h.Max(), 100);
}

TEST(HistogramTest, MergeCombinesSamples) {
  Histogram a;
  Histogram b;
  a.Record(1);
  b.Record(3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
}

TEST(HistogramTest, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.Percentile(99), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(SimTimeTest, Conversions) {
  EXPECT_EQ(Millis(1.5), 1500);
  EXPECT_EQ(Seconds(2), 2000000);
  EXPECT_EQ(Minutes(1), 60000000);
  EXPECT_DOUBLE_EQ(ToMillis(2500), 2.5);
}

TEST(StringUtilTest, Case) {
  EXPECT_EQ(ToUpperAscii("sElEcT"), "SELECT");
  EXPECT_EQ(ToLowerAscii("FooBar"), "foobar");
}

TEST(StringUtilTest, SplitAndJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join({"x", "y"}, "-"), "x-y");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \t"), "hi");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, LikeMatch) {
  EXPECT_TRUE(LikeMatch("HELLO", "he%"));
  EXPECT_TRUE(LikeMatch("HELLO", "%LL%"));
  EXPECT_TRUE(LikeMatch("HELLO", "h_llo"));
  EXPECT_FALSE(LikeMatch("HELLO", "h_lo"));
  EXPECT_TRUE(LikeMatch("abc", "%"));
  EXPECT_FALSE(LikeMatch("abc", "abcd"));
}

}  // namespace
}  // namespace apollo::util
