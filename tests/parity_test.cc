// Parity tests for the parse-once admission path (DESIGN.md Section 10).
//
// The lex fast path must be indistinguishable from the full parse+print
// route: identical fingerprints, identical parameter vectors (bit-identical,
// type included), identical canonical text — over the entire TPC-W and
// TPC-C statement corpus and under randomized literal mutation. The
// prepared execution path must likewise produce results bit-identical to
// executing the instantiated text.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/middleware.h"
#include "db/database.h"
#include "sim/event_loop.h"
#include "sql/fast_path.h"
#include "sql/template.h"
#include "sql/template_cache.h"
#include "util/sim_time.h"
#include "workload/client_driver.h"
#include "workload/tpcc.h"
#include "workload/tpcw.h"

namespace apollo {
namespace {

workload::TpcwConfig SmallTpcw() {
  workload::TpcwConfig cfg;
  cfg.num_items = 500;
  cfg.num_customers = 400;
  cfg.num_authors = 100;
  cfg.num_orders = 360;
  return cfg;
}

workload::TpccConfig SmallTpcc() {
  workload::TpccConfig cfg;
  cfg.num_warehouses = 2;
  cfg.districts_per_warehouse = 3;
  cfg.customers_per_district = 30;
  cfg.num_items = 200;
  cfg.orders_per_district = 20;
  return cfg;
}

/// Middleware stub that executes directly against the database (so the
/// workload advances with real data) and records every submitted SQL text
/// in submission order.
class RecordingMiddleware : public core::Middleware {
 public:
  RecordingMiddleware(sim::EventLoop* loop, db::Database* db)
      : loop_(loop), db_(db) {}

  void SubmitQuery(core::ClientId, const std::string& sql,
                   QueryCallback callback) override {
    ++stats_.queries;
    corpus_.push_back(sql);
    auto result = db_->Execute(sql);
    loop_->After(util::Millis(1),
                 [result = std::move(result),
                  callback = std::move(callback)]() { callback(result); });
  }

  const core::MiddlewareStats& stats() const override { return stats_; }
  std::string name() const override { return "recording"; }
  const std::vector<std::string>& corpus() const { return corpus_; }

 private:
  sim::EventLoop* loop_;
  db::Database* db_;
  core::MiddlewareStats stats_;
  std::vector<std::string> corpus_;
};

template <typename Workload>
std::vector<std::string> CollectCorpus(Workload& wl, db::Database* db,
                                       int base_seed) {
  sim::EventLoop loop;
  RecordingMiddleware mw(&loop, db);
  std::vector<std::unique_ptr<workload::ClientDriver>> drivers;
  for (int i = 0; i < 4; ++i) {
    drivers.push_back(std::make_unique<workload::ClientDriver>(
        &loop, &mw, i, wl.MakeClient(i, base_seed + i), base_seed + 100 + i));
    drivers.back()->Start(util::Minutes(30));
  }
  loop.RunUntil(util::Minutes(31));
  return mw.corpus();
}

/// The full TPC-W + TPC-C statement stream (ordered, with duplicates),
/// collected once and shared by every test in this file.
const std::vector<std::string>& Corpus() {
  static const std::vector<std::string>* corpus = [] {
    auto* out = new std::vector<std::string>();
    {
      db::Database db;
      workload::TpcwWorkload tpcw(SmallTpcw());
      EXPECT_TRUE(tpcw.Setup(&db).ok());
      auto part = CollectCorpus(tpcw, &db, 100);
      out->insert(out->end(), part.begin(), part.end());
    }
    {
      db::Database db;
      workload::TpccWorkload tpcc(SmallTpcc());
      EXPECT_TRUE(tpcc.Setup(&db).ok());
      auto part = CollectCorpus(tpcc, &db, 300);
      out->insert(out->end(), part.begin(), part.end());
    }
    return out;
  }();
  return *corpus;
}

/// Bit-identical value comparison: Value::operator== is numerically lenient
/// (INT 3 == DOUBLE 3.0), so compare the type tag too.
bool SameValue(const common::Value& a, const common::Value& b) {
  return a.type() == b.type() && a == b;
}

bool SameParams(const std::vector<common::Value>& a,
                const std::vector<common::Value>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!SameValue(a[i], b[i])) return false;
  }
  return true;
}

std::string ParamsToString(const std::vector<common::Value>& p) {
  std::string out = "[";
  for (const auto& v : p) out += v.ToSqlLiteral() + ", ";
  return out + "]";
}

TEST(FastPathParityTest, CorpusFingerprintsAndParamsMatchFullParse) {
  sql::TemplateCache cache;
  std::unordered_set<std::string> seen;
  size_t unique = 0;
  size_t fast = 0;
  for (const std::string& q : Corpus()) {
    if (!seen.insert(q).second) continue;
    ++unique;
    auto full = sql::Templatize(q);
    ASSERT_TRUE(full.ok()) << q;

    // Wherever the scanner claims success, its literal extraction must be
    // bit-identical to the parser's — a divergence here would silently
    // disable the fast path for this template (Admit's SameParams guard).
    sql::LexTemplateResult lex;
    if (sql::LexTemplatize(q, &lex)) {
      EXPECT_TRUE(SameParams(lex.params, full->params))
          << q << "\n  lex:  " << ParamsToString(lex.params)
          << "\n  full: " << ParamsToString(full->params);
    }

    // First admission seeds the cache (possibly via full parse); the second
    // is the steady state the fast path serves.
    auto first = cache.Admit(q);
    ASSERT_TRUE(first.ok()) << q;
    auto second = cache.Admit(q);
    ASSERT_TRUE(second.ok()) << q;
    if (second->via_fast_path) ++fast;

    for (const auto* adm : {&*first, &*second}) {
      EXPECT_EQ(adm->fingerprint(), full->fingerprint) << q;
      EXPECT_EQ(adm->template_text(), full->template_text) << q;
      EXPECT_EQ(adm->canonical_text, full->canonical_text) << q;
      EXPECT_EQ(adm->num_placeholders(), full->num_placeholders) << q;
      EXPECT_EQ(adm->read_only(), full->read_only) << q;
      EXPECT_TRUE(SameParams(adm->params, full->params))
          << q << "\n  adm:  " << ParamsToString(adm->params)
          << "\n  full: " << ParamsToString(full->params);
    }
  }
  ASSERT_GT(unique, 50u);  // the corpus is meaningful
  // The fast path must carry the bulk of steady-state admissions; a low
  // ratio means the scanner is bailing (or being rejected) on common shapes.
  EXPECT_GE(static_cast<double>(fast), 0.8 * static_cast<double>(unique))
      << "fast=" << fast << " unique=" << unique;
}

TEST(FastPathParityTest, RandomizedLiteralMutationFuzz) {
  // Deterministic fuzz: take every corpus template, rebind its parameters
  // to random values (including quote-bearing strings and negatives), and
  // check the fast path still agrees with the full parse bit-for-bit.
  std::mt19937 rng(20260807u);
  std::uniform_int_distribution<int64_t> int_dist(-1000000, 1000000);
  std::uniform_real_distribution<double> dbl_dist(-1000.0, 1000.0);
  std::uniform_int_distribution<int> len_dist(0, 18);
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 '_-%";
  std::uniform_int_distribution<size_t> chr_dist(0, alphabet.size() - 1);

  std::unordered_map<uint64_t, sql::TemplateInfo> templates;
  for (const std::string& q : Corpus()) {
    auto full = sql::Templatize(q);
    ASSERT_TRUE(full.ok()) << q;
    templates.emplace(full->fingerprint, std::move(*full));
  }
  ASSERT_GT(templates.size(), 10u);

  sql::TemplateCache cache;
  for (const auto& [fp, info] : templates) {
    if (info.params.empty()) continue;
    for (int iter = 0; iter < 20; ++iter) {
      std::vector<common::Value> mutated = info.params;
      for (auto& v : mutated) {
        switch (v.type()) {
          case common::ValueType::kInt:
            v = common::Value::Int(int_dist(rng));
            break;
          case common::ValueType::kDouble:
            v = common::Value::Double(dbl_dist(rng));
            break;
          case common::ValueType::kString: {
            std::string s;
            int n = len_dist(rng);
            for (int i = 0; i < n; ++i) s += alphabet[chr_dist(rng)];
            v = common::Value::Str(s);
            break;
          }
          case common::ValueType::kNull:
            break;  // NULL stays NULL
        }
      }
      auto inst = sql::Instantiate(info.template_text, mutated);
      ASSERT_TRUE(inst.ok()) << info.template_text;
      auto full = sql::Templatize(*inst);
      ASSERT_TRUE(full.ok()) << *inst;
      ASSERT_EQ(full->fingerprint, fp) << *inst;

      auto adm = cache.Admit(*inst);
      ASSERT_TRUE(adm.ok()) << *inst;
      EXPECT_EQ(adm->fingerprint(), full->fingerprint) << *inst;
      EXPECT_EQ(adm->canonical_text, full->canonical_text) << *inst;
      EXPECT_TRUE(SameParams(adm->params, full->params))
          << *inst << "\n  adm:  " << ParamsToString(adm->params)
          << "\n  full: " << ParamsToString(full->params);
    }
  }
}

bool SameResult(const common::ResultSet& a, const common::ResultSet& b,
                std::string* why) {
  if (a.columns() != b.columns()) {
    *why = "columns differ";
    return false;
  }
  if (a.num_rows() != b.num_rows()) {
    *why = "row counts differ";
    return false;
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      if (!SameValue(a.At(r, c), b.At(r, c))) {
        *why = "cell (" + std::to_string(r) + "," + std::to_string(c) +
               ") differs";
        return false;
      }
    }
  }
  if (a.rows_examined() != b.rows_examined()) {
    *why = "rows_examined differ";
    return false;
  }
  if (a.affected_rows() != b.affected_rows()) {
    *why = "affected_rows differ";
    return false;
  }
  return true;
}

/// Replays the TPC-W statement stream against two identically seeded
/// databases — one executing SQL text, one executing through the prepared
/// path whenever the admission says it can — and requires bit-identical
/// results (cells, rows_examined, affected_rows) on every statement.
TEST(PreparedExecutionParityTest, ResultsBitIdenticalToTextExecution) {
  db::Database text_db;
  db::Database prep_db;
  workload::TpcwWorkload wa(SmallTpcw());
  workload::TpcwWorkload wb(SmallTpcw());
  ASSERT_TRUE(wa.Setup(&text_db).ok());
  ASSERT_TRUE(wb.Setup(&prep_db).ok());

  db::Database corpus_db;
  workload::TpcwWorkload wc(SmallTpcw());
  ASSERT_TRUE(wc.Setup(&corpus_db).ok());
  auto corpus = CollectCorpus(wc, &corpus_db, 100);
  ASSERT_GT(corpus.size(), 200u);

  sql::TemplateCache cache;
  size_t prepared = 0;
  for (const std::string& q : corpus) {
    auto expected = text_db.Execute(q);
    auto adm = cache.Admit(q);
    ASSERT_TRUE(adm.ok()) << q;
    util::Result<common::ResultSetPtr> actual =
        adm->preparable()
            ? prep_db.ExecutePrepared(*adm->tpl->statement, adm->params)
            : prep_db.Execute(q);
    if (adm->preparable()) ++prepared;

    ASSERT_EQ(expected.ok(), actual.ok()) << q;
    if (!expected.ok()) continue;
    std::string why;
    EXPECT_TRUE(SameResult(**expected, **actual, &why)) << q << ": " << why;
  }
  // The prepared path must carry the bulk of the stream, or the no-reparse
  // contract is vacuous.
  EXPECT_GE(static_cast<double>(prepared),
            0.8 * static_cast<double>(corpus.size()))
      << "prepared=" << prepared << " corpus=" << corpus.size();
}

}  // namespace
}  // namespace apollo
