// Tests for overload control & graceful brownout (DESIGN.md Section 12):
// BrownoutController level machine + hysteresis, utility-gated shedding,
// SessionFairQueue round-robin semantics, deadline-aware admission,
// gateway fault injection, serve-stale-within-bound, and an 8-thread
// fault-injection soak that asserts per-session read-your-writes at every
// brownout level. The *ContentionTest and *SoakTest suites are in the TSan
// filter of tools/check.sh --thread.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/kv_cache.h"
#include "cache/version_vector.h"
#include "common/result_set.h"
#include "db/database.h"
#include "rt/concurrent_apollo.h"
#include "rt/fair_queue.h"
#include "rt/overload.h"
#include "rt/thread_pool.h"
#include "util/status.h"

namespace apollo {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

rt::OverloadConfig PinnedConfig() {
  // Interval so long the control loop never fires during a test: the
  // level stays wherever ForceLevel pinned it.
  rt::OverloadConfig cfg;
  cfg.enabled = true;
  cfg.interval = microseconds(3'600'000'000LL);
  return cfg;
}

// --------------------------------------------------------------------------
// BrownoutController: level machine, hysteresis, utility shedding
// --------------------------------------------------------------------------

TEST(BrownoutControllerTest, StartsNormalAndGatesFollowLevel) {
  rt::BrownoutController ctl(PinnedConfig());
  EXPECT_EQ(ctl.level(), rt::BrownoutLevel::kNormal);
  EXPECT_TRUE(ctl.AllowSpeculation());
  EXPECT_FALSE(ctl.ShedAdqReloads());
  EXPECT_FALSE(ctl.ServeStaleAllowed());
  EXPECT_FALSE(ctl.RejectClient());
  EXPECT_FALSE(ctl.DeferCheckpoints());

  ctl.ForceLevel(rt::BrownoutLevel::kShedLowUtility);
  EXPECT_TRUE(ctl.AllowSpeculation());

  ctl.ForceLevel(rt::BrownoutLevel::kShedAllSpeculation);
  EXPECT_FALSE(ctl.AllowSpeculation());
  EXPECT_TRUE(ctl.ShedAdqReloads());
  EXPECT_TRUE(ctl.DeferCheckpoints());
  EXPECT_FALSE(ctl.ServeStaleAllowed());

  ctl.ForceLevel(rt::BrownoutLevel::kServeStale);
  EXPECT_TRUE(ctl.ServeStaleAllowed());
  EXPECT_FALSE(ctl.RejectClient());

  ctl.ForceLevel(rt::BrownoutLevel::kReject);
  EXPECT_TRUE(ctl.RejectClient());
  EXPECT_TRUE(ctl.ServeStaleAllowed());
}

TEST(BrownoutControllerTest, ForceLevelStepsOneLevelAtATime) {
  rt::BrownoutController ctl(PinnedConfig());
  ctl.ForceLevel(rt::BrownoutLevel::kReject);
  EXPECT_EQ(ctl.level(), rt::BrownoutLevel::kReject);
  EXPECT_EQ(ctl.level_ups(), 4u);  // 0->1->2->3->4, never a skip
  ctl.ForceLevel(rt::BrownoutLevel::kNormal);
  EXPECT_EQ(ctl.level(), rt::BrownoutLevel::kNormal);
  EXPECT_EQ(ctl.level_downs(), 4u);
}

TEST(BrownoutControllerTest, EscalatesUnderStandingSojourn) {
  rt::OverloadConfig cfg;
  cfg.enabled = true;
  cfg.target_sojourn = microseconds(2000);
  cfg.relief_sojourn = microseconds(500);
  cfg.interval = microseconds(1000);
  cfg.deescalate_dwell = microseconds(50'000);
  rt::BrownoutController ctl(cfg);

  // Standing sojourn far above target: one escalation per elapsed
  // interval, up to the reject ceiling.
  auto deadline = std::chrono::steady_clock::now() + milliseconds(500);
  while (ctl.level() != rt::BrownoutLevel::kReject &&
         std::chrono::steady_clock::now() < deadline) {
    ctl.RecordSojourn(10'000);
    std::this_thread::sleep_for(microseconds(200));
  }
  EXPECT_EQ(ctl.level(), rt::BrownoutLevel::kReject);
  EXPECT_EQ(ctl.level_ups(), 4u);
  EXPECT_EQ(ctl.level_downs(), 0u);
}

TEST(BrownoutControllerTest, DeescalatesOnlyAfterCalmDwell) {
  rt::OverloadConfig cfg;
  cfg.enabled = true;
  cfg.target_sojourn = microseconds(2000);
  cfg.relief_sojourn = microseconds(500);
  cfg.interval = microseconds(1000);
  cfg.deescalate_dwell = microseconds(40'000);
  rt::BrownoutController ctl(cfg);

  auto escalate_deadline =
      std::chrono::steady_clock::now() + milliseconds(500);
  while (ctl.level() < rt::BrownoutLevel::kShedAllSpeculation &&
         std::chrono::steady_clock::now() < escalate_deadline) {
    ctl.RecordSojourn(10'000);
    std::this_thread::sleep_for(microseconds(200));
  }
  ASSERT_GE(ctl.level(), rt::BrownoutLevel::kShedAllSpeculation);
  const uint64_t ups = ctl.level_ups();

  // Calm traffic: de-escalation happens, but each step must wait out the
  // dwell — verify both recovery and pacing.
  const auto calm_start = std::chrono::steady_clock::now();
  auto relax_deadline = calm_start + milliseconds(2000);
  while (ctl.level() != rt::BrownoutLevel::kNormal &&
         std::chrono::steady_clock::now() < relax_deadline) {
    ctl.RecordSojourn(50);
    std::this_thread::sleep_for(microseconds(200));
  }
  const auto calm_elapsed = std::chrono::steady_clock::now() - calm_start;
  EXPECT_EQ(ctl.level(), rt::BrownoutLevel::kNormal);
  EXPECT_EQ(ctl.level_ups(), ups);  // no flapping while calm
  EXPECT_EQ(ctl.level_downs(), ups);
  // At least one dwell per downward step.
  EXPECT_GE(calm_elapsed, microseconds(40'000) * static_cast<int>(ups));
}

TEST(BrownoutControllerTest, UtilityFloorShedsBottomFraction) {
  rt::OverloadConfig cfg = PinnedConfig();
  cfg.shed_fraction = 0.5;
  cfg.utility_window = 100;
  rt::BrownoutController ctl(cfg);

  for (int i = 1; i <= 100; ++i) ctl.RecordUtility(static_cast<double>(i));

  // Below kShedLowUtility nothing is shed, whatever the utility.
  EXPECT_FALSE(ctl.ShouldShedPrediction(1.0));

  ctl.ForceLevel(rt::BrownoutLevel::kShedLowUtility);
  EXPECT_TRUE(ctl.ShouldShedPrediction(5.0));     // bottom half: shed
  EXPECT_FALSE(ctl.ShouldShedPrediction(95.0));   // top half: kept
  const double floor = ctl.utility_floor();
  EXPECT_GT(floor, 25.0);
  EXPECT_LT(floor, 75.0);

  // Above kShedLowUtility the caller gates on AllowSpeculation, but the
  // shed decision is still total.
  ctl.ForceLevel(rt::BrownoutLevel::kShedAllSpeculation);
  EXPECT_TRUE(ctl.ShouldShedPrediction(1e9));
}

// 8-thread contention: writers feed sojourns/utilities and pin levels
// while readers hammer the lock-free gates. Run under TSan via
// tools/check.sh --thread; the end-state invariant (ups - downs == level)
// catches lost transitions.
TEST(BrownoutContentionTest, ConcurrentFeedsAndGatesKeepInvariants) {
  rt::OverloadConfig cfg;
  cfg.enabled = true;
  cfg.target_sojourn = microseconds(1000);
  cfg.relief_sojourn = microseconds(200);
  cfg.interval = microseconds(500);
  cfg.deescalate_dwell = microseconds(2000);
  cfg.utility_window = 64;
  rt::BrownoutController ctl(cfg);

  constexpr int kThreads = 8;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> gate_reads{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        switch (t % 4) {
          case 0:  // hot sojourns
            ctl.RecordSojourn(5000 + (local % 1000));
            break;
          case 1:  // calm sojourns
            ctl.RecordSojourn(10 + (local % 50));
            break;
          case 2:  // utilities + shed decisions
            ctl.RecordUtility(static_cast<double>(local % 1000));
            (void)ctl.ShouldShedPrediction(static_cast<double>(local % 997));
            break;
          default:  // gate readers
            if (ctl.AllowSpeculation()) ++local;
            if (ctl.ServeStaleAllowed()) ++local;
            if (ctl.RejectClient()) ++local;
            (void)ctl.utility_floor();
            break;
        }
        ++local;
      }
      gate_reads.fetch_add(local);
    });
  }
  std::this_thread::sleep_for(milliseconds(200));
  stop.store(true);
  for (auto& th : threads) th.join();

  const int level = static_cast<int>(ctl.level());
  EXPECT_GE(level, 0);
  EXPECT_LE(level, 4);
  EXPECT_EQ(ctl.level_ups() - ctl.level_downs(),
            static_cast<uint64_t>(level));
  EXPECT_GT(gate_reads.load(), 0u);
}

// --------------------------------------------------------------------------
// SessionFairQueue
// --------------------------------------------------------------------------

TEST(FairQueueTest, PerSessionFifoRoundRobinAcrossSessions) {
  rt::SessionFairQueue<int> q(64);
  // Hot session 1 floods first; sessions 2 and 3 then queue one item each.
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.TryPush(1, 100 + i));
  ASSERT_TRUE(q.TryPush(2, 200));
  ASSERT_TRUE(q.TryPush(3, 300));
  EXPECT_EQ(q.active_sessions(), 3u);

  // Fairness contract: the single-item sessions are served within the
  // first round (3 pops), not behind session 1's backlog.
  std::vector<int> first3;
  for (int i = 0; i < 3; ++i) {
    int v = 0;
    ASSERT_TRUE(q.Pop(&v));
    first3.push_back(v);
  }
  EXPECT_NE(std::find(first3.begin(), first3.end(), 200), first3.end());
  EXPECT_NE(std::find(first3.begin(), first3.end(), 300), first3.end());

  // Remaining pops drain session 1 in FIFO order.
  int expect = 0;
  for (int v : first3) {
    if (v >= 100 && v < 200) expect = v + 1;
  }
  if (expect == 0) expect = 100;
  int v = 0;
  while (q.size() > 0) {
    ASSERT_TRUE(q.Pop(&v));
    EXPECT_EQ(v, expect);
    ++expect;
  }
  EXPECT_EQ(expect, 110);
}

TEST(FairQueueTest, TryPushRespectsGlobalCapacity) {
  rt::SessionFairQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1, 1));
  EXPECT_TRUE(q.TryPush(2, 2));
  EXPECT_FALSE(q.TryPush(3, 3));  // capacity is global across sessions
  int v = 0;
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_TRUE(q.TryPush(3, 3));
}

TEST(FairQueueTest, CloseDrainsThenStops) {
  rt::SessionFairQueue<int> q(8);
  ASSERT_TRUE(q.TryPush(7, 42));
  q.Close();
  EXPECT_FALSE(q.Push(9, 43));
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));  // queued item still delivered
  EXPECT_EQ(v, 42);
  EXPECT_FALSE(q.Pop(&v));  // closed and drained
}

// 4 producers (distinct sessions) x 4 consumers; every item delivered
// exactly once and each session's sequence numbers arrive without gaps
// when re-sorted per consumer. Run under TSan.
TEST(FairQueueContentionTest, ManyProducersManyConsumersDeliverAll) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  rt::SessionFairQueue<std::pair<uint64_t, int>> q(128);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(static_cast<uint64_t>(p), {p, i}));
      }
    });
  }

  std::mutex agg_mu;
  std::unordered_map<uint64_t, std::vector<int>> delivered;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::pair<uint64_t, int> item;
      std::unordered_map<uint64_t, std::vector<int>> local;
      while (q.Pop(&item)) local[item.first].push_back(item.second);
      std::lock_guard<std::mutex> lock(agg_mu);
      for (auto& [s, v] : local) {
        delivered[s].insert(delivered[s].end(), v.begin(), v.end());
      }
    });
  }

  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  ASSERT_EQ(delivered.size(), static_cast<size_t>(kProducers));
  for (auto& [s, v] : delivered) {
    ASSERT_EQ(v.size(), static_cast<size_t>(kPerProducer)) << "session " << s;
    std::sort(v.begin(), v.end());
    for (int i = 0; i < kPerProducer; ++i) {
      ASSERT_EQ(v[i], i) << "session " << s;  // exactly once, no loss
    }
  }
}

TEST(FairQueueContentionTest, ThreadPoolRunsFairFeed) {
  rt::ThreadPoolConfig cfg;
  cfg.num_threads = 4;
  cfg.queue_capacity = 64;
  cfg.fair_queueing = true;
  std::atomic<uint64_t> sojourns{0};
  cfg.sojourn_callback = [&](int64_t us) {
    EXPECT_GE(us, 0);
    sojourns.fetch_add(1);
  };
  std::atomic<int> ran{0};
  {
    rt::ThreadPool pool(cfg);
    for (int i = 0; i < 200; ++i) {
      pool.Submit(rt::TaskClass::kClient, /*session=*/i % 8,
                  [&] { ran.fetch_add(1); });
    }
    pool.Shutdown();
  }
  EXPECT_EQ(ran.load(), 200);
  EXPECT_EQ(sojourns.load(), 200u);
}

// --------------------------------------------------------------------------
// Deadline-aware admission + gateway fault injection
// --------------------------------------------------------------------------

class OverloadApolloTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db::Schema s("KV", {{"ID", common::ValueType::kInt},
                        {"V", common::ValueType::kInt}});
    s.AddIndex("PRIMARY", {"ID"});
    ASSERT_TRUE(db_.CreateTable(std::move(s)).ok());
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(db_.GetTable("KV")
                      ->Insert({common::Value::Int(i), common::Value::Int(0)})
                      .ok());
    }
  }

  rt::ConcurrentApolloConfig Config(microseconds rtt) {
    rt::ConcurrentApolloConfig cfg;
    cfg.pool.num_threads = 4;
    cfg.pool.queue_capacity = 64;
    cfg.gateway.rtt = rtt;
    cfg.overload = PinnedConfig();
    return cfg;
  }

  db::Database db_;
};

TEST_F(OverloadApolloTest, ExpiredDeadlineFailsFastWithoutPayingRtt) {
  rt::ConcurrentApollo apollo(&db_, Config(milliseconds(100)));
  const auto start = std::chrono::steady_clock::now();
  auto rs = apollo.Execute(1, "SELECT V FROM KV WHERE ID = 1",
                           std::chrono::steady_clock::now() - milliseconds(1));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), util::StatusCode::kDeadlineExceeded);
  // Fail-fast: far less than the 100 ms round trip.
  EXPECT_LT(elapsed, milliseconds(50));
  EXPECT_EQ(apollo.observability()
                .metrics.RegisterCounter("rt.overload.deadline_missed")
                ->Value(),
            1u);
}

TEST_F(OverloadApolloTest, DefaultDeadlineStampedWhenConfigured) {
  auto cfg = Config(milliseconds(50));
  cfg.overload.default_deadline = microseconds(100);  // << rtt
  rt::ConcurrentApollo apollo(&db_, cfg);
  auto rs = apollo.Execute(1, "SELECT V FROM KV WHERE ID = 2");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), util::StatusCode::kDeadlineExceeded);
}

TEST_F(OverloadApolloTest, GatewayFaultInjectionFailsEveryNth) {
  auto cfg = Config(microseconds(100));
  cfg.gateway.fail_every_n = 3;
  cfg.apollo.enable_prediction = false;  // every Execute = one gateway op
  rt::ConcurrentApollo apollo(&db_, cfg);
  int unavailable = 0;
  for (int i = 0; i < 9; ++i) {
    auto rs = apollo.Execute(1, "UPDATE KV SET V = " + std::to_string(i) +
                                    " WHERE ID = 5");
    if (!rs.ok()) {
      EXPECT_EQ(rs.status().code(), util::StatusCode::kUnavailable);
      ++unavailable;
    }
  }
  EXPECT_EQ(unavailable, 3);  // ops 3, 6, 9
}

TEST_F(OverloadApolloTest, RejectLevelRefusesNewQueries) {
  rt::ConcurrentApollo apollo(&db_, Config(microseconds(200)));
  ASSERT_NE(apollo.brownout(), nullptr);
  apollo.brownout()->ForceLevel(rt::BrownoutLevel::kReject);
  auto rs = apollo.Execute(1, "SELECT V FROM KV WHERE ID = 3");
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), util::StatusCode::kUnavailable);
  apollo.brownout()->ForceLevel(rt::BrownoutLevel::kNormal);
  EXPECT_TRUE(apollo.Execute(1, "SELECT V FROM KV WHERE ID = 3").ok());
}

TEST_F(OverloadApolloTest, ServeStaleBoundedAndReadYourWrites) {
  auto cfg = Config(microseconds(500));
  cfg.overload.stale_bound = milliseconds(10'000);
  rt::ConcurrentApollo apollo(&db_, cfg);

  // Session 1 caches row 7; session 2's write elsewhere advances the KV
  // table version past the cached stamp once session 1 observes it.
  auto r1 = apollo.Execute(1, "SELECT V FROM KV WHERE ID = 7");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(apollo.Execute(2, "UPDATE KV SET V = 99 WHERE ID = 8").ok());
  ASSERT_TRUE(apollo.Execute(1, "SELECT V FROM KV WHERE ID = 8").ok());

  // At kServeStale the old row-7 entry is served despite failing session
  // freshness (monotonic reads relaxed; session 1 never wrote KV).
  apollo.brownout()->ForceLevel(rt::BrownoutLevel::kServeStale);
  auto stale = apollo.Execute(1, "SELECT V FROM KV WHERE ID = 7");
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ((*stale)->At(0, 0).AsInt(), 0);
  EXPECT_GE(apollo.observability()
                .metrics.RegisterCounter("rt.overload.stale_served")
                ->Value(),
            1u);

  // Read-your-writes still holds stale: after session 1 itself writes KV,
  // the pre-write entry may no longer be served.
  ASSERT_TRUE(apollo.Execute(1, "UPDATE KV SET V = 5 WHERE ID = 9").ok());
  const uint64_t stale_before = apollo.observability()
                                    .metrics
                                    .RegisterCounter("rt.overload.stale_served")
                                    ->Value();
  auto fresh = apollo.Execute(1, "SELECT V FROM KV WHERE ID = 7");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(apollo.observability()
                .metrics.RegisterCounter("rt.overload.stale_served")
                ->Value(),
            stale_before);  // not served from the stale path
  apollo.brownout()->ForceLevel(rt::BrownoutLevel::kNormal);
}

TEST(KvCacheStaleTest, GetStaleWithinHonorsFloorAndAgeBound) {
  cache::KvCache kv(1 << 20, 1);
  auto rs = std::make_shared<common::ResultSet>();
  cache::VersionVector stamp;
  stamp.AdvanceTo("KV", 5);
  kv.Put("k", rs, stamp, false, 0, /*put_time_us=*/1000);

  cache::VersionVector empty_floor;
  // Fresh enough + empty floor: served.
  EXPECT_TRUE(kv.GetStaleWithin("k", empty_floor, {"KV"}, 500).has_value());
  // Entry older than the age bound: refused.
  EXPECT_FALSE(kv.GetStaleWithin("k", empty_floor, {"KV"}, 2000).has_value());
  // Floor above the entry's stamp (session wrote KV@6): refused.
  cache::VersionVector floor;
  floor.AdvanceTo("KV", 6);
  EXPECT_FALSE(kv.GetStaleWithin("k", floor, {"KV"}, 500).has_value());
  // put_time 0 entries are never served stale.
  kv.Put("k0", rs, stamp, false, 0, /*put_time_us=*/0);
  EXPECT_FALSE(kv.GetStaleWithin("k0", empty_floor, {"KV"}, 0).has_value());
}

// --------------------------------------------------------------------------
// Fault-injection + overload soak: read-your-writes at every level
// --------------------------------------------------------------------------

// 8 session threads each own one row and bump a private counter through
// the full middleware while (a) the gateway injects a transport fault
// every 7th op and (b) a cycler walks the brownout ladder 0->4->0. Every
// failure mode (injected fault, deadline, reject) fires before the DB op
// runs, so each thread knows the exact durable value of its row; every
// successful read must return it — per-session version-vector consistency
// (read-your-writes) at every brownout level, stale serving included.
// APOLLO_SOAK_MS extends the run (tools/check.sh --stress sets it).
TEST(OverloadSoakTest, ReadYourWritesHeldAtEveryBrownoutLevel) {
  int soak_ms = 2000;
  if (const char* env = std::getenv("APOLLO_SOAK_MS")) {
    soak_ms = std::max(100, std::atoi(env));
  }

  db::Database db;
  db::Schema s("KV", {{"ID", common::ValueType::kInt},
                      {"V", common::ValueType::kInt}});
  s.AddIndex("PRIMARY", {"ID"});
  ASSERT_TRUE(db.CreateTable(std::move(s)).ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(db.GetTable("KV")
                    ->Insert({common::Value::Int(i), common::Value::Int(0)})
                    .ok());
  }

  rt::ConcurrentApolloConfig cfg;
  cfg.pool.num_threads = 4;
  cfg.pool.queue_capacity = 128;
  cfg.gateway.rtt = microseconds(500);
  cfg.gateway.fail_every_n = 7;
  cfg.overload = PinnedConfig();  // huge interval: cycler owns the level
  cfg.overload.default_deadline = microseconds(200'000);
  cfg.overload.stale_bound = milliseconds(5000);
  rt::ConcurrentApollo apollo(&db, cfg);
  ASSERT_NE(apollo.brownout(), nullptr);

  constexpr int kSessions = 8;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> violations{0};
  std::atomic<uint64_t> unexpected_errors{0};
  std::atomic<uint64_t> reads_ok{0};
  std::atomic<uint64_t> writes_ok{0};

  std::thread cycler([&] {
    static constexpr rt::BrownoutLevel kLadder[] = {
        rt::BrownoutLevel::kNormal,         rt::BrownoutLevel::kShedLowUtility,
        rt::BrownoutLevel::kShedAllSpeculation,
        rt::BrownoutLevel::kServeStale,     rt::BrownoutLevel::kReject,
        rt::BrownoutLevel::kServeStale,
        rt::BrownoutLevel::kShedAllSpeculation,
        rt::BrownoutLevel::kShedLowUtility};
    size_t i = 0;
    while (!stop.load()) {
      apollo.brownout()->ForceLevel(kLadder[i % (sizeof(kLadder) /
                                                 sizeof(kLadder[0]))]);
      ++i;
      std::this_thread::sleep_for(milliseconds(40));
    }
    apollo.brownout()->ForceLevel(rt::BrownoutLevel::kNormal);
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < kSessions; ++w) {
    workers.emplace_back([&, w] {
      const core::ClientId client = w + 1;
      const std::string where = " WHERE ID = " + std::to_string(w);
      int64_t expected = 0;  // durable value of this session's row
      uint64_t iter = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ++iter;
        if (iter % 5 == 0) {
          const int64_t next = expected + 1;
          auto rs = apollo.Execute(
              client, "UPDATE KV SET V = " + std::to_string(next) + where);
          if (rs.ok()) {
            expected = next;  // write durably applied
          } else if (!rs.status().IsRetryable()) {
            unexpected_errors.fetch_add(1);
          }
          // Retryable failure: admission/injection fired before the DB op
          // ran, so the durable value is unchanged.
        } else {
          auto rs = apollo.Execute(client, "SELECT V FROM KV" + where);
          if (rs.ok()) {
            reads_ok.fetch_add(1);
            if ((*rs)->At(0, 0).AsInt() != expected) {
              violations.fetch_add(1);
            }
          } else if (!rs.status().IsRetryable()) {
            unexpected_errors.fetch_add(1);
          }
        }
      }
      // Final check at kNormal: the middleware's view converged to the
      // session's durable counter.
      for (int attempt = 0; attempt < 50; ++attempt) {
        auto rs = apollo.Execute(client, "SELECT V FROM KV" + where);
        if (!rs.ok()) {
          // The cycler may not have restored kNormal yet; back off.
          std::this_thread::sleep_for(milliseconds(10));
          continue;
        }
        if ((*rs)->At(0, 0).AsInt() != expected) violations.fetch_add(1);
        writes_ok.fetch_add(expected > 0 ? 1 : 0);
        break;
      }
    });
  }

  std::this_thread::sleep_for(milliseconds(soak_ms));
  stop.store(true);
  cycler.join();
  for (auto& t : workers) t.join();

  EXPECT_EQ(violations.load(), 0u)
      << "read-your-writes violated under brownout";
  EXPECT_EQ(unexpected_errors.load(), 0u);
  EXPECT_GT(reads_ok.load(), 0u);
  EXPECT_GT(writes_ok.load(), 0u);  // every session committed >= 1 write
}

}  // namespace
}  // namespace apollo
