// Tests of the TPC-W / TPC-C workloads and the experiment driver.
#include <gtest/gtest.h>

#include <set>

#include "workload/client_driver.h"
#include "workload/driver.h"
#include "workload/tpcc.h"
#include "workload/tpcw.h"

namespace apollo::workload {
namespace {

TpcwConfig SmallTpcw() {
  TpcwConfig cfg;
  cfg.num_items = 500;
  cfg.num_customers = 400;
  cfg.num_authors = 100;
  cfg.num_orders = 360;
  return cfg;
}

TpccConfig SmallTpcc() {
  TpccConfig cfg;
  cfg.num_warehouses = 2;
  cfg.districts_per_warehouse = 3;
  cfg.customers_per_district = 30;
  cfg.num_items = 200;
  cfg.orders_per_district = 20;
  return cfg;
}

TEST(TpcwSetupTest, LoadsAllTables) {
  db::Database db;
  TpcwWorkload tpcw(SmallTpcw());
  ASSERT_TRUE(tpcw.Setup(&db).ok());
  EXPECT_EQ(db.GetTable("ITEM")->num_rows(), 500u);
  EXPECT_EQ(db.GetTable("CUSTOMER")->num_rows(), 400u);
  EXPECT_EQ(db.GetTable("ORDERS")->num_rows(), 360u);
  EXPECT_EQ(db.GetTable("COUNTRY")->num_rows(), 92u);
  EXPECT_GT(db.GetTable("ORDER_LINE")->num_rows(), 360u);
  EXPECT_GT(db.GetTable("CC_XACTS")->num_rows(), 0u);
}

TEST(TpcwSetupTest, ReferentialQueriesWork) {
  db::Database db;
  TpcwWorkload tpcw(SmallTpcw());
  ASSERT_TRUE(tpcw.Setup(&db).ok());
  // The Figure 2 chain works end-to-end against generated data.
  auto login = db.Execute(
      "SELECT C_ID FROM CUSTOMER WHERE C_UNAME = 'USER5' AND C_PASSWD = "
      "'PWD5'");
  ASSERT_TRUE(login.ok());
  ASSERT_EQ((*login)->num_rows(), 1u);
  EXPECT_EQ((*login)->At(0, 0).AsInt(), 5);
  auto join = db.Execute(
      "SELECT OL_I_ID, I_TITLE FROM ORDER_LINE, ITEM WHERE OL_I_ID = I_ID "
      "AND OL_O_ID = 1");
  ASSERT_TRUE(join.ok());
  EXPECT_GE((*join)->num_rows(), 1u);
}

TEST(TpcwSetupTest, TablePrefixIsolatesSchemas) {
  db::Database db;
  TpcwConfig a = SmallTpcw();
  TpcwConfig b = SmallTpcw();
  b.table_prefix = "X_";
  TpcwWorkload wa(a);
  TpcwWorkload wb(b);
  ASSERT_TRUE(wa.Setup(&db).ok());
  ASSERT_TRUE(wb.Setup(&db).ok());  // no clash
  EXPECT_NE(db.GetTable("X_ITEM"), nullptr);
}

TEST(TpcwSetupTest, OrderIdSequenceContinuesAfterInitialLoad) {
  TpcwWorkload tpcw(SmallTpcw());
  EXPECT_EQ(tpcw.CurrentMaxOrderId(), 360);
  EXPECT_EQ(tpcw.NextOrderId(), 361);
  EXPECT_EQ(tpcw.NextOrderId(), 362);
}

TEST(TpccSetupTest, LoadsScaledSchema) {
  db::Database db;
  TpccWorkload tpcc(SmallTpcc());
  ASSERT_TRUE(tpcc.Setup(&db).ok());
  EXPECT_EQ(db.GetTable("WAREHOUSE")->num_rows(), 2u);
  EXPECT_EQ(db.GetTable("DISTRICT")->num_rows(), 6u);
  EXPECT_EQ(db.GetTable("CUSTOMER")->num_rows(), 180u);
  EXPECT_EQ(db.GetTable("STOCK")->num_rows(), 400u);
  EXPECT_EQ(db.GetTable("ORDERS")->num_rows(), 120u);
}

TEST(TpccSetupTest, StockLevelChainWorks) {
  db::Database db;
  TpccWorkload tpcc(SmallTpcc());
  ASSERT_TRUE(tpcc.Setup(&db).ok());
  auto district = db.Execute(
      "SELECT D_W_ID, D_ID, D_NEXT_O_ID, D_NEXT_O_ID - 20 AS D_LOW_O_ID "
      "FROM DISTRICT WHERE D_W_ID = 1 AND D_ID = 1");
  ASSERT_TRUE(district.ok());
  ASSERT_EQ((*district)->num_rows(), 1u);
  int64_t next = (*district)->At(0, 2).AsInt();
  EXPECT_EQ(next, 21);
  EXPECT_EQ((*district)->At(0, 3).AsInt(), 1);
  auto items = db.Execute(
      "SELECT DISTINCT OL_W_ID, OL_I_ID FROM ORDER_LINE WHERE OL_W_ID = 1 "
      "AND OL_D_ID = 1 AND OL_O_ID >= 1 AND OL_O_ID < 21");
  ASSERT_TRUE(items.ok());
  EXPECT_GT((*items)->num_rows(), 0u);
}

/// Middleware stub executing directly against the database with a fixed
/// simulated delay — isolates client-behaviour tests from the full stack.
class DirectMiddleware : public core::Middleware {
 public:
  DirectMiddleware(sim::EventLoop* loop, db::Database* db)
      : loop_(loop), db_(db) {}

  void SubmitQuery(core::ClientId, const std::string& sql,
                   QueryCallback callback) override {
    ++stats_.queries;
    auto result = db_->Execute(sql);
    if (!result.ok()) {
      errors_.push_back(sql + " -> " + result.status().ToString());
    }
    loop_->After(util::Millis(1),
                 [result = std::move(result),
                  callback = std::move(callback)]() { callback(result); });
  }

  const core::MiddlewareStats& stats() const override { return stats_; }
  std::string name() const override { return "direct"; }
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  sim::EventLoop* loop_;
  db::Database* db_;
  core::MiddlewareStats stats_;
  std::vector<std::string> errors_;
};

TEST(TpcwClientTest, InteractionsExecuteWithoutErrors) {
  db::Database db;
  TpcwWorkload tpcw(SmallTpcw());
  ASSERT_TRUE(tpcw.Setup(&db).ok());
  sim::EventLoop loop;
  DirectMiddleware mw(&loop, &db);
  std::vector<std::unique_ptr<ClientDriver>> drivers;
  for (int i = 0; i < 4; ++i) {
    drivers.push_back(std::make_unique<ClientDriver>(
        &loop, &mw, i, tpcw.MakeClient(i, 100 + i), 200 + i));
    drivers.back()->Start(util::Minutes(30));
  }
  loop.RunUntil(util::Minutes(31));
  EXPECT_GT(mw.stats().queries, 200u);
  EXPECT_TRUE(mw.errors().empty())
      << "first error: " << (mw.errors().empty() ? "" : mw.errors()[0]);
}

TEST(TpccClientTest, TransactionsExecuteWithoutErrors) {
  db::Database db;
  TpccWorkload tpcc(SmallTpcc());
  ASSERT_TRUE(tpcc.Setup(&db).ok());
  sim::EventLoop loop;
  DirectMiddleware mw(&loop, &db);
  std::vector<std::unique_ptr<ClientDriver>> drivers;
  for (int i = 0; i < 4; ++i) {
    drivers.push_back(std::make_unique<ClientDriver>(
        &loop, &mw, i, tpcc.MakeClient(i, 300 + i), 400 + i));
    drivers.back()->Start(util::Minutes(30));
  }
  loop.RunUntil(util::Minutes(31));
  EXPECT_GT(mw.stats().queries, 300u);
  EXPECT_TRUE(mw.errors().empty())
      << "first error: " << (mw.errors().empty() ? "" : mw.errors()[0]);
}

TEST(TpccClientTest, PaymentsActuallyWrite) {
  db::Database db;
  TpccWorkload tpcc(SmallTpcc());
  ASSERT_TRUE(tpcc.Setup(&db).ok());
  sim::EventLoop loop;
  DirectMiddleware mw(&loop, &db);
  auto driver = std::make_unique<ClientDriver>(&loop, &mw, 0,
                                               tpcc.MakeClient(0, 1), 2);
  uint64_t v0 = db.TableVersion("WAREHOUSE");
  driver->Start(util::Minutes(60));
  loop.RunUntil(util::Minutes(61));
  EXPECT_GT(db.TableVersion("WAREHOUSE"), v0);  // payments landed
  EXPECT_GT(db.GetTable("HISTORY")->num_rows(), 0u);
}

TEST(RunMetricsTest, TimelineBuckets) {
  RunMetrics metrics(/*origin=*/0, util::Minutes(4));
  metrics.Record(util::Minutes(1), util::Millis(100));
  metrics.Record(util::Minutes(2), util::Millis(200));
  metrics.Record(util::Minutes(5), util::Millis(50));
  auto timeline = metrics.Timeline();
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_DOUBLE_EQ(timeline[0].mean_ms, 150.0);
  EXPECT_DOUBLE_EQ(timeline[1].mean_ms, 50.0);
  EXPECT_DOUBLE_EQ(timeline[1].minute, 4.0);
  EXPECT_EQ(metrics.count(), 3u);
}

TEST(RunMetricsTest, WarmupSubmissionsExcludedFromHistogram) {
  // Regression: queries submitted before the measurement origin leaked
  // into the headline histogram (only the timeline buckets were gated),
  // skewing MeanMs/PercentileMs for warmed-up configurations.
  RunMetrics metrics(/*origin=*/util::Minutes(10), util::Minutes(4));
  metrics.Record(util::Minutes(1), util::Millis(500));   // warmup
  metrics.Record(util::Minutes(9), util::Millis(500));   // warmup
  metrics.Record(util::Minutes(11), util::Millis(100));  // measured
  metrics.Record(util::Minutes(12), util::Millis(200));  // measured
  EXPECT_EQ(metrics.count(), 2u);
  EXPECT_DOUBLE_EQ(metrics.MeanMs(), 150.0);
  auto timeline = metrics.Timeline();
  ASSERT_EQ(timeline.size(), 1u);
  EXPECT_EQ(timeline[0].count, 2u);
}

TEST(DriverTest, EndToEndSmoke) {
  TpcwWorkload tpcw(SmallTpcw());
  RunConfig cfg;
  cfg.system = SystemType::kApollo;
  cfg.num_clients = 5;
  cfg.duration = util::Minutes(3);
  cfg.remote.rtt = sim::LatencyModel::Constant(util::Millis(50));
  cfg.seed = 5;
  auto result = RunExperiment(tpcw, cfg);
  EXPECT_GT(result.metrics->count(), 50u);
  EXPECT_GT(result.MeanMs(), 0.0);
  EXPECT_GT(result.mw.queries, 0u);
  EXPECT_EQ(result.system_name, "apollo");
  EXPECT_GT(result.cache_capacity, 0u);
}

TEST(DriverTest, DeterministicAcrossRuns) {
  auto run = []() {
    TpcwWorkload tpcw(SmallTpcw());
    RunConfig cfg;
    cfg.system = SystemType::kApollo;
    cfg.num_clients = 4;
    cfg.duration = util::Minutes(2);
    cfg.seed = 11;
    return RunExperiment(tpcw, cfg);
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.metrics->count(), b.metrics->count());
  EXPECT_DOUBLE_EQ(a.MeanMs(), b.MeanMs());
  EXPECT_EQ(a.mw.predictions_issued, b.mw.predictions_issued);
}

TEST(DriverTest, SeedChangesRun) {
  auto run = [](uint64_t seed) {
    TpcwWorkload tpcw(SmallTpcw());
    RunConfig cfg;
    cfg.system = SystemType::kMemcached;
    cfg.num_clients = 4;
    cfg.duration = util::Minutes(2);
    cfg.seed = seed;
    return RunExperiment(tpcw, cfg);
  };
  auto a = run(1);
  auto b = run(2);
  EXPECT_NE(a.MeanMs(), b.MeanMs());
}

TEST(DriverTest, FidoTrainsBeforeMeasuring) {
  TpcwWorkload tpcw(SmallTpcw());
  RunConfig cfg;
  cfg.system = SystemType::kFido;
  cfg.num_clients = 3;
  cfg.duration = util::Minutes(2);
  cfg.fido_training_factor = 1.0;
  cfg.seed = 9;
  auto result = RunExperiment(tpcw, cfg);
  EXPECT_EQ(result.system_name, "fido");
  EXPECT_GT(result.metrics->count(), 0u);
}

TEST(DriverTest, WorkloadSwitchSwapsBehaviours) {
  TpccWorkload tpcc(SmallTpcc());
  TpcwConfig wcfg = SmallTpcw();
  wcfg.table_prefix = "TPCW_";
  TpcwWorkload tpcw(wcfg);
  RunConfig cfg;
  cfg.system = SystemType::kApollo;
  cfg.num_clients = 4;
  cfg.duration = util::Minutes(4);
  cfg.switch_to = &tpcw;
  cfg.switch_at = util::Minutes(2);
  cfg.bucket_width = util::Minutes(1);
  cfg.seed = 13;
  auto result = RunExperiment(tpcc, cfg);
  // Queries from both phases recorded.
  EXPECT_GE(result.metrics->Timeline().size(), 3u);
}

TEST(DriverTest, MultiInstancePartitionsClients) {
  TpcwWorkload tpcw(SmallTpcw());
  RunConfig cfg;
  cfg.system = SystemType::kApollo;
  cfg.num_clients = 6;
  cfg.num_instances = 3;
  cfg.duration = util::Minutes(2);
  cfg.seed = 17;
  auto result = RunExperiment(tpcw, cfg);
  EXPECT_GT(result.metrics->count(), 0u);
}

}  // namespace
}  // namespace apollo::workload
