// End-to-end tests of the middleware stack on the simulated testbed:
// session consistency (3.2), publish-subscribe (3.3), predictive execution
// and pipelining (2.3-2.4), freshness vetoes (3.4.1), ADQ reload (3.4.2),
// and the Fido baseline.
#include <gtest/gtest.h>

#include "core/apollo_middleware.h"
#include "core/caching_middleware.h"
#include "fido/fido_middleware.h"

namespace apollo::core {
namespace {

constexpr util::SimDuration kRtt = util::Millis(70);

class MiddlewareTest : public ::testing::Test {
 protected:
  MiddlewareTest() : cache_(1 << 22) {}

  void SetUp() override {
    using common::Value;
    using common::ValueType;
    {
      db::Schema s("CUSTOMER", {{"C_ID", ValueType::kInt},
                                {"C_UNAME", ValueType::kString}});
      s.AddIndex("PRIMARY", {"C_ID"});
      s.AddIndex("UNAME", {"C_UNAME"});
      ASSERT_TRUE(db_.CreateTable(std::move(s)).ok());
    }
    {
      db::Schema s("ORDERS", {{"O_ID", ValueType::kInt},
                              {"O_C_ID", ValueType::kInt},
                              {"O_TOTAL", ValueType::kDouble}});
      s.AddIndex("PRIMARY", {"O_ID"});
      s.AddIndex("CUST", {"O_C_ID"});
      ASSERT_TRUE(db_.CreateTable(std::move(s)).ok());
    }
    db::Table* c = db_.GetTable("CUSTOMER");
    db::Table* o = db_.GetTable("ORDERS");
    for (int i = 1; i <= 50; ++i) {
      ASSERT_TRUE(c->Insert({Value::Int(i),
                             Value::Str("user" + std::to_string(i))})
                      .ok());
      ASSERT_TRUE(o->Insert({Value::Int(1000 + i), Value::Int(i),
                             Value::Double(9.5)})
                      .ok());
    }
  }

  std::unique_ptr<net::RemoteDatabase> MakeRemote() {
    net::RemoteDbConfig cfg;
    cfg.rtt = sim::LatencyModel::Constant(kRtt);
    return std::make_unique<net::RemoteDatabase>(&loop_, &db_, cfg);
  }

  ApolloConfig FastLearningConfig() {
    ApolloConfig cfg;
    cfg.verification_period = 2;
    return cfg;
  }

  /// Submits a query and runs the loop to completion; returns the
  /// response time.
  util::SimDuration RunQuery(Middleware& mw, ClientId client,
                             const std::string& sql,
                             common::ResultSetPtr* out = nullptr) {
    util::SimTime t0 = loop_.now();
    util::SimTime t_done = -1;
    mw.SubmitQuery(client, sql,
                   [&](util::Result<common::ResultSetPtr> rs) {
                     t_done = loop_.now();
                     if (out != nullptr) {
                       *out = rs.ok() ? *rs : nullptr;
                     }
                   });
    loop_.Run();
    EXPECT_GE(t_done, 0) << "query never completed: " << sql;
    return t_done - t0;
  }

  db::Database db_;
  sim::EventLoop loop_;
  cache::KvCache cache_;
};

TEST_F(MiddlewareTest, ReadThroughCachesResult) {
  auto remote = MakeRemote();
  CachingMiddleware mw(&loop_, remote.get(), &cache_, ApolloConfig());
  common::ResultSetPtr rs;
  auto first = RunQuery(mw, 0, "SELECT C_UNAME FROM CUSTOMER WHERE C_ID = 7",
                        &rs);
  ASSERT_TRUE(rs != nullptr);
  EXPECT_EQ(rs->At(0, 0).AsString(), "user7");
  EXPECT_GE(first, kRtt);

  auto second = RunQuery(mw, 0,
                         "SELECT C_UNAME FROM CUSTOMER WHERE C_ID = 7", &rs);
  EXPECT_LT(second, util::Millis(5));  // served from the edge cache
  EXPECT_EQ(rs->At(0, 0).AsString(), "user7");
  EXPECT_EQ(mw.stats().cache_hits, 1u);
}

TEST_F(MiddlewareTest, WhitespaceVariantsShareCacheEntries) {
  auto remote = MakeRemote();
  CachingMiddleware mw(&loop_, remote.get(), &cache_, ApolloConfig());
  RunQuery(mw, 0, "SELECT C_UNAME FROM CUSTOMER WHERE C_ID = 7");
  auto t = RunQuery(mw, 0,
                    "select   c_uname from customer where c_id=7");
  EXPECT_LT(t, util::Millis(5));  // canonicalization shares the entry
}

TEST_F(MiddlewareTest, OwnWriteInvalidatesOwnSessionOnly) {
  auto remote = MakeRemote();
  CachingMiddleware mw(&loop_, remote.get(), &cache_, ApolloConfig());
  const std::string q = "SELECT C_UNAME FROM CUSTOMER WHERE C_ID = 7";
  RunQuery(mw, /*client=*/0, q);
  RunQuery(mw, /*client=*/1, q);  // hit: shared cache
  EXPECT_EQ(mw.stats().cache_hits, 1u);

  // Client 0 writes CUSTOMER: its session floor rises past the entry.
  RunQuery(mw, 0,
           "UPDATE CUSTOMER SET C_UNAME = 'renamed7' WHERE C_ID = 7");
  common::ResultSetPtr rs;
  auto t0 = RunQuery(mw, 0, q, &rs);
  EXPECT_GE(t0, kRtt);  // forced back to the database
  EXPECT_EQ(rs->At(0, 0).AsString(), "renamed7");

  // Client 1 never observed the write; the old entry stays usable for it
  // (session consistency, paper 3.2) — but the refreshed entry also
  // qualifies; either way it's a local hit.
  auto t1 = RunQuery(mw, 1, q, &rs);
  EXPECT_LT(t1, util::Millis(5));
}

TEST_F(MiddlewareTest, PubSubCoalescesConcurrentReads) {
  auto remote = MakeRemote();
  CachingMiddleware mw(&loop_, remote.get(), &cache_, ApolloConfig());
  const std::string q = "SELECT C_UNAME FROM CUSTOMER WHERE C_ID = 3";
  int completions = 0;
  for (int client = 0; client < 5; ++client) {
    mw.SubmitQuery(client, q, [&](util::Result<common::ResultSetPtr> rs) {
      EXPECT_TRUE(rs.ok());
      ++completions;
    });
  }
  loop_.Run();
  EXPECT_EQ(completions, 5);
  EXPECT_EQ(remote->stats().queries, 1u);  // single remote execution
  EXPECT_EQ(mw.stats().coalesced_waits, 4u);
}

TEST_F(MiddlewareTest, PubSubDisabledExecutesIndependently) {
  auto remote = MakeRemote();
  ApolloConfig cfg;
  cfg.enable_pubsub_dedup = false;
  CachingMiddleware mw(&loop_, remote.get(), &cache_, cfg);
  const std::string q = "SELECT C_UNAME FROM CUSTOMER WHERE C_ID = 3";
  for (int client = 0; client < 3; ++client) {
    mw.SubmitQuery(client, q, [](auto) {});
  }
  loop_.Run();
  EXPECT_EQ(remote->stats().queries, 3u);
}

TEST_F(MiddlewareTest, ParseErrorsPropagate) {
  auto remote = MakeRemote();
  CachingMiddleware mw(&loop_, remote.get(), &cache_, ApolloConfig());
  bool got_error = false;
  mw.SubmitQuery(0, "SELEC nonsense", [&](auto rs) {
    got_error = !rs.ok();
  });
  loop_.Run();
  EXPECT_TRUE(got_error);
  EXPECT_EQ(mw.stats().parse_errors, 1u);
}

// The quickstart pattern: login -> two sibling dependents. After the
// verification period Apollo prefetches both siblings in parallel, so the
// second one is a sub-millisecond cache hit.
class ApolloPipelineTest : public MiddlewareTest {
 protected:
  void RunRound(ApolloMiddleware& mw, int c, util::SimDuration* latest_rt,
                util::SimDuration* count_rt) {
    std::string suffix = std::to_string(c);
    RunQuery(mw, 0,
             "SELECT C_ID FROM CUSTOMER WHERE C_UNAME = 'user" + suffix +
                 "'");
    auto t1 = RunQuery(
        mw, 0, "SELECT MAX(O_ID) AS O_ID FROM ORDERS WHERE O_C_ID = " +
                   suffix);
    auto t2 = RunQuery(
        mw, 0, "SELECT COUNT(*) AS N FROM ORDERS WHERE O_C_ID = " + suffix);
    if (latest_rt != nullptr) *latest_rt = t1;
    if (count_rt != nullptr) *count_rt = t2;
    // Space rounds out so queued prediction work drains.
    loop_.RunUntil(loop_.now() + util::Seconds(2));
  }
};

TEST_F(ApolloPipelineTest, SiblingPredictionBecomesCacheHit) {
  auto remote = MakeRemote();
  ApolloMiddleware mw(&loop_, remote.get(), &cache_, FastLearningConfig());
  util::SimDuration latest = 0;
  util::SimDuration count = 0;
  for (int c = 1; c <= 5; ++c) RunRound(mw, c, &latest, &count);
  // Round 5 uses a never-before-seen parameter; only template-level
  // learning can prefetch it.
  EXPECT_LT(count, util::Millis(5));
  EXPECT_GT(mw.stats().predictions_issued, 0u);
  EXPECT_GE(mw.stats().fdqs_discovered, 2u);
  EXPECT_EQ(mw.stats().fdqs_invalidated, 0u);
}

TEST_F(ApolloPipelineTest, PredictionDisabledBehavesLikeMemcached) {
  auto remote = MakeRemote();
  ApolloConfig cfg = FastLearningConfig();
  cfg.enable_prediction = false;
  ApolloMiddleware mw(&loop_, remote.get(), &cache_, cfg);
  util::SimDuration count = 0;
  for (int c = 1; c <= 5; ++c) RunRound(mw, c, nullptr, &count);
  EXPECT_GE(count, kRtt);  // never predicted
  EXPECT_EQ(mw.stats().predictions_issued, 0u);
  EXPECT_EQ(mw.name(), "memcached");
}

TEST_F(ApolloPipelineTest, SubscribedClientStillLearns) {
  auto remote = MakeRemote();
  ApolloMiddleware mw(&loop_, remote.get(), &cache_, FastLearningConfig());
  for (int c = 1; c <= 5; ++c) RunRound(mw, c, nullptr, nullptr);
  // Serial-chain predictions coalesce with the client's own queries via
  // pub-sub instead of racing them to the database.
  EXPECT_GT(mw.stats().coalesced_waits + mw.stats().cache_hits, 0u);
}

TEST_F(ApolloPipelineTest, AdqDiscoveredAndReloadedAfterWrite) {
  auto remote = MakeRemote();
  ApolloConfig cfg = FastLearningConfig();
  ApolloMiddleware mw(&loop_, remote.get(), &cache_, cfg);
  // A parameterless aggregate is an ADQ (paper Section 2.4).
  const std::string adq = "SELECT COUNT(*) AS N FROM ORDERS";
  RunQuery(mw, 0, adq);
  RunQuery(mw, 0, adq);
  ASSERT_GE(mw.dependency_graph().Adqs().size(), 1u);

  // A write to ORDERS triggers informed reload; afterwards the client
  // reads the refreshed count from the cache.
  RunQuery(mw, 0,
           "INSERT INTO ORDERS (O_ID, O_C_ID, O_TOTAL) VALUES (5000, 1, "
           "1.0)");
  loop_.RunUntil(loop_.now() + util::Seconds(2));
  EXPECT_GE(mw.stats().adq_reloads, 1u);
  common::ResultSetPtr rs;
  auto t = RunQuery(mw, 0, adq, &rs);
  EXPECT_LT(t, util::Millis(5));
  EXPECT_EQ(rs->At(0, 0).AsInt(), 51);  // fresh value, not the stale 50
}

TEST_F(ApolloPipelineTest, AdqReloadDisabledLeavesStaleMiss) {
  auto remote = MakeRemote();
  ApolloConfig cfg = FastLearningConfig();
  cfg.enable_adq_reload = false;
  ApolloMiddleware mw(&loop_, remote.get(), &cache_, cfg);
  const std::string adq = "SELECT COUNT(*) AS N FROM ORDERS";
  RunQuery(mw, 0, adq);
  RunQuery(mw, 0, adq);
  RunQuery(mw, 0,
           "INSERT INTO ORDERS (O_ID, O_C_ID, O_TOTAL) VALUES (5000, 1, "
           "1.0)");
  loop_.RunUntil(loop_.now() + util::Seconds(2));
  EXPECT_EQ(mw.stats().adq_reloads, 0u);
  auto t = RunQuery(mw, 0, adq);
  EXPECT_GE(t, kRtt);  // stale entry unusable, no reload happened
}

TEST_F(ApolloPipelineTest, HighAlphaSuppressesReloads) {
  auto remote = MakeRemote();
  ApolloConfig cfg = FastLearningConfig();
  cfg.alpha = 1e9;  // nothing is valuable enough
  ApolloMiddleware mw(&loop_, remote.get(), &cache_, cfg);
  const std::string adq = "SELECT COUNT(*) AS N FROM ORDERS";
  RunQuery(mw, 0, adq);
  RunQuery(mw, 0, adq);
  RunQuery(mw, 0,
           "INSERT INTO ORDERS (O_ID, O_C_ID, O_TOTAL) VALUES (5000, 1, "
           "1.0)");
  loop_.RunUntil(loop_.now() + util::Seconds(2));
  EXPECT_EQ(mw.stats().adq_reloads, 0u);
}

TEST_F(ApolloPipelineTest, MappingDisproofInvalidatesFdq) {
  auto remote = MakeRemote();
  ApolloConfig cfg = FastLearningConfig();
  ApolloMiddleware mw(&loop_, remote.get(), &cache_, cfg);
  // Establish a mapping login(c) -> orders(c) over the verification
  // period, then break it by querying orders for an unrelated customer.
  for (int c = 1; c <= 3; ++c) {
    RunQuery(mw, 0,
             "SELECT C_ID FROM CUSTOMER WHERE C_UNAME = 'user" +
                 std::to_string(c) + "'");
    RunQuery(mw, 0,
             "SELECT MAX(O_ID) AS O_ID FROM ORDERS WHERE O_C_ID = " +
                 std::to_string(c));
    loop_.RunUntil(loop_.now() + util::Seconds(2));
  }
  EXPECT_GE(mw.stats().fdqs_discovered, 1u);
  // Break the correlation persistently: login userX but ask for an
  // unrelated customer's orders. A single mismatch is tolerated (it may be
  // a stale attribution); repeated contradiction disproves the mapping.
  for (int i = 0; i < 8; ++i) {
    RunQuery(mw, 0, "SELECT C_ID FROM CUSTOMER WHERE C_UNAME = 'user" +
                        std::to_string(4 + i) + "'");
    RunQuery(mw, 0, "SELECT MAX(O_ID) AS O_ID FROM ORDERS WHERE O_C_ID = " +
                        std::to_string(40 - i));
    loop_.RunUntil(loop_.now() + util::Seconds(2));
  }
  EXPECT_GE(mw.stats().fdqs_invalidated, 1u);
  // Invalidated FDQs are never predicted again (paper footnote 1).
  auto before = mw.stats().predictions_issued;
  RunQuery(mw, 0, "SELECT C_ID FROM CUSTOMER WHERE C_UNAME = 'user5'");
  loop_.RunUntil(loop_.now() + util::Seconds(2));
  EXPECT_EQ(mw.stats().predictions_issued, before);
}

TEST_F(MiddlewareTest, FidoPredictsTrainedInstances) {
  auto remote = MakeRemote();
  fido::FidoMiddleware mw(&loop_, remote.get(), &cache_, ApolloConfig());
  const std::string a = "SELECT C_UNAME FROM CUSTOMER WHERE C_ID = 1";
  const std::string b = "SELECT O_TOTAL FROM ORDERS WHERE O_C_ID = 1";
  const std::string c = "SELECT O_TOTAL FROM ORDERS WHERE O_C_ID = 2";
  mw.Train({{a, b, a, b, a, b}});
  EXPECT_GT(mw.num_patterns(), 0u);

  // Seeing `a` triggers a prefetch of the trained `b` instance.
  RunQuery(mw, 0, a);
  loop_.RunUntil(loop_.now() + util::Seconds(1));
  EXPECT_EQ(mw.stats().predictions_issued, 1u);
  auto t = RunQuery(mw, 0, b);
  EXPECT_LT(t, util::Millis(5));

  // But an unseen *instance* of the same template gets no help — the
  // limitation the paper contrasts with Apollo.
  auto t2 = RunQuery(mw, 0, c);
  EXPECT_GE(t2, kRtt);
}

TEST_F(MiddlewareTest, FidoUntrainedMakesNoPredictions) {
  auto remote = MakeRemote();
  fido::FidoMiddleware mw(&loop_, remote.get(), &cache_, ApolloConfig());
  RunQuery(mw, 0, "SELECT C_UNAME FROM CUSTOMER WHERE C_ID = 1");
  RunQuery(mw, 0, "SELECT O_TOTAL FROM ORDERS WHERE O_C_ID = 1");
  EXPECT_EQ(mw.stats().predictions_issued, 0u);
}

TEST_F(MiddlewareTest, EngineStationQueuesUnderLoad) {
  auto remote = MakeRemote();
  ApolloConfig cfg;
  cfg.engine_servers = 1;
  cfg.engine_overhead_per_query = util::Millis(5);
  CachingMiddleware mw(&loop_, remote.get(), &cache_, cfg);
  // 4 concurrent queries through a single 5 ms-per-query core: the last
  // one waits 15 ms in the engine queue.
  std::vector<util::SimTime> done;
  for (int i = 0; i < 4; ++i) {
    mw.SubmitQuery(i, "SELECT C_UNAME FROM CUSTOMER WHERE C_ID = " +
                          std::to_string(i + 1),
                   [&](auto) { done.push_back(loop_.now()); });
  }
  loop_.Run();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_GE(done.back() - done.front(), util::Millis(15) - util::Millis(1));
}

}  // namespace
}  // namespace apollo::core
