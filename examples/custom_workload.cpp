// Custom workload walkthrough: how a downstream user plugs their own
// application into the harness. Models a tiny IoT fleet dashboard:
// each dashboard session looks up a device, then fetches its latest
// reading and its alert count — two queries fully determined by the
// first one's output, which Apollo learns to prefetch.
//
// Run: ./build/examples/custom_workload
#include <cstdio>

#include "workload/driver.h"
#include "workload/workload.h"

using namespace apollo;

namespace {

class FleetWorkload : public workload::Workload {
 public:
  std::string name() const override { return "fleet"; }

  util::Status Setup(db::Database* db) override {
    using common::Value;
    using common::ValueType;
    db::Schema devices("DEVICES", {{"DEV_ID", ValueType::kInt},
                                   {"DEV_NAME", ValueType::kString},
                                   {"SITE_ID", ValueType::kInt}});
    devices.AddIndex("PRIMARY", {"DEV_ID"});
    devices.AddIndex("NAME", {"DEV_NAME"});
    APOLLO_RETURN_NOT_OK(db->CreateTable(std::move(devices)));

    db::Schema readings("READINGS", {{"R_DEV_ID", ValueType::kInt},
                                     {"R_TS", ValueType::kInt},
                                     {"R_VALUE", ValueType::kDouble}});
    readings.AddIndex("DEV", {"R_DEV_ID"});
    APOLLO_RETURN_NOT_OK(db->CreateTable(std::move(readings)));

    db::Schema alerts("ALERTS", {{"AL_DEV_ID", ValueType::kInt},
                                 {"AL_SEVERITY", ValueType::kInt}});
    alerts.AddIndex("DEV", {"AL_DEV_ID"});
    APOLLO_RETURN_NOT_OK(db->CreateTable(std::move(alerts)));

    util::Rng rng(4);
    db::Table* dev = db->GetTable("DEVICES");
    db::Table* rd = db->GetTable("READINGS");
    db::Table* al = db->GetTable("ALERTS");
    for (int d = 1; d <= kDevices; ++d) {
      APOLLO_RETURN_NOT_OK(
          dev->Insert({Value::Int(d), Value::Str("dev-" + std::to_string(d)),
                       Value::Int(rng.UniformInt(1, 20))}));
      for (int r = 0; r < 20; ++r) {
        APOLLO_RETURN_NOT_OK(rd->Insert(
            {Value::Int(d), Value::Int(r),
             Value::Double(20.0 + rng.UniformInt(0, 100) / 10.0)}));
      }
      if (d % 3 == 0) {
        APOLLO_RETURN_NOT_OK(al->Insert(
            {Value::Int(d), Value::Int(rng.UniformInt(1, 3))}));
      }
    }
    return util::Status::OK();
  }

  std::unique_ptr<workload::WorkloadClient> MakeClient(
      int index, uint64_t seed) override;

  static constexpr int kDevices = 500;
};

class DashboardSession : public workload::WorkloadClient {
 public:
  explicit DashboardSession(uint64_t seed) : rng_(seed) {}

  double MeanThinkSeconds() const override { return 4.0; }

  void RunInteraction(workload::ClientContext& ctx,
                      std::function<void()> done) override {
    int dev = static_cast<int>(
        rng_.UniformInt(1, FleetWorkload::kDevices));
    // 1. Resolve the device by name (parameters are user input).
    ctx.Query(
        "SELECT DEV_ID, DEV_NAME, SITE_ID FROM DEVICES WHERE DEV_NAME = "
        "'dev-" + std::to_string(dev) + "'",
        [this, &ctx, done = std::move(done)](common::ResultSetPtr rs) {
          if (!rs || rs->empty()) return done();
          int64_t id = rs->At(0, 0).AsInt();
          // 2+3. Both panels depend only on the lookup's output — Apollo
          // prefetches them in parallel while we fetch the first.
          ctx.Query(
              "SELECT MAX(R_TS) AS LATEST FROM READINGS WHERE R_DEV_ID = " +
                  std::to_string(id),
              [this, &ctx, id, done](common::ResultSetPtr) {
                ctx.Query(
                    "SELECT COUNT(*) AS ALERTS FROM ALERTS WHERE AL_DEV_ID "
                    "= " + std::to_string(id),
                    [done](common::ResultSetPtr) { done(); });
              });
        });
  }

 private:
  util::Rng rng_;
};

std::unique_ptr<workload::WorkloadClient> FleetWorkload::MakeClient(
    int index, uint64_t seed) {
  return std::make_unique<DashboardSession>(seed +
                                            static_cast<uint64_t>(index));
}

}  // namespace

int main() {
  std::printf("Custom workload: IoT fleet dashboard, 20 sessions, "
              "6 simulated minutes\n\n");
  for (auto system : {workload::SystemType::kMemcached,
                      workload::SystemType::kApollo}) {
    FleetWorkload fleet;
    workload::RunConfig cfg;
    cfg.system = system;
    cfg.num_clients = 20;
    cfg.duration = util::Minutes(6);
    cfg.remote.rtt = sim::LatencyModel::Constant(util::Millis(50));
    cfg.seed = 3;
    auto r = workload::RunExperiment(fleet, cfg);
    std::printf("%-10s mean=%6.2f ms  p95=%7.2f ms  hit-rate=%4.1f%%  "
                "predictions=%llu\n",
                r.system_name.c_str(), r.MeanMs(), r.PercentileMs(95),
                100.0 * r.cache_stats.HitRate(),
                static_cast<unsigned long long>(r.mw.predictions_issued));
  }
  return 0;
}
