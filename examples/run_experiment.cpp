// run_experiment: command-line experiment runner — compose any paper-style
// experiment without writing code.
//
//   ./build/examples/run_experiment --workload tpcc --system apollo \
//       --clients 100 --minutes 10 --rtt-ms 70 --instances 1 \
//       --tau 0.01 --dt-s 15 --alpha 0
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "workload/driver.h"
#include "workload/tpcc.h"
#include "workload/tpcw.h"

using namespace apollo;

namespace {

struct Args {
  std::string workload = "tpcw";
  std::string system = "apollo";
  int clients = 30;
  double minutes = 10;
  double rtt_ms = 70;
  int instances = 1;
  double tau = 0.01;
  double dt_s = 15;
  double alpha = 0;
  uint64_t seed = 42;
  bool timeline = false;
  double cache_mb = 0;  // 0 = 5% of DB
  bool no_freshness = false;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--workload") {
      args->workload = next();
    } else if (flag == "--system") {
      args->system = next();
    } else if (flag == "--clients") {
      args->clients = std::atoi(next());
    } else if (flag == "--minutes") {
      args->minutes = std::atof(next());
    } else if (flag == "--rtt-ms") {
      args->rtt_ms = std::atof(next());
    } else if (flag == "--instances") {
      args->instances = std::atoi(next());
    } else if (flag == "--tau") {
      args->tau = std::atof(next());
    } else if (flag == "--dt-s") {
      args->dt_s = std::atof(next());
    } else if (flag == "--alpha") {
      args->alpha = std::atof(next());
    } else if (flag == "--seed") {
      args->seed = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--timeline") {
      args->timeline = true;
    } else if (flag == "--cache-mb") {
      args->cache_mb = std::atof(next());
    } else if (flag == "--no-freshness") {
      args->no_freshness = true;
    } else if (flag == "--help") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    std::printf(
        "usage: run_experiment [--workload tpcw|tpcc] "
        "[--system apollo|memcached|fido] [--clients N] [--minutes M]\n"
        "                      [--rtt-ms X] [--instances K] [--tau T] "
        "[--dt-s D] [--alpha A] [--seed S] [--timeline]\n");
    return 1;
  }

  workload::RunConfig cfg;
  if (args.system == "apollo") {
    cfg.system = workload::SystemType::kApollo;
  } else if (args.system == "memcached") {
    cfg.system = workload::SystemType::kMemcached;
    cfg.warmup = cfg.duration;  // warmed cache, as in the paper
  } else if (args.system == "fido") {
    cfg.system = workload::SystemType::kFido;
  } else {
    std::fprintf(stderr, "unknown system %s\n", args.system.c_str());
    return 1;
  }
  cfg.num_clients = args.clients;
  cfg.duration = util::Minutes(args.minutes);
  cfg.remote.rtt =
      sim::LatencyModel::LogNormal(util::Millis(args.rtt_ms), 0.05);
  cfg.num_instances = args.instances;
  cfg.apollo.tau = args.tau;
  cfg.apollo.alpha = args.alpha;
  cfg.apollo.delta_ts = {util::Seconds(1),
                         util::Seconds(args.dt_s / 3.0),
                         util::Seconds(args.dt_s)};
  cfg.seed = args.seed;
  cfg.bucket_width = util::Minutes(1);
  if (args.cache_mb > 0) {
    cfg.cache_bytes = static_cast<size_t>(args.cache_mb * (1 << 20));
  }
  if (args.no_freshness) cfg.apollo.enable_freshness_check = false;

  workload::RunResult r;
  if (args.workload == "tpcw") {
    workload::TpcwWorkload w;
    r = workload::RunExperiment(w, cfg);
  } else if (args.workload == "tpcc") {
    workload::TpccWorkload w;
    r = workload::RunExperiment(w, cfg);
  } else {
    std::fprintf(stderr, "unknown workload %s\n", args.workload.c_str());
    return 1;
  }

  std::printf("%s on %s, %d clients, %.0f sim-min, rtt %.0f ms\n",
              r.system_name.c_str(), args.workload.c_str(), r.num_clients,
              args.minutes, args.rtt_ms);
  std::printf("  mean %.2f ms | p50 %.2f | p95 %.2f | p97 %.2f | p99 %.2f\n",
              r.MeanMs(), r.PercentileMs(50), r.PercentileMs(95),
              r.PercentileMs(97), r.PercentileMs(99));
  std::printf("  queries %llu | hit-rate %.1f%% | coalesced %llu | "
              "evictions %llu | errors %llu\n",
              static_cast<unsigned long long>(r.mw.queries),
              100.0 * r.cache_stats.HitRate(),
              static_cast<unsigned long long>(r.mw.coalesced_waits),
              static_cast<unsigned long long>(r.cache_stats.evictions),
              static_cast<unsigned long long>(r.mw.parse_errors));
  std::printf("  predictions %llu (skipped: cached %llu, inflight %llu, "
              "fresh %llu) | FDQs %llu (%llu invalidated) | ADQ reloads "
              "%llu\n",
              static_cast<unsigned long long>(r.mw.predictions_issued),
              static_cast<unsigned long long>(r.mw.predictions_skipped_cached),
              static_cast<unsigned long long>(
                  r.mw.predictions_skipped_inflight),
              static_cast<unsigned long long>(r.mw.predictions_skipped_fresh),
              static_cast<unsigned long long>(r.mw.fdqs_discovered),
              static_cast<unsigned long long>(r.mw.fdqs_invalidated),
              static_cast<unsigned long long>(r.mw.adq_reloads));
  std::printf("  remote queries %llu (%llu predictive) | db bytes %.1f MiB "
              "| cache %.1f MiB | learning state %.2f MiB\n",
              static_cast<unsigned long long>(r.remote.queries),
              static_cast<unsigned long long>(r.remote.predictive_queries),
              static_cast<double>(r.db_bytes) / (1 << 20),
              static_cast<double>(r.cache_capacity) / (1 << 20),
              static_cast<double>(r.learning_bytes) / (1 << 20));
  if (args.timeline) {
    std::printf("  timeline:");
    for (const auto& p : r.metrics->Timeline()) {
      std::printf(" [%.0fm]%.1f", p.minute, p.mean_ms);
    }
    std::printf(" (mean ms per minute)\n");
  }
  return 0;
}
