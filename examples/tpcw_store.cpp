// TPC-W bookstore demo: run the full emulated-browser workload through
// Apollo and through a plain Memcached-style cache, side by side, on a
// small bookstore database — the paper's headline comparison in miniature.
//
// Run: ./build/examples/tpcw_store [num_clients] [minutes]
#include <cstdio>
#include <cstdlib>

#include "workload/driver.h"
#include "workload/tpcw.h"

using namespace apollo;

int main(int argc, char** argv) {
  int clients = argc > 1 ? std::atoi(argv[1]) : 30;
  double minutes = argc > 2 ? std::atof(argv[2]) : 10.0;

  std::printf("TPC-W bookstore, %d clients, %.0f simulated minutes, "
              "70 ms WAN to the database\n\n",
              clients, minutes);

  for (auto system : {workload::SystemType::kMemcached,
                      workload::SystemType::kApollo}) {
    workload::TpcwConfig wcfg;
    wcfg.num_items = 5000;
    wcfg.num_customers = 5000;
    wcfg.num_orders = 4500;
    workload::TpcwWorkload tpcw(wcfg);

    workload::RunConfig cfg;
    cfg.system = system;
    cfg.num_clients = clients;
    cfg.duration = util::Minutes(minutes);
    cfg.remote.rtt = sim::LatencyModel::LogNormal(util::Millis(70), 0.05);
    cfg.seed = 7;
    auto r = workload::RunExperiment(tpcw, cfg);

    std::printf("%-10s mean=%6.2f ms  p50=%6.2f  p95=%7.2f  p99=%7.2f  "
                "hit-rate=%4.1f%%\n",
                r.system_name.c_str(), r.MeanMs(), r.PercentileMs(50),
                r.PercentileMs(95), r.PercentileMs(99),
                100.0 * r.cache_stats.HitRate());
    if (system == workload::SystemType::kApollo) {
      std::printf("           predictions=%llu (skipped: cached=%llu, "
                  "in-flight=%llu), FDQs=%llu, ADQ reloads=%llu\n",
                  static_cast<unsigned long long>(r.mw.predictions_issued),
                  static_cast<unsigned long long>(
                      r.mw.predictions_skipped_cached),
                  static_cast<unsigned long long>(
                      r.mw.predictions_skipped_inflight),
                  static_cast<unsigned long long>(r.mw.fdqs_discovered),
                  static_cast<unsigned long long>(r.mw.adq_reloads));
    }
  }
  return 0;
}
