// Quickstart: stand up the full Apollo stack on a toy schema and watch the
// framework learn a query correlation, then serve the dependent query from
// the predictively-populated cache.
//
// Run: ./build/examples/quickstart
#include <cstdio>

#include "cache/kv_cache.h"
#include "core/apollo_middleware.h"
#include "db/database.h"
#include "net/remote_database.h"
#include "sim/event_loop.h"

using namespace apollo;

int main() {
  // 1. A "remote" database: two tables with a natural login -> orders
  //    correlation, behind 70 ms of simulated WAN round trip.
  db::Database db;
  {
    db::Schema customer("CUSTOMER", {{"C_ID", common::ValueType::kInt},
                                     {"C_UNAME", common::ValueType::kString}});
    customer.AddIndex("PRIMARY", {"C_ID"});
    customer.AddIndex("UNAME", {"C_UNAME"});
    db.CreateTable(std::move(customer));
    db::Schema orders("ORDERS", {{"O_ID", common::ValueType::kInt},
                                 {"O_C_ID", common::ValueType::kInt},
                                 {"O_TOTAL", common::ValueType::kDouble}});
    orders.AddIndex("PRIMARY", {"O_ID"});
    orders.AddIndex("CUST", {"O_C_ID"});
    db.CreateTable(std::move(orders));
    for (int c = 1; c <= 100; ++c) {
      db.Execute("INSERT INTO CUSTOMER (C_ID, C_UNAME) VALUES (" +
                 std::to_string(c) + ", 'user" + std::to_string(c) + "')");
      db.Execute("INSERT INTO ORDERS (O_ID, O_C_ID, O_TOTAL) VALUES (" +
                 std::to_string(1000 + c) + ", " + std::to_string(c) +
                 ", 42.5)");
    }
  }

  sim::EventLoop loop;
  net::RemoteDbConfig remote_cfg;
  remote_cfg.rtt = sim::LatencyModel::Constant(util::Millis(70));
  net::RemoteDatabase remote(&loop, &db, remote_cfg);

  // 2. The edge node: a 1 MiB result cache plus the Apollo engine.
  cache::KvCache cache(1 << 20);
  core::ApolloConfig config;
  config.verification_period = 2;
  core::ApolloMiddleware apollo_mw(&loop, &remote, &cache, config);

  // 3. A client that repeatedly logs in, checks its latest order, then its
  //    order count — the paper's Figure 2 pattern. Both follow-up queries
  //    depend on the login's output, so once the verification period
  //    passes, Apollo prefetches them in parallel the moment the login
  //    result lands: while the client waits one WAN round trip for the
  //    first follow-up, the second is already cached.
  int round = 0;
  std::function<void()> run_round = [&]() {
    ++round;
    int c = round;  // a different customer each time: templates match,
                    // parameters do not — exactly what Apollo generalizes.
    std::string login = "SELECT C_ID FROM CUSTOMER WHERE C_UNAME = 'user" +
                        std::to_string(c) + "'";
    util::SimTime t0 = loop.now();
    apollo_mw.SubmitQuery(0, login, [&, c, t0](auto login_result) {
      std::printf("round %2d | login        -> %6.1f ms\n", round,
                  util::ToMillis(loop.now() - t0));
      if (!login_result.ok()) return;
      std::string latest = "SELECT MAX(O_ID) AS O_ID FROM ORDERS WHERE "
                           "O_C_ID = " + std::to_string(c);
      util::SimTime t1 = loop.now();
      apollo_mw.SubmitQuery(0, latest, [&, c, t1](auto) {
        std::printf("round %2d | latest order -> %6.1f ms\n", round,
                    util::ToMillis(loop.now() - t1));
        std::string count = "SELECT COUNT(*) AS N FROM ORDERS WHERE "
                            "O_C_ID = " + std::to_string(c);
        util::SimTime t2 = loop.now();
        apollo_mw.SubmitQuery(0, count, [&, t2](auto) {
          double ms = util::ToMillis(loop.now() - t2);
          std::printf("round %2d | order count  -> %6.1f ms%s\n", round, ms,
                      ms < 5 ? "   <- predictively cached!" : "");
          if (round < 8) {
            loop.After(util::Seconds(2), run_round);
          }
        });
      });
    });
  };
  run_round();
  loop.Run();

  auto stats = apollo_mw.stats();
  std::printf(
      "\npredictions issued: %llu, cache hits: %llu / %llu reads, "
      "FDQs discovered: %llu\n",
      static_cast<unsigned long long>(stats.predictions_issued),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.reads),
      static_cast<unsigned long long>(stats.fdqs_discovered));
  std::printf(
      "skips: cached=%llu inflight=%llu fresh=%llu invalid=%llu, "
      "fdqs invalidated: %llu\n",
      static_cast<unsigned long long>(stats.predictions_skipped_cached),
      static_cast<unsigned long long>(stats.predictions_skipped_inflight),
      static_cast<unsigned long long>(stats.predictions_skipped_fresh),
      static_cast<unsigned long long>(stats.predictions_skipped_invalid),
      static_cast<unsigned long long>(stats.fdqs_invalidated));
  return 0;
}
