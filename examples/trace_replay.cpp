// Trace capture & replay: record the exact query stream of a TPC-W run,
// save it to disk, then replay the identical stream against Apollo and
// against a passive cache — removing workload randomness from the
// comparison entirely.
//
// Run: ./build/examples/trace_replay [trace_path]
#include <cstdio>

#include "core/apollo_middleware.h"
#include "workload/client_driver.h"
#include "workload/tpcw.h"
#include "workload/trace.h"

using namespace apollo;

namespace {

workload::TpcwConfig SmallTpcw() {
  workload::TpcwConfig cfg;
  cfg.num_items = 2000;
  cfg.num_customers = 1500;
  cfg.num_authors = 500;
  cfg.num_orders = 1350;
  return cfg;
}

std::unique_ptr<net::RemoteDatabase> MakeRemote(sim::EventLoop* loop,
                                                db::Database* db) {
  net::RemoteDbConfig cfg;
  cfg.rtt = sim::LatencyModel::Constant(util::Millis(60));
  return std::make_unique<net::RemoteDatabase>(loop, db, cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/apollo_tpcw.trace";

  // ---- Phase 1: record a 5-minute, 10-client TPC-W run ----
  workload::Trace trace;
  {
    db::Database db;
    workload::TpcwWorkload tpcw(SmallTpcw());
    if (!tpcw.Setup(&db).ok()) return 1;
    sim::EventLoop loop;
    auto remote = MakeRemote(&loop, &db);
    cache::KvCache cache(8 << 20);
    core::CachingMiddleware inner(&loop, remote.get(), &cache,
                                  core::ApolloConfig());
    workload::TraceRecorder recorder(&loop, &inner);
    std::vector<std::unique_ptr<workload::ClientDriver>> drivers;
    for (int i = 0; i < 10; ++i) {
      drivers.push_back(std::make_unique<workload::ClientDriver>(
          &loop, &recorder, i, tpcw.MakeClient(i, 900 + i), 1000 + i));
      drivers.back()->Start(util::Minutes(5));
    }
    loop.RunUntil(util::Minutes(6));
    trace = recorder.TakeTrace();
    if (!workload::SaveTrace(trace, path).ok()) return 1;
    std::printf("recorded %zu queries from 10 clients into %s\n",
                trace.size(), path.c_str());
  }

  // ---- Phase 2: replay the identical stream against both systems ----
  auto loaded = workload::LoadTrace(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  for (bool predictive : {false, true}) {
    db::Database db;
    workload::TpcwWorkload tpcw(SmallTpcw());
    if (!tpcw.Setup(&db).ok()) return 1;
    sim::EventLoop loop;
    auto remote = MakeRemote(&loop, &db);
    cache::KvCache cache(8 << 20);
    core::ApolloConfig cfg;
    cfg.enable_prediction = predictive;
    core::ApolloMiddleware mw(&loop, remote.get(), &cache, cfg);
    workload::RunMetrics metrics(0, util::Minutes(1));
    workload::ReplayTrace(&loop, &mw, *loaded, &metrics, /*start=*/0);
    loop.Run();
    std::printf(
        "%-10s replay: mean %6.2f ms | p95 %7.2f ms | hit-rate %4.1f%% | "
        "predictions %llu\n",
        mw.name().c_str(), metrics.MeanMs(), metrics.PercentileMs(95),
        100.0 * cache.stats().HitRate(),
        static_cast<unsigned long long>(mw.stats().predictions_issued));
  }
  return 0;
}
