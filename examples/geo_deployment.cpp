// Geo-deployment explorer: the same TPC-C terminal workload with the
// database deployed at three distances from the edge node (paper Section
// 4.5). Shows how Apollo's advantage changes with WAN latency — both the
// absolute savings (largest when remote) and the relative reduction
// (largest when local).
//
// Run: ./build/examples/geo_deployment
#include <cstdio>

#include "workload/driver.h"
#include "workload/tpcc.h"

using namespace apollo;

int main() {
  struct Region {
    const char* name;
    util::SimDuration median_rtt;
  };
  const Region regions[] = {
      {"same region   (~3 ms)", util::Millis(3)},
      {"nearby region (~20 ms)", util::Millis(20)},
      {"cross-country (~70 ms)", util::Millis(70)},
  };

  std::printf("TPC-C (read-heavy mix), 40 terminals, 8 simulated minutes\n");
  for (const auto& region : regions) {
    std::printf("\ndatabase %s\n", region.name);
    double means[2] = {0, 0};
    int idx = 0;
    for (auto system : {workload::SystemType::kMemcached,
                        workload::SystemType::kApollo}) {
      workload::TpccConfig ccfg;
      ccfg.num_warehouses = 8;
      workload::TpccWorkload tpcc(ccfg);

      workload::RunConfig cfg;
      cfg.system = system;
      cfg.num_clients = 40;
      cfg.duration = util::Minutes(8);
      cfg.remote.rtt = sim::LatencyModel::LogNormal(region.median_rtt, 0.08);
      cfg.seed = 21;
      auto r = workload::RunExperiment(tpcc, cfg);
      means[idx++] = r.MeanMs();
      std::printf("  %-10s mean=%7.2f ms  p95=%8.2f ms  hit-rate=%4.1f%%\n",
                  r.system_name.c_str(), r.MeanMs(), r.PercentileMs(95),
                  100.0 * r.cache_stats.HitRate());
    }
    std::printf("  -> apollo reduces mean response time by %.0f%% "
                "(%.2f ms saved per query)\n",
                100.0 * (1.0 - means[1] / means[0]), means[0] - means[1]);
  }
  return 0;
}
