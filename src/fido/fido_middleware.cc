#include "fido/fido_middleware.h"

#include <algorithm>

#include "util/hash.h"

namespace apollo::fido {

namespace {
uint64_t BigramKey(uint64_t a, uint64_t b) {
  return util::HashCombine(a, b);
}
}  // namespace

void FidoMiddleware::Train(
    const std::vector<std::vector<std::string>>& traces) {
  for (const auto& trace : traces) {
    uint64_t prev1 = 0;
    uint64_t prev2 = 0;
    bool has1 = false;
    bool has2 = false;
    for (const auto& q : trace) {
      uint64_t h = util::Hash64(q);
      if (has1) {
        ++unigram_[prev1].counts[q];
      }
      if (has2) {
        ++bigram_[BigramKey(prev2, prev1)].counts[q];
      }
      prev2 = prev1;
      has2 = has1;
      prev1 = h;
      has1 = true;
    }
  }
  Compact(&unigram_);
  Compact(&bigram_);
}

void FidoMiddleware::Compact(
    std::unordered_map<uint64_t, Continuations>* store) {
  for (auto& [_, cont] : *store) {
    std::vector<std::pair<uint32_t, const std::string*>> ranked;
    ranked.reserve(cont.counts.size());
    for (const auto& [q, n] : cont.counts) ranked.emplace_back(n, &q);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return *a.second < *b.second;  // deterministic tie-break
              });
    cont.ranked.clear();
    for (size_t i = 0;
         i < ranked.size() && i < static_cast<size_t>(max_predictions_);
         ++i) {
      cont.ranked.push_back(*ranked[i].second);
    }
    cont.counts.clear();
  }
}

void FidoMiddleware::PredictFrom(core::ClientSession& session,
                                 const Continuations& continuations) {
  for (const auto& sql : continuations.ranked) {
    PredictiveExecute(session, /*template_id=*/0, sql, /*depth=*/0);
  }
}

void FidoMiddleware::OnQueryCompleted(core::ClientSession& session,
                                      const CompletedQuery& query) {
  auto& hist = history_[session.id];
  uint64_t h = util::Hash64(query.canonical_text);
  hist.push_back(h);
  while (hist.size() > 4) hist.pop_front();

  // Prefer the longer (more specific) prefix match.
  if (hist.size() >= 2) {
    auto it = bigram_.find(BigramKey(hist[hist.size() - 2], hist.back()));
    if (it != bigram_.end() && !it->second.ranked.empty()) {
      PredictFrom(session, it->second);
      return;
    }
  }
  auto it = unigram_.find(hist.back());
  if (it != unigram_.end() && !it->second.ranked.empty()) {
    PredictFrom(session, it->second);
  }
}

size_t FidoMiddleware::LearningStateBytes() const {
  size_t total = sizeof(*this);
  auto add = [&](const std::unordered_map<uint64_t, Continuations>& store) {
    for (const auto& [_, c] : store) {
      total += 32;
      for (const auto& q : c.ranked) total += q.size() + 32;
    }
  };
  add(unigram_);
  add(bigram_);
  return total;
}

}  // namespace apollo::fido
