// FidoMiddleware: the Fido predictive cache baseline (Palmer & Zdonik,
// VLDB'91), as configured in the paper's Section 4.1.
//
// Fido operates on individual query *instances*, not templates: an
// associative memory trained offline on client traces maps a recent-history
// prefix to the query instances that followed it in training. At runtime it
// predicts up to `max_predictions` instances per matched prefix and
// prefetches their results. Because it cannot generalize across parameters,
// it only helps when the exact same parameterized queries recur — the
// behaviour the paper contrasts with Apollo.
#pragma once

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/caching_middleware.h"

namespace apollo::fido {

class FidoMiddleware : public core::CachingMiddleware {
 public:
  FidoMiddleware(sim::EventLoop* loop, net::RemoteDatabase* remote,
                 cache::KvCache* cache, core::ApolloConfig config,
                 int max_predictions = 10,
                 obs::Observability* obs = nullptr,
                 const std::string& metric_prefix = "mw.")
      : core::CachingMiddleware(loop, remote, cache, std::move(config), obs,
                                metric_prefix),
        max_predictions_(max_predictions) {}

  std::string name() const override { return "fido"; }

  /// Offline training on per-client traces of canonical query texts
  /// (the paper trains Fido on traces twice the experiment length).
  void Train(const std::vector<std::vector<std::string>>& traces);

  size_t LearningStateBytes() const override;

  size_t num_patterns() const {
    return unigram_.size() + bigram_.size();
  }

 protected:
  void OnQueryCompleted(core::ClientSession& session,
                        const CompletedQuery& query) override;

 private:
  struct Continuations {
    // query instance -> occurrence count (compacted to a ranked list).
    std::unordered_map<std::string, uint32_t> counts;
    std::vector<std::string> ranked;  // top max_predictions_ after Train
  };

  void Compact(std::unordered_map<uint64_t, Continuations>* store);
  void PredictFrom(core::ClientSession& session,
                   const Continuations& continuations);

  int max_predictions_;
  // prefix hash (last query / last two queries) -> continuations.
  std::unordered_map<uint64_t, Continuations> unigram_;
  std::unordered_map<uint64_t, Continuations> bigram_;
  // Per-client recent instance history (hashes).
  std::unordered_map<core::ClientId, std::deque<uint64_t>> history_;
};

}  // namespace apollo::fido
