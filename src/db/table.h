// Table: row store plus hash indexes for equality lookups.
//
// Rows live in a deque (stable ids); deletes tombstone rows and unlink them
// from indexes. Indexes are hash multimaps keyed by the combined hash of the
// indexed column values, verified on probe.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/result_set.h"
#include "db/schema.h"
#include "util/result.h"

namespace apollo::db {

using RowId = uint32_t;

class Table {
 public:
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }

  /// Number of live rows.
  size_t num_rows() const { return live_count_; }

  /// Appends a row (must match schema arity). Values are coerced to the
  /// column type where loss-free (int <-> double).
  util::Status Insert(common::Row row);

  /// True if the row id is live.
  bool IsLive(RowId id) const { return id < live_.size() && live_[id]; }

  /// Total slots (live + tombstoned); iterate [0, NumSlots()) with IsLive.
  size_t NumSlots() const { return rows_.size(); }

  const common::Row& At(RowId id) const { return rows_[id]; }

  /// Replaces column values of a live row, maintaining indexes.
  void UpdateRow(RowId id, const std::vector<int>& col_indexes,
                 const std::vector<common::Value>& new_values);

  /// Tombstones a live row and removes it from all indexes.
  void DeleteRow(RowId id);

  /// Finds the index (position in schema().indexes()) whose columns are a
  /// subset of `equality_cols`, preferring the most selective (most
  /// columns). Returns -1 if none.
  int FindUsableIndex(const std::vector<int>& equality_cols) const;

  /// Probes index `idx` with the given key values (one per index column, in
  /// index column order). Appends matching live row ids to `out`.
  void IndexLookup(int idx, const std::vector<common::Value>& key,
                   std::vector<RowId>* out) const;

  /// Columns (schema positions) of index `idx`.
  const std::vector<int>& IndexColumns(int idx) const {
    return index_col_positions_[idx];
  }

 private:
  uint64_t IndexKeyHash(int idx, const common::Row& row) const;
  static uint64_t KeyHash(const std::vector<common::Value>& key);

  Schema schema_;
  std::deque<common::Row> rows_;
  std::vector<bool> live_;
  size_t live_count_ = 0;

  // One multimap per index: key hash -> row id.
  std::vector<std::unordered_multimap<uint64_t, RowId>> index_maps_;
  std::vector<std::vector<int>> index_col_positions_;
};

}  // namespace apollo::db
