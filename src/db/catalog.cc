#include "db/catalog.h"

#include "util/string_util.h"

namespace apollo::db {

util::Status Catalog::CreateTable(Schema schema) {
  std::string name = schema.table_name();
  if (tables_.count(name) > 0) {
    return util::Status::AlreadyExists("table " + name + " already exists");
  }
  tables_.emplace(name, std::make_unique<Table>(std::move(schema)));
  return util::Status::OK();
}

Table* Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(util::ToUpperAscii(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(util::ToUpperAscii(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

size_t Catalog::ApproximateDataBytes() const {
  size_t total = 0;
  for (const auto& [_, table] : tables_) {
    for (size_t i = 0; i < table->NumSlots(); ++i) {
      if (!table->IsLive(static_cast<RowId>(i))) continue;
      for (const auto& v : table->At(static_cast<RowId>(i))) {
        total += v.ByteSize();
      }
    }
  }
  return total;
}

}  // namespace apollo::db
