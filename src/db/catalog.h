// Catalog: the set of tables owned by one Database instance.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/table.h"
#include "util/result.h"

namespace apollo::db {

class Catalog {
 public:
  /// Creates a table from `schema`. Fails if the name is taken.
  util::Status CreateTable(Schema schema);

  /// Returns the table or nullptr.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;
  size_t num_tables() const { return tables_.size(); }

  /// Total approximate data bytes across all tables (cache sizing input).
  size_t ApproximateDataBytes() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace apollo::db
