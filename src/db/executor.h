// Query executor for the Apollo SQL dialect.
//
// Planning is deliberately simple but index-aware: equality predicates
// (column = literal, or column = column already bound by an earlier join
// step) drive hash-index lookups; everything else falls back to filtered
// scans. Joins are processed in FROM order with index-nested-loop where an
// index applies. Aggregation supports COUNT/COUNT DISTINCT/SUM/MIN/MAX/AVG
// with GROUP BY, plus DISTINCT, ORDER BY and LIMIT.
#pragma once

#include <vector>

#include "common/result_set.h"
#include "common/value.h"
#include "db/catalog.h"
#include "sql/ast.h"
#include "util/result.h"

namespace apollo::db {

class Executor {
 public:
  explicit Executor(Catalog* catalog) : catalog_(catalog) {}

  /// Executes one statement. For writes the result set is empty but
  /// `affected_rows` is populated. `rows_examined` is always populated and
  /// feeds the simulator's execution-cost model.
  util::Result<common::ResultSetPtr> Execute(const sql::Statement& stmt);

  /// Prepared execution: `stmt` may contain placeholder expressions, which
  /// are bound to `params` by placeholder index. Placeholder equality
  /// predicates drive index probes exactly like literals, so a prepared
  /// statement plans identically to its instantiated text. `params` may be
  /// null (then any placeholder is an error, as in Execute above).
  util::Result<common::ResultSetPtr> Execute(
      const sql::Statement& stmt, const std::vector<common::Value>* params);

 private:
  Catalog* catalog_;
};

}  // namespace apollo::db
