#include "db/executor.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "sql/printer.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace apollo::db {

namespace {

using common::ResultSet;
using common::ResultSetPtr;
using common::Row;
using common::Value;
using sql::BinOp;
using sql::Expr;
using sql::ExprKind;
using util::Result;
using util::Status;

/// One relation participating in a SELECT: the table plus its effective
/// (alias-resolved) name.
struct Relation {
  std::string name;  // effective name used by qualified refs
  const Table* table;
};

/// Column reference resolved to (relation slot, column position).
struct ResolvedColumn {
  int rel = -1;
  int col = -1;
  bool ok() const { return rel >= 0; }
};

/// Execution context shared by all expression evaluations of one query.
struct ExecContext {
  std::vector<Relation> relations;
  // Resolution cache: column-ref node -> slot.
  std::unordered_map<const Expr*, ResolvedColumn> resolution;
  // Finalized aggregate values for the group currently being projected
  // (set only during aggregate finalization, enabling expressions over
  // aggregates such as MAX(O_ID) - 3333).
  const std::unordered_map<const Expr*, Value>* agg_values = nullptr;
  // Bound parameter values for prepared execution: placeholder expressions
  // index into this vector. Null for plain text execution, where a
  // placeholder is an error.
  const std::vector<Value>* params = nullptr;
  uint64_t rows_examined = 0;
};

/// A join tuple: one live RowId per relation (only the first `bound` are
/// meaningful during join recursion).
using Tuple = std::vector<RowId>;

Result<ResolvedColumn> ResolveColumn(ExecContext& ctx, const Expr& e) {
  auto it = ctx.resolution.find(&e);
  if (it != ctx.resolution.end()) return it->second;
  ResolvedColumn rc;
  for (size_t r = 0; r < ctx.relations.size(); ++r) {
    const auto& rel = ctx.relations[r];
    if (!e.table.empty() && e.table != rel.name &&
        e.table != rel.table->schema().table_name()) {
      continue;
    }
    int c = rel.table->schema().ColumnIndex(e.column);
    if (c >= 0) {
      if (rc.ok() && e.table.empty()) {
        return Status::InvalidArgument("ambiguous column " + e.column);
      }
      rc.rel = static_cast<int>(r);
      rc.col = c;
      if (!e.table.empty()) break;
    }
  }
  if (!rc.ok()) {
    return Status::NotFound("unknown column " +
                            (e.table.empty() ? e.column
                                             : e.table + "." + e.column));
  }
  ctx.resolution.emplace(&e, rc);
  return rc;
}

bool Truthy(const Value& v) {
  if (v.is_null()) return false;
  if (v.is_int()) return v.AsInt() != 0;
  if (v.is_double()) return v.AsDoubleRaw() != 0.0;
  return !v.AsString().empty();
}

Result<Value> EvalExpr(ExecContext& ctx, const Tuple& tuple, const Expr& e);

Result<Value> EvalBinary(ExecContext& ctx, const Tuple& tuple,
                         const Expr& e) {
  // AND/OR short-circuit.
  if (e.op == BinOp::kAnd || e.op == BinOp::kOr) {
    auto l = EvalExpr(ctx, tuple, *e.children[0]);
    if (!l.ok()) return l;
    bool lv = Truthy(*l);
    if (e.op == BinOp::kAnd && !lv) return Value::Int(0);
    if (e.op == BinOp::kOr && lv) return Value::Int(1);
    auto r = EvalExpr(ctx, tuple, *e.children[1]);
    if (!r.ok()) return r;
    return Value::Int(Truthy(*r) ? 1 : 0);
  }
  auto l = EvalExpr(ctx, tuple, *e.children[0]);
  if (!l.ok()) return l;
  auto r = EvalExpr(ctx, tuple, *e.children[1]);
  if (!r.ok()) return r;
  const Value& a = *l;
  const Value& b = *r;
  switch (e.op) {
    case BinOp::kEq:
      if (a.is_null() || b.is_null()) return Value::Int(0);
      return Value::Int(a == b ? 1 : 0);
    case BinOp::kNe:
      if (a.is_null() || b.is_null()) return Value::Int(0);
      return Value::Int(a != b ? 1 : 0);
    case BinOp::kLt:
      if (a.is_null() || b.is_null()) return Value::Int(0);
      return Value::Int(a.Compare(b) < 0 ? 1 : 0);
    case BinOp::kLe:
      if (a.is_null() || b.is_null()) return Value::Int(0);
      return Value::Int(a.Compare(b) <= 0 ? 1 : 0);
    case BinOp::kGt:
      if (a.is_null() || b.is_null()) return Value::Int(0);
      return Value::Int(a.Compare(b) > 0 ? 1 : 0);
    case BinOp::kGe:
      if (a.is_null() || b.is_null()) return Value::Int(0);
      return Value::Int(a.Compare(b) >= 0 ? 1 : 0);
    case BinOp::kLike: {
      if (!a.is_string() || !b.is_string()) return Value::Int(0);
      bool m = util::LikeMatch(a.AsString(), b.AsString());
      if (e.negated) m = !m;
      return Value::Int(m ? 1 : 0);
    }
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv: {
      if (a.is_null() || b.is_null()) return Value::Null();
      if (!a.is_numeric() || !b.is_numeric()) {
        return Status::TypeError("arithmetic on non-numeric value");
      }
      if (a.is_int() && b.is_int() && e.op != BinOp::kDiv) {
        int64_t x = a.AsInt();
        int64_t y = b.AsInt();
        switch (e.op) {
          case BinOp::kAdd: return Value::Int(x + y);
          case BinOp::kSub: return Value::Int(x - y);
          case BinOp::kMul: return Value::Int(x * y);
          default: break;
        }
      }
      double x = a.ToDouble();
      double y = b.ToDouble();
      switch (e.op) {
        case BinOp::kAdd: return Value::Double(x + y);
        case BinOp::kSub: return Value::Double(x - y);
        case BinOp::kMul: return Value::Double(x * y);
        case BinOp::kDiv:
          if (y == 0.0) return Value::Null();
          return Value::Double(x / y);
        default: break;
      }
      return Status::Internal("unreachable arithmetic op");
    }
    default:
      return Status::Internal("unexpected binary op in eval");
  }
}

Result<Value> EvalExpr(ExecContext& ctx, const Tuple& tuple, const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kPlaceholder:
      if (ctx.params != nullptr &&
          e.placeholder_index >= 0 &&
          static_cast<size_t>(e.placeholder_index) < ctx.params->size()) {
        return (*ctx.params)[e.placeholder_index];
      }
      return Status::InvalidArgument("unbound placeholder in execution");
    case ExprKind::kColumnRef: {
      auto rc = ResolveColumn(ctx, e);
      if (!rc.ok()) return rc.status();
      return ctx.relations[rc->rel].table->At(tuple[rc->rel])[rc->col];
    }
    case ExprKind::kStar:
      return Status::InvalidArgument("'*' outside select list / COUNT");
    case ExprKind::kUnaryMinus: {
      auto v = EvalExpr(ctx, tuple, *e.children[0]);
      if (!v.ok()) return v;
      if (v->is_null()) return Value::Null();
      if (v->is_int()) return Value::Int(-v->AsInt());
      if (v->is_double()) return Value::Double(-v->AsDoubleRaw());
      return Status::TypeError("unary minus on non-numeric");
    }
    case ExprKind::kNot: {
      auto v = EvalExpr(ctx, tuple, *e.children[0]);
      if (!v.ok()) return v;
      return Value::Int(Truthy(*v) ? 0 : 1);
    }
    case ExprKind::kBinary:
      return EvalBinary(ctx, tuple, e);
    case ExprKind::kFuncCall: {
      if (ctx.agg_values != nullptr) {
        auto it = ctx.agg_values->find(&e);
        if (it != ctx.agg_values->end()) return it->second;
      }
      return Status::InvalidArgument(
          "aggregate function outside aggregation context");
    }
    case ExprKind::kInList: {
      auto v = EvalExpr(ctx, tuple, *e.children[0]);
      if (!v.ok()) return v;
      if (v->is_null()) return Value::Int(0);
      bool found = false;
      for (size_t i = 1; i < e.children.size(); ++i) {
        auto item = EvalExpr(ctx, tuple, *e.children[i]);
        if (!item.ok()) return item;
        if (*v == *item) {
          found = true;
          break;
        }
      }
      if (e.negated) found = !found;
      return Value::Int(found ? 1 : 0);
    }
    case ExprKind::kBetween: {
      auto v = EvalExpr(ctx, tuple, *e.children[0]);
      if (!v.ok()) return v;
      auto lo = EvalExpr(ctx, tuple, *e.children[1]);
      if (!lo.ok()) return lo;
      auto hi = EvalExpr(ctx, tuple, *e.children[2]);
      if (!hi.ok()) return hi;
      if (v->is_null() || lo->is_null() || hi->is_null()) {
        return Value::Int(0);
      }
      bool in = v->Compare(*lo) >= 0 && v->Compare(*hi) <= 0;
      if (e.negated) in = !in;
      return Value::Int(in ? 1 : 0);
    }
    case ExprKind::kIsNull: {
      auto v = EvalExpr(ctx, tuple, *e.children[0]);
      if (!v.ok()) return v;
      bool is_null = v->is_null();
      if (e.negated) is_null = !is_null;
      return Value::Int(is_null ? 1 : 0);
    }
  }
  return Status::Internal("unreachable expr kind");
}

/// Flattens an AND tree into conjuncts.
void FlattenConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->op == BinOp::kAnd) {
    FlattenConjuncts(e->children[0].get(), out);
    FlattenConjuncts(e->children[1].get(), out);
    return;
  }
  out->push_back(e);
}

/// Relations referenced by an expression subtree (as a bitmask; supports up
/// to 64 relations, far beyond the dialect's practical use).
Result<uint64_t> RelMask(ExecContext& ctx, const Expr& e) {
  uint64_t mask = 0;
  Status failed = Status::OK();
  std::function<void(const Expr&)> walk = [&](const Expr& node) {
    if (node.kind == ExprKind::kColumnRef) {
      auto rc = ResolveColumn(ctx, node);
      if (!rc.ok()) {
        if (failed.ok()) failed = rc.status();
        return;
      }
      mask |= (1ull << rc->rel);
    }
    for (const auto& c : node.children) walk(*c);
  };
  walk(e);
  if (!failed.ok()) return failed;
  return mask;
}

/// True if the expression tree contains an aggregate call.
bool HasAggregate(const Expr& e) {
  if (e.kind == ExprKind::kFuncCall) return true;
  for (const auto& c : e.children) {
    if (HasAggregate(*c)) return true;
  }
  return false;
}

/// Aggregator state for one select item of an aggregate query.
struct AggState {
  int64_t count = 0;
  double sum = 0;
  bool sum_is_int = true;
  int64_t isum = 0;
  Value min, max;
  bool any = false;
  std::unordered_set<uint64_t> distinct;
};

struct Conjunct {
  const Expr* expr;
  uint64_t mask;      // relations referenced
  int max_rel;        // highest relation slot referenced (-1 if none)
};

std::string OutputName(const sql::SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  const Expr& e = *item.expr;
  if (e.kind == ExprKind::kColumnRef) return e.column;
  return sql::PrintExpr(e);
}

/// Key describing one equality `column = <source>` usable for index probes.
struct EqKey {
  int col;                   // column position in the target relation
  const Expr* value_expr;    // literal or bound column-ref expression
};

class SelectRunner {
 public:
  SelectRunner(Catalog* catalog, const sql::SelectStmt& sel,
               const std::vector<Value>* params)
      : catalog_(catalog), sel_(sel) {
    ctx_.params = params;
  }

  Result<ResultSetPtr> Run() {
    APOLLO_RETURN_NOT_OK(SetupRelations());
    APOLLO_RETURN_NOT_OK(SetupPredicates());
    bool aggregate = !sel_.group_by.empty();
    for (const auto& item : sel_.items) {
      if (HasAggregate(*item.expr)) aggregate = true;
    }
    Result<ResultSetPtr> rs =
        aggregate ? RunAggregate() : RunProjection();
    return rs;
  }

 private:
  Status SetupRelations() {
    auto add = [&](const sql::TableRef& tr) -> Status {
      const Table* t = catalog_->GetTable(tr.table);
      if (t == nullptr) {
        return Status::NotFound("unknown table " + tr.table);
      }
      ctx_.relations.push_back({tr.EffectiveName(), t});
      return Status::OK();
    };
    for (const auto& tr : sel_.tables) APOLLO_RETURN_NOT_OK(add(tr));
    for (const auto& j : sel_.joins) APOLLO_RETURN_NOT_OK(add(j.table));
    if (ctx_.relations.size() > 64) {
      return Status::Unimplemented("too many relations");
    }
    return Status::OK();
  }

  Status SetupPredicates() {
    std::vector<const Expr*> conjuncts;
    FlattenConjuncts(sel_.where.get(), &conjuncts);
    for (const auto& j : sel_.joins) {
      FlattenConjuncts(j.on.get(), &conjuncts);
    }
    for (const Expr* c : conjuncts) {
      auto mask = RelMask(ctx_, *c);
      if (!mask.ok()) return mask.status();
      int max_rel = -1;
      uint64_t m = *mask;
      for (int r = 0; r < 64; ++r) {
        if (m & (1ull << r)) max_rel = r;
      }
      conjuncts_.push_back({c, m, max_rel});
    }
    return Status::OK();
  }

  /// Collects equality keys usable to probe relation `step` given the
  /// relations [0, step) are bound.
  void CollectEqKeys(int step, std::vector<EqKey>* keys) {
    for (const auto& c : conjuncts_) {
      const Expr* e = c.expr;
      if (e->kind != ExprKind::kBinary || e->op != BinOp::kEq) continue;
      const Expr* l = e->children[0].get();
      const Expr* r = e->children[1].get();
      for (int side = 0; side < 2; ++side) {
        const Expr* col = side == 0 ? l : r;
        const Expr* other = side == 0 ? r : l;
        if (col->kind != ExprKind::kColumnRef) continue;
        auto rc = ResolveColumn(ctx_, *col);
        if (!rc.ok() || rc->rel != step) continue;
        // The other side must be computable from bound relations only.
        auto omask = RelMask(ctx_, *other);
        if (!omask.ok()) continue;
        uint64_t bound = (step == 0) ? 0 : ((1ull << step) - 1);
        if ((*omask & ~bound) != 0) continue;
        if (HasAggregate(*other)) continue;
        keys->push_back({rc->col, other});
        break;
      }
    }
  }

  /// Enumerates candidate rows of relation `step` under the current
  /// partially-bound tuple.
  Status CandidateRows(int step, const Tuple& tuple,
                       std::vector<RowId>* out) {
    const Table* table = ctx_.relations[step].table;
    std::vector<EqKey> keys;
    CollectEqKeys(step, &keys);
    if (!keys.empty()) {
      std::vector<int> eq_cols;
      for (const auto& k : keys) eq_cols.push_back(k.col);
      int idx = table->FindUsableIndex(eq_cols);
      if (idx >= 0) {
        // Build probe key in index column order.
        std::vector<Value> probe;
        for (int pos : table->IndexColumns(idx)) {
          const Expr* src = nullptr;
          for (const auto& k : keys) {
            if (k.col == pos) {
              src = k.value_expr;
              break;
            }
          }
          auto v = EvalExpr(ctx_, tuple, *src);
          if (!v.ok()) return v.status();
          probe.push_back(std::move(*v));
        }
        table->IndexLookup(idx, probe, out);
        ctx_.rows_examined += out->size();
        return Status::OK();
      }
    }
    // Full scan.
    for (size_t i = 0; i < table->NumSlots(); ++i) {
      RowId id = static_cast<RowId>(i);
      if (table->IsLive(id)) out->push_back(id);
    }
    ctx_.rows_examined += out->size();
    return Status::OK();
  }

  /// Applies all conjuncts whose highest referenced relation == step.
  Result<bool> StepPredicatesPass(int step, const Tuple& tuple) {
    for (const auto& c : conjuncts_) {
      if (c.max_rel != step) continue;
      auto v = EvalExpr(ctx_, tuple, *c.expr);
      if (!v.ok()) return v.status();
      if (!Truthy(*v)) return false;
    }
    return true;
  }

  /// Conjuncts that reference no relation at all (constant predicates).
  Result<bool> ConstPredicatesPass() {
    Tuple empty(ctx_.relations.size(), 0);
    for (const auto& c : conjuncts_) {
      if (c.max_rel != -1) continue;
      auto v = EvalExpr(ctx_, empty, *c.expr);
      if (!v.ok()) return v.status();
      if (!Truthy(*v)) return false;
    }
    return true;
  }

  /// Runs the join, invoking `emit` on each fully-bound surviving tuple.
  Status RunJoin(const std::function<Status(const Tuple&)>& emit) {
    auto cpass = ConstPredicatesPass();
    if (!cpass.ok()) return cpass.status();
    if (!*cpass) return Status::OK();

    Tuple tuple(ctx_.relations.size(), 0);
    std::function<Status(int)> recurse = [&](int step) -> Status {
      if (step == static_cast<int>(ctx_.relations.size())) {
        return emit(tuple);
      }
      std::vector<RowId> candidates;
      APOLLO_RETURN_NOT_OK(CandidateRows(step, tuple, &candidates));
      for (RowId id : candidates) {
        tuple[step] = id;
        auto pass = StepPredicatesPass(step, tuple);
        if (!pass.ok()) return pass.status();
        if (!*pass) continue;
        APOLLO_RETURN_NOT_OK(recurse(step + 1));
      }
      return Status::OK();
    };
    return recurse(0);
  }

  /// Expands the select list into concrete output expressions + names.
  /// '*' expands to every column of every relation.
  Status ExpandItems(std::vector<const Expr*>* exprs,
                     std::vector<std::string>* names,
                     std::vector<std::unique_ptr<Expr>>* owned) {
    for (const auto& item : sel_.items) {
      if (item.expr->kind == ExprKind::kStar) {
        for (const auto& rel : ctx_.relations) {
          if (!item.expr->table.empty() && item.expr->table != rel.name) {
            continue;
          }
          for (const auto& col : rel.table->schema().columns()) {
            owned->push_back(Expr::MakeColumn(rel.name, col.name));
            exprs->push_back(owned->back().get());
            names->push_back(col.name);
          }
        }
        continue;
      }
      exprs->push_back(item.expr.get());
      names->push_back(OutputName(item));
    }
    return Status::OK();
  }

  Result<ResultSetPtr> RunProjection() {
    std::vector<const Expr*> exprs;
    std::vector<std::string> names;
    std::vector<std::unique_ptr<Expr>> owned;
    APOLLO_RETURN_NOT_OK(ExpandItems(&exprs, &names, &owned));

    struct OutRow {
      Row values;
      Row order_keys;
    };
    std::vector<OutRow> rows;

    Status st = RunJoin([&](const Tuple& tuple) -> Status {
      OutRow out;
      out.values.reserve(exprs.size());
      for (const Expr* e : exprs) {
        auto v = EvalExpr(ctx_, tuple, *e);
        if (!v.ok()) return v.status();
        out.values.push_back(std::move(*v));
      }
      for (const auto& oi : sel_.order_by) {
        auto v = EvalExpr(ctx_, tuple, *oi.expr);
        if (!v.ok()) return v.status();
        out.order_keys.push_back(std::move(*v));
      }
      rows.push_back(std::move(out));
      return Status::OK();
    });
    APOLLO_RETURN_NOT_OK(st);

    if (sel_.distinct) {
      std::unordered_set<uint64_t> seen;
      std::vector<OutRow> unique;
      for (auto& r : rows) {
        uint64_t h = 0x9e37;
        for (const auto& v : r.values) h = util::HashCombine(h, v.Hash());
        if (seen.insert(h).second) unique.push_back(std::move(r));
      }
      rows = std::move(unique);
    }
    if (!sel_.order_by.empty()) {
      std::stable_sort(rows.begin(), rows.end(),
                       [&](const OutRow& a, const OutRow& b) {
                         for (size_t i = 0; i < sel_.order_by.size(); ++i) {
                           int c = a.order_keys[i].Compare(b.order_keys[i]);
                           if (c != 0) {
                             return sel_.order_by[i].desc ? c > 0 : c < 0;
                           }
                         }
                         return false;
                       });
    }
    auto rs = std::make_shared<ResultSet>(names);
    size_t limit = sel_.limit >= 0 ? static_cast<size_t>(sel_.limit)
                                   : rows.size();
    for (size_t i = 0; i < rows.size() && i < limit; ++i) {
      rs->AddRow(std::move(rows[i].values));
    }
    rs->set_rows_examined(ctx_.rows_examined);
    return ResultSetPtr(rs);
  }

  /// Collects every distinct aggregate call node reachable from the select
  /// list (aggregates cannot nest, so recursion stops at a FuncCall).
  static void CollectAggNodes(const Expr& e,
                              std::vector<const Expr*>* out) {
    if (e.kind == ExprKind::kFuncCall) {
      out->push_back(&e);
      return;
    }
    for (const auto& c : e.children) CollectAggNodes(*c, out);
  }

  Result<ResultSetPtr> RunAggregate() {
    // Select items may be aggregate calls, group-by expressions, or any
    // scalar expression over them (e.g. MAX(O_ID) - 3333). Functional
    // dependence of bare columns on the group key is assumed, as in
    // MySQL's traditional behaviour.
    std::vector<std::string> names;
    for (const auto& item : sel_.items) names.push_back(OutputName(item));

    std::vector<const Expr*> agg_nodes;
    for (const auto& item : sel_.items) {
      CollectAggNodes(*item.expr, &agg_nodes);
    }

    struct Group {
      Row key;                     // group_by values
      Tuple rep;                   // representative input tuple
      std::vector<AggState> aggs;  // one per aggregate node
    };
    std::unordered_map<uint64_t, Group> groups;
    std::vector<uint64_t> group_order;

    Status st = RunJoin([&](const Tuple& tuple) -> Status {
      Row key;
      uint64_t h = 0x51ab;
      for (const auto& g : sel_.group_by) {
        auto v = EvalExpr(ctx_, tuple, *g);
        if (!v.ok()) return v.status();
        h = util::HashCombine(h, v->Hash());
        key.push_back(std::move(*v));
      }
      auto [it, inserted] = groups.try_emplace(h);
      Group& grp = it->second;
      if (inserted) {
        grp.key = std::move(key);
        grp.rep = tuple;
        grp.aggs.resize(agg_nodes.size());
        group_order.push_back(h);
      }
      for (size_t i = 0; i < agg_nodes.size(); ++i) {
        const Expr& e = *agg_nodes[i];
        AggState& agg = grp.aggs[i];
        const Expr& arg = *e.children[0];
        Value v;
        if (arg.kind == ExprKind::kStar) {
          v = Value::Int(1);
        } else {
          auto ev = EvalExpr(ctx_, tuple, arg);
          if (!ev.ok()) return ev.status();
          v = std::move(*ev);
        }
        if (v.is_null()) continue;  // SQL aggregates skip NULLs
        if (e.distinct && !agg.distinct.insert(v.Hash()).second) continue;
        ++agg.count;
        if (v.is_numeric()) {
          if (v.is_int() && agg.sum_is_int) {
            agg.isum += v.AsInt();
          } else {
            if (agg.sum_is_int) {
              agg.sum = static_cast<double>(agg.isum);
              agg.sum_is_int = false;
            }
            agg.sum += v.ToDouble();
          }
        }
        if (!agg.any || v.Compare(agg.min) < 0) agg.min = v;
        if (!agg.any || v.Compare(agg.max) > 0) agg.max = v;
        agg.any = true;
      }
      return Status::OK();
    });
    APOLLO_RETURN_NOT_OK(st);

    // With no GROUP BY and no input rows, aggregates still yield one row
    // (over an empty representative tuple; bare column refs yield NULL
    // only through aggregate args, which do not run in this case).
    bool synthetic_empty_group = false;
    if (sel_.group_by.empty() && groups.empty()) {
      Group g;
      g.rep.assign(ctx_.relations.size(), 0);
      g.aggs.resize(agg_nodes.size());
      uint64_t h = 0x51ab;
      groups.emplace(h, std::move(g));
      group_order.push_back(h);
      synthetic_empty_group = true;
    }

    auto finalize_agg = [&](const AggState& agg,
                            const Expr& e) -> Result<Value> {
      const std::string& f = e.func;
      if (f == "COUNT") return Value::Int(agg.count);
      if (!agg.any) return Value::Null();
      if (f == "MIN") return agg.min;
      if (f == "MAX") return agg.max;
      if (f == "SUM") {
        return agg.sum_is_int ? Value::Int(agg.isum)
                              : Value::Double(agg.sum);
      }
      if (f == "AVG") {
        double total =
            agg.sum_is_int ? static_cast<double>(agg.isum) : agg.sum;
        return Value::Double(total / static_cast<double>(agg.count));
      }
      return Status::Unimplemented("unknown aggregate " + f);
    };

    auto finalize = [&](const Group& grp, size_t i) -> Result<Value> {
      const Expr& e = *sel_.items[i].expr;
      std::unordered_map<const Expr*, Value> agg_values;
      for (size_t a = 0; a < agg_nodes.size(); ++a) {
        auto v = finalize_agg(grp.aggs[a], *agg_nodes[a]);
        if (!v.ok()) return v.status();
        agg_values.emplace(agg_nodes[a], std::move(*v));
      }
      if (!HasAggregate(e) && synthetic_empty_group) {
        return Value::Null();  // no rows: bare expressions have no value
      }
      ctx_.agg_values = &agg_values;
      auto out = EvalExpr(ctx_, grp.rep, e);
      ctx_.agg_values = nullptr;
      if (!out.ok()) return out.status();
      return std::move(*out);
    };

    // Map ORDER BY expressions onto output columns (by alias, by column
    // name, or by identical printed text).
    std::vector<int> order_cols;
    for (const auto& oi : sel_.order_by) {
      std::string txt = sql::PrintExpr(*oi.expr);
      int found = -1;
      for (size_t i = 0; i < sel_.items.size(); ++i) {
        if (!sel_.items[i].alias.empty() &&
            (txt == sel_.items[i].alias ||
             (oi.expr->kind == ExprKind::kColumnRef &&
              oi.expr->column == sel_.items[i].alias))) {
          found = static_cast<int>(i);
          break;
        }
        if (sql::PrintExpr(*sel_.items[i].expr) == txt) {
          found = static_cast<int>(i);
          break;
        }
        if (oi.expr->kind == ExprKind::kColumnRef &&
            sel_.items[i].expr->kind == ExprKind::kColumnRef &&
            sel_.items[i].expr->column == oi.expr->column) {
          found = static_cast<int>(i);
          break;
        }
      }
      if (found < 0) {
        return Status::Unimplemented(
            "ORDER BY expression not in aggregate select list: " + txt);
      }
      order_cols.push_back(found);
    }

    struct OutRow {
      Row values;
    };
    std::vector<OutRow> rows;
    rows.reserve(groups.size());
    for (uint64_t h : group_order) {
      const Group& grp = groups[h];
      OutRow out;
      for (size_t i = 0; i < sel_.items.size(); ++i) {
        auto v = finalize(grp, i);
        if (!v.ok()) return v.status();
        out.values.push_back(std::move(*v));
      }
      rows.push_back(std::move(out));
    }
    if (!order_cols.empty()) {
      std::stable_sort(rows.begin(), rows.end(),
                       [&](const OutRow& a, const OutRow& b) {
                         for (size_t i = 0; i < order_cols.size(); ++i) {
                           int c = a.values[order_cols[i]].Compare(
                               b.values[order_cols[i]]);
                           if (c != 0) {
                             return sel_.order_by[i].desc ? c > 0 : c < 0;
                           }
                         }
                         return false;
                       });
    }
    auto rs = std::make_shared<ResultSet>(names);
    size_t limit = sel_.limit >= 0 ? static_cast<size_t>(sel_.limit)
                                   : rows.size();
    for (size_t i = 0; i < rows.size() && i < limit; ++i) {
      rs->AddRow(std::move(rows[i].values));
    }
    rs->set_rows_examined(ctx_.rows_examined);
    return ResultSetPtr(rs);
  }

  Catalog* catalog_;
  const sql::SelectStmt& sel_;
  ExecContext ctx_;
  std::vector<Conjunct> conjuncts_;
};

/// Shared row-matching for UPDATE / DELETE: single relation, index-aware.
Result<std::vector<RowId>> MatchRows(Catalog* catalog,
                                     const std::string& table_name,
                                     const Expr* where,
                                     ExecContext& ctx) {
  Table* table = catalog->GetTable(table_name);
  if (table == nullptr) {
    return Status::NotFound("unknown table " + table_name);
  }
  ctx.relations.push_back({table->schema().table_name(), table});

  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(where, &conjuncts);

  // Equality keys on literals.
  std::vector<EqKey> keys;
  for (const Expr* c : conjuncts) {
    if (c->kind != ExprKind::kBinary || c->op != BinOp::kEq) continue;
    for (int side = 0; side < 2; ++side) {
      const Expr* col = c->children[side].get();
      const Expr* other = c->children[1 - side].get();
      if (col->kind != ExprKind::kColumnRef) continue;
      bool bindable =
          other->kind == ExprKind::kLiteral ||
          (other->kind == ExprKind::kPlaceholder && ctx.params != nullptr);
      if (!bindable) continue;
      auto rc = ResolveColumn(ctx, *col);
      if (!rc.ok()) continue;
      keys.push_back({rc->col, other});
      break;
    }
  }

  std::vector<RowId> candidates;
  Tuple tuple(1, 0);
  bool used_index = false;
  if (!keys.empty()) {
    std::vector<int> eq_cols;
    for (const auto& k : keys) eq_cols.push_back(k.col);
    int idx = table->FindUsableIndex(eq_cols);
    if (idx >= 0) {
      std::vector<Value> probe;
      for (int pos : table->IndexColumns(idx)) {
        const Expr* src = nullptr;
        for (const auto& k : keys) {
          if (k.col == pos) {
            src = k.value_expr;
            break;
          }
        }
        auto v = EvalExpr(ctx, tuple, *src);
        if (!v.ok()) return v.status();
        probe.push_back(std::move(*v));
      }
      table->IndexLookup(idx, probe, &candidates);
      used_index = true;
    }
  }
  if (!used_index) {
    for (size_t i = 0; i < table->NumSlots(); ++i) {
      RowId id = static_cast<RowId>(i);
      if (table->IsLive(id)) candidates.push_back(id);
    }
  }
  ctx.rows_examined += candidates.size();

  std::vector<RowId> matched;
  for (RowId id : candidates) {
    tuple[0] = id;
    bool pass = true;
    for (const Expr* c : conjuncts) {
      auto v = EvalExpr(ctx, tuple, *c);
      if (!v.ok()) return v.status();
      if (!Truthy(*v)) {
        pass = false;
        break;
      }
    }
    if (pass) matched.push_back(id);
  }
  return matched;
}

Result<ResultSetPtr> RunInsert(Catalog* catalog, const sql::InsertStmt& ins,
                               const std::vector<Value>* params) {
  Table* table = catalog->GetTable(ins.table);
  if (table == nullptr) {
    return Status::NotFound("unknown table " + ins.table);
  }
  const Schema& schema = table->schema();

  // Map insert columns to schema positions.
  std::vector<int> positions;
  if (ins.columns.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      positions.push_back(static_cast<int>(i));
    }
  } else {
    for (const auto& c : ins.columns) {
      int pos = schema.ColumnIndex(c);
      if (pos < 0) {
        return Status::NotFound("unknown column " + c + " in INSERT");
      }
      positions.push_back(pos);
    }
  }

  ExecContext ctx;
  ctx.params = params;
  Tuple empty;
  uint64_t affected = 0;
  for (const auto& row_exprs : ins.rows) {
    if (row_exprs.size() != positions.size()) {
      return Status::InvalidArgument("INSERT arity mismatch");
    }
    Row row(schema.num_columns(), Value::Null());
    for (size_t i = 0; i < row_exprs.size(); ++i) {
      auto v = EvalExpr(ctx, empty, *row_exprs[i]);
      if (!v.ok()) return v.status();
      row[positions[i]] = std::move(*v);
    }
    APOLLO_RETURN_NOT_OK(table->Insert(std::move(row)));
    ++affected;
  }
  auto rs = std::make_shared<ResultSet>();
  rs->set_affected_rows(affected);
  rs->set_rows_examined(affected);
  return ResultSetPtr(rs);
}

Result<ResultSetPtr> RunUpdate(Catalog* catalog, const sql::UpdateStmt& upd,
                               const std::vector<Value>* params) {
  ExecContext ctx;
  ctx.params = params;
  auto matched = MatchRows(catalog, upd.table, upd.where.get(), ctx);
  if (!matched.ok()) return matched.status();
  Table* table = catalog->GetTable(upd.table);

  std::vector<int> col_indexes;
  for (const auto& [col, _] : upd.assignments) {
    int pos = table->schema().ColumnIndex(col);
    if (pos < 0) {
      return Status::NotFound("unknown column " + col + " in UPDATE");
    }
    col_indexes.push_back(pos);
  }
  Tuple tuple(1, 0);
  for (RowId id : *matched) {
    tuple[0] = id;
    std::vector<Value> new_values;
    for (const auto& [_, expr] : upd.assignments) {
      auto v = EvalExpr(ctx, tuple, *expr);
      if (!v.ok()) return v.status();
      new_values.push_back(std::move(*v));
    }
    table->UpdateRow(id, col_indexes, new_values);
  }
  auto rs = std::make_shared<ResultSet>();
  rs->set_affected_rows(matched->size());
  rs->set_rows_examined(ctx.rows_examined);
  return ResultSetPtr(rs);
}

Result<ResultSetPtr> RunDelete(Catalog* catalog, const sql::DeleteStmt& del,
                               const std::vector<Value>* params) {
  ExecContext ctx;
  ctx.params = params;
  auto matched = MatchRows(catalog, del.table, del.where.get(), ctx);
  if (!matched.ok()) return matched.status();
  Table* table = catalog->GetTable(del.table);
  for (RowId id : *matched) table->DeleteRow(id);
  auto rs = std::make_shared<ResultSet>();
  rs->set_affected_rows(matched->size());
  rs->set_rows_examined(ctx.rows_examined);
  return ResultSetPtr(rs);
}

}  // namespace

util::Result<common::ResultSetPtr> Executor::Execute(
    const sql::Statement& stmt) {
  return Execute(stmt, nullptr);
}

util::Result<common::ResultSetPtr> Executor::Execute(
    const sql::Statement& stmt, const std::vector<common::Value>* params) {
  switch (stmt.kind) {
    case sql::StatementKind::kSelect: {
      SelectRunner runner(catalog_, *stmt.select, params);
      return runner.Run();
    }
    case sql::StatementKind::kInsert:
      return RunInsert(catalog_, *stmt.insert, params);
    case sql::StatementKind::kUpdate:
      return RunUpdate(catalog_, *stmt.update, params);
    case sql::StatementKind::kDelete:
      return RunDelete(catalog_, *stmt.del, params);
  }
  return util::Status::Internal("unreachable statement kind");
}

}  // namespace apollo::db
