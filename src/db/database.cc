#include "db/database.h"

#include <mutex>

#include "sql/parser.h"
#include "util/string_util.h"

namespace apollo::db {

Database::Database() : executor_(&catalog_) {}

util::Status Database::CreateTable(Schema schema) {
  std::unique_lock lock(mu_);
  std::string name = schema.table_name();
  APOLLO_RETURN_NOT_OK(catalog_.CreateTable(std::move(schema)));
  versions_[name] = 1;
  return util::Status::OK();
}

Table* Database::GetTable(const std::string& name) {
  return catalog_.GetTable(name);
}

util::Result<common::ResultSetPtr> Database::Execute(const std::string& sql) {
  auto stmt = sql::Parse(sql);
  if (!stmt.ok()) return stmt.status();
  return ExecuteStatement(**stmt);
}

util::Result<common::ResultSetPtr> Database::ExecuteStatement(
    const sql::Statement& stmt) {
  const bool read_only = stmt.IsReadOnly();
  auto run = [&]() -> util::Result<common::ResultSetPtr> {
    auto rs = executor_.Execute(stmt);
    return rs;
  };
  if (read_only) {
    std::shared_lock lock(mu_);
    auto rs = run();
    if (rs.ok()) {
      // Stats updates need exclusivity only in spirit; they are counters
      // read off-line, so relaxed accuracy under the shared lock would be
      // acceptable — but keep it simple and exact.
      lock.unlock();
      std::unique_lock wlock(mu_);
      ++stats_.queries_executed;
      ++stats_.reads;
      stats_.rows_examined += (*rs)->rows_examined();
    }
    return rs;
  }
  std::unique_lock lock(mu_);
  auto rs = run();
  if (rs.ok()) {
    ++stats_.queries_executed;
    ++stats_.writes;
    stats_.rows_examined += (*rs)->rows_examined();
    for (const auto& t : stmt.TablesWritten()) {
      ++versions_[util::ToUpperAscii(t)];
    }
  }
  return rs;
}

uint64_t Database::TableVersion(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = versions_.find(util::ToUpperAscii(name));
  return it == versions_.end() ? 0 : it->second;
}

std::unordered_map<std::string, uint64_t> Database::VersionsOf(
    const std::vector<std::string>& tables) const {
  std::shared_lock lock(mu_);
  std::unordered_map<std::string, uint64_t> out;
  for (const auto& t : tables) {
    std::string up = util::ToUpperAscii(t);
    auto it = versions_.find(up);
    out[up] = it == versions_.end() ? 0 : it->second;
  }
  return out;
}

DatabaseStats Database::stats() const {
  std::shared_lock lock(mu_);
  return stats_;
}

size_t Database::ApproximateDataBytes() const {
  std::shared_lock lock(mu_);
  return catalog_.ApproximateDataBytes();
}

}  // namespace apollo::db
