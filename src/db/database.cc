#include "db/database.h"

#include <mutex>

#include "sql/parser.h"
#include "util/string_util.h"

namespace apollo::db {

Database::Database() : executor_(&catalog_) {}

util::Status Database::CreateTable(Schema schema) {
  std::unique_lock lock(mu_);
  std::string name = schema.table_name();
  APOLLO_RETURN_NOT_OK(catalog_.CreateTable(std::move(schema)));
  versions_[name] = 1;
  return util::Status::OK();
}

Table* Database::GetTable(const std::string& name) {
  return catalog_.GetTable(name);
}

util::Result<common::ResultSetPtr> Database::Execute(const std::string& sql) {
  auto stmt = sql::Parse(sql);
  if (!stmt.ok()) return stmt.status();
  return ExecuteStatement(**stmt);
}

util::Result<common::ResultSetPtr> Database::ExecuteStatement(
    const sql::Statement& stmt) {
  return RunStatement(stmt, nullptr);
}

util::Result<common::ResultSetPtr> Database::ExecutePrepared(
    const sql::Statement& stmt, const std::vector<common::Value>& params) {
  return RunStatement(stmt, &params);
}

util::Result<common::ResultSetPtr> Database::RunStatement(
    const sql::Statement& stmt, const std::vector<common::Value>* params) {
  const bool read_only = stmt.IsReadOnly();
  constexpr auto relaxed = std::memory_order_relaxed;
  if (read_only) {
    std::shared_lock lock(mu_);
    auto rs = executor_.Execute(stmt, params);
    if (rs.ok()) {
      // Relaxed counting under the shared lock: exact totals, no unique
      // lock on the read path.
      queries_executed_.fetch_add(1, relaxed);
      reads_.fetch_add(1, relaxed);
      rows_examined_.fetch_add((*rs)->rows_examined(), relaxed);
    }
    return rs;
  }
  std::unique_lock lock(mu_);
  auto rs = executor_.Execute(stmt, params);
  if (rs.ok()) {
    queries_executed_.fetch_add(1, relaxed);
    writes_.fetch_add(1, relaxed);
    rows_examined_.fetch_add((*rs)->rows_examined(), relaxed);
    for (const auto& t : stmt.TablesWritten()) {
      ++versions_[util::ToUpperAscii(t)];
    }
  }
  return rs;
}

uint64_t Database::TableVersion(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = versions_.find(util::ToUpperAscii(name));
  return it == versions_.end() ? 0 : it->second;
}

std::unordered_map<std::string, uint64_t> Database::VersionsOf(
    const std::vector<std::string>& tables) const {
  std::shared_lock lock(mu_);
  std::unordered_map<std::string, uint64_t> out;
  for (const auto& t : tables) {
    std::string up = util::ToUpperAscii(t);
    auto it = versions_.find(up);
    out[up] = it == versions_.end() ? 0 : it->second;
  }
  return out;
}

DatabaseStats Database::stats() const {
  constexpr auto relaxed = std::memory_order_relaxed;
  DatabaseStats s;
  s.queries_executed = queries_executed_.load(relaxed);
  s.reads = reads_.load(relaxed);
  s.writes = writes_.load(relaxed);
  s.rows_examined = rows_examined_.load(relaxed);
  return s;
}

size_t Database::ApproximateDataBytes() const {
  std::shared_lock lock(mu_);
  return catalog_.ApproximateDataBytes();
}

}  // namespace apollo::db
