// Database: the engine front-end Apollo talks to.
//
// Wraps a Catalog + Executor behind a thread-safe SQL interface and
// maintains a monotonically increasing version per table, bumped on every
// write. Apollo's client-session consistency (paper Section 3.2) is built
// on these versions.
#pragma once

#include <atomic>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result_set.h"
#include "db/catalog.h"
#include "db/executor.h"
#include "sql/ast.h"
#include "util/result.h"

namespace apollo::db {

/// Execution statistics exposed for the experiments' overhead reporting.
struct DatabaseStats {
  uint64_t queries_executed = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t rows_examined = 0;
};

class Database {
 public:
  Database();

  /// Creates a table; fails if it already exists.
  util::Status CreateTable(Schema schema);

  /// Direct table access for data loaders (not thread-safe against
  /// concurrent Execute calls; loaders run before the simulation starts).
  Table* GetTable(const std::string& name);

  /// Parses and executes one statement.
  util::Result<common::ResultSetPtr> Execute(const std::string& sql);

  /// Executes a pre-parsed statement.
  util::Result<common::ResultSetPtr> ExecuteStatement(
      const sql::Statement& stmt);

  /// Prepared execution: runs a cached parameterized statement with the
  /// given bound values — no SQL text, no parse. Semantically identical to
  /// executing the instantiated text.
  util::Result<common::ResultSetPtr> ExecutePrepared(
      const sql::Statement& stmt, const std::vector<common::Value>& params);

  /// Current version of a table (0 if never written).
  uint64_t TableVersion(const std::string& name) const;

  /// Versions of several tables at once (a consistent snapshot).
  std::unordered_map<std::string, uint64_t> VersionsOf(
      const std::vector<std::string>& tables) const;

  DatabaseStats stats() const;

  /// Approximate bytes of data stored (for the "5% of DB size" cache rule).
  size_t ApproximateDataBytes() const;

 private:
  util::Result<common::ResultSetPtr> RunStatement(
      const sql::Statement& stmt, const std::vector<common::Value>* params);

  mutable std::shared_mutex mu_;
  Catalog catalog_;
  Executor executor_;
  std::unordered_map<std::string, uint64_t> versions_;
  // Stats are relaxed atomics so the read path can count under the shared
  // lock instead of re-acquiring the unique lock per query (which made the
  // stats update the read path's only contention point).
  std::atomic<uint64_t> queries_executed_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> rows_examined_{0};
};

}  // namespace apollo::db
