// Database: the engine front-end Apollo talks to.
//
// Wraps a Catalog + Executor behind a thread-safe SQL interface and
// maintains a monotonically increasing version per table, bumped on every
// write. Apollo's client-session consistency (paper Section 3.2) is built
// on these versions.
#pragma once

#include <atomic>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result_set.h"
#include "db/catalog.h"
#include "db/executor.h"
#include "sql/ast.h"
#include "util/result.h"

namespace apollo::db {

/// Execution statistics exposed for the experiments' overhead reporting.
struct DatabaseStats {
  uint64_t queries_executed = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t rows_examined = 0;
};

class Database {
 public:
  Database();

  /// Creates a table; fails if it already exists.
  util::Status CreateTable(Schema schema);

  /// Direct table access for data loaders (not thread-safe against
  /// concurrent Execute calls; loaders run before the simulation starts).
  Table* GetTable(const std::string& name);

  /// Parses and executes one statement.
  util::Result<common::ResultSetPtr> Execute(const std::string& sql);

  /// Executes a pre-parsed statement.
  util::Result<common::ResultSetPtr> ExecuteStatement(
      const sql::Statement& stmt);

  /// Current version of a table (0 if never written).
  uint64_t TableVersion(const std::string& name) const;

  /// Versions of several tables at once (a consistent snapshot).
  std::unordered_map<std::string, uint64_t> VersionsOf(
      const std::vector<std::string>& tables) const;

  DatabaseStats stats() const;

  /// Approximate bytes of data stored (for the "5% of DB size" cache rule).
  size_t ApproximateDataBytes() const;

 private:
  mutable std::shared_mutex mu_;
  Catalog catalog_;
  Executor executor_;
  std::unordered_map<std::string, uint64_t> versions_;
  DatabaseStats stats_;
};

}  // namespace apollo::db
