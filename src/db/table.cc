#include "db/table.h"

#include <algorithm>

#include "util/hash.h"

namespace apollo::db {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  index_maps_.resize(schema_.indexes().size());
  for (const auto& def : schema_.indexes()) {
    std::vector<int> positions;
    for (const auto& col : def.columns) {
      positions.push_back(schema_.ColumnIndex(col));
    }
    index_col_positions_.push_back(std::move(positions));
  }
}

uint64_t Table::KeyHash(const std::vector<common::Value>& key) {
  uint64_t h = 0x12345;
  for (const auto& v : key) h = util::HashCombine(h, v.Hash());
  return h;
}

uint64_t Table::IndexKeyHash(int idx, const common::Row& row) const {
  uint64_t h = 0x12345;
  for (int pos : index_col_positions_[idx]) {
    h = util::HashCombine(h, row[pos].Hash());
  }
  return h;
}

util::Status Table::Insert(common::Row row) {
  if (row.size() != schema_.num_columns()) {
    return util::Status::InvalidArgument(
        "row arity mismatch for table " + schema_.table_name() + ": got " +
        std::to_string(row.size()) + ", want " +
        std::to_string(schema_.num_columns()));
  }
  // Coerce numeric values to declared column type.
  for (size_t i = 0; i < row.size(); ++i) {
    const auto want = schema_.columns()[i].type;
    auto& v = row[i];
    if (v.is_null()) continue;
    if (want == common::ValueType::kDouble && v.is_int()) {
      v = common::Value::Double(static_cast<double>(v.AsInt()));
    } else if (want == common::ValueType::kInt && v.is_double()) {
      v = common::Value::Int(static_cast<int64_t>(v.AsDoubleRaw()));
    } else if (want != v.type()) {
      return util::Status::TypeError(
          "type mismatch for column " + schema_.columns()[i].name +
          " of table " + schema_.table_name());
    }
  }
  RowId id = static_cast<RowId>(rows_.size());
  rows_.push_back(std::move(row));
  live_.push_back(true);
  ++live_count_;
  for (size_t idx = 0; idx < index_maps_.size(); ++idx) {
    index_maps_[idx].emplace(IndexKeyHash(static_cast<int>(idx), rows_[id]),
                             id);
  }
  return util::Status::OK();
}

void Table::UpdateRow(RowId id, const std::vector<int>& col_indexes,
                      const std::vector<common::Value>& new_values) {
  // Unlink from indexes whose columns change.
  std::vector<bool> index_touched(index_maps_.size(), false);
  for (size_t idx = 0; idx < index_maps_.size(); ++idx) {
    for (int pos : index_col_positions_[idx]) {
      if (std::find(col_indexes.begin(), col_indexes.end(), pos) !=
          col_indexes.end()) {
        index_touched[idx] = true;
        break;
      }
    }
  }
  for (size_t idx = 0; idx < index_maps_.size(); ++idx) {
    if (!index_touched[idx]) continue;
    auto range =
        index_maps_[idx].equal_range(IndexKeyHash(static_cast<int>(idx),
                                                  rows_[id]));
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second == id) {
        index_maps_[idx].erase(it);
        break;
      }
    }
  }
  for (size_t i = 0; i < col_indexes.size(); ++i) {
    auto& v = rows_[id][col_indexes[i]];
    common::Value nv = new_values[i];
    const auto want = schema_.columns()[col_indexes[i]].type;
    if (!nv.is_null()) {
      if (want == common::ValueType::kDouble && nv.is_int()) {
        nv = common::Value::Double(static_cast<double>(nv.AsInt()));
      } else if (want == common::ValueType::kInt && nv.is_double()) {
        nv = common::Value::Int(static_cast<int64_t>(nv.AsDoubleRaw()));
      }
    }
    v = std::move(nv);
  }
  for (size_t idx = 0; idx < index_maps_.size(); ++idx) {
    if (!index_touched[idx]) continue;
    index_maps_[idx].emplace(IndexKeyHash(static_cast<int>(idx), rows_[id]),
                             id);
  }
}

void Table::DeleteRow(RowId id) {
  if (!IsLive(id)) return;
  for (size_t idx = 0; idx < index_maps_.size(); ++idx) {
    auto range = index_maps_[idx].equal_range(
        IndexKeyHash(static_cast<int>(idx), rows_[id]));
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second == id) {
        index_maps_[idx].erase(it);
        break;
      }
    }
  }
  live_[id] = false;
  --live_count_;
}

int Table::FindUsableIndex(const std::vector<int>& equality_cols) const {
  int best = -1;
  size_t best_len = 0;
  for (size_t idx = 0; idx < index_col_positions_.size(); ++idx) {
    const auto& cols = index_col_positions_[idx];
    bool usable = !cols.empty();
    for (int pos : cols) {
      if (std::find(equality_cols.begin(), equality_cols.end(), pos) ==
          equality_cols.end()) {
        usable = false;
        break;
      }
    }
    if (usable && cols.size() > best_len) {
      best = static_cast<int>(idx);
      best_len = cols.size();
    }
  }
  return best;
}

void Table::IndexLookup(int idx, const std::vector<common::Value>& key,
                        std::vector<RowId>* out) const {
  uint64_t h = KeyHash(key);
  auto range = index_maps_[idx].equal_range(h);
  const auto& cols = index_col_positions_[idx];
  for (auto it = range.first; it != range.second; ++it) {
    RowId id = it->second;
    if (!IsLive(id)) continue;
    bool match = true;
    for (size_t i = 0; i < cols.size(); ++i) {
      if (rows_[id][cols[i]] != key[i]) {
        match = false;
        break;
      }
    }
    if (match) out->push_back(id);
  }
}

}  // namespace apollo::db
