#include "db/schema.h"

#include "util/string_util.h"

namespace apollo::db {

void Schema::Normalize() {
  table_name_ = util::ToUpperAscii(table_name_);
  for (auto& c : columns_) c.name = util::ToUpperAscii(c.name);
}

int Schema::ColumnIndex(const std::string& name) const {
  std::string want = util::ToUpperAscii(name);
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == want) return static_cast<int>(i);
  }
  return -1;
}

bool Schema::AddIndex(std::string index_name,
                      std::vector<std::string> columns) {
  IndexDef def;
  def.name = std::move(index_name);
  for (auto& c : columns) {
    std::string up = util::ToUpperAscii(c);
    if (ColumnIndex(up) < 0) return false;
    def.columns.push_back(std::move(up));
  }
  indexes_.push_back(std::move(def));
  return true;
}

}  // namespace apollo::db
