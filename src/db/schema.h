// Table schema definitions for the in-memory relational engine.
#pragma once

#include <string>
#include <vector>

#include "common/value.h"
#include "util/result.h"

namespace apollo::db {

struct ColumnDef {
  std::string name;  // stored uppercased
  common::ValueType type = common::ValueType::kInt;
};

/// Secondary index definition over one or more columns (hash index,
/// equality lookups).
struct IndexDef {
  std::string name;
  std::vector<std::string> columns;  // uppercased
};

/// Schema: ordered columns plus index definitions. The first index, if any
/// is named "PRIMARY", is unique; others are non-unique.
class Schema {
 public:
  Schema() = default;
  Schema(std::string table_name, std::vector<ColumnDef> columns)
      : table_name_(std::move(table_name)), columns_(std::move(columns)) {
    Normalize();
  }

  const std::string& table_name() const { return table_name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  const std::vector<IndexDef>& indexes() const { return indexes_; }
  size_t num_columns() const { return columns_.size(); }

  /// Index of a column by (case-insensitive) name, or -1.
  int ColumnIndex(const std::string& name) const;

  /// Adds a hash index over `columns`. Returns false if a column is
  /// unknown.
  bool AddIndex(std::string index_name, std::vector<std::string> columns);

 private:
  void Normalize();

  std::string table_name_;
  std::vector<ColumnDef> columns_;
  std::vector<IndexDef> indexes_;
};

}  // namespace apollo::db
