// Overload control for the concurrent runtime (DESIGN.md Section 12).
//
// Apollo's pipeline is deliberately speculative: one client query can fan
// out into pipelined predictive fetches and ADQ reloads, so under a demand
// spike the middleware amplifies its own load exactly when it can least
// afford to. The BrownoutController turns that cliff into a staircase of
// explicit degradation levels:
//
//   L0 kNormal             full service
//   L1 kShedLowUtility     predictions ranked by expected benefit
//                          (transition probability x observed miss cost);
//                          the bottom of the distribution is shed
//   L2 kShedAllSpeculation no predictive executions, no ADQ reloads, and
//                          background checkpoints are deferred
//   L3 kServeStale         cache hits may be served from entries that fail
//                          session freshness, bounded by age and by the
//                          session's own writes (read-your-writes holds)
//   L4 kReject             new client queries are rejected immediately
//                          (backpressure to the callers) so queues drain
//
// The control signal is CoDel-style queue sojourn time on the runtime's
// MPMC pool feed — the wall time a task spends between enqueue and
// dequeue — not queue length: length confounds capacity with burstiness,
// while a persistent standing sojourn above target is the definition of
// overload. Per evaluation interval the controller tracks the MINIMUM
// sojourn (even one fast pass proves the queue drained) and escalates one
// level when it stays above `target_sojourn`; it de-escalates one level
// when the interval minimum stays under `relief_sojourn` for a full
// `deescalate_dwell`. The target/relief gap, the dwell, and the
// one-step-at-a-time rule are the hysteresis that keeps transitions
// monotone during a spike instead of flapping.
//
// Every transition is counted (level_up/level_down), exported as a gauge,
// and recorded in the TraceLog (kBrownoutLevel, template_id = old level,
// aux = new level) so benches can assert the no-flapping contract.
//
// Thread safety: `level()` and the Should*/Allow* gates are lock-free
// reads of an atomic; RecordSojourn/RecordUtility take one short mutex
// (they run once per pool task / prediction decision, both of which cover
// a WAN round trip).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/observability.h"

namespace apollo::rt {

/// Degradation levels, ordered: higher sheds strictly more than lower.
enum class BrownoutLevel : int {
  kNormal = 0,
  kShedLowUtility = 1,
  kShedAllSpeculation = 2,
  kServeStale = 3,
  kReject = 4,
};

inline const char* BrownoutLevelName(BrownoutLevel level) {
  switch (level) {
    case BrownoutLevel::kNormal: return "normal";
    case BrownoutLevel::kShedLowUtility: return "shed_low_utility";
    case BrownoutLevel::kShedAllSpeculation: return "shed_all_speculation";
    case BrownoutLevel::kServeStale: return "serve_stale";
    case BrownoutLevel::kReject: return "reject";
  }
  return "unknown";
}

struct OverloadConfig {
  /// Master switch. Off (the default) disables the controller, deadlines,
  /// fair queueing and every gate below — the runtime behaves byte-
  /// identically to the pre-overload-control build.
  bool enabled = false;

  /// Default per-query budget stamped onto client queries that arrive
  /// without an explicit deadline (0 = no deadline). The gateway cancels
  /// work whose remaining budget cannot cover the WAN round trip instead
  /// of queueing it.
  std::chrono::microseconds default_deadline{0};

  // ---- Control loop (CoDel-style sojourn time) ----

  /// A standing queue sojourn above this escalates one level per interval.
  std::chrono::microseconds target_sojourn{2000};
  /// De-escalation requires an interval min sojourn under this (must be
  /// < target_sojourn: the gap is half the hysteresis).
  std::chrono::microseconds relief_sojourn{500};
  /// Evaluation interval: sojourn min/max are folded and the level
  /// reconsidered once per interval.
  std::chrono::microseconds interval{10'000};
  /// Minimum time at a level before stepping DOWN (the other half of the
  /// hysteresis; stepping up is never dwell-limited — relief can wait,
  /// overload cannot).
  std::chrono::microseconds deescalate_dwell{200'000};

  // ---- Utility-gated shedding (L1) ----

  /// At kShedLowUtility, predictions whose expected benefit falls in the
  /// bottom `shed_fraction` of the recently observed utility distribution
  /// are shed (0.5 sheds the bottom half).
  double shed_fraction = 0.5;
  /// How many recent utility observations feed the shedding quantile.
  size_t utility_window = 256;

  // ---- Serve-stale-within-bound (L3) ----

  /// Maximum age of a cache entry served in place of a miss at
  /// kServeStale. Entries older than this are never served stale.
  std::chrono::milliseconds stale_bound{1000};

  /// Per-session fair queueing in the pool feed (deficit round-robin
  /// across sessions) so one hot session cannot starve others.
  bool fair_queueing = true;
};

class BrownoutController {
 public:
  /// `obs` may be null (no metrics/trace are emitted); instruments are
  /// registered under `metric_prefix` (e.g. "rt.overload.").
  explicit BrownoutController(OverloadConfig config,
                              obs::Observability* obs = nullptr,
                              const std::string& metric_prefix =
                                  "rt.overload.");

  BrownoutController(const BrownoutController&) = delete;
  BrownoutController& operator=(const BrownoutController&) = delete;

  BrownoutLevel level() const {
    return static_cast<BrownoutLevel>(
        level_.load(std::memory_order_relaxed));
  }

  // ---- Gates (lock-free; called on the hot paths) ----

  /// False once speculation is fully shed (>= kShedAllSpeculation).
  bool AllowSpeculation() const {
    return level() < BrownoutLevel::kShedAllSpeculation;
  }
  /// True when ADQ reload passes should be skipped.
  bool ShedAdqReloads() const { return !AllowSpeculation(); }
  /// True when cache reads may fall back to bounded-staleness serving.
  bool ServeStaleAllowed() const {
    return level() >= BrownoutLevel::kServeStale;
  }
  /// True when new client queries are rejected with backpressure.
  bool RejectClient() const { return level() >= BrownoutLevel::kReject; }
  /// True when background checkpoints should be deferred.
  bool DeferCheckpoints() const { return !AllowSpeculation(); }

  /// Utility-gated shedding decision for one candidate prediction whose
  /// expected benefit is `utility_us` (probability x observed miss cost,
  /// microseconds). Below kShedLowUtility nothing is shed; at
  /// kShedLowUtility the bottom `shed_fraction` of the recent utility
  /// distribution is shed; above it everything is (callers normally check
  /// AllowSpeculation first and never reach this).
  bool ShouldShedPrediction(double utility_us) const;

  // ---- Inputs ----

  /// One pool-task queue sojourn (enqueue -> dequeue wall time). Drives
  /// the control loop; ThreadPoolConfig::sojourn_callback feeds this.
  void RecordSojourn(int64_t sojourn_us);

  /// One observed prediction utility; feeds the shedding quantile.
  void RecordUtility(double utility_us);

  /// Advances the control loop's clock without a sojourn sample. Called
  /// on client-query admission: above kShedAllSpeculation the pool feed
  /// is empty by construction (speculation is what fills it; client
  /// round trips run inline), so sojourn samples alone would freeze the
  /// level exactly when de-escalation matters most. Empty elapsed
  /// intervals count as calm, which is what lets a rejecting node
  /// probe its way back down.
  void Tick();

  // ---- Introspection / tests ----

  uint64_t level_ups() const {
    return level_ups_.load(std::memory_order_relaxed);
  }
  uint64_t level_downs() const {
    return level_downs_.load(std::memory_order_relaxed);
  }
  /// Current L1 shedding threshold (microseconds of expected benefit).
  double utility_floor() const {
    return utility_floor_.load(std::memory_order_relaxed);
  }
  const OverloadConfig& config() const { return config_; }

  /// Test hook: pins the level (transitions still counted/traced). The
  /// control loop resumes from the pinned level on the next interval, so
  /// tests that pin should use long intervals or keep feeding sojourns
  /// consistent with the pinned level.
  void ForceLevel(BrownoutLevel level);

 private:
  using Clock = std::chrono::steady_clock;

  /// Applies a transition to `next` (one step), with metrics + trace.
  /// Caller holds mu_.
  void TransitionLocked(int next);
  /// Folds the closed interval into a level decision. Caller holds mu_.
  void EvaluateIntervalLocked(Clock::time_point now);
  /// Recomputes the L1 utility floor from the recent window. Caller
  /// holds mu_.
  void RecomputeUtilityFloorLocked();

  const OverloadConfig config_;
  obs::Observability* obs_;

  std::atomic<int> level_{0};
  std::atomic<uint64_t> level_ups_{0};
  std::atomic<uint64_t> level_downs_{0};
  std::atomic<double> utility_floor_{0.0};

  std::mutex mu_;
  Clock::time_point interval_start_;
  Clock::time_point calm_since_;       // start of the current calm streak
  Clock::time_point last_transition_;
  int64_t interval_min_us_ = -1;  // -1: no samples this interval
  int64_t interval_max_us_ = 0;
  std::vector<double> utilities_;  // ring of recent utilities
  size_t utility_next_ = 0;
  bool utility_full_ = false;

  obs::Gauge* level_gauge_ = nullptr;
  obs::Counter* level_up_counter_ = nullptr;
  obs::Counter* level_down_counter_ = nullptr;
};

}  // namespace apollo::rt
