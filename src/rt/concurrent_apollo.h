// ConcurrentApollo: the Apollo middleware pipeline on real threads.
//
// The simulator runs the whole middleware on one deterministic event
// loop; this adapter runs the same pipeline — versioned result cache,
// session consistency, publish-subscribe single-flight, transition-graph
// learning, FDQ/ADQ discovery, freshness-gated pipelined prediction and
// informed ADQ reload — with hardware parallelism:
//
//   - Per-session client worker threads call Execute() synchronously.
//     The serving path (cache lookup, version-vector math, remote round
//     trip) runs in parallel across sessions; remote completions are
//     delivered as rt::Future values and only client threads block on
//     them.
//   - Predictive executions and ADQ reloads are dispatched to a bounded
//     rt::ThreadPool as kPredictive tasks; at the queue watermark they
//     are rejected (reject-predictions-first backpressure, the
//     thread-level mirror of the WAN shed policy).
//   - The learning/predict-decide stage — FDQ-graph mutation, readiness
//     tracking, freshness decisions — is serialized under one engine
//     lock (`learn_mu_`): graph mutations are microseconds against
//     millisecond WAN round trips, and a single writer keeps Algorithm
//     3/4's invariants without fine-grained graph locking. The lock-wait
//     histogram quantifies the cost.
//
// Lock ordering (DESIGN.md Section 9): learn_mu_ -> sessions_mu_ ->
// session.mu -> structure-internal leaf locks (cache shards, mapper /
// transition-graph stripes, dependency graph, inflight registry). No
// thread blocks on a Future while holding any of these, and pool worker
// threads never block on a Future at all.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/kv_cache.h"
#include "core/caching_middleware.h"
#include "core/config.h"
#include "core/dependency_graph.h"
#include "core/inflight_registry.h"
#include "core/param_mapper.h"
#include "core/template_registry.h"
#include "db/database.h"
#include "obs/observability.h"
#include "rt/db_gateway.h"
#include "rt/future.h"
#include "rt/overload.h"
#include "rt/thread_pool.h"
#include "sql/template_cache.h"

namespace apollo::persist {
struct RestoreStats;
}  // namespace apollo::persist

namespace apollo::rt {

/// Crash-tolerant learned state (DESIGN.md Section 11). With `path`
/// empty, persistence is fully disabled: no snapshot I/O, no
/// checkpointer thread, and no persistence instruments are registered.
struct PersistOptions {
  std::string path;  // snapshot file; "" disables persistence
  /// > 0 starts a background checkpointer that snapshots every interval.
  /// 0 means checkpoints happen only on demand / at shutdown.
  int checkpoint_interval_ms = 0;
  bool restore_on_startup = true;   // warm-restart from `path` if present
  bool checkpoint_on_shutdown = true;
};

struct ConcurrentApolloConfig {
  core::ApolloConfig apollo;  // learning tunables + feature toggles
  ThreadPoolConfig pool;      // prediction/I-O pool size + backpressure
  DbGatewayConfig gateway;    // real-time WAN round trip
  size_t cache_bytes = 8u << 20;
  size_t cache_shards = 8;
  PersistOptions persist;     // learned-state snapshots (off by default)
  /// Overload control & graceful brownout (DESIGN.md Section 12). Off by
  /// default: no controller, no deadlines, no fair queueing, no new
  /// instruments — byte-identical legacy behavior.
  OverloadConfig overload;
};

class ConcurrentApollo {
 public:
  /// `obs` may be null (a private bundle is created). Instruments are
  /// registered under `metric_prefix` ("rt." by default).
  ConcurrentApollo(db::Database* db, ConcurrentApolloConfig config,
                   obs::Observability* obs = nullptr,
                   const std::string& metric_prefix = "rt.");
  ~ConcurrentApollo();

  ConcurrentApollo(const ConcurrentApollo&) = delete;
  ConcurrentApollo& operator=(const ConcurrentApollo&) = delete;

  /// Executes one SQL statement on behalf of `client`, blocking the
  /// calling thread until the result is available (cache hit, coalesced
  /// wait, or remote round trip). Thread-safe; call from one worker
  /// thread per session for the intended parallelism. The no-deadline
  /// overload stamps `overload.default_deadline` when one is configured.
  util::Result<common::ResultSetPtr> Execute(core::ClientId client,
                                             const std::string& sql);
  /// Deadline-aware variant: work whose remaining budget cannot cover the
  /// WAN round trip is cancelled with DeadlineExceeded instead of queued
  /// (kNoDeadline = unbounded). At brownout level kReject the query is
  /// refused immediately with Unavailable (backpressure to the caller).
  util::Result<common::ResultSetPtr> Execute(core::ClientId client,
                                             const std::string& sql,
                                             Deadline deadline);

  /// Drains the pool and joins its workers (stopping the background
  /// checkpointer first, then — if configured — writing one final
  /// snapshot). Idempotent; also run by the destructor. Execute must not
  /// be called afterwards.
  void Shutdown();

  /// Takes a consistent copy of the learning state (templates, param
  /// mapper, dependency graph, per-session transition graphs and
  /// satisfied sets) under the engine/session locks, then encodes and
  /// writes it atomically to the configured snapshot path off-lock
  /// (copy-then-write). Lock-hold time lands in
  /// "persist.checkpoint_copy_wall_us". Error if persistence is
  /// disabled; thread-safe.
  util::Status CheckpointNow();

  /// Loads the snapshot at the configured path into the live structures
  /// (the constructor runs this when restore_on_startup is set).
  /// Damaged sections are skipped individually — everything intact still
  /// loads. Only learning state travels: the result cache and session
  /// version vectors restart empty, so restored knowledge is never
  /// mistaken for restored data freshness. kNotFound if no snapshot
  /// exists yet.
  util::Status RestoreNow(persist::RestoreStats* stats = nullptr);

  obs::Observability& observability() { return *obs_; }
  cache::KvCache& result_cache() { return cache_; }
  core::TemplateRegistry& templates() { return templates_; }
  const sql::TemplateCache& template_cache() const { return tcache_; }
  const core::DependencyGraph& dependency_graph() const { return deps_; }
  const core::InflightRegistry& inflight() const { return inflight_; }
  ThreadPool& pool() { return pool_; }
  /// Null unless overload control is enabled.
  BrownoutController* brownout() { return brownout_.get(); }
  const ConcurrentApolloConfig& config() const { return config_; }

  /// Microseconds of real time since construction — the runtime's clock,
  /// used wherever the simulated pipeline used the event loop's now().
  util::SimTime NowUs() const;

 private:
  /// A session plus the mutex that guards it (vv, stream, recent results,
  /// learning scratch state). core::ClientSession is reused verbatim so
  /// the learning code matches the simulated engine's.
  struct Session {
    Session(core::ClientId id, const core::ApolloConfig& config)
        : core(id, config) {}
    std::mutex mu;
    core::ClientSession core;
    /// Versions this session has itself written (a floor under the full
    /// vv). Brownout serve-stale (L3) relaxes monotonic reads but never
    /// read-your-writes: stale entries must still dominate this vector.
    /// Lives here, not in core::ClientSession, which is shared verbatim
    /// with the event-loop engine.
    cache::VersionVector written_vv;
  };

  /// What the single-flight registry publishes to subscribers.
  struct Published {
    util::Result<common::ResultSetPtr> result =
        util::Result<common::ResultSetPtr>(nullptr);
    cache::VersionVector stamp;
  };

  /// Everything the learning pass needs about a just-completed client
  /// query (the runtime's analogue of CachingMiddleware::CompletedQuery).
  struct Completed {
    uint64_t template_id = 0;
    core::TemplateMeta* meta = nullptr;
    std::vector<common::Value> params;
    common::ResultSetPtr result;  // nullptr on write
    bool read_only = true;
    std::vector<std::string> tables_written;
  };

  Session& SessionFor(core::ClientId client);

  /// Admits one query through the template cache (lex fast path with full
  /// parse fallback), recording the real admission cost into the
  /// admit_fast/admit_full wall histograms.
  util::Result<sql::AdmittedQuery> AdmitQuery(const std::string& sql);

  util::Result<common::ResultSetPtr> ExecuteRead(Session& session,
                                                 sql::AdmittedQuery adm,
                                                 Deadline deadline);
  util::Result<common::ResultSetPtr> ExecuteWrite(Session& session,
                                                  sql::AdmittedQuery adm,
                                                  Deadline deadline);
  /// Leader / fallback remote read: round trip, cache fill, vv advance,
  /// publish (when `publish`), learning pass.
  util::Result<common::ResultSetPtr> RemoteRead(Session& session,
                                                const sql::AdmittedQuery& adm,
                                                bool publish,
                                                Deadline deadline);
  /// Post-completion bookkeeping + learning for a finished client read.
  void FinishRead(Session& session, const sql::AdmittedQuery& adm,
                  common::ResultSetPtr result, util::SimDuration remote_time);

  /// Locks learn_mu_, recording the wait into the lock-wait histogram.
  std::unique_lock<std::mutex> LockLearn();

  // --- Learning pipeline (adapted from ApolloMiddleware; all called with
  // learn_mu_ held, and they lock session.mu internally) ---
  void OnQueryCompleted(Session& session, const Completed& q);
  void OnPredictionCompleted(Session& session, uint64_t template_id,
                             common::ResultSetPtr result, int depth);
  std::vector<core::Fdq*> FindNewFdqs(core::ClientSession& session,
                                      uint64_t qt);
  std::vector<core::Fdq*> MarkReadyDependency(core::ClientSession& session,
                                              uint64_t qt);
  bool DepsFresh(const core::ClientSession& session,
                 const core::Fdq& f) const;
  void TryPredict(Session& session, core::Fdq* f, uint64_t trigger,
                  int depth);
  bool FreshnessAllows(core::ClientSession& session, const core::Fdq& f,
                       uint64_t trigger);
  double EstimateRuntimeUs(const core::ClientSession& session,
                           const core::Fdq& f,
                           std::unordered_set<uint64_t>& visiting) const;
  void CollectReadTables(const core::Fdq& f,
                         std::unordered_set<std::string>* tables) const;
  void ReloadAdqs(Session& session, uint64_t write_template,
                  const std::vector<std::string>& tables_written);
  /// Drops per-session satisfied state for a removed FDQ across all
  /// sessions. `already_locked` (the session driving the disproof, whose
  /// mu the caller holds) is skipped to keep the mutex non-recursive.
  void ClearSatisfied(uint64_t fdq_id, Session* already_locked);

  /// Dispatches one predictive execution of `sql` to the pool (sheds at
  /// the backpressure watermark). Called with learn_mu_ held.
  /// `probability` is the transition probability that motivated the
  /// prediction; it rides into the cache entry for cost-aware eviction
  /// (DESIGN.md §13).
  void PredictiveExecute(Session& session, uint64_t template_id,
                         const std::string& sql, int depth,
                         double probability);
  /// Pool-task body for a predictive execution.
  void RunPrediction(Session& session, uint64_t template_id,
                     const std::string& sql, int depth, double probability);

  /// Starts the periodic checkpointer thread (persistence enabled and
  /// checkpoint_interval_ms > 0 only).
  void StartCheckpointer();

  /// Pool config derived from config_: applies the deprecated static
  /// watermark (ApolloConfig::rt_predictive_watermark) and, when overload
  /// control is on, fair queueing + the controller's sojourn feed. Called
  /// from the member-init list after brownout_ is constructed.
  ThreadPoolConfig BuildPoolConfig();

  /// Brownout gates evaluated inside TryPredict. True = prediction vetoed
  /// (counters/trace already recorded). Called with learn_mu_ + s.mu held.
  bool BrownoutVetoesPrediction(Session& s, core::Fdq* f, uint64_t trigger);

  db::Database* db_;
  ConcurrentApolloConfig config_;

  std::unique_ptr<obs::Observability> owned_obs_;
  obs::Observability* obs_;

  cache::KvCache cache_;
  core::TemplateRegistry templates_;
  /// Admission cache: template fingerprint fast path + prepared statements
  /// (DESIGN.md Section 10). Steady state admits without building an AST.
  sql::TemplateCache tcache_;
  core::InflightRegistry inflight_;
  core::ParamMapper mapper_;
  core::DependencyGraph deps_;
  /// Non-null iff overload control is enabled. Declared (and constructed)
  /// BEFORE pool_: the pool's workers may invoke the sojourn callback as
  /// soon as they start.
  std::unique_ptr<BrownoutController> brownout_;
  ThreadPool pool_;
  DbGateway gateway_;

  std::mutex sessions_mu_;
  std::unordered_map<core::ClientId, std::unique_ptr<Session>> sessions_;

  /// Serializes the learning/predict-decide stage (see file comment).
  std::mutex learn_mu_;

  std::chrono::steady_clock::time_point epoch_;
  bool shut_down_ = false;

  /// Background checkpointer (persistence enabled only). stop flag and
  /// cv are guarded by persist_mu_; the thread itself never holds
  /// persist_mu_ while checkpointing, so Shutdown can always interrupt a
  /// sleeping checkpointer immediately.
  std::thread checkpointer_;
  std::mutex persist_mu_;
  std::condition_variable persist_cv_;
  bool stop_checkpointer_ = false;
  /// Serializes whole checkpoints (on-demand CheckpointNow vs. the
  /// periodic thread); never held while serving queries.
  std::mutex checkpoint_mu_;

  struct Counters {
    obs::Counter* queries;
    obs::Counter* reads;
    obs::Counter* writes;
    obs::Counter* cache_hits;
    obs::Counter* cache_misses;
    obs::Counter* coalesced_waits;
    obs::Counter* parse_errors;
    obs::Counter* subscriber_fallbacks;
    obs::Counter* predictions_issued;
    obs::Counter* predictions_shed;
    obs::Counter* predictions_skipped;
    obs::Counter* adq_reloads;
    obs::Counter* fdqs_discovered;
    obs::Counter* fdqs_invalidated;
  };
  Counters c_{};
  obs::HistogramMetric* query_wall_us_;       // client-observed latency
  obs::HistogramMetric* learn_lock_wait_wall_us_;
  obs::HistogramMetric* admit_fast_wall_us_;  // lex fast-path admits
  obs::HistogramMetric* admit_full_wall_us_;  // full-parse admits

  // Persistence + bounded-memory instruments; registered only when the
  // corresponding feature is on, so default configs export exactly the
  // pre-existing instrument set.
  obs::Counter* checkpoints_ = nullptr;
  obs::Counter* checkpoint_errors_ = nullptr;
  obs::HistogramMetric* checkpoint_copy_wall_us_ = nullptr;
  obs::HistogramMetric* checkpoint_write_wall_us_ = nullptr;
  obs::Counter* learning_pruned_edges_ = nullptr;
  obs::Counter* learning_pruned_pairs_ = nullptr;

  // Overload-control instruments; registered only when overload control
  // is enabled (same discipline as the persistence instruments).
  obs::Counter* overload_rejected_ = nullptr;
  obs::Counter* deadline_missed_ = nullptr;
  obs::Counter* stale_served_ = nullptr;
  obs::Counter* predictions_shed_utility_ = nullptr;
  obs::Counter* adq_reloads_shed_ = nullptr;
  obs::Counter* checkpoint_deferred_ = nullptr;
};

}  // namespace apollo::rt
