#include "rt/db_gateway.h"

#include <thread>

namespace apollo::rt {

RemoteResult DbGateway::ExecuteInline(const std::string& sql, bool is_write,
                                      const std::vector<std::string>& tables) {
  if (config_.rtt.count() > 0) std::this_thread::sleep_for(config_.rtt);
  RemoteResult out;
  if (!is_write) {
    // Snapshot first: an understamp is safe, a stale-as-fresh stamp is not.
    out.versions = db_->VersionsOf(tables);
    out.result = db_->Execute(sql);
    return out;
  }
  out.result = db_->Execute(sql);
  if (out.result.ok()) out.versions = db_->VersionsOf(tables);
  return out;
}

RemoteResult DbGateway::ExecutePreparedInline(
    const sql::CachedTemplatePtr& tpl,
    const std::vector<common::Value>& params, bool is_write,
    const std::vector<std::string>& tables) {
  if (config_.rtt.count() > 0) std::this_thread::sleep_for(config_.rtt);
  RemoteResult out;
  if (!is_write) {
    out.versions = db_->VersionsOf(tables);
    out.result = db_->ExecutePrepared(*tpl->statement, params);
    return out;
  }
  out.result = db_->ExecutePrepared(*tpl->statement, params);
  if (out.result.ok()) out.versions = db_->VersionsOf(tables);
  return out;
}

Future<RemoteResult> DbGateway::ExecuteAsync(ThreadPool* pool,
                                             const std::string& sql,
                                             bool is_write,
                                             std::vector<std::string> tables) {
  Promise<RemoteResult> promise;
  Future<RemoteResult> future = promise.GetFuture();
  bool ok = pool->Submit(
      TaskClass::kClient,
      [this, promise, sql, is_write, tables = std::move(tables)] {
        promise.Set(ExecuteInline(sql, is_write, tables));
      });
  if (!ok) {
    RemoteResult failed;
    failed.result = util::Status::Unavailable("runtime shut down");
    promise.Set(std::move(failed));
  }
  return future;
}

Future<RemoteResult> DbGateway::ExecutePreparedAsync(
    ThreadPool* pool, sql::CachedTemplatePtr tpl,
    std::vector<common::Value> params, bool is_write,
    std::vector<std::string> tables) {
  Promise<RemoteResult> promise;
  Future<RemoteResult> future = promise.GetFuture();
  bool ok = pool->Submit(
      TaskClass::kClient,
      [this, promise, tpl = std::move(tpl), params = std::move(params),
       is_write, tables = std::move(tables)] {
        promise.Set(ExecutePreparedInline(tpl, params, is_write, tables));
      });
  if (!ok) {
    RemoteResult failed;
    failed.result = util::Status::Unavailable("runtime shut down");
    promise.Set(std::move(failed));
  }
  return future;
}

}  // namespace apollo::rt
