#include "rt/db_gateway.h"

#include <thread>

namespace apollo::rt {

bool DbGateway::AdmitOp(Deadline deadline, RemoteResult* out) {
  if (deadline != kNoDeadline &&
      std::chrono::steady_clock::now() + config_.rtt > deadline) {
    // The remaining budget cannot cover the round trip: cancel before
    // paying it, so overload sheds work instead of executing it late.
    out->result = util::Status::DeadlineExceeded("query budget exhausted");
    return false;
  }
  if (config_.fail_every_n > 0) {
    const uint64_t n = op_counter_.fetch_add(1, std::memory_order_relaxed);
    if ((n + 1) % config_.fail_every_n == 0) {
      // Fault injection: fail AFTER the round trip (the client paid the
      // latency) but before the database sees the statement, so the op
      // provably did not run and is safe to retry.
      if (config_.rtt.count() > 0) std::this_thread::sleep_for(config_.rtt);
      out->result = util::Status::Unavailable("injected transport fault");
      return false;
    }
  }
  return true;
}

RemoteResult DbGateway::ExecuteInline(const std::string& sql, bool is_write,
                                      const std::vector<std::string>& tables,
                                      Deadline deadline) {
  RemoteResult out;
  if (!AdmitOp(deadline, &out)) return out;
  if (config_.rtt.count() > 0) std::this_thread::sleep_for(config_.rtt);
  if (!is_write) {
    // Snapshot first: an understamp is safe, a stale-as-fresh stamp is not.
    out.versions = db_->VersionsOf(tables);
    out.result = db_->Execute(sql);
    return out;
  }
  out.result = db_->Execute(sql);
  if (out.result.ok()) out.versions = db_->VersionsOf(tables);
  return out;
}

RemoteResult DbGateway::ExecutePreparedInline(
    const sql::CachedTemplatePtr& tpl,
    const std::vector<common::Value>& params, bool is_write,
    const std::vector<std::string>& tables, Deadline deadline) {
  RemoteResult out;
  if (!AdmitOp(deadline, &out)) return out;
  if (config_.rtt.count() > 0) std::this_thread::sleep_for(config_.rtt);
  if (!is_write) {
    out.versions = db_->VersionsOf(tables);
    out.result = db_->ExecutePrepared(*tpl->statement, params);
    return out;
  }
  out.result = db_->ExecutePrepared(*tpl->statement, params);
  if (out.result.ok()) out.versions = db_->VersionsOf(tables);
  return out;
}

Future<RemoteResult> DbGateway::ExecuteAsync(ThreadPool* pool,
                                             const std::string& sql,
                                             bool is_write,
                                             std::vector<std::string> tables,
                                             Deadline deadline,
                                             uint64_t session) {
  Promise<RemoteResult> promise;
  Future<RemoteResult> future = promise.GetFuture();
  bool ok = pool->Submit(
      TaskClass::kClient, session,
      [this, promise, sql, is_write, tables = std::move(tables), deadline] {
        promise.Set(ExecuteInline(sql, is_write, tables, deadline));
      });
  if (!ok) {
    RemoteResult failed;
    failed.result = util::Status::Unavailable("runtime shut down");
    promise.Set(std::move(failed));
  }
  return future;
}

Future<RemoteResult> DbGateway::ExecutePreparedAsync(
    ThreadPool* pool, sql::CachedTemplatePtr tpl,
    std::vector<common::Value> params, bool is_write,
    std::vector<std::string> tables, Deadline deadline, uint64_t session) {
  Promise<RemoteResult> promise;
  Future<RemoteResult> future = promise.GetFuture();
  bool ok = pool->Submit(
      TaskClass::kClient, session,
      [this, promise, tpl = std::move(tpl), params = std::move(params),
       is_write, tables = std::move(tables), deadline] {
        promise.Set(ExecutePreparedInline(tpl, params, is_write, tables,
                                          deadline));
      });
  if (!ok) {
    RemoteResult failed;
    failed.result = util::Status::Unavailable("runtime shut down");
    promise.Set(std::move(failed));
  }
  return future;
}

}  // namespace apollo::rt
