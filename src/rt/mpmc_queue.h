// MpmcQueue: bounded multi-producer multi-consumer FIFO work queue.
//
// The runtime's thread pool drains one of these; producers are client
// worker threads (remote I/O tasks) and the learning engine (predictive
// tasks). The queue is the backpressure point: TryPush lets callers
// observe fullness and shed optional work instead of queueing it
// (reject-predictions-first, mirroring the WAN degradation policy), while
// Push blocks for work that must not be dropped.
//
// Implementation: ring buffer + mutex + two condition variables. At the
// queue sizes the runtime uses (hundreds of entries, tasks that each
// cover a WAN round trip) the mutex is never the bottleneck; the
// microbenchmarks in bench/micro_core.cc put a number on it.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace apollo::rt {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    ring_.resize(capacity_);
  }

  /// Blocks until there is room (or the queue is closed). Returns false
  /// only if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || size_ < capacity_; });
    if (closed_) return false;
    PushLocked(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || size_ >= capacity_) return false;
      PushLocked(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available; false when the queue is closed
  /// and drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || size_ > 0; });
    if (size_ == 0) return false;  // closed and drained
    PopLocked(out);
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Non-blocking pop; false when empty.
  bool TryPop(T* out) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (size_ == 0) return false;
      PopLocked(out);
    }
    not_full_.notify_one();
    return true;
  }

  /// Wakes all blocked producers and consumers; Pop keeps returning
  /// queued items until drained, then false.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }
  size_t capacity() const { return capacity_; }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  void PushLocked(T item) {
    ring_[(head_ + size_) % capacity_] = std::move(item);
    ++size_;
  }
  void PopLocked(T* out) {
    *out = std::move(ring_[head_]);
    head_ = (head_ + 1) % capacity_;
    --size_;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<T> ring_;
  size_t head_ = 0;
  size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace apollo::rt
