// ThreadPool: fixed-size worker pool over a bounded MPMC queue.
//
// This is the real-thread analogue of the simulator's ServiceStation: the
// middleware runtime dispatches remote I/O and prediction work here
// instead of scheduling simulated events. Two task classes implement the
// backpressure policy:
//
//   kClient     — work on a client's critical path (remote reads/writes).
//                 Never dropped: Submit blocks until queue space frees.
//   kPredictive — optional work (predictive executions, ADQ reloads).
//                 Rejected as soon as the queue reaches the predictive
//                 watermark, mirroring the shed-predictions-first WAN
//                 policy: when the system falls behind, speculation is the
//                 first thing to go.
//
// Each worker records the queue wait (enqueue -> dequeue, wall time) of
// every task it runs into a per-thread histogram, so the throughput bench
// can report where time goes as worker count scales. The same measurement
// can be fed to an external observer (sojourn_callback) — the brownout
// controller's CoDel-style control signal (DESIGN.md Section 12).
//
// With fair_queueing enabled the feed switches from one global FIFO to a
// SessionFairQueue: per-session lanes drained round-robin, so one hot
// session's backlog cannot starve other sessions' client queries. The
// default (off) keeps the original MpmcQueue path byte-identical.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/observability.h"
#include "rt/fair_queue.h"
#include "rt/mpmc_queue.h"

namespace apollo::rt {

enum class TaskClass : uint8_t {
  kClient,      // client-critical; never shed
  kPredictive,  // speculative; shed under backpressure
};

struct ThreadPoolConfig {
  int num_threads = 4;
  size_t queue_capacity = 256;
  /// Queue depth at (or above) which kPredictive submissions are rejected.
  /// Defaults to half the capacity.
  size_t predictive_watermark = 0;
  /// Per-session fair queueing: tasks are drained round-robin across the
  /// session keys passed to Submit instead of global-FIFO. Off by default
  /// (byte-identical legacy behavior).
  bool fair_queueing = false;
  /// Called once per executed task with its queue sojourn (enqueue ->
  /// dequeue wall time, microseconds). The brownout controller's input
  /// signal; may be empty.
  std::function<void(int64_t)> sojourn_callback;
};

class ThreadPool {
 public:
  /// `obs` may be null (a private bundle is created); `metric_prefix`
  /// qualifies the pool's instruments (e.g. "rt.pool.").
  explicit ThreadPool(ThreadPoolConfig config,
                      obs::Observability* obs = nullptr,
                      const std::string& metric_prefix = "rt.pool.");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Submits a task. kClient blocks until space; kPredictive is rejected
  /// (returns false) when the queue is at the watermark or full. Returns
  /// false after Shutdown. `session` keys the fair-queueing lane (ignored
  /// unless fair_queueing is on).
  bool Submit(TaskClass klass, std::function<void()> fn) {
    return Submit(klass, /*session=*/0, std::move(fn));
  }
  bool Submit(TaskClass klass, uint64_t session, std::function<void()> fn);

  /// Drains outstanding tasks and joins the workers. Idempotent; also run
  /// by the destructor.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }
  size_t queue_depth() const {
    return fair_ != nullptr ? fair_->size() : queue_.size();
  }
  size_t predictive_watermark() const {
    return config_.predictive_watermark;
  }
  uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  uint64_t rejected_predictive() const {
    return rejected_predictive_->Value();
  }

 private:
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop(int index);
  /// Pops from whichever feed is active; false when closed and drained.
  bool PopTask(Task* out) {
    return fair_ != nullptr ? fair_->Pop(out) : queue_.Pop(out);
  }

  ThreadPoolConfig config_;
  MpmcQueue<Task> queue_;
  /// Non-null iff fair_queueing is on; replaces queue_ as the feed.
  std::unique_ptr<SessionFairQueue<Task>> fair_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> executed_{0};
  bool shut_down_ = false;

  std::unique_ptr<obs::Observability> owned_obs_;
  obs::Observability* obs_;
  obs::Counter* submitted_client_;
  obs::Counter* submitted_predictive_;
  obs::Counter* rejected_predictive_;
  /// Per-worker queue-wait (enqueue -> dequeue) wall-time histograms,
  /// "<prefix>worker<i>.queue_wait_wall_us".
  std::vector<obs::HistogramMetric*> queue_wait_;
};

}  // namespace apollo::rt
