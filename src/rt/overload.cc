#include "rt/overload.h"

#include <algorithm>

namespace apollo::rt {

namespace {
constexpr int kMaxLevel = static_cast<int>(BrownoutLevel::kReject);
}  // namespace

BrownoutController::BrownoutController(OverloadConfig config,
                                       obs::Observability* obs,
                                       const std::string& metric_prefix)
    : config_(std::move(config)), obs_(obs) {
  const auto now = Clock::now();
  interval_start_ = now;
  calm_since_ = now;
  last_transition_ = now;
  utilities_.resize(std::max<size_t>(1, config_.utility_window));
  if (obs_ != nullptr) {
    obs::MetricsRegistry& m = obs_->metrics;
    level_gauge_ = m.RegisterGauge(metric_prefix + "level");
    level_up_counter_ = m.RegisterCounter(metric_prefix + "level_up");
    level_down_counter_ = m.RegisterCounter(metric_prefix + "level_down");
  }
}

bool BrownoutController::ShouldShedPrediction(double utility_us) const {
  const BrownoutLevel l = level();
  if (l < BrownoutLevel::kShedLowUtility) return false;
  if (l > BrownoutLevel::kShedLowUtility) return true;
  return utility_us < utility_floor_.load(std::memory_order_relaxed);
}

void BrownoutController::RecordSojourn(int64_t sojourn_us) {
  const auto now = Clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  if (interval_min_us_ < 0 || sojourn_us < interval_min_us_) {
    interval_min_us_ = sojourn_us;
  }
  interval_max_us_ = std::max(interval_max_us_, sojourn_us);
  if (now - interval_start_ >= config_.interval) {
    EvaluateIntervalLocked(now);
  }
}

void BrownoutController::RecordUtility(double utility_us) {
  std::lock_guard<std::mutex> lock(mu_);
  utilities_[utility_next_] = utility_us;
  if (++utility_next_ == utilities_.size()) {
    utility_next_ = 0;
    utility_full_ = true;
    // Refresh the floor once per full window turn so L1 shedding stays
    // live even when the sojourn feed (the other recompute trigger) is
    // starved; amortized O(1) per observation.
    RecomputeUtilityFloorLocked();
  }
}

void BrownoutController::Tick() {
  const auto now = Clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  if (now - interval_start_ >= config_.interval) {
    EvaluateIntervalLocked(now);
  }
}

void BrownoutController::EvaluateIntervalLocked(Clock::time_point now) {
  const bool had_samples = interval_min_us_ >= 0;
  const bool pressed =
      had_samples &&
      interval_min_us_ > config_.target_sojourn.count();
  // An empty interval is calm by definition: the pool drained everything
  // it was given (or was given nothing). A sampled interval is calm when
  // its MINIMUM sojourn dropped under relief — one fast dequeue proves
  // the standing queue is gone (the CoDel argument, both directions).
  // Judging calm by the interval max instead deadlocks recovery on busy
  // hosts: a single slow worker wakeup per interval — routine ms-scale
  // scheduler noise — would poison every interval into the neither-calm-
  // nor-pressed band and the level could never come back down.
  const bool calm =
      !had_samples || interval_min_us_ < config_.relief_sojourn.count();

  if (pressed) {
    calm_since_ = now;
    const int cur = level_.load(std::memory_order_relaxed);
    if (cur < kMaxLevel) TransitionLocked(cur + 1);
  } else if (calm) {
    const int cur = level_.load(std::memory_order_relaxed);
    if (cur > 0 && now - calm_since_ >= config_.deescalate_dwell &&
        now - last_transition_ >= config_.deescalate_dwell) {
      TransitionLocked(cur - 1);
    }
  } else {
    // Neither pressed nor calm: the queue is working but keeping up.
    // Hold the level and restart the calm streak.
    calm_since_ = now;
  }

  RecomputeUtilityFloorLocked();
  interval_start_ = now;
  interval_min_us_ = -1;
  interval_max_us_ = 0;
}

void BrownoutController::TransitionLocked(int next) {
  const int old = level_.load(std::memory_order_relaxed);
  if (next == old) return;
  level_.store(next, std::memory_order_relaxed);
  last_transition_ = Clock::now();
  if (next > old) {
    level_ups_.fetch_add(1, std::memory_order_relaxed);
    if (level_up_counter_ != nullptr) level_up_counter_->Inc();
  } else {
    level_downs_.fetch_add(1, std::memory_order_relaxed);
    if (level_down_counter_ != nullptr) level_down_counter_->Inc();
  }
  if (level_gauge_ != nullptr) level_gauge_->Set(static_cast<double>(next));
  if (obs_ != nullptr && obs_->trace.enabled()) {
    obs_->trace.Record(obs::TraceEventType::kBrownoutLevel, /*client=*/-1,
                       /*template_id=*/static_cast<uint64_t>(old),
                       obs::SkipReason::kNone,
                       /*aux=*/static_cast<uint64_t>(next));
  }
}

void BrownoutController::RecomputeUtilityFloorLocked() {
  const size_t n = utility_full_ ? utilities_.size() : utility_next_;
  if (n == 0) {
    utility_floor_.store(0.0, std::memory_order_relaxed);
    return;
  }
  // nth_element over a scratch copy: n is the (small, fixed) window size.
  std::vector<double> scratch(utilities_.begin(),
                              utilities_.begin() + static_cast<long>(n));
  size_t k = static_cast<size_t>(config_.shed_fraction *
                                 static_cast<double>(n));
  if (k >= n) k = n - 1;
  std::nth_element(scratch.begin(), scratch.begin() + static_cast<long>(k),
                   scratch.end());
  utility_floor_.store(scratch[k], std::memory_order_relaxed);
}

void BrownoutController::ForceLevel(BrownoutLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  const int target = static_cast<int>(level);
  // Step through intermediate levels so the trace keeps its one-step
  // invariant even when tests pin levels directly.
  int cur = level_.load(std::memory_order_relaxed);
  while (cur != target) {
    cur += target > cur ? 1 : -1;
    TransitionLocked(cur);
  }
  calm_since_ = Clock::now();
}

}  // namespace apollo::rt
