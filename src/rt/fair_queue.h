// SessionFairQueue: bounded MPMC work queue with per-session round-robin
// dequeue (DESIGN.md Section 12).
//
// The plain MpmcQueue is FIFO over every producer: one hot session that
// floods the pool feed — a misbehaving client, or a session whose
// prediction fan-out explodes — puts its whole backlog ahead of every
// other session's next client query. This queue keeps one FIFO per
// session key and drains them round-robin, one task per session per turn:
// a session with a single queued query waits behind at most one task from
// each other active session, never behind a hot session's entire backlog.
// Per-session order is preserved (each session's lane is FIFO).
//
// Semantics mirror MpmcQueue so the ThreadPool can swap between them:
// Push blocks on the shared byte budget (total capacity across sessions),
// TryPush is the backpressure probe, Close drains then stops. The
// capacity is global, not per-session — fairness governs ORDER, while
// admission control (the predictive watermark / brownout controller)
// governs VOLUME.
//
// Implementation: mutex + two condition variables, one deque per active
// session, and a round-robin ring of session keys. Same cost model as
// MpmcQueue: tasks each cover a WAN round trip, the lock is never the
// bottleneck.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace apollo::rt {

template <typename T>
class SessionFairQueue {
 public:
  explicit SessionFairQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Blocks until there is room (or the queue is closed). Returns false
  /// only if the queue was closed.
  bool Push(uint64_t session, T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || size_ < capacity_; });
    if (closed_) return false;
    PushLocked(session, std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool TryPush(uint64_t session, T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || size_ >= capacity_) return false;
      PushLocked(session, std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available; false when the queue is closed
  /// and drained. Items are delivered round-robin across sessions, FIFO
  /// within a session.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || size_ > 0; });
    if (size_ == 0) return false;  // closed and drained
    PopLocked(out);
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Wakes all blocked producers and consumers; Pop keeps returning
  /// queued items until drained, then false.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }
  size_t capacity() const { return capacity_; }

  /// Sessions with at least one queued task (diagnostics).
  size_t active_sessions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
  }

 private:
  void PushLocked(uint64_t session, T item) {
    auto [it, inserted] = lanes_.try_emplace(session);
    it->second.push_back(std::move(item));
    if (it->second.size() == 1) {
      // Lane was empty: (re)enter the round-robin ring. Insert at the
      // cursor so a newly active session waits one full turn, which keeps
      // a pathological empty/refill lane from jumping the queue.
      ring_.insert(ring_.begin() + static_cast<long>(cursor_), session);
      ++cursor_;
      if (cursor_ >= ring_.size()) cursor_ = 0;
    }
    ++size_;
  }

  void PopLocked(T* out) {
    if (cursor_ >= ring_.size()) cursor_ = 0;
    const uint64_t session = ring_[cursor_];
    auto it = lanes_.find(session);
    std::deque<T>& lane = it->second;
    *out = std::move(lane.front());
    lane.pop_front();
    if (lane.empty()) {
      // Keep the (empty) lane object for reuse, but leave the ring.
      ring_.erase(ring_.begin() + static_cast<long>(cursor_));
      if (cursor_ >= ring_.size()) cursor_ = 0;
    } else {
      ++cursor_;
      if (cursor_ >= ring_.size()) cursor_ = 0;
    }
    --size_;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::unordered_map<uint64_t, std::deque<T>> lanes_;
  std::vector<uint64_t> ring_;  // active sessions, round-robin order
  size_t cursor_ = 0;           // next session to serve
  size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace apollo::rt
