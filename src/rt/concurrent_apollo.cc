#include "rt/concurrent_apollo.h"

#include <algorithm>
#include <utility>

#include "persist/snapshot.h"
#include "persist/state_codec.h"
#include "sql/template.h"

namespace apollo::rt {

namespace {
/// Fallback runtime estimate for templates never executed remotely
/// (mirrors ApolloMiddleware's constant).
constexpr double kDefaultRuntimeUs = 100'000.0;  // 100 ms

int64_t WallMicrosSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Result-cache eviction options from the learning config (DESIGN.md §13).
cache::KvCacheOptions BuildCacheOptions(const core::ApolloConfig& cfg) {
  cache::KvCacheOptions opt;
  opt.policy = cfg.cache_policy;
  opt.window_fraction = cfg.cache_window_fraction;
  return opt;
}
}  // namespace

ConcurrentApollo::ConcurrentApollo(db::Database* db,
                                   ConcurrentApolloConfig config,
                                   obs::Observability* obs,
                                   const std::string& metric_prefix)
    : db_(db),
      config_(std::move(config)),
      owned_obs_(obs == nullptr ? std::make_unique<obs::Observability>()
                                : nullptr),
      obs_(obs == nullptr ? owned_obs_.get() : obs),
      cache_(config_.cache_bytes, config_.cache_shards, obs_,
             metric_prefix + "cache.", BuildCacheOptions(config_.apollo)),
      mapper_(config_.apollo.verification_period,
              core::ParamMapper::kDefaultStripes,
              config_.apollo.max_param_pairs),
      brownout_(config_.overload.enabled
                    ? std::make_unique<BrownoutController>(
                          config_.overload, obs_,
                          metric_prefix + "overload.")
                    : nullptr),
      pool_(BuildPoolConfig(), obs_, metric_prefix + "pool."),
      gateway_(db, config_.gateway),
      epoch_(std::chrono::steady_clock::now()) {
  obs::MetricsRegistry& m = obs_->metrics;
  const std::string& p = metric_prefix;
  c_.queries = m.RegisterCounter(p + "queries");
  c_.reads = m.RegisterCounter(p + "reads");
  c_.writes = m.RegisterCounter(p + "writes");
  c_.cache_hits = m.RegisterCounter(p + "cache_hits");
  c_.cache_misses = m.RegisterCounter(p + "cache_misses");
  c_.coalesced_waits = m.RegisterCounter(p + "coalesced_waits");
  c_.parse_errors = m.RegisterCounter(p + "parse_errors");
  c_.subscriber_fallbacks = m.RegisterCounter(p + "subscriber_fallbacks");
  c_.predictions_issued = m.RegisterCounter(p + "predictions_issued");
  c_.predictions_shed = m.RegisterCounter(p + "predictions_shed");
  c_.predictions_skipped = m.RegisterCounter(p + "predictions_skipped");
  c_.adq_reloads = m.RegisterCounter(p + "adq_reloads");
  c_.fdqs_discovered = m.RegisterCounter(p + "fdqs_discovered");
  c_.fdqs_invalidated = m.RegisterCounter(p + "fdqs_invalidated");
  query_wall_us_ = m.RegisterHistogram(p + "latency.query_wall_us");
  learn_lock_wait_wall_us_ =
      m.RegisterHistogram(p + "latency.learn_lock_wait_wall_us");
  admit_fast_wall_us_ = m.RegisterHistogram(p + "latency.admit_fast_wall_us");
  admit_full_wall_us_ = m.RegisterHistogram(p + "latency.admit_full_wall_us");
  if (config_.apollo.max_transition_edges > 0) {
    learning_pruned_edges_ = m.RegisterCounter(p + "learning_pruned_edges");
  }
  if (config_.apollo.max_param_pairs > 0) {
    learning_pruned_pairs_ = m.RegisterCounter(p + "learning_pruned_pairs");
    mapper_.SetPruneCounter(learning_pruned_pairs_);
  }
  if (config_.overload.enabled) {
    overload_rejected_ = m.RegisterCounter(p + "overload.rejected");
    deadline_missed_ = m.RegisterCounter(p + "overload.deadline_missed");
    stale_served_ = m.RegisterCounter(p + "overload.stale_served");
    predictions_shed_utility_ =
        m.RegisterCounter(p + "overload.predictions_shed_utility");
    adq_reloads_shed_ = m.RegisterCounter(p + "overload.adq_reloads_shed");
  }
  if (!config_.persist.path.empty()) {
    checkpoints_ = m.RegisterCounter(p + "persist.checkpoints");
    checkpoint_errors_ = m.RegisterCounter(p + "persist.checkpoint_errors");
    if (config_.overload.enabled) {
      checkpoint_deferred_ =
          m.RegisterCounter(p + "persist.checkpoint_deferred");
    }
    checkpoint_copy_wall_us_ =
        m.RegisterHistogram(p + "persist.checkpoint_copy_wall_us");
    checkpoint_write_wall_us_ =
        m.RegisterHistogram(p + "persist.checkpoint_write_wall_us");
    if (config_.persist.restore_on_startup) {
      // Warm restart before any worker thread exists; a missing snapshot
      // (first boot) or damaged sections are not errors.
      util::Status s = RestoreNow();
      (void)s;
    }
    if (config_.persist.checkpoint_interval_ms > 0) StartCheckpointer();
  }
}

ConcurrentApollo::~ConcurrentApollo() { Shutdown(); }

ThreadPoolConfig ConcurrentApollo::BuildPoolConfig() {
  ThreadPoolConfig pc = config_.pool;
  // DEPRECATED static watermark: honored only where the pool config left
  // the default, and superseded entirely by the brownout controller.
  if (pc.predictive_watermark == 0 &&
      config_.apollo.rt_predictive_watermark > 0 &&
      !config_.overload.enabled) {
    pc.predictive_watermark = config_.apollo.rt_predictive_watermark;
  }
  if (brownout_ != nullptr) {
    pc.fair_queueing = config_.overload.fair_queueing;
    BrownoutController* b = brownout_.get();
    pc.sojourn_callback = [b](int64_t us) { b->RecordSojourn(us); };
  }
  return pc;
}

void ConcurrentApollo::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  if (checkpointer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(persist_mu_);
      stop_checkpointer_ = true;
    }
    persist_cv_.notify_all();
    checkpointer_.join();
  }
  pool_.Shutdown();
  if (!config_.persist.path.empty() && config_.persist.checkpoint_on_shutdown) {
    // Final snapshot after the pool drained: no in-flight learning left.
    util::Status s = CheckpointNow();
    (void)s;  // failures are counted in persist.checkpoint_errors
  }
}

void ConcurrentApollo::StartCheckpointer() {
  checkpointer_ = std::thread([this] {
    const auto interval =
        std::chrono::milliseconds(config_.persist.checkpoint_interval_ms);
    std::unique_lock<std::mutex> lock(persist_mu_);
    while (!stop_checkpointer_) {
      if (persist_cv_.wait_for(lock, interval,
                               [this] { return stop_checkpointer_; })) {
        break;
      }
      lock.unlock();
      if (brownout_ != nullptr && brownout_->DeferCheckpoints()) {
        // Under heavy brownout the snapshot's lock-hold time and file I/O
        // compete with draining the backlog; skip this tick and let the
        // next interval (or shutdown) pick it up.
        checkpoint_deferred_->Inc();
      } else {
        util::Status s = CheckpointNow();
        (void)s;  // counted in persist.checkpoint_errors
      }
      lock.lock();
    }
  });
}

util::Status ConcurrentApollo::CheckpointNow() {
  if (config_.persist.path.empty()) {
    return util::Status::InvalidArgument("persistence is disabled");
  }
  // One checkpoint at a time: an on-demand call racing the periodic
  // checkpointer would write the same target concurrently for no gain.
  std::lock_guard<std::mutex> serialize(checkpoint_mu_);
  // Copy-then-write: plain State copies under the locks, all encoding
  // and file I/O after release. Learning-state mutation happens under
  // learn_mu_, so the copy is consistent across structures.
  core::TemplateRegistry::State tstate;
  core::ParamMapper::State mstate;
  core::DependencyGraph::State dstate;
  persist::SessionsState sstate;
  const auto copy_t0 = std::chrono::steady_clock::now();
  {
    auto learn = LockLearn();
    tstate = templates_.ExportState();
    mstate = mapper_.ExportState();
    dstate = deps_.ExportState();
    const util::SimTime now_us = NowUs();
    std::lock_guard<std::mutex> slock(sessions_mu_);
    sstate.sessions.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) {
      std::lock_guard<std::mutex> lk(session->mu);
      // Fold windows already closed by now into the graphs (the scanner
      // is lazy); only still-open windows stay out of the snapshot.
      session->core.stream.Process(now_us);
      persist::SessionState s;
      s.id = id;
      s.graphs = session->core.stream.ExportGraphState();
      s.satisfied.reserve(session->core.satisfied.size());
      for (const auto& [fdq, deps] : session->core.satisfied) {
        std::vector<uint64_t> sorted_deps(deps.begin(), deps.end());
        std::sort(sorted_deps.begin(), sorted_deps.end());
        s.satisfied.emplace_back(fdq, std::move(sorted_deps));
      }
      std::sort(s.satisfied.begin(), s.satisfied.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      sstate.sessions.push_back(std::move(s));
    }
  }
  checkpoint_copy_wall_us_->Record(WallMicrosSince(copy_t0));

  std::sort(sstate.sessions.begin(), sstate.sessions.end(),
            [](const persist::SessionState& a, const persist::SessionState& b) {
              return a.id < b.id;
            });
  const auto write_t0 = std::chrono::steady_clock::now();
  persist::SnapshotWriter w;
  w.AddSection(persist::kSectionTemplates, persist::EncodeTemplates(tstate));
  w.AddSection(persist::kSectionSessions, persist::EncodeSessions(sstate));
  w.AddSection(persist::kSectionParamMapper,
               persist::EncodeParamMapper(mstate));
  w.AddSection(persist::kSectionDependencyGraph,
               persist::EncodeDependencyGraph(dstate));
  const std::string bytes = w.Serialize(static_cast<uint64_t>(NowUs()));
  util::Status s = persist::WriteFileAtomic(config_.persist.path, bytes);
  checkpoint_write_wall_us_->Record(WallMicrosSince(write_t0));
  if (!s.ok()) {
    checkpoint_errors_->Inc();
    return s;
  }
  checkpoints_->Inc();
  if (obs_->trace.enabled()) {
    obs_->trace.Record(obs::TraceEventType::kSnapshotSaved, -1, 0,
                       obs::SkipReason::kNone, bytes.size());
  }
  return util::Status::OK();
}

util::Status ConcurrentApollo::RestoreNow(persist::RestoreStats* stats) {
  if (config_.persist.path.empty()) {
    return util::Status::InvalidArgument("persistence is disabled");
  }
  persist::RestoreStats local;
  if (stats == nullptr) stats = &local;
  persist::Snapshot snap;
  APOLLO_ASSIGN_OR_RETURN(snap,
                          persist::ReadSnapshotFile(config_.persist.path));
  stats->sections_total = static_cast<uint32_t>(snap.sections.size());
  stats->truncated = snap.truncated;

  // The delta-t ladder sessions in the snapshot must match (same rule as
  // the event-loop middleware: a sessions section applies to every
  // session or to none).
  std::vector<util::SimDuration> ladder = config_.apollo.delta_ts;
  std::sort(ladder.begin(), ladder.end());
  if (ladder.empty()) ladder.push_back(util::Seconds(15));

  auto learn = LockLearn();
  for (const persist::SnapshotSection& sec : snap.sections) {
    stats->snapshot_bytes += persist::kSectionHeaderBytes + sec.payload.size();
    bool loaded = false;
    bool unknown = false;
    if (sec.crc_ok) {
      switch (sec.type) {
        case persist::kSectionTemplates: {
          auto st = persist::DecodeTemplates(sec.payload);
          if (st.ok()) {
            stats->templates += st->templates.size();
            templates_.ImportState(*st);
            loaded = true;
          }
          break;
        }
        case persist::kSectionParamMapper: {
          auto st = persist::DecodeParamMapper(sec.payload);
          if (st.ok()) {
            stats->pairs += st->pairs.size();
            mapper_.ImportState(*st);
            loaded = true;
          }
          break;
        }
        case persist::kSectionDependencyGraph: {
          auto st = persist::DecodeDependencyGraph(sec.payload);
          if (st.ok()) {
            stats->fdqs += st->fdqs.size();
            deps_.ImportState(*st);
            loaded = true;
          }
          break;
        }
        case persist::kSectionSessions: {
          auto st = persist::DecodeSessions(sec.payload);
          if (st.ok()) {
            bool ladders_match = true;
            for (const persist::SessionState& s : st->sessions) {
              if (s.graphs.size() != ladder.size()) {
                ladders_match = false;
                break;
              }
              for (size_t i = 0; i < ladder.size(); ++i) {
                if (s.graphs[i].delta_t != ladder[i]) ladders_match = false;
              }
            }
            if (ladders_match) {
              std::lock_guard<std::mutex> slock(sessions_mu_);
              for (const persist::SessionState& s : st->sessions) {
                auto it = sessions_.find(s.id);
                if (it == sessions_.end()) {
                  it = sessions_
                           .emplace(s.id, std::make_unique<Session>(
                                              s.id, config_.apollo))
                           .first;
                  if (learning_pruned_edges_ != nullptr) {
                    it->second->core.stream.SetPruneCounter(
                        learning_pruned_edges_);
                  }
                }
                Session& session = *it->second;
                std::lock_guard<std::mutex> lk(session.mu);
                util::Status gs =
                    session.core.stream.ImportGraphState(s.graphs);
                (void)gs;  // ladder pre-validated above
                for (const auto& [fdq, dep_ids] : s.satisfied) {
                  auto& set = session.core.satisfied[fdq];
                  set.insert(dep_ids.begin(), dep_ids.end());
                }
              }
              stats->sessions += st->sessions.size();
              loaded = true;
            }
          }
          break;
        }
        default:
          unknown = true;
          break;
      }
    }
    if (loaded) {
      ++stats->sections_loaded;
      continue;
    }
    if (unknown) {
      ++stats->sections_unknown;
    } else {
      ++stats->sections_corrupt;
    }
    if (obs_->trace.enabled()) {
      obs_->trace.Record(obs::TraceEventType::kSnapshotSectionSkipped, -1, 0,
                         obs::SkipReason::kNone, sec.type);
    }
  }
  stats->snapshot_bytes += persist::kHeaderBytes;
  if (obs_->trace.enabled()) {
    obs_->trace.Record(obs::TraceEventType::kSnapshotRestored, -1, 0,
                       obs::SkipReason::kNone, stats->sections_loaded);
  }
  return util::Status::OK();
}

util::SimTime ConcurrentApollo::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::unique_lock<std::mutex> ConcurrentApollo::LockLearn() {
  auto t0 = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(learn_mu_);
  learn_lock_wait_wall_us_->Record(WallMicrosSince(t0));
  return lock;
}

ConcurrentApollo::Session& ConcurrentApollo::SessionFor(
    core::ClientId client) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(client);
  if (it == sessions_.end()) {
    it = sessions_
             .emplace(client,
                      std::make_unique<Session>(client, config_.apollo))
             .first;
    if (learning_pruned_edges_ != nullptr) {
      it->second->core.stream.SetPruneCounter(learning_pruned_edges_);
    }
  }
  return *it->second;
}

util::Result<sql::AdmittedQuery> ConcurrentApollo::AdmitQuery(
    const std::string& sql) {
  auto t0 = std::chrono::steady_clock::now();
  auto adm = tcache_.Admit(sql);
  if (!adm.ok()) {
    admit_full_wall_us_->Record(WallMicrosSince(t0));
    return adm;
  }
  (adm->via_fast_path ? admit_fast_wall_us_ : admit_full_wall_us_)
      ->Record(WallMicrosSince(t0));
  return adm;
}

util::Result<common::ResultSetPtr> ConcurrentApollo::Execute(
    core::ClientId client, const std::string& sql) {
  Deadline deadline = kNoDeadline;
  if (brownout_ != nullptr && config_.overload.default_deadline.count() > 0) {
    deadline =
        std::chrono::steady_clock::now() + config_.overload.default_deadline;
  }
  return Execute(client, sql, deadline);
}

util::Result<common::ResultSetPtr> ConcurrentApollo::Execute(
    core::ClientId client, const std::string& sql, Deadline deadline) {
  auto t0 = std::chrono::steady_clock::now();
  c_.queries->Inc();
  if (brownout_ != nullptr) brownout_->Tick();
  if (brownout_ != nullptr && brownout_->RejectClient()) {
    // L4: shed at the door so queued work drains. Unavailable is
    // retryable — callers back off and retry, which is the point.
    overload_rejected_->Inc();
    if (obs_->trace.enabled()) {
      obs_->trace.Record(obs::TraceEventType::kOverloadRejected,
                         static_cast<int>(client), 0);
    }
    return util::Status::Unavailable("overload: rejecting new queries");
  }
  auto adm = AdmitQuery(sql);
  if (!adm.ok()) {
    c_.parse_errors->Inc();
    return adm.status();
  }
  Session& session = SessionFor(client);
  auto out = adm->read_only()
                 ? ExecuteRead(session, std::move(*adm), deadline)
                 : ExecuteWrite(session, std::move(*adm), deadline);
  if (!out.ok() &&
      out.status().code() == util::StatusCode::kDeadlineExceeded &&
      deadline_missed_ != nullptr) {
    deadline_missed_->Inc();
    if (obs_->trace.enabled()) {
      obs_->trace.Record(obs::TraceEventType::kDeadlineMiss,
                         static_cast<int>(client), 0);
    }
  }
  query_wall_us_->Record(WallMicrosSince(t0));
  return out;
}

util::Result<common::ResultSetPtr> ConcurrentApollo::ExecuteRead(
    Session& session, sql::AdmittedQuery adm, Deadline deadline) {
  c_.reads->Inc();
  core::TemplateMeta* meta = templates_.Intern(adm);
  templates_.BumpObservations(meta);

  cache::VersionVector vv_copy;
  {
    std::lock_guard<std::mutex> lock(session.mu);
    vv_copy = session.core.vv;
  }
  auto entry =
      cache_.GetCompatible(adm.canonical_text, vv_copy, adm.tables_read());
  if (entry.has_value()) {
    c_.cache_hits->Inc();
    {
      std::lock_guard<std::mutex> lock(session.mu);
      session.core.vv.MergeMax(entry->stamp, adm.tables_read());
    }
    common::ResultSetPtr rs = entry->result;
    FinishRead(session, adm, entry->result, /*remote_time=*/0);
    return rs;
  }
  // L3 serve-stale-within-bound: before paying a remote round trip the
  // middleware can no longer afford, serve an entry that fails the full
  // session-freshness check but (a) is younger than stale_bound and
  // (b) still covers this session's own writes (read-your-writes holds;
  // cross-session monotonic reads are what brownout relaxes).
  if (brownout_ != nullptr && brownout_->ServeStaleAllowed()) {
    cache::VersionVector written_floor;
    {
      std::lock_guard<std::mutex> lock(session.mu);
      written_floor = session.written_vv;
    }
    const int64_t min_put_us =
        NowUs() - std::chrono::duration_cast<std::chrono::microseconds>(
                      config_.overload.stale_bound)
                      .count();
    auto stale = cache_.GetStaleWithin(adm.canonical_text, written_floor,
                                       adm.tables_read(), min_put_us);
    if (stale.has_value()) {
      c_.cache_hits->Inc();
      stale_served_->Inc();
      if (obs_->trace.enabled()) {
        obs_->trace.Record(obs::TraceEventType::kStaleServed,
                           static_cast<int>(session.core.id),
                           adm.fingerprint());
      }
      {
        // MergeMax only ever advances the vector, so acknowledging the
        // stale entry's stamp is safe even when it trails the session.
        std::lock_guard<std::mutex> lock(session.mu);
        session.core.vv.MergeMax(stale->stamp, adm.tables_read());
      }
      common::ResultSetPtr rs = stale->result;
      FinishRead(session, adm, stale->result, /*remote_time=*/0);
      return rs;
    }
  }
  c_.cache_misses->Inc();

  if (config_.apollo.enable_pubsub_dedup) {
    const std::string key = adm.canonical_text;
    Promise<Published> promise;
    bool leader = inflight_.BeginOrSubscribe(
        key, [promise](const util::Result<common::ResultSetPtr>& result,
                       const cache::VersionVector& stamp) {
          promise.Set(Published{result, stamp});
        });
    if (!leader) {
      // Another thread is executing this exact query: block on its
      // published outcome (client worker threads may wait on futures).
      c_.coalesced_waits->Inc();
      Published pub = promise.GetFuture().Take();
      if (!pub.result.ok()) {
        if (pub.result.status().IsRetryable()) {
          // The leader died on a transport fault (often a prediction with
          // no retry budget); re-issue privately.
          c_.subscriber_fallbacks->Inc();
          return RemoteRead(session, adm, /*publish=*/false, deadline);
        }
        return pub.result.status();
      }
      {
        std::lock_guard<std::mutex> lock(session.mu);
        for (const auto& t : adm.tables_read()) {
          session.core.vv.AdvanceTo(t, pub.stamp.Get(t));
        }
      }
      common::ResultSetPtr rs = pub.result.value();
      FinishRead(session, adm, std::move(rs), /*remote_time=*/0);
      return pub.result;
    }
  }
  return RemoteRead(session, adm, /*publish=*/true, deadline);
}

util::Result<common::ResultSetPtr> ConcurrentApollo::RemoteRead(
    Session& session, const sql::AdmittedQuery& adm, bool publish,
    Deadline deadline) {
  const std::string key = adm.canonical_text;
  const uint64_t session_key = static_cast<uint64_t>(session.core.id);
  auto t0 = std::chrono::steady_clock::now();
  // Preparable admissions ship the cached statement + bound parameters to
  // the gateway; the SQL text is never re-parsed.
  Future<RemoteResult> future =
      adm.preparable()
          ? gateway_.ExecutePreparedAsync(&pool_, adm.tpl, adm.params,
                                          /*is_write=*/false,
                                          adm.tables_read(), deadline,
                                          session_key)
          : gateway_.ExecuteAsync(&pool_, key, /*is_write=*/false,
                                  adm.tables_read(), deadline, session_key);
  RemoteResult rr = future.Take();
  util::SimDuration remote_time = WallMicrosSince(t0);

  if (!rr.result.ok()) {
    if (publish) inflight_.Complete(key, rr.result, {});
    return rr.result.status();
  }
  cache::VersionVector stamp;
  for (const auto& [t, v] : rr.versions) stamp.Set(t, v);
  {
    cache::KvCache::PutAttrs attrs;
    attrs.template_id = adm.fingerprint();
    attrs.put_time_us = NowUs();
    // The gateway round trip just paid is the miss cost a future hit
    // saves; cost-aware eviction (DESIGN.md §13) weighs it.
    attrs.miss_cost_us = static_cast<double>(remote_time);
    cache_.Put(key, *rr.result, stamp, attrs);
  }
  {
    std::lock_guard<std::mutex> lock(session.mu);
    for (const auto& t : adm.tables_read()) {
      session.core.vv.AdvanceTo(t, stamp.Get(t));
    }
  }
  common::ResultSetPtr rs = *rr.result;
  if (publish) inflight_.Complete(key, rr.result, stamp);
  FinishRead(session, adm, rs, remote_time);
  return util::Result<common::ResultSetPtr>(std::move(rs));
}

void ConcurrentApollo::FinishRead(Session& session,
                                  const sql::AdmittedQuery& adm,
                                  common::ResultSetPtr result,
                                  util::SimDuration remote_time) {
  core::TemplateMeta* meta = templates_.Get(adm.fingerprint());
  if (meta != nullptr && remote_time > 0) meta->RecordExecution(remote_time);
  if (!config_.apollo.enable_prediction) return;
  Completed q;
  q.template_id = adm.fingerprint();
  q.meta = meta;
  q.params = adm.params;
  q.result = std::move(result);
  q.read_only = true;
  auto lock = LockLearn();
  OnQueryCompleted(session, q);
}

util::Result<common::ResultSetPtr> ConcurrentApollo::ExecuteWrite(
    Session& session, sql::AdmittedQuery adm, Deadline deadline) {
  c_.writes->Inc();
  core::TemplateMeta* meta = templates_.Intern(adm);
  templates_.BumpObservations(meta);

  const uint64_t session_key = static_cast<uint64_t>(session.core.id);
  auto t0 = std::chrono::steady_clock::now();
  Future<RemoteResult> future =
      adm.preparable()
          ? gateway_.ExecutePreparedAsync(&pool_, adm.tpl, adm.params,
                                          /*is_write=*/true,
                                          adm.tables_written(), deadline,
                                          session_key)
          : gateway_.ExecuteAsync(&pool_, adm.canonical_text,
                                  /*is_write=*/true, adm.tables_written(),
                                  deadline, session_key);
  RemoteResult rr = future.Take();
  util::SimDuration remote_time = WallMicrosSince(t0);
  if (!rr.result.ok()) return rr.result.status();

  {
    std::lock_guard<std::mutex> lock(session.mu);
    // The client has now observed the post-write versions of every table
    // the statement touched (paper 3.2).
    for (const auto& [t, v] : rr.versions) {
      session.core.vv.AdvanceTo(t, v);
      // Floor for brownout serve-stale: the session's own writes are
      // never relaxed, whatever the degradation level.
      session.written_vv.AdvanceTo(t, v);
    }
  }
  if (meta != nullptr) meta->RecordExecution(remote_time);

  if (config_.apollo.enable_prediction) {
    Completed q;
    q.template_id = adm.fingerprint();
    q.meta = meta;
    q.params = std::move(adm.params);
    q.result = nullptr;
    q.read_only = false;
    q.tables_written = adm.tables_written();
    auto lock = LockLearn();
    OnQueryCompleted(session, q);
  }
  return rr.result;
}

// ---------------------------------------------------------------------------
// Learning / prediction (ApolloMiddleware's pipeline under learn_mu_)
// ---------------------------------------------------------------------------

void ConcurrentApollo::OnQueryCompleted(Session& s, const Completed& q) {
  const util::SimTime now = NowUs();
  std::lock_guard<std::mutex> slock(s.mu);
  core::ClientSession& session = s.core;

  // --- Learning: stream + transition graphs (Algorithm 1) ---
  session.stream.Append(q.template_id, now);
  session.stream.Process(now);

  if (q.read_only && q.result != nullptr) {
    session.recent[q.template_id] = {q.result, now};
  }
  session.recent_params[q.template_id] = q.params;

  // --- Parameter-mapping observations (Section 2.3), scoped to sources
  // newer than this query's own previous execution ---
  util::SimTime prev_dst_time = -1;
  {
    auto lit = session.last_seen.find(q.template_id);
    if (lit != session.last_seen.end()) prev_dst_time = lit->second;
    session.last_seen[q.template_id] = now;
  }
  const util::SimDuration primary_dt = session.stream.primary().delta_t();
  if (q.read_only && !q.params.empty()) {
    auto entries = session.stream.EntriesWithin(now, primary_dt);
    if (!entries.empty()) entries.pop_back();  // drop the current query
    std::unordered_set<uint64_t> seen;
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
      if (it->qt == q.template_id) continue;
      if (it->time <= prev_dst_time) break;  // earlier transaction
      if (!seen.insert(it->qt).second) continue;
      auto rit = session.recent.find(it->qt);
      if (rit == session.recent.end()) continue;
      if (rit->second.result == nullptr) continue;
      if (rit->second.time + primary_dt < now) continue;
      bool disproven = mapper_.ObservePair(it->qt, *rit->second.result,
                                           q.template_id, q.params);
      if (disproven && deps_.Contains(q.template_id)) {
        deps_.Remove(q.template_id);
        ClearSatisfied(q.template_id, &s);
        c_.fdqs_invalidated->Inc();
      }
    }
  }

  // --- Core prediction routine (Algorithm 2) ---
  std::vector<core::Fdq*> new_fdqs = FindNewFdqs(session, q.template_id);
  std::vector<core::Fdq*> ready = MarkReadyDependency(session, q.template_id);
  for (core::Fdq* f : new_fdqs) {
    if (DepsFresh(session, *f) &&
        std::find(ready.begin(), ready.end(), f) == ready.end()) {
      ready.push_back(f);
    }
  }
  for (core::Fdq* f : ready) {
    TryPredict(s, f, q.template_id, /*depth=*/0);
  }

  // --- Informed ADQ reload after writes (Section 3.4.2) ---
  if (!q.read_only && config_.apollo.enable_adq_reload) {
    if (brownout_ != nullptr && brownout_->ShedAdqReloads()) {
      // >= L2: reload passes are speculation too, and they fan out hard.
      adq_reloads_shed_->Inc();
    } else {
      ReloadAdqs(s, q.template_id, q.tables_written);
    }
  }
}

void ConcurrentApollo::OnPredictionCompleted(Session& s,
                                             uint64_t template_id,
                                             common::ResultSetPtr result,
                                             int depth) {
  if (!config_.apollo.enable_prediction) return;
  auto lock = LockLearn();
  std::lock_guard<std::mutex> slock(s.mu);
  s.core.recent[template_id] = {std::move(result), NowUs()};
  if (!config_.apollo.enable_pipelining) return;
  if (depth + 1 > config_.apollo.max_pipeline_depth) return;
  std::vector<core::Fdq*> ready = MarkReadyDependency(s.core, template_id);
  for (core::Fdq* f : ready) {
    TryPredict(s, f, template_id, depth + 1);
  }
}

void ConcurrentApollo::ClearSatisfied(uint64_t fdq_id,
                                      Session* already_locked) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto& [_, session] : sessions_) {
    if (session.get() == already_locked) {
      session->core.satisfied.erase(fdq_id);
      continue;
    }
    std::lock_guard<std::mutex> slock(session->mu);
    session->core.satisfied.erase(fdq_id);
  }
}

std::vector<core::Fdq*> ConcurrentApollo::FindNewFdqs(
    core::ClientSession& session, uint64_t qt) {
  std::vector<core::Fdq*> out;
  auto related = session.stream.primary().Successors(qt, config_.apollo.tau);
  std::vector<uint64_t> candidates;
  candidates.reserve(related.size() + 1);
  for (const auto& [id, _] : related) candidates.push_back(id);
  candidates.push_back(qt);

  for (uint64_t id : candidates) {
    if (deps_.Contains(id)) continue;  // already_seen_deps
    const core::TemplateMeta* meta = templates_.Get(id);
    if (meta == nullptr || !meta->read_only) continue;
    auto sources = mapper_.GetSources(id, meta->num_placeholders);
    if (!sources.complete) continue;

    std::vector<core::SourceRef> chosen;
    chosen.reserve(sources.per_param.size());
    for (const auto& options : sources.per_param) {
      // Prefer a source that is already a known FDQ/ADQ (deepens
      // pipelines); otherwise take the first confirmed mapping.
      const core::SourceRef* pick = &options.front();
      for (const auto& opt : options) {
        const core::Fdq* src_fdq = deps_.Get(opt.src);
        if (src_fdq != nullptr && !src_fdq->invalid) {
          pick = &opt;
          break;
        }
      }
      chosen.push_back(*pick);
    }
    core::Fdq* f = deps_.Add(id, std::move(chosen));
    c_.fdqs_discovered->Inc();
    out.push_back(f);
  }
  return out;
}

std::vector<core::Fdq*> ConcurrentApollo::MarkReadyDependency(
    core::ClientSession& session, uint64_t qt) {
  std::vector<core::Fdq*> ready;
  for (core::Fdq* f : deps_.DependentsOf(qt)) {
    if (f->invalid) continue;
    auto& sat = session.satisfied[f->id];
    sat.insert(qt);
    if (sat.size() >= f->deps.size()) {
      ready.push_back(f);
      sat.clear();  // reset: must be satisfied again next time
    }
  }
  return ready;
}

bool ConcurrentApollo::DepsFresh(const core::ClientSession& session,
                                 const core::Fdq& f) const {
  const util::SimTime now = NowUs();
  for (uint64_t dep : f.deps) {
    auto it = session.recent.find(dep);
    if (it == session.recent.end() || it->second.result == nullptr) {
      return false;
    }
    if (it->second.time + config_.apollo.recent_result_ttl < now) {
      return false;
    }
  }
  return true;
}

void ConcurrentApollo::TryPredict(Session& s, core::Fdq* f, uint64_t trigger,
                                  int depth) {
  if (f->invalid) return;
  core::ClientSession& session = s.core;
  const core::TemplateMeta* meta = templates_.Get(f->id);
  if (meta == nullptr) return;

  if (config_.apollo.enable_freshness_check &&
      !FreshnessAllows(session, *f, trigger)) {
    c_.predictions_skipped->Inc();
    return;
  }

  if (brownout_ != nullptr && BrownoutVetoesPrediction(s, f, trigger)) {
    return;
  }

  // Confidence of this prediction — the observed probability the client
  // issues f within delta-t of the trigger — rides into the cache entry
  // so cost-aware eviction can weigh it (DESIGN.md §13). TryPredict runs
  // under learn_mu_, so reading the transition graph here is safe.
  const double probability =
      session.stream.primary().TransitionProbability(trigger, f->id);

  // One prediction per source row (bounded fan-out), row r of every source
  // feeding fan-out instance r.
  const util::SimTime now = NowUs();
  std::string sql;  // instantiation buffer, reused across fan-out rows
  for (int row = 0; row < config_.apollo.max_fanout_rows; ++row) {
    std::vector<common::Value> params(f->sources.size());
    bool instantiable = true;
    for (size_t p = 0; p < f->sources.size(); ++p) {
      const core::SourceRef& src = f->sources[p];
      auto it = session.recent.find(src.src);
      if (it == session.recent.end() || it->second.result == nullptr ||
          it->second.time + config_.apollo.recent_result_ttl < now) {
        instantiable = false;
        break;
      }
      const common::ResultSet& rs = *it->second.result;
      if (static_cast<size_t>(row) >= rs.num_rows() ||
          static_cast<size_t>(src.col) >= rs.num_columns()) {
        instantiable = false;
        break;
      }
      params[p] = rs.At(static_cast<size_t>(row),
                        static_cast<size_t>(src.col));
    }
    if (!instantiable) {
      if (row == 0) c_.predictions_skipped->Inc();
      break;
    }
    auto status = sql::InstantiateTo(meta->template_text, params, &sql);
    if (!status.ok()) {
      c_.predictions_skipped->Inc();
      break;
    }
    PredictiveExecute(s, f->id, sql, depth, probability);
    if (f->sources.empty()) break;  // parameterless: exactly one instance
  }
}

bool ConcurrentApollo::BrownoutVetoesPrediction(Session& s, core::Fdq* f,
                                                uint64_t trigger) {
  if (!brownout_->AllowSpeculation()) {
    c_.predictions_skipped->Inc();
    if (obs_->trace.enabled()) {
      obs_->trace.Record(obs::TraceEventType::kPredictionSkipped,
                         static_cast<int>(s.core.id), f->id,
                         obs::SkipReason::kOverload);
    }
    return true;
  }
  // Expected benefit of this prediction: how likely the client is to issue
  // f after the trigger (transition probability, floored by f's overall
  // popularity so cold graphs still rank) times the remote round trip a
  // hit would save.
  const core::TemplateMeta* meta = templates_.Get(f->id);
  double p = s.core.stream.primary().TransitionProbability(trigger, f->id);
  if (meta != nullptr) {
    const uint64_t total =
        std::max<uint64_t>(1, templates_.total_observations());
    const double popularity =
        static_cast<double>(
            meta->observations.load(std::memory_order_relaxed)) /
        static_cast<double>(total);
    p = std::max(p, popularity);
  }
  const double cost_us = (meta != nullptr && meta->mean_exec_us > 0)
                             ? meta->mean_exec_us.load()
                             : kDefaultRuntimeUs;
  const double utility_us = p * cost_us;
  brownout_->RecordUtility(utility_us);
  if (brownout_->ShouldShedPrediction(utility_us)) {
    predictions_shed_utility_->Inc();
    c_.predictions_skipped->Inc();
    if (obs_->trace.enabled()) {
      obs_->trace.Record(obs::TraceEventType::kPredictionSkipped,
                         static_cast<int>(s.core.id), f->id,
                         obs::SkipReason::kLowUtility);
    }
    return true;
  }
  return false;
}

double ConcurrentApollo::EstimateRuntimeUs(
    const core::ClientSession& session, const core::Fdq& f,
    std::unordered_set<uint64_t>& visiting) const {
  if (!visiting.insert(f.id).second) return 0.0;  // dependency loop
  const core::TemplateMeta* meta = templates_.Get(f.id);
  double own = (meta != nullptr && meta->mean_exec_us > 0)
                   ? meta->mean_exec_us.load()
                   : kDefaultRuntimeUs;
  const util::SimTime now = NowUs();
  double dep_max = 0.0;
  for (uint64_t dep : f.deps) {
    auto it = session.recent.find(dep);
    if (it != session.recent.end() && it->second.result != nullptr &&
        it->second.time + config_.apollo.recent_result_ttl >= now) {
      continue;  // fresh input: contributes nothing
    }
    const core::Fdq* d = deps_.Get(dep);
    double est;
    if (d != nullptr && !d->invalid) {
      est = EstimateRuntimeUs(session, *d, visiting);
    } else {
      const core::TemplateMeta* dm = templates_.Get(dep);
      est = (dm != nullptr && dm->mean_exec_us > 0)
                ? dm->mean_exec_us.load()
                : kDefaultRuntimeUs;
    }
    dep_max = std::max(dep_max, est);
  }
  visiting.erase(f.id);
  return own + dep_max;
}

void ConcurrentApollo::CollectReadTables(
    const core::Fdq& f, std::unordered_set<std::string>* tables) const {
  std::vector<uint64_t> frontier = {f.id};
  std::unordered_set<uint64_t> visited;
  while (!frontier.empty()) {
    uint64_t id = frontier.back();
    frontier.pop_back();
    if (!visited.insert(id).second) continue;
    const core::TemplateMeta* meta = templates_.Get(id);
    if (meta != nullptr) {
      for (const auto& t : meta->tables_read) tables->insert(t);
    }
    const core::Fdq* node = deps_.Get(id);
    if (node != nullptr) {
      for (uint64_t dep : node->deps) frontier.push_back(dep);
    }
  }
}

bool ConcurrentApollo::FreshnessAllows(core::ClientSession& session,
                                       const core::Fdq& f,
                                       uint64_t trigger) {
  std::unordered_set<uint64_t> visiting;
  double est_us = EstimateRuntimeUs(session, f, visiting);
  const core::TransitionGraph& graph = session.stream.GraphCovering(
      static_cast<util::SimDuration>(est_us));

  std::unordered_set<std::string> read_tables;
  CollectReadTables(f, &read_tables);

  double invalidation_mass = graph.SuccessorProbabilityMass(
      trigger, [&](uint64_t succ) {
        const core::TemplateMeta* meta = templates_.Get(succ);
        if (meta == nullptr || meta->read_only) return false;
        for (const auto& t : meta->tables_written) {
          if (read_tables.count(t) > 0) return true;
        }
        return false;
      });
  return invalidation_mass < config_.apollo.tau;
}

void ConcurrentApollo::ReloadAdqs(
    Session& s, uint64_t write_template,
    const std::vector<std::string>& tables_written) {
  core::ClientSession& session = s.core;
  const uint64_t total =
      std::max<uint64_t>(1, templates_.total_observations());

  for (const core::Fdq* f : deps_.Adqs()) {
    const core::TemplateMeta* meta = templates_.Get(f->id);
    if (meta == nullptr) continue;

    // Only hierarchies whose data was just written need reloading.
    std::unordered_set<std::string> read_tables;
    CollectReadTables(*f, &read_tables);
    bool affected = false;
    for (const auto& t : tables_written) {
      if (read_tables.count(t) > 0) {
        affected = true;
        break;
      }
    }
    if (!affected) continue;

    // cost(Qt) = P(Qt) * mean_rt(Qt)  [Section 3.4.2].
    double p = static_cast<double>(meta->observations) /
               static_cast<double>(total);
    double cost = p * meta->mean_exec_us / 1000.0;
    if (cost < config_.apollo.alpha) continue;

    c_.adq_reloads->Inc();
    // Execute the hierarchy's roots; pipelining fills in dependents as
    // their inputs land.
    std::vector<const core::Fdq*> frontier = {f};
    std::unordered_set<uint64_t> visited;
    while (!frontier.empty()) {
      const core::Fdq* node = frontier.back();
      frontier.pop_back();
      if (!visited.insert(node->id).second) continue;
      if (node->deps.empty()) {
        TryPredict(s, const_cast<core::Fdq*>(node), write_template,
                   /*depth=*/0);
        continue;
      }
      bool all_known = true;
      for (uint64_t dep : node->deps) {
        const core::Fdq* d = deps_.Get(dep);
        if (d == nullptr) {
          all_known = false;
          continue;
        }
        frontier.push_back(d);
      }
      if (!all_known && DepsFresh(session, *node)) {
        TryPredict(s, const_cast<core::Fdq*>(node), write_template, 0);
      }
    }
  }
}

void ConcurrentApollo::PredictiveExecute(Session& s, uint64_t template_id,
                                         const std::string& sql, int depth,
                                         double probability) {
  bool accepted = pool_.Submit(
      TaskClass::kPredictive, static_cast<uint64_t>(s.core.id),
      [this, &s, template_id, sql, depth, probability] {
        RunPrediction(s, template_id, sql, depth, probability);
      });
  if (!accepted) {
    // Backpressure: the pool's queue is at the watermark — speculation is
    // the first load to go (thread-level shed-predictions-first).
    c_.predictions_shed->Inc();
    return;
  }
  c_.predictions_issued->Inc();
}

void ConcurrentApollo::RunPrediction(Session& s, uint64_t template_id,
                                     const std::string& sql, int depth,
                                     double probability) {
  auto adm = AdmitQuery(sql);
  if (!adm.ok() || !adm->read_only()) {
    c_.predictions_skipped->Inc();
    return;
  }
  const std::string key = adm->canonical_text;

  cache::VersionVector vv_copy;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    vv_copy = s.core.vv;
  }
  // Never predictively execute what is already usable from the cache.
  if (cache_.ContainsCompatible(key, vv_copy, adm->tables_read())) {
    c_.predictions_skipped->Inc();
    return;
  }
  if (config_.apollo.enable_pubsub_dedup) {
    bool leader = inflight_.BeginOrSubscribe(
        key, [this, &s, template_id, depth](
                 const util::Result<common::ResultSetPtr>& result,
                 const cache::VersionVector& stamp) {
          (void)stamp;
          if (result.ok()) {
            OnPredictionCompleted(s, template_id, result.value(), depth);
          }
        });
    if (!leader) {
      c_.predictions_skipped->Inc();
      return;
    }
  }

  auto t0 = std::chrono::steady_clock::now();
  RemoteResult rr =
      adm->preparable()
          ? gateway_.ExecutePreparedInline(adm->tpl, adm->params,
                                           /*is_write=*/false,
                                           adm->tables_read())
          : gateway_.ExecuteInline(key, /*is_write=*/false,
                                   adm->tables_read());
  if (!rr.result.ok()) {
    inflight_.Complete(key, rr.result, {});
    return;
  }
  const int64_t remote_wall_us = WallMicrosSince(t0);
  cache::VersionVector stamp;
  for (const auto& [t, v] : rr.versions) stamp.Set(t, v);
  {
    cache::KvCache::PutAttrs attrs;
    attrs.predicted = true;
    attrs.template_id = template_id;
    attrs.put_time_us = NowUs();
    attrs.miss_cost_us = static_cast<double>(remote_wall_us);
    attrs.probability = probability;
    cache_.Put(key, *rr.result, stamp, attrs);
  }
  core::TemplateMeta* meta = templates_.Get(template_id);
  if (meta != nullptr) meta->RecordExecution(remote_wall_us);
  common::ResultSetPtr rs = *rr.result;
  inflight_.Complete(key, rr.result, stamp);
  OnPredictionCompleted(s, template_id, std::move(rs), depth);
}

}  // namespace apollo::rt
