#include "rt/thread_pool.h"

namespace apollo::rt {

ThreadPool::ThreadPool(ThreadPoolConfig config, obs::Observability* obs,
                       const std::string& metric_prefix)
    : config_(std::move(config)),
      queue_(config_.fair_queueing ? 1 : config_.queue_capacity) {
  if (config_.fair_queueing) {
    fair_ = std::make_unique<SessionFairQueue<Task>>(config_.queue_capacity);
  }
  if (config_.num_threads < 1) config_.num_threads = 1;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  if (config_.predictive_watermark == 0 ||
      config_.predictive_watermark > config_.queue_capacity) {
    config_.predictive_watermark = config_.queue_capacity / 2;
    if (config_.predictive_watermark == 0) config_.predictive_watermark = 1;
  }
  if (obs == nullptr) {
    owned_obs_ = std::make_unique<obs::Observability>();
    obs = owned_obs_.get();
  }
  obs_ = obs;
  obs::MetricsRegistry& m = obs_->metrics;
  const std::string& p = metric_prefix;
  submitted_client_ = m.RegisterCounter(p + "submitted_client");
  submitted_predictive_ = m.RegisterCounter(p + "submitted_predictive");
  rejected_predictive_ = m.RegisterCounter(p + "rejected_predictive");
  queue_wait_.reserve(static_cast<size_t>(config_.num_threads));
  for (int i = 0; i < config_.num_threads; ++i) {
    queue_wait_.push_back(m.RegisterHistogram(
        p + "worker" + std::to_string(i) + ".queue_wait_wall_us"));
  }
  workers_.reserve(static_cast<size_t>(config_.num_threads));
  for (int i = 0; i < config_.num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(TaskClass klass, uint64_t session,
                        std::function<void()> fn) {
  Task task{std::move(fn), std::chrono::steady_clock::now()};
  if (klass == TaskClass::kPredictive) {
    // Reject-predictions-first: a deep queue means the pool is behind, and
    // speculation queued now would execute too late to help anyway.
    if (queue_depth() >= config_.predictive_watermark ||
        !(fair_ != nullptr ? fair_->TryPush(session, std::move(task))
                           : queue_.TryPush(std::move(task)))) {
      rejected_predictive_->Inc();
      return false;
    }
    submitted_predictive_->Inc();
    return true;
  }
  if (!(fair_ != nullptr ? fair_->Push(session, std::move(task))
                         : queue_.Push(std::move(task)))) {
    return false;  // closed
  }
  submitted_client_->Inc();
  return true;
}

void ThreadPool::WorkerLoop(int index) {
  obs::HistogramMetric* wait_hist =
      queue_wait_[static_cast<size_t>(index)];
  Task task;
  while (PopTask(&task)) {
    auto now = std::chrono::steady_clock::now();
    const int64_t sojourn_us =
        std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                              task.enqueued)
            .count();
    wait_hist->Record(sojourn_us);
    if (config_.sojourn_callback) config_.sojourn_callback(sojourn_us);
    task.fn();
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  queue_.Close();
  if (fair_ != nullptr) fair_->Close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

}  // namespace apollo::rt
