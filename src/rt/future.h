// Promise/Future: one-shot value channel for remote I/O completions.
//
// Unlike std::promise/std::future this pair is copyable (shared state via
// shared_ptr), so a Promise can be captured in std::function-based
// callbacks — the InflightRegistry's Waiter, thread-pool tasks — which
// require copy-constructible closures. Futures support blocking Get() for
// client worker threads and a non-blocking Ready() poll.
//
// Rule enforced by convention (DESIGN.md Section 9): pool worker threads
// never block on a Future — only client worker threads do — so the pool
// cannot deadlock on its own completions.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

namespace apollo::rt {

template <typename T>
struct FutureState {
  std::mutex mu;
  std::condition_variable cv;
  std::optional<T> value;
};

template <typename T>
class Future {
 public:
  Future() : state_(std::make_shared<FutureState<T>>()) {}
  explicit Future(std::shared_ptr<FutureState<T>> state)
      : state_(std::move(state)) {}

  /// Blocks until the value is set, then returns a copy.
  T Get() const {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->value.has_value(); });
    return *state_->value;
  }

  /// Blocks until the value is set and moves it out (single consumer).
  T Take() {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->value.has_value(); });
    T out = std::move(*state_->value);
    state_->value.reset();
    return out;
  }

  bool Ready() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->value.has_value();
  }

 private:
  template <typename U>
  friend class Promise;
  std::shared_ptr<FutureState<T>> state_;
};

template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<FutureState<T>>()) {}

  Future<T> GetFuture() const { return Future<T>(state_); }

  /// Sets the value and wakes waiters. Second and later sets are ignored
  /// (a benign race between a publisher and a fallback path).
  void Set(T value) const {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->value.has_value()) return;
      state_->value = std::move(value);
    }
    state_->cv.notify_all();
  }

 private:
  std::shared_ptr<FutureState<T>> state_;
};

}  // namespace apollo::rt
