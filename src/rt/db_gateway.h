// DbGateway: the runtime's remote-database port.
//
// Where the simulator's net::RemoteDatabase models the WAN with simulated
// delays and callbacks on the event loop, the gateway talks to the same
// db::Database from real threads: each execution pays a (configurable)
// real-time round trip, runs the statement, and reports the table-version
// snapshot the paper's session consistency needs. Completions are
// delivered as rt::Future values.
//
// Version-stamp discipline: for reads the snapshot is taken BEFORE the
// statement runs. A concurrent write between snapshot and execution can
// make the stamp *older* than the data — a conservative understamp that
// at worst causes a spurious cache miss — but never newer, so a stale
// result can never satisfy a session's freshness requirement. Writes
// snapshot AFTER executing, when the bumped versions are exactly the ones
// the writing client has observed.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result_set.h"
#include "db/database.h"
#include "rt/future.h"
#include "rt/thread_pool.h"
#include "sql/template_cache.h"
#include "util/result.h"

namespace apollo::rt {

/// Outcome of one remote execution: result plus the version snapshot used
/// for cache stamps and session vector advances.
struct RemoteResult {
  util::Result<common::ResultSetPtr> result =
      util::Result<common::ResultSetPtr>(nullptr);
  std::unordered_map<std::string, uint64_t> versions;
};

struct DbGatewayConfig {
  /// Real-time WAN round trip added to every execution. This is what the
  /// throughput benchmark overlaps across workers: with an I/O-bound
  /// round trip, N concurrent sessions approach N× the single-session
  /// throughput regardless of core count.
  std::chrono::microseconds rtt{2000};
};

class DbGateway {
 public:
  DbGateway(db::Database* db, DbGatewayConfig config)
      : db_(db), config_(config) {}

  /// Executes on the calling thread: sleeps the WAN round trip, runs the
  /// statement, snapshots versions of `tables` (before for reads, after —
  /// and of every written table — for writes).
  RemoteResult ExecuteInline(const std::string& sql, bool is_write,
                             const std::vector<std::string>& tables);

  /// Dispatches ExecuteInline to `pool` as a client-class task (never
  /// shed) and returns the completion as a future. Intended for client
  /// worker threads; pool workers use ExecuteInline directly and must not
  /// block on the returned future.
  Future<RemoteResult> ExecuteAsync(ThreadPool* pool, const std::string& sql,
                                    bool is_write,
                                    std::vector<std::string> tables);

  /// Prepared-statement variant of ExecuteInline: same round trip and
  /// version-stamp discipline, but the statement comes pre-parsed from the
  /// template cache and parameters are bound at execution — the SQL text is
  /// never re-parsed.
  RemoteResult ExecutePreparedInline(const sql::CachedTemplatePtr& tpl,
                                     const std::vector<common::Value>& params,
                                     bool is_write,
                                     const std::vector<std::string>& tables);

  /// Prepared-statement variant of ExecuteAsync.
  Future<RemoteResult> ExecutePreparedAsync(ThreadPool* pool,
                                            sql::CachedTemplatePtr tpl,
                                            std::vector<common::Value> params,
                                            bool is_write,
                                            std::vector<std::string> tables);

  const DbGatewayConfig& config() const { return config_; }

 private:
  db::Database* db_;
  DbGatewayConfig config_;
};

}  // namespace apollo::rt
