// DbGateway: the runtime's remote-database port.
//
// Where the simulator's net::RemoteDatabase models the WAN with simulated
// delays and callbacks on the event loop, the gateway talks to the same
// db::Database from real threads: each execution pays a (configurable)
// real-time round trip, runs the statement, and reports the table-version
// snapshot the paper's session consistency needs. Completions are
// delivered as rt::Future values.
//
// Version-stamp discipline: for reads the snapshot is taken BEFORE the
// statement runs. A concurrent write between snapshot and execution can
// make the stamp *older* than the data — a conservative understamp that
// at worst causes a spurious cache miss — but never newer, so a stale
// result can never satisfy a session's freshness requirement. Writes
// snapshot AFTER executing, when the bumped versions are exactly the ones
// the writing client has observed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result_set.h"
#include "db/database.h"
#include "rt/future.h"
#include "rt/thread_pool.h"
#include "sql/template_cache.h"
#include "util/result.h"

namespace apollo::rt {

/// Per-query completion budget (absolute wall-clock point). kNoDeadline
/// means unbounded — the legacy behavior. Deadline-aware admission
/// (DESIGN.md Section 12) propagates this from ConcurrentApollo::Execute
/// down to the gateway, which cancels work whose remaining budget cannot
/// cover the WAN round trip instead of queueing it.
using Deadline = std::chrono::steady_clock::time_point;
inline constexpr Deadline kNoDeadline = Deadline::max();

/// Outcome of one remote execution: result plus the version snapshot used
/// for cache stamps and session vector advances.
struct RemoteResult {
  util::Result<common::ResultSetPtr> result =
      util::Result<common::ResultSetPtr>(nullptr);
  std::unordered_map<std::string, uint64_t> versions;
};

struct DbGatewayConfig {
  /// Real-time WAN round trip added to every execution. This is what the
  /// throughput benchmark overlaps across workers: with an I/O-bound
  /// round trip, N concurrent sessions approach N× the single-session
  /// throughput regardless of core count.
  std::chrono::microseconds rtt{2000};
  /// Transport fault injection for soak tests: every Nth execution fails
  /// with Unavailable after paying the round trip and before touching the
  /// database (the statement provably did not run). 0 disables.
  uint32_t fail_every_n = 0;
};

class DbGateway {
 public:
  DbGateway(db::Database* db, DbGatewayConfig config)
      : db_(db), config_(config) {}

  /// Executes on the calling thread: sleeps the WAN round trip, runs the
  /// statement, snapshots versions of `tables` (before for reads, after —
  /// and of every written table — for writes). If `deadline` cannot cover
  /// the round trip the call fails fast with DeadlineExceeded WITHOUT
  /// paying the round trip or touching the database.
  RemoteResult ExecuteInline(const std::string& sql, bool is_write,
                             const std::vector<std::string>& tables,
                             Deadline deadline = kNoDeadline);

  /// Dispatches ExecuteInline to `pool` as a client-class task (never
  /// shed) and returns the completion as a future. Intended for client
  /// worker threads; pool workers use ExecuteInline directly and must not
  /// block on the returned future. `session` keys the pool's fair-queueing
  /// lane; the deadline is re-checked after dequeue, so work that aged out
  /// while queued is cancelled instead of executed.
  Future<RemoteResult> ExecuteAsync(ThreadPool* pool, const std::string& sql,
                                    bool is_write,
                                    std::vector<std::string> tables,
                                    Deadline deadline = kNoDeadline,
                                    uint64_t session = 0);

  /// Prepared-statement variant of ExecuteInline: same round trip and
  /// version-stamp discipline, but the statement comes pre-parsed from the
  /// template cache and parameters are bound at execution — the SQL text is
  /// never re-parsed.
  RemoteResult ExecutePreparedInline(const sql::CachedTemplatePtr& tpl,
                                     const std::vector<common::Value>& params,
                                     bool is_write,
                                     const std::vector<std::string>& tables,
                                     Deadline deadline = kNoDeadline);

  /// Prepared-statement variant of ExecuteAsync.
  Future<RemoteResult> ExecutePreparedAsync(ThreadPool* pool,
                                            sql::CachedTemplatePtr tpl,
                                            std::vector<common::Value> params,
                                            bool is_write,
                                            std::vector<std::string> tables,
                                            Deadline deadline = kNoDeadline,
                                            uint64_t session = 0);

  const DbGatewayConfig& config() const { return config_; }

 private:
  /// Deadline fail-fast + injected-fault check shared by the Inline paths.
  /// Returns false (filling *out) when the execution must not proceed.
  bool AdmitOp(Deadline deadline, RemoteResult* out);

  db::Database* db_;
  DbGatewayConfig config_;
  std::atomic<uint64_t> op_counter_{0};
};

}  // namespace apollo::rt
