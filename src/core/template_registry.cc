#include "core/template_registry.h"

#include <algorithm>

namespace apollo::core {

TemplateMeta* TemplateRegistry::Intern(const sql::TemplateInfo& info) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = templates_.find(info.fingerprint);
  if (it != templates_.end()) return it->second.get();
  auto meta = std::make_unique<TemplateMeta>();
  meta->id = info.fingerprint;
  meta->template_text = info.template_text;
  meta->num_placeholders = info.num_placeholders;
  meta->read_only = info.read_only;
  meta->tables_read = info.tables_read;
  meta->tables_written = info.tables_written;
  TemplateMeta* out = meta.get();
  templates_.emplace(info.fingerprint, std::move(meta));
  return out;
}

TemplateMeta* TemplateRegistry::Intern(const sql::AdmittedQuery& adm) {
  std::lock_guard<std::mutex> lock(mu_);
  const sql::TemplateInfo& info = adm.tpl->info;
  auto it = templates_.find(info.fingerprint);
  if (it != templates_.end()) {
    if (it->second->cached == nullptr) it->second->cached = adm.tpl;
    return it->second.get();
  }
  auto meta = std::make_unique<TemplateMeta>();
  meta->id = info.fingerprint;
  meta->template_text = info.template_text;
  meta->num_placeholders = info.num_placeholders;
  meta->read_only = info.read_only;
  meta->tables_read = info.tables_read;
  meta->tables_written = info.tables_written;
  meta->cached = adm.tpl;
  TemplateMeta* out = meta.get();
  templates_.emplace(info.fingerprint, std::move(meta));
  return out;
}

TemplateMeta* TemplateRegistry::Get(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = templates_.find(id);
  return it == templates_.end() ? nullptr : it->second.get();
}

const TemplateMeta* TemplateRegistry::Get(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = templates_.find(id);
  return it == templates_.end() ? nullptr : it->second.get();
}

TemplateRegistry::State TemplateRegistry::ExportState() const {
  State st;
  std::lock_guard<std::mutex> lock(mu_);
  st.templates.reserve(templates_.size());
  for (const auto& [id, meta] : templates_) {
    ExportedTemplate et;
    et.id = id;
    et.template_text = meta->template_text;
    et.num_placeholders = meta->num_placeholders;
    et.read_only = meta->read_only;
    et.tables_read = meta->tables_read;
    et.tables_written = meta->tables_written;
    et.executions = meta->executions.load(std::memory_order_relaxed);
    et.mean_exec_us = meta->mean_exec_us.load(std::memory_order_relaxed);
    et.observations = meta->observations.load(std::memory_order_relaxed);
    st.templates.push_back(std::move(et));
  }
  std::sort(st.templates.begin(), st.templates.end(),
            [](const ExportedTemplate& a, const ExportedTemplate& b) {
              return a.id < b.id;
            });
  return st;
}

void TemplateRegistry::ImportState(const State& state) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const ExportedTemplate& et : state.templates) {
    if (templates_.count(et.id) > 0) continue;  // live state wins
    auto meta = std::make_unique<TemplateMeta>();
    meta->id = et.id;
    meta->template_text = et.template_text;
    meta->num_placeholders = et.num_placeholders;
    meta->read_only = et.read_only;
    meta->tables_read = et.tables_read;
    meta->tables_written = et.tables_written;
    meta->executions.store(et.executions, std::memory_order_relaxed);
    meta->mean_exec_us.store(et.mean_exec_us, std::memory_order_relaxed);
    meta->observations.store(et.observations, std::memory_order_relaxed);
    templates_.emplace(et.id, std::move(meta));
    // Keep total_observations() equal to the sum of per-template counts.
    total_observations_.fetch_add(et.observations,
                                  std::memory_order_relaxed);
  }
}

size_t TemplateRegistry::ApproximateBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = sizeof(*this);
  for (const auto& [_, meta] : templates_) {
    // The cached-template handle is admission-path state (owned by the
    // TemplateCache, shared here); it is not part of the learning state
    // this figure reports.
    total += sizeof(TemplateMeta) - sizeof(sql::CachedTemplatePtr) +
             meta->template_text.size();
    for (const auto& t : meta->tables_read) total += t.size() + 16;
    for (const auto& t : meta->tables_written) total += t.size() + 16;
  }
  return total;
}

}  // namespace apollo::core
