#include "core/template_registry.h"

namespace apollo::core {

TemplateMeta* TemplateRegistry::Intern(const sql::TemplateInfo& info) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = templates_.find(info.fingerprint);
  if (it != templates_.end()) return it->second.get();
  auto meta = std::make_unique<TemplateMeta>();
  meta->id = info.fingerprint;
  meta->template_text = info.template_text;
  meta->num_placeholders = info.num_placeholders;
  meta->read_only = info.read_only;
  meta->tables_read = info.tables_read;
  meta->tables_written = info.tables_written;
  TemplateMeta* out = meta.get();
  templates_.emplace(info.fingerprint, std::move(meta));
  return out;
}

TemplateMeta* TemplateRegistry::Intern(const sql::AdmittedQuery& adm) {
  std::lock_guard<std::mutex> lock(mu_);
  const sql::TemplateInfo& info = adm.tpl->info;
  auto it = templates_.find(info.fingerprint);
  if (it != templates_.end()) {
    if (it->second->cached == nullptr) it->second->cached = adm.tpl;
    return it->second.get();
  }
  auto meta = std::make_unique<TemplateMeta>();
  meta->id = info.fingerprint;
  meta->template_text = info.template_text;
  meta->num_placeholders = info.num_placeholders;
  meta->read_only = info.read_only;
  meta->tables_read = info.tables_read;
  meta->tables_written = info.tables_written;
  meta->cached = adm.tpl;
  TemplateMeta* out = meta.get();
  templates_.emplace(info.fingerprint, std::move(meta));
  return out;
}

TemplateMeta* TemplateRegistry::Get(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = templates_.find(id);
  return it == templates_.end() ? nullptr : it->second.get();
}

const TemplateMeta* TemplateRegistry::Get(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = templates_.find(id);
  return it == templates_.end() ? nullptr : it->second.get();
}

size_t TemplateRegistry::ApproximateBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = sizeof(*this);
  for (const auto& [_, meta] : templates_) {
    // The cached-template handle is admission-path state (owned by the
    // TemplateCache, shared here); it is not part of the learning state
    // this figure reports.
    total += sizeof(TemplateMeta) - sizeof(sql::CachedTemplatePtr) +
             meta->template_text.size();
    for (const auto& t : meta->tables_read) total += t.size() + 16;
    for (const auto& t : meta->tables_written) total += t.size() + 16;
  }
  return total;
}

}  // namespace apollo::core
