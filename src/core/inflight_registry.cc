#include "core/inflight_registry.h"

namespace apollo::core {

bool InflightRegistry::BeginOrSubscribe(const std::string& key,
                                        Waiter waiter) {
  auto [it, inserted] = inflight_.try_emplace(key);
  if (inserted) return true;
  it->second.push_back(std::move(waiter));
  ++coalesced_;
  return false;
}

void InflightRegistry::Complete(
    const std::string& key, const util::Result<common::ResultSetPtr>& result,
    const cache::VersionVector& stamp) {
  auto it = inflight_.find(key);
  if (it == inflight_.end()) return;
  // Move out first: a waiter may submit the same key again re-entrantly.
  std::vector<Waiter> waiters = std::move(it->second);
  inflight_.erase(it);
  for (auto& w : waiters) w(result, stamp);
}

}  // namespace apollo::core
