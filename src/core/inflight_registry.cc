#include "core/inflight_registry.h"

namespace apollo::core {

bool InflightRegistry::BeginOrSubscribe(const std::string& key,
                                        Waiter waiter) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = inflight_.try_emplace(key);
  if (inserted) return true;
  it->second.push_back(std::move(waiter));
  coalesced_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void InflightRegistry::Complete(
    const std::string& key, const util::Result<common::ResultSetPtr>& result,
    const cache::VersionVector& stamp) {
  std::vector<Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(key);
    if (it == inflight_.end()) return;
    // Move out under the lock, invoke outside it: a waiter may submit the
    // same key again re-entrantly, and racing submitters must see the key
    // as free the moment the waiter list is detached.
    waiters = std::move(it->second);
    inflight_.erase(it);
  }
  for (auto& w : waiters) w(result, stamp);
}

}  // namespace apollo::core
