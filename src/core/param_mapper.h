// ParamMapper: discovers output-column -> input-parameter mappings between
// related query templates (paper Section 2.3).
//
// For each ordered template pair (src, dst) observed within delta-t, the
// mapper tracks, per dst parameter position, the set of src result columns
// whose values contained that parameter in EVERY observation so far (a
// shrinking bitmask). After `verification_period` observations a surviving
// column is a confirmed mapping; a later disproof invalidates the pair (and
// the engine disables FDQs built on it), per the paper's footnote 1.
//
// Thread safety: pair state is lock-striped by the (src, dst) edge key so
// concurrent workers observing different template pairs do not contend;
// the dst -> sources reverse index has its own mutex. No operation holds
// two locks at once — pruning collects its reverse-index cleanups under
// the stripe lock and applies them after releasing it.
//
// Bounded memory (DESIGN.md §11): an optional pair cap triggers
// evidence-weighted pruning per stripe — invalidated pairs go first, then
// unconfirmed, then confirmed, weakest evidence (observations + supports)
// and oldest touch first. With the cap at 0 (the default) behavior is
// byte-identical to the unbounded mapper.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result_set.h"
#include "obs/metrics.h"

namespace apollo::core {

/// A confirmed "dst parameter p comes from column `col` of `src`" edge.
struct SourceRef {
  uint64_t src = 0;  // source template fingerprint
  int col = -1;      // column index in src's result set

  bool operator==(const SourceRef& o) const {
    return src == o.src && col == o.col;
  }
};

class ParamMapper {
 public:
  static constexpr size_t kDefaultStripes = 16;

  /// `max_pairs` caps the tracked (src, dst) pair count (0 = unbounded);
  /// each stripe gets an equal share.
  explicit ParamMapper(int verification_period,
                       size_t num_stripes = kDefaultStripes,
                       size_t max_pairs = 0)
      : verification_period_(verification_period) {
    if (num_stripes == 0) num_stripes = 1;
    stripes_.reserve(num_stripes);
    const size_t per_stripe_cap =
        max_pairs == 0 ? 0 : std::max<size_t>(1, max_pairs / num_stripes);
    for (size_t i = 0; i < num_stripes; ++i) {
      stripes_.push_back(std::make_unique<Stripe>());
      stripes_.back()->pair_cap = per_stripe_cap;
    }
  }

  /// Records one co-occurrence: `dst` executed with `dst_params` while
  /// `src`'s latest result set was `src_result`. Empty result sets are
  /// skipped (nothing can be inferred).
  ///
  /// During the verification window, candidate columns are intersected
  /// strictly (the paper: mappings "present in every execution"); a window
  /// that empties out restarts, since occasional cross-transaction
  /// interleavings can produce spurious mismatches. Once confirmed, the
  /// mapping is frozen ("we infer that these mappings always hold") and
  /// only *persistent* contradiction — more violations than supports, with
  /// a minimum count — disproves it (footnote 1). Returns true exactly
  /// when a confirmed mapping is disproven.
  bool ObservePair(uint64_t src, const common::ResultSet& src_result,
                   uint64_t dst, const std::vector<common::Value>& dst_params);

  /// Per-parameter confirmed sources feeding `dst` (positions with no
  /// confirmed source are empty). `complete` iff every position is fed.
  struct ParamSources {
    std::vector<std::vector<SourceRef>> per_param;
    bool complete = false;
  };
  ParamSources GetSources(uint64_t dst, int num_params) const;

  /// True if the (src,dst) pair has a confirmed mapping for at least one
  /// parameter position.
  bool PairConfirmed(uint64_t src, uint64_t dst) const;

  size_t num_pairs() const;
  size_t ApproximateBytes() const;

  /// Pairs evicted by the cap so far.
  uint64_t pruned_pairs() const;

  /// Counter bumped once per pruned pair (e.g. "learning_pruned_pairs");
  /// call before concurrent use. May be null (count-only).
  void SetPruneCounter(obs::Counter* counter);

  // ---- Snapshot support (src/persist/, DESIGN.md §11) ----

  /// Canonical exported form: pairs sorted by (src, dst) so identical
  /// mapper contents always serialize to identical bytes. The
  /// verification-period counters (observations / supports / violations)
  /// travel with each pair so a restored mapper resumes mid-window.
  struct ExportedPair {
    uint64_t src = 0;
    uint64_t dst = 0;
    int32_t observations = 0;
    std::vector<uint64_t> masks;
    bool confirmed = false;
    bool invalidated = false;
    uint32_t supports = 0;
    uint32_t violations = 0;
  };
  struct State {
    int verification_period = 0;
    std::vector<ExportedPair> pairs;
  };

  State ExportState() const;

  /// Installs `state`'s pairs (skipping (src,dst) pairs already tracked)
  /// and rebuilds the reverse index. Typically called on a fresh mapper.
  void ImportState(const State& state);

  /// Violations needed (and exceeding supports) to disprove a confirmed
  /// mapping.
  static constexpr uint32_t kMinViolations = 4;

 private:
  struct PairState {
    uint64_t src = 0;  // retained for export and reverse-index cleanup
    uint64_t dst = 0;
    int observations = 0;
    std::vector<uint64_t> masks;  // per dst param: surviving src columns
    bool confirmed = false;
    bool invalidated = false;
    uint32_t supports = 0;    // post-confirmation consistent observations
    uint32_t violations = 0;  // post-confirmation contradictions
    uint64_t tick = 0;        // stripe tick at last observation (LRU)
  };
  // Pruning state lives in the stripes (not the mapper object) so the
  // mapper's sizeof — which feeds the learning-state byte estimate the
  // benches print — is unchanged whether or not a cap is configured.
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, PairState> pairs;
    size_t pair_cap = 0;  // 0 = unbounded
    uint64_t tick = 0;
    uint64_t pruned = 0;
    obs::Counter* prune_counter = nullptr;
  };

  static uint64_t PairKey(uint64_t src, uint64_t dst);
  static bool HasAnyMask(const PairState& st) {
    for (uint64_t m : st.masks) {
      if (m != 0) return true;
    }
    return false;
  }
  bool Confirmed(const PairState& st) const {
    return st.confirmed && !st.invalidated;
  }
  Stripe& StripeForKey(uint64_t key) {
    return *stripes_[key % stripes_.size()];
  }
  const Stripe& StripeForKey(uint64_t key) const {
    return *stripes_[key % stripes_.size()];
  }

  /// Batch-evicts the weakest pairs from `s` down to ~7/8 of its cap,
  /// never evicting `keep_key` (the pair just observed). Appends the
  /// (src, dst) of each victim to `evicted` so the caller can clean the
  /// reverse index after releasing s.mu. Caller holds s.mu.
  void PruneStripeLocked(Stripe& s, uint64_t keep_key,
                         std::vector<std::pair<uint64_t, uint64_t>>* evicted);
  /// Erases evicted (src, dst) pairs from srcs_of_ (takes srcs_mu_).
  void CleanReverseIndex(
      const std::vector<std::pair<uint64_t, uint64_t>>& evicted);

  int verification_period_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  // dst template -> src templates ever observed before it.
  mutable std::mutex srcs_mu_;
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> srcs_of_;
};

}  // namespace apollo::core
