// ParamMapper: discovers output-column -> input-parameter mappings between
// related query templates (paper Section 2.3).
//
// For each ordered template pair (src, dst) observed within delta-t, the
// mapper tracks, per dst parameter position, the set of src result columns
// whose values contained that parameter in EVERY observation so far (a
// shrinking bitmask). After `verification_period` observations a surviving
// column is a confirmed mapping; a later disproof invalidates the pair (and
// the engine disables FDQs built on it), per the paper's footnote 1.
//
// Thread safety: pair state is lock-striped by the (src, dst) edge key so
// concurrent workers observing different template pairs do not contend;
// the dst -> sources reverse index has its own mutex. No operation holds
// two locks at once. The single-threaded event-loop path takes the same
// uncontended locks and is bit-identical to the unsynchronized
// implementation.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result_set.h"

namespace apollo::core {

/// A confirmed "dst parameter p comes from column `col` of `src`" edge.
struct SourceRef {
  uint64_t src = 0;  // source template fingerprint
  int col = -1;      // column index in src's result set

  bool operator==(const SourceRef& o) const {
    return src == o.src && col == o.col;
  }
};

class ParamMapper {
 public:
  static constexpr size_t kDefaultStripes = 16;

  explicit ParamMapper(int verification_period,
                       size_t num_stripes = kDefaultStripes)
      : verification_period_(verification_period) {
    if (num_stripes == 0) num_stripes = 1;
    stripes_.reserve(num_stripes);
    for (size_t i = 0; i < num_stripes; ++i) {
      stripes_.push_back(std::make_unique<Stripe>());
    }
  }

  /// Records one co-occurrence: `dst` executed with `dst_params` while
  /// `src`'s latest result set was `src_result`. Empty result sets are
  /// skipped (nothing can be inferred).
  ///
  /// During the verification window, candidate columns are intersected
  /// strictly (the paper: mappings "present in every execution"); a window
  /// that empties out restarts, since occasional cross-transaction
  /// interleavings can produce spurious mismatches. Once confirmed, the
  /// mapping is frozen ("we infer that these mappings always hold") and
  /// only *persistent* contradiction — more violations than supports, with
  /// a minimum count — disproves it (footnote 1). Returns true exactly
  /// when a confirmed mapping is disproven.
  bool ObservePair(uint64_t src, const common::ResultSet& src_result,
                   uint64_t dst, const std::vector<common::Value>& dst_params);

  /// Per-parameter confirmed sources feeding `dst` (positions with no
  /// confirmed source are empty). `complete` iff every position is fed.
  struct ParamSources {
    std::vector<std::vector<SourceRef>> per_param;
    bool complete = false;
  };
  ParamSources GetSources(uint64_t dst, int num_params) const;

  /// True if the (src,dst) pair has a confirmed mapping for at least one
  /// parameter position.
  bool PairConfirmed(uint64_t src, uint64_t dst) const;

  size_t num_pairs() const;
  size_t ApproximateBytes() const;

  /// Violations needed (and exceeding supports) to disprove a confirmed
  /// mapping.
  static constexpr uint32_t kMinViolations = 4;

 private:
  struct PairState {
    int observations = 0;
    std::vector<uint64_t> masks;  // per dst param: surviving src columns
    bool confirmed = false;
    bool invalidated = false;
    uint32_t supports = 0;    // post-confirmation consistent observations
    uint32_t violations = 0;  // post-confirmation contradictions
  };
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, PairState> pairs;
  };

  static uint64_t PairKey(uint64_t src, uint64_t dst);
  static bool HasAnyMask(const PairState& st) {
    for (uint64_t m : st.masks) {
      if (m != 0) return true;
    }
    return false;
  }
  bool Confirmed(const PairState& st) const {
    return st.confirmed && !st.invalidated;
  }
  Stripe& StripeForKey(uint64_t key) {
    return *stripes_[key % stripes_.size()];
  }
  const Stripe& StripeForKey(uint64_t key) const {
    return *stripes_[key % stripes_.size()];
  }

  int verification_period_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  // dst template -> src templates ever observed before it.
  mutable std::mutex srcs_mu_;
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> srcs_of_;
};

}  // namespace apollo::core
