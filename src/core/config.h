// ApolloConfig: every tunable of the predictive framework.
//
// Defaults follow the paper's Section 4.7 choices for TPC-W/TPC-C:
// delta_t = 15 s (largest of several transition-graph windows, Section
// 3.4.1), tau = 0.01, alpha = 0, plus simulator-level costs for the edge
// deployment.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache_policy.h"
#include "util/sim_time.h"

namespace apollo::core {

struct ApolloConfig {
  // ---- Learning parameters (paper Sections 2.2-2.3, 4.7) ----

  /// Windows for the per-client transition graphs, ascending. The largest
  /// is the primary delta-t used for relationship discovery; the smaller
  /// ones feed the freshness model (Section 3.4.1). The sub-second window
  /// matters: freshness estimates for predictions are ~one query round
  /// trip, and a window much larger than that overstates the probability
  /// of an invalidating write landing "while f is executing".
  std::vector<util::SimDuration> delta_ts = {
      util::Millis(250), util::Seconds(1), util::Seconds(5),
      util::Seconds(15)};

  /// Minimum transition probability for two templates to be "related".
  double tau = 0.01;

  /// Number of co-occurrence observations a parameter mapping must survive
  /// before it is trusted (Section 2.3's verification period).
  int verification_period = 3;

  /// Minimum cost (probability x mean response time, in simulated ms) an
  /// ADQ must have to be reloaded after a write (Section 3.4.2). 0 reloads
  /// every ADQ.
  double alpha = 0.0;

  // ---- Prediction mechanics ----

  /// How many rows of a source result set are fanned out when
  /// instantiating a dependent query (1 = first row only). Fan-out is what
  /// lets Apollo prefetch the per-item queries of TPC-C's Stock Level in
  /// parallel while the terminal walks them serially.
  int max_fanout_rows = 4;

  /// Maximum chained predictive executions from one client query.
  int max_pipeline_depth = 8;

  /// Per-client stream retention (entries); bounds memory.
  size_t max_stream_entries = 1024;

  // ---- Bounded learning memory (DESIGN.md §11) ----

  /// Cap on edges per transition graph (each per-client, per-delta-t
  /// graph). Exceeding it triggers evidence-weighted LRU pruning,
  /// counted in the `learning_pruned_edges` metric. 0 = unbounded (the
  /// default: the event-loop benches are byte-identical with pruning
  /// disabled).
  size_t max_transition_edges = 0;

  /// Cap on (src, dst) pairs tracked by the ParamMapper, pruned the same
  /// way (`learning_pruned_pairs`). 0 = unbounded.
  size_t max_param_pairs = 0;

  /// How long a recorded result set stays usable as a pipeline input.
  util::SimDuration recent_result_ttl = util::Seconds(30);

  // ---- Result-cache eviction policy (DESIGN.md §13) ----

  /// Admission/eviction scheme for the shared result cache. kLru is the
  /// legacy default (byte-identical behaviour); kTinyLfu adds Count-Min-
  /// Sketch frequency admission; kTinyLfuCost additionally weighs entries
  /// by observed miss cost x prediction confidence, so a high-probability
  /// predictive prefetch outlives an equally-recent cold one-off.
  cache::CachePolicy cache_policy = cache::CachePolicy::kLru;

  /// W-TinyLFU window share of each cache shard's byte budget (only
  /// consulted when cache_policy != kLru).
  double cache_window_fraction = 0.01;

  // ---- Feature toggles (ablation experiments) ----

  bool enable_prediction = true;       // master switch (off = Memcached)
  bool enable_pipelining = true;       // Section 2.4
  bool enable_freshness_check = true;  // Section 3.4.1
  bool enable_adq_reload = true;       // Section 3.4.2
  bool enable_pubsub_dedup = true;     // Section 3.3

  // ---- Degradation policy (DESIGN.md "Fault model") ----

  /// Shed predictive load first when the remote path is degraded (circuit
  /// breaker open or a timeout spike): pipeline prefetches and ADQ
  /// reloads are dropped while client queries keep their retry budget.
  bool shed_predictions_when_degraded = true;

  /// DEPRECATED: static predictive-shedding watermark for the runtime's
  /// worker-pool queue (tasks; 0 keeps the pool's default of half the
  /// queue capacity). Superseded by the rt::BrownoutController, which
  /// adapts shedding to measured queue sojourn instead of a fixed depth
  /// (DESIGN.md Section 12); kept one release for experiment configs that
  /// pinned it. Ignored when overload control is enabled.
  size_t rt_predictive_watermark = 0;

  // ---- Simulated deployment costs ----

  /// Round trip to the shared cache (Memcached on a nearby machine).
  util::SimDuration cache_latency = util::Micros(400);

  /// Middleware CPU time consumed per client query (parse, hash, session
  /// bookkeeping).
  util::SimDuration engine_overhead_per_query = util::Micros(60);

  /// Middleware CPU time consumed per predictive execution set up.
  util::SimDuration engine_overhead_per_prediction = util::Micros(40);

  /// Middleware worker pool width (paper: 16 vCPUs; 4 for the weak
  /// m4.xlarge instances of Figure 8(c)).
  int engine_servers = 16;

  uint64_t seed = 7;
};

}  // namespace apollo::core
