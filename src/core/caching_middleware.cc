#include "core/caching_middleware.h"

#include <utility>

namespace apollo::core {

CachingMiddleware::CachingMiddleware(sim::EventLoop* loop,
                                     net::RemoteDatabase* remote,
                                     cache::KvCache* cache,
                                     ApolloConfig config)
    : loop_(loop),
      remote_(remote),
      cache_(cache),
      config_(std::move(config)),
      station_(loop, config_.engine_servers) {}

ClientSession& CachingMiddleware::SessionFor(ClientId client) {
  auto it = sessions_.find(client);
  if (it == sessions_.end()) {
    it = sessions_
             .emplace(client,
                      std::make_unique<ClientSession>(client, config_))
             .first;
  }
  return *it->second;
}

void CachingMiddleware::SubmitQuery(ClientId client, const std::string& sql,
                                    QueryCallback callback) {
  ++stats_.queries;
  // All middleware processing consumes edge-node CPU.
  station_.Submit(config_.engine_overhead_per_query,
                  [this, client, sql, callback = std::move(callback)]() {
                    ProcessQuery(client, sql, std::move(callback));
                  });
}

void CachingMiddleware::ProcessQuery(ClientId client, const std::string& sql,
                                     QueryCallback callback) {
  auto info = sql::Templatize(sql);
  if (!info.ok()) {
    ++stats_.parse_errors;
    callback(info.status());
    return;
  }
  ClientSession& session = SessionFor(client);
  util::SimTime submit_time = loop_->now();
  if (info->read_only) {
    ExecuteRead(session, std::move(*info), std::move(callback), submit_time);
  } else {
    ExecuteWrite(session, std::move(*info), std::move(callback),
                 submit_time);
  }
}

void CachingMiddleware::FinishRead(ClientSession& session,
                                   const sql::TemplateInfo& info,
                                   common::ResultSetPtr result,
                                   bool from_cache,
                                   util::SimDuration remote_time,
                                   QueryCallback callback) {
  TemplateMeta* meta = templates_.Get(info.fingerprint);
  if (meta != nullptr && remote_time > 0) meta->RecordExecution(remote_time);
  callback(result);
  CompletedQuery cq;
  cq.template_id = info.fingerprint;
  cq.meta = meta;
  cq.canonical_text = info.canonical_text;
  cq.params = info.params;
  cq.result = std::move(result);
  cq.read_only = true;
  cq.from_cache = from_cache;
  cq.remote_time = remote_time;
  OnQueryCompleted(session, cq);
}

void CachingMiddleware::ExecuteRead(ClientSession& session,
                                    sql::TemplateInfo info,
                                    QueryCallback callback,
                                    util::SimTime submit_time) {
  ++stats_.reads;
  TemplateMeta* meta = templates_.Intern(info);
  templates_.BumpObservations(meta);

  // One round trip to the shared cache.
  loop_->After(config_.cache_latency, [this, &session,
                                       info = std::move(info),
                                       callback = std::move(callback),
                                       submit_time]() mutable {
    auto entry = cache_->GetCompatible(info.canonical_text, session.vv,
                                       info.tables_read);
    if (entry.has_value()) {
      ++stats_.cache_hits;
      session.vv.MergeMax(entry->stamp, info.tables_read);
      FinishRead(session, info, entry->result, /*from_cache=*/true, 0,
                 std::move(callback));
      return;
    }
    ++stats_.cache_misses;
    const std::string key = info.canonical_text;

    if (config_.enable_pubsub_dedup) {
      bool leader = inflight_.BeginOrSubscribe(
          key,
          [this, &session, info, callback](
              const util::Result<common::ResultSetPtr>& result,
              const cache::VersionVector& stamp) {
            ++stats_.coalesced_waits;
            if (!result.ok()) {
              if (result.status().IsRetryable()) {
                // The leader died on a transport fault — often a predictive
                // execution, which carries no retry budget. Client queries
                // keep theirs: re-issue privately instead of inheriting the
                // leader's failure.
                ++stats_.subscriber_fallbacks;
                RemoteRead(session, info, callback, /*publish=*/false);
                return;
              }
              callback(result.status());
              return;
            }
            for (const auto& t : info.tables_read) {
              session.vv.AdvanceTo(t, stamp.Get(t));
            }
            FinishRead(session, info, result.value(), /*from_cache=*/true,
                       0, callback);
          });
      if (!leader) return;  // subscribed; the leader will publish
    }

    (void)submit_time;
    RemoteRead(session, std::move(info), std::move(callback),
               /*publish=*/true);
  });
}

void CachingMiddleware::RemoteRead(ClientSession& session,
                                   sql::TemplateInfo info,
                                   QueryCallback callback, bool publish) {
  const std::string key = info.canonical_text;
  util::SimTime t0 = loop_->now();
  remote_->Execute(
      key,
      [this, &session, info = std::move(info), key,
       callback = std::move(callback), publish,
       t0](util::Result<common::ResultSetPtr> result,
           std::unordered_map<std::string, uint64_t> versions) mutable {
        if (!result.ok()) {
          callback(result.status());
          if (publish) inflight_.Complete(key, result, {});
          return;
        }
        cache::VersionVector stamp;
        for (const auto& [t, v] : versions) stamp.Set(t, v);
        cache_->Put(key, *result, stamp);
        for (const auto& t : info.tables_read) {
          session.vv.AdvanceTo(t, stamp.Get(t));
        }
        util::SimDuration remote_time = loop_->now() - t0;
        common::ResultSetPtr rs = *result;
        if (publish) inflight_.Complete(key, result, stamp);
        FinishRead(session, info, std::move(rs), /*from_cache=*/false,
                   remote_time, std::move(callback));
      });
}

void CachingMiddleware::ExecuteWrite(ClientSession& session,
                                     sql::TemplateInfo info,
                                     QueryCallback callback,
                                     util::SimTime submit_time) {
  ++stats_.writes;
  (void)submit_time;
  TemplateMeta* meta = templates_.Intern(info);
  templates_.BumpObservations(meta);
  util::SimTime t0 = loop_->now();
  // Copy before the call: the lambda capture moves `info`, and function
  // argument evaluation order is unspecified.
  const std::string sql_text = info.canonical_text;
  remote_->Execute(
      sql_text,
      [this, &session, info = std::move(info), callback = std::move(callback),
       t0](util::Result<common::ResultSetPtr> result,
           std::unordered_map<std::string, uint64_t> versions) mutable {
        if (!result.ok()) {
          callback(result.status());
          return;
        }
        // The client has now observed the post-write versions of every
        // table the statement touched (paper 3.2).
        for (const auto& [t, v] : versions) session.vv.AdvanceTo(t, v);
        util::SimDuration remote_time = loop_->now() - t0;
        TemplateMeta* meta = templates_.Get(info.fingerprint);
        if (meta != nullptr) meta->RecordExecution(remote_time);
        callback(*result);
        CompletedQuery cq;
        cq.template_id = info.fingerprint;
        cq.meta = meta;
        cq.canonical_text = info.canonical_text;
        cq.params = info.params;
        cq.result = nullptr;
        cq.read_only = false;
        cq.from_cache = false;
        cq.remote_time = remote_time;
        OnQueryCompleted(session, cq);
      });
}

void CachingMiddleware::PredictiveExecute(ClientSession& session,
                                          uint64_t template_id,
                                          const std::string& sql, int depth) {
  // Degraded WAN path: shed optional load before it consumes anything.
  // AllowPredictive admits one prediction as the breaker's half-open probe.
  if (config_.shed_predictions_when_degraded && !remote_->AllowPredictive()) {
    ++stats_.shed_predictions;
    return;
  }
  auto info = sql::Templatize(sql);
  if (!info.ok() || !info->read_only) {
    ++stats_.predictions_skipped_invalid;
    return;
  }
  const std::string key = info->canonical_text;
  // Never predictively execute what is already usable from the cache
  // (paper Section 4.3).
  if (cache_->ContainsCompatible(key, session.vv, info->tables_read)) {
    ++stats_.predictions_skipped_cached;
    return;
  }
  if (config_.enable_pubsub_dedup) {
    bool leader = inflight_.BeginOrSubscribe(
        key, [this, &session, template_id, depth](
                 const util::Result<common::ResultSetPtr>& result,
                 const cache::VersionVector& stamp) {
          (void)stamp;
          if (result.ok()) {
            OnPredictionCompleted(session, template_id, result.value(),
                                  depth);
          }
        });
    if (!leader) {
      ++stats_.predictions_skipped_inflight;
      return;
    }
  }
  ++stats_.predictions_issued;
  station_.Submit(
      config_.engine_overhead_per_prediction,
      [this, &session, template_id, sql, key, depth,
       tables_read = info->tables_read]() {
        util::SimTime t0 = loop_->now();
        remote_->Execute(
            sql,
            [this, &session, template_id, key, depth,
             t0](util::Result<common::ResultSetPtr> result,
                 std::unordered_map<std::string, uint64_t> versions) {
              if (!result.ok()) {
                inflight_.Complete(key, result, {});
                return;
              }
              cache::VersionVector stamp;
              for (const auto& [t, v] : versions) stamp.Set(t, v);
              cache_->Put(key, *result, stamp);
              TemplateMeta* meta = templates_.Get(template_id);
              if (meta != nullptr) {
                meta->RecordExecution(loop_->now() - t0);
              }
              common::ResultSetPtr rs = *result;
              inflight_.Complete(key, result, stamp);
              OnPredictionCompleted(session, template_id, std::move(rs),
                                    depth);
            },
            /*predictive=*/true);
      });
}

}  // namespace apollo::core
