#include "core/caching_middleware.h"

#include <chrono>
#include <utility>

namespace apollo::core {

namespace {
double WallMicrosSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
             .count() /
         1000.0;
}
}  // namespace

CachingMiddleware::CachingMiddleware(sim::EventLoop* loop,
                                     net::RemoteDatabase* remote,
                                     cache::KvCache* cache,
                                     ApolloConfig config,
                                     obs::Observability* obs,
                                     const std::string& metric_prefix)
    : loop_(loop),
      remote_(remote),
      cache_(cache),
      config_(std::move(config)),
      station_(loop, config_.engine_servers) {
  if (obs == nullptr) {
    owned_obs_ = std::make_unique<obs::Observability>();
    obs = owned_obs_.get();
    obs->trace.set_clock([loop]() { return loop->now(); });
  }
  obs_ = obs;
  obs::MetricsRegistry& m = obs_->metrics;
  const std::string& p = metric_prefix;
  c_.queries = m.RegisterCounter(p + "queries");
  c_.reads = m.RegisterCounter(p + "reads");
  c_.writes = m.RegisterCounter(p + "writes");
  c_.cache_hits = m.RegisterCounter(p + "cache_hits");
  c_.cache_misses = m.RegisterCounter(p + "cache_misses");
  c_.coalesced_waits = m.RegisterCounter(p + "coalesced_waits");
  c_.parse_errors = m.RegisterCounter(p + "parse_errors");
  c_.predictions_issued = m.RegisterCounter(p + "predictions_issued");
  c_.predictions_skipped_cached =
      m.RegisterCounter(p + "predictions_skipped_cached");
  c_.predictions_skipped_inflight =
      m.RegisterCounter(p + "predictions_skipped_inflight");
  c_.predictions_skipped_fresh =
      m.RegisterCounter(p + "predictions_skipped_fresh");
  c_.predictions_skipped_invalid =
      m.RegisterCounter(p + "predictions_skipped_invalid");
  c_.predictions_skipped_incomplete =
      m.RegisterCounter(p + "predictions_skipped_incomplete");
  c_.adq_reloads = m.RegisterCounter(p + "adq_reloads");
  c_.shed_predictions = m.RegisterCounter(p + "shed_predictions");
  c_.shed_adq_reloads = m.RegisterCounter(p + "shed_adq_reloads");
  c_.subscriber_fallbacks = m.RegisterCounter(p + "subscriber_fallbacks");
  c_.fdqs_discovered = m.RegisterCounter(p + "fdqs_discovered");
  c_.fdqs_invalidated = m.RegisterCounter(p + "fdqs_invalidated");
  c_.find_fdq_calls = m.RegisterCounter(p + "find_fdq_calls");
  c_.construct_fdq_calls = m.RegisterCounter(p + "construct_fdq_calls");
  c_.find_fdq_wall_us = m.RegisterGauge(p + "find_fdq_wall_us");
  c_.construct_fdq_wall_us = m.RegisterGauge(p + "construct_fdq_wall_us");
  lat_.cache_us = m.RegisterHistogram(p + "latency.cache_us");
  lat_.wan_us = m.RegisterHistogram(p + "latency.wan_us");
  lat_.learn_wall_us = m.RegisterHistogram(p + "latency.learn_wall_us");
  lat_.predict_wall_us =
      m.RegisterHistogram(p + "latency.predict_decide_wall_us");
  lat_.admit_fast_wall_us =
      m.RegisterHistogram(p + "latency.admit_fast_wall_us");
  lat_.admit_full_wall_us =
      m.RegisterHistogram(p + "latency.admit_full_wall_us");
  // Registered only when a cap is on: default-config runs must export an
  // unchanged instrument set (bench byte-identity, DESIGN.md §11).
  if (config_.max_transition_edges > 0) {
    c_.learning_pruned_edges = m.RegisterCounter(p + "learning_pruned_edges");
  }
  if (config_.max_param_pairs > 0) {
    c_.learning_pruned_pairs = m.RegisterCounter(p + "learning_pruned_pairs");
  }
}

util::Result<sql::AdmittedQuery> CachingMiddleware::AdmitQuery(
    const std::string& sql) {
  const auto t0 = std::chrono::steady_clock::now();
  auto adm = tcache_.Admit(sql);
  const double wall = WallMicrosSince(t0);
  if (adm.ok() && adm->via_fast_path) {
    lat_.admit_fast_wall_us->Record(wall);
  } else {
    lat_.admit_full_wall_us->Record(wall);
  }
  return adm;
}

const MiddlewareStats& CachingMiddleware::stats() const {
  MiddlewareStats& s = stats_view_;
  s.queries = c_.queries->Value();
  s.reads = c_.reads->Value();
  s.writes = c_.writes->Value();
  s.cache_hits = c_.cache_hits->Value();
  s.cache_misses = c_.cache_misses->Value();
  s.coalesced_waits = c_.coalesced_waits->Value();
  s.parse_errors = c_.parse_errors->Value();
  s.predictions_issued = c_.predictions_issued->Value();
  s.predictions_skipped_cached = c_.predictions_skipped_cached->Value();
  s.predictions_skipped_inflight = c_.predictions_skipped_inflight->Value();
  s.predictions_skipped_fresh = c_.predictions_skipped_fresh->Value();
  s.predictions_skipped_invalid = c_.predictions_skipped_invalid->Value();
  s.predictions_skipped_incomplete =
      c_.predictions_skipped_incomplete->Value();
  s.adq_reloads = c_.adq_reloads->Value();
  s.shed_predictions = c_.shed_predictions->Value();
  s.shed_adq_reloads = c_.shed_adq_reloads->Value();
  s.subscriber_fallbacks = c_.subscriber_fallbacks->Value();
  s.fdqs_discovered = c_.fdqs_discovered->Value();
  s.fdqs_invalidated = c_.fdqs_invalidated->Value();
  s.find_fdq_calls = c_.find_fdq_calls->Value();
  s.construct_fdq_calls = c_.construct_fdq_calls->Value();
  s.find_fdq_wall_us = c_.find_fdq_wall_us->Value();
  s.construct_fdq_wall_us = c_.construct_fdq_wall_us->Value();
  return s;
}

ClientSession& CachingMiddleware::SessionFor(ClientId client) {
  auto it = sessions_.find(client);
  if (it == sessions_.end()) {
    it = sessions_
             .emplace(client,
                      std::make_unique<ClientSession>(client, config_))
             .first;
    if (c_.learning_pruned_edges != nullptr) {
      it->second->stream.SetPruneCounter(c_.learning_pruned_edges);
    }
  }
  return *it->second;
}

void CachingMiddleware::SubmitQuery(ClientId client, const std::string& sql,
                                    QueryCallback callback) {
  c_.queries->Inc();
  // All middleware processing consumes edge-node CPU.
  station_.Submit(config_.engine_overhead_per_query,
                  [this, client, sql, callback = std::move(callback)]() {
                    ProcessQuery(client, sql, std::move(callback));
                  });
}

void CachingMiddleware::ProcessQuery(ClientId client, const std::string& sql,
                                     QueryCallback callback) {
  auto adm = AdmitQuery(sql);
  if (!adm.ok()) {
    c_.parse_errors->Inc();
    callback(adm.status());
    return;
  }
  ClientSession& session = SessionFor(client);
  util::SimTime submit_time = loop_->now();
  if (adm->read_only()) {
    ExecuteRead(session, std::move(*adm), std::move(callback), submit_time);
  } else {
    ExecuteWrite(session, std::move(*adm), std::move(callback),
                 submit_time);
  }
}

void CachingMiddleware::FinishRead(ClientSession& session,
                                   const sql::AdmittedQuery& adm,
                                   common::ResultSetPtr result,
                                   bool from_cache,
                                   util::SimDuration remote_time,
                                   QueryCallback callback) {
  TemplateMeta* meta = templates_.Get(adm.fingerprint());
  if (meta != nullptr && remote_time > 0) meta->RecordExecution(remote_time);
  // Latency breakdown: every client read pays one cache round trip; reads
  // that went remote additionally record the observed WAN time.
  lat_.cache_us->Record(config_.cache_latency);
  if (remote_time > 0) lat_.wan_us->Record(remote_time);
  callback(result);
  CompletedQuery cq;
  cq.template_id = adm.fingerprint();
  cq.meta = meta;
  cq.canonical_text = adm.canonical_text;
  cq.params = adm.params;
  cq.result = std::move(result);
  cq.read_only = true;
  cq.from_cache = from_cache;
  cq.remote_time = remote_time;
  OnQueryCompleted(session, cq);
}

void CachingMiddleware::ExecuteRead(ClientSession& session,
                                    sql::AdmittedQuery adm,
                                    QueryCallback callback,
                                    util::SimTime submit_time) {
  c_.reads->Inc();
  TemplateMeta* meta = templates_.Intern(adm);
  templates_.BumpObservations(meta);
  if (meta->observations == 1) {
    Trace(obs::TraceEventType::kTemplateDiscovered, session,
          adm.fingerprint());
  }

  // One round trip to the shared cache.
  loop_->After(config_.cache_latency, [this, &session,
                                       adm = std::move(adm),
                                       callback = std::move(callback),
                                       submit_time]() mutable {
    auto entry = cache_->GetCompatible(adm.canonical_text, session.vv,
                                       adm.tables_read());
    if (entry.has_value()) {
      c_.cache_hits->Inc();
      session.vv.MergeMax(entry->stamp, adm.tables_read());
      FinishRead(session, adm, entry->result, /*from_cache=*/true, 0,
                 std::move(callback));
      return;
    }
    c_.cache_misses->Inc();
    const std::string key = adm.canonical_text;

    if (config_.enable_pubsub_dedup) {
      bool leader = inflight_.BeginOrSubscribe(
          key,
          [this, &session, adm, callback](
              const util::Result<common::ResultSetPtr>& result,
              const cache::VersionVector& stamp) {
            c_.coalesced_waits->Inc();
            if (!result.ok()) {
              if (result.status().IsRetryable()) {
                // The leader died on a transport fault — often a predictive
                // execution, which carries no retry budget. Client queries
                // keep theirs: re-issue privately instead of inheriting the
                // leader's failure.
                c_.subscriber_fallbacks->Inc();
                RemoteRead(session, adm, callback, /*publish=*/false);
                return;
              }
              callback(result.status());
              return;
            }
            for (const auto& t : adm.tables_read()) {
              session.vv.AdvanceTo(t, stamp.Get(t));
            }
            FinishRead(session, adm, result.value(), /*from_cache=*/true,
                       0, callback);
          });
      if (!leader) return;  // subscribed; the leader will publish
    }

    (void)submit_time;
    RemoteRead(session, std::move(adm), std::move(callback),
               /*publish=*/true);
  });
}

void CachingMiddleware::RemoteRead(ClientSession& session,
                                   sql::AdmittedQuery adm,
                                   QueryCallback callback, bool publish) {
  const std::string key = adm.canonical_text;
  util::SimTime t0 = loop_->now();
  // Prepared path when the template round-trips through the parser and all
  // placeholders are bound; the remote edge then executes the cached
  // statement without re-parsing. Copies are taken before the lambda
  // capture moves `adm` (argument evaluation order is unspecified).
  const bool prepared = adm.preparable();
  sql::CachedTemplatePtr tpl = adm.tpl;
  std::vector<common::Value> params = adm.params;
  auto on_done = [this, &session, adm = std::move(adm), key,
                  callback = std::move(callback), publish,
                  t0](util::Result<common::ResultSetPtr> result,
                      std::unordered_map<std::string, uint64_t> versions)
      mutable {
    if (!result.ok()) {
      callback(result.status());
      if (publish) inflight_.Complete(key, result, {});
      return;
    }
    cache::VersionVector stamp;
    for (const auto& [t, v] : versions) stamp.Set(t, v);
    util::SimDuration remote_time = loop_->now() - t0;
    // The round trip this entry just paid is the miss cost a future hit
    // saves; cost-aware eviction (DESIGN.md §13) weighs it.
    cache::KvCache::PutAttrs attrs;
    attrs.template_id = adm.fingerprint();
    attrs.miss_cost_us = static_cast<double>(remote_time);
    cache_->Put(key, *result, stamp, attrs);
    for (const auto& t : adm.tables_read()) {
      session.vv.AdvanceTo(t, stamp.Get(t));
    }
    common::ResultSetPtr rs = *result;
    if (publish) inflight_.Complete(key, result, stamp);
    FinishRead(session, adm, std::move(rs), /*from_cache=*/false,
               remote_time, std::move(callback));
  };
  if (prepared) {
    remote_->ExecutePrepared(std::move(tpl), std::move(params),
                             std::move(on_done));
  } else {
    remote_->Execute(key, std::move(on_done));
  }
}

void CachingMiddleware::ExecuteWrite(ClientSession& session,
                                     sql::AdmittedQuery adm,
                                     QueryCallback callback,
                                     util::SimTime submit_time) {
  c_.writes->Inc();
  (void)submit_time;
  TemplateMeta* meta = templates_.Intern(adm);
  templates_.BumpObservations(meta);
  if (meta->observations == 1) {
    Trace(obs::TraceEventType::kTemplateDiscovered, session,
          adm.fingerprint());
  }
  util::SimTime t0 = loop_->now();
  // Copies before the call: the lambda capture moves `adm`, and function
  // argument evaluation order is unspecified.
  const bool prepared = adm.preparable();
  const std::string sql_text = adm.canonical_text;
  sql::CachedTemplatePtr tpl = adm.tpl;
  std::vector<common::Value> params = adm.params;
  auto on_done = [this, &session, adm = std::move(adm),
                  callback = std::move(callback),
                  t0](util::Result<common::ResultSetPtr> result,
                      std::unordered_map<std::string, uint64_t> versions)
      mutable {
    if (!result.ok()) {
      callback(result.status());
      return;
    }
    // The client has now observed the post-write versions of every
    // table the statement touched (paper 3.2).
    for (const auto& [t, v] : versions) session.vv.AdvanceTo(t, v);
    util::SimDuration remote_time = loop_->now() - t0;
    lat_.wan_us->Record(remote_time);
    TemplateMeta* meta = templates_.Get(adm.fingerprint());
    if (meta != nullptr) meta->RecordExecution(remote_time);
    callback(*result);
    CompletedQuery cq;
    cq.template_id = adm.fingerprint();
    cq.meta = meta;
    cq.canonical_text = adm.canonical_text;
    cq.params = adm.params;
    cq.result = nullptr;
    cq.read_only = false;
    cq.from_cache = false;
    cq.remote_time = remote_time;
    OnQueryCompleted(session, cq);
  };
  if (prepared) {
    remote_->ExecutePrepared(std::move(tpl), std::move(params),
                             std::move(on_done));
  } else {
    remote_->Execute(sql_text, std::move(on_done));
  }
}

void CachingMiddleware::PredictiveExecute(ClientSession& session,
                                          uint64_t template_id,
                                          const std::string& sql, int depth,
                                          double probability) {
  // Degraded WAN path: shed optional load before it consumes anything.
  // AllowPredictive admits one prediction as the breaker's half-open probe.
  if (config_.shed_predictions_when_degraded && !remote_->AllowPredictive()) {
    c_.shed_predictions->Inc();
    Trace(obs::TraceEventType::kPredictionSkipped, session, template_id,
          obs::SkipReason::kShed, static_cast<uint64_t>(depth));
    return;
  }
  auto adm = AdmitQuery(sql);
  if (!adm.ok() || !adm->read_only()) {
    c_.predictions_skipped_invalid->Inc();
    Trace(obs::TraceEventType::kPredictionSkipped, session, template_id,
          obs::SkipReason::kInvalidSql, static_cast<uint64_t>(depth));
    return;
  }
  const std::string key = adm->canonical_text;
  // Never predictively execute what is already usable from the cache
  // (paper Section 4.3).
  if (cache_->ContainsCompatible(key, session.vv, adm->tables_read())) {
    c_.predictions_skipped_cached->Inc();
    Trace(obs::TraceEventType::kPredictionSkipped, session, template_id,
          obs::SkipReason::kCached, static_cast<uint64_t>(depth));
    return;
  }
  if (config_.enable_pubsub_dedup) {
    bool leader = inflight_.BeginOrSubscribe(
        key, [this, &session, template_id, depth](
                 const util::Result<common::ResultSetPtr>& result,
                 const cache::VersionVector& stamp) {
          (void)stamp;
          if (result.ok()) {
            OnPredictionCompleted(session, template_id, result.value(),
                                  depth);
          }
        });
    if (!leader) {
      c_.predictions_skipped_inflight->Inc();
      Trace(obs::TraceEventType::kPredictionSkipped, session, template_id,
            obs::SkipReason::kInflight, static_cast<uint64_t>(depth));
      return;
    }
  }
  c_.predictions_issued->Inc();
  Trace(obs::TraceEventType::kPredictionIssued, session, template_id,
        obs::SkipReason::kNone, static_cast<uint64_t>(depth));
  station_.Submit(
      config_.engine_overhead_per_prediction,
      [this, &session, template_id, sql, key, depth, probability,
       adm = std::move(*adm)]() mutable {
        util::SimTime t0 = loop_->now();
        auto on_done =
            [this, &session, template_id, key, depth, probability,
             t0](util::Result<common::ResultSetPtr> result,
                 std::unordered_map<std::string, uint64_t> versions) {
              if (!result.ok()) {
                inflight_.Complete(key, result, {});
                return;
              }
              cache::VersionVector stamp;
              for (const auto& [t, v] : versions) stamp.Set(t, v);
              cache::KvCache::PutAttrs attrs;
              attrs.predicted = true;
              attrs.template_id = template_id;
              attrs.miss_cost_us = static_cast<double>(loop_->now() - t0);
              attrs.probability = probability;
              cache_->Put(key, *result, stamp, attrs);
              Trace(obs::TraceEventType::kPredictionCached, session,
                    template_id, obs::SkipReason::kNone,
                    static_cast<uint64_t>(depth));
              TemplateMeta* meta = templates_.Get(template_id);
              if (meta != nullptr) {
                meta->RecordExecution(loop_->now() - t0);
              }
              common::ResultSetPtr rs = *result;
              inflight_.Complete(key, result, stamp);
              OnPredictionCompleted(session, template_id, std::move(rs),
                                    depth);
            };
        if (adm.preparable()) {
          remote_->ExecutePrepared(adm.tpl, std::move(adm.params),
                                   std::move(on_done),
                                   /*predictive=*/true);
        } else {
          remote_->Execute(sql, std::move(on_done), /*predictive=*/true);
        }
      });
}

}  // namespace apollo::core
