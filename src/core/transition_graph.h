// TransitionGraph: the frequency-based Markov graph of paper Section 2.2.
//
// Vertices are query templates; an edge (Qti -> Qtj) counts how many times
// Qtj executed within delta-t after Qti. P(Qtj | Qti; T <= delta_t) =
// we(Qti,Qtj) / wv(Qti). The graph is built online from a client's query
// stream by QueryStream::Process (Algorithm 1).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/sim_time.h"

namespace apollo::core {

class TransitionGraph {
 public:
  explicit TransitionGraph(util::SimDuration delta_t) : delta_t_(delta_t) {}

  util::SimDuration delta_t() const { return delta_t_; }

  /// wv(qt) += 1 : the template's window has closed one more time.
  void AddVertexObservation(uint64_t qt) { ++vertices_[qt].count; }

  /// we(from, to) += 1 : `to` executed within delta-t after `from`.
  void AddEdgeObservation(uint64_t from, uint64_t to) {
    ++vertices_[from].out_edges[to];
  }

  /// Number of closed windows for `qt` (the probability denominator).
  uint64_t VertexCount(uint64_t qt) const;

  /// Number of times `to` followed `from` within delta-t.
  uint64_t EdgeCount(uint64_t from, uint64_t to) const;

  /// P(to | from; T <= delta_t); 0 if `from` unseen.
  double TransitionProbability(uint64_t from, uint64_t to) const;

  /// All successors of `from` with probability >= min_probability,
  /// (template, probability) pairs (the paper's "related at tau").
  std::vector<std::pair<uint64_t, double>> Successors(
      uint64_t from, double min_probability) const;

  /// Sums transition probabilities from `from` over the subset of
  /// successors accepted by `pred` (used by the freshness model to total
  /// the probability of an invalidating write).
  template <typename Pred>
  double SuccessorProbabilityMass(uint64_t from, Pred pred) const {
    auto it = vertices_.find(from);
    if (it == vertices_.end() || it->second.count == 0) return 0.0;
    double denom = static_cast<double>(it->second.count);
    double mass = 0.0;
    for (const auto& [to, count] : it->second.out_edges) {
      if (pred(to)) mass += static_cast<double>(count) / denom;
    }
    return mass;
  }

  size_t num_vertices() const { return vertices_.size(); }
  size_t num_edges() const;

  /// Approximate memory footprint (overhead reporting).
  size_t ApproximateBytes() const;

 private:
  struct Vertex {
    uint64_t count = 0;  // wv
    std::unordered_map<uint64_t, uint64_t> out_edges;  // we
  };
  std::unordered_map<uint64_t, Vertex> vertices_;
  util::SimDuration delta_t_;
};

}  // namespace apollo::core
