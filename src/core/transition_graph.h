// TransitionGraph: the frequency-based Markov graph of paper Section 2.2.
//
// Vertices are query templates; an edge (Qti -> Qtj) counts how many times
// Qtj executed within delta-t after Qti. P(Qtj | Qti; T <= delta_t) =
// we(Qti,Qtj) / wv(Qti). The graph is built online from a client's query
// stream by QueryStream::Process (Algorithm 1).
//
// Thread safety: the vertex map is lock-striped by template id so the
// concurrent runtime (src/rt/) can fold observations from many workers
// without a single hot mutex. All per-vertex operations (observations,
// probability reads, Successors) touch exactly one stripe; whole-graph
// statistics visit the stripes one at a time. The single-threaded
// event-loop path takes the same uncontended locks and is bit-identical
// to the unsynchronized implementation.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/sim_time.h"

namespace apollo::core {

class TransitionGraph {
 public:
  static constexpr size_t kDefaultStripes = 8;

  explicit TransitionGraph(util::SimDuration delta_t,
                           size_t num_stripes = kDefaultStripes)
      : delta_t_(delta_t) {
    if (num_stripes == 0) num_stripes = 1;
    stripes_.reserve(num_stripes);
    for (size_t i = 0; i < num_stripes; ++i) {
      stripes_.push_back(std::make_unique<Stripe>());
    }
  }

  util::SimDuration delta_t() const { return delta_t_; }

  /// wv(qt) += 1 : the template's window has closed one more time.
  void AddVertexObservation(uint64_t qt) {
    Stripe& s = StripeFor(qt);
    std::lock_guard<std::mutex> lock(s.mu);
    ++s.vertices[qt].count;
  }

  /// we(from, to) += 1 : `to` executed within delta-t after `from`.
  void AddEdgeObservation(uint64_t from, uint64_t to) {
    Stripe& s = StripeFor(from);
    std::lock_guard<std::mutex> lock(s.mu);
    ++s.vertices[from].out_edges[to];
  }

  /// Number of closed windows for `qt` (the probability denominator).
  uint64_t VertexCount(uint64_t qt) const;

  /// Number of times `to` followed `from` within delta-t.
  uint64_t EdgeCount(uint64_t from, uint64_t to) const;

  /// P(to | from; T <= delta_t); 0 if `from` unseen.
  double TransitionProbability(uint64_t from, uint64_t to) const;

  /// All successors of `from` with probability >= min_probability,
  /// (template, probability) pairs (the paper's "related at tau").
  std::vector<std::pair<uint64_t, double>> Successors(
      uint64_t from, double min_probability) const;

  /// Sums transition probabilities from `from` over the subset of
  /// successors accepted by `pred` (used by the freshness model to total
  /// the probability of an invalidating write). `pred` runs under the
  /// vertex's stripe lock, so it must not call back into this graph.
  template <typename Pred>
  double SuccessorProbabilityMass(uint64_t from, Pred pred) const {
    const Stripe& s = StripeFor(from);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.vertices.find(from);
    if (it == s.vertices.end() || it->second.count == 0) return 0.0;
    double denom = static_cast<double>(it->second.count);
    double mass = 0.0;
    for (const auto& [to, count] : it->second.out_edges) {
      if (pred(to)) mass += static_cast<double>(count) / denom;
    }
    return mass;
  }

  size_t num_vertices() const;
  size_t num_edges() const;
  size_t num_stripes() const { return stripes_.size(); }

  /// Approximate memory footprint (overhead reporting).
  size_t ApproximateBytes() const;

 private:
  struct Vertex {
    uint64_t count = 0;  // wv
    std::unordered_map<uint64_t, uint64_t> out_edges;  // we
  };
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Vertex> vertices;
  };

  Stripe& StripeFor(uint64_t qt) { return *stripes_[qt % stripes_.size()]; }
  const Stripe& StripeFor(uint64_t qt) const {
    return *stripes_[qt % stripes_.size()];
  }

  std::vector<std::unique_ptr<Stripe>> stripes_;
  util::SimDuration delta_t_;
};

}  // namespace apollo::core
