// TransitionGraph: the frequency-based Markov graph of paper Section 2.2.
//
// Vertices are query templates; an edge (Qti -> Qtj) counts how many times
// Qtj executed within delta-t after Qti. P(Qtj | Qti; T <= delta_t) =
// we(Qti,Qtj) / wv(Qti). The graph is built online from a client's query
// stream by QueryStream::Process (Algorithm 1).
//
// Thread safety: the vertex map is lock-striped by template id so the
// concurrent runtime (src/rt/) can fold observations from many workers
// without a single hot mutex. All per-vertex operations (observations,
// probability reads, Successors) touch exactly one stripe; whole-graph
// statistics visit the stripes one at a time. The single-threaded
// event-loop path takes the same uncontended locks and is bit-identical
// to the unsynchronized implementation.
//
// Bounded memory (DESIGN.md §11): an optional edge cap triggers
// evidence-weighted pruning — when a stripe exceeds its share of the cap,
// the lowest-count edges (LRU tie-break on a per-stripe touch tick) are
// batch-evicted under that stripe's lock. With the cap at 0 (the default)
// behavior is byte-identical to the unbounded graph.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/sim_time.h"

namespace apollo::core {

class TransitionGraph {
 public:
  static constexpr size_t kDefaultStripes = 8;

  /// `max_edges` caps the edge count across the whole graph (0 =
  /// unbounded); each stripe gets an equal share.
  explicit TransitionGraph(util::SimDuration delta_t,
                           size_t num_stripes = kDefaultStripes,
                           size_t max_edges = 0)
      : delta_t_(delta_t) {
    if (num_stripes == 0) num_stripes = 1;
    stripes_.reserve(num_stripes);
    const size_t per_stripe_cap =
        max_edges == 0 ? 0 : std::max<size_t>(1, max_edges / num_stripes);
    for (size_t i = 0; i < num_stripes; ++i) {
      stripes_.push_back(std::make_unique<Stripe>());
      stripes_.back()->edge_cap = per_stripe_cap;
    }
  }

  util::SimDuration delta_t() const { return delta_t_; }

  /// wv(qt) += 1 : the template's window has closed one more time.
  void AddVertexObservation(uint64_t qt) {
    Stripe& s = StripeFor(qt);
    std::lock_guard<std::mutex> lock(s.mu);
    ++s.vertices[qt].count;
  }

  /// we(from, to) += 1 : `to` executed within delta-t after `from`.
  void AddEdgeObservation(uint64_t from, uint64_t to) {
    Stripe& s = StripeFor(from);
    std::lock_guard<std::mutex> lock(s.mu);
    Edge& e = s.vertices[from].out_edges[to];
    if (e.count == 0) ++s.edge_count;
    ++e.count;
    e.tick = ++s.tick;
    if (s.edge_cap != 0 && s.edge_count > s.edge_cap) PruneStripeLocked(s);
  }

  /// Number of closed windows for `qt` (the probability denominator).
  uint64_t VertexCount(uint64_t qt) const;

  /// Number of times `to` followed `from` within delta-t.
  uint64_t EdgeCount(uint64_t from, uint64_t to) const;

  /// P(to | from; T <= delta_t); 0 if `from` unseen.
  double TransitionProbability(uint64_t from, uint64_t to) const;

  /// All successors of `from` with probability >= min_probability,
  /// (template, probability) pairs (the paper's "related at tau").
  std::vector<std::pair<uint64_t, double>> Successors(
      uint64_t from, double min_probability) const;

  /// Sums transition probabilities from `from` over the subset of
  /// successors accepted by `pred` (used by the freshness model to total
  /// the probability of an invalidating write). `pred` runs under the
  /// vertex's stripe lock, so it must not call back into this graph.
  template <typename Pred>
  double SuccessorProbabilityMass(uint64_t from, Pred pred) const {
    const Stripe& s = StripeFor(from);
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.vertices.find(from);
    if (it == s.vertices.end() || it->second.count == 0) return 0.0;
    double denom = static_cast<double>(it->second.count);
    double mass = 0.0;
    for (const auto& [to, e] : it->second.out_edges) {
      if (pred(to)) mass += static_cast<double>(e.count) / denom;
    }
    return mass;
  }

  size_t num_vertices() const;
  size_t num_edges() const;
  size_t num_stripes() const { return stripes_.size(); }

  /// Edges evicted by the cap so far.
  uint64_t pruned_edges() const;

  /// Counter bumped once per pruned edge (e.g. "learning_pruned_edges");
  /// call before concurrent use. May be null (count-only).
  void SetPruneCounter(obs::Counter* counter);

  // ---- Snapshot support (src/persist/, DESIGN.md §11) ----

  /// Canonical exported form: vertices sorted by id, out-edges sorted by
  /// destination, so identical graph contents always serialize to
  /// identical bytes.
  struct ExportedVertex {
    uint64_t id = 0;
    uint64_t count = 0;  // wv
    std::vector<std::pair<uint64_t, uint64_t>> edges;  // (to, we)
  };
  struct State {
    util::SimDuration delta_t = 0;
    std::vector<ExportedVertex> vertices;
  };

  State ExportState() const;

  /// Folds `state` into this graph (adds counts; typically called on a
  /// fresh graph). Restored edges enter with fresh recency ticks.
  void ImportState(const State& state);

  /// Approximate memory footprint (overhead reporting).
  size_t ApproximateBytes() const;

 private:
  struct Edge {
    uint64_t count = 0;  // we
    uint64_t tick = 0;   // stripe tick at last observation (LRU tie-break)
  };
  struct Vertex {
    uint64_t count = 0;  // wv
    std::unordered_map<uint64_t, Edge> out_edges;  // we
  };
  // Pruning state lives in the stripes (not the graph object) so the
  // graph's sizeof — which feeds the learning-state byte estimate the
  // benches print — is unchanged whether or not a cap is configured.
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Vertex> vertices;
    size_t edge_count = 0;
    size_t edge_cap = 0;  // 0 = unbounded
    uint64_t tick = 0;
    uint64_t pruned = 0;
    obs::Counter* prune_counter = nullptr;
  };

  /// Batch-evicts the weakest-evidence edges (count ascending, tick
  /// ascending) until the stripe is ~1/8 under its cap. Caller holds s.mu.
  void PruneStripeLocked(Stripe& s);

  Stripe& StripeFor(uint64_t qt) { return *stripes_[qt % stripes_.size()]; }
  const Stripe& StripeFor(uint64_t qt) const {
    return *stripes_[qt % stripes_.size()];
  }

  std::vector<std::unique_ptr<Stripe>> stripes_;
  util::SimDuration delta_t_;
};

}  // namespace apollo::core
