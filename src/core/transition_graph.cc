#include "core/transition_graph.h"

#include <algorithm>

namespace apollo::core {

uint64_t TransitionGraph::VertexCount(uint64_t qt) const {
  const Stripe& s = StripeFor(qt);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.vertices.find(qt);
  return it == s.vertices.end() ? 0 : it->second.count;
}

uint64_t TransitionGraph::EdgeCount(uint64_t from, uint64_t to) const {
  const Stripe& s = StripeFor(from);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.vertices.find(from);
  if (it == s.vertices.end()) return 0;
  auto eit = it->second.out_edges.find(to);
  return eit == it->second.out_edges.end() ? 0 : eit->second.count;
}

double TransitionGraph::TransitionProbability(uint64_t from,
                                              uint64_t to) const {
  const Stripe& s = StripeFor(from);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.vertices.find(from);
  if (it == s.vertices.end() || it->second.count == 0) return 0.0;
  auto eit = it->second.out_edges.find(to);
  if (eit == it->second.out_edges.end()) return 0.0;
  return static_cast<double>(eit->second.count) /
         static_cast<double>(it->second.count);
}

std::vector<std::pair<uint64_t, double>> TransitionGraph::Successors(
    uint64_t from, double min_probability) const {
  std::vector<std::pair<uint64_t, double>> out;
  const Stripe& s = StripeFor(from);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.vertices.find(from);
  if (it == s.vertices.end() || it->second.count == 0) return out;
  double denom = static_cast<double>(it->second.count);
  for (const auto& [to, e] : it->second.out_edges) {
    double p = static_cast<double>(e.count) / denom;
    // >= : the paper treats an edge at exactly tau as related. Keep this
    // aligned with the freshness model's boundary (FreshnessAllows), which
    // likewise counts mass >= tau as significant.
    if (p >= min_probability) out.emplace_back(to, p);
  }
  return out;
}

size_t TransitionGraph::num_vertices() const {
  size_t n = 0;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lock(s->mu);
    n += s->vertices.size();
  }
  return n;
}

size_t TransitionGraph::num_edges() const {
  size_t n = 0;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lock(s->mu);
    for (const auto& [_, v] : s->vertices) n += v.out_edges.size();
  }
  return n;
}

uint64_t TransitionGraph::pruned_edges() const {
  uint64_t n = 0;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lock(s->mu);
    n += s->pruned;
  }
  return n;
}

void TransitionGraph::SetPruneCounter(obs::Counter* counter) {
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lock(s->mu);
    s->prune_counter = counter;
  }
}

void TransitionGraph::PruneStripeLocked(Stripe& s) {
  // Evict down to ~7/8 of the cap in one batch so a hot stripe is not
  // re-pruned on every insertion.
  const size_t target = s.edge_cap - std::max<size_t>(1, s.edge_cap / 8);
  if (s.edge_count <= target) return;
  size_t evict = s.edge_count - target;

  struct Victim {
    uint64_t count;
    uint64_t tick;
    uint64_t from;
    uint64_t to;
  };
  std::vector<Victim> all;
  all.reserve(s.edge_count);
  for (const auto& [from, v] : s.vertices) {
    for (const auto& [to, e] : v.out_edges) {
      all.push_back(Victim{e.count, e.tick, from, to});
    }
  }
  if (evict > all.size()) evict = all.size();
  // Evidence-weighted LRU: weakest count first, oldest touch breaking
  // ties. (from, to) is a final deterministic tie-break so pruning is
  // reproducible for identical insertion histories.
  auto weaker = [](const Victim& a, const Victim& b) {
    if (a.count != b.count) return a.count < b.count;
    if (a.tick != b.tick) return a.tick < b.tick;
    if (a.from != b.from) return a.from < b.from;
    return a.to < b.to;
  };
  std::nth_element(all.begin(), all.begin() + evict - 1, all.end(), weaker);
  std::sort(all.begin(), all.begin() + evict, weaker);
  for (size_t i = 0; i < evict; ++i) {
    auto vit = s.vertices.find(all[i].from);
    if (vit == s.vertices.end()) continue;
    vit->second.out_edges.erase(all[i].to);
    --s.edge_count;
    ++s.pruned;
    // Vertices keep their wv count even with no surviving out-edges: the
    // denominator is evidence in its own right.
  }
  if (s.prune_counter != nullptr) s.prune_counter->Inc(evict);
}

TransitionGraph::State TransitionGraph::ExportState() const {
  State st;
  st.delta_t = delta_t_;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lock(s->mu);
    for (const auto& [id, v] : s->vertices) {
      ExportedVertex ev;
      ev.id = id;
      ev.count = v.count;
      ev.edges.reserve(v.out_edges.size());
      for (const auto& [to, e] : v.out_edges) ev.edges.emplace_back(to, e.count);
      std::sort(ev.edges.begin(), ev.edges.end());
      st.vertices.push_back(std::move(ev));
    }
  }
  std::sort(st.vertices.begin(), st.vertices.end(),
            [](const ExportedVertex& a, const ExportedVertex& b) {
              return a.id < b.id;
            });
  return st;
}

void TransitionGraph::ImportState(const State& state) {
  for (const ExportedVertex& ev : state.vertices) {
    Stripe& s = StripeFor(ev.id);
    std::lock_guard<std::mutex> lock(s.mu);
    Vertex& v = s.vertices[ev.id];
    v.count += ev.count;
    for (const auto& [to, count] : ev.edges) {
      Edge& e = v.out_edges[to];
      if (e.count == 0) ++s.edge_count;
      e.count += count;
      e.tick = ++s.tick;
    }
    if (s.edge_cap != 0 && s.edge_count > s.edge_cap) PruneStripeLocked(s);
  }
}

size_t TransitionGraph::ApproximateBytes() const {
  size_t total = sizeof(*this);
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lock(s->mu);
    for (const auto& [_, v] : s->vertices) {
      total += 48 + v.out_edges.size() * 24;
    }
  }
  return total;
}

}  // namespace apollo::core
