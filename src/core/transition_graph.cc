#include "core/transition_graph.h"

namespace apollo::core {

uint64_t TransitionGraph::VertexCount(uint64_t qt) const {
  const Stripe& s = StripeFor(qt);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.vertices.find(qt);
  return it == s.vertices.end() ? 0 : it->second.count;
}

uint64_t TransitionGraph::EdgeCount(uint64_t from, uint64_t to) const {
  const Stripe& s = StripeFor(from);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.vertices.find(from);
  if (it == s.vertices.end()) return 0;
  auto eit = it->second.out_edges.find(to);
  return eit == it->second.out_edges.end() ? 0 : eit->second;
}

double TransitionGraph::TransitionProbability(uint64_t from,
                                              uint64_t to) const {
  const Stripe& s = StripeFor(from);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.vertices.find(from);
  if (it == s.vertices.end() || it->second.count == 0) return 0.0;
  auto eit = it->second.out_edges.find(to);
  if (eit == it->second.out_edges.end()) return 0.0;
  return static_cast<double>(eit->second) /
         static_cast<double>(it->second.count);
}

std::vector<std::pair<uint64_t, double>> TransitionGraph::Successors(
    uint64_t from, double min_probability) const {
  std::vector<std::pair<uint64_t, double>> out;
  const Stripe& s = StripeFor(from);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.vertices.find(from);
  if (it == s.vertices.end() || it->second.count == 0) return out;
  double denom = static_cast<double>(it->second.count);
  for (const auto& [to, count] : it->second.out_edges) {
    double p = static_cast<double>(count) / denom;
    // >= : the paper treats an edge at exactly tau as related. Keep this
    // aligned with the freshness model's boundary (FreshnessAllows), which
    // likewise counts mass >= tau as significant.
    if (p >= min_probability) out.emplace_back(to, p);
  }
  return out;
}

size_t TransitionGraph::num_vertices() const {
  size_t n = 0;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lock(s->mu);
    n += s->vertices.size();
  }
  return n;
}

size_t TransitionGraph::num_edges() const {
  size_t n = 0;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lock(s->mu);
    for (const auto& [_, v] : s->vertices) n += v.out_edges.size();
  }
  return n;
}

size_t TransitionGraph::ApproximateBytes() const {
  size_t total = sizeof(*this);
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lock(s->mu);
    for (const auto& [_, v] : s->vertices) {
      total += 48 + v.out_edges.size() * 24;
    }
  }
  return total;
}

}  // namespace apollo::core
