// CachingMiddleware: the shared edge-node machinery (paper Section 3).
//
// Implements everything except prediction: per-client sessions with
// version-vector consistency (3.2), the shared versioned LRU cache, the
// publish-subscribe single-flight registry (3.3), the middleware service
// station (CPU model), and remote execution. Instantiated directly it *is*
// the Memcached experimental configuration; ApolloMiddleware and
// FidoMiddleware subclass it and add their prediction engines through the
// OnQueryCompleted / OnPredictionCompleted hooks.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "cache/kv_cache.h"
#include "cache/version_vector.h"
#include "core/config.h"
#include "core/inflight_registry.h"
#include "core/middleware.h"
#include "core/query_stream.h"
#include "core/template_registry.h"
#include "net/remote_database.h"
#include "obs/observability.h"
#include "sim/service_station.h"
#include "sql/template.h"
#include "sql/template_cache.h"
#include "util/status.h"

namespace apollo::persist {
class SnapshotWriter;
struct RestoreStats;
}  // namespace apollo::persist

namespace apollo::core {

/// Per-client session state (paper Section 3.2). The stream/graphs members
/// are populated only by learning subclasses.
struct ClientSession {
  explicit ClientSession(ClientId id_, const ApolloConfig& config)
      : id(id_),
        stream(config.delta_ts, config.max_stream_entries,
               config.max_transition_edges) {}

  ClientId id;
  cache::VersionVector vv;

  // Learning state (used by ApolloMiddleware).
  QueryStream stream;
  struct RecentExecution {
    common::ResultSetPtr result;
    util::SimTime time = 0;
  };
  /// Latest result set per read-only template (pipeline inputs, Section
  /// 2.3-2.4).
  std::unordered_map<uint64_t, RecentExecution> recent;
  /// Latest parameters per template (mapping observations).
  std::unordered_map<uint64_t, std::vector<common::Value>> recent_params;
  /// Last client execution time per template. Mapping observations are
  /// scoped to source executions newer than the destination's previous
  /// execution, so a query is never attributed to a stale source from an
  /// earlier transaction that happens to sit inside delta-t.
  std::unordered_map<uint64_t, util::SimTime> last_seen;
  /// Per-FDQ satisfied-dependency sets (Algorithm 4 state).
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> satisfied;
};

class CachingMiddleware : public Middleware {
 public:
  /// `obs` is the per-run observability bundle (a private one is created
  /// when null); `metric_prefix` qualifies instrument names when several
  /// instances share one registry (e.g. "mw0.").
  CachingMiddleware(sim::EventLoop* loop, net::RemoteDatabase* remote,
                    cache::KvCache* cache, ApolloConfig config,
                    obs::Observability* obs = nullptr,
                    const std::string& metric_prefix = "mw.");

  void SubmitQuery(ClientId client, const std::string& sql,
                   QueryCallback callback) override;

  /// Assembles the legacy stats view from the registry counters.
  const MiddlewareStats& stats() const override;
  std::string name() const override { return "memcached"; }

  obs::Observability& observability() { return *obs_; }
  const obs::Observability& observability() const { return *obs_; }

  const sim::ServiceStationStats& engine_station_stats() const {
    return station_.stats();
  }
  const InflightRegistry& inflight() const { return inflight_; }
  TemplateRegistry& templates() { return templates_; }
  const sql::TemplateCache& template_cache() const { return tcache_; }
  cache::KvCache* result_cache() { return cache_; }
  const ApolloConfig& config() const { return config_; }

  // ---- Crash-tolerant learned state (src/persist/, DESIGN.md §11) ----
  //
  // Checkpoint/Restore serialize the *learning* state only — templates,
  // per-session transition graphs and satisfied-dependency sets, plus
  // subclass sections (parameter mappings, the FDQ/ADQ graph). Cached
  // result sets, version vectors, recent results and last-seen times are
  // deliberately excluded: a restored process starts with an empty cache
  // and empty sessions vectors, so no stale result can ever be served.
  // Defined in src/persist/middleware_persist.cc (apollo_persist).

  /// Serializes the learning state to `path` atomically (tmp + fsync +
  /// rename). Safe to call at any point between event-loop callbacks.
  /// Every transition window already closed by now is folded into the
  /// graphs first, so a snapshot omits only still-open windows (which a
  /// restart legitimately loses).
  virtual util::Status Checkpoint(const std::string& path);

  /// Restores learning state from `path` with per-section validation.
  /// Corrupt, truncated or unknown sections are skipped with a trace
  /// event while intact ones load (partial recovery); the call fails only
  /// when the file is missing or its header is unusable. `stats`
  /// (optional) receives section and entry counts.
  virtual util::Status Restore(const std::string& path,
                               persist::RestoreStats* stats = nullptr);

 protected:
  /// Subclass hook: append snapshot sections. The base contributes the
  /// template-registry and sessions sections; ApolloMiddleware adds the
  /// param-mapper and dependency-graph sections.
  virtual void CollectPersistSections(persist::SnapshotWriter* w);

  /// Subclass hook: decode and apply one validated section payload.
  /// Returns kNotFound for section types the class does not own (the
  /// caller records them as unknown and keeps going).
  virtual util::Status RestoreSection(uint32_t type,
                                      const std::string& payload,
                                      persist::RestoreStats* stats);
  /// Everything known about a query that just completed at the client.
  struct CompletedQuery {
    uint64_t template_id = 0;
    TemplateMeta* meta = nullptr;
    std::string canonical_text;
    std::vector<common::Value> params;
    common::ResultSetPtr result;  // nullptr on error / write
    bool read_only = true;
    bool from_cache = false;
    util::SimDuration remote_time = 0;  // observed DB round trip (0 if hit)
  };

  /// Hook: a *client* query finished (result already delivered). Learning
  /// subclasses run their prediction routine here. Runs at the completion
  /// simulated time.
  virtual void OnQueryCompleted(ClientSession& session,
                                const CompletedQuery& query) {
    (void)session;
    (void)query;
  }

  /// Hook: a predictive execution issued via PredictiveExecute finished
  /// and its result is cached. Used for pipelining.
  virtual void OnPredictionCompleted(ClientSession& session,
                                     uint64_t template_id,
                                     common::ResultSetPtr result,
                                     int depth) {
    (void)session;
    (void)template_id;
    (void)result;
    (void)depth;
  }

  /// Issues a predictive execution of `sql` on behalf of `session`.
  /// Skips (with stats) when a compatible result is cached or the query is
  /// already in flight. The result is cached and published; `depth` is the
  /// pipeline depth for the completion hook. `template_id` may be 0 when
  /// the caller predicts raw instances (Fido). `probability` is the
  /// transition probability that motivated the prediction; it rides into
  /// the cache entry so cost-aware eviction can weigh confidence
  /// (DESIGN.md §13). 1.0 when the caller has no estimate.
  void PredictiveExecute(ClientSession& session, uint64_t template_id,
                         const std::string& sql, int depth,
                         double probability = 1.0);

  /// Admits one query through the template cache (lex fast path with full
  /// parse fallback), recording the real admission cost into the
  /// admit_fast/admit_full wall histograms.
  util::Result<sql::AdmittedQuery> AdmitQuery(const std::string& sql);

  ClientSession& SessionFor(ClientId client);

  /// Shorthand for recording a prediction-lifecycle trace event.
  void Trace(obs::TraceEventType type, const ClientSession& session,
             uint64_t template_id,
             obs::SkipReason reason = obs::SkipReason::kNone,
             uint64_t aux = 0) {
    if (obs_->trace.enabled()) {
      obs_->trace.Record(type, session.id, template_id, reason, aux);
    }
  }

  sim::EventLoop* loop_;
  net::RemoteDatabase* remote_;
  cache::KvCache* cache_;
  ApolloConfig config_;
  sim::ServiceStation station_;
  InflightRegistry inflight_;
  TemplateRegistry templates_;
  /// Admission cache: template fingerprint fast path + prepared statements
  /// (DESIGN.md Section 10). Steady state admits without building an AST.
  sql::TemplateCache tcache_;
  std::unordered_map<ClientId, std::unique_ptr<ClientSession>> sessions_;

  /// Registry-backed instruments; MiddlewareStats is assembled from these
  /// on demand (stats()).
  std::unique_ptr<obs::Observability> owned_obs_;  // fallback when none given
  obs::Observability* obs_;
  struct Counters {
    obs::Counter* queries;
    obs::Counter* reads;
    obs::Counter* writes;
    obs::Counter* cache_hits;
    obs::Counter* cache_misses;
    obs::Counter* coalesced_waits;
    obs::Counter* parse_errors;
    obs::Counter* predictions_issued;
    obs::Counter* predictions_skipped_cached;
    obs::Counter* predictions_skipped_inflight;
    obs::Counter* predictions_skipped_fresh;
    obs::Counter* predictions_skipped_invalid;
    obs::Counter* predictions_skipped_incomplete;
    obs::Counter* adq_reloads;
    obs::Counter* shed_predictions;
    obs::Counter* shed_adq_reloads;
    obs::Counter* subscriber_fallbacks;
    obs::Counter* fdqs_discovered;
    obs::Counter* fdqs_invalidated;
    obs::Counter* find_fdq_calls;
    obs::Counter* construct_fdq_calls;
    obs::Gauge* find_fdq_wall_us;       // real time, not simulated
    obs::Gauge* construct_fdq_wall_us;  // real time, not simulated
    /// Pruned-learning-state counters; registered only when the matching
    /// cap is configured (> 0) so default-config runs export an unchanged
    /// instrument set (the benches' byte-identity contract). Null when
    /// the cap is off.
    obs::Counter* learning_pruned_edges;
    obs::Counter* learning_pruned_pairs;
  };
  Counters c_{};
  /// Per-query latency breakdown (DESIGN.md Section 8): simulated cache
  /// round trip and WAN time per client read, and real (wall) time spent
  /// in the learning / predict-decide stages per completed query.
  struct LatencyBreakdown {
    obs::HistogramMetric* cache_us;            // simulated, per client read
    obs::HistogramMetric* wan_us;              // simulated, per remote trip
    obs::HistogramMetric* learn_wall_us;       // wall, per learning pass
    obs::HistogramMetric* predict_wall_us;     // wall, per predict-decide
    obs::HistogramMetric* admit_fast_wall_us;  // wall, lex fast-path admits
    obs::HistogramMetric* admit_full_wall_us;  // wall, full-parse admits
  };
  LatencyBreakdown lat_{};

 private:
  mutable MiddlewareStats stats_view_;

  void ProcessQuery(ClientId client, const std::string& sql,
                    QueryCallback callback);
  void ExecuteRead(ClientSession& session, sql::AdmittedQuery adm,
                   QueryCallback callback, util::SimTime submit_time);
  /// Issues a remote read on behalf of a client. When `publish` is set the
  /// caller is the in-flight leader for the key and the outcome (success or
  /// failure) is published through the registry; subscriber fallbacks pass
  /// false and keep their result private.
  void RemoteRead(ClientSession& session, sql::AdmittedQuery adm,
                  QueryCallback callback, bool publish);
  void ExecuteWrite(ClientSession& session, sql::AdmittedQuery adm,
                    QueryCallback callback, util::SimTime submit_time);
  void FinishRead(ClientSession& session, const sql::AdmittedQuery& adm,
                  common::ResultSetPtr result, bool from_cache,
                  util::SimDuration remote_time, QueryCallback callback);
};

}  // namespace apollo::core
