#include "core/apollo_middleware.h"

#include <algorithm>
#include <chrono>

namespace apollo::core {

namespace {
/// Fallback runtime estimate for templates never executed remotely.
constexpr double kDefaultRuntimeUs = 100'000.0;  // 100 ms

double WallMicrosSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
             .count() /
         1000.0;
}
}  // namespace

void ApolloMiddleware::ClearSatisfied(uint64_t fdq_id) {
  for (auto& [_, session] : sessions_) {
    session->satisfied.erase(fdq_id);
  }
}

void ApolloMiddleware::OnQueryCompleted(ClientSession& session,
                                        const CompletedQuery& q) {
  if (!config_.enable_prediction) return;  // Memcached configuration
  const util::SimTime now = loop_->now();
  const auto learn_t0 = std::chrono::steady_clock::now();

  // --- Learning: stream + transition graphs (Algorithm 1) ---
  session.stream.Append(q.template_id, now);
  session.stream.Process(now);

  if (q.read_only && q.result != nullptr) {
    session.recent[q.template_id] = {q.result, now};
  }
  session.recent_params[q.template_id] = q.params;

  // --- Parameter-mapping observations (Section 2.3) ---
  // Sources older than this query's own previous execution belong to an
  // earlier transaction; attributing the current parameters to them would
  // produce spurious disproofs (e.g. TPC-C's by-id vs by-name customer
  // lookup variants).
  util::SimTime prev_dst_time = -1;
  {
    auto lit = session.last_seen.find(q.template_id);
    if (lit != session.last_seen.end()) prev_dst_time = lit->second;
    session.last_seen[q.template_id] = now;
  }
  const util::SimDuration primary_dt = session.stream.primary().delta_t();
  if (q.read_only && !q.params.empty()) {
    auto entries = session.stream.EntriesWithin(now, primary_dt);
    if (!entries.empty()) entries.pop_back();  // drop the current query
    std::unordered_set<uint64_t> seen;
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
      if (it->qt == q.template_id) continue;
      if (it->time <= prev_dst_time) break;  // earlier transaction
      if (!seen.insert(it->qt).second) continue;
      auto rit = session.recent.find(it->qt);
      if (rit == session.recent.end()) continue;
      if (rit->second.result == nullptr) continue;
      if (rit->second.time + primary_dt < now) continue;
      bool disproven = mapper_.ObservePair(it->qt, *rit->second.result,
                                           q.template_id, q.params);
      if (disproven) {
        Trace(obs::TraceEventType::kMappingDisproven, session,
              q.template_id, obs::SkipReason::kNone, /*aux=*/it->qt);
      }
      if (disproven && deps_.Contains(q.template_id)) {
        // Drop the FDQ; it may be re-discovered from surviving mappings
        // (the disproven pair itself stays invalid in the mapper).
        std::vector<uint64_t> adq_revoked;
        deps_.Remove(q.template_id, &adq_revoked);
        // Per-session satisfaction state is keyed by FDQ id; a later
        // re-discovery with different dependencies must not inherit the
        // removed node's counts.
        ClearSatisfied(q.template_id);
        c_.fdqs_invalidated->Inc();
        Trace(obs::TraceEventType::kFdqInvalidated, session, q.template_id,
              obs::SkipReason::kNone, /*aux=*/it->qt);
        for (uint64_t revoked : adq_revoked) {
          Trace(obs::TraceEventType::kAdqRevoked, session, revoked);
        }
      }
    }
  }
  lat_.learn_wall_us->Record(
      static_cast<int64_t>(WallMicrosSince(learn_t0)));

  // --- Core prediction routine (Algorithm 2) ---
  const auto predict_t0 = std::chrono::steady_clock::now();
  std::vector<Fdq*> new_fdqs = FindNewFdqs(session, q.template_id);
  std::vector<Fdq*> ready = MarkReadyDependency(session, q.template_id);
  for (Fdq* f : new_fdqs) {
    // A freshly discovered FDQ is runnable right away if its dependencies
    // all have recent results in this session.
    if (DepsFresh(session, *f) &&
        std::find(ready.begin(), ready.end(), f) == ready.end()) {
      ready.push_back(f);
    }
  }
  for (Fdq* f : ready) {
    TryPredict(session, f, q.template_id, /*depth=*/0);
  }

  // --- Informed ADQ reload after writes (Section 3.4.2) ---
  if (!q.read_only && config_.enable_adq_reload) {
    // Reload storms are the worst load to send into a degraded link; drop
    // the whole pass (the next write after recovery re-triggers it).
    if (config_.shed_predictions_when_degraded && remote_->Degraded()) {
      c_.shed_adq_reloads->Inc();
      Trace(obs::TraceEventType::kPredictionSkipped, session, q.template_id,
            obs::SkipReason::kShed);
    } else {
      ReloadAdqs(session, q);
    }
  }
  lat_.predict_wall_us->Record(
      static_cast<int64_t>(WallMicrosSince(predict_t0)));
}

void ApolloMiddleware::OnPredictionCompleted(ClientSession& session,
                                             uint64_t template_id,
                                             common::ResultSetPtr result,
                                             int depth) {
  if (!config_.enable_prediction) return;
  session.recent[template_id] = {std::move(result), loop_->now()};
  if (!config_.enable_pipelining) return;
  if (depth + 1 > config_.max_pipeline_depth) return;
  // Pipelining (Section 2.4): a predicted result satisfies dependencies of
  // further FDQs, which now execute with its output as input.
  std::vector<Fdq*> ready = MarkReadyDependency(session, template_id);
  for (Fdq* f : ready) {
    TryPredict(session, f, template_id, depth + 1);
  }
}

std::vector<Fdq*> ApolloMiddleware::FindNewFdqs(ClientSession& session,
                                                uint64_t qt) {
  auto t0 = std::chrono::steady_clock::now();
  std::vector<Fdq*> out;

  auto related = session.stream.primary().Successors(qt, config_.tau);
  std::vector<uint64_t> candidates;
  candidates.reserve(related.size() + 1);
  for (const auto& [id, _] : related) candidates.push_back(id);
  candidates.push_back(qt);

  for (uint64_t id : candidates) {
    if (deps_.Contains(id)) continue;  // already_seen_deps
    const TemplateMeta* meta = templates_.Get(id);
    if (meta == nullptr || !meta->read_only) continue;
    auto sources = mapper_.GetSources(id, meta->num_placeholders);
    if (!sources.complete) continue;

    auto c0 = std::chrono::steady_clock::now();
    std::vector<SourceRef> chosen;
    chosen.reserve(sources.per_param.size());
    for (const auto& options : sources.per_param) {
      // Prefer a source that is already a known FDQ/ADQ (deepens
      // pipelines); otherwise take the first confirmed mapping.
      const SourceRef* pick = &options.front();
      for (const auto& opt : options) {
        const Fdq* src_fdq = deps_.Get(opt.src);
        if (src_fdq != nullptr && !src_fdq->invalid) {
          pick = &opt;
          break;
        }
      }
      chosen.push_back(*pick);
    }
    std::vector<uint64_t> upgraded;
    Fdq* f = deps_.Add(id, std::move(chosen), &upgraded);
    c_.fdqs_discovered->Inc();
    Trace(obs::TraceEventType::kFdqTagged, session, id,
          obs::SkipReason::kNone, /*aux=*/f->deps.size());
    if (f->is_adq) {
      Trace(obs::TraceEventType::kAdqTagged, session, id);
    }
    for (uint64_t up : upgraded) {
      Trace(obs::TraceEventType::kAdqTagged, session, up);
    }
    c_.construct_fdq_wall_us->Add(WallMicrosSince(c0));
    c_.construct_fdq_calls->Inc();
    out.push_back(f);
  }

  c_.find_fdq_wall_us->Add(WallMicrosSince(t0));
  c_.find_fdq_calls->Inc();
  return out;
}

std::vector<Fdq*> ApolloMiddleware::MarkReadyDependency(
    ClientSession& session, uint64_t qt) {
  std::vector<Fdq*> ready;
  for (Fdq* f : deps_.DependentsOf(qt)) {
    if (f->invalid) continue;
    auto& sat = session.satisfied[f->id];
    sat.insert(qt);
    if (sat.size() >= f->deps.size()) {
      ready.push_back(f);
      sat.clear();  // reset: must be satisfied again next time
    }
  }
  return ready;
}

bool ApolloMiddleware::DepsFresh(const ClientSession& session,
                                 const Fdq& f) const {
  const util::SimTime now = loop_->now();
  for (uint64_t dep : f.deps) {
    auto it = session.recent.find(dep);
    if (it == session.recent.end() || it->second.result == nullptr) {
      return false;
    }
    if (it->second.time + config_.recent_result_ttl < now) return false;
  }
  return true;
}

void ApolloMiddleware::TryPredict(ClientSession& session, Fdq* f,
                                  uint64_t trigger, int depth) {
  if (f->invalid) return;
  const TemplateMeta* meta = templates_.Get(f->id);
  if (meta == nullptr) return;

  if (config_.enable_freshness_check && !FreshnessAllows(session, *f,
                                                         trigger)) {
    c_.predictions_skipped_fresh->Inc();
    Trace(obs::TraceEventType::kPredictionSkipped, session, f->id,
          obs::SkipReason::kFreshness, /*aux=*/trigger);
    return;
  }

  // Confidence of this prediction — the observed probability the client
  // issues f within delta-t of the trigger — rides into the cache entry
  // so cost-aware eviction can weigh it (DESIGN.md §13).
  const double probability =
      session.stream.primary().TransitionProbability(trigger, f->id);

  // Instantiate one prediction per source row (bounded fan-out). Row r of
  // every source feeds fan-out instance r; sources are usually single-row
  // lookups, so the common case is one prediction from row 0.
  const util::SimTime now = loop_->now();
  std::string sql;  // instantiation buffer reused across fan-out rows
  for (int row = 0; row < config_.max_fanout_rows; ++row) {
    std::vector<common::Value> params(f->sources.size());
    bool instantiable = true;
    for (size_t p = 0; p < f->sources.size(); ++p) {
      const SourceRef& s = f->sources[p];
      auto it = session.recent.find(s.src);
      if (it == session.recent.end() || it->second.result == nullptr ||
          it->second.time + config_.recent_result_ttl < now) {
        instantiable = false;
        break;
      }
      const common::ResultSet& rs = *it->second.result;
      if (static_cast<size_t>(row) >= rs.num_rows() ||
          static_cast<size_t>(s.col) >= rs.num_columns()) {
        instantiable = false;  // source has no row `row` (or bad column)
        break;
      }
      params[p] = rs.At(static_cast<size_t>(row),
                        static_cast<size_t>(s.col));
    }
    if (!instantiable) {
      // Row 0 failing means no instance could be built at all; rows > 0
      // simply exhaust the fan-out.
      if (row == 0) {
        c_.predictions_skipped_incomplete->Inc();
        Trace(obs::TraceEventType::kPredictionSkipped, session, f->id,
              obs::SkipReason::kIncompleteSources, /*aux=*/trigger);
      }
      break;
    }
    auto status = sql::InstantiateTo(meta->template_text, params, &sql);
    if (!status.ok()) {
      c_.predictions_skipped_invalid->Inc();
      Trace(obs::TraceEventType::kPredictionSkipped, session, f->id,
            obs::SkipReason::kInvalidSql, /*aux=*/trigger);
      break;
    }
    PredictiveExecute(session, f->id, sql, depth, probability);
    if (f->sources.empty()) break;  // parameterless: exactly one instance
  }
}

double ApolloMiddleware::EstimateRuntimeUs(
    const ClientSession& session, const Fdq& f,
    std::unordered_set<uint64_t>& visiting) const {
  if (!visiting.insert(f.id).second) return 0.0;  // dependency loop
  const TemplateMeta* meta = templates_.Get(f.id);
  double own = (meta != nullptr && meta->mean_exec_us > 0)
                   ? meta->mean_exec_us.load()
                   : kDefaultRuntimeUs;
  const util::SimTime now = loop_->now();
  double dep_max = 0.0;
  for (uint64_t dep : f.deps) {
    // A dependency with a fresh result contributes nothing: its output is
    // already available to forward.
    auto it = session.recent.find(dep);
    if (it != session.recent.end() && it->second.result != nullptr &&
        it->second.time + config_.recent_result_ttl >= now) {
      continue;
    }
    const Fdq* d = deps_.Get(dep);
    double est;
    if (d != nullptr && !d->invalid) {
      est = EstimateRuntimeUs(session, *d, visiting);
    } else {
      const TemplateMeta* dm = templates_.Get(dep);
      est = (dm != nullptr && dm->mean_exec_us > 0) ? dm->mean_exec_us.load()
                                                    : kDefaultRuntimeUs;
    }
    dep_max = std::max(dep_max, est);
  }
  visiting.erase(f.id);
  return own + dep_max;
}

void ApolloMiddleware::CollectReadTables(
    const Fdq& f, std::unordered_set<std::string>* tables) const {
  std::vector<uint64_t> frontier = {f.id};
  std::unordered_set<uint64_t> visited;
  while (!frontier.empty()) {
    uint64_t id = frontier.back();
    frontier.pop_back();
    if (!visited.insert(id).second) continue;
    const TemplateMeta* meta = templates_.Get(id);
    if (meta != nullptr) {
      for (const auto& t : meta->tables_read) tables->insert(t);
    }
    const Fdq* node = deps_.Get(id);
    if (node != nullptr) {
      for (uint64_t dep : node->deps) frontier.push_back(dep);
    }
  }
}

bool ApolloMiddleware::FreshnessAllows(ClientSession& session, const Fdq& f,
                                       uint64_t trigger) {
  std::unordered_set<uint64_t> visiting;
  double est_us = EstimateRuntimeUs(session, f, visiting);
  const TransitionGraph& graph = session.stream.GraphCovering(
      static_cast<util::SimDuration>(est_us));

  std::unordered_set<std::string> read_tables;
  CollectReadTables(f, &read_tables);

  double invalidation_mass = graph.SuccessorProbabilityMass(
      trigger, [&](uint64_t succ) {
        const TemplateMeta* meta = templates_.Get(succ);
        if (meta == nullptr || meta->read_only) return false;
        for (const auto& t : meta->tables_written) {
          if (read_tables.count(t) > 0) return true;
        }
        return false;
      });
  // < tau, matching Successors' >= tau: invalidation mass at exactly tau
  // is significant and vetoes the prediction.
  return invalidation_mass < config_.tau;
}

void ApolloMiddleware::ReloadAdqs(ClientSession& session,
                                  const CompletedQuery& write) {
  const TemplateMeta* wmeta = write.meta;
  if (wmeta == nullptr) return;
  const uint64_t total = std::max<uint64_t>(1, templates_.total_observations());

  for (const Fdq* f : deps_.Adqs()) {
    const TemplateMeta* meta = templates_.Get(f->id);
    if (meta == nullptr) continue;

    // Only hierarchies whose data was just written need reloading.
    std::unordered_set<std::string> read_tables;
    CollectReadTables(*f, &read_tables);
    bool affected = false;
    for (const auto& t : wmeta->tables_written) {
      if (read_tables.count(t) > 0) {
        affected = true;
        break;
      }
    }
    if (!affected) continue;

    // cost(Qt) = P(Qt) * mean_rt(Qt)  [Section 3.4.2], in probability x ms.
    double p = static_cast<double>(meta->observations) /
               static_cast<double>(total);
    double cost = p * meta->mean_exec_us / 1000.0;
    if (cost < config_.alpha) continue;

    c_.adq_reloads->Inc();
    Trace(obs::TraceEventType::kAdqReload, session, f->id,
          obs::SkipReason::kNone, /*aux=*/write.template_id);
    // Execute the hierarchy's roots; pipelining fills in dependents as
    // their inputs land.
    std::vector<const Fdq*> frontier = {f};
    std::unordered_set<uint64_t> visited;
    while (!frontier.empty()) {
      const Fdq* node = frontier.back();
      frontier.pop_back();
      if (!visited.insert(node->id).second) continue;
      if (node->deps.empty()) {
        TryPredict(session, const_cast<Fdq*>(node), write.template_id,
                   /*depth=*/0);
        continue;
      }
      bool all_known = true;
      for (uint64_t dep : node->deps) {
        const Fdq* d = deps_.Get(dep);
        if (d == nullptr) {
          all_known = false;
          continue;
        }
        frontier.push_back(d);
      }
      if (!all_known && DepsFresh(session, *node)) {
        // Cannot regenerate inputs, but recent results still instantiate it.
        TryPredict(session, const_cast<Fdq*>(node), write.template_id, 0);
      }
    }
  }
}

size_t ApolloMiddleware::LearningStateBytes() const {
  size_t total = mapper_.ApproximateBytes() + deps_.ApproximateBytes() +
                 templates_.ApproximateBytes();
  for (const auto& [_, session] : sessions_) {
    total += session->stream.ApproximateBytes();
    total += session->satisfied.size() * 64;
  }
  return total;
}

}  // namespace apollo::core
