// Middleware: the interface clients submit queries to.
//
// Three implementations reproduce the paper's experimental configurations:
//   - CachingMiddleware        : Memcached-style passive result cache
//   - ApolloMiddleware         : the paper's predictive framework
//   - fido::FidoMiddleware     : the Fido baseline prediction engine
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/result_set.h"
#include "util/result.h"

namespace apollo::core {

using ClientId = int;

/// Counters reported by the experiments (overheads, prediction activity).
/// Thin snapshot view over the registry-backed "mw*.*" counters (the
/// obs::MetricsRegistry is the source of truth; see
/// CachingMiddleware::stats).
struct MiddlewareStats {
  uint64_t queries = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t cache_hits = 0;    // client reads served from the cache
  uint64_t cache_misses = 0;  // client reads that went remote (or waited)
  uint64_t coalesced_waits = 0;  // client reads served by subscribing to an
                                 // in-flight execution (pub-sub, 3.3)
  uint64_t parse_errors = 0;

  // Prediction activity.
  uint64_t predictions_issued = 0;
  uint64_t predictions_skipped_cached = 0;
  uint64_t predictions_skipped_inflight = 0;
  uint64_t predictions_skipped_fresh = 0;  // freshness-model veto (3.4.1)
  uint64_t predictions_skipped_invalid = 0;
  uint64_t predictions_skipped_incomplete = 0;  // source row/column missing
  uint64_t adq_reloads = 0;

  // Degradation (shed-predictions-first while the WAN path is unhealthy).
  uint64_t shed_predictions = 0;  // predictive executions dropped
  uint64_t shed_adq_reloads = 0;  // ADQ reload passes skipped
  uint64_t subscriber_fallbacks = 0;  // client reads re-issued with their own
                                      // retry budget after an in-flight
                                      // leader died on a transport fault

  // Learning structures.
  uint64_t fdqs_discovered = 0;
  uint64_t fdqs_invalidated = 0;

  // Real (wall-clock) overhead instrumentation, paper Section 4.2.1.
  double find_fdq_wall_us = 0.0;
  uint64_t find_fdq_calls = 0;
  double construct_fdq_wall_us = 0.0;
  uint64_t construct_fdq_calls = 0;
};

class Middleware {
 public:
  using QueryCallback =
      std::function<void(util::Result<common::ResultSetPtr>)>;

  virtual ~Middleware() = default;

  /// Submits one SQL query on behalf of `client`. The callback fires in
  /// simulated time when the result is available at the client.
  virtual void SubmitQuery(ClientId client, const std::string& sql,
                           QueryCallback callback) = 0;

  virtual const MiddlewareStats& stats() const = 0;
  virtual std::string name() const = 0;

  /// Approximate bytes of learning state (overhead reporting); 0 for
  /// non-learning configurations.
  virtual size_t LearningStateBytes() const { return 0; }
};

}  // namespace apollo::core
