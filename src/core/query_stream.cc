#include "core/query_stream.h"

#include <algorithm>

namespace apollo::core {

QueryStream::QueryStream(const std::vector<util::SimDuration>& delta_ts,
                         size_t max_entries, size_t max_edges_per_graph)
    : max_entries_(max_entries) {
  std::vector<util::SimDuration> sorted = delta_ts;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.empty()) sorted.push_back(util::Seconds(15));
  for (auto dt : sorted) {
    graphs_.emplace_back(dt, TransitionGraph::kDefaultStripes,
                         max_edges_per_graph);
  }
  cursors_.assign(graphs_.size(), 0);
}

void QueryStream::SetPruneCounter(obs::Counter* counter) {
  for (auto& g : graphs_) g.SetPruneCounter(counter);
}

std::vector<TransitionGraph::State> QueryStream::ExportGraphState() const {
  std::vector<TransitionGraph::State> out;
  out.reserve(graphs_.size());
  for (const auto& g : graphs_) out.push_back(g.ExportState());
  return out;
}

util::Status QueryStream::ImportGraphState(
    const std::vector<TransitionGraph::State>& graphs) {
  if (graphs.size() != graphs_.size()) {
    return util::Status::InvalidArgument(
        "snapshot has " + std::to_string(graphs.size()) +
        " transition graphs, config expects " +
        std::to_string(graphs_.size()));
  }
  for (size_t i = 0; i < graphs.size(); ++i) {
    if (graphs[i].delta_t != graphs_[i].delta_t()) {
      return util::Status::InvalidArgument(
          "snapshot delta-t ladder differs from config at graph " +
          std::to_string(i));
    }
  }
  for (size_t i = 0; i < graphs.size(); ++i) {
    graphs_[i].ImportState(graphs[i]);
  }
  return util::Status::OK();
}

void QueryStream::Append(uint64_t qt, util::SimTime time) {
  entries_.push_back({qt, time});
}

void QueryStream::Process(util::SimTime now) {
  const uint64_t end = first_index_ + entries_.size();
  for (size_t g = 0; g < graphs_.size(); ++g) {
    TransitionGraph& graph = graphs_[g];
    const util::SimDuration dt = graph.delta_t();
    uint64_t& cursor = cursors_[g];
    if (cursor < first_index_) cursor = first_index_;
    while (cursor < end) {
      const StreamEntry& head = entries_[cursor - first_index_];
      if (head.time + dt > now) break;  // window still open
      graph.AddVertexObservation(head.qt);
      for (uint64_t j = cursor + 1; j < end; ++j) {
        const StreamEntry& next = entries_[j - first_index_];
        if (next.time > head.time + dt) break;
        graph.AddEdgeObservation(head.qt, next.qt);
      }
      ++cursor;
    }
  }
  Trim();
}

void QueryStream::Trim() {
  uint64_t min_cursor = first_index_ + entries_.size();
  for (uint64_t c : cursors_) min_cursor = std::min(min_cursor, c);
  // Drop fully-processed entries, but keep the stream bounded even if a
  // graph's window never closes (e.g. an idle tail).
  while (!entries_.empty() &&
         (first_index_ < min_cursor || entries_.size() > max_entries_)) {
    if (first_index_ >= min_cursor && entries_.size() <= max_entries_) break;
    entries_.pop_front();
    ++first_index_;
  }
}

const TransitionGraph& QueryStream::GraphCovering(
    util::SimDuration d) const {
  for (const auto& g : graphs_) {
    if (g.delta_t() > d) return g;
  }
  return graphs_.back();
}

std::vector<StreamEntry> QueryStream::EntriesWithin(
    util::SimTime now, util::SimDuration window) const {
  std::vector<StreamEntry> out;
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->time <= now - window) break;
    out.push_back(*it);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

size_t QueryStream::ApproximateBytes() const {
  size_t total = sizeof(*this) + entries_.size() * sizeof(StreamEntry);
  for (const auto& g : graphs_) total += g.ApproximateBytes();
  return total;
}

}  // namespace apollo::core
