// TemplateRegistry: system-wide catalog of query templates.
//
// Templates are keyed by the 64-bit fingerprint of their
// constant-independent parse tree (paper Section 3). The registry also
// accumulates per-template runtime statistics: execution counts (for the
// ADQ cost model's P(Qt)) and mean observed execution time (for the
// freshness model's runtime estimates).
//
// Thread safety: the intern map is guarded by a mutex; TemplateMeta
// records are allocated once and never freed, so returned pointers stay
// valid for the registry's lifetime. The statistics fields are atomics
// (reads via implicit conversion stay source-compatible with the plain
// fields); RecordExecution folds the running mean with a CAS loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sql/template.h"
#include "sql/template_cache.h"
#include "util/sim_time.h"

namespace apollo::core {

struct TemplateMeta {
  uint64_t id = 0;  // fingerprint
  std::string template_text;
  int num_placeholders = 0;
  bool read_only = false;
  std::vector<std::string> tables_read;
  std::vector<std::string> tables_written;
  /// Shared immutable template entry (set when interned through the
  /// admission cache); carries the parameterized statement the prepared
  /// execution path runs. May be null for templates interned from a plain
  /// TemplateInfo.
  sql::CachedTemplatePtr cached;

  // Runtime statistics.
  std::atomic<uint64_t> executions{0};   // completed remote executions
  std::atomic<double> mean_exec_us{0.0}; // mean observed DB round-trip time
  std::atomic<uint64_t> observations{0}; // times seen in any client stream

  /// Record one completed execution's response time (cumulative mean).
  /// The count is claimed with fetch_add, then the mean folds in via CAS;
  /// concurrent updates may fold in a slightly different order, which is
  /// acceptable for an estimate. Single-threaded, this computes exactly
  /// the sequential cumulative mean.
  void RecordExecution(util::SimDuration exec_time) {
    uint64_t n = executions.fetch_add(1, std::memory_order_relaxed) + 1;
    double sample = static_cast<double>(exec_time);
    double cur = mean_exec_us.load(std::memory_order_relaxed);
    double next;
    do {
      next = cur + (sample - cur) / static_cast<double>(n);
    } while (!mean_exec_us.compare_exchange_weak(cur, next,
                                                 std::memory_order_relaxed));
  }
};

class TemplateRegistry {
 public:
  /// Interns a template, creating the meta record on first sight.
  TemplateMeta* Intern(const sql::TemplateInfo& info);

  /// Interns an admitted query's template, additionally retaining the
  /// shared CachedTemplate (prepared statement) on the meta record.
  TemplateMeta* Intern(const sql::AdmittedQuery& adm);

  /// Lookup by fingerprint; nullptr if unknown.
  TemplateMeta* Get(uint64_t id);
  const TemplateMeta* Get(uint64_t id) const;

  /// Total stream observations across all templates (denominator for
  /// P(Qt) in the ADQ reload cost function).
  uint64_t total_observations() const {
    return total_observations_.load(std::memory_order_relaxed);
  }
  void BumpObservations(TemplateMeta* meta) {
    meta->observations.fetch_add(1, std::memory_order_relaxed);
    total_observations_.fetch_add(1, std::memory_order_relaxed);
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return templates_.size();
  }

  /// Approximate memory footprint of the registry (overhead reporting).
  size_t ApproximateBytes() const;

  // ---- Snapshot support (src/persist/, DESIGN.md §11) ----

  /// Canonical exported form (sorted by id). The cached prepared
  /// statement is admission-path state and does not travel: a restored
  /// meta re-acquires it the first time the template is admitted.
  struct ExportedTemplate {
    uint64_t id = 0;
    std::string template_text;
    int num_placeholders = 0;
    bool read_only = false;
    std::vector<std::string> tables_read;
    std::vector<std::string> tables_written;
    uint64_t executions = 0;
    double mean_exec_us = 0.0;
    uint64_t observations = 0;
  };
  struct State {
    std::vector<ExportedTemplate> templates;
  };

  State ExportState() const;

  /// Installs `state`'s templates, skipping ids already interned (live
  /// state wins). total_observations() absorbs the imported counts.
  void ImportState(const State& state);

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::unique_ptr<TemplateMeta>> templates_;
  std::atomic<uint64_t> total_observations_{0};
};

}  // namespace apollo::core
