// TemplateRegistry: system-wide catalog of query templates.
//
// Templates are keyed by the 64-bit fingerprint of their
// constant-independent parse tree (paper Section 3). The registry also
// accumulates per-template runtime statistics: execution counts (for the
// ADQ cost model's P(Qt)) and mean observed execution time (for the
// freshness model's runtime estimates).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sql/template.h"
#include "util/sim_time.h"

namespace apollo::core {

struct TemplateMeta {
  uint64_t id = 0;  // fingerprint
  std::string template_text;
  int num_placeholders = 0;
  bool read_only = false;
  std::vector<std::string> tables_read;
  std::vector<std::string> tables_written;

  // Runtime statistics.
  uint64_t executions = 0;           // completed remote executions
  double mean_exec_us = 0.0;         // mean observed DB round-trip time
  uint64_t observations = 0;         // times seen in any client stream

  /// Record one completed execution's response time (cumulative mean).
  void RecordExecution(util::SimDuration exec_time) {
    ++executions;
    mean_exec_us += (static_cast<double>(exec_time) - mean_exec_us) /
                    static_cast<double>(executions);
  }
};

class TemplateRegistry {
 public:
  /// Interns a template, creating the meta record on first sight.
  TemplateMeta* Intern(const sql::TemplateInfo& info);

  /// Lookup by fingerprint; nullptr if unknown.
  TemplateMeta* Get(uint64_t id);
  const TemplateMeta* Get(uint64_t id) const;

  /// Total stream observations across all templates (denominator for
  /// P(Qt) in the ADQ reload cost function).
  uint64_t total_observations() const { return total_observations_; }
  void BumpObservations(TemplateMeta* meta) {
    ++meta->observations;
    ++total_observations_;
  }

  size_t size() const { return templates_.size(); }

  /// Approximate memory footprint of the registry (overhead reporting).
  size_t ApproximateBytes() const;

 private:
  std::unordered_map<uint64_t, std::unique_ptr<TemplateMeta>> templates_;
  uint64_t total_observations_ = 0;
};

}  // namespace apollo::core
