// DependencyGraph: fully-defined query templates and their dependencies
// (paper Sections 2.4 and 3.1, Algorithms 3-4).
//
// An FDQ is a template whose every input parameter has a confirmed mapping
// from some prior template's output column. The graph stores one FDQ node
// per template system-wide ("only one instance of an FDQ hierarchy") and a
// reverse index dependency-template -> dependent FDQs so that
// mark_ready_dependency is a hash lookup. ADQs (always-defined queries,
// zero parameters or recursively ADQ-fed) are tagged for informed reload.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/param_mapper.h"

namespace apollo::core {

struct Fdq {
  uint64_t id = 0;                 // template fingerprint
  std::vector<SourceRef> sources;  // one per parameter position
  std::vector<uint64_t> deps;      // distinct source templates
  bool is_adq = false;
  bool invalid = false;  // a mapping was disproven; never execute again
};

class DependencyGraph {
 public:
  bool Contains(uint64_t id) const { return fdqs_.count(id) > 0; }

  Fdq* Get(uint64_t id);
  const Fdq* Get(uint64_t id) const;

  /// Registers a new FDQ with one chosen source per parameter. Re-derives
  /// ADQ tags for the new node and any nodes it completes. Returns the
  /// stored node; when `newly_adq` is given it receives the ids of *other*
  /// nodes the addition upgraded to ADQ (observability hook).
  Fdq* Add(uint64_t id, std::vector<SourceRef> sources,
           std::vector<uint64_t>* newly_adq = nullptr);

  /// FDQs that list `dep` among their dependencies (Algorithm 4's
  /// dependency-lists lookup).
  const std::vector<Fdq*>& DependentsOf(uint64_t dep) const;

  /// Marks an FDQ invalid (mapping disproof) — it stays registered so it
  /// is not re-discovered, but is never executed. ADQ status depends on
  /// every dependency being a valid ADQ, so the tag is revoked on the
  /// node's *transitive* dependents too; `adq_revoked` (optional) receives
  /// the ids whose tag was revoked, the node itself included.
  void Invalidate(uint64_t id, std::vector<uint64_t>* adq_revoked = nullptr);

  /// Removes an FDQ entirely so it can be re-discovered later from
  /// surviving parameter mappings (the disproven pair itself stays dead in
  /// the ParamMapper, so a rebuilt FDQ uses different sources). Like
  /// Invalidate, ADQ tags are revoked transitively on dependents.
  void Remove(uint64_t id, std::vector<uint64_t>* adq_revoked = nullptr);

  /// All valid ADQ ids (for informed reload).
  std::vector<const Fdq*> Adqs() const;

  size_t size() const { return fdqs_.size(); }
  size_t ApproximateBytes() const;

 private:
  /// Recomputes is_adq for `node` and propagates upgrades to dependents.
  void RefreshAdqTags(Fdq* node, std::vector<uint64_t>* newly_adq);
  /// Revokes is_adq on the transitive dependents of `id` (a node that is
  /// no longer a valid ADQ dependency).
  void RevokeDependentAdqTags(uint64_t id, std::vector<uint64_t>* revoked);
  bool ComputeIsAdq(const Fdq* node,
                    std::unordered_set<uint64_t>& visiting) const;

  std::unordered_map<uint64_t, std::unique_ptr<Fdq>> fdqs_;
  std::unordered_map<uint64_t, std::vector<Fdq*>> dependents_;
  std::vector<Fdq*> empty_;
};

}  // namespace apollo::core
