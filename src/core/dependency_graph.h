// DependencyGraph: fully-defined query templates and their dependencies
// (paper Sections 2.4 and 3.1, Algorithms 3-4).
//
// An FDQ is a template whose every input parameter has a confirmed mapping
// from some prior template's output column. The graph stores one FDQ node
// per template system-wide ("only one instance of an FDQ hierarchy") and a
// reverse index dependency-template -> dependent FDQs so that
// mark_ready_dependency is a hash lookup. ADQs (always-defined queries,
// zero parameters or recursively ADQ-fed) are tagged for informed reload.
//
// Thread safety: one internal mutex guards the node and reverse-index
// maps (graph mutations are rare relative to lookups, and the recursive
// ADQ tag propagation needs a consistent view anyway). Removed nodes are
// retired, not freed, so Fdq pointers handed out earlier stay valid for
// the graph's lifetime; `invalid` flags what must never execute again.
// Callers that hold Fdq* across a composite read-then-mutate sequence
// (discovery, disproof handling) must serialize those sequences
// externally — the concurrent runtime uses its engine lock (DESIGN.md
// Section 9).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/param_mapper.h"

namespace apollo::core {

struct Fdq {
  uint64_t id = 0;                 // template fingerprint
  std::vector<SourceRef> sources;  // one per parameter position
  std::vector<uint64_t> deps;      // distinct source templates
  bool is_adq = false;
  bool invalid = false;  // a mapping was disproven; never execute again
};

class DependencyGraph {
 public:
  bool Contains(uint64_t id) const;

  Fdq* Get(uint64_t id);
  const Fdq* Get(uint64_t id) const;

  /// Registers a new FDQ with one chosen source per parameter. Re-derives
  /// ADQ tags for the new node and any nodes it completes. Returns the
  /// stored node; when `newly_adq` is given it receives the ids of *other*
  /// nodes the addition upgraded to ADQ (observability hook). If `id` is
  /// already registered, the existing node is returned unchanged (two
  /// concurrent discoverers race benignly).
  Fdq* Add(uint64_t id, std::vector<SourceRef> sources,
           std::vector<uint64_t>* newly_adq = nullptr);

  /// FDQs that list `dep` among their dependencies (Algorithm 4's
  /// dependency-lists lookup). Returned by value: the underlying index
  /// may be rewritten by a concurrent Add/Remove.
  std::vector<Fdq*> DependentsOf(uint64_t dep) const;

  /// Marks an FDQ invalid (mapping disproof) — it stays registered so it
  /// is not re-discovered, but is never executed. ADQ status depends on
  /// every dependency being a valid ADQ, so the tag is revoked on the
  /// node's *transitive* dependents too; `adq_revoked` (optional) receives
  /// the ids whose tag was revoked, the node itself included.
  void Invalidate(uint64_t id, std::vector<uint64_t>* adq_revoked = nullptr);

  /// Removes an FDQ entirely so it can be re-discovered later from
  /// surviving parameter mappings (the disproven pair itself stays dead in
  /// the ParamMapper, so a rebuilt FDQ uses different sources). Like
  /// Invalidate, ADQ tags are revoked transitively on dependents. The node
  /// itself is retired (kept allocated, flagged invalid) so outstanding
  /// pointers never dangle.
  void Remove(uint64_t id, std::vector<uint64_t>* adq_revoked = nullptr);

  /// All valid ADQ ids (for informed reload).
  std::vector<const Fdq*> Adqs() const;

  size_t size() const;
  size_t ApproximateBytes() const;

  // ---- Snapshot support (src/persist/, DESIGN.md §11) ----

  /// Canonical exported form (sorted by id; deps are derivable from
  /// sources and rebuilt on import). Only live nodes travel: removed
  /// (retired) FDQs were erased precisely so they can be re-discovered,
  /// and the disproven pair stays dead in the ParamMapper's state.
  struct ExportedFdq {
    uint64_t id = 0;
    std::vector<SourceRef> sources;
    bool is_adq = false;
    bool invalid = false;
  };
  struct State {
    std::vector<ExportedFdq> fdqs;
  };

  State ExportState() const;

  /// Installs `state`'s nodes (skipping ids already registered) and
  /// rebuilds the reverse index. ADQ/invalid tags are restored
  /// bit-faithfully rather than recomputed, so a restored graph makes the
  /// same reload decisions the live one would have.
  void ImportState(const State& state);

 private:
  // Unlocked implementations; callers hold mu_.
  Fdq* GetLocked(uint64_t id) const;
  const std::vector<Fdq*>& DependentsOfLocked(uint64_t dep) const;
  /// Recomputes is_adq for `node` and propagates upgrades to dependents.
  void RefreshAdqTags(Fdq* node, std::vector<uint64_t>* newly_adq);
  /// Revokes is_adq on the transitive dependents of `id` (a node that is
  /// no longer a valid ADQ dependency).
  void RevokeDependentAdqTags(uint64_t id, std::vector<uint64_t>* revoked);
  bool ComputeIsAdq(const Fdq* node,
                    std::unordered_set<uint64_t>& visiting) const;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::unique_ptr<Fdq>> fdqs_;
  std::unordered_map<uint64_t, std::vector<Fdq*>> dependents_;
  /// Removed nodes parked here so Fdq* stays valid (disproofs are rare;
  /// the retirement list is bounded by their count).
  std::vector<std::unique_ptr<Fdq>> retired_;
  std::vector<Fdq*> empty_;
};

}  // namespace apollo::core
