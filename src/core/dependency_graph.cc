#include "core/dependency_graph.h"

#include <algorithm>

namespace apollo::core {

bool DependencyGraph::Contains(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return fdqs_.count(id) > 0;
}

Fdq* DependencyGraph::GetLocked(uint64_t id) const {
  auto it = fdqs_.find(id);
  return it == fdqs_.end() ? nullptr : it->second.get();
}

Fdq* DependencyGraph::Get(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetLocked(id);
}

const Fdq* DependencyGraph::Get(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return GetLocked(id);
}

Fdq* DependencyGraph::Add(uint64_t id, std::vector<SourceRef> sources,
                          std::vector<uint64_t>* newly_adq) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Fdq* existing = GetLocked(id); existing != nullptr) return existing;
  auto node = std::make_unique<Fdq>();
  node->id = id;
  node->sources = std::move(sources);
  for (const auto& s : node->sources) {
    if (std::find(node->deps.begin(), node->deps.end(), s.src) ==
        node->deps.end()) {
      node->deps.push_back(s.src);
    }
  }
  Fdq* out = node.get();
  fdqs_[id] = std::move(node);
  for (uint64_t dep : out->deps) dependents_[dep].push_back(out);
  RefreshAdqTags(out, newly_adq);
  return out;
}

const std::vector<Fdq*>& DependencyGraph::DependentsOfLocked(
    uint64_t dep) const {
  auto it = dependents_.find(dep);
  return it == dependents_.end() ? empty_ : it->second;
}

std::vector<Fdq*> DependencyGraph::DependentsOf(uint64_t dep) const {
  std::lock_guard<std::mutex> lock(mu_);
  return DependentsOfLocked(dep);
}

void DependencyGraph::RevokeDependentAdqTags(
    uint64_t id, std::vector<uint64_t>* revoked) {
  // An ADQ needs *every* dependency to be a valid ADQ, so losing one
  // cascades: revoke the tag on direct dependents, then on their
  // dependents, transitively.
  std::vector<uint64_t> frontier = {id};
  while (!frontier.empty()) {
    uint64_t cur = frontier.back();
    frontier.pop_back();
    for (Fdq* dep : DependentsOfLocked(cur)) {
      if (!dep->is_adq) continue;  // subtree already untagged
      dep->is_adq = false;
      if (revoked != nullptr) revoked->push_back(dep->id);
      frontier.push_back(dep->id);
    }
  }
}

void DependencyGraph::Invalidate(uint64_t id,
                                 std::vector<uint64_t>* adq_revoked) {
  std::lock_guard<std::mutex> lock(mu_);
  Fdq* f = GetLocked(id);
  if (f == nullptr) return;
  f->invalid = true;
  if (f->is_adq) {
    f->is_adq = false;
    if (adq_revoked != nullptr) adq_revoked->push_back(id);
  }
  RevokeDependentAdqTags(id, adq_revoked);
}

void DependencyGraph::Remove(uint64_t id,
                             std::vector<uint64_t>* adq_revoked) {
  std::lock_guard<std::mutex> lock(mu_);
  auto fit = fdqs_.find(id);
  if (fit == fdqs_.end()) return;
  Fdq* f = fit->second.get();
  for (uint64_t dep : f->deps) {
    auto it = dependents_.find(dep);
    if (it == dependents_.end()) continue;
    auto& vec = it->second;
    vec.erase(std::remove(vec.begin(), vec.end(), f), vec.end());
    if (vec.empty()) dependents_.erase(it);
  }
  if (f->is_adq && adq_revoked != nullptr) adq_revoked->push_back(id);
  // Dependents of the removed node keep their (now dangling-by-id)
  // dependency; they simply never fire through it until it is
  // re-discovered, and their ADQ tags — transitively — must be revoked.
  RevokeDependentAdqTags(id, adq_revoked);
  // Retire rather than free: outstanding Fdq* stay valid, and the invalid
  // flag keeps the node from ever executing.
  f->is_adq = false;
  f->invalid = true;
  retired_.push_back(std::move(fit->second));
  fdqs_.erase(fit);
}

bool DependencyGraph::ComputeIsAdq(
    const Fdq* node, std::unordered_set<uint64_t>& visiting) const {
  if (node->invalid) return false;
  if (node->deps.empty()) return true;  // no parameters at all
  // Dependency loops are treated as plain dependency queries (paper
  // Section 3.1), so a cycle member is not an ADQ.
  if (!visiting.insert(node->id).second) return false;
  bool all_adq = true;
  for (uint64_t dep : node->deps) {
    const Fdq* d = GetLocked(dep);
    if (d == nullptr || !ComputeIsAdq(d, visiting)) {
      all_adq = false;
      break;
    }
  }
  visiting.erase(node->id);
  return all_adq;
}

void DependencyGraph::RefreshAdqTags(Fdq* node,
                                     std::vector<uint64_t>* newly_adq) {
  std::unordered_set<uint64_t> visiting;
  node->is_adq = ComputeIsAdq(node, visiting);
  if (!node->is_adq) return;
  // A new ADQ may complete dependents into ADQs, transitively.
  std::vector<Fdq*> frontier = {node};
  while (!frontier.empty()) {
    Fdq* cur = frontier.back();
    frontier.pop_back();
    for (Fdq* dep : DependentsOfLocked(cur->id)) {
      if (dep->is_adq || dep->invalid) continue;
      std::unordered_set<uint64_t> v;
      if (ComputeIsAdq(dep, v)) {
        dep->is_adq = true;
        if (newly_adq != nullptr) newly_adq->push_back(dep->id);
        frontier.push_back(dep);
      }
    }
  }
}

std::vector<const Fdq*> DependencyGraph::Adqs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Fdq*> out;
  for (const auto& [_, f] : fdqs_) {
    if (f->is_adq && !f->invalid) out.push_back(f.get());
  }
  return out;
}

DependencyGraph::State DependencyGraph::ExportState() const {
  State st;
  std::lock_guard<std::mutex> lock(mu_);
  st.fdqs.reserve(fdqs_.size());
  for (const auto& [id, f] : fdqs_) {
    ExportedFdq ef;
    ef.id = id;
    ef.sources = f->sources;
    ef.is_adq = f->is_adq;
    ef.invalid = f->invalid;
    st.fdqs.push_back(std::move(ef));
  }
  std::sort(st.fdqs.begin(), st.fdqs.end(),
            [](const ExportedFdq& a, const ExportedFdq& b) {
              return a.id < b.id;
            });
  return st;
}

void DependencyGraph::ImportState(const State& state) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const ExportedFdq& ef : state.fdqs) {
    if (GetLocked(ef.id) != nullptr) continue;  // live state wins
    auto node = std::make_unique<Fdq>();
    node->id = ef.id;
    node->sources = ef.sources;
    for (const auto& s : node->sources) {
      if (std::find(node->deps.begin(), node->deps.end(), s.src) ==
          node->deps.end()) {
        node->deps.push_back(s.src);
      }
    }
    node->is_adq = ef.is_adq;
    node->invalid = ef.invalid;
    Fdq* out = node.get();
    fdqs_[ef.id] = std::move(node);
    for (uint64_t dep : out->deps) dependents_[dep].push_back(out);
  }
}

size_t DependencyGraph::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fdqs_.size();
}

size_t DependencyGraph::ApproximateBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = sizeof(*this);
  for (const auto& [_, f] : fdqs_) {
    total += sizeof(Fdq) + f->sources.size() * sizeof(SourceRef) +
             f->deps.size() * 8;
  }
  for (const auto& [_, v] : dependents_) total += 32 + v.size() * 8;
  return total;
}

}  // namespace apollo::core
