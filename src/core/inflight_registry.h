// InflightRegistry: the publish-subscribe single-flight mechanism of paper
// Section 3.3. At most one copy of a read query executes at a time; other
// clients (and predictive pipelines) subscribe and receive the leader's
// result when it lands.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/version_vector.h"
#include "common/result_set.h"
#include "util/result.h"

namespace apollo::core {

class InflightRegistry {
 public:
  using Waiter =
      std::function<void(const util::Result<common::ResultSetPtr>&,
                         const cache::VersionVector&)>;

  /// If `key` is already executing, enqueues `waiter` and returns false.
  /// Otherwise registers the key as in flight (caller becomes the leader,
  /// responsible for calling Complete) and returns true.
  bool BeginOrSubscribe(const std::string& key, Waiter waiter);

  /// True if `key` is currently in flight.
  bool InFlight(const std::string& key) const {
    return inflight_.count(key) > 0;
  }

  /// Publishes the leader's outcome to all subscribers and clears the key.
  void Complete(const std::string& key,
                const util::Result<common::ResultSetPtr>& result,
                const cache::VersionVector& stamp);

  uint64_t coalesced() const { return coalesced_; }
  size_t num_inflight() const { return inflight_.size(); }

 private:
  std::unordered_map<std::string, std::vector<Waiter>> inflight_;
  uint64_t coalesced_ = 0;
};

}  // namespace apollo::core
