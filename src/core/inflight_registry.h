// InflightRegistry: the publish-subscribe single-flight mechanism of paper
// Section 3.3. At most one copy of a read query executes at a time; other
// clients (and predictive pipelines) subscribe and receive the leader's
// result when it lands.
//
// Thread safety: leadership election and subscription are atomic under an
// internal mutex, so of N racing submitters exactly one becomes the
// leader. Complete() moves the waiter list out under the lock and invokes
// the waiters *outside* it — waiters may re-enter the registry (e.g. a
// subscriber fallback re-issuing the query) without deadlocking, and a
// slow waiter never blocks other keys.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/version_vector.h"
#include "common/result_set.h"
#include "util/result.h"

namespace apollo::core {

class InflightRegistry {
 public:
  using Waiter =
      std::function<void(const util::Result<common::ResultSetPtr>&,
                         const cache::VersionVector&)>;

  /// If `key` is already executing, enqueues `waiter` and returns false.
  /// Otherwise registers the key as in flight (caller becomes the leader,
  /// responsible for calling Complete) and returns true.
  bool BeginOrSubscribe(const std::string& key, Waiter waiter);

  /// True if `key` is currently in flight.
  bool InFlight(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    return inflight_.count(key) > 0;
  }

  /// Publishes the leader's outcome to all subscribers and clears the key.
  /// Waiters run on the calling thread, outside the registry lock, in
  /// subscription order.
  void Complete(const std::string& key,
                const util::Result<common::ResultSetPtr>& result,
                const cache::VersionVector& stamp);

  uint64_t coalesced() const {
    return coalesced_.load(std::memory_order_relaxed);
  }
  size_t num_inflight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return inflight_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::vector<Waiter>> inflight_;
  std::atomic<uint64_t> coalesced_{0};
};

}  // namespace apollo::core
