// QueryStream: per-client queue of executed query templates, plus the
// Algorithm 1 scanner that folds it into the client's transition graphs.
//
// The paper maintains multiple independent transition graphs per client
// with different delta-t windows (Section 3.4.1); each graph keeps its own
// scan cursor into the shared stream. A window for entry i closes once
// simulated time passes t_i + delta_t; the scanner then adds wv(Qt_i) and
// an edge observation to every entry within the window.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/transition_graph.h"
#include "util/sim_time.h"
#include "util/status.h"

namespace apollo::core {

struct StreamEntry {
  uint64_t qt;  // template fingerprint
  util::SimTime time;
};

class QueryStream {
 public:
  /// `max_edges_per_graph` bounds each transition graph's edge count via
  /// evidence-weighted pruning (0 = unbounded).
  QueryStream(const std::vector<util::SimDuration>& delta_ts,
              size_t max_entries, size_t max_edges_per_graph = 0);

  /// Appends an executed template. Times must be non-decreasing.
  void Append(uint64_t qt, util::SimTime time);

  /// Runs Algorithm 1 over all windows that have closed by `now`.
  void Process(util::SimTime now);

  size_t num_graphs() const { return graphs_.size(); }
  const TransitionGraph& graph(size_t i) const { return graphs_[i]; }

  /// The graph with the largest delta-t: the primary relationship model.
  const TransitionGraph& primary() const { return graphs_.back(); }

  /// The graph with the smallest delta-t strictly greater than `d`
  /// (falls back to the largest window). Freshness-model lookup.
  const TransitionGraph& GraphCovering(util::SimDuration d) const;

  /// Template ids of entries with time in (now - window, now], most recent
  /// last. Used to find the prior templates of a just-executed query.
  std::vector<StreamEntry> EntriesWithin(util::SimTime now,
                                         util::SimDuration window) const;

  size_t size() const { return entries_.size(); }

  size_t ApproximateBytes() const;

  /// Installs `counter` as the pruned-edge counter on every graph.
  void SetPruneCounter(obs::Counter* counter);

  // ---- Snapshot support (src/persist/, DESIGN.md §11) ----

  /// Per-graph canonical state, ascending delta-t. Stream entries and
  /// scan cursors are deliberately NOT part of a snapshot: they are
  /// transient scan state tied to the old process's clock, and dropping
  /// them loses at most one open window of unprocessed observations while
  /// keeping every closed-window count.
  std::vector<TransitionGraph::State> ExportGraphState() const;

  /// Folds exported graph state into this stream's (typically fresh)
  /// graphs. Fails without side effects unless `graphs` matches this
  /// stream's delta-t ladder exactly (a config change across restart
  /// makes old evidence incomparable).
  util::Status ImportGraphState(
      const std::vector<TransitionGraph::State>& graphs);

 private:
  void Trim();

  std::deque<StreamEntry> entries_;
  uint64_t first_index_ = 0;  // absolute index of entries_.front()
  std::vector<TransitionGraph> graphs_;  // ascending delta_t
  std::vector<uint64_t> cursors_;        // absolute scan cursor per graph
  size_t max_entries_;
};

}  // namespace apollo::core
