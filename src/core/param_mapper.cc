#include "core/param_mapper.h"

#include "util/hash.h"

namespace apollo::core {

uint64_t ParamMapper::PairKey(uint64_t src, uint64_t dst) {
  return util::HashCombine(src, dst);
}

bool ParamMapper::ObservePair(uint64_t src,
                              const common::ResultSet& src_result,
                              uint64_t dst,
                              const std::vector<common::Value>& dst_params) {
  if (dst_params.empty()) return false;
  if (src_result.empty() || src_result.num_columns() == 0) return false;
  if (src == dst) return false;

  // Bitmask of columns whose value set contains each parameter. Computed
  // before any lock: the result-set scan is the expensive part.
  const size_t ncols = std::min<size_t>(src_result.num_columns(), 64);
  std::vector<uint64_t> col_masks(dst_params.size(), 0);
  for (size_t p = 0; p < dst_params.size(); ++p) {
    const auto& param = dst_params[p];
    uint64_t mask = 0;
    for (size_t c = 0; c < ncols; ++c) {
      for (const auto& row : src_result.rows()) {
        if (row[c] == param) {
          mask |= (1ull << c);
          break;
        }
      }
    }
    col_masks[p] = mask;
  }

  {
    std::lock_guard<std::mutex> lock(srcs_mu_);
    srcs_of_[dst].insert(src);
  }

  uint64_t key = PairKey(src, dst);
  Stripe& stripe = StripeForKey(key);
  std::vector<std::pair<uint64_t, uint64_t>> evicted;
  bool disproven = false;
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto [it, inserted] = stripe.pairs.try_emplace(key);
    PairState& st = it->second;
    st.tick = ++stripe.tick;
    if (inserted) {
      st.src = src;
      st.dst = dst;
      if (stripe.pair_cap != 0 && stripe.pairs.size() > stripe.pair_cap) {
        PruneStripeLocked(stripe, key, &evicted);
      }
    }

    disproven = [&]() {
      if (!inserted && st.masks.size() != col_masks.size()) {
        // Parameter arity changed (should not happen for a fixed
        // template); treat as disproof.
        const bool was_confirmed = Confirmed(st);
        st.invalidated = true;
        return was_confirmed;
      }

      if (st.invalidated) return false;

      if (!st.confirmed) {
        // Verification window: strict intersection.
        if (inserted || st.observations == 0) {
          st.masks = col_masks;
          st.observations = 1;
        } else {
          for (size_t p = 0; p < st.masks.size(); ++p) {
            st.masks[p] &= col_masks[p];
          }
          ++st.observations;
        }
        if (!HasAnyMask(st)) {
          // The window died (often a cross-transaction interleaving);
          // restart it from the current observation.
          st.masks = col_masks;
          st.observations = HasAnyMask(st) ? 1 : 0;
          return false;
        }
        if (st.observations >= verification_period_) st.confirmed = true;
        return false;
      }

      // Confirmed: masks are frozen; track supports vs. violations.
      bool consistent = true;
      for (size_t p = 0; p < st.masks.size(); ++p) {
        if (st.masks[p] != 0 && (st.masks[p] & col_masks[p]) == 0) {
          consistent = false;
          break;
        }
      }
      if (consistent) {
        ++st.supports;
        return false;
      }
      ++st.violations;
      if (st.violations >= kMinViolations && st.violations > st.supports) {
        st.invalidated = true;
        return true;
      }
      return false;
    }();
  }
  if (!evicted.empty()) CleanReverseIndex(evicted);
  return disproven;
}

void ParamMapper::PruneStripeLocked(
    Stripe& s, uint64_t keep_key,
    std::vector<std::pair<uint64_t, uint64_t>>* evicted) {
  const size_t target = s.pair_cap - std::max<size_t>(1, s.pair_cap / 8);
  if (s.pairs.size() <= target) return;
  size_t evict = s.pairs.size() - target;

  struct Victim {
    uint32_t klass;     // 0 invalidated, 1 unconfirmed, 2 confirmed
    uint64_t evidence;  // observations + supports
    uint64_t tick;
    uint64_t key;
    uint64_t src;
    uint64_t dst;
  };
  std::vector<Victim> all;
  all.reserve(s.pairs.size());
  for (const auto& [key, st] : s.pairs) {
    if (key == keep_key) continue;  // never evict the pair just observed
    uint32_t klass = st.invalidated ? 0u : (st.confirmed ? 2u : 1u);
    all.push_back(Victim{klass,
                         static_cast<uint64_t>(st.observations) + st.supports,
                         st.tick, key, st.src, st.dst});
  }
  if (evict > all.size()) evict = all.size();
  // Evidence-weighted LRU: dead pairs first, then thin evidence, oldest
  // touch breaking ties; (src, dst) as a final deterministic tie-break.
  auto weaker = [](const Victim& a, const Victim& b) {
    if (a.klass != b.klass) return a.klass < b.klass;
    if (a.evidence != b.evidence) return a.evidence < b.evidence;
    if (a.tick != b.tick) return a.tick < b.tick;
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  };
  std::nth_element(all.begin(), all.begin() + evict - 1, all.end(), weaker);
  std::sort(all.begin(), all.begin() + evict, weaker);
  for (size_t i = 0; i < evict; ++i) {
    s.pairs.erase(all[i].key);
    ++s.pruned;
    evicted->emplace_back(all[i].src, all[i].dst);
  }
  if (s.prune_counter != nullptr) s.prune_counter->Inc(evict);
}

void ParamMapper::CleanReverseIndex(
    const std::vector<std::pair<uint64_t, uint64_t>>& evicted) {
  std::lock_guard<std::mutex> lock(srcs_mu_);
  for (const auto& [src, dst] : evicted) {
    auto it = srcs_of_.find(dst);
    if (it == srcs_of_.end()) continue;
    it->second.erase(src);
    if (it->second.empty()) srcs_of_.erase(it);
  }
}

ParamMapper::ParamSources ParamMapper::GetSources(uint64_t dst,
                                                  int num_params) const {
  ParamSources out;
  out.per_param.resize(static_cast<size_t>(num_params));
  std::vector<uint64_t> srcs;
  {
    std::lock_guard<std::mutex> lock(srcs_mu_);
    auto sit = srcs_of_.find(dst);
    if (sit == srcs_of_.end()) {
      out.complete = num_params == 0;
      return out;
    }
    srcs.assign(sit->second.begin(), sit->second.end());
  }
  for (uint64_t src : srcs) {
    uint64_t key = PairKey(src, dst);
    const Stripe& stripe = StripeForKey(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto pit = stripe.pairs.find(key);
    if (pit == stripe.pairs.end() || !Confirmed(pit->second)) continue;
    const PairState& st = pit->second;
    for (size_t p = 0;
         p < st.masks.size() && p < out.per_param.size(); ++p) {
      if (st.masks[p] == 0) continue;
      // Lowest surviving column is the canonical mapping.
      int col = __builtin_ctzll(st.masks[p]);
      out.per_param[p].push_back(SourceRef{src, col});
    }
  }
  out.complete = true;
  for (const auto& srcs_for_param : out.per_param) {
    if (srcs_for_param.empty()) {
      out.complete = false;
      break;
    }
  }
  return out;
}

bool ParamMapper::PairConfirmed(uint64_t src, uint64_t dst) const {
  uint64_t key = PairKey(src, dst);
  const Stripe& stripe = StripeForKey(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.pairs.find(key);
  return it != stripe.pairs.end() && Confirmed(it->second);
}

size_t ParamMapper::num_pairs() const {
  size_t n = 0;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lock(s->mu);
    n += s->pairs.size();
  }
  return n;
}

uint64_t ParamMapper::pruned_pairs() const {
  uint64_t n = 0;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lock(s->mu);
    n += s->pruned;
  }
  return n;
}

void ParamMapper::SetPruneCounter(obs::Counter* counter) {
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lock(s->mu);
    s->prune_counter = counter;
  }
}

ParamMapper::State ParamMapper::ExportState() const {
  State st;
  st.verification_period = verification_period_;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lock(s->mu);
    for (const auto& [_, ps] : s->pairs) {
      ExportedPair ep;
      ep.src = ps.src;
      ep.dst = ps.dst;
      ep.observations = ps.observations;
      ep.masks = ps.masks;
      ep.confirmed = ps.confirmed;
      ep.invalidated = ps.invalidated;
      ep.supports = ps.supports;
      ep.violations = ps.violations;
      st.pairs.push_back(std::move(ep));
    }
  }
  std::sort(st.pairs.begin(), st.pairs.end(),
            [](const ExportedPair& a, const ExportedPair& b) {
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });
  return st;
}

void ParamMapper::ImportState(const State& state) {
  for (const ExportedPair& ep : state.pairs) {
    uint64_t key = PairKey(ep.src, ep.dst);
    Stripe& stripe = StripeForKey(key);
    {
      std::lock_guard<std::mutex> lock(stripe.mu);
      auto [it, inserted] = stripe.pairs.try_emplace(key);
      if (!inserted) continue;  // live observation wins over the snapshot
      PairState& ps = it->second;
      ps.src = ep.src;
      ps.dst = ep.dst;
      ps.observations = ep.observations;
      ps.masks = ep.masks;
      ps.confirmed = ep.confirmed;
      ps.invalidated = ep.invalidated;
      ps.supports = ep.supports;
      ps.violations = ep.violations;
      ps.tick = ++stripe.tick;
      // The cap applies to restored state too, but import never evicts
      // live pairs around it: oversize snapshots trim on the next
      // ObservePair insertion.
    }
    std::lock_guard<std::mutex> lock(srcs_mu_);
    srcs_of_[ep.dst].insert(ep.src);
  }
}

size_t ParamMapper::ApproximateBytes() const {
  size_t total = sizeof(*this);
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lock(s->mu);
    for (const auto& [_, st] : s->pairs) {
      total += 48 + st.masks.size() * 8;
    }
  }
  std::lock_guard<std::mutex> lock(srcs_mu_);
  for (const auto& [_, srcs] : srcs_of_) total += 32 + srcs.size() * 16;
  return total;
}

}  // namespace apollo::core
