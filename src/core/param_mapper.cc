#include "core/param_mapper.h"

#include "util/hash.h"

namespace apollo::core {

uint64_t ParamMapper::PairKey(uint64_t src, uint64_t dst) {
  return util::HashCombine(src, dst);
}

bool ParamMapper::ObservePair(uint64_t src,
                              const common::ResultSet& src_result,
                              uint64_t dst,
                              const std::vector<common::Value>& dst_params) {
  if (dst_params.empty()) return false;
  if (src_result.empty() || src_result.num_columns() == 0) return false;
  if (src == dst) return false;

  // Bitmask of columns whose value set contains each parameter. Computed
  // before any lock: the result-set scan is the expensive part.
  const size_t ncols = std::min<size_t>(src_result.num_columns(), 64);
  std::vector<uint64_t> col_masks(dst_params.size(), 0);
  for (size_t p = 0; p < dst_params.size(); ++p) {
    const auto& param = dst_params[p];
    uint64_t mask = 0;
    for (size_t c = 0; c < ncols; ++c) {
      for (const auto& row : src_result.rows()) {
        if (row[c] == param) {
          mask |= (1ull << c);
          break;
        }
      }
    }
    col_masks[p] = mask;
  }

  {
    std::lock_guard<std::mutex> lock(srcs_mu_);
    srcs_of_[dst].insert(src);
  }

  uint64_t key = PairKey(src, dst);
  Stripe& stripe = StripeForKey(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto [it, inserted] = stripe.pairs.try_emplace(key);
  PairState& st = it->second;

  if (!inserted && st.masks.size() != col_masks.size()) {
    // Parameter arity changed (should not happen for a fixed template);
    // treat as disproof.
    const bool was_confirmed = Confirmed(st);
    st.invalidated = true;
    return was_confirmed;
  }

  if (st.invalidated) return false;

  if (!st.confirmed) {
    // Verification window: strict intersection.
    if (inserted || st.observations == 0) {
      st.masks = col_masks;
      st.observations = 1;
    } else {
      for (size_t p = 0; p < st.masks.size(); ++p) {
        st.masks[p] &= col_masks[p];
      }
      ++st.observations;
    }
    if (!HasAnyMask(st)) {
      // The window died (often a cross-transaction interleaving); restart
      // it from the current observation.
      st.masks = col_masks;
      st.observations = HasAnyMask(st) ? 1 : 0;
      return false;
    }
    if (st.observations >= verification_period_) st.confirmed = true;
    return false;
  }

  // Confirmed: masks are frozen; track supports vs. violations.
  bool consistent = true;
  for (size_t p = 0; p < st.masks.size(); ++p) {
    if (st.masks[p] != 0 && (st.masks[p] & col_masks[p]) == 0) {
      consistent = false;
      break;
    }
  }
  if (consistent) {
    ++st.supports;
    return false;
  }
  ++st.violations;
  if (st.violations >= kMinViolations && st.violations > st.supports) {
    st.invalidated = true;
    return true;
  }
  return false;
}

ParamMapper::ParamSources ParamMapper::GetSources(uint64_t dst,
                                                  int num_params) const {
  ParamSources out;
  out.per_param.resize(static_cast<size_t>(num_params));
  std::vector<uint64_t> srcs;
  {
    std::lock_guard<std::mutex> lock(srcs_mu_);
    auto sit = srcs_of_.find(dst);
    if (sit == srcs_of_.end()) {
      out.complete = num_params == 0;
      return out;
    }
    srcs.assign(sit->second.begin(), sit->second.end());
  }
  for (uint64_t src : srcs) {
    uint64_t key = PairKey(src, dst);
    const Stripe& stripe = StripeForKey(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto pit = stripe.pairs.find(key);
    if (pit == stripe.pairs.end() || !Confirmed(pit->second)) continue;
    const PairState& st = pit->second;
    for (size_t p = 0;
         p < st.masks.size() && p < out.per_param.size(); ++p) {
      if (st.masks[p] == 0) continue;
      // Lowest surviving column is the canonical mapping.
      int col = __builtin_ctzll(st.masks[p]);
      out.per_param[p].push_back(SourceRef{src, col});
    }
  }
  out.complete = true;
  for (const auto& srcs_for_param : out.per_param) {
    if (srcs_for_param.empty()) {
      out.complete = false;
      break;
    }
  }
  return out;
}

bool ParamMapper::PairConfirmed(uint64_t src, uint64_t dst) const {
  uint64_t key = PairKey(src, dst);
  const Stripe& stripe = StripeForKey(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.pairs.find(key);
  return it != stripe.pairs.end() && Confirmed(it->second);
}

size_t ParamMapper::num_pairs() const {
  size_t n = 0;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lock(s->mu);
    n += s->pairs.size();
  }
  return n;
}

size_t ParamMapper::ApproximateBytes() const {
  size_t total = sizeof(*this);
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lock(s->mu);
    for (const auto& [_, st] : s->pairs) {
      total += 48 + st.masks.size() * 8;
    }
  }
  std::lock_guard<std::mutex> lock(srcs_mu_);
  for (const auto& [_, srcs] : srcs_of_) total += 32 + srcs.size() * 16;
  return total;
}

}  // namespace apollo::core
