// ApolloMiddleware: the paper's predictive caching engine (Sections 2-3).
//
// Extends CachingMiddleware with the full framework: per-client transition
// graphs built online from query streams (Algorithm 1), parameter-mapping
// discovery with a verification period (2.3), FDQ/ADQ discovery
// (Algorithm 3), dependency-ready tracking (Algorithm 4), pipelined
// predictive execution (2.4), the multi-delta-t freshness model (3.4.1)
// and informed ADQ reload (3.4.2).
#pragma once

#include <unordered_set>

#include "core/caching_middleware.h"
#include "core/dependency_graph.h"
#include "core/param_mapper.h"

namespace apollo::core {

class ApolloMiddleware : public CachingMiddleware {
 public:
  ApolloMiddleware(sim::EventLoop* loop, net::RemoteDatabase* remote,
                   cache::KvCache* cache, ApolloConfig config,
                   obs::Observability* obs = nullptr,
                   const std::string& metric_prefix = "mw.")
      : CachingMiddleware(loop, remote, cache, config, obs, metric_prefix),
        mapper_(config.verification_period, ParamMapper::kDefaultStripes,
                config.max_param_pairs) {
    if (c_.learning_pruned_pairs != nullptr) {
      mapper_.SetPruneCounter(c_.learning_pruned_pairs);
    }
  }

  std::string name() const override {
    return config_.enable_prediction ? "apollo" : "memcached";
  }

  size_t LearningStateBytes() const override;

  const ParamMapper& mapper() const { return mapper_; }
  const DependencyGraph& dependency_graph() const { return deps_; }

 protected:
  void OnQueryCompleted(ClientSession& session,
                        const CompletedQuery& query) override;
  void OnPredictionCompleted(ClientSession& session, uint64_t template_id,
                             common::ResultSetPtr result,
                             int depth) override;

  // Snapshot hooks: adds the param-mapper and dependency-graph sections
  // on top of the base sections. Defined in
  // src/persist/middleware_persist.cc (apollo_persist).
  void CollectPersistSections(persist::SnapshotWriter* w) override;
  util::Status RestoreSection(uint32_t type, const std::string& payload,
                              persist::RestoreStats* stats) override;

 private:
  /// Algorithm 3: discovers templates related to `qt` whose parameters are
  /// now fully mapped, registering them as FDQs.
  std::vector<Fdq*> FindNewFdqs(ClientSession& session, uint64_t qt);

  /// Algorithm 4: marks `qt` satisfied in every dependent FDQ's
  /// per-session dependency list; returns FDQs that became ready.
  std::vector<Fdq*> MarkReadyDependency(ClientSession& session, uint64_t qt);

  /// True if every dependency of `f` has a fresh result in the session.
  bool DepsFresh(const ClientSession& session, const Fdq& f) const;

  /// Instantiates and predictively executes `f` (fan-out over source rows
  /// bounded by config). `trigger` is the template whose execution made
  /// `f` ready (freshness-model anchor).
  void TryPredict(ClientSession& session, Fdq* f, uint64_t trigger,
                  int depth);

  /// Section 3.4.1: false if an invalidating write is likely before the
  /// prediction could be consumed.
  bool FreshnessAllows(ClientSession& session, const Fdq& f,
                       uint64_t trigger);

  /// Expected time (us) to execute `f` including unexecuted dependencies.
  double EstimateRuntimeUs(const ClientSession& session, const Fdq& f,
                           std::unordered_set<uint64_t>& visiting) const;

  /// Tables read by `f` and its dependency closure.
  void CollectReadTables(const Fdq& f,
                         std::unordered_set<std::string>* tables) const;

  /// Section 3.4.2: reloads valuable ADQ hierarchies whose tables were
  /// just written.
  void ReloadAdqs(ClientSession& session, const CompletedQuery& write);

  /// Drops per-session satisfied-dependency state for a removed FDQ so a
  /// later re-discovery starts from a clean slate.
  void ClearSatisfied(uint64_t fdq_id);

  ParamMapper mapper_;
  DependencyGraph deps_;
};

}  // namespace apollo::core
