#include "obs/trace_log.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace apollo::obs {

namespace {

const char* const kTypeNames[] = {
    "template_discovered", "fdq_tagged",        "adq_tagged",
    "adq_revoked",         "fdq_invalidated",   "mapping_disproven",
    "prediction_issued",   "prediction_skipped", "prediction_cached",
    "prediction_hit",      "prediction_evicted", "prediction_wasted",
    "adq_reload",          "snapshot_saved",
    "snapshot_section_skipped",                  "snapshot_restored",
    "brownout_level",      "deadline_miss",      "stale_served",
    "overload_rejected",
};

const char* const kReasonNames[] = {
    "none",        "freshness",   "shed",    "incomplete_sources",
    "invalid_sql", "cached",      "inflight", "low_utility",
    "overload",
};

constexpr size_t kNumTypes = sizeof(kTypeNames) / sizeof(kTypeNames[0]);
constexpr size_t kNumReasons = sizeof(kReasonNames) / sizeof(kReasonNames[0]);

/// Extracts the value of `"key":` from a JSONL line into `out`
/// (number or quoted string, quotes stripped). False if absent.
bool ExtractField(const std::string& line, const char* key,
                  std::string* out) {
  std::string needle = std::string("\"") + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  if (pos >= line.size()) return false;
  bool quoted = line[pos] == '"';
  if (quoted) ++pos;
  size_t end = pos;
  while (end < line.size()) {
    char c = line[end];
    if (quoted ? c == '"' : (c == ',' || c == '}')) break;
    ++end;
  }
  *out = line.substr(pos, end - pos);
  return true;
}

}  // namespace

TraceLog::TraceLog(size_t capacity)
    : ring_capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(ring_capacity_);
}

void TraceLog::Record(TraceEventType type, int client, uint64_t template_id,
                      SkipReason reason, uint64_t aux) {
  if (!enabled()) return;
  TraceEvent e;
  e.time = clock_ ? clock_() : 0;
  e.type = type;
  e.client = client;
  e.template_id = template_id;
  e.reason = reason;
  e.aux = aux;
  std::lock_guard<std::mutex> lock(mu_);
  e.seq = next_seq_++;
  if (ring_.size() < ring_capacity_) {
    ring_.push_back(e);
  } else {
    ring_[static_cast<size_t>(e.seq % ring_capacity_)] = e;
  }
}

std::vector<TraceEvent> TraceLog::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return EventsLocked();
}

std::vector<TraceEvent> TraceLog::EventsLocked() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < ring_capacity_) {
    out = ring_;
  } else {
    // Ring is full: oldest event lives at next_seq_ % capacity.
    size_t start = static_cast<size_t>(next_seq_ % ring_capacity_);
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(start + i) % ring_.size()]);
    }
  }
  return out;
}

void TraceLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_seq_ = 0;
}

const char* TraceLog::TypeName(TraceEventType type) {
  size_t i = static_cast<size_t>(type);
  return i < kNumTypes ? kTypeNames[i] : "unknown";
}

const char* TraceLog::ReasonName(SkipReason reason) {
  size_t i = static_cast<size_t>(reason);
  return i < kNumReasons ? kReasonNames[i] : "unknown";
}

std::string TraceLog::ToJsonl() const {
  std::string out;
  char buf[256];
  for (const TraceEvent& e : Events()) {
    std::snprintf(buf, sizeof(buf),
                  "{\"seq\":%" PRIu64 ",\"t_us\":%" PRId64
                  ",\"type\":\"%s\",\"client\":%d,\"template\":%" PRIu64
                  ",\"reason\":\"%s\",\"aux\":%" PRIu64 "}\n",
                  e.seq, static_cast<int64_t>(e.time), TypeName(e.type),
                  e.client, e.template_id, ReasonName(e.reason), e.aux);
    out += buf;
  }
  return out;
}

bool TraceLog::WriteJsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string text = ToJsonl();
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  int rc = std::fclose(f);
  return written == text.size() && rc == 0;
}

std::vector<TraceEvent> TraceLog::ParseJsonl(const std::string& text) {
  std::vector<TraceEvent> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    std::string seq, t_us, type, client, tmpl, reason, aux;
    if (!ExtractField(line, "seq", &seq) ||
        !ExtractField(line, "t_us", &t_us) ||
        !ExtractField(line, "type", &type) ||
        !ExtractField(line, "client", &client) ||
        !ExtractField(line, "template", &tmpl) ||
        !ExtractField(line, "reason", &reason) ||
        !ExtractField(line, "aux", &aux)) {
      continue;
    }
    TraceEvent e;
    e.seq = std::strtoull(seq.c_str(), nullptr, 10);
    e.time = std::strtoll(t_us.c_str(), nullptr, 10);
    e.client = static_cast<int>(std::strtol(client.c_str(), nullptr, 10));
    e.template_id = std::strtoull(tmpl.c_str(), nullptr, 10);
    e.aux = std::strtoull(aux.c_str(), nullptr, 10);
    bool known_type = false;
    for (size_t i = 0; i < kNumTypes; ++i) {
      if (type == kTypeNames[i]) {
        e.type = static_cast<TraceEventType>(i);
        known_type = true;
        break;
      }
    }
    if (!known_type) continue;
    for (size_t i = 0; i < kNumReasons; ++i) {
      if (reason == kReasonNames[i]) {
        e.reason = static_cast<SkipReason>(i);
        break;
      }
    }
    out.push_back(e);
  }
  return out;
}

}  // namespace apollo::obs
