#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace apollo::obs {

namespace {

template <typename Vec>
typename Vec::value_type::second_type::element_type* FindIn(
    const Vec& vec, const std::string& name) {
  for (const auto& [n, inst] : vec) {
    if (n == name) return inst.get();
  }
  return nullptr;
}

void AppendJsonNumber(std::string* out, double v) {
  char buf[64];
  // Counters and counts are integral; print them without a fraction so
  // the JSON is stable and readable.
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  out->append(buf);
}

}  // namespace

Counter* MetricsRegistry::RegisterCounter(const std::string& name,
                                          size_t num_shards) {
  std::lock_guard lock(mu_);
  if (Counter* existing = FindIn(counters_, name)) return existing;
  counters_.emplace_back(name, std::make_unique<Counter>(num_shards));
  return counters_.back().second.get();
}

Gauge* MetricsRegistry::RegisterGauge(const std::string& name) {
  std::lock_guard lock(mu_);
  if (Gauge* existing = FindIn(gauges_, name)) return existing;
  gauges_.emplace_back(name, std::make_unique<Gauge>());
  return gauges_.back().second.get();
}

HistogramMetric* MetricsRegistry::RegisterHistogram(const std::string& name) {
  std::lock_guard lock(mu_);
  if (HistogramMetric* existing = FindIn(histograms_, name)) return existing;
  histograms_.emplace_back(name, std::make_unique<HistogramMetric>());
  return histograms_.back().second.get();
}

Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard lock(mu_);
  return FindIn(counters_, name);
}

Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard lock(mu_);
  return FindIn(gauges_, name);
}

HistogramMetric* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  std::lock_guard lock(mu_);
  return FindIn(histograms_, name);
}

size_t MetricsRegistry::size() const {
  std::lock_guard lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot(
    ExportFilter filter) const {
  std::lock_guard lock(mu_);
  auto included = [filter](const std::string& name) {
    switch (filter) {
      case ExportFilter::kDeterministic: return !IsWall(name);
      case ExportFilter::kWallOnly: return IsWall(name);
      case ExportFilter::kAll: return true;
    }
    return true;
  };
  std::vector<Sample> out;
  for (const auto& [name, c] : counters_) {
    if (included(name)) {
      out.push_back({name, static_cast<double>(c->Value())});
    }
  }
  for (const auto& [name, g] : gauges_) {
    if (included(name)) out.push_back({name, g->Value()});
  }
  for (const auto& [name, h] : histograms_) {
    if (!included(name)) continue;
    out.push_back({name + ".count", static_cast<double>(h->Count())});
    out.push_back({name + ".mean", h->Mean()});
    out.push_back({name + ".p50", static_cast<double>(h->Percentile(50))});
    out.push_back({name + ".p99", static_cast<double>(h->Percentile(99))});
  }
  return out;
}

std::string MetricsRegistry::ToJson(ExportFilter filter) const {
  std::vector<Sample> samples = Snapshot(filter);
  std::string out = "{";
  for (size_t i = 0; i < samples.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + samples[i].name + "\":";
    AppendJsonNumber(&out, samples[i].value);
  }
  out += "}";
  return out;
}

}  // namespace apollo::obs
