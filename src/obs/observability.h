// Observability: the per-run bundle of a MetricsRegistry and a TraceLog.
//
// The experiment driver creates one Observability per run and threads it
// through every component (remote database, caches, middleware
// instances). Components that are constructed without one lazily create
// a private bundle, so their instruments always exist and their legacy
// stats() views always work — the registry is the single source of
// truth either way.
#pragma once

#include <cstddef>

#include "obs/metrics.h"
#include "obs/trace_log.h"

namespace apollo::obs {

struct Observability {
  explicit Observability(size_t trace_capacity = 8192)
      : trace(trace_capacity) {}

  MetricsRegistry metrics;
  TraceLog trace;
};

}  // namespace apollo::obs
