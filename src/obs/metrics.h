// MetricsRegistry: the central store of named counters, gauges and
// histograms (DESIGN.md Section 8).
//
// Components register their instruments once (at construction) and keep
// the returned handle for increment-time access; nothing is looked up by
// name on the hot path. Counters may be sharded so concurrent writers
// (e.g. the KvCache's shards) accumulate into distinct cache lines and
// only reads pay the aggregation. The legacy stats structs
// (RemoteDbStats, MiddlewareStats, CacheStats) are assembled on demand
// from these instruments — the registry is the single source of truth.
//
// Export is deterministic: instruments appear in registration order.
// Instrument names containing "wall" hold real (wall-clock) measurements
// and are excluded from the deterministic export so bit-identical-output
// regression checks keep working (see tools/check.sh notes).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/histogram.h"

namespace apollo::obs {

/// Monotonic counter with optional per-shard accumulation cells.
class Counter {
 public:
  explicit Counter(size_t num_shards = 1)
      : cells_(num_shards == 0 ? 1 : num_shards) {}

  void Inc(uint64_t delta = 1, size_t shard = 0) {
    cells_[shard % cells_.size()].v.fetch_add(delta,
                                              std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

  size_t num_shards() const { return cells_.size(); }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::vector<Cell> cells_;
};

/// Double-valued gauge; supports both Set (levels) and Add (accumulated
/// sums, e.g. wall-clock microseconds).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }

  void Add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }

  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Thread-safe wrapper over util::Histogram plus a running sum/count that
/// can be read cheaply (interval samplers diff the sum, final reports use
/// the full percentile set).
class HistogramMetric {
 public:
  void Record(int64_t value) {
    std::lock_guard lock(mu_);
    hist_.Record(value);
  }

  uint64_t Count() const {
    std::lock_guard lock(mu_);
    return hist_.count();
  }

  double Sum() const {
    std::lock_guard lock(mu_);
    return static_cast<double>(hist_.sum());
  }

  double Mean() const {
    std::lock_guard lock(mu_);
    return hist_.Mean();
  }

  int64_t Percentile(double p) const {
    std::lock_guard lock(mu_);
    return hist_.empty() ? 0 : hist_.Percentile(p);
  }

 private:
  mutable std::mutex mu_;
  util::Histogram hist_;
};

/// Which instruments an export includes. Wall-clock instruments (name
/// contains "wall") are nondeterministic between runs.
enum class ExportFilter { kDeterministic, kWallOnly, kAll };

class MetricsRegistry {
 public:
  /// Registration is idempotent: re-registering a name returns the
  /// existing instrument (shard count of the first registration wins).
  Counter* RegisterCounter(const std::string& name, size_t num_shards = 1);
  Gauge* RegisterGauge(const std::string& name);
  HistogramMetric* RegisterHistogram(const std::string& name);

  /// Lookup by exact name; nullptr if never registered.
  Counter* FindCounter(const std::string& name) const;
  Gauge* FindGauge(const std::string& name) const;
  HistogramMetric* FindHistogram(const std::string& name) const;

  /// One exported value (histograms expand to count/mean/p50/p99).
  struct Sample {
    std::string name;
    double value = 0.0;
  };
  std::vector<Sample> Snapshot(ExportFilter filter = ExportFilter::kAll) const;

  /// Compact single-line JSON object, instruments in registration order.
  std::string ToJson(ExportFilter filter = ExportFilter::kAll) const;

  size_t size() const;

 private:
  static bool IsWall(const std::string& name) {
    return name.find("wall") != std::string::npos;
  }

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<HistogramMetric>>>
      histograms_;
};

}  // namespace apollo::obs
