// TraceLog: bounded ring buffer of structured prediction-lifecycle events
// (DESIGN.md Section 8).
//
// The middleware and cache record one event per lifecycle step of a
// prediction: template discovered -> FDQ/ADQ tagged -> prediction issued
// or skipped (with the reason) -> result cached -> hit / wasted /
// evicted. Recording is O(1) into a preallocated ring; when the ring
// wraps, the oldest events are dropped and counted. The log is disabled
// by default — Record() is a single branch then — and is toggled per run
// by the experiment driver.
//
// Events carry simulated timestamps supplied by a clock callback (the
// driver installs the event loop's clock); they never consume simulated
// time themselves, so enabling tracing cannot change experiment results.
//
// Thread safety: the enabled flag is atomic (the disabled fast path stays
// a single branch, lock-free); ring/sequence state is guarded by a mutex.
// set_clock must happen before threads start recording.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "util/sim_time.h"

namespace apollo::obs {

enum class TraceEventType : uint8_t {
  kTemplateDiscovered,   // first time a template is seen in any stream
  kFdqTagged,            // template registered as an FDQ
  kAdqTagged,            // FDQ (re)classified as an ADQ
  kAdqRevoked,           // ADQ tag revoked (dependency removed/invalid)
  kFdqInvalidated,       // FDQ dropped after a mapping disproof
  kMappingDisproven,     // a src->dst parameter mapping failed verification
  kPredictionIssued,     // predictive execution sent towards the database
  kPredictionSkipped,    // prediction considered but vetoed (see reason)
  kPredictionCached,     // predictive result landed in the shared cache
  kPredictionHit,        // a client read was served by a predicted entry
  kPredictionEvicted,    // predicted entry evicted after serving >=1 hit
  kPredictionWasted,     // predicted entry evicted without ever being hit
  kAdqReload,            // informed reload pass touched an ADQ hierarchy
  kSnapshotSaved,        // learning state checkpointed (aux = bytes)
  kSnapshotSectionSkipped,  // corrupt/unknown section skipped on restore
  kSnapshotRestored,     // restore finished (aux = sections loaded)
  kBrownoutLevel,        // overload level changed (template_id = old,
                         // aux = new level)
  kDeadlineMiss,         // query cancelled: budget could not cover the work
  kStaleServed,          // cache miss served stale-within-bound (L3)
  kOverloadRejected,     // client query rejected with backpressure (L4)
};

/// Why a prediction was considered but not issued.
enum class SkipReason : uint8_t {
  kNone,
  kFreshness,          // freshness model vetoed (3.4.1)
  kShed,               // WAN degraded; sheddable load dropped
  kIncompleteSources,  // a source result lacked the needed row/column
  kInvalidSql,         // instantiated SQL failed to parse/templatize
  kCached,             // compatible result already cached
  kInflight,           // identical query already executing
  kLowUtility,         // brownout L1: expected benefit under the floor
  kOverload,           // brownout >= L2: all speculation shed
};

struct TraceEvent {
  uint64_t seq = 0;  // global order of recording (monotonic)
  util::SimTime time = 0;
  TraceEventType type = TraceEventType::kTemplateDiscovered;
  int client = -1;             // session id; -1 when not session-scoped
  uint64_t template_id = 0;    // template fingerprint (0 if unknown)
  SkipReason reason = SkipReason::kNone;
  uint64_t aux = 0;  // type-specific: src template, depth, hit count, ...
};

class TraceLog {
 public:
  explicit TraceLog(size_t capacity = 8192);

  /// Enable/disable recording; Record() is a no-op while disabled.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Clock used to stamp events (the driver installs the simulated
  /// clock). Defaults to a constant 0.
  void set_clock(std::function<util::SimTime()> clock) {
    clock_ = std::move(clock);
  }

  void Record(TraceEventType type, int client, uint64_t template_id,
              SkipReason reason = SkipReason::kNone, uint64_t aux = 0);

  /// Events still in the ring, oldest first.
  std::vector<TraceEvent> Events() const;

  uint64_t total_recorded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_seq_;
  }
  uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return next_seq_ > ring_.size() ? next_seq_ - ring_.size() : 0;
  }
  size_t capacity() const { return ring_capacity_; }

  void Clear();

  /// One JSON object per line, oldest first.
  std::string ToJsonl() const;
  /// Writes ToJsonl() to `path`; false on I/O error.
  bool WriteJsonl(const std::string& path) const;
  /// Parses text produced by ToJsonl() (round-trip support for tools and
  /// tests). Unparsable lines are skipped.
  static std::vector<TraceEvent> ParseJsonl(const std::string& text);

  static const char* TypeName(TraceEventType type);
  static const char* ReasonName(SkipReason reason);

 private:
  /// Ring contents assuming mu_ is held, oldest first.
  std::vector<TraceEvent> EventsLocked() const;

  std::atomic<bool> enabled_{false};
  std::function<util::SimTime()> clock_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  // size() grows to capacity, then wraps
  size_t ring_capacity_;
  uint64_t next_seq_ = 0;
};

}  // namespace apollo::obs
