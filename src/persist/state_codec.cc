#include "persist/state_codec.h"

#include "persist/wire.h"

namespace apollo::persist {
namespace {

util::Status Corrupt(const char* what) {
  return util::Status::InvalidArgument(std::string("corrupt ") + what +
                                       " section payload");
}

void EncodeGraph(ByteWriter& w, const core::TransitionGraph::State& g) {
  w.I64(g.delta_t);
  w.U32(static_cast<uint32_t>(g.vertices.size()));
  for (const auto& v : g.vertices) {
    w.U64(v.id);
    w.U64(v.count);
    w.U32(static_cast<uint32_t>(v.edges.size()));
    for (const auto& [to, count] : v.edges) {
      w.U64(to);
      w.U64(count);
    }
  }
}

bool DecodeGraph(ByteReader& r, core::TransitionGraph::State* g) {
  g->delta_t = r.I64();
  uint32_t nv = r.U32();
  if (!r.CanHold(nv, 20)) return false;  // id + count + edge count
  g->vertices.reserve(nv);
  for (uint32_t i = 0; i < nv; ++i) {
    core::TransitionGraph::ExportedVertex v;
    v.id = r.U64();
    v.count = r.U64();
    uint32_t ne = r.U32();
    if (!r.CanHold(ne, 16)) return false;
    v.edges.reserve(ne);
    for (uint32_t e = 0; e < ne; ++e) {
      uint64_t to = r.U64();
      uint64_t count = r.U64();
      v.edges.emplace_back(to, count);
    }
    g->vertices.push_back(std::move(v));
  }
  return r.ok();
}

}  // namespace

std::string EncodeTemplates(const core::TemplateRegistry::State& st) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(st.templates.size()));
  for (const auto& t : st.templates) {
    w.U64(t.id);
    w.Str(t.template_text);
    w.U32(static_cast<uint32_t>(t.num_placeholders));
    w.U8(t.read_only ? 1 : 0);
    w.U32(static_cast<uint32_t>(t.tables_read.size()));
    for (const auto& s : t.tables_read) w.Str(s);
    w.U32(static_cast<uint32_t>(t.tables_written.size()));
    for (const auto& s : t.tables_written) w.Str(s);
    w.U64(t.executions);
    w.Dbl(t.mean_exec_us);
    w.U64(t.observations);
  }
  return w.Take();
}

util::Result<core::TemplateRegistry::State> DecodeTemplates(
    std::string_view payload) {
  ByteReader r(payload);
  core::TemplateRegistry::State st;
  uint32_t n = r.U32();
  if (!r.CanHold(n, 45)) return Corrupt("templates");
  st.templates.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    core::TemplateRegistry::ExportedTemplate t;
    t.id = r.U64();
    t.template_text = r.Str();
    t.num_placeholders = static_cast<int>(r.U32());
    t.read_only = r.U8() != 0;
    uint32_t nr = r.U32();
    if (!r.CanHold(nr, 4)) return Corrupt("templates");
    for (uint32_t j = 0; j < nr; ++j) t.tables_read.push_back(r.Str());
    uint32_t nw = r.U32();
    if (!r.CanHold(nw, 4)) return Corrupt("templates");
    for (uint32_t j = 0; j < nw; ++j) t.tables_written.push_back(r.Str());
    t.executions = r.U64();
    t.mean_exec_us = r.Dbl();
    t.observations = r.U64();
    st.templates.push_back(std::move(t));
  }
  if (!r.Done()) return Corrupt("templates");
  return st;
}

std::string EncodeParamMapper(const core::ParamMapper::State& st) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(st.verification_period));
  w.U32(static_cast<uint32_t>(st.pairs.size()));
  for (const auto& p : st.pairs) {
    w.U64(p.src);
    w.U64(p.dst);
    w.U32(static_cast<uint32_t>(p.observations));
    w.U32(static_cast<uint32_t>(p.masks.size()));
    for (uint64_t m : p.masks) w.U64(m);
    w.U8(p.confirmed ? 1 : 0);
    w.U8(p.invalidated ? 1 : 0);
    w.U32(p.supports);
    w.U32(p.violations);
  }
  return w.Take();
}

util::Result<core::ParamMapper::State> DecodeParamMapper(
    std::string_view payload) {
  ByteReader r(payload);
  core::ParamMapper::State st;
  st.verification_period = static_cast<int>(r.U32());
  uint32_t n = r.U32();
  if (!r.CanHold(n, 34)) return Corrupt("param_mapper");
  st.pairs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    core::ParamMapper::ExportedPair p;
    p.src = r.U64();
    p.dst = r.U64();
    p.observations = static_cast<int32_t>(r.U32());
    uint32_t nm = r.U32();
    if (!r.CanHold(nm, 8)) return Corrupt("param_mapper");
    p.masks.reserve(nm);
    for (uint32_t j = 0; j < nm; ++j) p.masks.push_back(r.U64());
    p.confirmed = r.U8() != 0;
    p.invalidated = r.U8() != 0;
    p.supports = r.U32();
    p.violations = r.U32();
    st.pairs.push_back(std::move(p));
  }
  if (!r.Done()) return Corrupt("param_mapper");
  return st;
}

std::string EncodeDependencyGraph(const core::DependencyGraph::State& st) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(st.fdqs.size()));
  for (const auto& f : st.fdqs) {
    w.U64(f.id);
    w.U32(static_cast<uint32_t>(f.sources.size()));
    for (const auto& s : f.sources) {
      w.U64(s.src);
      w.U32(static_cast<uint32_t>(s.col));
    }
    w.U8(f.is_adq ? 1 : 0);
    w.U8(f.invalid ? 1 : 0);
  }
  return w.Take();
}

util::Result<core::DependencyGraph::State> DecodeDependencyGraph(
    std::string_view payload) {
  ByteReader r(payload);
  core::DependencyGraph::State st;
  uint32_t n = r.U32();
  if (!r.CanHold(n, 14)) return Corrupt("dependency_graph");
  st.fdqs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    core::DependencyGraph::ExportedFdq f;
    f.id = r.U64();
    uint32_t ns = r.U32();
    if (!r.CanHold(ns, 12)) return Corrupt("dependency_graph");
    f.sources.reserve(ns);
    for (uint32_t j = 0; j < ns; ++j) {
      core::SourceRef ref;
      ref.src = r.U64();
      ref.col = static_cast<int>(r.U32());
      f.sources.push_back(ref);
    }
    f.is_adq = r.U8() != 0;
    f.invalid = r.U8() != 0;
    st.fdqs.push_back(std::move(f));
  }
  if (!r.Done()) return Corrupt("dependency_graph");
  return st;
}

std::string EncodeSessions(const SessionsState& st) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(st.sessions.size()));
  for (const auto& s : st.sessions) {
    w.U32(static_cast<uint32_t>(s.id));
    w.U32(static_cast<uint32_t>(s.graphs.size()));
    for (const auto& g : s.graphs) EncodeGraph(w, g);
    w.U32(static_cast<uint32_t>(s.satisfied.size()));
    for (const auto& [fdq, deps] : s.satisfied) {
      w.U64(fdq);
      w.U32(static_cast<uint32_t>(deps.size()));
      for (uint64_t d : deps) w.U64(d);
    }
  }
  return w.Take();
}

util::Result<SessionsState> DecodeSessions(std::string_view payload) {
  ByteReader r(payload);
  SessionsState st;
  uint32_t n = r.U32();
  if (!r.CanHold(n, 12)) return Corrupt("sessions");
  st.sessions.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SessionState s;
    s.id = static_cast<core::ClientId>(r.U32());
    uint32_t ng = r.U32();
    if (!r.CanHold(ng, 12)) return Corrupt("sessions");
    s.graphs.reserve(ng);
    for (uint32_t g = 0; g < ng; ++g) {
      core::TransitionGraph::State gs;
      if (!DecodeGraph(r, &gs)) return Corrupt("sessions");
      s.graphs.push_back(std::move(gs));
    }
    uint32_t nsat = r.U32();
    if (!r.CanHold(nsat, 12)) return Corrupt("sessions");
    s.satisfied.reserve(nsat);
    for (uint32_t j = 0; j < nsat; ++j) {
      uint64_t fdq = r.U64();
      uint32_t nd = r.U32();
      if (!r.CanHold(nd, 8)) return Corrupt("sessions");
      std::vector<uint64_t> deps;
      deps.reserve(nd);
      for (uint32_t d = 0; d < nd; ++d) deps.push_back(r.U64());
      s.satisfied.emplace_back(fdq, std::move(deps));
    }
    st.sessions.push_back(std::move(s));
  }
  if (!r.Done()) return Corrupt("sessions");
  return st;
}

}  // namespace apollo::persist
