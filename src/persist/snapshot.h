// Versioned, section-framed binary snapshot format (DESIGN.md §11).
//
// Layout (all integers little-endian):
//
//   header   : magic "APOLSNP1" (8) | format_version u32 | section_count
//              u32 | created_at_us u64                          = 24 bytes
//   section* : type u32 | flags u32 (0) | payload_len u64 |
//              payload_crc32c u32 | payload bytes               = 20 + len
//
// Each section is independently framed and checksummed so the loader can
// skip a corrupted or truncated section and still recover every intact
// one (partial recovery). Parsing never trusts a length: a section whose
// declared payload overruns the file terminates the scan with the
// sections already recovered, and a CRC mismatch marks just that section
// bad. The loader never crashes on hostile bytes — the corruption-fuzz
// suite in tests/persist_test.cc flips and truncates every byte offset.
//
// Writing is atomic with respect to crashes: the snapshot is written to a
// sibling tmp file, fsync'd, renamed over the target, and the directory
// fsync'd. See DESIGN.md §11 for what this does and does not promise.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace apollo::persist {

inline constexpr char kSnapshotMagic[8] = {'A', 'P', 'O', 'L',
                                           'S', 'N', 'P', '1'};
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr size_t kHeaderBytes = 24;
inline constexpr size_t kSectionHeaderBytes = 20;

/// Section payload kinds. Unknown types are preserved by the parser and
/// skipped by restorers (forward compatibility).
inline constexpr uint32_t kSectionTemplates = 1;
inline constexpr uint32_t kSectionParamMapper = 2;
inline constexpr uint32_t kSectionDependencyGraph = 3;
inline constexpr uint32_t kSectionSessions = 4;

/// Human-readable section-type name ("templates", ... / "unknown").
const char* SectionName(uint32_t type);

/// One parsed section. `crc_ok` is the per-section validation verdict;
/// the payload of a bad section is still exposed for tooling.
struct SnapshotSection {
  uint32_t type = 0;
  uint32_t crc_stored = 0;
  uint32_t crc_computed = 0;
  bool crc_ok = false;
  std::string payload;
};

/// A parsed snapshot: header fields plus every section physically present.
struct Snapshot {
  uint32_t format_version = 0;
  uint32_t section_count = 0;  // header's claim
  uint64_t created_at_us = 0;
  /// True when the file ended before `section_count` sections were read
  /// (truncation); `sections` holds the ones physically recovered.
  bool truncated = false;
  std::vector<SnapshotSection> sections;
};

/// Counters describing one Restore() pass (partial-recovery accounting).
struct RestoreStats {
  uint32_t sections_total = 0;    // sections physically present in the file
  uint32_t sections_loaded = 0;   // decoded and applied
  uint32_t sections_corrupt = 0;  // CRC or decode failure; skipped
  uint32_t sections_unknown = 0;  // unrecognized type; skipped
  bool truncated = false;         // file ended before the section table did
  uint64_t snapshot_bytes = 0;

  // Entry counts applied, by structure.
  uint64_t templates = 0;
  uint64_t pairs = 0;
  uint64_t fdqs = 0;
  uint64_t sessions = 0;
};

/// Accumulates sections and serializes/writes the snapshot.
class SnapshotWriter {
 public:
  void AddSection(uint32_t type, std::string payload);

  /// The full snapshot image (header + framed sections).
  std::string Serialize(uint64_t created_at_us) const;

  /// Serializes and writes atomically: tmp file + fsync + rename +
  /// directory fsync. On error the target file is left untouched.
  util::Status WriteAtomic(const std::string& path,
                           uint64_t created_at_us) const;

  size_t num_sections() const { return sections_.size(); }

 private:
  struct Pending {
    uint32_t type;
    std::string payload;
  };
  std::vector<Pending> sections_;
};

/// Parses a snapshot image. Fails (Status) only when the header itself is
/// unusable (short file, bad magic, unsupported version); section-level
/// damage is reported per section so intact ones can still be restored.
util::Result<Snapshot> ParseSnapshot(std::string_view bytes);

/// Reads `path` and parses it. kNotFound when the file does not exist.
util::Result<Snapshot> ReadSnapshotFile(const std::string& path);

/// Atomic byte-level file write (tmp + fsync + rename + dir fsync);
/// shared by SnapshotWriter::WriteAtomic and tests.
util::Status WriteFileAtomic(const std::string& path, std::string_view bytes);

}  // namespace apollo::persist
