// Checkpoint/Restore for the event-loop middleware (DESIGN.md §11).
//
// These are member functions of core::CachingMiddleware /
// core::ApolloMiddleware, compiled into apollo_persist so the library
// dependency stays one-directional (persist -> core): the core library
// never calls into persist, it only declares these entry points.
#include <algorithm>

#include "core/apollo_middleware.h"
#include "core/caching_middleware.h"
#include "persist/snapshot.h"
#include "persist/state_codec.h"

namespace apollo::core {

namespace {

/// The delta-t ladder QueryStream builds from a config (sorted, with the
/// same 15 s fallback); restores validate snapshots against it up front so
/// a sessions section either applies to every session or to none.
std::vector<util::SimDuration> ConfigLadder(const ApolloConfig& config) {
  std::vector<util::SimDuration> ladder = config.delta_ts;
  std::sort(ladder.begin(), ladder.end());
  if (ladder.empty()) ladder.push_back(util::Seconds(15));
  return ladder;
}

bool LadderMatches(const std::vector<TransitionGraph::State>& graphs,
                   const std::vector<util::SimDuration>& ladder) {
  if (graphs.size() != ladder.size()) return false;
  for (size_t i = 0; i < graphs.size(); ++i) {
    if (graphs[i].delta_t != ladder[i]) return false;
  }
  return true;
}

}  // namespace

void CachingMiddleware::CollectPersistSections(persist::SnapshotWriter* w) {
  w->AddSection(persist::kSectionTemplates,
                persist::EncodeTemplates(templates_.ExportState()));

  persist::SessionsState sessions;
  sessions.sessions.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    // Fold every window already closed by now into the graphs: the
    // scanner is lazy (it runs on query arrival), so without this an
    // idle session's most recent observations would be invisible to the
    // snapshot yet later counted by the still-running engine.
    session->stream.Process(loop_->now());
    persist::SessionState s;
    s.id = id;
    s.graphs = session->stream.ExportGraphState();
    s.satisfied.reserve(session->satisfied.size());
    for (const auto& [fdq, deps] : session->satisfied) {
      std::vector<uint64_t> sorted_deps(deps.begin(), deps.end());
      std::sort(sorted_deps.begin(), sorted_deps.end());
      s.satisfied.emplace_back(fdq, std::move(sorted_deps));
    }
    std::sort(s.satisfied.begin(), s.satisfied.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    sessions.sessions.push_back(std::move(s));
  }
  std::sort(sessions.sessions.begin(), sessions.sessions.end(),
            [](const persist::SessionState& a, const persist::SessionState& b) {
              return a.id < b.id;
            });
  w->AddSection(persist::kSectionSessions,
                persist::EncodeSessions(sessions));
}

util::Status CachingMiddleware::Checkpoint(const std::string& path) {
  persist::SnapshotWriter w;
  CollectPersistSections(&w);
  const std::string bytes =
      w.Serialize(static_cast<uint64_t>(loop_->now()));
  util::Status s = persist::WriteFileAtomic(path, bytes);
  if (s.ok() && obs_->trace.enabled()) {
    obs_->trace.Record(obs::TraceEventType::kSnapshotSaved, -1, 0,
                       obs::SkipReason::kNone, bytes.size());
  }
  return s;
}

util::Status CachingMiddleware::RestoreSection(
    uint32_t type, const std::string& payload,
    persist::RestoreStats* stats) {
  switch (type) {
    case persist::kSectionTemplates: {
      core::TemplateRegistry::State st;
      APOLLO_ASSIGN_OR_RETURN(st, persist::DecodeTemplates(payload));
      stats->templates += st.templates.size();
      templates_.ImportState(st);
      return util::Status::OK();
    }
    case persist::kSectionSessions: {
      persist::SessionsState st;
      APOLLO_ASSIGN_OR_RETURN(st, persist::DecodeSessions(payload));
      const auto ladder = ConfigLadder(config_);
      for (const auto& s : st.sessions) {
        if (!LadderMatches(s.graphs, ladder)) {
          return util::Status::InvalidArgument(
              "sessions section delta-t ladder differs from config");
        }
      }
      for (const auto& s : st.sessions) {
        ClientSession& session = SessionFor(s.id);
        APOLLO_RETURN_NOT_OK(session.stream.ImportGraphState(s.graphs));
        for (const auto& [fdq, deps] : s.satisfied) {
          auto& set = session.satisfied[fdq];
          set.insert(deps.begin(), deps.end());
        }
      }
      stats->sessions += st.sessions.size();
      return util::Status::OK();
    }
    default:
      return util::Status::NotFound("unknown section type " +
                                    std::to_string(type));
  }
}

util::Status CachingMiddleware::Restore(const std::string& path,
                                        persist::RestoreStats* stats) {
  persist::RestoreStats local;
  if (stats == nullptr) stats = &local;
  persist::Snapshot snap;
  APOLLO_ASSIGN_OR_RETURN(snap, persist::ReadSnapshotFile(path));
  stats->sections_total = static_cast<uint32_t>(snap.sections.size());
  stats->truncated = snap.truncated;
  for (const persist::SnapshotSection& sec : snap.sections) {
    stats->snapshot_bytes += persist::kSectionHeaderBytes +
                             sec.payload.size();
    if (!sec.crc_ok) {
      ++stats->sections_corrupt;
      if (obs_->trace.enabled()) {
        obs_->trace.Record(obs::TraceEventType::kSnapshotSectionSkipped, -1,
                           0, obs::SkipReason::kNone, sec.type);
      }
      continue;
    }
    util::Status s = RestoreSection(sec.type, sec.payload, stats);
    if (s.ok()) {
      ++stats->sections_loaded;
      continue;
    }
    if (s.code() == util::StatusCode::kNotFound) {
      ++stats->sections_unknown;
    } else {
      ++stats->sections_corrupt;
    }
    if (obs_->trace.enabled()) {
      obs_->trace.Record(obs::TraceEventType::kSnapshotSectionSkipped, -1, 0,
                         obs::SkipReason::kNone, sec.type);
    }
  }
  stats->snapshot_bytes += persist::kHeaderBytes;
  if (obs_->trace.enabled()) {
    obs_->trace.Record(obs::TraceEventType::kSnapshotRestored, -1, 0,
                       obs::SkipReason::kNone, stats->sections_loaded);
  }
  return util::Status::OK();
}

void ApolloMiddleware::CollectPersistSections(persist::SnapshotWriter* w) {
  CachingMiddleware::CollectPersistSections(w);
  w->AddSection(persist::kSectionParamMapper,
                persist::EncodeParamMapper(mapper_.ExportState()));
  w->AddSection(persist::kSectionDependencyGraph,
                persist::EncodeDependencyGraph(deps_.ExportState()));
}

util::Status ApolloMiddleware::RestoreSection(uint32_t type,
                                              const std::string& payload,
                                              persist::RestoreStats* stats) {
  switch (type) {
    case persist::kSectionParamMapper: {
      core::ParamMapper::State st;
      APOLLO_ASSIGN_OR_RETURN(st, persist::DecodeParamMapper(payload));
      stats->pairs += st.pairs.size();
      mapper_.ImportState(st);
      return util::Status::OK();
    }
    case persist::kSectionDependencyGraph: {
      core::DependencyGraph::State st;
      APOLLO_ASSIGN_OR_RETURN(st, persist::DecodeDependencyGraph(payload));
      stats->fdqs += st.fdqs.size();
      deps_.ImportState(st);
      return util::Status::OK();
    }
    default:
      return CachingMiddleware::RestoreSection(type, payload, stats);
  }
}

}  // namespace apollo::core
