// Codecs between the core learning structures' canonical State forms and
// snapshot section payloads (DESIGN.md §11).
//
// Encoders consume the already-canonical (sorted) State structs, so equal
// learning state always produces identical payload bytes — the snapshot →
// restore → snapshot byte-identity property the round-trip tests assert.
// Decoders run on untrusted bytes: every read is bounds-checked through
// persist::ByteReader, element counts are validated against the payload
// size before any allocation, and trailing garbage is rejected.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/dependency_graph.h"
#include "core/middleware.h"
#include "core/param_mapper.h"
#include "core/template_registry.h"
#include "core/transition_graph.h"
#include "util/result.h"

namespace apollo::persist {

std::string EncodeTemplates(const core::TemplateRegistry::State& st);
util::Result<core::TemplateRegistry::State> DecodeTemplates(
    std::string_view payload);

std::string EncodeParamMapper(const core::ParamMapper::State& st);
util::Result<core::ParamMapper::State> DecodeParamMapper(
    std::string_view payload);

std::string EncodeDependencyGraph(const core::DependencyGraph::State& st);
util::Result<core::DependencyGraph::State> DecodeDependencyGraph(
    std::string_view payload);

/// Per-session persisted learning state: the per-delta-t transition
/// graphs plus the Algorithm-4 satisfied-dependency sets. Stream entries,
/// cursors, recent results/params, last-seen times and the version vector
/// are transient (or deliberately untrusted) and never travel.
struct SessionState {
  core::ClientId id = 0;
  std::vector<core::TransitionGraph::State> graphs;  // ascending delta-t
  /// (fdq id, sorted satisfied dependency ids), sorted by fdq id.
  std::vector<std::pair<uint64_t, std::vector<uint64_t>>> satisfied;
};

struct SessionsState {
  std::vector<SessionState> sessions;  // sorted by client id
};

std::string EncodeSessions(const SessionsState& st);
util::Result<SessionsState> DecodeSessions(std::string_view payload);

}  // namespace apollo::persist
