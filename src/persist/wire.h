// Wire codec primitives for the snapshot format: little-endian
// fixed-width integers and length-prefixed strings.
//
// ByteReader is the trust boundary of the loader: every read is
// bounds-checked and a failed read latches the reader into an error state
// (all subsequent reads fail, values come back zero), so decoders can run
// straight-line over arbitrarily corrupted bytes and check ok() once at
// the end — no read on a hostile buffer can ever index out of range.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace apollo::persist {

class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Fixed(v); }
  void U64(uint64_t v) { Fixed(v); }
  void I64(int64_t v) { Fixed(static_cast<uint64_t>(v)); }
  /// Doubles travel as their IEEE-754 bit pattern: restore is bit-exact,
  /// which the replay-determinism guarantee depends on.
  void Dbl(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    Fixed(bits);
  }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  template <typename T>
  void Fixed(T v) {
    char buf[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    }
    out_.append(buf, sizeof(T));
  }

  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint32_t U32() { return Fixed<uint32_t>(); }
  uint64_t U64() { return Fixed<uint64_t>(); }
  int64_t I64() { return static_cast<int64_t>(Fixed<uint64_t>()); }
  double Dbl() {
    uint64_t bits = Fixed<uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    uint32_t n = U32();
    if (!Need(n)) return {};
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  /// True while every read so far stayed in bounds.
  bool ok() const { return ok_; }
  size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }
  /// True iff all bytes were consumed without a bounds failure — decoders
  /// require this so trailing garbage is rejected, keeping encode(decode(x))
  /// byte-identical.
  bool Done() const { return ok_ && pos_ == data_.size(); }

  /// Bounds pre-check for untrusted element counts: a hostile count must
  /// not drive a huge reserve/loop when the payload cannot possibly hold
  /// that many elements of at least `min_bytes_each`.
  bool CanHold(uint64_t count, size_t min_bytes_each) const {
    return ok_ && min_bytes_each > 0 &&
           count <= (data_.size() - pos_) / min_bytes_each;
  }

 private:
  bool Need(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }
  template <typename T>
  T Fixed() {
    if (!Need(sizeof(T))) return 0;
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace apollo::persist
