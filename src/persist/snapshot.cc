#include "persist/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "persist/crc32c.h"
#include "persist/wire.h"

namespace apollo::persist {

const char* SectionName(uint32_t type) {
  switch (type) {
    case kSectionTemplates:
      return "templates";
    case kSectionParamMapper:
      return "param_mapper";
    case kSectionDependencyGraph:
      return "dependency_graph";
    case kSectionSessions:
      return "sessions";
    default:
      return "unknown";
  }
}

void SnapshotWriter::AddSection(uint32_t type, std::string payload) {
  sections_.push_back(Pending{type, std::move(payload)});
}

std::string SnapshotWriter::Serialize(uint64_t created_at_us) const {
  ByteWriter w;
  for (char c : kSnapshotMagic) w.U8(static_cast<uint8_t>(c));
  w.U32(kFormatVersion);
  w.U32(static_cast<uint32_t>(sections_.size()));
  w.U64(created_at_us);
  for (const Pending& s : sections_) {
    w.U32(s.type);
    w.U32(0);  // flags, reserved
    w.U64(s.payload.size());
    w.U32(Crc32c(s.payload));
    for (char c : s.payload) w.U8(static_cast<uint8_t>(c));
  }
  return std::string(w.bytes());
}

util::Status SnapshotWriter::WriteAtomic(const std::string& path,
                                         uint64_t created_at_us) const {
  return WriteFileAtomic(path, Serialize(created_at_us));
}

namespace {

std::string DirnameOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

util::Status SyncFd(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    return util::Status::Internal("fsync " + what + ": " +
                                  std::strerror(errno));
  }
  return util::Status::OK();
}

}  // namespace

util::Status WriteFileAtomic(const std::string& path,
                             std::string_view bytes) {
  // The tmp file lives in the target's directory so the final rename
  // stays within one filesystem (rename(2) atomicity). The name must be
  // unique per writer, not just per process: two threads checkpointing
  // the same path concurrently would otherwise truncate each other's
  // half-written tmp file and then race the rename.
  static std::atomic<uint64_t> seq{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) +
                          "." + std::to_string(seq.fetch_add(1));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return util::Status::Internal("open " + tmp + ": " +
                                  std::strerror(errno));
  }
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return util::Status::Internal("write " + tmp + ": " +
                                    std::strerror(err));
    }
    off += static_cast<size_t>(n);
  }
  if (util::Status s = SyncFd(fd, tmp); !s.ok()) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return s;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return util::Status::Internal("close " + tmp + ": " +
                                  std::strerror(errno));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    int err = errno;
    ::unlink(tmp.c_str());
    return util::Status::Internal("rename " + tmp + " -> " + path + ": " +
                                  std::strerror(err));
  }
  // fsync the directory so the rename itself is durable; failure here is
  // reported (the data may not survive a power cut) but the file is
  // already in place.
  int dfd = ::open(DirnameOf(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) {
    return util::Status::Internal("open dir of " + path + ": " +
                                  std::strerror(errno));
  }
  util::Status s = SyncFd(dfd, "dir of " + path);
  ::close(dfd);
  return s;
}

util::Result<Snapshot> ParseSnapshot(std::string_view bytes) {
  if (bytes.size() < kHeaderBytes) {
    return util::Status::InvalidArgument(
        "snapshot too short for header (" + std::to_string(bytes.size()) +
        " bytes)");
  }
  if (std::memcmp(bytes.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
      0) {
    return util::Status::InvalidArgument("bad snapshot magic");
  }
  ByteReader r(bytes.substr(sizeof(kSnapshotMagic)));
  Snapshot snap;
  snap.format_version = r.U32();
  snap.section_count = r.U32();
  snap.created_at_us = r.U64();
  if (snap.format_version != kFormatVersion) {
    return util::Status::InvalidArgument(
        "unsupported snapshot format version " +
        std::to_string(snap.format_version));
  }

  // Section scan. Every length is validated against the bytes actually
  // present; a header or payload that overruns the file ends the scan
  // with `truncated` set and the sections already recovered intact.
  size_t pos = kHeaderBytes;
  for (uint32_t i = 0; i < snap.section_count; ++i) {
    if (bytes.size() - pos < kSectionHeaderBytes) {
      snap.truncated = true;
      break;
    }
    ByteReader h(bytes.substr(pos, kSectionHeaderBytes));
    SnapshotSection sec;
    sec.type = h.U32();
    h.U32();  // flags
    uint64_t len = h.U64();
    sec.crc_stored = h.U32();
    pos += kSectionHeaderBytes;
    if (len > bytes.size() - pos) {
      snap.truncated = true;
      break;
    }
    sec.payload.assign(bytes.substr(pos, len));
    pos += len;
    sec.crc_computed = Crc32c(sec.payload);
    sec.crc_ok = sec.crc_computed == sec.crc_stored;
    snap.sections.push_back(std::move(sec));
  }
  return snap;
}

util::Result<Snapshot> ReadSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Status::NotFound("snapshot file not found: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return util::Status::Internal("read " + path + " failed");
  }
  std::string bytes = std::move(buf).str();
  return ParseSnapshot(bytes);
}

}  // namespace apollo::persist
