// CRC32C (Castagnoli): the checksum guarding snapshot sections.
//
// Software slice-by-one table implementation — the snapshot path is
// dominated by fsync, not checksumming, and a table-based CRC keeps the
// subsystem dependency-free. The polynomial (0x1EDC6F41, reflected
// 0x82F63B78) matches the iSCSI/LevelDB/RocksDB convention, so snapshots
// can be validated by standard external tooling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace apollo::persist {

/// Extends `crc` (a running CRC32C, 0 to start) over `data`.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// CRC32C of a whole buffer. Known vector: "123456789" -> 0xE3069283.
inline uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data.data(), data.size());
}

}  // namespace apollo::persist
