#include "sim/service_station.h"

#include <utility>

namespace apollo::sim {

void ServiceStation::Submit(util::SimDuration service_time,
                            std::function<void()> done) {
  Job job{service_time, std::move(done), loop_->now()};
  if (busy_ < num_servers_) {
    StartJob(std::move(job));
  } else {
    waiting_.push(std::move(job));
    if (waiting_.size() > stats_.max_queue_depth) {
      stats_.max_queue_depth = waiting_.size();
    }
  }
}

void ServiceStation::StartJob(Job job) {
  ++busy_;
  stats_.total_wait += loop_->now() - job.enqueued_at;
  stats_.total_service += job.service_time;
  auto done = std::move(job.done);
  loop_->After(job.service_time, [this, done = std::move(done)]() {
    --busy_;
    ++stats_.jobs_completed;
    done();
    if (!waiting_.empty() && busy_ < num_servers_) {
      Job next = std::move(waiting_.front());
      waiting_.pop();
      StartJob(std::move(next));
    }
  });
}

}  // namespace apollo::sim
