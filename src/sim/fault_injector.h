// FaultInjector: deterministic WAN fault injection for the remote path.
//
// Drives three failure modes from a seeded schedule, so chaos runs are
// exactly reproducible and individually ablatable:
//   - transient per-attempt errors (packet loss / connection reset), drawn
//     Bernoulli per attempt;
//   - latency spikes (a Bernoulli-sampled multiplier on the sampled RTT)
//     plus optional symmetric jitter on every attempt;
//   - timed full-outage windows during which every attempt that reaches
//     the remote end is rejected.
// With an empty schedule the injector draws no randomness and injects
// nothing, so fault-free runs are bit-identical to runs without it.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/sim_time.h"

namespace apollo::sim {

/// One full-outage window [start, end) in simulated time.
struct FaultWindow {
  util::SimTime start = 0;
  util::SimTime end = 0;
};

struct FaultSchedule {
  /// Probability an attempt fails in the network (reset / loss).
  double transient_error_rate = 0.0;
  /// Probability an attempt's RTT is multiplied by `latency_spike_multiplier`.
  double latency_spike_rate = 0.0;
  double latency_spike_multiplier = 4.0;
  /// Symmetric jitter fraction applied to every attempt's RTT:
  /// multiplier drawn uniform in [1 - jitter, 1 + jitter]. 0 disables.
  double latency_jitter = 0.0;
  /// Full-outage windows (ascending, non-overlapping by convention).
  std::vector<FaultWindow> outages;

  bool Empty() const {
    return transient_error_rate <= 0.0 && latency_spike_rate <= 0.0 &&
           latency_jitter <= 0.0 && outages.empty();
  }
};

struct FaultInjectorStats {
  uint64_t attempts_evaluated = 0;
  uint64_t transient_errors = 0;
  uint64_t latency_spikes = 0;
  uint64_t outage_rejections = 0;
};

/// Per-attempt fault decision, sampled at send time.
struct FaultDecision {
  bool transient_error = false;
  double latency_multiplier = 1.0;
};

class FaultInjector {
 public:
  FaultInjector(FaultSchedule schedule, uint64_t seed)
      : schedule_(std::move(schedule)), rng_(seed) {}

  bool enabled() const { return !schedule_.Empty(); }

  /// Samples the fault decision for one attempt sent at `now`. Rng draw
  /// order is fixed (transient, spike, jitter) for reproducibility; no
  /// draws happen when the corresponding rate is zero.
  FaultDecision OnAttempt(util::SimTime now);

  /// True if `t` falls inside a scheduled full-outage window.
  bool InOutage(util::SimTime t) const;

  /// Counts an attempt rejected because it arrived during an outage.
  void RecordOutageRejection() { ++stats_.outage_rejections; }

  const FaultSchedule& schedule() const { return schedule_; }
  const FaultInjectorStats& stats() const { return stats_; }

 private:
  FaultSchedule schedule_;
  util::Rng rng_;
  FaultInjectorStats stats_;
};

}  // namespace apollo::sim
