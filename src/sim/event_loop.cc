#include "sim/event_loop.h"

namespace apollo::sim {

void EventLoop::At(util::SimTime t, Task task) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(task)});
}

void EventLoop::Run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    // Moving out of the priority queue requires a const_cast because
    // top() is const; the event is popped immediately after.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.task();
  }
}

void EventLoop::RunUntil(util::SimTime deadline) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().time <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.task();
  }
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

}  // namespace apollo::sim
