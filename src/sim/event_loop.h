// Deterministic discrete-event loop.
//
// The geo-distributed testbed of the paper (clients, edge middleware, WAN,
// remote database) is reproduced as actors scheduling continuations on this
// loop in simulated time. Events at equal timestamps run in scheduling
// (FIFO) order, so runs are exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/sim_time.h"

namespace apollo::sim {

class EventLoop {
 public:
  using Task = std::function<void()>;

  util::SimTime now() const { return now_; }

  /// Schedules `task` at absolute simulated time `t` (clamped to now()).
  void At(util::SimTime t, Task task);

  /// Schedules `task` after `d` simulated time.
  void After(util::SimDuration d, Task task) { At(now_ + d, std::move(task)); }

  /// Runs until the queue is empty or Stop() is called.
  void Run();

  /// Runs events with timestamp <= `deadline`; afterwards now() ==
  /// max(now, deadline) if the loop drained, or the stop point.
  void RunUntil(util::SimTime deadline);

  /// Stops Run()/RunUntil() after the current task returns.
  void Stop() { stopped_ = true; }

  uint64_t events_processed() const { return events_processed_; }
  size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    util::SimTime time;
    uint64_t seq;
    Task task;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  util::SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  bool stopped_ = false;
};

}  // namespace apollo::sim
