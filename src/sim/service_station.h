// ServiceStation: a k-server FIFO queue in simulated time.
//
// Models a CPU-bound resource (the database server's worker pool, or an
// Apollo middleware instance's cores). Jobs queue when all servers are
// busy, which is what produces the saturation knees in the scalability
// experiments (paper Figures 6 and 8(c)).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>

#include "sim/event_loop.h"
#include "util/sim_time.h"

namespace apollo::sim {

struct ServiceStationStats {
  uint64_t jobs_completed = 0;
  util::SimDuration total_wait = 0;     // queueing delay only
  util::SimDuration total_service = 0;  // service time only
  uint64_t max_queue_depth = 0;

  double MeanWaitMs() const {
    return jobs_completed == 0
               ? 0.0
               : util::ToMillis(total_wait) /
                     static_cast<double>(jobs_completed);
  }
};

class ServiceStation {
 public:
  ServiceStation(EventLoop* loop, int num_servers)
      : loop_(loop), num_servers_(num_servers) {}

  /// Enqueues a job needing `service_time`; `done` runs at completion.
  void Submit(util::SimDuration service_time, std::function<void()> done);

  int busy_servers() const { return busy_; }
  size_t queue_depth() const { return waiting_.size(); }
  const ServiceStationStats& stats() const { return stats_; }

 private:
  struct Job {
    util::SimDuration service_time;
    std::function<void()> done;
    util::SimTime enqueued_at;
  };

  void StartJob(Job job);

  EventLoop* loop_;
  int num_servers_;
  int busy_ = 0;
  std::queue<Job> waiting_;
  ServiceStationStats stats_;
};

}  // namespace apollo::sim
