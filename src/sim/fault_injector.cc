#include "sim/fault_injector.h"

namespace apollo::sim {

FaultDecision FaultInjector::OnAttempt(util::SimTime now) {
  (void)now;
  FaultDecision d;
  if (!enabled()) return d;
  ++stats_.attempts_evaluated;
  if (schedule_.transient_error_rate > 0.0 &&
      rng_.Bernoulli(schedule_.transient_error_rate)) {
    d.transient_error = true;
    ++stats_.transient_errors;
  }
  if (schedule_.latency_spike_rate > 0.0 &&
      rng_.Bernoulli(schedule_.latency_spike_rate)) {
    d.latency_multiplier *= schedule_.latency_spike_multiplier;
    ++stats_.latency_spikes;
  }
  if (schedule_.latency_jitter > 0.0) {
    d.latency_multiplier *=
        1.0 + schedule_.latency_jitter * (2.0 * rng_.NextDouble() - 1.0);
  }
  return d;
}

bool FaultInjector::InOutage(util::SimTime t) const {
  for (const auto& w : schedule_.outages) {
    if (t >= w.start && t < w.end) return true;
  }
  return false;
}

}  // namespace apollo::sim
