// Latency distributions for simulated network hops and service times.
#pragma once

#include <algorithm>
#include <cmath>

#include "util/rng.h"
#include "util/sim_time.h"

namespace apollo::sim {

/// A samplable latency distribution.
class LatencyModel {
 public:
  enum class Kind { kConstant, kUniform, kLogNormal };

  LatencyModel() : LatencyModel(Kind::kConstant, 0, 0) {}

  static LatencyModel Constant(util::SimDuration d) {
    return LatencyModel(Kind::kConstant, static_cast<double>(d), 0);
  }
  static LatencyModel Uniform(util::SimDuration lo, util::SimDuration hi) {
    return LatencyModel(Kind::kUniform, static_cast<double>(lo),
                        static_cast<double>(hi));
  }
  /// Lognormal around `median` with shape `sigma` (sigma ~0.1-0.3 gives a
  /// realistic WAN jitter tail).
  static LatencyModel LogNormal(util::SimDuration median, double sigma) {
    return LatencyModel(Kind::kLogNormal, static_cast<double>(median),
                        sigma);
  }

  util::SimDuration Sample(util::Rng& rng) const {
    switch (kind_) {
      case Kind::kConstant:
        return static_cast<util::SimDuration>(a_);
      case Kind::kUniform:
        return static_cast<util::SimDuration>(rng.UniformDouble(a_, b_));
      case Kind::kLogNormal: {
        double z = rng.Normal(0.0, 1.0);
        double v = a_ * std::exp(b_ * z);
        return static_cast<util::SimDuration>(std::max(0.0, v));
      }
    }
    return 0;
  }

  /// Central tendency (median for lognormal, midpoint for uniform).
  util::SimDuration Typical() const {
    switch (kind_) {
      case Kind::kConstant:
      case Kind::kLogNormal:
        return static_cast<util::SimDuration>(a_);
      case Kind::kUniform:
        return static_cast<util::SimDuration>((a_ + b_) / 2);
    }
    return 0;
  }

 private:
  LatencyModel(Kind kind, double a, double b) : kind_(kind), a_(a), b_(b) {}

  Kind kind_;
  double a_;
  double b_;
};

}  // namespace apollo::sim
