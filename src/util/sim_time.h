// Simulated-time types.
//
// All latencies and timestamps inside the simulation are expressed in
// microseconds of *simulated* time (SimTime / SimDuration). Helper
// constructors keep experiment configuration readable (Millis(70), ...).
#pragma once

#include <cstdint>
#include <string>

namespace apollo::util {

/// A point in simulated time, microseconds since simulation start.
using SimTime = int64_t;

/// A span of simulated time in microseconds.
using SimDuration = int64_t;

constexpr SimDuration Micros(int64_t us) { return us; }
constexpr SimDuration Millis(double ms) {
  return static_cast<SimDuration>(ms * 1000.0);
}
constexpr SimDuration Seconds(double s) {
  return static_cast<SimDuration>(s * 1e6);
}
constexpr SimDuration Minutes(double m) {
  return static_cast<SimDuration>(m * 60.0 * 1e6);
}

constexpr double ToMillis(SimDuration d) {
  return static_cast<double>(d) / 1000.0;
}
constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / 1e6;
}

/// Formats a duration as e.g. "12.34ms" for logs and reports.
std::string FormatDuration(SimDuration d);

}  // namespace apollo::util
