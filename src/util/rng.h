// Deterministic pseudo-random number generation (xoshiro256**).
//
// All stochastic choices in the simulator (think times, workload mixes,
// latency samples) draw from seeded Rng instances so experiment runs are
// exactly reproducible.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace apollo::util {

/// xoshiro256** generator. Not cryptographic; fast and well distributed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  /// Re-seeds via splitmix64 expansion of `seed`.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t* s = state_;
    uint64_t result = Rotl(s[1] * 5, 7) * 9;
    uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = Rotl(s[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextUint64(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<int64_t>(NextUint64(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Bernoulli(p).
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponential with the given mean.
  double Exponential(double mean) {
    double u = NextDouble();
    if (u >= 1.0) u = 0.9999999999;
    return -mean * std::log(1.0 - u);
  }

  /// Standard normal via Box-Muller.
  double Normal(double mean, double stddev) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 1e-300) u1 = 1e-300;
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.14159265358979323846 * u2);
    return mean + stddev * z;
  }

  /// Picks an index from a discrete distribution given by `weights`.
  /// Weights need not be normalized; all must be >= 0 with positive sum.
  size_t Discrete(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    double r = NextDouble() * total;
    double acc = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (r < acc) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4];
};

/// NURand non-uniform random, as specified by TPC-C clause 2.1.6.
class NuRand {
 public:
  NuRand(int64_t a, int64_t c) : a_(a), c_(c) {}

  int64_t Next(Rng& rng, int64_t x, int64_t y) const {
    int64_t r1 = rng.UniformInt(0, a_);
    int64_t r2 = rng.UniformInt(x, y);
    return (((r1 | r2) + c_) % (y - x + 1)) + x;
  }

 private:
  int64_t a_;
  int64_t c_;
};

/// Zipf-distributed integers over [1, n] with exponent `theta`.
class Zipf {
 public:
  Zipf(uint64_t n, double theta);

  uint64_t Next(Rng& rng) const;
  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace apollo::util
