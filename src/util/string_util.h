// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace apollo::util {

/// Uppercases ASCII characters (SQL keywords are case-insensitive).
std::string ToUpperAscii(std::string_view s);

/// Lowercases ASCII characters.
std::string ToLowerAscii(std::string_view s);

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Joins strings with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix` (case-sensitive).
bool StartsWith(std::string_view s, std::string_view prefix);

/// SQL LIKE pattern match: '%' matches any run, '_' one character.
/// Case-insensitive to mirror MySQL's default collation behaviour.
bool LikeMatch(std::string_view value, std::string_view pattern);

}  // namespace apollo::util
