// Status: lightweight error propagation without exceptions.
//
// Public Apollo APIs return Status (or Result<T>, see result.h) instead of
// throwing, following the Arrow/RocksDB idiom for database C++ codebases.
#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace apollo::util {

/// Error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  ///< malformed input (e.g. SQL syntax error)
  kNotFound,         ///< missing table/column/key
  kAlreadyExists,    ///< duplicate table/key
  kOutOfRange,       ///< index or parameter out of bounds
  kUnimplemented,    ///< feature not supported by the SQL dialect
  kInternal,         ///< invariant violation inside the engine
  kAborted,          ///< operation aborted (e.g. shutdown)
  kTypeError,        ///< value type mismatch during execution
  kUnavailable,      ///< remote endpoint unreachable (transient; retryable)
  kDeadlineExceeded, ///< per-query timeout expired (retryable)
};

/// Human-readable name for a status code ("InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// A success-or-error outcome with an optional message.
///
/// Cheap to copy when OK (no allocation); error states carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  /// True for transport-level failures a caller may retry (the outcome of
  /// the operation is unknown or known not to have happened); execution
  /// and parse errors are deterministic and never retryable.
  bool IsRetryable() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kDeadlineExceeded;
  }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace apollo::util

/// Propagates a non-OK Status from the current function.
#define APOLLO_RETURN_NOT_OK(expr)                  \
  do {                                              \
    ::apollo::util::Status _st = (expr);            \
    if (!_st.ok()) return _st;                      \
  } while (0)
