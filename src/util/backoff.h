// BackoffPolicy: capped exponential backoff with symmetric jitter.
//
// Used by the remote-path retry machinery (net::RemoteDatabase). The base
// delay grows geometrically per attempt and is capped; jitter spreads
// retries of concurrently failing queries so they do not re-converge on
// the remote in lockstep after an outage (thundering herd). All randomness
// comes from a caller-supplied seeded Rng, so retry timing is exactly
// reproducible.
#pragma once

#include <algorithm>

#include "util/rng.h"
#include "util/sim_time.h"

namespace apollo::util {

struct BackoffPolicy {
  /// Delay before the first retry (attempt 0).
  SimDuration initial = Millis(10);
  /// Geometric growth factor per attempt.
  double multiplier = 2.0;
  /// Upper bound on the base delay (before jitter).
  SimDuration cap = Seconds(2);
  /// Fraction of the base delay used as symmetric jitter: the sampled
  /// delay lies in [base * (1 - jitter), base * (1 + jitter)]. 0 disables.
  double jitter = 0.2;

  /// Base (jitter-free) delay for 0-indexed retry `attempt`.
  SimDuration BaseDelay(int attempt) const {
    double d = static_cast<double>(initial);
    for (int i = 0; i < attempt && d < static_cast<double>(cap); ++i) {
      d *= multiplier;
    }
    return std::min(cap, static_cast<SimDuration>(d));
  }

  /// Jittered delay for 0-indexed retry `attempt`; draws one rng sample
  /// when jitter is enabled.
  SimDuration Delay(int attempt, Rng& rng) const {
    SimDuration base = BaseDelay(attempt);
    if (jitter <= 0.0) return base;
    double scale = 1.0 + jitter * (2.0 * rng.NextDouble() - 1.0);
    return std::max<SimDuration>(0, static_cast<SimDuration>(
                                        static_cast<double>(base) * scale));
  }
};

}  // namespace apollo::util
