#include "util/histogram.h"

#include <algorithm>
#include <cmath>

namespace apollo::util {

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

int64_t Histogram::Percentile(double p) const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  // Nearest-rank: ceil(p/100 * N), 1-indexed.
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  if (rank == 0) rank = 1;
  if (rank > samples_.size()) rank = samples_.size();
  return samples_[rank - 1];
}

int64_t Histogram::Min() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return samples_.front();
}

int64_t Histogram::Max() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return samples_.back();
}

void Histogram::Merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
  sorted_ = false;
}

}  // namespace apollo::util
