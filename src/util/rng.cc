#include "util/rng.h"

namespace apollo::util {

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
  return sum;
}
}  // namespace

Zipf::Zipf(uint64_t n, double theta) : n_(n), theta_(theta) {
  zetan_ = Zeta(n, theta);
  double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t Zipf::Next(Rng& rng) const {
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 1;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 2;
  uint64_t v = 1 + static_cast<uint64_t>(
                       static_cast<double>(n_) *
                       std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (v > n_) v = n_;
  return v;
}

}  // namespace apollo::util
