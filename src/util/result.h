// Result<T>: value-or-Status, the Arrow::Result / absl::StatusOr idiom.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace apollo::util {

/// Holds either a value of type T or a non-OK Status.
///
/// Constructing from an OK status is a programming error (asserted).
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit by design, mirrors arrow::Result).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value or `fallback` if in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

}  // namespace apollo::util

/// Evaluates a Result expression; assigns the value to `lhs` or returns
/// its Status from the current function.
#define APOLLO_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define APOLLO_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define APOLLO_ASSIGN_OR_RETURN_NAME(a, b) APOLLO_ASSIGN_OR_RETURN_CONCAT(a, b)

#define APOLLO_ASSIGN_OR_RETURN(lhs, expr) \
  APOLLO_ASSIGN_OR_RETURN_IMPL(            \
      APOLLO_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, expr)
