#include "util/string_util.h"

#include <cctype>

namespace apollo::util {

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

namespace {
bool LikeMatchImpl(std::string_view v, std::string_view p) {
  // Simple recursive matcher; patterns in our workloads are short.
  size_t vi = 0;
  size_t pi = 0;
  while (pi < p.size()) {
    char pc = p[pi];
    if (pc == '%') {
      // Collapse consecutive '%'.
      while (pi < p.size() && p[pi] == '%') ++pi;
      if (pi == p.size()) return true;
      for (size_t k = vi; k <= v.size(); ++k) {
        if (LikeMatchImpl(v.substr(k), p.substr(pi))) return true;
      }
      return false;
    }
    if (vi >= v.size()) return false;
    if (pc != '_' && pc != v[vi]) return false;
    ++vi;
    ++pi;
  }
  return vi == v.size();
}
}  // namespace

bool LikeMatch(std::string_view value, std::string_view pattern) {
  std::string v = ToLowerAscii(value);
  std::string p = ToLowerAscii(pattern);
  return LikeMatchImpl(v, p);
}

}  // namespace apollo::util
