#include "util/sim_time.h"

#include <cstdio>

namespace apollo::util {

std::string FormatDuration(SimDuration d) {
  char buf[64];
  if (d < 1000) {
    std::snprintf(buf, sizeof(buf), "%ldus", static_cast<long>(d));
  } else if (d < 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ToMillis(d));
  } else if (d < 60ll * 1000000) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ToSeconds(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fmin", ToSeconds(d) / 60.0);
  }
  return buf;
}

}  // namespace apollo::util
