// 64-bit hashing utilities.
//
// Apollo identifies query templates by a 64-bit hash of their
// constant-independent parse tree (paper Section 3). These helpers provide a
// fast, stable (process-independent) 64-bit hash plus a streaming combiner.
#pragma once

#include <cstdint>
#include <string_view>

namespace apollo::util {

/// FNV-1a 64-bit offset basis.
inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ull;

/// Streaming FNV-1a based 64-bit hasher with a strong final mix.
class Hasher64 {
 public:
  Hasher64() = default;

  void Update(std::string_view bytes) {
    for (unsigned char c : bytes) {
      state_ ^= c;
      state_ *= kFnvPrime;
    }
  }

  void Update(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      state_ ^= (v >> (i * 8)) & 0xff;
      state_ *= kFnvPrime;
    }
  }

  /// Finalizes with a murmur-style avalanche so nearby inputs diffuse.
  uint64_t Finish() const {
    uint64_t h = state_;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    return h;
  }

 private:
  uint64_t state_ = kFnvOffsetBasis;
};

/// Hashes a byte string to 64 bits.
inline uint64_t Hash64(std::string_view bytes) {
  Hasher64 h;
  h.Update(bytes);
  return h.Finish();
}

/// Combines two 64-bit hashes (order-sensitive).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  Hasher64 h;
  h.Update(a);
  h.Update(b);
  return h.Finish();
}

}  // namespace apollo::util
