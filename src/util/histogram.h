// Latency histogram with exact percentiles.
//
// Records individual samples (simulated microseconds) and answers
// mean / percentile / min / max queries. Used by the benchmark driver to
// report the paper's response-time metrics (mean and tail percentiles).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace apollo::util {

class Histogram {
 public:
  void Record(int64_t value) {
    samples_.push_back(value);
    sorted_ = false;
    sum_ += value;
  }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  int64_t sum() const { return sum_; }

  double Mean() const {
    if (samples_.empty()) return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(samples_.size());
  }

  /// Exact percentile via nearest-rank on the sorted sample set.
  /// `p` in [0, 100].
  int64_t Percentile(double p) const;

  int64_t Min() const;
  int64_t Max() const;

  /// Merges another histogram's samples into this one.
  void Merge(const Histogram& other);

  void Clear() {
    samples_.clear();
    sum_ = 0;
    sorted_ = false;
  }

 private:
  // Sorting is cached between percentile queries; mutable so Percentile()
  // can stay const for callers that only read.
  mutable std::vector<int64_t> samples_;
  mutable bool sorted_ = false;
  int64_t sum_ = 0;

  void EnsureSorted() const;
};

}  // namespace apollo::util
