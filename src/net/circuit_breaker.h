// CircuitBreaker: protects the WAN link from request storms during remote
// outages and drives the middleware's shed-predictions-first policy.
//
// Closed -> Open after `failure_threshold` consecutive transport failures;
// Open -> HalfOpen once `cooldown` simulated time has passed, at which
// point exactly one optional (predictive) request is admitted as a probe;
// probe success closes the breaker, probe failure re-opens it.
//
// Policy split (see DESIGN.md "Fault model & degradation policy"): only
// *optional* work — predictive executions, ADQ reloads — is gated by
// AllowOptional(). Client queries are always admitted; they carry their
// own retry budget and double as probes, so a recovering link is detected
// even with prediction disabled. Further failures while open extend the
// cooldown: a provably-down link never half-opens.
//
// Thread safety: all transitions run under an internal mutex, so the
// half-open probe is admitted exactly once even with concurrent callers.
#pragma once

#include <cstdint>
#include <mutex>

#include "util/sim_time.h"

namespace apollo::net {

struct CircuitBreakerConfig {
  /// Consecutive transport failures that open the breaker.
  int failure_threshold = 8;
  /// Time the breaker stays open before admitting a half-open probe.
  util::SimDuration cooldown = util::Seconds(2);
  /// Randomizes each open period to cooldown * (1 + U[0, probe_jitter]),
  /// desynchronizing half-open probes when many breakers trip on the same
  /// outage (thundering-herd avoidance on recovery). 0 (the default) keeps
  /// the exact legacy deterministic cooldown.
  double probe_jitter = 0.0;
  /// Seed for the jitter PRNG (deterministic per breaker instance).
  uint64_t jitter_seed = 1;
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerConfig config) : config_(config) {}

  /// Gate for sheddable work. Closed: always true. Open: false until the
  /// cooldown elapses, then transitions to HalfOpen and admits exactly one
  /// probe. HalfOpen: false while the probe is outstanding.
  bool AllowOptional(util::SimTime now);

  /// Any response delivered from the remote (even an execution error)
  /// proves the transport works: reset failures and close.
  void OnSuccess();

  /// A transport-level failure (injected fault, outage rejection, or
  /// timeout). Returns true when this failure opened (or re-opened) the
  /// breaker.
  bool OnFailure(util::SimTime now);

  State state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }
  bool IsClosed() const { return state() == State::kClosed; }
  uint64_t opens() const {
    std::lock_guard<std::mutex> lock(mu_);
    return opens_;
  }
  int consecutive_failures() const {
    std::lock_guard<std::mutex> lock(mu_);
    return consecutive_failures_;
  }

 private:
  /// Cooldown with jitter applied: cooldown * (1 + U[0, probe_jitter]).
  /// Caller holds mu_ (advances the PRNG). Identity when probe_jitter = 0.
  util::SimDuration JitteredCooldownLocked();

  CircuitBreakerConfig config_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  util::SimTime open_until_ = 0;
  bool probe_outstanding_ = false;
  uint64_t opens_ = 0;
  uint64_t jitter_state_ = 0;  // xorshift64; seeded lazily from config
};

}  // namespace apollo::net
