// RemoteDatabase: the geo-distant database as seen from the edge node.
//
// Wraps a db::Database behind (a) a WAN round trip sampled from a latency
// distribution and (b) a k-server service station modelling the database
// machine's worker pool. The query executes for real against the in-memory
// engine; its simulated service time is derived from the actual rows the
// executor examined, so expensive queries (joins, aggregations) cost
// proportionally more simulated time — the property Apollo's
// cost-prioritized caching exploits.
//
// The WAN hop is chaos-hardened: a seeded sim::FaultInjector can inject
// transient errors, latency spikes/jitter and full-outage windows, and
// every query runs under a retry loop with per-attempt timeout, capped
// exponential backoff with jitter, a bounded retry budget, and a circuit
// breaker that opens after consecutive transport failures. Predictive
// (prefetch) traffic is sheddable: the middleware consults
// AllowPredictive()/Degraded() to drop optional load first while client
// queries keep their retry budget.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "db/database.h"
#include "net/circuit_breaker.h"
#include "sql/template_cache.h"
#include "obs/observability.h"
#include "sim/event_loop.h"
#include "sim/fault_injector.h"
#include "sim/latency_model.h"
#include "sim/service_station.h"
#include "util/backoff.h"
#include "util/rng.h"

namespace apollo::net {

struct RemoteDbConfig {
  /// Full round-trip network latency per query (edge <-> datacenter).
  sim::LatencyModel rtt = sim::LatencyModel::Constant(util::Millis(70));
  /// Base service time per query on the database machine.
  util::SimDuration exec_base = util::Micros(150);
  /// Additional service time per row the executor examines.
  util::SimDuration exec_per_row = util::Micros(2);
  /// Cap on a single query's modelled service time.
  util::SimDuration exec_cap = util::Millis(40);
  /// Database worker pool width (paper: 16 vCPUs on the DB machine).
  int db_servers = 16;
  uint64_t seed = 42;

  // ---- Fault model & resilience (DESIGN.md "Fault model") ----

  /// Fault schedule; an empty schedule injects nothing and keeps runs
  /// bit-identical to a fault-free build.
  sim::FaultSchedule faults;
  /// Per-attempt timeout; 0 disables timeouts entirely (no timer events
  /// are scheduled, preserving fault-free event counts).
  util::SimDuration query_timeout = 0;
  /// Retry budget for client queries (attempts = 1 + max_retries). Only
  /// transport-level failures (Unavailable / DeadlineExceeded) retry.
  int max_retries = 3;
  /// Retry budget for predictive queries; they are optional, so default 0.
  int predictive_max_retries = 0;
  /// Backoff between retry attempts.
  util::BackoffPolicy backoff;
  /// Circuit breaker: opens after this many consecutive transport
  /// failures; half-opens for a probe after `breaker_cooldown`.
  int breaker_failure_threshold = 8;
  util::SimDuration breaker_cooldown = util::Seconds(2);
  /// Degradation heuristic independent of the breaker: if the most recent
  /// `timeout_spike_threshold` timeouts all happened within
  /// `timeout_spike_window`, the remote path reports Degraded() and the
  /// middleware sheds predictive load.
  int timeout_spike_threshold = 5;
  util::SimDuration timeout_spike_window = util::Seconds(5);
};

/// Thin snapshot view over the registry-backed "remote.*" counters (the
/// obs::MetricsRegistry is the source of truth; see RemoteDatabase::stats).
struct RemoteDbStats {
  uint64_t queries = 0;             // logical queries submitted
  uint64_t predictive_queries = 0;  // ... of which tagged predictive
  uint64_t attempts = 0;            // WAN attempts (>= queries with retries)
  uint64_t errors = 0;              // queries that ultimately failed
  uint64_t client_errors = 0;       // ... failures visible to clients
  uint64_t predictive_errors = 0;   // ... failures of prefetch work
  uint64_t retries = 0;             // retry attempts scheduled
  uint64_t timeouts = 0;            // attempts abandoned by the timeout
  uint64_t late_responses = 0;      // responses landing after their timeout
  uint64_t breaker_opens = 0;       // breaker open/re-open transitions
};

class RemoteDatabase {
 public:
  /// Callback with the execution outcome plus the per-table versions
  /// observed at the database when the query (de)committed.
  using Callback = std::function<void(
      util::Result<common::ResultSetPtr>,
      std::unordered_map<std::string, uint64_t> versions)>;

  /// `obs` is the per-run observability bundle; when null a private one
  /// is created so the "remote.*" instruments always exist.
  RemoteDatabase(sim::EventLoop* loop, db::Database* database,
                 RemoteDbConfig config, obs::Observability* obs = nullptr);

  /// Executes `sql` remotely. `predictive` tags prefetch work for stats
  /// and selects the (smaller) predictive retry budget. The callback
  /// fires exactly once after outbound hop + queueing + service + return
  /// hop of simulated time — or once the retry budget is exhausted.
  void Execute(const std::string& sql, Callback callback,
               bool predictive = false);

  /// Prepared variant: ships a cached template + bound parameters instead
  /// of SQL text, so the remote edge never re-parses. Same WAN/retry/fault
  /// model and identical simulated cost as Execute of the instantiated
  /// text. Requires `tpl->statement` to be non-null.
  void ExecutePrepared(sql::CachedTemplatePtr tpl,
                       std::vector<common::Value> params, Callback callback,
                       bool predictive = false);

  /// True while the remote path is degraded: breaker not closed, or a
  /// recent burst of timeouts. Drives shed-predictions-first.
  bool Degraded() const;

  /// Gate for sheddable prefetch work. False while degraded, except that
  /// a half-open breaker admits exactly one prediction as the probe.
  bool AllowPredictive();

  /// Assembles the legacy stats view from the registry counters.
  const RemoteDbStats& stats() const;
  const CircuitBreaker& breaker() const { return breaker_; }
  const sim::FaultInjector& fault_injector() const { return injector_; }
  const sim::ServiceStationStats& station_stats() const {
    return station_.stats();
  }
  db::Database* database() { return database_; }

 private:
  /// Retry state for one logical query.
  struct Query {
    std::string sql;  // empty on the prepared path
    /// Prepared path: shared immutable template + bound values. When `tpl`
    /// is set the remote edge executes tpl->statement with `params` and
    /// never parses text.
    sql::CachedTemplatePtr tpl;
    std::vector<common::Value> params;
    Callback callback;
    bool predictive = false;
    int retries_left = 0;
    int attempt = 0;        // attempts started
    int live_attempt = -1;  // attempt the timeout/response race is for
    bool live_open = false; // false once the live attempt settled
  };
  using QueryPtr = std::shared_ptr<Query>;

  void StartAttempt(const QueryPtr& q);
  /// Claims the settle right for `attempt`; false if it already settled
  /// (timed out or superseded), in which case the response is "late".
  bool ClaimAttempt(const QueryPtr& q, int attempt, bool is_response);
  /// Transport-level failure: feeds the breaker and retries or fails.
  void HandleTransportFailure(const QueryPtr& q, util::Status status);
  /// Delivers the final error to the caller (with error accounting).
  void FinishError(const QueryPtr& q, const util::Status& status);
  void NoteTimeout(util::SimTime now);
  bool TimeoutSpike(util::SimTime now) const;

  sim::EventLoop* loop_;
  db::Database* database_;
  RemoteDbConfig config_;
  sim::ServiceStation station_;
  util::Rng rng_;
  sim::FaultInjector injector_;
  CircuitBreaker breaker_;
  /// Timestamps of the most recent timeouts (bounded by the spike
  /// threshold) for the timeout-spike degradation heuristic.
  std::deque<util::SimTime> recent_timeouts_;

  /// Registry-backed instruments ("remote.*"); the legacy RemoteDbStats
  /// struct is assembled from these on demand.
  std::unique_ptr<obs::Observability> owned_obs_;  // fallback when none given
  obs::Observability* obs_;
  struct Counters {
    obs::Counter* queries;
    obs::Counter* predictive_queries;
    obs::Counter* attempts;
    obs::Counter* errors;
    obs::Counter* client_errors;
    obs::Counter* predictive_errors;
    obs::Counter* retries;
    obs::Counter* timeouts;
    obs::Counter* late_responses;
    obs::Counter* breaker_opens;
  };
  Counters c_{};
  mutable RemoteDbStats stats_view_;
};

}  // namespace apollo::net
