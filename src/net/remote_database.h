// RemoteDatabase: the geo-distant database as seen from the edge node.
//
// Wraps a db::Database behind (a) a WAN round trip sampled from a latency
// distribution and (b) a k-server service station modelling the database
// machine's worker pool. The query executes for real against the in-memory
// engine; its simulated service time is derived from the actual rows the
// executor examined, so expensive queries (joins, aggregations) cost
// proportionally more simulated time — the property Apollo's
// cost-prioritized caching exploits.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>

#include "db/database.h"
#include "sim/event_loop.h"
#include "sim/latency_model.h"
#include "sim/service_station.h"
#include "util/rng.h"

namespace apollo::net {

struct RemoteDbConfig {
  /// Full round-trip network latency per query (edge <-> datacenter).
  sim::LatencyModel rtt = sim::LatencyModel::Constant(util::Millis(70));
  /// Base service time per query on the database machine.
  util::SimDuration exec_base = util::Micros(150);
  /// Additional service time per row the executor examines.
  util::SimDuration exec_per_row = util::Micros(2);
  /// Cap on a single query's modelled service time.
  util::SimDuration exec_cap = util::Millis(40);
  /// Database worker pool width (paper: 16 vCPUs on the DB machine).
  int db_servers = 16;
  uint64_t seed = 42;
};

struct RemoteDbStats {
  uint64_t queries = 0;
  uint64_t predictive_queries = 0;
  uint64_t errors = 0;
};

class RemoteDatabase {
 public:
  /// Callback with the execution outcome plus the per-table versions
  /// observed at the database when the query (de)committed.
  using Callback = std::function<void(
      util::Result<common::ResultSetPtr>,
      std::unordered_map<std::string, uint64_t> versions)>;

  RemoteDatabase(sim::EventLoop* loop, db::Database* database,
                 RemoteDbConfig config);

  /// Executes `sql` remotely. `predictive` tags prefetch work for stats.
  /// The callback fires after outbound hop + queueing + service + return
  /// hop of simulated time.
  void Execute(const std::string& sql, Callback callback,
               bool predictive = false);

  const RemoteDbStats& stats() const { return stats_; }
  const sim::ServiceStationStats& station_stats() const {
    return station_.stats();
  }
  db::Database* database() { return database_; }

 private:
  sim::EventLoop* loop_;
  db::Database* database_;
  RemoteDbConfig config_;
  sim::ServiceStation station_;
  util::Rng rng_;
  RemoteDbStats stats_;
};

}  // namespace apollo::net
