#include "net/remote_database.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "sql/parser.h"

namespace apollo::net {

RemoteDatabase::RemoteDatabase(sim::EventLoop* loop, db::Database* database,
                               RemoteDbConfig config, obs::Observability* obs)
    : loop_(loop),
      database_(database),
      config_(config),
      station_(loop, config.db_servers),
      rng_(config.seed),
      injector_(config.faults, config.seed ^ 0xf4a17b0c5d3e2a91ull),
      breaker_({config.breaker_failure_threshold, config.breaker_cooldown}) {
  if (obs == nullptr) {
    owned_obs_ = std::make_unique<obs::Observability>();
    obs = owned_obs_.get();
  }
  obs_ = obs;
  obs::MetricsRegistry& m = obs_->metrics;
  c_.queries = m.RegisterCounter("remote.queries");
  c_.predictive_queries = m.RegisterCounter("remote.predictive_queries");
  c_.attempts = m.RegisterCounter("remote.attempts");
  c_.errors = m.RegisterCounter("remote.errors");
  c_.client_errors = m.RegisterCounter("remote.client_errors");
  c_.predictive_errors = m.RegisterCounter("remote.predictive_errors");
  c_.retries = m.RegisterCounter("remote.retries");
  c_.timeouts = m.RegisterCounter("remote.timeouts");
  c_.late_responses = m.RegisterCounter("remote.late_responses");
  c_.breaker_opens = m.RegisterCounter("remote.breaker_opens");
}

const RemoteDbStats& RemoteDatabase::stats() const {
  stats_view_.queries = c_.queries->Value();
  stats_view_.predictive_queries = c_.predictive_queries->Value();
  stats_view_.attempts = c_.attempts->Value();
  stats_view_.errors = c_.errors->Value();
  stats_view_.client_errors = c_.client_errors->Value();
  stats_view_.predictive_errors = c_.predictive_errors->Value();
  stats_view_.retries = c_.retries->Value();
  stats_view_.timeouts = c_.timeouts->Value();
  stats_view_.late_responses = c_.late_responses->Value();
  stats_view_.breaker_opens = c_.breaker_opens->Value();
  return stats_view_;
}

void RemoteDatabase::Execute(const std::string& sql, Callback callback,
                             bool predictive) {
  c_.queries->Inc();
  if (predictive) c_.predictive_queries->Inc();

  auto q = std::make_shared<Query>();
  q->sql = sql;
  q->callback = std::move(callback);
  q->predictive = predictive;
  q->retries_left =
      std::max(0, predictive ? config_.predictive_max_retries
                             : config_.max_retries);
  StartAttempt(q);
}

void RemoteDatabase::ExecutePrepared(sql::CachedTemplatePtr tpl,
                                     std::vector<common::Value> params,
                                     Callback callback, bool predictive) {
  c_.queries->Inc();
  if (predictive) c_.predictive_queries->Inc();

  auto q = std::make_shared<Query>();
  q->tpl = std::move(tpl);
  q->params = std::move(params);
  q->callback = std::move(callback);
  q->predictive = predictive;
  q->retries_left =
      std::max(0, predictive ? config_.predictive_max_retries
                             : config_.max_retries);
  StartAttempt(q);
}

bool RemoteDatabase::ClaimAttempt(const QueryPtr& q, int attempt,
                                  bool is_response) {
  if (!q->live_open || q->live_attempt != attempt) {
    // Already settled: the timeout fired first (and possibly a retry is
    // underway). A real response arriving now is wasted WAN work.
    if (is_response) c_.late_responses->Inc();
    return false;
  }
  q->live_open = false;
  return true;
}

void RemoteDatabase::StartAttempt(const QueryPtr& q) {
  c_.attempts->Inc();
  const int attempt = q->attempt++;
  q->live_attempt = attempt;
  q->live_open = true;

  if (config_.query_timeout > 0) {
    loop_->After(config_.query_timeout, [this, q, attempt]() {
      if (!ClaimAttempt(q, attempt, /*is_response=*/false)) return;
      const util::SimTime now = loop_->now();
      c_.timeouts->Inc();
      NoteTimeout(now);
      HandleTransportFailure(
          q, util::Status::DeadlineExceeded("remote query timeout"));
    });
  }

  const sim::FaultDecision fault = injector_.OnAttempt(loop_->now());
  util::SimDuration rtt = config_.rtt.Sample(rng_);
  if (fault.latency_multiplier != 1.0) {
    rtt = static_cast<util::SimDuration>(static_cast<double>(rtt) *
                                         fault.latency_multiplier);
  }
  util::SimDuration outbound = rtt / 2;
  util::SimDuration inbound = rtt - outbound;

  loop_->After(outbound, [this, q, attempt, inbound,
                          transient = fault.transient_error]() mutable {
    // Transport-level rejections turn around at the remote edge without
    // consuming database service time.
    if (injector_.InOutage(loop_->now())) {
      injector_.RecordOutageRejection();
      loop_->After(inbound, [this, q, attempt]() {
        if (!ClaimAttempt(q, attempt, /*is_response=*/true)) return;
        HandleTransportFailure(
            q, util::Status::Unavailable("remote outage window"));
      });
      return;
    }
    if (transient) {
      loop_->After(inbound, [this, q, attempt]() {
        if (!ClaimAttempt(q, attempt, /*is_response=*/true)) return;
        HandleTransportFailure(
            q, util::Status::Unavailable("transient network error"));
      });
      return;
    }
    // Text path: parse on arrival; a malformed query costs only the base
    // service time. Prepared path: the cached statement arrives with the
    // request, so there is nothing to parse.
    std::unique_ptr<sql::Statement> parsed;
    const sql::Statement* statement = nullptr;
    if (q->tpl != nullptr) {
      statement = q->tpl->statement.get();
    } else {
      auto stmt = sql::Parse(q->sql);
      if (!stmt.ok()) {
        auto status = stmt.status();
        station_.Submit(config_.exec_base, [this, q, attempt, status,
                                            inbound]() {
          loop_->After(inbound, [this, q, attempt, status]() {
            if (!ClaimAttempt(q, attempt, /*is_response=*/true)) return;
            breaker_.OnSuccess();  // the link worked; the query is just bad
            FinishError(q, status);
          });
        });
        return;
      }
      parsed = std::move(*stmt);
      statement = parsed.get();
    }
    // Execute for real to learn the true cost, then charge simulated
    // service time proportional to the work done.
    auto result = q->tpl != nullptr
                      ? database_->ExecutePrepared(*statement, q->params)
                      : database_->ExecuteStatement(*statement);
    util::SimDuration service = config_.exec_base;
    std::unordered_map<std::string, uint64_t> versions;
    if (result.ok()) {
      service += static_cast<util::SimDuration>(
          (*result)->rows_examined() * config_.exec_per_row);
      service = std::min(service, config_.exec_cap);
      versions = database_->VersionsOf(statement->TablesTouched());
    }
    station_.Submit(service, [this, q, attempt, inbound,
                              result = std::move(result),
                              versions = std::move(versions)]() mutable {
      loop_->After(inbound, [this, q, attempt, result = std::move(result),
                             versions = std::move(versions)]() mutable {
        if (!ClaimAttempt(q, attempt, /*is_response=*/true)) return;
        breaker_.OnSuccess();
        if (!result.ok()) {
          FinishError(q, result.status());
          return;
        }
        q->callback(std::move(result), std::move(versions));
      });
    });
  });
}

void RemoteDatabase::HandleTransportFailure(const QueryPtr& q,
                                            util::Status status) {
  if (breaker_.OnFailure(loop_->now())) c_.breaker_opens->Inc();
  if (status.IsRetryable() && q->retries_left > 0) {
    --q->retries_left;
    c_.retries->Inc();
    // q->attempt was already incremented for the failed attempt, so the
    // 0-indexed retry number is attempt - 1.
    util::SimDuration delay = config_.backoff.Delay(q->attempt - 1, rng_);
    loop_->After(delay, [this, q]() { StartAttempt(q); });
    return;
  }
  FinishError(q, status);
}

void RemoteDatabase::FinishError(const QueryPtr& q,
                                 const util::Status& status) {
  c_.errors->Inc();
  if (q->predictive) {
    c_.predictive_errors->Inc();
  } else {
    c_.client_errors->Inc();
  }
  q->callback(status, {});
}

void RemoteDatabase::NoteTimeout(util::SimTime now) {
  recent_timeouts_.push_back(now);
  while (recent_timeouts_.size() >
         static_cast<size_t>(std::max(1, config_.timeout_spike_threshold))) {
    recent_timeouts_.pop_front();
  }
}

bool RemoteDatabase::TimeoutSpike(util::SimTime now) const {
  if (config_.timeout_spike_threshold <= 0) return false;
  if (recent_timeouts_.size() <
      static_cast<size_t>(config_.timeout_spike_threshold)) {
    return false;
  }
  return recent_timeouts_.front() >= now - config_.timeout_spike_window;
}

bool RemoteDatabase::Degraded() const {
  return !breaker_.IsClosed() || TimeoutSpike(loop_->now());
}

bool RemoteDatabase::AllowPredictive() {
  if (TimeoutSpike(loop_->now())) return false;
  return breaker_.AllowOptional(loop_->now());
}

}  // namespace apollo::net
