#include "net/remote_database.h"

#include <algorithm>
#include <memory>

#include "sql/parser.h"

namespace apollo::net {

RemoteDatabase::RemoteDatabase(sim::EventLoop* loop, db::Database* database,
                               RemoteDbConfig config)
    : loop_(loop),
      database_(database),
      config_(config),
      station_(loop, config.db_servers),
      rng_(config.seed) {}

void RemoteDatabase::Execute(const std::string& sql, Callback callback,
                             bool predictive) {
  ++stats_.queries;
  if (predictive) ++stats_.predictive_queries;

  util::SimDuration rtt = config_.rtt.Sample(rng_);
  util::SimDuration outbound = rtt / 2;
  util::SimDuration inbound = rtt - outbound;

  loop_->After(outbound, [this, sql, inbound,
                          callback = std::move(callback)]() mutable {
    // Parse on arrival; a malformed query costs only the base service time.
    auto stmt = sql::Parse(sql);
    if (!stmt.ok()) {
      ++stats_.errors;
      auto status = stmt.status();
      station_.Submit(config_.exec_base, [this, status, inbound,
                                          callback =
                                              std::move(callback)]() mutable {
        loop_->After(inbound, [status, callback = std::move(callback)]() {
          callback(status, {});
        });
      });
      return;
    }
    // Execute for real to learn the true cost, then charge simulated
    // service time proportional to the work done.
    auto statement = std::shared_ptr<sql::Statement>(std::move(*stmt));
    auto result = database_->ExecuteStatement(*statement);
    util::SimDuration service = config_.exec_base;
    std::unordered_map<std::string, uint64_t> versions;
    if (result.ok()) {
      service += static_cast<util::SimDuration>(
          (*result)->rows_examined() * config_.exec_per_row);
      service = std::min(service, config_.exec_cap);
      versions = database_->VersionsOf(statement->TablesTouched());
    } else {
      ++stats_.errors;
    }
    station_.Submit(service, [this, inbound, result = std::move(result),
                              versions = std::move(versions),
                              callback = std::move(callback)]() mutable {
      loop_->After(inbound, [result = std::move(result),
                             versions = std::move(versions),
                             callback = std::move(callback)]() {
        callback(std::move(result), std::move(versions));
      });
    });
  });
}

}  // namespace apollo::net
