#include "net/circuit_breaker.h"

namespace apollo::net {

bool CircuitBreaker::AllowOptional(util::SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now < open_until_) return false;
      state_ = State::kHalfOpen;
      probe_outstanding_ = true;
      return true;
    case State::kHalfOpen:
      if (probe_outstanding_) return false;
      probe_outstanding_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::OnSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  probe_outstanding_ = false;
  state_ = State::kClosed;
}

bool CircuitBreaker::OnFailure(util::SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  ++consecutive_failures_;
  probe_outstanding_ = false;
  switch (state_) {
    case State::kHalfOpen:
      // Probe failed: back to open for another cooldown.
      state_ = State::kOpen;
      open_until_ = now + config_.cooldown;
      ++opens_;
      return true;
    case State::kClosed:
      if (consecutive_failures_ >= config_.failure_threshold) {
        state_ = State::kOpen;
        open_until_ = now + config_.cooldown;
        ++opens_;
        return true;
      }
      return false;
    case State::kOpen:
      // Still failing (client traffic keeps probing): push the half-open
      // point out so optional work stays shed while the link is down.
      open_until_ = now + config_.cooldown;
      return false;
  }
  return false;
}

}  // namespace apollo::net
