#include "net/circuit_breaker.h"

namespace apollo::net {

util::SimDuration CircuitBreaker::JitteredCooldownLocked() {
  if (config_.probe_jitter <= 0.0) return config_.cooldown;
  if (jitter_state_ == 0) {
    // splitmix64 finalizer: small consecutive seeds (the common case for
    // per-instance ids) would otherwise make xorshift64's first outputs
    // nearly identical, defeating the desynchronization.
    uint64_t z = (config_.jitter_seed != 0 ? config_.jitter_seed : 1) +
                 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    jitter_state_ = (z ^ (z >> 31)) | 1;
  }
  // xorshift64: cheap, deterministic per seed, no <random> state to drag in.
  uint64_t x = jitter_state_;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  jitter_state_ = x;
  const double u =
      static_cast<double>(x >> 11) / static_cast<double>(1ull << 53);
  return static_cast<util::SimDuration>(
      static_cast<double>(config_.cooldown) *
      (1.0 + config_.probe_jitter * u));
}

bool CircuitBreaker::AllowOptional(util::SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now < open_until_) return false;
      state_ = State::kHalfOpen;
      probe_outstanding_ = true;
      return true;
    case State::kHalfOpen:
      if (probe_outstanding_) return false;
      probe_outstanding_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::OnSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  probe_outstanding_ = false;
  state_ = State::kClosed;
}

bool CircuitBreaker::OnFailure(util::SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  ++consecutive_failures_;
  probe_outstanding_ = false;
  switch (state_) {
    case State::kHalfOpen:
      // Probe failed: back to open for another cooldown.
      state_ = State::kOpen;
      open_until_ = now + JitteredCooldownLocked();
      ++opens_;
      return true;
    case State::kClosed:
      if (consecutive_failures_ >= config_.failure_threshold) {
        state_ = State::kOpen;
        open_until_ = now + JitteredCooldownLocked();
        ++opens_;
        return true;
      }
      return false;
    case State::kOpen:
      // Still failing (client traffic keeps probing): push the half-open
      // point out so optional work stays shed while the link is down.
      open_until_ = now + JitteredCooldownLocked();
      return false;
  }
  return false;
}

}  // namespace apollo::net
