// VersionVector: per-table version stamps (paper Section 3.2).
//
// Each client session tracks the most recent version it has observed for
// every table; cache entries are stamped with the versions they reflect. A
// cached entry is usable by a client iff, for every table the query reads,
// the entry's stamp is at least the client's version.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace apollo::cache {

class VersionVector {
 public:
  VersionVector() = default;

  /// Version for a table; tables never seen are version 0.
  uint64_t Get(const std::string& table) const {
    auto it = v_.find(table);
    return it == v_.end() ? 0 : it->second;
  }

  void Set(const std::string& table, uint64_t version) {
    v_[table] = version;
  }

  /// Raises this vector's component to at least `version`.
  void AdvanceTo(const std::string& table, uint64_t version) {
    auto& cur = v_[table];
    if (version > cur) cur = version;
  }

  /// Componentwise max over `tables` of `other` into this vector.
  void MergeMax(const VersionVector& other,
                const std::vector<std::string>& tables) {
    for (const auto& t : tables) AdvanceTo(t, other.Get(t));
  }

  /// True iff this[t] >= other[t] for every t in `tables`.
  bool DominatesFor(const VersionVector& other,
                    const std::vector<std::string>& tables) const {
    for (const auto& t : tables) {
      if (Get(t) < other.Get(t)) return false;
    }
    return true;
  }

  /// Sum over `tables` of max(0, this[t] - other[t]) — how far reading an
  /// entry stamped with this vector would advance a client at `other`.
  uint64_t DistanceFrom(const VersionVector& other,
                        const std::vector<std::string>& tables) const {
    uint64_t d = 0;
    for (const auto& t : tables) {
      uint64_t mine = Get(t);
      uint64_t theirs = other.Get(t);
      if (mine > theirs) d += mine - theirs;
    }
    return d;
  }

  /// Exact map equality: the same tables mapped to the same versions.
  /// Unlike comparing through Get(), a table missing from one side is
  /// never treated as "present at version 0".
  bool SameEntries(const VersionVector& other) const {
    return v_ == other.v_;
  }

  size_t size() const { return v_.size(); }
  const std::unordered_map<std::string, uint64_t>& entries() const {
    return v_;
  }

  std::string ToString() const;

 private:
  std::unordered_map<std::string, uint64_t> v_;
};

}  // namespace apollo::cache
