// CountMinSketch: fixed-size frequency estimator for TinyLFU admission
// (DESIGN.md Section 13).
//
// `depth` rows of `width` saturating 8-bit counters; each Add increments
// one counter per row (distinct mixes of the key hash), each Estimate
// returns the minimum over the rows. The estimate never undercounts a
// key's true Add count up to the 255 saturation point — it can only
// overcount on hash collisions — which is exactly the guarantee TinyLFU
// admission needs (a popular incumbent is never judged colder than it is).
// Halve() ages every counter by one bit-shift, preserving relative order,
// so popularity from an old phase decays instead of pinning the cache.
//
// Not thread-safe: the KvCache embeds one sketch per shard under that
// shard's mutex.
#pragma once

#include <cstdint>
#include <vector>

namespace apollo::cache {

class CountMinSketch {
 public:
  /// `width` is rounded up to a power of two (>= 16) for masked indexing;
  /// `depth` is clamped to [1, 8].
  CountMinSketch(size_t width, size_t depth)
      : width_mask_(RoundUpPow2(width < 16 ? 16 : width) - 1),
        depth_(depth < 1 ? 1 : (depth > 8 ? 8 : depth)),
        cells_(depth_ * (width_mask_ + 1), 0) {}

  /// Records one occurrence of the key. Saturates at 255 per cell.
  void Add(uint64_t key_hash) {
    for (size_t row = 0; row < depth_; ++row) {
      uint8_t& c = cells_[row * (width_mask_ + 1) + Index(key_hash, row)];
      if (c < UINT8_MAX) ++c;
    }
  }

  /// Estimated occurrence count: min over rows. Never undercounts the true
  /// Add count (up to saturation); may overcount on collisions.
  uint32_t Estimate(uint64_t key_hash) const {
    uint32_t est = UINT8_MAX;
    for (size_t row = 0; row < depth_; ++row) {
      uint32_t c = cells_[row * (width_mask_ + 1) + Index(key_hash, row)];
      if (c < est) est = c;
    }
    return est;
  }

  /// Ages the sketch: every counter is halved (rounding down). Relative
  /// order of any two estimates is preserved.
  void Halve() {
    for (uint8_t& c : cells_) c = static_cast<uint8_t>(c >> 1);
  }

  size_t width() const { return width_mask_ + 1; }
  size_t depth() const { return depth_; }

 private:
  static size_t RoundUpPow2(size_t v) {
    size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  /// splitmix64 finalizer over (hash + row salt): cheap, well-mixed,
  /// deterministic across runs (no seeding — reproducibility is part of
  /// the bench contract).
  size_t Index(uint64_t h, size_t row) const {
    uint64_t x = h + 0x9E3779B97F4A7C15ull * (row + 1);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return static_cast<size_t>(x) & width_mask_;
  }

  size_t width_mask_;
  size_t depth_;
  std::vector<uint8_t> cells_;  // depth_ rows, row-major
};

}  // namespace apollo::cache
