#include "cache/kv_cache.h"

#include <algorithm>

#include "util/hash.h"

namespace apollo::cache {

KvCache::KvCache(size_t capacity_bytes, size_t num_shards,
                 obs::Observability* obs, const std::string& metric_prefix)
    : capacity_bytes_(capacity_bytes) {
  if (num_shards == 0) num_shards = 1;
  shard_capacity_ = std::max<size_t>(1, capacity_bytes / num_shards);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (obs == nullptr) {
    owned_obs_ = std::make_unique<obs::Observability>();
    obs = owned_obs_.get();
  }
  obs_ = obs;
  obs::MetricsRegistry& m = obs_->metrics;
  hits_ = m.RegisterCounter(metric_prefix + "hits", num_shards);
  misses_ = m.RegisterCounter(metric_prefix + "misses", num_shards);
  puts_ = m.RegisterCounter(metric_prefix + "puts", num_shards);
  evictions_ = m.RegisterCounter(metric_prefix + "evictions", num_shards);
}

size_t KvCache::ShardIndexFor(std::string_view key) const {
  return util::Hash64(key) % shards_.size();
}

KvCache::Shard& KvCache::ShardFor(std::string_view key) {
  return *shards_[ShardIndexFor(key)];
}

const KvCache::Shard& KvCache::ShardFor(std::string_view key) const {
  return *shards_[ShardIndexFor(key)];
}

void KvCache::TraceDeparture(const Node& node) {
  if (!node.predicted || !obs_->trace.enabled()) return;
  obs_->trace.Record(node.hits > 0 ? obs::TraceEventType::kPredictionEvicted
                                   : obs::TraceEventType::kPredictionWasted,
                     /*client=*/-1, node.template_id,
                     obs::SkipReason::kNone, /*aux=*/node.hits);
}

std::optional<CacheEntry> KvCache::GetCompatible(
    std::string_view key, const VersionVector& client_vv,
    const std::vector<std::string>& tables) {
  const size_t idx = ShardIndexFor(key);
  Shard& shard = *shards_[idx];
  std::lock_guard lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_->Inc(1, idx);
    return std::nullopt;
  }
  LruList::iterator best = shard.lru.end();
  uint64_t best_distance = UINT64_MAX;
  for (auto node_it : it->second) {
    const CacheEntry& e = node_it->entry;
    if (!e.stamp.DominatesFor(client_vv, tables)) continue;
    uint64_t d = e.stamp.DistanceFrom(client_vv, tables);
    if (d < best_distance) {
      best_distance = d;
      best = node_it;
    }
  }
  if (best == shard.lru.end()) {
    misses_->Inc(1, idx);
    return std::nullopt;
  }
  hits_->Inc(1, idx);
  ++best->hits;
  best->last_use = ++shard.use_seq;
  if (best->predicted && obs_->trace.enabled()) {
    obs_->trace.Record(obs::TraceEventType::kPredictionHit, /*client=*/-1,
                       best->template_id, obs::SkipReason::kNone,
                       /*aux=*/best->hits);
  }
  // Bump LRU: splice to front.
  shard.lru.splice(shard.lru.begin(), shard.lru, best);
  return best->entry;
}

std::optional<CacheEntry> KvCache::GetAny(std::string_view key) {
  const size_t idx = ShardIndexFor(key);
  Shard& shard = *shards_[idx];
  std::lock_guard lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.empty()) {
    misses_->Inc(1, idx);
    return std::nullopt;
  }
  // Serve the key's most-recently-used entry (highest use_seq), not the
  // first-inserted one, so the bump below reinforces the true MRU.
  auto node_it = it->second.front();
  for (auto candidate : it->second) {
    if (candidate->last_use > node_it->last_use) node_it = candidate;
  }
  hits_->Inc(1, idx);
  ++node_it->hits;
  node_it->last_use = ++shard.use_seq;
  if (node_it->predicted && obs_->trace.enabled()) {
    obs_->trace.Record(obs::TraceEventType::kPredictionHit, /*client=*/-1,
                       node_it->template_id, obs::SkipReason::kNone,
                       /*aux=*/node_it->hits);
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, node_it);
  return node_it->entry;
}

bool KvCache::ContainsCompatible(std::string_view key,
                                 const VersionVector& client_vv,
                                 const std::vector<std::string>& tables) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  for (auto node_it : it->second) {
    if (node_it->entry.stamp.DominatesFor(client_vv, tables)) return true;
  }
  return false;
}

std::optional<CacheEntry> KvCache::GetStaleWithin(
    std::string_view key, const VersionVector& floor_vv,
    const std::vector<std::string>& tables, int64_t min_put_time_us) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return std::nullopt;
  LruList::const_iterator best = shard.lru.end();
  for (auto node_it : it->second) {
    if (node_it->put_time_us <= 0 ||
        node_it->put_time_us < min_put_time_us) {
      continue;  // unknown age or older than the staleness bound
    }
    // The entry may be stale w.r.t. the session's full vector, but it must
    // still cover the session's own writes.
    if (!node_it->entry.stamp.DominatesFor(floor_vv, tables)) continue;
    if (best == shard.lru.end() || node_it->put_time_us > best->put_time_us) {
      best = node_it;
    }
  }
  if (best == shard.lru.end()) return std::nullopt;
  return best->entry;
}

void KvCache::Put(const std::string& key, common::ResultSetPtr result,
                  VersionVector stamp, bool predicted, uint64_t template_id,
                  int64_t put_time_us) {
  const size_t idx = ShardIndexFor(key);
  Shard& shard = *shards_[idx];
  std::lock_guard lock(shard.mu);
  size_t bytes = key.size() + (result ? result->ByteSize() : 0) + 64;

  auto& nodes = shard.map[key];
  // Replace an entry with an identical stamp (same data, refreshed). The
  // stamps must map exactly the same tables to the same versions —
  // comparing through Get() would treat distinct never-written tables
  // (all at implicit version 0) as equal and merge unrelated entries.
  for (auto node_it : nodes) {
    if (node_it->entry.stamp.SameEntries(stamp)) {
      // An unconsumed prediction overwritten in place never helped anyone.
      TraceDeparture(*node_it);
      shard.bytes_used -= node_it->bytes;
      node_it->entry.result = std::move(result);
      node_it->entry.stamp = std::move(stamp);
      node_it->bytes = bytes;
      node_it->predicted = predicted;
      node_it->hits = 0;
      node_it->template_id = template_id;
      node_it->last_use = ++shard.use_seq;
      node_it->put_time_us = put_time_us;
      shard.bytes_used += bytes;
      puts_->Inc(1, idx);
      shard.lru.splice(shard.lru.begin(), shard.lru, node_it);
      EvictIfNeeded(shard, idx, shard_capacity_);
      return;
    }
  }
  Node node;
  node.key = key;
  node.entry = CacheEntry{std::move(result), std::move(stamp)};
  node.bytes = bytes;
  node.predicted = predicted;
  node.template_id = template_id;
  node.last_use = ++shard.use_seq;
  node.put_time_us = put_time_us;
  shard.lru.push_front(std::move(node));
  nodes.push_back(shard.lru.begin());
  shard.bytes_used += bytes;
  puts_->Inc(1, idx);
  EvictIfNeeded(shard, idx, shard_capacity_);
}

void KvCache::EvictIfNeeded(Shard& shard, size_t shard_index,
                            size_t shard_capacity) {
  while (shard.bytes_used > shard_capacity && !shard.lru.empty()) {
    auto victim = std::prev(shard.lru.end());
    TraceDeparture(*victim);
    auto map_it = shard.map.find(victim->key);
    if (map_it != shard.map.end()) {
      auto& vec = map_it->second;
      vec.erase(std::remove(vec.begin(), vec.end(), victim), vec.end());
      if (vec.empty()) shard.map.erase(map_it);
    }
    shard.bytes_used -= victim->bytes;
    shard.lru.erase(victim);
    evictions_->Inc(1, shard_index);
  }
}

void KvCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    shard->lru.clear();
    shard->map.clear();
    shard->bytes_used = 0;
  }
}

CacheStats KvCache::stats() const {
  CacheStats out;
  out.hits = hits_->Value();
  out.misses = misses_->Value();
  out.puts = puts_->Value();
  out.evictions = evictions_->Value();
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    out.bytes_used += shard->bytes_used;
    out.entries += shard->lru.size();
  }
  return out;
}

}  // namespace apollo::cache
