#include "cache/kv_cache.h"

#include <algorithm>
#include <cassert>

#include "util/hash.h"

namespace apollo::cache {

KvCache::KvCache(size_t capacity_bytes, size_t num_shards,
                 obs::Observability* obs, const std::string& metric_prefix,
                 const KvCacheOptions& options)
    : capacity_bytes_(capacity_bytes), options_(options) {
  if (num_shards == 0) num_shards = 1;
  // Split the budget exactly: base share per shard, the remainder spread
  // one byte each over the first shards. Shard budgets sum to
  // capacity_bytes, so the cache can never hold more than its budget
  // (the old max(1, capacity / num_shards) both leaked the remainder and
  // over-committed when capacity < num_shards).
  const size_t base = capacity_bytes / num_shards;
  const size_t remainder = capacity_bytes % num_shards;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->capacity = base + (i < remainder ? 1 : 0);
    if (options_.policy != CachePolicy::kLru) {
      shard->policy =
          std::make_unique<TinyLfuPolicy>(options_, shard->capacity);
    }
    shards_.push_back(std::move(shard));
  }
  if (obs == nullptr) {
    owned_obs_ = std::make_unique<obs::Observability>();
    obs = owned_obs_.get();
  }
  obs_ = obs;
  obs::MetricsRegistry& m = obs_->metrics;
  hits_ = m.RegisterCounter(metric_prefix + "hits", num_shards);
  misses_ = m.RegisterCounter(metric_prefix + "misses", num_shards);
  puts_ = m.RegisterCounter(metric_prefix + "puts", num_shards);
  evictions_ = m.RegisterCounter(metric_prefix + "evictions", num_shards);
  if (options_.policy != CachePolicy::kLru) {
    oversize_rejected_ =
        m.RegisterCounter(metric_prefix + "oversize_rejected", num_shards);
    admission_rejected_ =
        m.RegisterCounter(metric_prefix + "admission_rejected", num_shards);
    sketch_resets_ =
        m.RegisterCounter(metric_prefix + "sketch_resets", num_shards);
    evictions_window_ =
        m.RegisterCounter(metric_prefix + "evictions_window", num_shards);
    evictions_main_ =
        m.RegisterCounter(metric_prefix + "evictions_main", num_shards);
  } else {
    // Under the default LRU the oversize gate still applies, but the
    // counter stays out of the registry so legacy runs export an
    // unchanged instrument set (their stdout is diffed byte-for-byte);
    // stats() reads it either way.
    owned_oversize_rejected_ = std::make_unique<obs::Counter>(num_shards);
    oversize_rejected_ = owned_oversize_rejected_.get();
  }
}

size_t KvCache::ShardIndexFor(std::string_view key) const {
  return util::Hash64(key) % shards_.size();
}

const KvCache::Shard& KvCache::ShardFor(std::string_view key) const {
  return *shards_[ShardIndexFor(key)];
}

size_t KvCache::MaxEntryBytes(const Shard& shard) const {
  if (shard.policy == nullptr) return shard.capacity;
  // A TinyLFU entry must eventually fit the main segment; letting a
  // bigger one into the window would only recreate the insert-then-
  // self-evict churn the oversize gate exists to stop.
  return shard.capacity - shard.policy->window_capacity();
}

void KvCache::Touch(Shard& shard, LruList::iterator it) {
  it->last_use = ++shard.use_seq;
  LruList& list = it->segment == Segment::kMain ? shard.main : shard.window;
  list.splice(list.begin(), list, it);
}

void KvCache::RecordAccess(Shard& shard, size_t shard_index,
                           uint64_t key_hash) {
  if (shard.policy == nullptr) return;
  if (shard.policy->RecordAccess(key_hash)) {
    sketch_resets_->Inc(1, shard_index);
  }
}

double KvCache::ScoreOf(const Shard& shard, const Node& node) const {
  // A superseded version has a strictly better replacement resident for
  // the same key: its key-level frequency must not protect it, or the
  // main segment fills with dead versions of hot keys (frequency
  // pinning, the classic failure of per-key admission in a versioned
  // cache).
  if (node.superseded) return 0.0;
  const double score = shard.policy->Score(
      node.key_hash, node.predicted, node.miss_cost_us, node.probability);
  // The cost-aware policy scores value DENSITY (GDSF-style): the cache
  // budget is bytes, so a 100-row result must be worth 100x a 1-row one
  // to displace it. Plain TinyLFU stays count-based (classic behaviour).
  if (options_.policy == CachePolicy::kTinyLfuCost) {
    return score / static_cast<double>(node.bytes == 0 ? 1 : node.bytes);
  }
  return score;
}

// True iff every table `old_stamp` vouches for is at least as fresh in
// `new_stamp`: any client the old entry could serve, the new one can too
// (the old version is dead weight under capacity pressure).
static bool Supersedes(const VersionVector& new_stamp,
                       const VersionVector& old_stamp) {
  for (const auto& [table, version] : old_stamp.entries()) {
    if (new_stamp.Get(table) < version) return false;
  }
  return true;
}

void KvCache::TraceDeparture(const Node& node) {
  if (!node.predicted || !obs_->trace.enabled()) return;
  obs_->trace.Record(node.hits > 0 ? obs::TraceEventType::kPredictionEvicted
                                   : obs::TraceEventType::kPredictionWasted,
                     /*client=*/-1, node.template_id,
                     obs::SkipReason::kNone, /*aux=*/node.hits);
}

std::optional<CacheEntry> KvCache::GetCompatible(
    std::string_view key, const VersionVector& client_vv,
    const std::vector<std::string>& tables) {
  const uint64_t key_hash = util::Hash64(key);
  const size_t idx = key_hash % shards_.size();
  Shard& shard = *shards_[idx];
  std::lock_guard lock(shard.mu);
  // TinyLFU counts the request stream: every client lookup feeds the
  // sketch, hit or miss, so admission sees true key popularity.
  RecordAccess(shard, idx, key_hash);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_->Inc(1, idx);
    return std::nullopt;
  }
  bool found = false;
  LruList::iterator best;
  uint64_t best_distance = UINT64_MAX;
  for (auto node_it : it->second) {
    const CacheEntry& e = node_it->entry;
    if (!e.stamp.DominatesFor(client_vv, tables)) continue;
    uint64_t d = e.stamp.DistanceFrom(client_vv, tables);
    if (d < best_distance) {
      best_distance = d;
      best = node_it;
      found = true;
    }
  }
  if (!found) {
    misses_->Inc(1, idx);
    return std::nullopt;
  }
  hits_->Inc(1, idx);
  ++best->hits;
  if (best->predicted && obs_->trace.enabled()) {
    obs_->trace.Record(obs::TraceEventType::kPredictionHit, /*client=*/-1,
                       best->template_id, obs::SkipReason::kNone,
                       /*aux=*/best->hits);
  }
  Touch(shard, best);
  return best->entry;
}

std::optional<CacheEntry> KvCache::GetAny(std::string_view key) {
  const uint64_t key_hash = util::Hash64(key);
  const size_t idx = key_hash % shards_.size();
  Shard& shard = *shards_[idx];
  std::lock_guard lock(shard.mu);
  RecordAccess(shard, idx, key_hash);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.empty()) {
    misses_->Inc(1, idx);
    return std::nullopt;
  }
  // Serve the key's most-recently-used entry (highest use_seq), not the
  // first-inserted one, so the bump below reinforces the true MRU.
  auto node_it = it->second.front();
  for (auto candidate : it->second) {
    if (candidate->last_use > node_it->last_use) node_it = candidate;
  }
  hits_->Inc(1, idx);
  ++node_it->hits;
  if (node_it->predicted && obs_->trace.enabled()) {
    obs_->trace.Record(obs::TraceEventType::kPredictionHit, /*client=*/-1,
                       node_it->template_id, obs::SkipReason::kNone,
                       /*aux=*/node_it->hits);
  }
  Touch(shard, node_it);
  return node_it->entry;
}

bool KvCache::ContainsCompatible(std::string_view key,
                                 const VersionVector& client_vv,
                                 const std::vector<std::string>& tables) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  for (auto node_it : it->second) {
    if (node_it->entry.stamp.DominatesFor(client_vv, tables)) return true;
  }
  return false;
}

std::optional<CacheEntry> KvCache::GetStaleWithin(
    std::string_view key, const VersionVector& floor_vv,
    const std::vector<std::string>& tables, int64_t min_put_time_us) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return std::nullopt;
  const Node* best = nullptr;
  for (auto node_it : it->second) {
    if (node_it->put_time_us <= 0 ||
        node_it->put_time_us < min_put_time_us) {
      continue;  // unknown age or older than the staleness bound
    }
    // The entry may be stale w.r.t. the session's full vector, but it must
    // still cover the session's own writes.
    if (!node_it->entry.stamp.DominatesFor(floor_vv, tables)) continue;
    if (best == nullptr || node_it->put_time_us > best->put_time_us) {
      best = &*node_it;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->entry;
}

void KvCache::Put(const std::string& key, common::ResultSetPtr result,
                  VersionVector stamp, const PutAttrs& attrs) {
  const uint64_t key_hash = util::Hash64(key);
  const size_t idx = key_hash % shards_.size();
  Shard& shard = *shards_[idx];
  std::lock_guard lock(shard.mu);
  size_t bytes = key.size() + (result ? result->ByteSize() : 0) + 64;

  // An entry that can never fit its shard is rejected up front: the old
  // path inserted it, immediately self-evicted it, and thereby charged a
  // put AND an eviction plus a spurious prediction_wasted trace for a
  // result that never had a chance to serve anyone.
  if (bytes > MaxEntryBytes(shard)) {
    oversize_rejected_->Inc(1, idx);
    return;
  }

  // Demand fills witness real client misses — feed the sketch so the
  // key's popularity includes them. Predicted fills are speculation, not
  // observed demand; their worth enters through the confidence-weighted
  // score instead.
  if (!attrs.predicted) RecordAccess(shard, idx, key_hash);

  auto& nodes = shard.map[key];
  // Replace an entry with an identical stamp (same data, refreshed). The
  // stamps must map exactly the same tables to the same versions —
  // comparing through Get() would treat distinct never-written tables
  // (all at implicit version 0) as equal and merge unrelated entries.
  for (auto node_it : nodes) {
    if (node_it->entry.stamp.SameEntries(stamp)) {
      // An unconsumed prediction overwritten in place never helped anyone.
      TraceDeparture(*node_it);
      SegmentBytes(shard, node_it->segment) -= node_it->bytes;
      node_it->entry.result = std::move(result);
      node_it->entry.stamp = std::move(stamp);
      node_it->bytes = bytes;
      node_it->predicted = attrs.predicted;
      node_it->hits = 0;
      node_it->template_id = attrs.template_id;
      node_it->put_time_us = attrs.put_time_us;
      node_it->miss_cost_us = attrs.miss_cost_us;
      node_it->probability = attrs.probability;
      SegmentBytes(shard, node_it->segment) += bytes;
      puts_->Inc(1, idx);
      Touch(shard, node_it);
      MaintainCapacity(shard, idx);
      return;
    }
  }
  Node node;
  node.key = key;
  node.key_hash = key_hash;
  node.entry = CacheEntry{std::move(result), std::move(stamp)};
  node.bytes = bytes;
  node.predicted = attrs.predicted;
  node.segment = Segment::kWindow;
  node.template_id = attrs.template_id;
  node.last_use = ++shard.use_seq;
  node.put_time_us = attrs.put_time_us;
  node.miss_cost_us = attrs.miss_cost_us;
  node.probability = attrs.probability;
  shard.window.push_front(std::move(node));
  nodes.push_back(shard.window.begin());
  shard.window_bytes += bytes;
  // TinyLFU policies demote versions this insert supersedes to their
  // segment's tail with score 0, so they are the next victims instead of
  // sitting in main protected by their key's frequency. (kLru keeps the
  // seed's behavior: stale versions simply age out.)
  if (shard.policy != nullptr) {
    const auto new_it = shard.window.begin();
    for (auto it : nodes) {
      if (it == new_it || it->superseded) continue;
      if (Supersedes(new_it->entry.stamp, it->entry.stamp)) {
        it->superseded = true;
        LruList& list =
            it->segment == Segment::kMain ? shard.main : shard.window;
        list.splice(list.end(), list, it);
      }
    }
  }
  puts_->Inc(1, idx);
  MaintainCapacity(shard, idx);
}

void KvCache::EvictNode(Shard& shard, size_t shard_index, LruList::iterator it,
                        obs::Counter* tagged) {
  TraceDeparture(*it);
  auto map_it = shard.map.find(it->key);
  if (map_it != shard.map.end()) {
    auto& vec = map_it->second;
    vec.erase(std::remove(vec.begin(), vec.end(), it), vec.end());
    if (vec.empty()) shard.map.erase(map_it);
  }
  SegmentBytes(shard, it->segment) -= it->bytes;
  LruList& list = it->segment == Segment::kMain ? shard.main : shard.window;
  list.erase(it);
  evictions_->Inc(1, shard_index);
  if (tagged != nullptr) tagged->Inc(1, shard_index);
}

void KvCache::MaintainCapacity(Shard& shard, size_t shard_index) {
  if (shard.policy == nullptr) {
    // Legacy LRU: evict from the global (window) tail under the shard's
    // whole budget.
    while (shard.window_bytes > shard.capacity && !shard.window.empty()) {
      EvictNode(shard, shard_index, std::prev(shard.window.end()), nullptr);
    }
    return;
  }
  const size_t window_cap = shard.policy->window_capacity();
  const size_t main_cap = shard.capacity - window_cap;
  // An in-place replacement can inflate a main resident past the budget.
  while (shard.main_bytes > main_cap && !shard.main.empty()) {
    EvictNode(shard, shard_index, std::prev(shard.main.end()),
              evictions_main_);
  }
  // Window overflow: the LRU window candidate faces frequency admission
  // against the main tail victim. new >= victim => admit (evicting as
  // many victims as its bytes need); otherwise the candidate dies and
  // the incumbents stay.
  while (shard.window_bytes > window_cap && !shard.window.empty()) {
    auto candidate = std::prev(shard.window.end());
    const size_t cb = candidate->bytes;  // <= main_cap per the oversize gate
    bool admitted = true;
    while (shard.main_bytes + cb > main_cap && !shard.main.empty()) {
      auto victim = std::prev(shard.main.end());
      if (ScoreOf(shard, *candidate) >= ScoreOf(shard, *victim)) {
        EvictNode(shard, shard_index, victim, evictions_main_);
      } else {
        admission_rejected_->Inc(1, shard_index);
        EvictNode(shard, shard_index, candidate, evictions_window_);
        admitted = false;
        break;
      }
    }
    if (!admitted) continue;
    shard.window_bytes -= cb;
    shard.main_bytes += cb;
    candidate->segment = Segment::kMain;
    shard.main.splice(shard.main.begin(), shard.window, candidate);
  }
}

void KvCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    // Predicted entries dropped by a reset still end their lifecycle:
    // without the departure trace, wasted-prediction accounting
    // undercounted across Clear(). Non-predicted entries trace nothing
    // and no counters move, so the reset stays stats-neutral.
    for (const Node& node : shard->window) TraceDeparture(node);
    for (const Node& node : shard->main) TraceDeparture(node);
    shard->window.clear();
    shard->main.clear();
    shard->map.clear();
    shard->window_bytes = 0;
    shard->main_bytes = 0;
  }
}

CacheStats KvCache::stats() const {
  CacheStats out;
  out.hits = hits_->Value();
  out.misses = misses_->Value();
  out.puts = puts_->Value();
  out.evictions = evictions_->Value();
  out.oversize_rejected = oversize_rejected_->Value();
  if (admission_rejected_ != nullptr) {
    out.admission_rejected = admission_rejected_->Value();
    out.sketch_resets = sketch_resets_->Value();
    out.evictions_window = evictions_window_->Value();
    out.evictions_main = evictions_main_->Value();
  }
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    out.bytes_used += shard->window_bytes + shard->main_bytes;
    out.entries += shard->window.size() + shard->main.size();
  }
  assert(out.bytes_used <= capacity_bytes_);
  return out;
}

}  // namespace apollo::cache
