#include "cache/kv_cache.h"

#include <algorithm>

#include "util/hash.h"

namespace apollo::cache {

KvCache::KvCache(size_t capacity_bytes, size_t num_shards)
    : capacity_bytes_(capacity_bytes) {
  if (num_shards == 0) num_shards = 1;
  shard_capacity_ = std::max<size_t>(1, capacity_bytes / num_shards);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

KvCache::Shard& KvCache::ShardFor(const std::string& key) {
  return *shards_[util::Hash64(key) % shards_.size()];
}

const KvCache::Shard& KvCache::ShardFor(const std::string& key) const {
  return *shards_[util::Hash64(key) % shards_.size()];
}

std::optional<CacheEntry> KvCache::GetCompatible(
    const std::string& key, const VersionVector& client_vv,
    const std::vector<std::string>& tables) {
  Shard& shard = ShardFor(key);
  std::lock_guard lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.stats.misses;
    return std::nullopt;
  }
  LruList::iterator best = shard.lru.end();
  uint64_t best_distance = UINT64_MAX;
  for (auto node_it : it->second) {
    const CacheEntry& e = node_it->entry;
    if (!e.stamp.DominatesFor(client_vv, tables)) continue;
    uint64_t d = e.stamp.DistanceFrom(client_vv, tables);
    if (d < best_distance) {
      best_distance = d;
      best = node_it;
    }
  }
  if (best == shard.lru.end()) {
    ++shard.stats.misses;
    return std::nullopt;
  }
  ++shard.stats.hits;
  // Bump LRU: splice to front.
  shard.lru.splice(shard.lru.begin(), shard.lru, best);
  return best->entry;
}

std::optional<CacheEntry> KvCache::GetAny(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.empty()) {
    ++shard.stats.misses;
    return std::nullopt;
  }
  auto node_it = it->second.front();
  ++shard.stats.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, node_it);
  return node_it->entry;
}

bool KvCache::ContainsCompatible(const std::string& key,
                                 const VersionVector& client_vv,
                                 const std::vector<std::string>& tables) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  for (auto node_it : it->second) {
    if (node_it->entry.stamp.DominatesFor(client_vv, tables)) return true;
  }
  return false;
}

void KvCache::Put(const std::string& key, common::ResultSetPtr result,
                  VersionVector stamp) {
  Shard& shard = ShardFor(key);
  std::lock_guard lock(shard.mu);
  size_t bytes = key.size() + (result ? result->ByteSize() : 0) + 64;

  auto& nodes = shard.map[key];
  // Replace an entry with an identical stamp (same data, refreshed).
  for (auto node_it : nodes) {
    bool same = true;
    for (const auto& [t, v] : stamp.entries()) {
      if (node_it->entry.stamp.Get(t) != v) {
        same = false;
        break;
      }
    }
    if (same && node_it->entry.stamp.size() == stamp.size()) {
      shard.bytes_used -= node_it->bytes;
      node_it->entry.result = std::move(result);
      node_it->entry.stamp = std::move(stamp);
      node_it->bytes = bytes;
      shard.bytes_used += bytes;
      shard.lru.splice(shard.lru.begin(), shard.lru, node_it);
      ++shard.stats.puts;
      EvictIfNeeded(shard, shard_capacity_);
      return;
    }
  }
  shard.lru.push_front(
      Node{key, CacheEntry{std::move(result), std::move(stamp)}, bytes});
  nodes.push_back(shard.lru.begin());
  shard.bytes_used += bytes;
  ++shard.stats.puts;
  EvictIfNeeded(shard, shard_capacity_);
}

void KvCache::EvictIfNeeded(Shard& shard, size_t shard_capacity) {
  while (shard.bytes_used > shard_capacity && !shard.lru.empty()) {
    auto victim = std::prev(shard.lru.end());
    auto map_it = shard.map.find(victim->key);
    if (map_it != shard.map.end()) {
      auto& vec = map_it->second;
      vec.erase(std::remove(vec.begin(), vec.end(), victim), vec.end());
      if (vec.empty()) shard.map.erase(map_it);
    }
    shard.bytes_used -= victim->bytes;
    shard.lru.erase(victim);
    ++shard.stats.evictions;
  }
}

void KvCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    shard->lru.clear();
    shard->map.clear();
    shard->bytes_used = 0;
  }
}

CacheStats KvCache::stats() const {
  CacheStats out;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    out.hits += shard->stats.hits;
    out.misses += shard->stats.misses;
    out.puts += shard->stats.puts;
    out.evictions += shard->stats.evictions;
    out.bytes_used += shard->bytes_used;
    out.entries += shard->lru.size();
  }
  return out;
}

}  // namespace apollo::cache
