#include "cache/tinylfu_policy.h"

#include <algorithm>

namespace apollo::cache {

const char* CachePolicyName(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kLru: return "lru";
    case CachePolicy::kTinyLfu: return "tinylfu";
    case CachePolicy::kTinyLfuCost: return "tinylfu_cost";
  }
  return "unknown";
}

TinyLfuPolicy::TinyLfuPolicy(const KvCacheOptions& options,
                             size_t shard_capacity)
    : options_(options),
      sketch_(options.sketch_width, options.sketch_depth) {
  double fraction = std::clamp(options_.window_fraction, 0.0, 1.0);
  window_capacity_ = static_cast<size_t>(
      static_cast<double>(shard_capacity) * fraction);
  // Leave the main segment at least half the shard: a window consuming
  // everything would make admission vacuous.
  window_capacity_ = std::min(window_capacity_, shard_capacity / 2);
  // Aging interval: roughly 10x the shard's entry population (assuming
  // ~256-byte entries), floored so tiny test shards still age eventually.
  reset_adds_ = options_.sketch_reset_adds != 0
                    ? options_.sketch_reset_adds
                    : std::max<size_t>(1024, 10 * (shard_capacity / 256));
}

bool TinyLfuPolicy::RecordAccess(uint64_t key_hash) {
  sketch_.Add(key_hash);
  if (++adds_since_reset_ >= reset_adds_) {
    sketch_.Halve();
    adds_since_reset_ = 0;
    return true;
  }
  return false;
}

double TinyLfuPolicy::Score(uint64_t key_hash, bool predicted,
                            double miss_cost_us, double probability) const {
  // +1 so a never-seen key still ranks by cost instead of flattening to 0.
  const double freq = static_cast<double>(sketch_.Estimate(key_hash)) + 1.0;
  if (options_.policy != CachePolicy::kTinyLfuCost) return freq;
  double cost = miss_cost_us > 0.0 ? miss_cost_us
                                   : options_.default_miss_cost_us;
  // Confidence floor keeps a cold transition graph from zeroing the score
  // of every early prediction.
  double confidence =
      predicted ? std::clamp(probability, 0.01, 1.0) : 1.0;
  return freq * cost * confidence;
}

}  // namespace apollo::cache
