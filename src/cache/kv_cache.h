// KvCache: the Memcached stand-in — a sharded, byte-budgeted LRU cache of
// versioned query result sets.
//
// A key (canonical query text) may hold several entries with different
// version stamps; GetCompatible returns the usable entry that minimizes the
// client's version-vector advance (paper Section 3.3: "use the earliest
// version"). Eviction is global-LRU per shard under a per-shard byte budget.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/version_vector.h"
#include "common/result_set.h"

namespace apollo::cache {

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t puts = 0;
  uint64_t evictions = 0;
  uint64_t bytes_used = 0;
  uint64_t entries = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// A cached result with its version stamp.
struct CacheEntry {
  common::ResultSetPtr result;
  VersionVector stamp;
};

class KvCache {
 public:
  /// `capacity_bytes` is the total budget across all shards.
  explicit KvCache(size_t capacity_bytes, size_t num_shards = 8);

  /// Looks up `key`. Among entries whose stamp dominates `client_vv` on
  /// `tables`, returns the one with minimal distance from `client_vv`
  /// (ties: least-recently stored). Bumps LRU on hit.
  std::optional<CacheEntry> GetCompatible(
      const std::string& key, const VersionVector& client_vv,
      const std::vector<std::string>& tables);

  /// Returns any entry for `key` regardless of versions (plain-Memcached
  /// behaviour, used by baselines that skip session checks).
  std::optional<CacheEntry> GetAny(const std::string& key);

  /// Inserts an entry. If an entry with an identical stamp on the entry's
  /// tables already exists for this key, it is replaced.
  void Put(const std::string& key, common::ResultSetPtr result,
           VersionVector stamp);

  /// True if a compatible entry exists (no LRU bump, no stats change).
  bool ContainsCompatible(const std::string& key,
                          const VersionVector& client_vv,
                          const std::vector<std::string>& tables) const;

  void Clear();

  CacheStats stats() const;
  size_t capacity_bytes() const { return capacity_bytes_; }

 private:
  struct Node {
    std::string key;
    CacheEntry entry;
    size_t bytes;
  };
  using LruList = std::list<Node>;

  struct Shard {
    mutable std::mutex mu;
    LruList lru;  // front = most recent
    std::unordered_map<std::string, std::vector<LruList::iterator>> map;
    size_t bytes_used = 0;
    CacheStats stats;
  };

  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;
  static void EvictIfNeeded(Shard& shard, size_t shard_capacity);

  size_t capacity_bytes_;
  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace apollo::cache
