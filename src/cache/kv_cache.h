// KvCache: the Memcached stand-in — a sharded, byte-budgeted cache of
// versioned query result sets.
//
// A key (canonical query text) may hold several entries with different
// version stamps; GetCompatible returns the usable entry that minimizes the
// client's version-vector advance (paper Section 3.3: "use the earliest
// version"). Eviction runs one of three policies (DESIGN.md Section 13):
// the default per-shard global LRU, W-TinyLFU (a small admission window
// feeding a Count-Min-Sketch-guarded main segment), or W-TinyLFU with
// Apollo's cost-aware score (frequency x observed miss cost x prediction
// confidence). The total byte budget is split exactly across shards
// (base + 1 for the first capacity % num_shards shards), so
// stats().bytes_used never exceeds capacity_bytes; entries too large to
// ever fit their shard are rejected up front (oversize_rejected) instead
// of churning through an insert-then-self-evict cycle.
//
// Hit/miss/put/eviction counters live in the per-run obs::MetricsRegistry
// (one accumulation cell per shard, summed on read); CacheStats is a thin
// snapshot view kept for compatibility. Entries remember whether they were
// inserted by a predictive execution so the cache can emit the tail of the
// prediction lifecycle into the obs::TraceLog: prediction_hit when a
// client read is served by a predicted entry, prediction_evicted /
// prediction_wasted when one leaves the cache with / without ever serving
// a hit — including entries dropped by Clear(), so wasted-prediction
// accounting stays complete across resets.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/cache_policy.h"
#include "cache/tinylfu_policy.h"
#include "cache/version_vector.h"
#include "common/result_set.h"
#include "obs/observability.h"

namespace apollo::cache {

/// Thin snapshot view over the registry-backed cache counters (the
/// obs::MetricsRegistry is the source of truth; see KvCache::stats).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t puts = 0;
  uint64_t evictions = 0;
  uint64_t bytes_used = 0;
  uint64_t entries = 0;
  /// Entries rejected up front because they could never fit their shard.
  uint64_t oversize_rejected = 0;
  /// TinyLFU policies only (0 under kLru): window candidates denied entry
  /// to the main segment, sketch halvings, and the eviction split by
  /// segment (evictions == evictions_window + evictions_main then).
  uint64_t admission_rejected = 0;
  uint64_t sketch_resets = 0;
  uint64_t evictions_window = 0;
  uint64_t evictions_main = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// A cached result with its version stamp.
struct CacheEntry {
  common::ResultSetPtr result;
  VersionVector stamp;
};

class KvCache {
 public:
  /// Insert-time attributes beyond the payload itself. The cost fields
  /// feed cost-aware TinyLFU scoring and are ignored under kLru.
  struct PutAttrs {
    /// Marks results inserted by a predictive execution (prediction
    /// lifecycle tracing + confidence-weighted scoring).
    bool predicted = false;
    /// Labels the entry's trace events (0 if unknown).
    uint64_t template_id = 0;
    /// Wall clock at insert (caller-defined epoch; 0 = unknown). Bounds
    /// how long the entry may later be served stale — entries with
    /// put_time 0 are never served by GetStaleWithin.
    int64_t put_time_us = 0;
    /// Observed cost of the miss this entry absorbs: the remote round
    /// trip (in microseconds) that produced the result. 0 = unobserved
    /// (scoring falls back to KvCacheOptions::default_miss_cost_us).
    double miss_cost_us = 0.0;
    /// Transition probability of the prediction that fetched this entry;
    /// ignored for demand (non-predicted) entries.
    double probability = 1.0;
  };

  /// `capacity_bytes` is the total budget across all shards, split
  /// exactly (the first capacity % num_shards shards get one extra byte).
  /// `obs` is the per-run observability bundle (a private one is created
  /// when null); `metric_prefix` qualifies instrument names when several
  /// caches share one registry (e.g. "cache0."). `options` selects the
  /// eviction policy; the default is the legacy LRU.
  explicit KvCache(size_t capacity_bytes, size_t num_shards = 8,
                   obs::Observability* obs = nullptr,
                   const std::string& metric_prefix = "cache.",
                   const KvCacheOptions& options = {});

  /// Looks up `key`. Among entries whose stamp dominates `client_vv` on
  /// `tables`, returns the one with minimal distance from `client_vv`
  /// (ties: least-recently stored). Bumps recency on hit and records the
  /// access in the shard's frequency sketch (TinyLFU policies). Keys are
  /// taken as string_view and looked up heterogeneously — no temporary
  /// std::string is built on the read path.
  std::optional<CacheEntry> GetCompatible(
      std::string_view key, const VersionVector& client_vv,
      const std::vector<std::string>& tables);

  /// Returns any entry for `key` regardless of versions (plain-Memcached
  /// behaviour, used by baselines that skip session checks). Prefers the
  /// most-recently-used entry for the key.
  std::optional<CacheEntry> GetAny(std::string_view key);

  /// Inserts an entry. If an entry whose stamp maps exactly the same
  /// tables to the same versions already exists for this key, it is
  /// replaced (same data, refreshed). Entries that could never fit their
  /// shard are rejected up front (counted in oversize_rejected, no
  /// departure trace — the entry never lived).
  void Put(const std::string& key, common::ResultSetPtr result,
           VersionVector stamp, const PutAttrs& attrs);

  /// Legacy positional form (no cost attributes).
  void Put(const std::string& key, common::ResultSetPtr result,
           VersionVector stamp, bool predicted = false,
           uint64_t template_id = 0, int64_t put_time_us = 0) {
    PutAttrs attrs;
    attrs.predicted = predicted;
    attrs.template_id = template_id;
    attrs.put_time_us = put_time_us;
    Put(key, std::move(result), std::move(stamp), attrs);
  }

  /// Brownout serve-stale-within-bound lookup (DESIGN.md Section 12):
  /// among entries for `key` whose stamp still dominates `floor_vv` on
  /// `tables` (the session's OWN writes — read-your-writes holds even
  /// stale) and whose put_time is >= `min_put_time_us` (age bound),
  /// returns the freshest by put_time. Stats-NEUTRAL: no hit/miss counter
  /// moves and no recency bump, so enabling brownout cannot skew the cache
  /// metrics the benches compare; callers account the stale serve in their
  /// own instruments.
  std::optional<CacheEntry> GetStaleWithin(
      std::string_view key, const VersionVector& floor_vv,
      const std::vector<std::string>& tables, int64_t min_put_time_us) const;

  /// True if a compatible entry exists (no recency bump, no stats change).
  bool ContainsCompatible(std::string_view key,
                          const VersionVector& client_vv,
                          const std::vector<std::string>& tables) const;

  /// Drops every entry. Predicted entries still emit their departure
  /// trace (prediction_evicted / prediction_wasted) so wasted-prediction
  /// accounting survives resets; counters other than the trace are
  /// untouched (no evictions are charged).
  void Clear();

  /// Assembles the legacy stats view from the registry counters.
  CacheStats stats() const;
  size_t capacity_bytes() const { return capacity_bytes_; }
  size_t num_shards() const { return shards_.size(); }
  CachePolicy policy() const { return options_.policy; }

 private:
  /// Which segment a node currently lives in. Under kLru everything stays
  /// in the window list (the legacy single LRU).
  enum class Segment : uint8_t { kWindow, kMain };

  struct Node {
    std::string key;
    uint64_t key_hash = 0;  // Hash64(key); feeds shard pick + sketch
    CacheEntry entry;
    size_t bytes = 0;
    bool predicted = false;     // inserted by a predictive execution
    /// A newer same-key version dominating this one is resident: evict
    /// first (TinyLFU policies only; kLru lets stale versions age out).
    bool superseded = false;
    Segment segment = Segment::kWindow;
    uint64_t hits = 0;          // times this entry served a read
    uint64_t template_id = 0;   // trace label (0 if unknown)
    uint64_t last_use = 0;      // shard use_seq at last touch (MRU order)
    int64_t put_time_us = 0;    // wall clock at insert (0 = unknown)
    double miss_cost_us = 0.0;  // observed remote trip (0 = unknown)
    double probability = 1.0;   // prediction confidence
  };
  using LruList = std::list<Node>;

  /// Transparent hash so the per-shard key map accepts std::string_view
  /// lookups (C++20 heterogeneous find) without materializing a string.
  struct KeyHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  struct Shard {
    mutable std::mutex mu;
    LruList window;  // front = most recent; the only list under kLru
    LruList main;    // TinyLFU main segment (empty under kLru)
    std::unordered_map<std::string, std::vector<LruList::iterator>, KeyHash,
                       std::equal_to<>>
        map;
    size_t capacity = 0;  // this shard's exact byte budget
    size_t window_bytes = 0;
    size_t main_bytes = 0;
    uint64_t use_seq = 0;  // bumped on every touch; orders entries per key
    /// Admission state (sketch + scoring); null under kLru.
    std::unique_ptr<TinyLfuPolicy> policy;
  };

  size_t ShardIndexFor(std::string_view key) const;
  const Shard& ShardFor(std::string_view key) const;

  /// Largest entry the shard could ever hold: the whole shard under kLru,
  /// the main segment under TinyLFU (window residents must eventually be
  /// admitted or die).
  size_t MaxEntryBytes(const Shard& shard) const;
  size_t& SegmentBytes(Shard& shard, Segment segment) const {
    return segment == Segment::kMain ? shard.main_bytes
                                     : shard.window_bytes;
  }
  /// Bumps recency within the node's segment list.
  void Touch(Shard& shard, LruList::iterator it);
  /// Feeds one access into the shard's sketch (TinyLFU only), counting
  /// halvings.
  void RecordAccess(Shard& shard, size_t shard_index, uint64_t key_hash);
  double ScoreOf(const Shard& shard, const Node& node) const;
  /// Removes `it` from its segment list, the key map, and the byte
  /// accounting; charges the total plus the policy-tagged counter.
  void EvictNode(Shard& shard, size_t shard_index, LruList::iterator it,
                 obs::Counter* tagged);
  /// Restores the shard's capacity invariants after an insert or replace:
  /// legacy tail eviction under kLru; window-overflow admission against
  /// the sketch-scored main victim under TinyLFU.
  void MaintainCapacity(Shard& shard, size_t shard_index);
  /// Records the lifecycle trace event for an entry leaving the cache.
  void TraceDeparture(const Node& node);

  size_t capacity_bytes_;
  KvCacheOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::unique_ptr<obs::Observability> owned_obs_;  // fallback when none given
  obs::Observability* obs_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* puts_;
  obs::Counter* evictions_;
  /// Registered under TinyLFU policies; under kLru it is an owned,
  /// unregistered counter (the gate still applies and stats() still
  /// reports it) so default runs export an unchanged instrument set.
  obs::Counter* oversize_rejected_;
  std::unique_ptr<obs::Counter> owned_oversize_rejected_;
  /// TinyLFU-only instruments; null (and unregistered) under kLru so
  /// default-policy runs export an unchanged instrument set.
  obs::Counter* admission_rejected_ = nullptr;
  obs::Counter* sketch_resets_ = nullptr;
  obs::Counter* evictions_window_ = nullptr;
  obs::Counter* evictions_main_ = nullptr;
};

}  // namespace apollo::cache
