// KvCache: the Memcached stand-in — a sharded, byte-budgeted LRU cache of
// versioned query result sets.
//
// A key (canonical query text) may hold several entries with different
// version stamps; GetCompatible returns the usable entry that minimizes the
// client's version-vector advance (paper Section 3.3: "use the earliest
// version"). Eviction is global-LRU per shard under a per-shard byte budget.
//
// Hit/miss/put/eviction counters live in the per-run obs::MetricsRegistry
// (one accumulation cell per shard, summed on read); CacheStats is a thin
// snapshot view kept for compatibility. Entries remember whether they were
// inserted by a predictive execution so the cache can emit the tail of the
// prediction lifecycle into the obs::TraceLog: prediction_hit when a
// client read is served by a predicted entry, prediction_evicted /
// prediction_wasted when one leaves the cache with / without ever serving
// a hit.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/version_vector.h"
#include "common/result_set.h"
#include "obs/observability.h"

namespace apollo::cache {

/// Thin snapshot view over the registry-backed cache counters (the
/// obs::MetricsRegistry is the source of truth; see KvCache::stats).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t puts = 0;
  uint64_t evictions = 0;
  uint64_t bytes_used = 0;
  uint64_t entries = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// A cached result with its version stamp.
struct CacheEntry {
  common::ResultSetPtr result;
  VersionVector stamp;
};

class KvCache {
 public:
  /// `capacity_bytes` is the total budget across all shards. `obs` is the
  /// per-run observability bundle (a private one is created when null);
  /// `metric_prefix` qualifies instrument names when several caches share
  /// one registry (e.g. "cache0.").
  explicit KvCache(size_t capacity_bytes, size_t num_shards = 8,
                   obs::Observability* obs = nullptr,
                   const std::string& metric_prefix = "cache.");

  /// Looks up `key`. Among entries whose stamp dominates `client_vv` on
  /// `tables`, returns the one with minimal distance from `client_vv`
  /// (ties: least-recently stored). Bumps LRU on hit. Keys are taken as
  /// string_view and looked up heterogeneously — no temporary std::string
  /// is built on the read path.
  std::optional<CacheEntry> GetCompatible(
      std::string_view key, const VersionVector& client_vv,
      const std::vector<std::string>& tables);

  /// Returns any entry for `key` regardless of versions (plain-Memcached
  /// behaviour, used by baselines that skip session checks). Prefers the
  /// most-recently-used entry for the key.
  std::optional<CacheEntry> GetAny(std::string_view key);

  /// Inserts an entry. If an entry whose stamp maps exactly the same
  /// tables to the same versions already exists for this key, it is
  /// replaced (same data, refreshed). `predicted` marks results inserted
  /// by predictive executions; `template_id` labels the entry's trace
  /// events. `put_time_us` (wall clock, caller-defined epoch; 0 = unknown)
  /// bounds how long the entry may later be served stale — entries with
  /// put_time 0 are never served by GetStaleWithin.
  void Put(const std::string& key, common::ResultSetPtr result,
           VersionVector stamp, bool predicted = false,
           uint64_t template_id = 0, int64_t put_time_us = 0);

  /// Brownout serve-stale-within-bound lookup (DESIGN.md Section 12):
  /// among entries for `key` whose stamp still dominates `floor_vv` on
  /// `tables` (the session's OWN writes — read-your-writes holds even
  /// stale) and whose put_time is >= `min_put_time_us` (age bound),
  /// returns the freshest by put_time. Stats-NEUTRAL: no hit/miss counter
  /// moves and no LRU bump, so enabling brownout cannot skew the cache
  /// metrics the benches compare; callers account the stale serve in their
  /// own instruments.
  std::optional<CacheEntry> GetStaleWithin(
      std::string_view key, const VersionVector& floor_vv,
      const std::vector<std::string>& tables, int64_t min_put_time_us) const;

  /// True if a compatible entry exists (no LRU bump, no stats change).
  bool ContainsCompatible(std::string_view key,
                          const VersionVector& client_vv,
                          const std::vector<std::string>& tables) const;

  void Clear();

  /// Assembles the legacy stats view from the registry counters.
  CacheStats stats() const;
  size_t capacity_bytes() const { return capacity_bytes_; }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Node {
    std::string key;
    CacheEntry entry;
    size_t bytes = 0;
    bool predicted = false;     // inserted by a predictive execution
    uint64_t hits = 0;          // times this entry served a read
    uint64_t template_id = 0;   // trace label (0 if unknown)
    uint64_t last_use = 0;      // shard use_seq at last touch (MRU order)
    int64_t put_time_us = 0;    // wall clock at insert (0 = unknown)
  };
  using LruList = std::list<Node>;

  /// Transparent hash so the per-shard key map accepts std::string_view
  /// lookups (C++20 heterogeneous find) without materializing a string.
  struct KeyHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  struct Shard {
    mutable std::mutex mu;
    LruList lru;  // front = most recent
    std::unordered_map<std::string, std::vector<LruList::iterator>, KeyHash,
                       std::equal_to<>>
        map;
    size_t bytes_used = 0;
    uint64_t use_seq = 0;  // bumped on every touch; orders entries per key
  };

  size_t ShardIndexFor(std::string_view key) const;
  Shard& ShardFor(std::string_view key);
  const Shard& ShardFor(std::string_view key) const;
  void EvictIfNeeded(Shard& shard, size_t shard_index, size_t shard_capacity);
  /// Records the lifecycle trace event for an entry leaving the cache.
  void TraceDeparture(const Node& node);

  size_t capacity_bytes_;
  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::unique_ptr<obs::Observability> owned_obs_;  // fallback when none given
  obs::Observability* obs_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* puts_;
  obs::Counter* evictions_;
};

}  // namespace apollo::cache
