// CachePolicy: which admission/eviction scheme the KvCache runs
// (DESIGN.md Section 13).
//
//   kLru         — legacy per-shard global LRU (the default; behaviour and
//                  exported instruments are unchanged from earlier builds).
//   kTinyLfu     — W-TinyLFU: a small windowed LRU feeding a main segment
//                  guarded by Count-Min-Sketch frequency admission
//                  (new >= victim => admit), with periodic sketch halving.
//   kTinyLfuCost — W-TinyLFU with Apollo's cost-aware score: an entry is
//                  worth frequency x miss_cost_us x (predicted ?
//                  transition_probability : 1), so a high-confidence
//                  predictive prefetch that saves a WAN round trip outlives
//                  an equally-recent cold one-off.
#pragma once

#include <cstddef>

namespace apollo::cache {

enum class CachePolicy {
  kLru,
  kTinyLfu,
  kTinyLfuCost,
};

/// Short stable name for reports and bench JSON ("lru", "tinylfu",
/// "tinylfu_cost").
const char* CachePolicyName(CachePolicy policy);

/// Construction-time knobs for the KvCache eviction path. Only consulted
/// when `policy` != kLru (the LRU path has no tunables).
struct KvCacheOptions {
  CachePolicy policy = CachePolicy::kLru;

  /// Fraction of each shard's byte budget given to the admission window.
  /// May be smaller than one entry: the window then acts as a pass-through
  /// and every insert faces frequency admission immediately (plain
  /// TinyLFU-admitting-LRU), which is the right degeneration for tiny
  /// caches.
  double window_fraction = 0.01;

  /// Count-Min-Sketch geometry per shard. Width is rounded up to a power
  /// of two (masked indexing); depth rows of saturating 8-bit counters.
  size_t sketch_width = 4096;
  size_t sketch_depth = 4;

  /// Sketch aging: after this many recorded accesses per shard every
  /// counter is halved, so stale popularity decays (TinyLFU's "reset").
  /// 0 = auto-scale with the shard budget.
  size_t sketch_reset_adds = 0;

  /// Miss cost assumed for entries inserted without an observed remote
  /// round trip (cost-aware scoring only).
  double default_miss_cost_us = 1000.0;
};

}  // namespace apollo::cache
