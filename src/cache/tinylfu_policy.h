// TinyLfuPolicy: per-shard W-TinyLFU admission state for the KvCache
// (DESIGN.md Section 13).
//
// Owns the shard's Count-Min-Sketch and the aging counter, and computes
// the admission score the eviction path compares: a window-LRU candidate
// is admitted to the main segment only if its score is at least the main
// victim's (new >= victim => admit, TinyLFU's tie-goes-to-the-newcomer
// rule, which lets the cache adapt to phase changes).
//
// Scores:
//   kTinyLfu     — estimated frequency alone (classic TinyLFU).
//   kTinyLfuCost — frequency x miss-cost x confidence: the Apollo twist.
//                  A predictively-fetched entry's value is the WAN round
//                  trip it saves times the probability the client actually
//                  issues the query, so admission weighs both; demand
//                  entries keep confidence 1.
//
// Not thread-safe; the KvCache calls it under the owning shard's mutex.
#pragma once

#include <cstdint>

#include "cache/cache_policy.h"
#include "cache/count_min_sketch.h"

namespace apollo::cache {

class TinyLfuPolicy {
 public:
  /// `shard_capacity` is the owning shard's byte budget; it sizes the
  /// admission window and the auto aging interval.
  TinyLfuPolicy(const KvCacheOptions& options, size_t shard_capacity);

  /// Records one access (client lookup or demand fill) to the key.
  /// Returns true when the record triggered a sketch halving (aging), so
  /// the caller can count it.
  bool RecordAccess(uint64_t key_hash);

  /// Estimated access frequency of the key under the current sketch.
  uint32_t Frequency(uint64_t key_hash) const { return sketch_.Estimate(key_hash); }

  /// Admission/eviction score of an entry. `miss_cost_us` is the observed
  /// remote round trip that produced the entry (0 = unknown, falls back to
  /// the configured default); `probability` is the prediction confidence
  /// (ignored for demand entries).
  double Score(uint64_t key_hash, bool predicted, double miss_cost_us,
               double probability) const;

  /// Bytes of the shard budget reserved for the admission window.
  size_t window_capacity() const { return window_capacity_; }
  CachePolicy policy() const { return options_.policy; }

 private:
  KvCacheOptions options_;
  size_t window_capacity_;
  size_t reset_adds_;  // halve the sketch after this many accesses
  size_t adds_since_reset_ = 0;
  CountMinSketch sketch_;
};

}  // namespace apollo::cache
