#include "cache/version_vector.h"

#include <algorithm>

namespace apollo::cache {

std::string VersionVector::ToString() const {
  std::vector<std::pair<std::string, uint64_t>> sorted(v_.begin(), v_.end());
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  bool first = true;
  for (const auto& [t, ver] : sorted) {
    if (!first) out += ", ";
    first = false;
    out += t + ":" + std::to_string(ver);
  }
  out += "}";
  return out;
}

}  // namespace apollo::cache
