// Workload abstractions: a Workload owns schema + data and manufactures
// per-client behaviours; a WorkloadClient runs one interaction at a time
// through the middleware via its ClientContext.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result_set.h"
#include "core/middleware.h"
#include "db/database.h"
#include "sim/event_loop.h"
#include "util/rng.h"
#include "workload/metrics.h"

namespace apollo::workload {

/// Per-client harness handle passed to workload behaviours.
class ClientContext {
 public:
  ClientContext(sim::EventLoop* loop, core::Middleware* middleware,
                core::ClientId id, util::Rng* rng)
      : loop_(loop), middleware_(middleware), id_(id), rng_(rng) {}

  /// Submits `sql`; `then` receives the result (nullptr on error) at
  /// response time. Response time is recorded into the active metrics.
  void Query(const std::string& sql,
             std::function<void(common::ResultSetPtr)> then);

  util::Rng& rng() { return *rng_; }
  core::ClientId id() const { return id_; }
  sim::EventLoop* loop() { return loop_; }

  /// Metrics sink; null while warming up / training.
  void set_metrics(RunMetrics* m) { metrics_ = m; }
  /// Trace sink for Fido training; null otherwise.
  void set_trace(std::vector<std::string>* t) { trace_ = t; }
  /// Metrics are only recorded for queries submitted before this time.
  void set_record_deadline(util::SimTime t) { record_deadline_ = t; }

  uint64_t errors() const { return errors_; }

 private:
  sim::EventLoop* loop_;
  core::Middleware* middleware_;
  core::ClientId id_;
  util::Rng* rng_;
  RunMetrics* metrics_ = nullptr;
  std::vector<std::string>* trace_ = nullptr;
  util::SimTime record_deadline_ = INT64_MAX;
  uint64_t errors_ = 0;
};

/// One simulated application client's behaviour (a TPC-W emulated browser
/// or a TPC-C terminal).
class WorkloadClient {
 public:
  virtual ~WorkloadClient() = default;

  /// Runs one web interaction / transaction; must invoke `done` exactly
  /// once when the interaction's queries have completed.
  virtual void RunInteraction(ClientContext& ctx,
                              std::function<void()> done) = 0;

  /// Mean think time between interactions (paper: 7 s for TPC-W).
  virtual double MeanThinkSeconds() const = 0;
};

class Workload {
 public:
  virtual ~Workload() = default;
  virtual std::string name() const = 0;

  /// Creates the schema and loads the scaled dataset.
  virtual util::Status Setup(db::Database* db) = 0;

  /// Creates the behaviour for client `index`.
  virtual std::unique_ptr<WorkloadClient> MakeClient(int index,
                                                     uint64_t seed) = 0;
};

}  // namespace apollo::workload
