// TPC-W web-commerce workload (scaled), paper Section 4.2.
//
// Emulated browsers run the 14 TPC-W web interactions as query sequences
// against the bookstore schema, choosing the next interaction
// probabilistically from the browsing-mix distribution (with the natural
// forced transitions: Search Request -> Search Results, Buy Request -> Buy
// Confirm, ...). The interactions preserve the parameter-flow dependency
// chains the paper exploits — most prominently Order Display's
// login -> MAX(O_ID) -> order -> order-lines pipeline (paper Figure 2).
//
// Substitutions vs. the paper's setup (documented in DESIGN.md): the 1M-item
// 33 GB database is scaled down; the Best Sellers subquery is decomposed
// into MAX(O_ID) (an ADQ) plus the aggregation query; Stock-Level-style
// client-side arithmetic is pushed into select lists where Apollo's
// value-equality mappings require it.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "workload/workload.h"

namespace apollo::workload {

struct TpcwConfig {
  // Scaled from the paper's 1M items / 33 GB to laptop size while keeping
  // the property that drives the baselines' behaviour: the parameter space
  // is large enough that exact query instances rarely recur across
  // clients, so instance-level caching (Memcached) and instance-level
  // prediction (Fido) see little repetition while Apollo's template-level
  // learning still generalizes.
  int num_items = 50000;
  int num_customers = 25000;
  int num_authors = 12500;
  int num_orders = 22500;      // initial orders (~0.9 x customers)
  int num_countries = 92;
  double mean_think_seconds = 7.0;  // per TPC-W spec
  /// Item popularity skew for browsing (product detail, carts, promos).
  /// Web-store traffic is Zipfian; the skew is what makes the shared cache
  /// increasingly effective as client count grows (paper Figure 5(a)'s
  /// downward trend). 0 = uniform.
  double item_zipf_theta = 0.8;
  std::string table_prefix;    // e.g. "TPCW_" for co-deployment
  uint64_t seed = 99;
};

/// The 14 TPC-W web interactions.
enum class TpcwInteraction {
  kHome = 0,
  kNewProducts,
  kBestSellers,
  kProductDetail,
  kSearchRequest,
  kSearchResults,
  kShoppingCart,
  kCustomerRegistration,
  kBuyRequest,
  kBuyConfirm,
  kOrderInquiry,
  kOrderDisplay,
  kAdminRequest,
  kAdminConfirm,
  kCount,
};

class TpcwWorkload : public Workload {
 public:
  explicit TpcwWorkload(TpcwConfig config = {});

  std::string name() const override { return "tpcw"; }
  util::Status Setup(db::Database* db) override;
  std::unique_ptr<WorkloadClient> MakeClient(int index,
                                             uint64_t seed) override;

  const TpcwConfig& config() const { return config_; }

  /// Global order-id sequence shared by clients (the application server's
  /// sequence generator). Atomic so the threaded runtime's workers can
  /// place orders concurrently without duplicating ids.
  int64_t NextOrderId() {
    return next_order_id_.fetch_add(1, std::memory_order_relaxed);
  }
  int64_t CurrentMaxOrderId() const {
    return next_order_id_.load(std::memory_order_relaxed) - 1;
  }

  /// Table name with the configured prefix.
  std::string T(const std::string& base) const {
    return config_.table_prefix + base;
  }

  static const std::vector<std::string>& Subjects();

 private:
  TpcwConfig config_;
  std::atomic<int64_t> next_order_id_{1};
};

}  // namespace apollo::workload
