// Experiment driver: builds the full simulated testbed (database, WAN,
// cache(s), middleware instance(s), clients) and runs one measured
// experiment, reproducing the paper's experimental phases:
//   - Fido: offline training on traces 2x the experiment length (4.1)
//   - Memcached: a cache warm-up period before measurement (4.1)
//   - Apollo: cold start, online learning
// Statistics are reported as deltas over the measurement window.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cache/kv_cache.h"
#include "core/config.h"
#include "net/remote_database.h"
#include "obs/observability.h"
#include "workload/workload.h"

namespace apollo::workload {

enum class SystemType { kApollo, kMemcached, kFido };

std::string SystemTypeName(SystemType t);

struct RunConfig {
  SystemType system = SystemType::kApollo;
  int num_clients = 20;
  util::SimDuration duration = util::Minutes(20);
  util::SimDuration warmup = 0;  // cache warm period before measurement
  double fido_training_factor = 2.0;  // training trace length / duration
  int fido_max_predictions = 10;

  net::RemoteDbConfig remote;
  core::ApolloConfig apollo;

  /// Cache budget per middleware instance; 0 = 5% of database size.
  size_t cache_bytes = 0;
  /// When cache_bytes is 0 and this is > 0, the budget is cache_ratio x
  /// database size instead of the 5% default (the cache-to-DB sweep knob
  /// of bench/cache_policy.cc — the DB size is only known inside the run).
  double cache_ratio = 0.0;
  int num_instances = 1;

  util::SimDuration bucket_width = util::Minutes(4);
  /// Keep per-bucket histograms so RunMetrics::Timeline reports p99 per
  /// bucket (used by the outage-recovery bench).
  bool bucket_percentiles = false;
  /// Sampling interval for the fault/degradation time series in
  /// RunResult::samples; 0 disables sampling.
  util::SimDuration sample_interval = 0;
  uint64_t seed = 1;

  /// Workload-shift experiment: behaviours switch to this workload at
  /// measure_start + switch_at. The second workload's tables must already
  /// be distinct (use table_prefix).
  Workload* switch_to = nullptr;
  util::SimDuration switch_at = 0;

  /// Prediction-lifecycle tracing (obs::TraceLog). Disabled by default:
  /// Record() is a single branch then, so fully-instrumented runs stay
  /// within the <2% overhead budget.
  bool enable_trace = false;
  size_t trace_capacity = 8192;
  /// When non-empty, the trace ring is exported as JSONL here at run end.
  std::string trace_jsonl_path;
};

/// One point of the degradation time series (RunConfig::sample_interval).
/// Counter fields are deltas over the preceding interval.
struct IntervalSample {
  double minute_end = 0.0;  // minutes since measurement start
  uint64_t queries = 0;     // client reads+writes completing the interval
  double hit_rate = 0.0;    // cache hit rate over the interval
  uint64_t retries = 0;
  uint64_t timeouts = 0;
  uint64_t breaker_opens = 0;
  uint64_t shed_predictions = 0;
  uint64_t shed_adq_reloads = 0;
  uint64_t remote_errors = 0;
  uint64_t client_errors = 0;  // errors that reached a client callback

  // Mean per-query latency breakdown over the interval (simulated ms),
  // from the registry-backed mw*.latency.* histograms.
  double mean_wan_ms = 0.0;    // remote round trips / remote trip count
  double mean_cache_ms = 0.0;  // cache round trips / client read count
};

struct RunResult {
  std::string system_name;
  int num_clients = 0;
  std::shared_ptr<RunMetrics> metrics;  // measured-phase response times

  // Deltas over the measurement window.
  core::MiddlewareStats mw;
  cache::CacheStats cache_stats;
  net::RemoteDbStats remote;
  db::DatabaseStats db;

  /// Errors delivered to client callbacks during measurement (absorbed
  /// retries do not count; this is the client-visible failure count).
  uint64_t client_visible_errors = 0;

  /// Degradation time series (empty unless sample_interval > 0).
  std::vector<IntervalSample> samples;

  size_t learning_bytes = 0;  // engine learning state at end of run
  size_t db_bytes = 0;        // database size (cache sizing context)
  size_t cache_capacity = 0;
  uint64_t sim_events = 0;

  /// The run's observability bundle (metrics registry + trace ring). All
  /// middleware/cache/remote instruments live here, prefixed "mw<k>.",
  /// "cache<k>." and "remote."; the legacy stats fields above are deltas
  /// assembled from it.
  std::shared_ptr<obs::Observability> obs;

  double MeanMs() const { return metrics ? metrics->MeanMs() : 0.0; }
  double PercentileMs(double p) const {
    return metrics ? metrics->PercentileMs(p) : 0.0;
  }
};

/// Runs one experiment configuration on a fresh database.
RunResult RunExperiment(Workload& workload, const RunConfig& config);

}  // namespace apollo::workload
