// Experiment driver: builds the full simulated testbed (database, WAN,
// cache(s), middleware instance(s), clients) and runs one measured
// experiment, reproducing the paper's experimental phases:
//   - Fido: offline training on traces 2x the experiment length (4.1)
//   - Memcached: a cache warm-up period before measurement (4.1)
//   - Apollo: cold start, online learning
// Statistics are reported as deltas over the measurement window.
#pragma once

#include <memory>
#include <string>

#include "cache/kv_cache.h"
#include "core/config.h"
#include "net/remote_database.h"
#include "workload/workload.h"

namespace apollo::workload {

enum class SystemType { kApollo, kMemcached, kFido };

std::string SystemTypeName(SystemType t);

struct RunConfig {
  SystemType system = SystemType::kApollo;
  int num_clients = 20;
  util::SimDuration duration = util::Minutes(20);
  util::SimDuration warmup = 0;  // cache warm period before measurement
  double fido_training_factor = 2.0;  // training trace length / duration
  int fido_max_predictions = 10;

  net::RemoteDbConfig remote;
  core::ApolloConfig apollo;

  /// Cache budget per middleware instance; 0 = 5% of database size.
  size_t cache_bytes = 0;
  int num_instances = 1;

  util::SimDuration bucket_width = util::Minutes(4);
  uint64_t seed = 1;

  /// Workload-shift experiment: behaviours switch to this workload at
  /// measure_start + switch_at. The second workload's tables must already
  /// be distinct (use table_prefix).
  Workload* switch_to = nullptr;
  util::SimDuration switch_at = 0;
};

struct RunResult {
  std::string system_name;
  int num_clients = 0;
  std::shared_ptr<RunMetrics> metrics;  // measured-phase response times

  // Deltas over the measurement window.
  core::MiddlewareStats mw;
  cache::CacheStats cache_stats;
  net::RemoteDbStats remote;
  db::DatabaseStats db;

  size_t learning_bytes = 0;  // engine learning state at end of run
  size_t db_bytes = 0;        // database size (cache sizing context)
  size_t cache_capacity = 0;
  uint64_t sim_events = 0;

  double MeanMs() const { return metrics ? metrics->MeanMs() : 0.0; }
  double PercentileMs(double p) const {
    return metrics ? metrics->PercentileMs(p) : 0.0;
  }
};

/// Runs one experiment configuration on a fresh database.
RunResult RunExperiment(Workload& workload, const RunConfig& config);

}  // namespace apollo::workload
