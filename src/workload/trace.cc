#include "workload/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "util/string_util.h"

namespace apollo::workload {

util::Status SaveTrace(const Trace& trace, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return util::Status::Internal("cannot open " + path + " for writing");
  }
  for (const auto& e : trace) {
    // SQL in our dialect never contains tabs or newlines.
    std::fprintf(f, "%d\t%lld\t%s\n", e.client,
                 static_cast<long long>(e.time), e.sql.c_str());
  }
  std::fclose(f);
  return util::Status::OK();
}

util::Result<Trace> LoadTrace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return util::Status::NotFound("cannot open trace file " + path);
  }
  Trace trace;
  char* line = nullptr;
  size_t cap = 0;
  ssize_t len;
  int lineno = 0;
  while ((len = getline(&line, &cap, f)) >= 0) {
    ++lineno;
    std::string_view sv(line, static_cast<size_t>(len));
    while (!sv.empty() && (sv.back() == '\n' || sv.back() == '\r')) {
      sv.remove_suffix(1);
    }
    if (sv.empty()) continue;
    size_t t1 = sv.find('\t');
    size_t t2 = t1 == std::string_view::npos ? std::string_view::npos
                                             : sv.find('\t', t1 + 1);
    if (t2 == std::string_view::npos) {
      free(line);
      std::fclose(f);
      return util::Status::InvalidArgument(
          "malformed trace line " + std::to_string(lineno) + " in " + path);
    }
    TraceEvent e;
    e.client = std::atoi(std::string(sv.substr(0, t1)).c_str());
    e.time = std::atoll(std::string(sv.substr(t1 + 1, t2 - t1 - 1)).c_str());
    e.sql = std::string(sv.substr(t2 + 1));
    trace.push_back(std::move(e));
  }
  free(line);
  std::fclose(f);
  return trace;
}

size_t ReplayTrace(sim::EventLoop* loop, core::Middleware* middleware,
                   const Trace& trace, RunMetrics* metrics,
                   util::SimTime start) {
  if (trace.empty()) return 0;
  const util::SimTime t0 = trace.front().time;
  for (const auto& e : trace) {
    util::SimTime at = start + (e.time - t0);
    loop->At(at, [loop, middleware, metrics, e]() {
      util::SimTime submit = loop->now();
      middleware->SubmitQuery(
          e.client, e.sql,
          [loop, metrics, submit](util::Result<common::ResultSetPtr>) {
            if (metrics != nullptr) {
              metrics->Record(submit, loop->now() - submit);
            }
          });
    });
  }
  return trace.size();
}

std::vector<std::vector<std::string>> PerClientSequences(
    const Trace& trace) {
  std::map<core::ClientId, std::vector<std::string>> by_client;
  for (const auto& e : trace) by_client[e.client].push_back(e.sql);
  std::vector<std::vector<std::string>> out;
  out.reserve(by_client.size());
  for (auto& [_, seq] : by_client) out.push_back(std::move(seq));
  return out;
}

}  // namespace apollo::workload
