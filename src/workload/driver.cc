#include "workload/driver.h"

#include <cassert>

#include "core/apollo_middleware.h"
#include "core/caching_middleware.h"
#include "fido/fido_middleware.h"
#include "workload/client_driver.h"

namespace apollo::workload {

namespace {

core::MiddlewareStats Sub(const core::MiddlewareStats& a,
                          const core::MiddlewareStats& b) {
  core::MiddlewareStats d;
  d.queries = a.queries - b.queries;
  d.reads = a.reads - b.reads;
  d.writes = a.writes - b.writes;
  d.cache_hits = a.cache_hits - b.cache_hits;
  d.cache_misses = a.cache_misses - b.cache_misses;
  d.coalesced_waits = a.coalesced_waits - b.coalesced_waits;
  d.parse_errors = a.parse_errors - b.parse_errors;
  d.predictions_issued = a.predictions_issued - b.predictions_issued;
  d.predictions_skipped_cached =
      a.predictions_skipped_cached - b.predictions_skipped_cached;
  d.predictions_skipped_inflight =
      a.predictions_skipped_inflight - b.predictions_skipped_inflight;
  d.predictions_skipped_fresh =
      a.predictions_skipped_fresh - b.predictions_skipped_fresh;
  d.predictions_skipped_invalid =
      a.predictions_skipped_invalid - b.predictions_skipped_invalid;
  d.predictions_skipped_incomplete =
      a.predictions_skipped_incomplete - b.predictions_skipped_incomplete;
  d.adq_reloads = a.adq_reloads - b.adq_reloads;
  d.shed_predictions = a.shed_predictions - b.shed_predictions;
  d.shed_adq_reloads = a.shed_adq_reloads - b.shed_adq_reloads;
  d.subscriber_fallbacks = a.subscriber_fallbacks - b.subscriber_fallbacks;
  d.fdqs_discovered = a.fdqs_discovered - b.fdqs_discovered;
  d.fdqs_invalidated = a.fdqs_invalidated - b.fdqs_invalidated;
  d.find_fdq_wall_us = a.find_fdq_wall_us - b.find_fdq_wall_us;
  d.find_fdq_calls = a.find_fdq_calls - b.find_fdq_calls;
  d.construct_fdq_wall_us = a.construct_fdq_wall_us - b.construct_fdq_wall_us;
  d.construct_fdq_calls = a.construct_fdq_calls - b.construct_fdq_calls;
  return d;
}

core::MiddlewareStats Add(const core::MiddlewareStats& a,
                          const core::MiddlewareStats& b) {
  core::MiddlewareStats s = a;
  s.queries += b.queries;
  s.reads += b.reads;
  s.writes += b.writes;
  s.cache_hits += b.cache_hits;
  s.cache_misses += b.cache_misses;
  s.coalesced_waits += b.coalesced_waits;
  s.parse_errors += b.parse_errors;
  s.predictions_issued += b.predictions_issued;
  s.predictions_skipped_cached += b.predictions_skipped_cached;
  s.predictions_skipped_inflight += b.predictions_skipped_inflight;
  s.predictions_skipped_fresh += b.predictions_skipped_fresh;
  s.predictions_skipped_invalid += b.predictions_skipped_invalid;
  s.predictions_skipped_incomplete += b.predictions_skipped_incomplete;
  s.adq_reloads += b.adq_reloads;
  s.shed_predictions += b.shed_predictions;
  s.shed_adq_reloads += b.shed_adq_reloads;
  s.subscriber_fallbacks += b.subscriber_fallbacks;
  s.fdqs_discovered += b.fdqs_discovered;
  s.fdqs_invalidated += b.fdqs_invalidated;
  s.find_fdq_wall_us += b.find_fdq_wall_us;
  s.find_fdq_calls += b.find_fdq_calls;
  s.construct_fdq_wall_us += b.construct_fdq_wall_us;
  s.construct_fdq_calls += b.construct_fdq_calls;
  return s;
}

cache::CacheStats SubCache(const cache::CacheStats& a,
                           const cache::CacheStats& b) {
  cache::CacheStats d;
  d.hits = a.hits - b.hits;
  d.misses = a.misses - b.misses;
  d.puts = a.puts - b.puts;
  d.evictions = a.evictions - b.evictions;
  d.oversize_rejected = a.oversize_rejected - b.oversize_rejected;
  d.admission_rejected = a.admission_rejected - b.admission_rejected;
  d.sketch_resets = a.sketch_resets - b.sketch_resets;
  d.evictions_window = a.evictions_window - b.evictions_window;
  d.evictions_main = a.evictions_main - b.evictions_main;
  d.bytes_used = a.bytes_used;  // level, not counter
  d.entries = a.entries;
  return d;
}

void AccumulateCache(cache::CacheStats& into, const cache::CacheStats& s) {
  into.hits += s.hits;
  into.misses += s.misses;
  into.puts += s.puts;
  into.evictions += s.evictions;
  into.oversize_rejected += s.oversize_rejected;
  into.admission_rejected += s.admission_rejected;
  into.sketch_resets += s.sketch_resets;
  into.evictions_window += s.evictions_window;
  into.evictions_main += s.evictions_main;
  into.bytes_used += s.bytes_used;
  into.entries += s.entries;
}

net::RemoteDbStats SubRemote(const net::RemoteDbStats& a,
                             const net::RemoteDbStats& b) {
  net::RemoteDbStats d;
  d.queries = a.queries - b.queries;
  d.predictive_queries = a.predictive_queries - b.predictive_queries;
  d.attempts = a.attempts - b.attempts;
  d.errors = a.errors - b.errors;
  d.client_errors = a.client_errors - b.client_errors;
  d.predictive_errors = a.predictive_errors - b.predictive_errors;
  d.retries = a.retries - b.retries;
  d.timeouts = a.timeouts - b.timeouts;
  d.late_responses = a.late_responses - b.late_responses;
  d.breaker_opens = a.breaker_opens - b.breaker_opens;
  return d;
}

db::DatabaseStats SubDb(const db::DatabaseStats& a,
                        const db::DatabaseStats& b) {
  db::DatabaseStats d;
  d.queries_executed = a.queries_executed - b.queries_executed;
  d.reads = a.reads - b.reads;
  d.writes = a.writes - b.writes;
  d.rows_examined = a.rows_examined - b.rows_examined;
  return d;
}

}  // namespace

std::string SystemTypeName(SystemType t) {
  switch (t) {
    case SystemType::kApollo: return "apollo";
    case SystemType::kMemcached: return "memcached";
    case SystemType::kFido: return "fido";
  }
  return "?";
}

RunResult RunExperiment(Workload& workload, const RunConfig& config) {
  // ---- Substrate ----
  db::Database db;
  {
    auto st = workload.Setup(&db);
    assert(st.ok() && "workload setup failed");
    (void)st;
    if (config.switch_to != nullptr) {
      auto st2 = config.switch_to->Setup(&db);
      assert(st2.ok() && "second workload setup failed");
      (void)st2;
    }
  }
  const size_t db_bytes = db.ApproximateDataBytes();
  const size_t cache_bytes =
      config.cache_bytes != 0
          ? config.cache_bytes
          : (config.cache_ratio > 0.0
                 ? static_cast<size_t>(static_cast<double>(db_bytes) *
                                       config.cache_ratio)
                 : db_bytes / 20);

  sim::EventLoop loop;

  // ---- Per-run observability bundle (DESIGN.md Section 8) ----
  // Every component registers its instruments here, qualified by an
  // instance prefix; trace events are stamped with the loop's simulated
  // clock so enabling tracing cannot perturb results.
  auto obs = std::make_shared<obs::Observability>(config.trace_capacity);
  obs->trace.set_clock([&loop]() { return loop.now(); });
  obs->trace.set_enabled(config.enable_trace);

  net::RemoteDbConfig remote_cfg = config.remote;
  remote_cfg.seed = config.seed * 7919 + 13;
  net::RemoteDatabase remote(&loop, &db, remote_cfg, obs.get());

  // ---- Middleware instances, each with a dedicated cache ----
  std::vector<std::unique_ptr<cache::KvCache>> caches;
  std::vector<std::unique_ptr<core::Middleware>> instances;
  std::vector<fido::FidoMiddleware*> fido_instances;
  // Latency-breakdown histograms per instance (interval sampler input).
  std::vector<obs::HistogramMetric*> wan_hists;
  std::vector<obs::HistogramMetric*> cache_hists;
  for (int k = 0; k < config.num_instances; ++k) {
    const std::string mw_prefix = "mw" + std::to_string(k) + ".";
    const std::string cache_prefix = "cache" + std::to_string(k) + ".";
    cache::KvCacheOptions cache_opts;
    cache_opts.policy = config.apollo.cache_policy;
    cache_opts.window_fraction = config.apollo.cache_window_fraction;
    caches.push_back(std::make_unique<cache::KvCache>(
        cache_bytes, /*num_shards=*/8, obs.get(), cache_prefix,
        cache_opts));
    core::ApolloConfig acfg = config.apollo;
    acfg.seed = config.seed * 131 + static_cast<uint64_t>(k);
    switch (config.system) {
      case SystemType::kApollo:
        instances.push_back(std::make_unique<core::ApolloMiddleware>(
            &loop, &remote, caches.back().get(), acfg, obs.get(),
            mw_prefix));
        break;
      case SystemType::kMemcached:
        instances.push_back(std::make_unique<core::CachingMiddleware>(
            &loop, &remote, caches.back().get(), acfg, obs.get(),
            mw_prefix));
        break;
      case SystemType::kFido: {
        auto f = std::make_unique<fido::FidoMiddleware>(
            &loop, &remote, caches.back().get(), acfg,
            config.fido_max_predictions, obs.get(), mw_prefix);
        fido_instances.push_back(f.get());
        instances.push_back(std::move(f));
        break;
      }
    }
    wan_hists.push_back(
        obs->metrics.FindHistogram(mw_prefix + "latency.wan_us"));
    cache_hists.push_back(
        obs->metrics.FindHistogram(mw_prefix + "latency.cache_us"));
  }

  // ---- Fido offline training (paper 4.1: traces 2x the run length) ----
  // Training objects must outlive the whole simulation: events scheduled
  // during training (think-time wakeups, in-flight WAN callbacks) may
  // still sit in the loop's queue when the measurement phase runs.
  std::unique_ptr<cache::KvCache> training_cache;
  std::unique_ptr<core::CachingMiddleware> training_mw;
  std::vector<std::vector<std::string>> traces;
  std::vector<std::unique_ptr<ClientDriver>> trainers;
  if (config.system == SystemType::kFido) {
    util::SimDuration training_span = static_cast<util::SimDuration>(
        static_cast<double>(config.duration) * config.fido_training_factor);
    training_cache = std::make_unique<cache::KvCache>(cache_bytes);
    core::ApolloConfig tcfg = config.apollo;
    training_mw = std::make_unique<core::CachingMiddleware>(
        &loop, &remote, training_cache.get(), tcfg);
    traces.resize(static_cast<size_t>(config.num_clients));
    for (int i = 0; i < config.num_clients; ++i) {
      auto d = std::make_unique<ClientDriver>(
          &loop, training_mw.get(), /*id=*/i,
          workload.MakeClient(i, config.seed * 50021 +
                                     static_cast<uint64_t>(i)),
          config.seed * 887 + static_cast<uint64_t>(i));
      d->context().set_trace(&traces[static_cast<size_t>(i)]);
      d->Start(loop.now() + training_span);
      trainers.push_back(std::move(d));
    }
    loop.RunUntil(loop.now() + training_span + util::Seconds(10));
    for (auto* f : fido_instances) f->Train(traces);
  }

  // ---- Clients (pinned round-robin across instances) ----
  const util::SimTime phase_start = loop.now();
  const util::SimTime measure_start = phase_start + config.warmup;
  const util::SimTime end_time = measure_start + config.duration;

  auto metrics = std::make_shared<RunMetrics>(
      measure_start, config.bucket_width, config.bucket_percentiles);
  std::vector<std::unique_ptr<ClientDriver>> drivers;
  for (int i = 0; i < config.num_clients; ++i) {
    core::Middleware* mw =
        instances[static_cast<size_t>(i % config.num_instances)].get();
    auto d = std::make_unique<ClientDriver>(
        &loop, mw, /*id=*/i,
        workload.MakeClient(i, config.seed * 10007 +
                                   static_cast<uint64_t>(i)),
        config.seed * 733 + static_cast<uint64_t>(i));
    d->context().set_record_deadline(end_time);
    drivers.push_back(std::move(d));
  }

  // Stats snapshots at measurement start (deltas exclude warm-up/training).
  core::MiddlewareStats mw_base;
  cache::CacheStats cache_base;
  net::RemoteDbStats remote_base;
  db::DatabaseStats db_base;
  uint64_t client_errors_base = 0;
  auto sum_client_errors = [&drivers]() {
    uint64_t total = 0;
    for (const auto& d : drivers) total += d->context().errors();
    return total;
  };
  loop.At(measure_start, [&]() {
    for (const auto& inst : instances) {
      mw_base = Add(mw_base, inst->stats());
    }
    for (const auto& c : caches) {
      AccumulateCache(cache_base, c->stats());
    }
    cache_base.bytes_used = 0;  // levels are end-of-run, not deltas
    cache_base.entries = 0;
    remote_base = remote.stats();
    db_base = db.stats();
    client_errors_base = sum_client_errors();
    for (auto& d : drivers) d->context().set_metrics(metrics.get());
  });

  // ---- Degradation time series (sampled counter deltas) ----
  std::vector<IntervalSample> samples;
  struct SamplerState {
    core::MiddlewareStats mw;
    net::RemoteDbStats remote;
    uint64_t client_errors = 0;
    double wan_sum_us = 0.0, cache_sum_us = 0.0;
    uint64_t wan_count = 0, cache_count = 0;
  };
  auto sampler_prev = std::make_shared<SamplerState>();
  auto sum_latency_hists = [&wan_hists, &cache_hists](SamplerState* out) {
    out->wan_sum_us = out->cache_sum_us = 0.0;
    out->wan_count = out->cache_count = 0;
    for (const auto* h : wan_hists) {
      if (h == nullptr) continue;
      out->wan_sum_us += h->Sum();
      out->wan_count += h->Count();
    }
    for (const auto* h : cache_hists) {
      if (h == nullptr) continue;
      out->cache_sum_us += h->Sum();
      out->cache_count += h->Count();
    }
  };
  if (config.sample_interval > 0) {
    loop.At(measure_start, [&, sampler_prev]() {
      for (const auto& inst : instances) {
        sampler_prev->mw = Add(sampler_prev->mw, inst->stats());
      }
      sampler_prev->remote = remote.stats();
      sampler_prev->client_errors = sum_client_errors();
      sum_latency_hists(sampler_prev.get());
    });
    const int num_samples =
        static_cast<int>(config.duration / config.sample_interval);
    for (int k = 1; k <= num_samples; ++k) {
      const util::SimTime at = measure_start + k * config.sample_interval;
      loop.At(at, [&, sampler_prev, k]() {
        core::MiddlewareStats mw_now;
        for (const auto& inst : instances) {
          mw_now = Add(mw_now, inst->stats());
        }
        const core::MiddlewareStats mwd = Sub(mw_now, sampler_prev->mw);
        const net::RemoteDbStats rd =
            SubRemote(remote.stats(), sampler_prev->remote);
        const uint64_t errs_now = sum_client_errors();

        IntervalSample s;
        s.minute_end = util::ToSeconds(static_cast<util::SimDuration>(k) *
                                       config.sample_interval) /
                       60.0;
        s.queries = mwd.reads + mwd.writes;
        const uint64_t lookups = mwd.cache_hits + mwd.cache_misses;
        s.hit_rate = lookups == 0 ? 0.0
                                  : static_cast<double>(mwd.cache_hits) /
                                        static_cast<double>(lookups);
        s.retries = rd.retries;
        s.timeouts = rd.timeouts;
        s.breaker_opens = rd.breaker_opens;
        s.shed_predictions = mwd.shed_predictions;
        s.shed_adq_reloads = mwd.shed_adq_reloads;
        s.remote_errors = rd.errors;
        s.client_errors = errs_now - sampler_prev->client_errors;

        SamplerState lat_now;
        sum_latency_hists(&lat_now);
        if (lat_now.wan_count > sampler_prev->wan_count) {
          s.mean_wan_ms =
              (lat_now.wan_sum_us - sampler_prev->wan_sum_us) /
              static_cast<double>(lat_now.wan_count -
                                  sampler_prev->wan_count) /
              1000.0;
        }
        if (lat_now.cache_count > sampler_prev->cache_count) {
          s.mean_cache_ms =
              (lat_now.cache_sum_us - sampler_prev->cache_sum_us) /
              static_cast<double>(lat_now.cache_count -
                                  sampler_prev->cache_count) /
              1000.0;
        }
        samples.push_back(s);

        sampler_prev->mw = mw_now;
        sampler_prev->remote = remote.stats();
        sampler_prev->client_errors = errs_now;
        sampler_prev->wan_sum_us = lat_now.wan_sum_us;
        sampler_prev->wan_count = lat_now.wan_count;
        sampler_prev->cache_sum_us = lat_now.cache_sum_us;
        sampler_prev->cache_count = lat_now.cache_count;
      });
    }
  }

  if (config.switch_to != nullptr) {
    loop.At(measure_start + config.switch_at, [&]() {
      for (size_t i = 0; i < drivers.size(); ++i) {
        drivers[i]->SwapBehaviour(config.switch_to->MakeClient(
            static_cast<int>(i),
            config.seed * 20011 + static_cast<uint64_t>(i)));
      }
    });
  }

  for (auto& d : drivers) d->Start(end_time);
  loop.RunUntil(end_time + util::Seconds(10));

  // ---- Collect ----
  RunResult result;
  result.system_name = SystemTypeName(config.system);
  result.num_clients = config.num_clients;
  result.metrics = metrics;
  core::MiddlewareStats mw_total;
  for (const auto& inst : instances) {
    mw_total = Add(mw_total, inst->stats());
    result.learning_bytes += inst->LearningStateBytes();
  }
  result.mw = Sub(mw_total, mw_base);
  cache::CacheStats cache_total;
  for (const auto& c : caches) {
    AccumulateCache(cache_total, c->stats());
  }
  result.cache_stats = SubCache(cache_total, cache_base);
  result.remote = SubRemote(remote.stats(), remote_base);
  result.db = SubDb(db.stats(), db_base);
  result.client_visible_errors = sum_client_errors() - client_errors_base;
  result.samples = std::move(samples);
  result.db_bytes = db_bytes;
  result.cache_capacity = cache_bytes;
  result.sim_events = loop.events_processed();
  if (config.enable_trace && !config.trace_jsonl_path.empty()) {
    obs->trace.WriteJsonl(config.trace_jsonl_path);
  }
  // The bundle outlives the event loop; detach the clock so late Record()
  // calls (there should be none) cannot dereference the dead loop.
  obs->trace.set_clock(nullptr);
  result.obs = std::move(obs);
  return result;
}

}  // namespace apollo::workload
