#include "workload/tpcc.h"

#include <algorithm>

#include "common/value.h"

namespace apollo::workload {

namespace {
using common::Value;

/// TPC-C style last names built from syllable triples (clause 4.3.2.3).
std::string LastName(int64_t num) {
  static const char* kSyllables[] = {"BAR", "OUGHT", "ABLE", "PRI",
                                     "PRES", "ESE",  "ANTI", "CALLY",
                                     "ATION", "EING"};
  return std::string(kSyllables[(num / 100) % 10]) +
         kSyllables[(num / 10) % 10] + kSyllables[num % 10];
}
}  // namespace

TpccWorkload::TpccWorkload(TpccConfig config) : config_(std::move(config)) {}

util::Status TpccWorkload::Setup(db::Database* db) {
  using common::ValueType;
  util::Rng rng(config_.seed);

  {
    db::Schema s(T("WAREHOUSE"), {{"W_ID", ValueType::kInt},
                                  {"W_NAME", ValueType::kString},
                                  {"W_TAX", ValueType::kDouble},
                                  {"W_YTD", ValueType::kDouble}});
    s.AddIndex("PRIMARY", {"W_ID"});
    APOLLO_RETURN_NOT_OK(db->CreateTable(std::move(s)));
  }
  {
    db::Schema s(T("DISTRICT"), {{"D_W_ID", ValueType::kInt},
                                 {"D_ID", ValueType::kInt},
                                 {"D_NAME", ValueType::kString},
                                 {"D_TAX", ValueType::kDouble},
                                 {"D_YTD", ValueType::kDouble},
                                 {"D_NEXT_O_ID", ValueType::kInt}});
    s.AddIndex("PRIMARY", {"D_W_ID", "D_ID"});
    APOLLO_RETURN_NOT_OK(db->CreateTable(std::move(s)));
  }
  {
    db::Schema s(T("CUSTOMER"), {{"C_W_ID", ValueType::kInt},
                                 {"C_D_ID", ValueType::kInt},
                                 {"C_ID", ValueType::kInt},
                                 {"C_FIRST", ValueType::kString},
                                 {"C_LAST", ValueType::kString},
                                 {"C_BALANCE", ValueType::kDouble},
                                 {"C_YTD_PAYMENT", ValueType::kDouble},
                                 {"C_PAYMENT_CNT", ValueType::kInt}});
    s.AddIndex("PRIMARY", {"C_W_ID", "C_D_ID", "C_ID"});
    s.AddIndex("C_LAST_IDX", {"C_W_ID", "C_D_ID", "C_LAST"});
    APOLLO_RETURN_NOT_OK(db->CreateTable(std::move(s)));
  }
  {
    db::Schema s(T("ORDERS"), {{"O_W_ID", ValueType::kInt},
                               {"O_D_ID", ValueType::kInt},
                               {"O_ID", ValueType::kInt},
                               {"O_C_ID", ValueType::kInt},
                               {"O_ENTRY_D", ValueType::kInt},
                               {"O_CARRIER_ID", ValueType::kInt},
                               {"O_OL_CNT", ValueType::kInt}});
    s.AddIndex("PRIMARY", {"O_W_ID", "O_D_ID", "O_ID"});
    s.AddIndex("O_CUST_IDX", {"O_W_ID", "O_D_ID", "O_C_ID"});
    APOLLO_RETURN_NOT_OK(db->CreateTable(std::move(s)));
  }
  {
    db::Schema s(T("ORDER_LINE"), {{"OL_W_ID", ValueType::kInt},
                                   {"OL_D_ID", ValueType::kInt},
                                   {"OL_O_ID", ValueType::kInt},
                                   {"OL_NUMBER", ValueType::kInt},
                                   {"OL_I_ID", ValueType::kInt},
                                   {"OL_SUPPLY_W_ID", ValueType::kInt},
                                   {"OL_QUANTITY", ValueType::kInt},
                                   {"OL_AMOUNT", ValueType::kDouble}});
    s.AddIndex("PRIMARY", {"OL_W_ID", "OL_D_ID", "OL_O_ID"});
    // District-level bucket for Stock Level's order-id range scans.
    s.AddIndex("OL_WD_IDX", {"OL_W_ID", "OL_D_ID"});
    APOLLO_RETURN_NOT_OK(db->CreateTable(std::move(s)));
  }
  {
    db::Schema s(T("ITEM"), {{"I_ID", ValueType::kInt},
                             {"I_NAME", ValueType::kString},
                             {"I_PRICE", ValueType::kDouble}});
    s.AddIndex("PRIMARY", {"I_ID"});
    APOLLO_RETURN_NOT_OK(db->CreateTable(std::move(s)));
  }
  {
    db::Schema s(T("STOCK"), {{"S_W_ID", ValueType::kInt},
                              {"S_I_ID", ValueType::kInt},
                              {"S_QUANTITY", ValueType::kInt},
                              {"S_YTD", ValueType::kInt},
                              {"S_ORDER_CNT", ValueType::kInt}});
    s.AddIndex("PRIMARY", {"S_W_ID", "S_I_ID"});
    APOLLO_RETURN_NOT_OK(db->CreateTable(std::move(s)));
  }
  {
    db::Schema s(T("HISTORY"), {{"H_C_W_ID", ValueType::kInt},
                                {"H_C_D_ID", ValueType::kInt},
                                {"H_C_ID", ValueType::kInt},
                                {"H_DATE", ValueType::kInt},
                                {"H_AMOUNT", ValueType::kDouble}});
    APOLLO_RETURN_NOT_OK(db->CreateTable(std::move(s)));
  }

  // ---- Data ----
  db::Table* warehouse = db->GetTable(T("WAREHOUSE"));
  db::Table* district = db->GetTable(T("DISTRICT"));
  db::Table* customer = db->GetTable(T("CUSTOMER"));
  db::Table* orders = db->GetTable(T("ORDERS"));
  db::Table* order_line = db->GetTable(T("ORDER_LINE"));
  db::Table* item = db->GetTable(T("ITEM"));
  db::Table* stock = db->GetTable(T("STOCK"));

  for (int i = 1; i <= config_.num_items; ++i) {
    APOLLO_RETURN_NOT_OK(
        item->Insert({Value::Int(i), Value::Str("ITEM" + std::to_string(i)),
                      Value::Double(1.0 + rng.UniformInt(0, 9999) / 100.0)}));
  }

  for (int w = 1; w <= config_.num_warehouses; ++w) {
    APOLLO_RETURN_NOT_OK(warehouse->Insert(
        {Value::Int(w), Value::Str("WH" + std::to_string(w)),
         Value::Double(rng.UniformInt(0, 2000) / 10000.0),
         Value::Double(300000.0)}));
    for (int i = 1; i <= config_.num_items; ++i) {
      APOLLO_RETURN_NOT_OK(stock->Insert(
          {Value::Int(w), Value::Int(i),
           Value::Int(rng.UniformInt(10, 100)), Value::Int(0),
           Value::Int(0)}));
    }
    for (int d = 1; d <= config_.districts_per_warehouse; ++d) {
      APOLLO_RETURN_NOT_OK(district->Insert(
          {Value::Int(w), Value::Int(d),
           Value::Str("DIST" + std::to_string(d)),
           Value::Double(rng.UniformInt(0, 2000) / 10000.0),
           Value::Double(30000.0),
           Value::Int(config_.orders_per_district + 1)}));
      for (int c = 1; c <= config_.customers_per_district; ++c) {
        APOLLO_RETURN_NOT_OK(customer->Insert(
            {Value::Int(w), Value::Int(d), Value::Int(c),
             Value::Str("FIRST" + std::to_string(rng.UniformInt(0, 999))),
             Value::Str(LastName(c <= 1000 ? c - 1
                                           : rng.UniformInt(0, 999))),
             Value::Double(-10.0), Value::Double(10.0), Value::Int(1)}));
      }
      for (int o = 1; o <= config_.orders_per_district; ++o) {
        int64_t c_id = rng.UniformInt(1, config_.customers_per_district);
        int lines = static_cast<int>(rng.UniformInt(5, 9));
        APOLLO_RETURN_NOT_OK(orders->Insert(
            {Value::Int(w), Value::Int(d), Value::Int(o), Value::Int(c_id),
             Value::Int(rng.UniformInt(1, 3650)),
             Value::Int(rng.UniformInt(1, 10)), Value::Int(lines)}));
        for (int l = 1; l <= lines; ++l) {
          APOLLO_RETURN_NOT_OK(order_line->Insert(
              {Value::Int(w), Value::Int(d), Value::Int(o), Value::Int(l),
               Value::Int(rng.UniformInt(1, config_.num_items)),
               Value::Int(w), Value::Int(rng.UniformInt(1, 10)),
               Value::Double(rng.UniformInt(1, 9999) / 100.0)}));
        }
      }
    }
  }
  return util::Status::OK();
}

namespace {

class TpccClient : public WorkloadClient {
 public:
  TpccClient(TpccWorkload* workload, int index, uint64_t seed)
      : w_(workload), rng_(seed + static_cast<uint64_t>(index)) {
    if (workload->config().warehouse_zipf_theta > 0) {
      zipf_ = std::make_unique<util::Zipf>(
          static_cast<uint64_t>(workload->config().num_warehouses),
          workload->config().warehouse_zipf_theta);
    }
  }

  double MeanThinkSeconds() const override {
    return w_->config().mean_think_seconds;
  }

  void RunInteraction(ClientContext& ctx,
                      std::function<void()> done) override {
    const auto& cfg = w_->config();
    double r = rng_.NextDouble();
    if (r < cfg.payment_fraction) {
      Payment(ctx, std::move(done));
    } else if (r < cfg.payment_fraction + cfg.order_status_fraction) {
      OrderStatus(ctx, std::move(done));
    } else {
      StockLevel(ctx, std::move(done));
    }
  }

 private:
  int64_t RandomWarehouse() {
    // Uniform warehouse choice per the paper's Section 4.3, or Zipf when
    // configured (the skew ablation).
    if (zipf_ != nullptr) return static_cast<int64_t>(zipf_->Next(rng_));
    return rng_.UniformInt(1, w_->config().num_warehouses);
  }
  int64_t RandomDistrict() {
    return rng_.UniformInt(1, w_->config().districts_per_warehouse);
  }
  int64_t RandomCustomer() {
    return rng_.UniformInt(1, w_->config().customers_per_district);
  }
  std::string T(const char* base) const { return w_->T(base); }

  /// Customer lookup (by id 60%, by last name 40%), then the most recent
  /// order and its lines — the correlated chain Apollo learns.
  void OrderStatus(ClientContext& ctx, std::function<void()> done) {
    int64_t w = RandomWarehouse();
    int64_t d = RandomDistrict();
    std::string cust_sql;
    if (rng_.Bernoulli(0.6)) {
      cust_sql = "SELECT C_W_ID, C_D_ID, C_ID, C_FIRST, C_LAST, C_BALANCE "
                 "FROM " + T("CUSTOMER") + " WHERE C_W_ID = " +
                 std::to_string(w) + " AND C_D_ID = " + std::to_string(d) +
                 " AND C_ID = " + std::to_string(RandomCustomer());
    } else {
      cust_sql = "SELECT C_W_ID, C_D_ID, C_ID, C_FIRST, C_LAST, C_BALANCE "
                 "FROM " + T("CUSTOMER") + " WHERE C_W_ID = " +
                 std::to_string(w) + " AND C_D_ID = " + std::to_string(d) +
                 " AND C_LAST = '" + LastName(rng_.UniformInt(0, 299)) +
                 "' ORDER BY C_FIRST";
    }
    ctx.Query(cust_sql, [this, &ctx, done = std::move(done)](
                            common::ResultSetPtr rs) {
      if (!rs || rs->empty()) return done();
      // Clause 2.6.2.2: take the middle row for by-name lookups.
      size_t row = rs->num_rows() / 2;
      int cw = rs->ColumnIndex("C_W_ID");
      int cd = rs->ColumnIndex("C_D_ID");
      int cc = rs->ColumnIndex("C_ID");
      if (cw < 0 || cd < 0 || cc < 0) return done();
      int64_t w = rs->At(row, cw).AsInt();
      int64_t d = rs->At(row, cd).AsInt();
      int64_t c = rs->At(row, cc).AsInt();
      ctx.Query(
          "SELECT MAX(O_ID) AS O_ID FROM " + T("ORDERS") +
              " WHERE O_W_ID = " + std::to_string(w) + " AND O_D_ID = " +
              std::to_string(d) + " AND O_C_ID = " + std::to_string(c),
          [this, &ctx, w, d, done](common::ResultSetPtr mrs) {
            if (!mrs || mrs->empty() || !mrs->At(0, 0).is_int()) {
              return done();
            }
            int64_t o = mrs->At(0, 0).AsInt();
            ctx.Query(
                "SELECT O_W_ID, O_D_ID, O_ID, O_ENTRY_D, O_CARRIER_ID FROM " +
                    T("ORDERS") + " WHERE O_W_ID = " + std::to_string(w) +
                    " AND O_D_ID = " + std::to_string(d) + " AND O_ID = " +
                    std::to_string(o),
                [this, &ctx, w, d, o, done](common::ResultSetPtr) {
                  ctx.Query(
                      "SELECT OL_I_ID, OL_SUPPLY_W_ID, OL_QUANTITY, "
                      "OL_AMOUNT FROM " + T("ORDER_LINE") +
                          " WHERE OL_W_ID = " + std::to_string(w) +
                          " AND OL_D_ID = " + std::to_string(d) +
                          " AND OL_O_ID = " + std::to_string(o),
                      [done](common::ResultSetPtr) { done(); });
                });
          });
    });
  }

  /// District next-order id (with the 20-order window bound computed in
  /// the select list), recent distinct items, then per-item low-stock
  /// counts — the paper's motivating Stock Level pattern.
  void StockLevel(ClientContext& ctx, std::function<void()> done) {
    int64_t w = RandomWarehouse();
    int64_t d = RandomDistrict();
    ctx.Query(
        "SELECT D_W_ID, D_ID, D_NEXT_O_ID, D_NEXT_O_ID - 20 AS D_LOW_O_ID "
        "FROM " + T("DISTRICT") + " WHERE D_W_ID = " + std::to_string(w) +
            " AND D_ID = " + std::to_string(d),
        [this, &ctx, done = std::move(done)](common::ResultSetPtr rs) {
          if (!rs || rs->empty()) return done();
          int64_t w = rs->At(0, 0).AsInt();
          int64_t d = rs->At(0, 1).AsInt();
          int64_t next = rs->At(0, 2).AsInt();
          int64_t low = rs->At(0, 3).is_int()
                            ? rs->At(0, 3).AsInt()
                            : static_cast<int64_t>(rs->At(0, 3).ToDouble());
          ctx.Query(
              "SELECT DISTINCT OL_W_ID, OL_I_ID FROM " + T("ORDER_LINE") +
                  " WHERE OL_W_ID = " + std::to_string(w) +
                  " AND OL_D_ID = " + std::to_string(d) +
                  " AND OL_O_ID >= " + std::to_string(low) +
                  " AND OL_O_ID < " + std::to_string(next),
              [this, &ctx, done](common::ResultSetPtr items) {
                if (!items || items->empty()) return done();
                CheckStock(ctx, items, 0, done);
              });
        });
  }

  void CheckStock(ClientContext& ctx, common::ResultSetPtr items, size_t idx,
                  std::function<void()> done) {
    // The terminal inspects the first few recently-ordered items, fetching
    // each item's stock level and applying the low-stock threshold
    // client-side — the paper's motivating Q1 (product ids) -> Q2 (stock
    // level per product) pattern. A threshold literal in the query text
    // would become an unmappable template parameter.
    constexpr size_t kItemsToCheck = 4;
    if (idx >= items->num_rows() || idx >= kItemsToCheck) return done();
    int64_t w = items->At(idx, 0).AsInt();
    int64_t i = items->At(idx, 1).AsInt();
    ctx.Query(
        "SELECT S_W_ID, S_I_ID, S_QUANTITY FROM " + T("STOCK") +
            " WHERE S_W_ID = " + std::to_string(w) + " AND S_I_ID = " +
            std::to_string(i),
        [this, &ctx, items, idx, done = std::move(done)](
            common::ResultSetPtr) {
          CheckStock(ctx, items, idx + 1, std::move(done));
        });
  }

  void Payment(ClientContext& ctx, std::function<void()> done) {
    int64_t w = RandomWarehouse();
    int64_t d = RandomDistrict();
    int64_t c = RandomCustomer();
    double amount = 1.0 + rng_.UniformInt(0, 499900) / 100.0;
    std::string amt = std::to_string(amount);
    ctx.Query(
        "UPDATE " + T("WAREHOUSE") + " SET W_YTD = W_YTD + " + amt +
            " WHERE W_ID = " + std::to_string(w),
        [this, &ctx, w, d, c, amt, done = std::move(done)](
            common::ResultSetPtr) {
          ctx.Query(
              "UPDATE " + T("DISTRICT") + " SET D_YTD = D_YTD + " + amt +
                  " WHERE D_W_ID = " + std::to_string(w) + " AND D_ID = " +
                  std::to_string(d),
              [this, &ctx, w, d, c, amt, done](common::ResultSetPtr) {
                ctx.Query(
                    "SELECT C_W_ID, C_D_ID, C_ID, C_BALANCE FROM " +
                        T("CUSTOMER") + " WHERE C_W_ID = " +
                        std::to_string(w) + " AND C_D_ID = " +
                        std::to_string(d) + " AND C_ID = " +
                        std::to_string(c),
                    [this, &ctx, w, d, c, amt, done](common::ResultSetPtr) {
                      ctx.Query(
                          "UPDATE " + T("CUSTOMER") + " SET C_BALANCE = "
                          "C_BALANCE - " + amt +
                              ", C_YTD_PAYMENT = C_YTD_PAYMENT + " + amt +
                              ", C_PAYMENT_CNT = C_PAYMENT_CNT + 1"
                              " WHERE C_W_ID = " + std::to_string(w) +
                              " AND C_D_ID = " + std::to_string(d) +
                              " AND C_ID = " + std::to_string(c),
                          [this, &ctx, w, d, c, amt, done](
                              common::ResultSetPtr) {
                            ctx.Query(
                                "INSERT INTO " + T("HISTORY") +
                                    " (H_C_W_ID, H_C_D_ID, H_C_ID, H_DATE, "
                                    "H_AMOUNT) VALUES (" +
                                    std::to_string(w) + ", " +
                                    std::to_string(d) + ", " +
                                    std::to_string(c) + ", " +
                                    std::to_string(
                                        rng_.UniformInt(1, 3650)) +
                                    ", " + amt + ")",
                                [done](common::ResultSetPtr) { done(); });
                          });
                    });
              });
        });
  }

  TpccWorkload* w_;
  util::Rng rng_;
  std::unique_ptr<util::Zipf> zipf_;
};

}  // namespace

std::unique_ptr<WorkloadClient> TpccWorkload::MakeClient(int index,
                                                         uint64_t seed) {
  return std::make_unique<TpccClient>(this, index, seed);
}

}  // namespace apollo::workload
