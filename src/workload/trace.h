// Query-trace capture and replay.
//
// TraceRecorder wraps any Middleware and records every submitted query
// with its client and simulated timestamp. TraceReplayer re-submits a
// recorded trace on its original timing against any middleware — useful
// for A/B-comparing configurations on an identical query stream, and for
// producing Fido training traces from real runs. Traces serialize to a
// simple tab-separated text format.
#pragma once

#include <string>
#include <vector>

#include "core/middleware.h"
#include "sim/event_loop.h"
#include "util/result.h"
#include "workload/metrics.h"

namespace apollo::workload {

struct TraceEvent {
  core::ClientId client = 0;
  util::SimTime time = 0;  // submission time
  std::string sql;
};

using Trace = std::vector<TraceEvent>;

/// Pass-through middleware that records every submission.
class TraceRecorder : public core::Middleware {
 public:
  TraceRecorder(sim::EventLoop* loop, core::Middleware* inner)
      : loop_(loop), inner_(inner) {}

  void SubmitQuery(core::ClientId client, const std::string& sql,
                   QueryCallback callback) override {
    trace_.push_back({client, loop_->now(), sql});
    inner_->SubmitQuery(client, sql, std::move(callback));
  }

  const core::MiddlewareStats& stats() const override {
    return inner_->stats();
  }
  std::string name() const override { return inner_->name() + "+trace"; }

  const Trace& trace() const { return trace_; }
  Trace TakeTrace() { return std::move(trace_); }

 private:
  sim::EventLoop* loop_;
  core::Middleware* inner_;
  Trace trace_;
};

/// Serializes a trace ("client \t time_us \t sql" per line).
util::Status SaveTrace(const Trace& trace, const std::string& path);

/// Parses a trace file written by SaveTrace.
util::Result<Trace> LoadTrace(const std::string& path);

/// Schedules every event of `trace` on `loop` at `start + (t - t0)`,
/// submitting to `middleware`. Response times are recorded into `metrics`
/// when non-null. Returns the number of scheduled events.
size_t ReplayTrace(sim::EventLoop* loop, core::Middleware* middleware,
                   const Trace& trace, RunMetrics* metrics,
                   util::SimTime start);

/// Splits a trace into per-client query-text sequences (Fido training
/// input).
std::vector<std::vector<std::string>> PerClientSequences(const Trace& trace);

}  // namespace apollo::workload
