#include "workload/metrics.h"

namespace apollo::workload {

void RunMetrics::Record(util::SimTime submit_time,
                        util::SimDuration response_time) {
  // Queries submitted during warmup (before the measurement origin) must
  // not leak into the headline histogram either — previously only the
  // timeline buckets were gated, skewing MeanMs/PercentileMs.
  if (submit_time < origin_) return;
  hist_.Record(response_time);
  if (bucket_width_ <= 0) return;
  size_t bucket = static_cast<size_t>((submit_time - origin_) /
                                      bucket_width_);
  if (bucket >= bucket_sum_us_.size()) {
    bucket_sum_us_.resize(bucket + 1, 0.0);
    bucket_count_.resize(bucket + 1, 0);
    if (bucket_percentiles_) bucket_hist_.resize(bucket + 1);
  }
  bucket_sum_us_[bucket] += static_cast<double>(response_time);
  ++bucket_count_[bucket];
  if (bucket_percentiles_) bucket_hist_[bucket].Record(response_time);
}

std::vector<RunMetrics::TimelinePoint> RunMetrics::Timeline() const {
  std::vector<TimelinePoint> out;
  for (size_t i = 0; i < bucket_sum_us_.size(); ++i) {
    if (bucket_count_[i] == 0) continue;
    TimelinePoint p;
    p.minute = util::ToSeconds(static_cast<util::SimDuration>(i) *
                               bucket_width_) /
               60.0;
    p.mean_ms = bucket_sum_us_[i] /
                static_cast<double>(bucket_count_[i]) / 1000.0;
    if (bucket_percentiles_ && i < bucket_hist_.size()) {
      p.p99_ms =
          static_cast<double>(bucket_hist_[i].Percentile(99)) / 1000.0;
    }
    p.count = bucket_count_[i];
    out.push_back(p);
  }
  return out;
}

}  // namespace apollo::workload
