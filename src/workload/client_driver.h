// ClientDriver: the think-time loop of one emulated client.
//
// Alternates exponentially-distributed think time with interactions until
// the configured end of the run. Behaviours can be swapped mid-run (the
// workload-shift experiment, paper Figure 7).
#pragma once

#include <memory>

#include "workload/workload.h"

namespace apollo::workload {

class ClientDriver {
 public:
  ClientDriver(sim::EventLoop* loop, core::Middleware* middleware,
               core::ClientId id, std::unique_ptr<WorkloadClient> behaviour,
               uint64_t seed);

  /// Starts the think/interact loop; no interaction begins after
  /// `end_time`.
  void Start(util::SimTime end_time);

  /// Swaps the behaviour, effective from the next interaction.
  void SwapBehaviour(std::unique_ptr<WorkloadClient> behaviour) {
    pending_behaviour_ = std::move(behaviour);
  }

  ClientContext& context() { return ctx_; }

 private:
  void ScheduleNext();
  void RunOnce();

  sim::EventLoop* loop_;
  util::Rng rng_;
  ClientContext ctx_;
  std::unique_ptr<WorkloadClient> behaviour_;
  std::unique_ptr<WorkloadClient> pending_behaviour_;
  util::SimTime end_time_ = 0;
};

}  // namespace apollo::workload
